// Shared driver for the application-level figures (5, 6, 7).
//
// For each (workload, node count): run the workload under the platform's
// Linux environment and its McKernel environment with paired seeds, and
// report McKernel's relative performance with Linux normalized to 1.0 —
// the exact format of the paper's bar charts.
#pragma once

#include <algorithm>
#include <cctype>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/registry.h"
#include "cluster/bsp.h"
#include "common/parallel.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "obs/live/counters.h"
#include "obs/prof/prof.h"

namespace hpcos::bench {

struct FigureRow {
  std::string workload;
  std::int64_t nodes = 0;
  double mckernel_relative = 0.0;  // Linux == 1.0
  double stddev = 0.0;
  double paper_value = 0.0;  // approximate value read off the figure
};

inline FigureRow run_point(const std::string& workload,
                           apps::PlatformKind platform,
                           const cluster::OsEnvironment& linux_env,
                           const cluster::OsEnvironment& mck_env,
                           std::int64_t nodes, double paper_value,
                           int trials = 3, Seed seed = Seed{20211114}) {
  PROF_SCOPE("bench.point");
  const auto w = apps::make_workload(workload, platform);
  const auto job = apps::job_geometry(workload, platform, nodes);
  const auto rel = cluster::relative_performance(*w, linux_env, mck_env, job,
                                                 trials, seed);
  return FigureRow{.workload = workload,
                   .nodes = nodes,
                   .mckernel_relative = rel.mean_ratio,
                   .stddev = rel.stddev_ratio,
                   .paper_value = paper_value};
}

// One (workload, node count) measurement with the approximate value read
// off the paper's figure for the comparison column.
struct PlanPoint {
  std::int64_t nodes = 0;
  double paper = 0.0;
};
using FigurePlan =
    std::vector<std::pair<std::string, std::vector<PlanPoint>>>;

// Run every (workload, nodes) point of a figure across the host
// scheduler. Points are independent (per-point workload instance and
// paired seeded engines) and each writes its own row slot, so row order
// — and every number in it — is identical to the serial run. Each
// point's relative_performance trials loop is itself a parallel_for;
// under the work-stealing scheduler the two levels genuinely compose
// (inner trials are stolen by idle participants) instead of the inner
// loop degrading to serial inside a worker.
inline std::vector<FigureRow> run_plan(const FigurePlan& plan,
                                       apps::PlatformKind platform,
                                       const cluster::OsEnvironment& linux_env,
                                       const cluster::OsEnvironment& mck_env,
                                       std::size_t threads = 0,
                                       int trials = 3) {
  struct FlatPoint {
    const std::string* workload;
    PlanPoint point;
  };
  std::vector<FlatPoint> flat;
  for (const auto& [name, points] : plan) {
    for (const auto& p : points) flat.push_back({&name, p});
  }
  std::vector<FigureRow> rows(flat.size());
  // Live progress feed (--progress heartbeats): plan points are this
  // driver's completion units. Statistics only, never results.
  if (obs::live::enabled()) obs::live::add_units_total(flat.size());
  parallel_for(
      flat.size(),
      [&](std::size_t i) {
        rows[i] = run_point(*flat[i].workload, platform, linux_env, mck_env,
                            flat[i].point.nodes, flat[i].point.paper, trials);
        if (obs::live::enabled()) obs::live::add_units_done(1);
      },
      threads);
  return rows;
}

// Smoke-mode plan: only the smallest node count of each workload (paired
// with trials=1 this keeps the bench_smoke job seconds-long).
inline FigurePlan quick_plan(const FigurePlan& plan) {
  FigurePlan out;
  for (const auto& [name, points] : plan) {
    if (!points.empty()) out.push_back({name, {points.front()}});
  }
  return out;
}

// One BenchReport metric per figure row: `<workload>.n<nodes>.relative`.
inline void add_figure_metrics(obs::BenchReport& report,
                               const std::vector<FigureRow>& rows) {
  for (const auto& r : rows) {
    std::string slug = r.workload;
    std::transform(slug.begin(), slug.end(), slug.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    report.add_metric(slug + ".n" + std::to_string(r.nodes) + ".relative",
                      "ratio", r.mckernel_relative);
  }
}

inline void print_figure(const std::string& title,
                         const std::vector<FigureRow>& rows) {
  print_banner(std::cout, title);
  TextTable t({"workload", "nodes", "McKernel vs Linux", "stddev",
               "paper (approx)"});
  for (const auto& r : rows) {
    t.add_row({r.workload, TextTable::fmt_int(r.nodes),
               TextTable::fmt(r.mckernel_relative, 3),
               TextTable::fmt(r.stddev, 3),
               r.paper_value > 0 ? TextTable::fmt(r.paper_value, 2) : "-"});
  }
  t.print(std::cout);
}

}  // namespace hpcos::bench
