// bench_sched — work-stealing scheduler microbenchmark.
//
// Measures flat vs. nested parallel_for throughput over a deterministic
// RNG workload and folds the scheduler's event counters (wakeups,
// steals, chunks) into an obs::Registry under the parallel.* names from
// parallel.h. Two kinds of output:
//
//   * Determinism gates: sched.*.checksum / sched.*.items are pure
//     functions of the seed (index-addressed slots summed in index
//     order), so they must match the committed baseline bitwise-ish
//     (default tolerance) on every machine and thread count.
//   * Host-behavior telemetry: throughput is wall-clock (host.* — the
//     tolerance policy ignores it) and the parallel.* counters depend on
//     pool size and OS scheduling (ignored likewise). On a 1-CPU runner
//     the flat/nested throughput ratio carries no signal; see
//     EXPERIMENTS.md "Scheduler".
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "obs/registry.h"

namespace {

using namespace hpcos;

// Deterministic per-item work: a short lognormal accumulation from the
// item's own counter-based stream — the same shape (and thread-count
// independence) as a campaign node simulation, just cheaper.
double item_work(Seed seed, std::uint64_t item, int draws) {
  RngStream rng(seed, item);
  double acc = 0.0;
  for (int d = 0; d < draws; ++d) acc += rng.lognormal(2.0, 0.4);
  return acc;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_sched", opts.quick, 0x5CED);
  const bool q = opts.quick;

  const std::size_t items = q ? (1u << 13) : (1u << 16);
  const int draws = q ? 16 : 64;
  const int rounds = q ? 3 : 10;
  const std::size_t outer = 16;  // nested: outer points x inner trials
  const Seed seed{0x5CED};

  print_banner(std::cout, "Scheduler microbenchmark: flat vs nested "
                          "parallel_for, steal telemetry");
  std::cout << "pool capacity " << parallel_capacity() << " (workers + "
            << "caller), default_parallelism " << default_parallelism()
            << ", items " << items << ", rounds " << rounds << "\n";

  const ParallelStats before = parallel_stats();

  // Flat: one top-level parallel_for over all items. Threads are pinned
  // to the full pool capacity (workers + caller) rather than
  // default_parallelism(): on a 1-CPU affinity mask the default is 1 and
  // parallel_for would run inline, leaving the steal telemetry below
  // vacuously zero. Checksums are thread-count invariant either way.
  const std::size_t bench_threads = parallel_capacity();
  std::vector<double> flat_slots(items, 0.0);
  const auto t_flat = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    parallel_for(items, [&](std::size_t i) {
      flat_slots[i] = item_work(seed, i, draws);
    }, bench_threads);
  }
  const double flat_s = seconds_since(t_flat);
  double flat_checksum = 0.0;
  for (double v : flat_slots) flat_checksum += v;  // index order: stable

  // Nested: outer points, each running its inner items through a nested
  // parallel_for — run_plan + relative_performance's composition. The
  // inner items compute the same values as the flat pass, so the merged
  // checksum must agree with the flat one exactly.
  std::vector<double> nested_slots(items, 0.0);
  const std::size_t per_outer = items / outer;
  const auto t_nested = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    parallel_for(outer, [&](std::size_t p) {
      parallel_for(per_outer, [&](std::size_t i) {
        const std::size_t item = p * per_outer + i;
        nested_slots[item] = item_work(seed, item, draws);
      }, bench_threads);
    }, bench_threads);
  }
  const double nested_s = seconds_since(t_nested);
  double nested_checksum = 0.0;
  for (double v : nested_slots) nested_checksum += v;

  const ParallelStats after = parallel_stats();

  // Fold the scheduler's deltas into a Registry (the repo's counter
  // substrate), then report straight off its snapshot.
  obs::Registry reg;
  obs::bump(reg.counter("parallel.wakeups.count"),
            after.wakeups - before.wakeups);
  obs::bump(reg.counter("parallel.steals.count"),
            after.steals - before.steals);
  obs::bump(reg.counter("parallel.steal_attempts.count"),
            after.steal_attempts - before.steal_attempts);
  obs::bump(reg.counter("parallel.groups.count"),
            after.groups - before.groups);
  obs::bump(reg.counter("parallel.nested_groups.count"),
            after.nested_groups - before.nested_groups);
  obs::bump(reg.counter("parallel.chunks.count"),
            after.chunks_executed - before.chunks_executed);

  const double total_items = static_cast<double>(items) * rounds;
  TextTable t({"pass", "wall (s)", "items/s", "checksum"});
  t.add_row({"flat", TextTable::fmt(flat_s, 3),
             TextTable::fmt_sci(total_items / flat_s, 3),
             TextTable::fmt(flat_checksum, 6)});
  t.add_row({"nested", TextTable::fmt(nested_s, 3),
             TextTable::fmt_sci(total_items / nested_s, 3),
             TextTable::fmt(nested_checksum, 6)});
  t.print(std::cout);

  TextTable c({"scheduler counter", "value"});
  for (const auto& entry : reg.snapshot().counters) {
    c.add_row({entry.name,
               TextTable::fmt_int(static_cast<long long>(entry.value))});
  }
  c.print(std::cout);

  if (flat_checksum != nested_checksum) {
    std::cerr << "FAIL: nested checksum diverged from flat ("
              << nested_checksum << " vs " << flat_checksum << ")\n";
    return 1;
  }

  // Deterministic gates (machine-independent).
  report.add_metric("sched.flat.checksum", "value", flat_checksum);
  report.add_metric("sched.nested.checksum", "value", nested_checksum);
  report.add_metric("sched.flat.items", "count", static_cast<double>(items));
  report.add_metric("sched.outer.points", "count",
                    static_cast<double>(outer));
  // Host-behavior telemetry (ignored by the tolerance policy).
  report.add_metric("host.flat.items_per_s", "rate", total_items / flat_s);
  report.add_metric("host.nested.items_per_s", "rate",
                    total_items / nested_s);
  report.add_metric("host.nested_vs_flat.ratio", "ratio",
                    (total_items / nested_s) / (total_items / flat_s));
  report.add_metric("host.capacity", "count",
                    static_cast<double>(parallel_capacity()));
  for (const auto& entry : reg.snapshot().counters) {
    report.add_metric(entry.name, "count",
                      static_cast<double>(entry.value));
  }

  obs::maybe_write_report(report, opts);
  return 0;
}
