// Ablation — remote-TLB invalidation strategies (§4.2.2).
//
// Drives the node DES through a munmap-style flush storm under the three
// strategies and reports the *simulated* costs as counters:
//   victim_delay_us   — extra wall time suffered by a busy bystander core
//   initiator_us      — cost paid by the flushing core
// google-benchmark's own timing measures host-side simulation throughput.
//
// Expected shape: broadcast costs victims 200 ns x flushes (the A64FX
// problem); the RHEL 8.2 patch eliminates that for single-core processes;
// the IPI path spares bystanders but charges ~2 us per victim core that
// actually shares the mm.
#include <benchmark/benchmark.h>

#include "cluster/node.h"
#include "noise/fwq.h"

namespace {

using namespace hpcos;

struct StormOutcome {
  double victim_delay_us;
  double initiator_us;
};

StormOutcome run_storm(linuxk::TlbFlushMode mode, std::uint64_t flushes) {
  auto platform = hw::make_fugaku_testbed_platform();
  auto cfg = linuxk::make_fugaku_linux_config(platform);
  cfg.profile = noise::AnalyticNoiseProfile{};  // quiet: isolate the storm
  cfg.tlb_flush = mode;
  auto node = cluster::SimNode::make_linux_node(
      platform, std::move(cfg), cluster::SimNodeOptions{.seed = Seed{3}});

  // Busy bystander pinned to an application core.
  struct Victim final : os::ThreadBody {
    SimTime done;
    bool started = false;
    void step(os::ThreadContext& ctx) override {
      if (!started) {
        started = true;
        ctx.compute(SimTime::ms(50));
        return;
      }
      done = ctx.now();
      ctx.exit();
    }
  };
  auto victim = std::make_unique<Victim>();
  Victim* v = victim.get();
  os::SpawnAttrs attrs;
  attrs.affinity = hw::CpuSet::of(
      static_cast<std::size_t>(node->topology().logical_cores()), {10});
  node->linux().spawn(std::move(victim), std::move(attrs));
  node->simulator().run_until(SimTime::ms(1));

  const os::Pid pid = node->linux().create_process(os::ProcessAttrs{});
  const SimTime initiator =
      node->linux().tlb_shootdown(node->linux().process(pid),
                                  /*initiator=*/2, flushes);
  node->simulator().run_until(SimTime::sec(1));
  return StormOutcome{
      .victim_delay_us = (v->done - SimTime::ms(50)).to_us(),
      .initiator_us = initiator.to_us(),
  };
}

void BM_TlbiStrategy(benchmark::State& state) {
  const auto mode = static_cast<linuxk::TlbFlushMode>(state.range(0));
  const auto flushes = static_cast<std::uint64_t>(state.range(1));
  StormOutcome out{};
  for (auto _ : state) {
    out = run_storm(mode, flushes);
    benchmark::DoNotOptimize(out);
  }
  state.counters["victim_delay_us"] = out.victim_delay_us;
  state.counters["initiator_us"] = out.initiator_us;
}

void StrategyArgs(benchmark::internal::Benchmark* b) {
  for (int mode : {0 /*kIpi*/, 1 /*kBroadcast*/, 2 /*kBroadcastPatched*/}) {
    for (int flushes : {100, 1000, 10000}) {
      b->Args({mode, flushes});
    }
  }
}

BENCHMARK(BM_TlbiStrategy)
    ->Apply(StrategyArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
