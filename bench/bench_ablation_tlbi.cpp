// Ablation — remote-TLB invalidation strategies (§4.2.2).
//
// Drives the node DES through a munmap-style flush storm under the three
// strategies and reports the *simulated* costs as counters:
//   victim_delay_us   — extra wall time suffered by a busy bystander core
//   initiator_us      — cost paid by the flushing core
// google-benchmark's own timing measures host-side simulation throughput.
//
// Expected shape: broadcast costs victims 200 ns x flushes (the A64FX
// problem); the RHEL 8.2 patch eliminates that for single-core processes;
// the IPI path spares bystanders but charges ~2 us per victim core that
// actually shares the mm.
#include <benchmark/benchmark.h>

#include "cluster/node.h"
#include "noise/fwq.h"
#include "obs/bench_report.h"

namespace {

using namespace hpcos;

struct StormOutcome {
  double victim_delay_us;
  double initiator_us;
};

StormOutcome run_storm(linuxk::TlbFlushMode mode, std::uint64_t flushes) {
  auto platform = hw::make_fugaku_testbed_platform();
  auto cfg = linuxk::make_fugaku_linux_config(platform);
  cfg.profile = noise::AnalyticNoiseProfile{};  // quiet: isolate the storm
  cfg.tlb_flush = mode;
  auto node = cluster::SimNode::make_linux_node(
      platform, std::move(cfg), cluster::SimNodeOptions{.seed = Seed{3}});

  // Busy bystander pinned to an application core.
  struct Victim final : os::ThreadBody {
    SimTime done;
    bool started = false;
    void step(os::ThreadContext& ctx) override {
      if (!started) {
        started = true;
        ctx.compute(SimTime::ms(50));
        return;
      }
      done = ctx.now();
      ctx.exit();
    }
  };
  auto victim = std::make_unique<Victim>();
  Victim* v = victim.get();
  os::SpawnAttrs attrs;
  attrs.affinity = hw::CpuSet::of(
      static_cast<std::size_t>(node->topology().logical_cores()), {10});
  node->linux().spawn(std::move(victim), std::move(attrs));
  node->simulator().run_until(SimTime::ms(1));

  const os::Pid pid = node->linux().create_process(os::ProcessAttrs{});
  const SimTime initiator =
      node->linux().tlb_shootdown(node->linux().process(pid),
                                  /*initiator=*/2, flushes);
  node->simulator().run_until(SimTime::sec(1));
  return StormOutcome{
      .victim_delay_us = (v->done - SimTime::ms(50)).to_us(),
      .initiator_us = initiator.to_us(),
  };
}

void BM_TlbiStrategy(benchmark::State& state) {
  const auto mode = static_cast<linuxk::TlbFlushMode>(state.range(0));
  const auto flushes = static_cast<std::uint64_t>(state.range(1));
  StormOutcome out{};
  for (auto _ : state) {
    out = run_storm(mode, flushes);
    benchmark::DoNotOptimize(out);
  }
  state.counters["victim_delay_us"] = out.victim_delay_us;
  state.counters["initiator_us"] = out.initiator_us;
}

void StrategyArgs(benchmark::internal::Benchmark* b) {
  for (int mode : {0 /*kIpi*/, 1 /*kBroadcast*/, 2 /*kBroadcastPatched*/}) {
    for (int flushes : {100, 1000, 10000}) {
      b->Args({mode, flushes});
    }
  }
}

BENCHMARK(BM_TlbiStrategy)
    ->Apply(StrategyArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// With `--json`/`--quick` the storm runs once per strategy (simulated
// costs only) and a BenchReport is emitted; otherwise the remaining argv
// goes to google-benchmark as usual.
int main(int argc, char** argv) {
  const auto opts = hpcos::obs::parse_bench_options(argc, argv);
  if (!opts.sinks.json_path.empty() || opts.quick) {
    hpcos::obs::BenchReport report("bench_ablation_tlbi", opts.quick, 3);
    const std::uint64_t flushes = opts.quick ? 100 : 10000;
    const struct {
      const char* slug;
      hpcos::linuxk::TlbFlushMode mode;
    } strategies[] = {
        {"ipi", hpcos::linuxk::TlbFlushMode::kIpi},
        {"broadcast", hpcos::linuxk::TlbFlushMode::kBroadcast},
        {"broadcast_patched",
         hpcos::linuxk::TlbFlushMode::kBroadcastPatched},
    };
    for (const auto& s : strategies) {
      const StormOutcome out = run_storm(s.mode, flushes);
      report.add_metric(std::string(s.slug) + ".victim_delay_us", "us",
                        out.victim_delay_us);
      report.add_metric(std::string(s.slug) + ".initiator_us", "us",
                        out.initiator_us);
    }
    hpcos::obs::maybe_write_report(report, opts);
    return 0;
  }
  int bargc = static_cast<int>(opts.remaining.size());
  std::vector<char*> bargv = opts.remaining;
  benchmark::Initialize(&bargc, bargv.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
