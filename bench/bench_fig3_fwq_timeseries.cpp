// Figure 3 — FWQ noise-length time series on the A64FX testbed DES.
//
// The paper plots L_i = T_i - T_min against sample id for (a) all
// countermeasures enabled, (b) daemons unbound, (c) the CPU-global TLB
// flush not suppressed. A terminal can't render 100k-point scatters, so
// this bench prints, per configuration: the sample count, the noise
// floor/ceiling, a coarse log-bucket census of L_i, and the largest
// events with their sample ids — enough to check the plot's structure
// (sporadic small spikes vs a dense band vs periodic stalls).
#include <algorithm>
#include <iostream>

#include "cluster/node.h"
#include "common/table.h"
#include "noise/fwq.h"
#include "noise/metrics.h"
#include "obs/bench_report.h"

namespace {

using namespace hpcos;

noise::NoiseStats run_config(const std::string& label,
                             const noise::Countermeasures& cm,
                             std::uint64_t iterations) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto cfg = linuxk::make_fugaku_linux_config(platform, cm);
  cfg.profile = noise::strip_population_tails(cfg.profile);
  auto node = cluster::SimNode::make_linux_node(
      platform, std::move(cfg), cluster::SimNodeOptions{.seed = Seed{7}});

  noise::FwqConfig fwq;
  fwq.work_quantum = SimTime::from_ms(6.5);
  fwq.iterations = iterations;
  const auto traces = noise::run_fwq(
      node->app_kernel(), node->topology().application_cores(), fwq);

  // Concatenate per-core series in core order (one "sample id" axis, as
  // the paper's aggregated plot does).
  std::vector<SimTime> all;
  for (const auto& t : traces) {
    all.insert(all.end(), t.iteration_times.begin(),
               t.iteration_times.end());
  }
  const auto lengths = noise::noise_lengths(all);

  print_banner(std::cout, "Figure 3 series: " + label);
  const auto stats = noise::compute_noise_stats(traces);
  std::cout << "samples=" << lengths.size()
            << "  T_min=" << stats.t_min.to_string()
            << "  max_noise=" << stats.max_noise_length.to_string()
            << "  rate=" << TextTable::fmt_sci(stats.noise_rate, 2) << "\n";

  // Log-bucket census of noise lengths.
  const double edges_us[] = {1, 10, 100, 1000, 10000, 1e9};
  std::size_t counts[6] = {0, 0, 0, 0, 0, 0};
  for (const SimTime l : lengths) {
    const double us = l.to_us();
    for (int b = 0; b < 6; ++b) {
      if (us < edges_us[b]) {
        ++counts[b];
        break;
      }
    }
  }
  TextTable census({"L_i bucket", "count"});
  const char* names[] = {"< 1us",       "1us - 10us",  "10us - 100us",
                         "100us - 1ms", "1ms - 10ms",  ">= 10ms"};
  for (int b = 0; b < 6; ++b) {
    census.add_row({names[b],
                    TextTable::fmt_int(static_cast<long long>(counts[b]))});
  }
  census.print(std::cout);

  // Largest events with their sample ids (the visible spikes).
  std::vector<std::pair<double, std::size_t>> events;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    events.emplace_back(lengths[i].to_us(), i);
  }
  std::partial_sort(events.begin(), events.begin() + 8, events.end(),
                    std::greater<>());
  TextTable top({"rank", "sample id", "L_i (us)"});
  for (int i = 0; i < 8; ++i) {
    top.add_row({TextTable::fmt_int(i + 1),
                 TextTable::fmt_int(static_cast<long long>(events[i].second)),
                 TextTable::fmt(events[i].first, 2)});
  }
  top.print(std::cout);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using CM = noise::Countermeasures;
  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_fig3_fwq_timeseries", opts.quick, 7);
  // ~195 s per core in the full run; the smoke run keeps the same three
  // configurations over a short series.
  const std::uint64_t iterations = opts.quick ? 1'000 : 30'000;

  struct Cfg {
    const char* slug;
    const char* label;
    CM cm;
  };
  const Cfg configs[] = {
      {"all_enabled", "(a) all countermeasures enabled", CM{}},
      {"daemons_unbound", "(b) daemon processes unbound",
       CM{.bind_daemons = false}},
      {"global_tlbi", "(c) CPU-global TLB flush enabled",
       CM{.suppress_global_tlbi = false}},
  };
  for (const auto& c : configs) {
    const auto stats = run_config(c.label, c.cm, iterations);
    report.add_metric(std::string(c.slug) + ".max_noise_us", "us",
                      stats.max_noise_length.to_us());
    report.add_metric(std::string(c.slug) + ".noise_rate", "ratio",
                      stats.noise_rate);
  }
  obs::maybe_write_report(report, opts);
  return 0;
}
