// Figure 6 — LQCD, GeoFEM and GAMERA on Oakforest-PACS.
//
// Paper shape: LQCD gain grows to ~1.25 at 2k nodes; GeoFEM stays small
// (~1.00-1.06) up to full scale with large variance; GAMERA exceeds 1.25
// at half scale (4,096 nodes).
#include <iostream>

#include "app_bench_util.h"

int main(int argc, char** argv) {
  using namespace hpcos;

  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_fig6_apps_ofp", opts.quick, 20211114);

  const auto linux_env = cluster::make_ofp_linux_env();
  const auto mck_env = cluster::make_ofp_mckernel_env();

  const bench::FigurePlan plan = {
      {"LQCD", {{256, 1.08}, {512, 1.12}, {1024, 1.18}, {2048, 1.25}}},
      {"GeoFEM",
       {{512, 1.01}, {1024, 1.02}, {2048, 1.03}, {4096, 1.04}, {8192, 1.06}}},
      {"GAMERA", {{512, 1.08}, {1024, 1.12}, {2048, 1.18}, {4096, 1.26}}},
  };

  const auto rows = bench::run_plan(
      opts.quick ? bench::quick_plan(plan) : plan, apps::PlatformKind::kOfp,
      linux_env, mck_env, /*threads=*/0, /*trials=*/opts.quick ? 1 : 3);
  bench::print_figure(
      "Figure 6: LQCD / GeoFEM / GAMERA on Oakforest-PACS (Linux = 1.0)",
      rows);
  bench::add_figure_metrics(report, rows);
  obs::maybe_write_report(report, opts);
  return 0;
}
