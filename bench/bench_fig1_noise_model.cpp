// Figure 1 / Equation 1 — the analytic noise-amplification model.
//
// Reproduces §2's worked example (100,000 threads, 250 us sync interval,
// one 1 ms / 500 s noise group => ~20% slowdown) and §6.3's full-scale
// observation (at N = 7,630,848 threads, even a once-per-600 s event hits
// some thread nearly every interval), then sweeps thread counts to show
// the amplification curve the figure illustrates.
#include <iostream>

#include "common/table.h"
#include "noise/metrics.h"
#include "obs/bench_report.h"

int main(int argc, char** argv) {
  using namespace hpcos;
  using noise::NoiseGroup;

  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_fig1_noise_model", opts.quick);

  print_banner(std::cout, "Equation 1: BSP noise delay model (Section 2)");

  const NoiseGroup example{.length = SimTime::ms(1),
                           .interval = SimTime::sec(500)};
  const double delay = noise::bsp_noise_delay(
      std::span(&example, 1), SimTime::us(250), 100'000);
  std::cout << "Paper example: N=100,000, S=250us, L=1ms, I=500s -> "
            << TextTable::fmt_percent(delay) << " slowdown (paper: ~20%)\n";
  report.add_metric("paper_example.slowdown", "ratio", delay);

  const double p_full = noise::hit_probability(
      SimTime::us(250), SimTime::sec(600), 7'630'848);
  std::cout << "Full-scale Fugaku (N=7,630,848): once-per-600s noise hits a "
               "sync interval with probability "
            << TextTable::fmt(p_full, 3) << " (paper: close to 1)\n";
  report.add_metric("fugaku_full_scale.hit_probability", "ratio", p_full);

  print_banner(std::cout,
               "Noise amplification vs thread count (L=1ms, I=500s, "
               "S=250us)");
  TextTable t({"threads", "hit probability", "expected slowdown"});
  for (const std::uint64_t n :
       {1ull, 100ull, 10'000ull, 100'000ull, 1'000'000ull, 7'630'848ull}) {
    const double p =
        noise::hit_probability(SimTime::us(250), SimTime::sec(500), n);
    const double d =
        noise::bsp_noise_delay(std::span(&example, 1), SimTime::us(250), n);
    t.add_row({TextTable::fmt_int(static_cast<long long>(n)),
               TextTable::fmt(p, 4), TextTable::fmt_percent(d)});
    report.add_metric("amplification.n" + std::to_string(n) + ".slowdown",
                      "ratio", d);
  }
  t.print(std::cout);

  print_banner(std::cout,
               "Delay vs sync interval (bulk-synchronous sensitivity)");
  TextTable s({"sync interval", "slowdown at N=100k", "slowdown at N=7.6M"});
  for (const std::int64_t us : {50, 250, 1000, 10000, 100000}) {
    const SimTime sync = SimTime::us(us);
    s.add_row({sync.to_string(),
               TextTable::fmt_percent(noise::bsp_noise_delay(
                   std::span(&example, 1), sync, 100'000)),
               TextTable::fmt_percent(noise::bsp_noise_delay(
                   std::span(&example, 1), sync, 7'630'848))});
  }
  s.print(std::cout);

  obs::maybe_write_report(report, opts);
  return 0;
}
