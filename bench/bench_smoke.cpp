// Smoke harness for the machine-readable bench output (EXPERIMENTS.md,
// "Observability").
//
// Usage: bench_smoke <bench-binary> <output.json> [extra-args...]
//
// Runs `<bench-binary> --quick --json <output.json> [extra-args...]`,
// then re-reads the file and schema-validates it: required keys present,
// schema string matches, metrics non-empty, every value finite (the JSON
// writer refuses NaN/Inf outright; the validator re-checks parsed
// values). Extra arguments pass through verbatim — the trend_smoke job
// uses this to hand the tool its `--ledger <fixture>` input. Exit 0 only
// when the bench ran, wrote the file, and the document validates — this
// is what the per-bench `bench_smoke.*` ctest jobs execute.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/bench_report.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr
        << "usage: bench_smoke <bench-binary> <output.json> [extra-args...]\n";
    return 2;
  }
  const std::string binary = argv[1];
  const std::string json_path = argv[2];

  // Stale output must not mask a bench that silently stopped writing.
  std::remove(json_path.c_str());

  std::string cmd = binary + " --quick --json " + json_path;
  for (int i = 3; i < argc; ++i) {
    cmd += ' ';
    cmd += argv[i];
  }
  std::cout << "[bench_smoke] running: " << cmd << "\n" << std::flush;
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::cerr << "[bench_smoke] FAIL: bench exited with status " << rc
              << "\n";
    return 1;
  }

  std::ifstream in(json_path);
  if (!in) {
    std::cerr << "[bench_smoke] FAIL: bench did not write " << json_path
              << "\n";
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  hpcos::JsonValue doc;
  try {
    doc = hpcos::JsonValue::parse(text.str());
  } catch (const std::exception& e) {
    std::cerr << "[bench_smoke] FAIL: invalid JSON in " << json_path << ": "
              << e.what() << "\n";
    return 1;
  }
  const std::string violation = hpcos::obs::validate_bench_report(doc);
  if (!violation.empty()) {
    std::cerr << "[bench_smoke] FAIL: " << violation << "\n";
    return 1;
  }
  std::cout << "[bench_smoke] OK: " << json_path << " ("
            << doc.at("metrics").as_array().size() << " metrics)\n";
  return 0;
}
