// Figure 5 — CORAL mini-apps on Oakforest-PACS: AMG2013, Milc, Lulesh.
//
// Paper shape: McKernel >= Linux everywhere; AMG up to ~1.18, Milc up to
// ~1.22, Lulesh approaching ~2x, all with gains growing toward 8k nodes.
#include <iostream>

#include "app_bench_util.h"

int main(int argc, char** argv) {
  using namespace hpcos;

  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_fig5_coral_ofp", opts.quick, 20211114);

  const auto linux_env = cluster::make_ofp_linux_env();
  const auto mck_env = cluster::make_ofp_mckernel_env();

  const bench::FigurePlan plan = {
      {"AMG2013",
       {{16, 1.04}, {64, 1.05}, {256, 1.07}, {1024, 1.10},
        {4096, 1.15}, {8192, 1.18}}},
      {"Milc",
       {{16, 1.03}, {64, 1.05}, {256, 1.08}, {1024, 1.12},
        {4096, 1.18}, {8192, 1.22}}},
      {"Lulesh",
       {{16, 1.40}, {64, 1.45}, {256, 1.55}, {1024, 1.65},
        {4096, 1.85}, {8192, 1.95}}},
  };

  const auto rows = bench::run_plan(
      opts.quick ? bench::quick_plan(plan) : plan, apps::PlatformKind::kOfp,
      linux_env, mck_env, /*threads=*/0, /*trials=*/opts.quick ? 1 : 3);
  bench::print_figure(
      "Figure 5: CORAL applications on Oakforest-PACS (Linux = 1.0)", rows);
  bench::add_figure_metrics(report, rows);
  obs::maybe_write_report(report, opts);
  return 0;
}
