// Figure 7 — LQCD, GeoFEM and GAMERA on Fugaku (highly tuned Linux).
//
// Paper shape: LQCD ~1.00 (identical), GeoFEM ~1.03 roughly constant,
// GAMERA growing to ~1.29 at 8k nodes; ~4% average across everything.
#include <iostream>

#include "app_bench_util.h"

int main(int argc, char** argv) {
  using namespace hpcos;

  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_fig7_apps_fugaku", opts.quick, 20211114);

  const auto linux_env = cluster::make_fugaku_linux_env();
  const auto mck_env = cluster::make_fugaku_mckernel_env();

  const bench::FigurePlan plan = {
      {"LQCD", {{128, 1.00}, {512, 1.00}, {2048, 1.00}, {8192, 1.01}}},
      {"GeoFEM", {{128, 1.03}, {512, 1.03}, {2048, 1.03}, {8192, 1.03}}},
      {"GAMERA", {{128, 1.06}, {512, 1.10}, {2048, 1.18}, {8192, 1.29}}},
  };

  const auto rows = bench::run_plan(
      opts.quick ? bench::quick_plan(plan) : plan,
      apps::PlatformKind::kFugaku, linux_env, mck_env, /*threads=*/0,
      /*trials=*/opts.quick ? 1 : 3);
  double sum = 0.0;
  for (const auto& r : rows) sum += r.mckernel_relative;
  bench::print_figure(
      "Figure 7: LQCD / GeoFEM / GAMERA on Fugaku (Linux = 1.0)", rows);
  bench::add_figure_metrics(report, rows);

  // §6.4: "McKernel performs significantly better in the first step (out
  // of three)" — the registration-heavy setup lands there. Reproduce the
  // per-step view at 2,048 nodes (128 in smoke mode).
  {
    const std::int64_t nodes = opts.quick ? 128 : 2048;
    const auto w = apps::make_workload("GAMERA", apps::PlatformKind::kFugaku);
    const auto job =
        apps::job_geometry("GAMERA", apps::PlatformKind::kFugaku, nodes);
    cluster::BspEngine le(linux_env, job, Seed{77});
    cluster::BspEngine me(mck_env, job, Seed{77});
    const auto lr = le.run(*w);
    const auto mr = me.run(*w);
    hpcos::print_banner(std::cout,
                        "GAMERA per-step breakdown at " +
                            std::to_string(nodes) + " nodes");
    hpcos::TextTable steps({"step", "Linux (s)", "McKernel (s)",
                            "McKernel relative"});
    for (int step = 0; step < 3; ++step) {
      const SimTime l = lr.step_time(step, 3);
      const SimTime m = mr.step_time(step, 3);
      steps.add_row({hpcos::TextTable::fmt_int(step + 1),
                     hpcos::TextTable::fmt(l.to_sec(), 3),
                     hpcos::TextTable::fmt(m.to_sec(), 3),
                     hpcos::TextTable::fmt(l.ratio(m), 3)});
      report.add_metric("gamera.step" + std::to_string(step + 1) +
                            ".relative",
                        "ratio", l.ratio(m));
    }
    steps.print(std::cout);
    std::cout << "(the gain concentrates in step 1, where registration-"
                 "heavy setup lands — §6.4)\n";
  }
  const double avg_gain_pct = (sum / rows.size() - 1.0) * 100.0;
  std::cout << "\nAverage McKernel gain across Fugaku experiments: "
            << hpcos::TextTable::fmt(avg_gain_pct, 1)
            << "% (paper: ~4% across all experiments)\n";
  report.add_metric("average_gain", "percent", avg_gain_pct);
  obs::maybe_write_report(report, opts);
  return 0;
}
