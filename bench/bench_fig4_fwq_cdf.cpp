// Figure 4 — FWQ latency CDFs: OFP vs Fugaku, Linux vs IHK/McKernel.
//
// The paper's configurations:
//   (a) OFP, 1,024 nodes: Linux and McKernel
//   (b) Fugaku: Linux at full scale (158,976 nodes), Linux on 24 racks
//       (9,216 nodes), McKernel on 24 racks
// Ten ~6-minute measurements (1 h of 6.5 ms quanta) on every application
// core; the worst 100 nodes' data are retained. The campaigns here run the
// statistical node sampler (validated against the node DES in the test
// suite) over the same populations.
//
// Expected shape (§6.3): OFP-Linux tail reaches ~24 ms; OFP-McKernel stays
// under ~7 ms; Fugaku-Linux at full scale reaches ~10 ms; Linux on 24
// racks is only slightly worse than McKernel.
#include <chrono>
#include <iostream>

#include "cluster/config_json.h"
#include "cluster/fwq_campaign.h"
#include "common/ascii_plot.h"
#include "common/parallel.h"
#include "common/table.h"
#include "noise/profiles.h"
#include "obs/bench_report.h"
#include "obs/prof/prof.h"
#include "obs/prof_report.h"
#include "obs/registry.h"

namespace {

using namespace hpcos;

struct Config {
  std::string slug;
  std::string label;
  noise::AnalyticNoiseProfile profile;
  std::int64_t nodes;
  int app_cores;
  double paper_tail_ms;  // approximate worst iteration from the figure
};

bool identical_results(const cluster::FwqCampaignResult& a,
                       const cluster::FwqCampaignResult& b) {
  if (a.total_iterations != b.total_iterations ||
      a.stats.t_min != b.stats.t_min || a.stats.t_max != b.stats.t_max ||
      a.stats.noise_rate != b.stats.noise_rate ||
      a.worst_node_max_us != b.worst_node_max_us ||
      a.cdf.total_count() != b.cdf.total_count()) {
    return false;
  }
  for (std::size_t i = 0; i < a.cdf.num_bins(); ++i) {
    if (a.cdf.bin_count(i) != b.cdf.bin_count(i)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_fig4_fwq_cdf", opts.quick, 20211115);
  // Smoke mode shrinks the populations and the per-core wall time; the
  // configurations, the parallelism check, and the registry parity check
  // all still run.
  const bool q = opts.quick;
  const SimTime duration = SimTime::sec(q ? 300 : 3600);

  const std::vector<Config> configs = {
      {"ofp_linux", "OFP / Linux, 1024 nodes", noise::ofp_linux_profile(),
       q ? 64 : 1024, 256, 24.0},
      {"ofp_mckernel", "OFP / McKernel, 1024 nodes",
       noise::ofp_mckernel_profile(), q ? 64 : 1024, 256, 7.0},
      {"fugaku_linux_full", "Fugaku / Linux, full scale",
       noise::fugaku_linux_profile(), q ? 512 : 158976, 48, 10.0},
      {"fugaku_linux_24racks", "Fugaku / Linux, 24 racks",
       noise::fugaku_linux_profile(), q ? 256 : 9216, 48, 7.5},
      {"fugaku_mckernel_24racks", "Fugaku / McKernel, 24 racks",
       noise::fugaku_mckernel_profile(), q ? 256 : 9216, 48, 7.0},
  };

  print_banner(std::cout,
               "Figure 4: FWQ iteration-length CDFs (6.5 ms quanta, 1 h "
               "per core)");
  TextTable t({"configuration", "p50 (ms)", "p99 (ms)", "p99.99 (ms)",
               "max (ms)", "paper max (ms)", "iterations"});
  std::vector<cluster::FwqCampaignResult> results;
  for (const auto& c : configs) {
    cluster::FwqCampaignConfig cfg;
    cfg.nodes = c.nodes;
    cfg.app_cores = c.app_cores;
    cfg.duration_per_core = duration;
    cfg.max_materialized_hits = c.nodes > 20000 ? 256 : 2048;
    cfg.seed = Seed{20211115};
    results.push_back(cluster::run_fwq_campaign(c.profile, cfg));
    const auto& r = results.back();
    t.add_row({c.label,
               TextTable::fmt(r.cdf.quantile(0.50) / 1000.0, 3),
               TextTable::fmt(r.cdf.quantile(0.99) / 1000.0, 3),
               TextTable::fmt(r.cdf.quantile(0.9999) / 1000.0, 3),
               TextTable::fmt(r.stats.t_max.to_ms(), 2),
               TextTable::fmt(c.paper_tail_ms, 1),
               TextTable::fmt_int(
                   static_cast<long long>(r.total_iterations))});
    report.add_metric(c.slug + ".p50_ms", "ms",
                      r.cdf.quantile(0.50) / 1000.0);
    report.add_metric(c.slug + ".p99_ms", "ms",
                      r.cdf.quantile(0.99) / 1000.0);
    report.add_metric(c.slug + ".max_ms", "ms", r.stats.t_max.to_ms());
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  t.print(std::cout);

  // Draw the CDF tails (fraction of iterations at or below x), matching
  // the figure's layout: OFP on one panel, Fugaku on the other.
  auto tail_series = [](const std::string& label, char glyph,
                        const cluster::FwqCampaignResult& r) {
    PlotSeries s{.label = label, .glyph = glyph, .points = {}};
    for (const auto& [x_us, frac] : r.cdf.cdf_points()) {
      if (frac < 0.95) continue;  // the figure's interesting region
      s.points.emplace_back(x_us / 1000.0, frac);
    }
    return s;
  };
  std::vector<PlotSeries> ofp_panel;
  std::vector<PlotSeries> fugaku_panel;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const char glyph = "LMFLM"[i];
    (i < 2 ? ofp_panel : fugaku_panel)
        .push_back(tail_series(configs[i].label, glyph, results[i]));
  }
  print_banner(std::cout, "Figure 4a: OFP CDF tails (x: iteration ms)");
  ascii_plot(std::cout, ofp_panel,
             PlotOptions{.log_x = true, .x_label = "iteration (ms)"});
  print_banner(std::cout, "Figure 4b: Fugaku CDF tails (x: iteration ms)");
  ascii_plot(std::cout, fugaku_panel,
             PlotOptions{.log_x = true, .x_label = "iteration (ms)"});

  // Worst-100-node view for the full-scale Fugaku run (what the paper
  // saves to the parallel file system).
  cluster::FwqCampaignConfig cfg;
  cfg.nodes = q ? 512 : 158976;
  cfg.app_cores = 48;
  cfg.duration_per_core = duration;
  cfg.max_materialized_hits = 256;
  cfg.seed = Seed{20211115};
  // Ledger identity for this bench: the headline full-scale campaign
  // config (quick vs full runs hash differently, as they must — the node
  // population is a semantic knob).
  report.set_config(cluster::to_config_json(cfg));
  const auto full = cluster::run_fwq_campaign(noise::fugaku_linux_profile(),
                                              cfg);
  print_banner(std::cout,
               "Fugaku full scale: worst-node maxima (100 retained nodes)");
  TextTable w({"node rank", "worst iteration (ms)"});
  for (std::size_t i = 0; i < full.worst_node_max_us.size(); i += 10) {
    w.add_row({TextTable::fmt_int(static_cast<long long>(i + 1)),
               TextTable::fmt(full.worst_node_max_us[i] / 1000.0, 2)});
  }
  w.print(std::cout);
  if (!full.worst_node_max_us.empty()) {
    report.add_metric("full_scale.worst_node_ms", "ms",
                      full.worst_node_max_us.front() / 1000.0);
  }

  // Host parallelism and observability parity on the OFP/Linux campaign:
  //  * serial vs the work-stealing scheduler must be bit-identical
  //    (DESIGN §6), with the speedup tracking the affinity-mask core
  //    count (on a 1-CPU runner it is ~1x and only the bit-identity
  //    check carries signal — see EXPERIMENTS.md "Scheduler");
  //  * attaching an obs::Registry must not change a single bit of the
  //    result, and its cost must be in the noise — the instrumented paths
  //    count shard-locally and fold once at the end, so "registry on" is
  //    perf-parity with "registry off".
  {
    print_banner(std::cout,
                 "Host parallelism & registry parity: serial vs pool vs "
                 "instrumented");
    cluster::FwqCampaignConfig pcfg;
    pcfg.nodes = q ? 64 : 1024;
    pcfg.app_cores = 256;
    pcfg.duration_per_core = duration;
    pcfg.max_materialized_hits = 2048;
    pcfg.seed = Seed{20211115};
    auto timed_run = [&](std::size_t threads, obs::Registry* registry) {
      pcfg.threads = threads;
      pcfg.registry = registry;
      const auto start = std::chrono::steady_clock::now();
      auto r = cluster::run_fwq_campaign(noise::ofp_linux_profile(), pcfg);
      const auto stop = std::chrono::steady_clock::now();
      return std::make_pair(
          std::move(r),
          std::chrono::duration<double>(stop - start).count());
    };
    const auto [serial, serial_s] = timed_run(1, nullptr);
    const auto [pooled, pooled_s] = timed_run(default_parallelism(), nullptr);
    obs::Registry registry;
    const auto [instrumented, instr_s] = timed_run(1, &registry);

    const bool pool_identical = identical_results(serial, pooled);
    const bool registry_identical = identical_results(serial, instrumented);
    const double overhead = instr_s / serial_s;
    std::cout << "threads=1: " << TextTable::fmt(serial_s, 3)
              << " s;  threads=" << default_parallelism() << ": "
              << TextTable::fmt(pooled_s, 3) << " s;  speedup "
              << TextTable::fmt(serial_s / pooled_s, 2) << "x;  results "
              << (pool_identical ? "bit-identical" : "DIFFER (BUG)")
              << "\n";
    std::cout << "registry attached (threads=1): "
              << TextTable::fmt(instr_s, 3) << " s;  overhead "
              << TextTable::fmt(overhead, 3) << "x;  results "
              << (registry_identical ? "bit-identical" : "DIFFER (BUG)")
              << ";  topk pushes="
              << registry.find_counter("fwq.topk.pushes")->value()
              << " evictions="
              << registry.find_counter("fwq.topk.evictions")->value()
              << "\n";
    report.add_metric("parallel.speedup", "ratio", serial_s / pooled_s);
    report.add_metric("parallel.bit_identical", "count",
                      pool_identical ? 1.0 : 0.0);
    report.add_metric("registry.bit_identical", "count",
                      registry_identical ? 1.0 : 0.0);
    report.add_metric("registry.overhead_ratio", "ratio", overhead);
    report.add_metric(
        "registry.topk_pushes", "count",
        static_cast<double>(
            registry.find_counter("fwq.topk.pushes")->value()));
  }

  // Profiler parity on the same campaign: the host-side self-profiler
  // (obs/prof) must obey the registry's contract — enabling it changes
  // no bit of the simulation result, and its scope fire counts are a
  // pure function of the simulated work (gated), while its times are
  // host-dependent (host.*, ignored). The disabled case is the default
  // everywhere else in this binary, so the campaign timings above double
  // as the "one branch when off" regression check.
  {
    print_banner(std::cout, "Profiler parity: prof off vs prof on");
    cluster::FwqCampaignConfig pcfg;
    pcfg.nodes = q ? 64 : 1024;
    pcfg.app_cores = 256;
    pcfg.duration_per_core = duration;
    pcfg.max_materialized_hits = 2048;
    pcfg.seed = Seed{20211115};
    auto timed_run = [&]() {
      const auto start = std::chrono::steady_clock::now();
      auto r = cluster::run_fwq_campaign(noise::ofp_linux_profile(), pcfg);
      const auto stop = std::chrono::steady_clock::now();
      return std::make_pair(
          std::move(r),
          std::chrono::duration<double>(stop - start).count());
    };
    const bool was_enabled = obs::prof::enabled();
    obs::prof::set_enabled(false);
    const auto [plain, plain_s] = timed_run();
    obs::prof::reset();
    obs::prof::set_enabled(true);
    const auto [profiled, prof_s] = timed_run();
    obs::prof::set_enabled(was_enabled);
    const auto profile = obs::prof::collect();

    const bool prof_identical = identical_results(plain, profiled);
    const auto* shard_stat = profile.find("fwq.shard");
    std::cout << "prof off: " << TextTable::fmt(plain_s, 3)
              << " s;  prof on: " << TextTable::fmt(prof_s, 3)
              << " s;  overhead " << TextTable::fmt(prof_s / plain_s, 3)
              << "x;  results "
              << (prof_identical ? "bit-identical" : "DIFFER (BUG)")
              << ";  scope events=" << profile.events
              << " dropped=" << profile.dropped << "\n";
    obs::print_profile(std::cout, profile, /*top=*/10);
    report.add_metric("prof.bit_identical", "count",
                      prof_identical ? 1.0 : 0.0);
    report.add_metric("prof.dropped", "count",
                      static_cast<double>(profile.dropped));
    report.add_metric(
        "prof.fwq.shard.count", "count",
        shard_stat != nullptr ? static_cast<double>(shard_stat->count) : 0.0);
    report.add_metric("host.prof.overhead_ratio", "ratio", prof_s / plain_s);
    if (!prof_identical) return 1;
  }

  // nodes_per_shard sweep: shard geometry fixes the floating-point
  // summation order (determinism contract), so the tunable trade-off is
  // merge overhead (many small shards → many histogram merges) against
  // scheduling granularity (few large shards → poor load balance across
  // the pool). Wall time per geometry is host-dependent (the bench gate
  // ignores it); noise_rate per geometry is deterministic and gated, so a
  // change in how sharding folds the sums cannot slip through. The default
  // of 64 nodes/shard sits in the flat center of this curve: ~2,500 shards
  // at full Fugaku scale (158,976 nodes) keeps every pool width busy while
  // merge cost stays ~0.1% of the campaign.
  {
    print_banner(std::cout,
                 "nodes_per_shard sweep: merge overhead vs scheduling "
                 "granularity");
    cluster::FwqCampaignConfig scfg;
    scfg.nodes = q ? 256 : 4096;
    scfg.app_cores = 48;
    scfg.duration_per_core = duration;
    scfg.max_materialized_hits = 1024;
    scfg.seed = Seed{20211115};
    TextTable st({"nodes/shard", "shards", "wall (s)", "noise rate"});
    for (std::size_t c = 1; c < st.num_columns(); ++c) {
      st.set_align(c, Align::kRight);
    }
    for (const std::int64_t per_shard : {8L, 32L, 64L, 256L, 1024L}) {
      scfg.nodes_per_shard = per_shard;
      const auto start = std::chrono::steady_clock::now();
      const auto r =
          cluster::run_fwq_campaign(noise::fugaku_linux_profile(), scfg);
      const auto stop = std::chrono::steady_clock::now();
      const double wall_s =
          std::chrono::duration<double>(stop - start).count();
      const std::int64_t shards =
          (scfg.nodes + per_shard - 1) / per_shard;
      st.add_row({TextTable::fmt_int(per_shard),
                  TextTable::fmt_int(shards), TextTable::fmt(wall_s, 3),
                  TextTable::fmt_sci(r.stats.noise_rate, 4)});
      const std::string slug =
          "shard_sweep." + std::to_string(per_shard);
      report.add_metric(slug + ".noise_rate", "ratio", r.stats.noise_rate);
      report.add_metric(slug + ".wall_s", "s", wall_s);
    }
    st.print(std::cout);
    report.add_metric("shard_sweep.default", "count", 64.0);
  }
  obs::maybe_write_report(report, opts);
  return 0;
}
