// Ablation — page size, TLB reach, and large-page policy (§4.1.3).
//
// For both TLB geometries (KNL: 64 L2 entries; A64FX: 1,024) and each page
// size of the study, reports as counters:
//   slowdown      — address-translation multiplier on a memory-bound phase
//   reach_mib     — address space covered by the last-level TLB
//   fault_in_ms   — first-touch cost of the working set at this page size
// This is the quantitative backdrop for Fugaku's hugeTLBfs-with-contiguous-
// bit decision: 2M pages give A64FX 2 GiB of reach while 512M pages would
// fragment memory, and the 64K base leaves only 64 MiB.
#include <benchmark/benchmark.h>

#include "hw/platform.h"
#include "hw/tlb.h"
#include "oskernel/costs.h"

namespace {

using namespace hpcos;

const hw::PageSize kPages[] = {hw::PageSize::k4K, hw::PageSize::k64K,
                               hw::PageSize::k2M, hw::PageSize::k512M};

void BM_PagePolicy(benchmark::State& state) {
  const bool fugaku = state.range(0) != 0;
  const hw::PageSize page = kPages[state.range(1)];
  const auto ws = static_cast<std::uint64_t>(state.range(2)) << 20;

  const auto platform =
      fugaku ? hw::make_fugaku_platform() : hw::make_ofp_platform();
  const hw::TlbModel tlb(platform.tlb);
  const os::KernelCosts costs;

  double slowdown = 0.0;
  for (auto _ : state) {
    slowdown = tlb.access_slowdown(ws, page);
    benchmark::DoNotOptimize(slowdown);
  }

  const std::uint64_t pages = ws / hw::bytes(page);
  const SimTime per_fault = hw::bytes(page) <= hw::bytes(hw::PageSize::k64K)
                                ? costs.page_fault_base
                                : costs.page_fault_large;
  state.counters["slowdown"] = slowdown;
  state.counters["reach_mib"] =
      static_cast<double>(tlb.reach_bytes(page)) / (1 << 20);
  state.counters["fault_in_ms"] =
      (per_fault * static_cast<std::int64_t>(pages)).to_ms();
  state.SetLabel(std::string(fugaku ? "A64FX" : "KNL") + "/" +
                 hw::to_string(page) + "/ws=" +
                 std::to_string(state.range(2)) + "MiB");
}

void PageArgs(benchmark::internal::Benchmark* b) {
  for (int platform : {0, 1}) {
    for (int page = 0; page < 4; ++page) {
      for (int ws_mib : {256, 2048, 16384}) {
        b->Args({platform, page, ws_mib});
      }
    }
  }
}

BENCHMARK(BM_PagePolicy)->Apply(PageArgs);

}  // namespace

BENCHMARK_MAIN();
