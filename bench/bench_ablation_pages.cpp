// Ablation — page size, TLB reach, and large-page policy (§4.1.3).
//
// For both TLB geometries (KNL: 64 L2 entries; A64FX: 1,024) and each page
// size of the study, reports as counters:
//   slowdown      — address-translation multiplier on a memory-bound phase
//   reach_mib     — address space covered by the last-level TLB
//   fault_in_ms   — first-touch cost of the working set at this page size
// This is the quantitative backdrop for Fugaku's hugeTLBfs-with-contiguous-
// bit decision: 2M pages give A64FX 2 GiB of reach while 512M pages would
// fragment memory, and the 64K base leaves only 64 MiB.
#include <benchmark/benchmark.h>

#include "hw/platform.h"
#include "hw/tlb.h"
#include "obs/bench_report.h"
#include "oskernel/costs.h"

namespace {

using namespace hpcos;

const hw::PageSize kPages[] = {hw::PageSize::k4K, hw::PageSize::k64K,
                               hw::PageSize::k2M, hw::PageSize::k512M};

void BM_PagePolicy(benchmark::State& state) {
  const bool fugaku = state.range(0) != 0;
  const hw::PageSize page = kPages[state.range(1)];
  const auto ws = static_cast<std::uint64_t>(state.range(2)) << 20;

  const auto platform =
      fugaku ? hw::make_fugaku_platform() : hw::make_ofp_platform();
  const hw::TlbModel tlb(platform.tlb);
  const os::KernelCosts costs;

  double slowdown = 0.0;
  for (auto _ : state) {
    slowdown = tlb.access_slowdown(ws, page);
    benchmark::DoNotOptimize(slowdown);
  }

  const std::uint64_t pages = ws / hw::bytes(page);
  const SimTime per_fault = hw::bytes(page) <= hw::bytes(hw::PageSize::k64K)
                                ? costs.page_fault_base
                                : costs.page_fault_large;
  state.counters["slowdown"] = slowdown;
  state.counters["reach_mib"] =
      static_cast<double>(tlb.reach_bytes(page)) / (1 << 20);
  state.counters["fault_in_ms"] =
      (per_fault * static_cast<std::int64_t>(pages)).to_ms();
  state.SetLabel(std::string(fugaku ? "A64FX" : "KNL") + "/" +
                 hw::to_string(page) + "/ws=" +
                 std::to_string(state.range(2)) + "MiB");
}

void PageArgs(benchmark::internal::Benchmark* b) {
  for (int platform : {0, 1}) {
    for (int page = 0; page < 4; ++page) {
      for (int ws_mib : {256, 2048, 16384}) {
        b->Args({platform, page, ws_mib});
      }
    }
  }
}

BENCHMARK(BM_PagePolicy)->Apply(PageArgs);

}  // namespace

// With `--json`/`--quick` the TLB model is evaluated directly (it is pure
// computation) and a BenchReport is emitted; otherwise the remaining argv
// goes to google-benchmark as usual.
int main(int argc, char** argv) {
  using namespace hpcos;
  const auto opts = obs::parse_bench_options(argc, argv);
  if (!opts.sinks.json_path.empty() || opts.quick) {
    obs::BenchReport report("bench_ablation_pages", opts.quick);
    const os::KernelCosts costs;
    const std::uint64_t ws = 2048ull << 20;  // the mid-size working set
    for (const bool fugaku : {false, true}) {
      const auto platform =
          fugaku ? hw::make_fugaku_platform() : hw::make_ofp_platform();
      const hw::TlbModel tlb(platform.tlb);
      for (const hw::PageSize page : kPages) {
        const std::string slug = std::string(fugaku ? "a64fx" : "knl") +
                                 "." + hw::to_string(page);
        const std::uint64_t pages = ws / hw::bytes(page);
        const SimTime per_fault =
            hw::bytes(page) <= hw::bytes(hw::PageSize::k64K)
                ? costs.page_fault_base
                : costs.page_fault_large;
        report.add_metric(slug + ".slowdown", "ratio",
                          tlb.access_slowdown(ws, page));
        report.add_metric(
            slug + ".reach_mib", "mib",
            static_cast<double>(tlb.reach_bytes(page)) / (1 << 20));
        report.add_metric(
            slug + ".fault_in_ms", "ms",
            (per_fault * static_cast<std::int64_t>(pages)).to_ms());
      }
    }
    obs::maybe_write_report(report, opts);
    return 0;
  }
  int bargc = static_cast<int>(opts.remaining.size());
  std::vector<char*> bargv = opts.remaining;
  benchmark::Initialize(&bargc, bargv.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
