// Ablation — system-call locality on the multi-kernel (§5, §5.1).
//
// On a full multi-kernel node DES (Linux + IHK + McKernel + proxy), times
// three classes of call and reports the simulated round-trip as a counter:
//   local       — a call McKernel implements itself (gettimeofday)
//   offloaded   — a delegated call (stat) through IKC + proxy
//   pico        — Tofu STAG registration with the PicoDriver vs offloaded
// This quantifies the design choice the PicoDriver exists for: the offload
// path costs microseconds per call, intolerable inside registration loops.
#include <benchmark/benchmark.h>

#include "cluster/node.h"
#include "mckernel/offload.h"
#include "obs/bench_report.h"

namespace {

using namespace hpcos;

// Runs `count` back-to-back invocations of one syscall on the LWK and
// returns the mean simulated round-trip in us.
double measure_syscall(os::Syscall no, os::SyscallArgs args, bool picodriver,
                       int count) {
  auto platform = hw::make_fugaku_testbed_platform();
  auto lcfg = linuxk::make_fugaku_linux_config(platform);
  lcfg.profile = noise::AnalyticNoiseProfile{};
  auto mcfg = mck::McKernelConfig::defaults();
  mcfg.hw_noise = noise::AnalyticNoiseProfile{};
  mcfg.picodriver.enabled = picodriver;
  auto node = cluster::SimNode::make_multikernel_node(
      platform, std::move(lcfg), std::move(mcfg),
      cluster::SimNodeOptions{.seed = Seed{11}});

  struct Caller final : os::ThreadBody {
    os::Syscall no;
    os::SyscallArgs args;
    int remaining;
    SimTime start;
    SimTime elapsed;
    bool started = false;
    void step(os::ThreadContext& ctx) override {
      if (!started) {
        started = true;
        start = ctx.now();
      }
      if (remaining-- > 0) {
        ctx.invoke(no, args);
        return;
      }
      elapsed = ctx.now() - start;
      ctx.exit();
    }
  };
  auto body = std::make_unique<Caller>();
  body->no = no;
  body->args = args;
  body->remaining = count;
  Caller* c = body.get();
  node->lwk()->spawn(std::move(body), os::SpawnAttrs{.name = "caller"});
  node->simulator().run_until(SimTime::sec(30));
  return c->elapsed.to_us() / count;
}

void BM_LocalSyscall(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = measure_syscall(os::Syscall::kGetTimeOfDay, {}, false, 100);
  }
  state.counters["sim_roundtrip_us"] = us;
}

void BM_OffloadedSyscall(benchmark::State& state) {
  double us = 0;
  for (auto _ : state) {
    us = measure_syscall(os::Syscall::kStat, {}, false, 100);
  }
  state.counters["sim_roundtrip_us"] = us;
}

void BM_StagRegistrationOffloaded(benchmark::State& state) {
  const os::SyscallArgs reg{.arg0 = 0, .arg1 = 64ull << 20,
                            .arg2 = mck::kTofuRegisterStag};
  double us = 0;
  for (auto _ : state) {
    us = measure_syscall(os::Syscall::kIoctl, reg, false, 50);
  }
  state.counters["sim_roundtrip_us"] = us;
}

void BM_StagRegistrationPicoDriver(benchmark::State& state) {
  const os::SyscallArgs reg{.arg0 = 0, .arg1 = 64ull << 20,
                            .arg2 = mck::kTofuRegisterStag};
  double us = 0;
  for (auto _ : state) {
    us = measure_syscall(os::Syscall::kIoctl, reg, true, 50);
  }
  state.counters["sim_roundtrip_us"] = us;
}

BENCHMARK(BM_LocalSyscall)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OffloadedSyscall)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StagRegistrationOffloaded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StagRegistrationPicoDriver)->Unit(benchmark::kMillisecond);

}  // namespace

// With `--json`/`--quick` the measurement cores run directly (one pass,
// simulated time only) and a BenchReport is emitted; otherwise the
// remaining argv goes to google-benchmark as usual.
int main(int argc, char** argv) {
  const auto opts = hpcos::obs::parse_bench_options(argc, argv);
  if (!opts.sinks.json_path.empty() || opts.quick) {
    hpcos::obs::BenchReport report("bench_ablation_offload", opts.quick, 11);
    const int count = opts.quick ? 20 : 100;
    const hpcos::os::SyscallArgs reg{
        .arg0 = 0, .arg1 = 64ull << 20, .arg2 = hpcos::mck::kTofuRegisterStag};
    report.add_metric(
        "local.sim_roundtrip_us", "us",
        measure_syscall(hpcos::os::Syscall::kGetTimeOfDay, {}, false, count));
    report.add_metric(
        "offloaded.sim_roundtrip_us", "us",
        measure_syscall(hpcos::os::Syscall::kStat, {}, false, count));
    report.add_metric(
        "stag_offloaded.sim_roundtrip_us", "us",
        measure_syscall(hpcos::os::Syscall::kIoctl, reg, false, count / 2));
    report.add_metric(
        "stag_picodriver.sim_roundtrip_us", "us",
        measure_syscall(hpcos::os::Syscall::kIoctl, reg, true, count / 2));
    hpcos::obs::maybe_write_report(report, opts);
    return 0;
  }
  int bargc = static_cast<int>(opts.remaining.size());
  std::vector<char*> bargv = opts.remaining;
  benchmark::Initialize(&bargc, bargv.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
