// Isolation ablation — configured vs structural performance isolation.
//
// §1/§7: a recurring argument for multi-kernels is performance isolation.
// On Linux, isolation is *configuration*: cgroups bind system work to the
// assistant cores, and a service that escapes its cgroup (or was never
// placed in one) lands on application cores. On the multi-kernel,
// isolation is *structural*: Linux's scheduler does not own the LWK
// cores, so no Linux-side process can ever run there.
//
// Scenario: an aggressor service wakes every 20 ms and burns 300 us of
// CPU while FWQ measures the application cores. Three configurations:
//   (a) Linux, aggressor correctly bound to the assistant cores (cgroup)
//   (b) Linux, aggressor unbound (the cgroup misconfiguration case)
//   (c) multi-kernel: aggressor unbound *on Linux* — which only owns the
//       assistant cores, so the LWK cores never see it
#include <iostream>

#include "cluster/node.h"
#include "common/table.h"
#include "noise/fwq.h"
#include "noise/metrics.h"
#include "obs/bench_report.h"

namespace {

using namespace hpcos;

// The aggressor: sleep 20 ms, burn 300 us, repeat.
class Aggressor final : public os::ThreadBody {
 public:
  explicit Aggressor(RngStream rng) : rng_(rng) {}
  void step(os::ThreadContext& ctx) override {
    if (computing_) {
      computing_ = false;
      ctx.sleep_for(rng_.exponential_time(SimTime::ms(20)));
    } else {
      computing_ = true;
      ctx.compute(SimTime::us(300));
    }
  }

 private:
  RngStream rng_;
  bool computing_ = false;
};

noise::NoiseStats measure(os::NodeKernel& app_kernel,
                          linuxk::LinuxKernel& linux,
                          const hw::NodeTopology& topo, bool bind_aggressor,
                          std::uint64_t iterations) {
  for (int i = 0; i < 4; ++i) {
    os::SpawnAttrs attrs;
    attrs.name = "aggressor-" + std::to_string(i);
    if (bind_aggressor) attrs.affinity = topo.system_cores();
    linux.spawn(std::make_unique<Aggressor>(
                    RngStream(Seed{1000 + std::uint64_t(i)}, 0)),
                std::move(attrs));
  }
  noise::FwqConfig fwq;
  fwq.work_quantum = SimTime::from_ms(6.5);
  fwq.iterations = iterations;
  const auto traces =
      noise::run_fwq(app_kernel, topo.application_cores(), fwq);
  return noise::compute_noise_stats(traces);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_isolation", opts.quick, 1);
  const std::uint64_t iterations = opts.quick ? 500 : 5000;
  const auto platform = hw::make_fugaku_testbed_platform();
  auto quiet = [&] {
    auto cfg = linuxk::make_fugaku_linux_config(platform);
    cfg.profile = noise::AnalyticNoiseProfile{};  // isolate the aggressor
    return cfg;
  };

  auto linux_bound = cluster::SimNode::make_linux_node(
      platform, quiet(), cluster::SimNodeOptions{.seed = Seed{1}});
  const auto bound = measure(linux_bound->app_kernel(), linux_bound->linux(),
                             linux_bound->topology(), true, iterations);

  auto linux_unbound = cluster::SimNode::make_linux_node(
      platform, quiet(), cluster::SimNodeOptions{.seed = Seed{1}});
  const auto unbound =
      measure(linux_unbound->app_kernel(), linux_unbound->linux(),
              linux_unbound->topology(), false, iterations);

  auto mcfg = mck::McKernelConfig::defaults();
  mcfg.hw_noise = noise::AnalyticNoiseProfile{};
  auto mk = cluster::SimNode::make_multikernel_node(
      platform, quiet(), std::move(mcfg),
      cluster::SimNodeOptions{.seed = Seed{1}});
  const auto structural =
      measure(mk->app_kernel(), mk->linux(), mk->topology(), false,
              iterations);

  print_banner(std::cout,
               "Isolation: configured (cgroup) vs structural (multi-kernel)");
  TextTable t({"configuration", "max noise length", "noise rate (Eq. 2)"});
  t.add_row({"Linux, aggressor cgroup-bound",
             bound.max_noise_length.to_string(),
             TextTable::fmt_sci(bound.noise_rate, 2)});
  t.add_row({"Linux, aggressor escapes the cgroup",
             unbound.max_noise_length.to_string(),
             TextTable::fmt_sci(unbound.noise_rate, 2)});
  t.add_row({"Multi-kernel, aggressor unbound on Linux",
             structural.max_noise_length.to_string(),
             TextTable::fmt_sci(structural.noise_rate, 2)});
  t.print(std::cout);
  report.add_metric("cgroup_bound.max_noise_us", "us",
                    bound.max_noise_length.to_us());
  report.add_metric("cgroup_escaped.max_noise_us", "us",
                    unbound.max_noise_length.to_us());
  report.add_metric("multikernel.max_noise_us", "us",
                    structural.max_noise_length.to_us());
  report.add_metric("cgroup_bound.noise_rate", "ratio", bound.noise_rate);
  report.add_metric("cgroup_escaped.noise_rate", "ratio",
                    unbound.noise_rate);
  report.add_metric("multikernel.noise_rate", "ratio",
                    structural.noise_rate);
  std::cout << "\ncgroup isolation works only while the configuration is "
               "right; the\nmulti-kernel's partition is enforced by "
               "ownership — Linux cannot\nschedule anything on cores it "
               "does not manage (§1, §7).\n";
  obs::maybe_write_report(report, opts);
  return 0;
}
