// Table 2 — effectiveness of individual noise elimination techniques.
//
// Reproduces the paper's methodology on the simulated 16-node A64FX
// testbed: run FWQ (~6.5 ms quanta) on every application core of a node
// DES with all countermeasures enabled, then with each one disabled in
// turn, and report the maximum noise length and the noise rate (Eq. 2).
//
// Paper values:
//   None                          50.44 us    3.79E-6
//   Daemon process             20346.98 us    9.94E-4
//   Unbound kworker tasks        266.34 us    4.58E-6
//   blk-mq worker tasks          387.91 us    4.58E-6
//   PMU counter reads            103.09 us    8.27E-6
//   CPU-global flush instr.       90.20 us    3.87E-6
#include <iostream>

#include "cluster/des_cluster.h"
#include "common/table.h"
#include "noise/fwq.h"
#include "noise/metrics.h"
#include "obs/bench_report.h"

namespace {

using namespace hpcos;

struct Row {
  std::string label;
  std::string slug;
  noise::Countermeasures cm;
  double paper_max_us;
  double paper_rate;
};

noise::NoiseStats measure(const noise::Countermeasures& cm, Seed seed,
                          int nodes, std::uint64_t iterations) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto cfg = linuxk::make_fugaku_linux_config(platform, cm);
  cfg.profile = noise::strip_population_tails(cfg.profile);

  // A real shared-clock cluster, like the in-house 16-node system: FWQ
  // starts simultaneously on every application core of every node.
  cluster::DesCluster cluster(nodes, platform, cfg,
                              cluster::DesCluster::Options{.seed = seed});
  noise::FwqConfig fwq;
  fwq.work_quantum = SimTime::from_ms(6.5);
  fwq.iterations = iterations;
  const auto per_node = cluster.run_fwq_all(fwq);
  std::vector<noise::FwqTrace> flat;
  for (const auto& traces : per_node) {
    flat.insert(flat.end(), traces.begin(), traces.end());
  }
  return noise::compute_noise_stats(flat);
}

}  // namespace

int main(int argc, char** argv) {
  using CM = noise::Countermeasures;
  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_table2_countermeasures", opts.quick, 42);
  const std::vector<Row> rows = {
      {"None", "none", CM{}, 50.44, 3.79e-6},
      {"Daemon process", "daemon", CM{.bind_daemons = false}, 20346.98,
       9.94e-4},
      {"Unbound kworker tasks", "kworker", CM{.bind_kworkers = false},
       266.34, 4.58e-6},
      {"blk-mq worker tasks", "blkmq", CM{.bind_blkmq = false}, 387.91,
       4.58e-6},
      {"PMU counter reads", "pmu", CM{.stop_pmu_reads = false}, 103.09,
       8.27e-6},
      {"CPU-global flush instruction", "global_tlbi",
       CM{.suppress_global_tlbi = false}, 90.2, 3.87e-6},
  };

  // 8 simulated nodes x ~200 s of FWQ per core keeps the DES tractable
  // while sampling each source's clamp region (the paper used 16 nodes).
  // Smoke mode shrinks to one node and a short series.
  const int kNodes = opts.quick ? 1 : 8;
  const std::uint64_t kIterations = opts.quick ? 1'000 : 30'000;

  print_banner(std::cout,
               "Table 2: Effectiveness of individual noise elimination "
               "techniques (A64FX testbed DES)");
  TextTable t({"Disabled technique", "Max noise length (us)", "Noise rate",
               "paper max (us)", "paper rate"});
  for (const auto& row : rows) {
    const auto stats = measure(row.cm, Seed{42}, kNodes, kIterations);
    t.add_row({row.label,
               TextTable::fmt(stats.max_noise_length.to_us(), 2),
               TextTable::fmt_sci(stats.noise_rate, 2),
               TextTable::fmt(row.paper_max_us, 2),
               TextTable::fmt_sci(row.paper_rate, 2)});
    report.add_metric(row.slug + ".max_noise_us", "us",
                      stats.max_noise_length.to_us());
    report.add_metric(row.slug + ".noise_rate", "ratio", stats.noise_rate);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  t.print(std::cout);
  obs::maybe_write_report(report, opts);
  return 0;
}
