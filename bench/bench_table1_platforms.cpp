// Table 1 — platform and Linux runtime settings overview.
//
// Regenerated from the PlatformConfig factories so the configuration every
// other experiment consumes is visible (and diffable against the paper).
#include <iostream>

#include "common/table.h"
#include "hw/platform.h"
#include "obs/bench_report.h"

int main(int argc, char** argv) {
  using namespace hpcos;
  const auto opts = obs::parse_bench_options(argc, argv);
  obs::BenchReport report("bench_table1_platforms", opts.quick);
  const auto ofp = hw::make_ofp_platform();
  const auto fugaku = hw::make_fugaku_platform();

  auto yesno = [](bool b) { return std::string(b ? "Yes" : "No"); };

  print_banner(std::cout, "Table 1: Overview of platforms and Linux "
                          "runtime settings");
  TextTable t({"Attribute", "Oakforest-PACS", "Fugaku"});
  t.set_align(1, Align::kLeft);
  t.set_align(2, Align::kLeft);
  t.add_row({"CPU model", ofp.cpu_model, fugaku.cpu_model});
  t.add_row({"ISA", ofp.isa, fugaku.isa});
  t.add_row({"CPU cores",
             "68, 4-way SMT (272 logical)",
             "50 (or 52), no SMT"});
  t.add_row({"TLB entries (L1/L2)",
             TextTable::fmt_int(ofp.tlb.l1_entries) + " / " +
                 TextTable::fmt_int(ofp.tlb.l2_entries),
             TextTable::fmt_int(fugaku.tlb.l1_entries) + " / " +
                 TextTable::fmt_int(fugaku.tlb.l2_entries)});
  t.add_row({"Memory",
             "96 GiB DDR4 + 16 GiB MCDRAM",
             "32 GiB HBM2"});
  t.add_row({"Linux distribution", ofp.linux_settings.distribution,
             fugaku.linux_settings.distribution});
  t.add_row({"Linux kernel", ofp.linux_settings.kernel_version,
             fugaku.linux_settings.kernel_version});
  t.add_row({"Containerization", yesno(ofp.linux_settings.containerized),
             std::string("Docker")});
  t.add_row({"nohz_full on app cores",
             yesno(ofp.linux_settings.nohz_full_app_cores),
             yesno(fugaku.linux_settings.nohz_full_app_cores)});
  t.add_row({"CPU isolation",
             yesno(ofp.linux_settings.cgroup_cpu_isolation),
             std::string("cgroups")});
  t.add_row({"IRQ steering",
             ofp.linux_settings.irq_steered_to_os_cores
                 ? "Routed to OS cores"
                 : "Balanced across chip",
             fugaku.linux_settings.irq_steered_to_os_cores
                 ? "Routed to OS cores"
                 : "Balanced across chip"});
  t.add_row({"Large page support",
             to_string(ofp.linux_settings.large_pages),
             to_string(fugaku.linux_settings.large_pages)});
  t.add_row({"Peak performance (PFlops)", TextTable::fmt(ofp.peak_pflops, 0),
             TextTable::fmt(fugaku.peak_pflops, 0)});
  t.add_row({"Compute nodes", TextTable::fmt_int(ofp.num_compute_nodes),
             TextTable::fmt_int(fugaku.num_compute_nodes)});
  t.add_row({"Interconnect", to_string(ofp.interconnect),
             to_string(fugaku.interconnect)});
  t.print(std::cout);

  report.add_metric("ofp.peak_pflops", "pflops", ofp.peak_pflops);
  report.add_metric("fugaku.peak_pflops", "pflops", fugaku.peak_pflops);
  report.add_metric("ofp.compute_nodes", "count",
                    static_cast<double>(ofp.num_compute_nodes));
  report.add_metric("fugaku.compute_nodes", "count",
                    static_cast<double>(fugaku.num_compute_nodes));
  report.add_metric("ofp.tlb_l2_entries", "count",
                    static_cast<double>(ofp.tlb.l2_entries));
  report.add_metric("fugaku.tlb_l2_entries", "count",
                    static_cast<double>(fugaku.tlb.l2_entries));
  obs::maybe_write_report(report, opts);
  return 0;
}
