// Cross-run trend analysis (obs/trend): grouping, sparklines, regression
// flags under the shared tolerance policy, drift changepoints, and the
// OpenMetrics export round trip.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/bench_report.h"
#include "obs/runlog.h"
#include "obs/timeseries/openmetrics.h"
#include "obs/trend.h"

namespace hpcos {
namespace {

namespace trend = obs::trend;

// One ledger record with a single metric value (plus optional percentile).
JsonValue record_with(const std::string& target, const std::string& knob,
                      double value, double p99 = -1.0) {
  obs::BenchReport report(target, /*quick=*/true, /*seed=*/1);
  obs::BenchMetric m{.name = "fwq.noise_rate", .unit = "ratio",
                     .value = value, .percentiles = {}};
  if (p99 >= 0.0) m.percentiles["p99"] = p99;
  report.add_metric(std::move(m));
  JsonValue config = JsonValue::object();
  config.set("schema", "hpcos-config-test/1");
  config.set("knob", knob);
  return obs::make_run_record(report, config, "2026-08-08T00:00:00Z");
}

std::vector<JsonValue> history(const std::string& target,
                               const std::string& knob,
                               const std::vector<double>& values) {
  std::vector<JsonValue> records;
  for (const double v : values) {
    records.push_back(record_with(target, knob, v));
  }
  return records;
}

// ------------------------------------------------------------- grouping

TEST(Trend, GroupsByTargetAndConfigHashAndFlattensPercentiles) {
  std::vector<JsonValue> records;
  records.push_back(record_with("bench_a", "x", 1.0, /*p99=*/2.0));
  records.push_back(record_with("bench_a", "x", 1.1, /*p99=*/2.2));
  records.push_back(record_with("bench_a", "y", 5.0));  // other config
  records.push_back(record_with("bench_b", "x", 9.0));  // other target

  const auto groups = trend::group_records(records);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].target, "bench_a");
  EXPECT_EQ(groups[0].runs, 2u);
  ASSERT_EQ(groups[0].metrics.size(), 2u);
  EXPECT_EQ(groups[0].metrics[0].name, "fwq.noise_rate");
  EXPECT_EQ(groups[0].metrics[0].values,
            (std::vector<double>{1.0, 1.1}));
  // Percentiles flatten to "<name>.<pN>" exactly as bench_diff does.
  EXPECT_EQ(groups[0].metrics[1].name, "fwq.noise_rate.p99");
  EXPECT_EQ(groups[0].metrics[1].values,
            (std::vector<double>{2.0, 2.2}));
  EXPECT_EQ(groups[1].runs, 1u);
  EXPECT_EQ(groups[2].target, "bench_b");
  // Same target, different config hash -> different groups.
  EXPECT_NE(groups[0].config_hash, groups[1].config_hash);
}

TEST(Trend, HostMetricsAreTrackedButNeverJudged) {
  // host.* metrics ride in the record's host half; trend must fold them
  // into the group series (the throughput trajectory across commits) but
  // the regression and drift scans must never flag them, no matter how
  // hard they move — wall-clock rates follow the machine, not the code.
  std::vector<JsonValue> records;
  for (const double rate : {3.0e6, 3.1e6, 0.2e6, 0.21e6, 0.2e6, 0.19e6}) {
    obs::BenchReport report("fwq_quick", /*quick=*/true, /*seed=*/1);
    report.add_metric("fwq.noise_rate", "ratio", 1.0);
    report.add_metric("host.progress.events_per_sec.mean", "rate", rate);
    JsonValue config = JsonValue::object();
    config.set("schema", "hpcos-config-test/1");
    records.push_back(
        obs::make_run_record(report, config, "2026-08-08T00:00:00Z"));
  }

  const auto groups = trend::group_records(records);
  ASSERT_EQ(groups.size(), 1u);
  const trend::MetricSeries* host_series = nullptr;
  for (const trend::MetricSeries& m : groups[0].metrics) {
    if (m.name == "host.progress.events_per_sec.mean") host_series = &m;
  }
  ASSERT_NE(host_series, nullptr) << "host metric missing from the group";
  EXPECT_EQ(host_series->values.size(), 6u);
  EXPECT_EQ(host_series->values.front(), 3.0e6);

  // A 15x collapse in a host rate: neither scan may flag it (the
  // deterministic metric is constant, so any flag here is the host one).
  EXPECT_TRUE(trend::find_regressions(groups, obs::DiffPolicy{}).empty());
  EXPECT_TRUE(trend::find_drift(groups).empty());
}

// ----------------------------------------------------------- statistics

TEST(Trend, MedianAndMadAreRobust) {
  EXPECT_EQ(trend::median({3.0}), 3.0);
  EXPECT_EQ(trend::median({1.0, 9.0, 2.0}), 2.0);
  EXPECT_EQ(trend::median({1.0, 2.0, 3.0, 100.0}), 2.5);
  EXPECT_EQ(trend::median({}), 0.0);
  EXPECT_EQ(trend::mad({1.0, 1.0, 1.0, 50.0}, 1.0), 0.0);
  EXPECT_EQ(trend::mad({1.0, 2.0, 3.0}, 2.0), 1.0);
}

TEST(Trend, SparklineSpansRampAndClampsWidth) {
  const std::string line = trend::sparkline({0.0, 0.5, 1.0});
  ASSERT_EQ(line.size(), 3u);
  EXPECT_EQ(line.front(), '.');  // min maps to the bottom of the ramp
  EXPECT_EQ(line.back(), '@');   // max maps to the top
  // Constant series: flat mid-ramp, not a divide-by-zero artifact.
  const std::string flat = trend::sparkline({2.0, 2.0, 2.0, 2.0});
  EXPECT_EQ(flat, std::string(4, flat[0]));
  // Width clamp keeps the most recent values.
  const std::string clipped =
      trend::sparkline({0.0, 0.0, 0.0, 1.0, 1.0}, /*max_width=*/2);
  EXPECT_EQ(clipped.size(), 2u);
}

// ---------------------------------------------------------- regressions

TEST(Trend, FlagsInjectedShiftBeyondToleranceAndNamesTheMetric) {
  const auto groups = trend::group_records(
      history("fwq_quick", "x", {1.0, 1.0, 1.0, 1.0, 1.5}));
  obs::DiffPolicy policy;  // fallback rel=0.05
  const auto regressions = trend::find_regressions(groups, policy);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].target, "fwq_quick");
  EXPECT_EQ(regressions[0].metric, "fwq.noise_rate");
  EXPECT_EQ(regressions[0].baseline, 1.0);  // median of the prior runs
  EXPECT_EQ(regressions[0].current, 1.5);
  EXPECT_NEAR(regressions[0].rel_delta, 0.5, 1e-12);
}

TEST(Trend, WithinToleranceIgnoredAndIgnoreRulesRespected) {
  obs::DiffPolicy policy;  // fallback rel=0.05
  // 3% drift on a rel=5% allowance: clean.
  EXPECT_TRUE(trend::find_regressions(
                  trend::group_records(
                      history("b", "x", {1.0, 1.0, 1.0, 1.03})),
                  policy)
                  .empty());
  // Same shift as the failing case, but the metric is ignore-listed.
  policy.rules.push_back(
      {"fwq.*", obs::MetricTolerance{0.05, 1e-9, /*ignore=*/true}});
  EXPECT_TRUE(trend::find_regressions(
                  trend::group_records(
                      history("b", "x", {1.0, 1.0, 1.0, 1.5})),
                  policy)
                  .empty());
  // Single-run groups have no history to regress against.
  EXPECT_TRUE(trend::find_regressions(
                  trend::group_records(history("b", "x", {1.0})),
                  obs::DiffPolicy{})
                  .empty());
}

TEST(Trend, RegressionBaselineIsRobustToOneEarlierOutlier) {
  // A single historical spike must not drag the baseline (median, not
  // mean): the newest value equals the typical history, so no flag.
  const auto groups = trend::group_records(
      history("b", "x", {1.0, 1.0, 8.0, 1.0, 1.0, 1.0}));
  EXPECT_TRUE(
      trend::find_regressions(groups, obs::DiffPolicy{}).empty());
}

// ---------------------------------------------------------------- drift

TEST(Trend, DriftDetectsStepAndPlacesTheSplit) {
  // Slow creep below per-run tolerance: 12 runs, step of +4% at run 6
  // with tiny noise. Pairwise checks at rel=5% never fire; the
  // changepoint must.
  const auto groups = trend::group_records(history(
      "b", "x", {1.000, 1.001, 0.999, 1.000, 1.001, 0.999,
                 1.040, 1.041, 1.039, 1.040, 1.041, 1.039}));
  const auto drifts = trend::find_drift(groups);
  ASSERT_GE(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].metric, "fwq.noise_rate");
  // Placement on noisy data is approximate (the max-score split can land
  // a run or two late when the uneven segmentation shrinks the pooled
  // MAD); the level estimates must still bracket the true step.
  EXPECT_GE(drifts[0].split, 6u);
  EXPECT_LE(drifts[0].split, 8u);
  EXPECT_NEAR(drifts[0].before_median, 1.000, 2e-3);
  EXPECT_NEAR(drifts[0].after_median, 1.040, 2e-3);
  EXPECT_GT(drifts[0].score, 6.0);
}

TEST(Trend, DriftQuietOnNoiseAndOnConstantSeries) {
  EXPECT_TRUE(trend::find_drift(
                  trend::group_records(history(
                      "b", "x", {1.0, 1.2, 0.9, 1.1, 0.95, 1.05, 1.15,
                                 0.85, 1.0, 1.1})))
                  .empty());
  EXPECT_TRUE(trend::find_drift(
                  trend::group_records(history(
                      "b", "x", {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0})))
                  .empty());
  // A step on an exactly-constant history is a clean detection (the MAD
  // floor, not a divide-by-zero).
  const auto drifts = trend::find_drift(trend::group_records(
      history("b", "x", {1.0, 1.0, 1.0, 2.0, 2.0, 2.0})));
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].split, 3u);
}

// ------------------------------------------------- OpenMetrics round trip

TEST(Trend, OpenMetricsExportRoundTripsThroughStrictParser) {
  std::vector<JsonValue> records = history("bench_a", "x", {1.0, 3.0, 2.0});
  const auto more = history("bench_b", "y", {5.0});
  records.insert(records.end(), more.begin(), more.end());
  const auto groups = trend::group_records(records);

  const std::string text = trend::trend_openmetrics_text(groups);
  const auto samples = obs::ts::parse_openmetrics(text);

  // 2 runs gauges + (1 metric x 2 stats) x 2 groups = 6 samples.
  ASSERT_EQ(samples.size(), 6u);
  bool saw_last = false;
  bool saw_median = false;
  bool saw_runs = false;
  for (const auto& s : samples) {
    if (s.metric == "hpcos_trend_runs" &&
        s.label("target") == "bench_a") {
      EXPECT_EQ(s.value, 3.0);
      EXPECT_EQ(s.label("config"), groups[0].config_hash);
      saw_runs = true;
    }
    if (s.metric == "hpcos_trend" && s.label("target") == "bench_a" &&
        s.label("metric") == "fwq.noise_rate") {
      if (s.label("stat") == "last") {
        EXPECT_EQ(s.value, 2.0);
        saw_last = true;
      } else if (s.label("stat") == "median") {
        EXPECT_EQ(s.value, 2.0);
        saw_median = true;
      }
    }
  }
  EXPECT_TRUE(saw_runs);
  EXPECT_TRUE(saw_last);
  EXPECT_TRUE(saw_median);
}

}  // namespace
}  // namespace hpcos
