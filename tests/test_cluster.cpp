// Unit + integration tests: OS environments, machine-scale noise sampling,
// the BSP engine, SimNode assembly, and the FWQ campaign machinery.
#include <gtest/gtest.h>

#include "cluster/bsp.h"
#include "cluster/fwq_campaign.h"
#include "common/check.h"
#include "cluster/machine_noise.h"
#include "cluster/node.h"
#include "cluster/osenv.h"
#include "noise/fwq.h"

namespace hpcos::cluster {
namespace {

using namespace hpcos::literals;

// ---- OsEnvironment ----

TEST(OsEnv, FactoriesMatchTheStudy) {
  const auto ofp_l = make_ofp_linux_env();
  const auto ofp_m = make_ofp_mckernel_env();
  const auto fug_l = make_fugaku_linux_env();
  const auto fug_m = make_fugaku_mckernel_env();

  EXPECT_EQ(ofp_l.os, OsKind::kLinux);
  EXPECT_EQ(ofp_m.os, OsKind::kMcKernel);
  // THP is partial; the LWK and hugeTLBfs reach full coverage.
  EXPECT_LT(ofp_l.mem.large_page_coverage, 1.0);
  EXPECT_DOUBLE_EQ(ofp_m.mem.large_page_coverage, 1.0);
  EXPECT_DOUBLE_EQ(fug_l.mem.large_page_coverage, 1.0);
  // Only OFP Linux releases heap blocks to the OS.
  EXPECT_EQ(ofp_l.mem.heap, os::HeapBehavior::kReleaseToOs);
  EXPECT_EQ(fug_l.mem.heap, os::HeapBehavior::kCached);
  // LWKs carry no kernel-path overhead.
  EXPECT_GT(ofp_l.mem.os_overhead, 0.0);
  EXPECT_DOUBLE_EQ(ofp_m.mem.os_overhead, 0.0);
  EXPECT_DOUBLE_EQ(fug_m.mem.os_overhead, 0.0);
  // Registration paths.
  EXPECT_EQ(fug_l.rdma_path, net::RegistrationPath::kLinuxNative);
  EXPECT_EQ(fug_m.rdma_path, net::RegistrationPath::kMcKernelPicoDriver);
  EXPECT_EQ(make_fugaku_mckernel_env(false).rdma_path,
            net::RegistrationPath::kMcKernelOffloaded);
}

TEST(OsEnv, TlbFactorReflectsCoverageAndWorkingSet) {
  const auto lin = make_ofp_linux_env();
  const auto mck = make_ofp_mckernel_env();
  const std::uint64_t ws = 1ull << 30;  // beyond the KNL 2M reach
  const double f_lin = lin.tlb_compute_factor(ws, 0.8);
  const double f_mck = mck.tlb_compute_factor(ws, 0.8);
  EXPECT_GT(f_lin, f_mck);  // partial THP coverage + kernel overhead
  // Working sets inside even the 4K reach (64 entries x 4K = 256 KiB):
  // only the kernel-overhead term remains.
  const double small = lin.tlb_compute_factor(128 << 10, 0.8);
  EXPECT_NEAR(small, 1.0 + 0.8 * lin.mem.os_overhead, 1e-9);
  // Coverage hints can only improve Linux toward the LWK, never past it.
  const double hinted = lin.tlb_compute_factor(ws, 0.8, 1.0);
  EXPECT_LE(hinted, f_lin);
  EXPECT_GE(hinted, f_mck);
}

TEST(OsEnv, ChurnAndFaultCostsScale) {
  const auto lin = make_ofp_linux_env();
  EXPECT_EQ(lin.churn_median(0), SimTime::zero());
  EXPECT_GT(lin.churn_median(256ull << 20), lin.churn_median(64ull << 20));
  EXPECT_GT(lin.fault_in(1ull << 30), lin.fault_in(1ull << 25));
  // McKernel faults are cheaper per byte.
  const auto mck = make_ofp_mckernel_env();
  EXPECT_LT(mck.fault_in(1ull << 30), lin.fault_in(1ull << 30));
}

// ---- MachineNoiseSampler ----

TEST(MachineNoise, QuietProfileProducesNoDelay) {
  MachineNoiseSampler s(noise::AnalyticNoiseProfile{}, 1024, 48,
                        RngStream(Seed{1}, 0));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s.sample_global_delay(10_ms), SimTime::zero());
  }
}

TEST(MachineNoise, DelayGrowsWithNodeCount) {
  const auto profile = noise::ofp_linux_profile();
  auto mean_delay = [&](std::int64_t nodes) {
    MachineNoiseSampler s(profile, nodes, 256, RngStream(Seed{2}, 7));
    double sum = 0;
    for (int i = 0; i < 3000; ++i) {
      sum += s.sample_global_delay(20_ms).to_us();
    }
    return sum / 3000;
  };
  const double d16 = mean_delay(16);
  const double d8192 = mean_delay(8192);
  EXPECT_GT(d8192, d16 * 3);
}

TEST(MachineNoise, ExpectedRateMatchesSampledMean) {
  // One deterministic per-core source: expected per-thread overhead is
  // duration/interval; the sampled global delay divided by threads should
  // approach it at small scale.
  noise::AnalyticNoiseProfile p;
  p.sources.push_back(noise::NoiseSourceSpec{
      .name = "s",
      .kind = noise::SourceKind::kHardware,
      .scope = noise::SourceScope::kPerCore,
      .mean_interval = 100_ms,
      .duration = noise::DurationDist{.median = 40_us, .sigma = 0.0,
                                      .min = SimTime::zero(),
                                      .max = 40_us}});
  MachineNoiseSampler s(p, 1, 1, RngStream(Seed{3}, 0));
  EXPECT_NEAR(s.expected_rate(), 40e3 / 100e6, 1e-9);
  double total_us = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    total_us += s.sample_global_delay(10_ms).to_us();
  }
  // One thread: delay is just its own hits: mean = 10ms/100ms * 40us.
  EXPECT_NEAR(total_us / n, 4.0, 0.5);
}

TEST(MachineNoise, ExpectedRateAllCoresHandComputed) {
  // One kAllCores source, every node affected: each arrival (one per node
  // per interval) stalls all threads of its node at once, so the
  // machine-average per-thread rate is duration/interval — independent of
  // the thread count per node.
  noise::AnalyticNoiseProfile p;
  p.sources.push_back(noise::NoiseSourceSpec{
      .name = "tlbi",
      .kind = noise::SourceKind::kTlbiStorm,
      .scope = noise::SourceScope::kAllCores,
      .mean_interval = 100_ms,
      .duration = noise::DurationDist{.median = 1_ms, .sigma = 0.0,
                                      .min = SimTime::zero(), .max = 1_ms}});
  const double per_thread = 1e6 / 100e6;  // duration / interval
  MachineNoiseSampler a(p, 64, 48, RngStream(Seed{11}, 0));
  EXPECT_NEAR(a.expected_rate(), per_thread, 1e-12);
  MachineNoiseSampler b(p, 64, 4, RngStream(Seed{11}, 1));
  EXPECT_NEAR(b.expected_rate(), per_thread, 1e-12);

  // kPerNodeRandomCore with the same spec delays one thread per arrival:
  // the per-thread rate shrinks by the thread count.
  p.sources[0].scope = noise::SourceScope::kPerNodeRandomCore;
  MachineNoiseSampler c(p, 64, 48, RngStream(Seed{11}, 2));
  EXPECT_NEAR(c.expected_rate(), per_thread / 48.0, 1e-12);
}

TEST(MachineNoise, ExpectedRateOfGatedAllCoresScalesWithFraction) {
  // Regression for the machine-average bug: with node_fraction < 1 the
  // per-thread rate must shrink with the active fraction. The old code
  // divided by active_nodes, which cancelled the gating entirely and
  // always reported duration/interval.
  noise::AnalyticNoiseProfile p;
  p.sources.push_back(noise::NoiseSourceSpec{
      .name = "gated",
      .kind = noise::SourceKind::kDaemon,
      .scope = noise::SourceScope::kAllCores,
      .mean_interval = 100_ms,
      .duration = noise::DurationDist{.median = 1_ms, .sigma = 0.0,
                                      .min = SimTime::zero(), .max = 1_ms},
      .node_fraction = 0.25});
  const double ungated = 1e6 / 100e6;
  // active_nodes ~ Poisson(1024): mean 0.25 * nodes, sd ~32 nodes.
  MachineNoiseSampler s(p, 4096, 48, RngStream(Seed{12}, 0));
  EXPECT_NEAR(s.expected_rate(), 0.25 * ungated, 0.05 * ungated);
  EXPECT_LT(s.expected_rate(), 0.5 * ungated);  // old code: == ungated
}

TEST(MachineNoise, StragglersGateOnPopulation) {
  noise::AnalyticNoiseProfile p;
  p.sources.push_back(noise::NoiseSourceSpec{
      .name = "straggler",
      .kind = noise::SourceKind::kDaemon,
      .scope = noise::SourceScope::kPerNodeRandomCore,
      .mean_interval = 1_s,
      .duration = noise::DurationDist{.median = 2_ms, .sigma = 0.0,
                                      .min = SimTime::zero(), .max = 2_ms},
      .node_fraction = 1e-4});
  // At 100 nodes the expected straggler count is 0.01: nearly always
  // inactive. At 1M nodes it is always active.
  int active_small = 0;
  int active_large = 0;
  for (int i = 0; i < 200; ++i) {
    MachineNoiseSampler small(p, 100, 48,
                              RngStream(Seed{4}, std::uint64_t(i)));
    MachineNoiseSampler large(p, 1'000'000, 48,
                              RngStream(Seed{4}, std::uint64_t(i)));
    active_small += small.active_source_count() > 0 ? 1 : 0;
    active_large += large.active_source_count() > 0 ? 1 : 0;
  }
  EXPECT_LT(active_small, 10);
  EXPECT_EQ(active_large, 200);
}

// ---- BspEngine ----

class CalibrationWorkload final : public Workload {
 public:
  std::string name() const override { return "calibration"; }
  int iterations() const override { return 10; }
  RankWork rank_work(int, const JobConfig&,
                     const OsEnvironment&) const override {
    RankWork w;
    w.compute = SimTime::ms(10);
    w.working_set_bytes = 1 << 20;  // fits every TLB
    w.mem_bound_fraction = 0.0;     // no overhead term
    return w;
  }
};

TEST(BspEngine, DeterministicForFixedSeed) {
  const auto env = make_fugaku_mckernel_env();
  const JobConfig job{.nodes = 64, .ranks_per_node = 4,
                      .threads_per_rank = 12};
  CalibrationWorkload w;
  const auto a = BspEngine(env, job, Seed{9}).run(w);
  const auto b = BspEngine(env, job, Seed{9}).run(w);
  EXPECT_EQ(a.total, b.total);
  const auto c = BspEngine(env, job, Seed{10}).run(w);
  EXPECT_NE(c.total, a.total);
}

TEST(BspEngine, PureComputeLowerBound) {
  const auto env = make_fugaku_mckernel_env();
  const JobConfig job{.nodes = 1, .ranks_per_node = 1,
                      .threads_per_rank = 1};
  CalibrationWorkload w;
  const auto r = BspEngine(env, job, Seed{1}).run(w);
  ASSERT_EQ(r.iteration_times.size(), 10u);
  for (const SimTime t : r.iteration_times) {
    EXPECT_GE(t, SimTime::ms(10));
    EXPECT_LT(t, SimTime::ms(11));  // noise floor only
  }
}

TEST(BspEngine, NoisyLinuxSlowerAtScaleThanSmall) {
  const auto env = make_ofp_linux_env();
  CalibrationWorkload w;
  const auto small =
      BspEngine(env, JobConfig{.nodes = 4, .ranks_per_node = 16,
                               .threads_per_rank = 16},
                Seed{3})
          .run(w);
  const auto large =
      BspEngine(env, JobConfig{.nodes = 8192, .ranks_per_node = 16,
                               .threads_per_rank = 16},
                Seed{3})
          .run(w);
  EXPECT_GT(large.total, small.total);
}

class RegistrationWorkload final : public Workload {
 public:
  std::string name() const override { return "reg"; }
  int iterations() const override { return 1; }
  RankWork rank_work(int, const JobConfig&,
                     const OsEnvironment&) const override {
    RankWork w;
    w.compute = SimTime::ms(1);
    return w;
  }
  InitWork init_work(const JobConfig&, const OsEnvironment&) const override {
    InitWork i;
    i.rdma_registrations = 100;
    i.rdma_bytes_each = 64ull << 20;
    return i;
  }
};

TEST(BspEngine, RegistrationInitFollowsRdmaPath) {
  const JobConfig job{.nodes = 256, .ranks_per_node = 4,
                      .threads_per_rank = 12};
  RegistrationWorkload w;
  const auto lin =
      BspEngine(make_fugaku_linux_env(), job, Seed{5}).run(w);
  const auto pico =
      BspEngine(make_fugaku_mckernel_env(), job, Seed{5}).run(w);
  EXPECT_GT(lin.init_time, pico.init_time.scaled(5.0));
}

TEST(BspEngine, RelativePerformanceMatchesPairedRuns) {
  const JobConfig job{.nodes = 128, .ranks_per_node = 4,
                      .threads_per_rank = 12};
  CalibrationWorkload w;
  const auto rel = relative_performance(w, make_fugaku_linux_env(),
                                        make_fugaku_mckernel_env(), job,
                                        /*trials=*/5, Seed{6});
  // Pure compute and tiny working set: the environments are near-equal.
  EXPECT_NEAR(rel.mean_ratio, 1.0, 0.02);
  EXPECT_GE(rel.stddev_ratio, 0.0);
}

// ---- SimNode ----

TEST(SimNode, LinuxNodeOwnsEverything) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto node = SimNode::make_linux_node(
      platform, linuxk::make_fugaku_linux_config(platform));
  EXPECT_FALSE(node->is_multikernel());
  EXPECT_EQ(&node->app_kernel(), &node->linux());
  EXPECT_EQ(node->linux().owned_cores().count(), 50u);
  EXPECT_EQ(node->lwk(), nullptr);
}

TEST(SimNode, MultiKernelNodeSplitsTheChip) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto node = SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      mck::McKernelConfig::defaults());
  EXPECT_TRUE(node->is_multikernel());
  EXPECT_EQ(&node->app_kernel(),
            static_cast<os::NodeKernel*>(node->lwk()));
  EXPECT_EQ(node->linux().owned_cores().count(), 2u);
  EXPECT_EQ(node->lwk()->owned_cores().count(), 48u);
  EXPECT_NE(node->offloader(), nullptr);
  EXPECT_NE(node->ihk_manager(), nullptr);
  EXPECT_EQ(node->ihk_manager()->instance_count(), 1u);
}

// ---- FWQ campaign ----

TEST(FwqCampaign, QuietProfileGivesExactQuanta) {
  FwqCampaignConfig cfg;
  cfg.nodes = 8;
  cfg.app_cores = 4;
  cfg.duration_per_core = 10_s;
  const auto r = run_fwq_campaign(noise::AnalyticNoiseProfile{}, cfg);
  EXPECT_EQ(r.stats.t_min, cfg.work_quantum);
  EXPECT_EQ(r.stats.t_max, cfg.work_quantum);
  EXPECT_DOUBLE_EQ(r.stats.noise_rate, 0.0);
  // 10 s / 6.5 ms = 1538 iterations per core.
  EXPECT_EQ(r.total_iterations, 8u * 4u * 1538u);
}

TEST(FwqCampaign, NoiseRateTracksAnalyticExpectation) {
  noise::AnalyticNoiseProfile p;
  p.sources.push_back(noise::NoiseSourceSpec{
      .name = "s",
      .kind = noise::SourceKind::kHardware,
      .scope = noise::SourceScope::kPerCore,
      .mean_interval = 50_ms,
      .duration = noise::DurationDist{.median = 65_us, .sigma = 0.0,
                                      .min = SimTime::zero(),
                                      .max = 65_us}});
  FwqCampaignConfig cfg;
  cfg.nodes = 32;
  cfg.app_cores = 8;
  cfg.duration_per_core = 60_s;
  const auto r = run_fwq_campaign(p, cfg);
  // Expected rate: (6.5ms/50ms) * 65us / 6.5ms = 0.0013.
  EXPECT_NEAR(r.stats.noise_rate, 65e3 / 50e6, 2e-4);
  EXPECT_EQ(r.stats.max_noise_length, 65_us);
}

TEST(FwqCampaign, WorstNodeListSortedAndBounded) {
  const auto profile = noise::fugaku_linux_profile();
  FwqCampaignConfig cfg;
  cfg.nodes = 500;
  cfg.app_cores = 48;
  cfg.duration_per_core = 300_s;
  cfg.worst_nodes_to_keep = 20;
  const auto r = run_fwq_campaign(profile, cfg);
  ASSERT_EQ(r.worst_node_max_us.size(), 20u);
  EXPECT_TRUE(std::is_sorted(r.worst_node_max_us.begin(),
                             r.worst_node_max_us.end(),
                             std::greater<double>()));
  EXPECT_GE(r.worst_node_max_us.front(), r.stats.t_max.to_us() - 1.0);
}

TEST(FwqCampaign, RejectsEmptyCampaign) {
  // duration shorter than the quantum used to yield an empty campaign
  // that silently reported zero noise.
  FwqCampaignConfig cfg;
  cfg.duration_per_core = 1_ms;  // < 6.5 ms quantum
  EXPECT_THROW(run_fwq_campaign(noise::AnalyticNoiseProfile{}, cfg),
               SimError);
  cfg.duration_per_core = 10_s;
  cfg.work_quantum = SimTime::zero();
  EXPECT_THROW(run_fwq_campaign(noise::AnalyticNoiseProfile{}, cfg),
               SimError);
}

TEST(FwqCampaign, AllCoresScopeDelaysEveryCorePerArrival) {
  // One kAllCores source with a deterministic duration: each node-level
  // arrival lengthens every core's iteration by the same amount, so the
  // per-thread noise rate is duration/interval — NOT scaled by app_cores
  // as the old exposed_cores multiplication had it.
  noise::AnalyticNoiseProfile p;
  p.sources.push_back(noise::NoiseSourceSpec{
      .name = "ipi",
      .kind = noise::SourceKind::kPmuRead,
      .scope = noise::SourceScope::kAllCores,
      .mean_interval = 50_ms,
      .duration = noise::DurationDist{.median = 65_us, .sigma = 0.0,
                                      .min = SimTime::zero(),
                                      .max = 65_us}});
  FwqCampaignConfig cfg;
  cfg.nodes = 32;
  cfg.app_cores = 8;
  cfg.duration_per_core = 60_s;
  const auto r = run_fwq_campaign(p, cfg);
  EXPECT_NEAR(r.stats.noise_rate, 65e3 / 50e6, 2e-4);
  EXPECT_EQ(r.stats.max_noise_length, 65_us);
}

TEST(FwqCampaign, DesTraceConversionAgrees) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto cfg = linuxk::make_fugaku_linux_config(platform);
  cfg.profile = noise::strip_population_tails(cfg.profile);
  auto node = SimNode::make_linux_node(platform, std::move(cfg));
  noise::FwqConfig fwq;
  fwq.iterations = 500;
  const auto traces = noise::run_fwq(
      node->app_kernel(), node->topology().application_cores(), fwq);
  const auto r = fwq_result_from_traces(traces);
  EXPECT_EQ(r.total_iterations, 500u * 48u);
  EXPECT_EQ(r.cdf.total_count(), r.total_iterations);
  EXPECT_GE(r.stats.t_max, r.stats.t_min);
}

}  // namespace
}  // namespace hpcos::cluster
