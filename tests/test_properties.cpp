// Property-based tests: parameterized sweeps over distributions, the DES,
// CPU-set algebra, and the statistical machinery's internal consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "hw/cpuset.h"
#include "noise/analytic.h"
#include "sim/simulator.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;

// ---- inverse normal CDF ----

struct NormalQuantileCase {
  double p;
  double z;  // reference value
};

class InverseNormalCdf : public ::testing::TestWithParam<NormalQuantileCase> {
};

TEST_P(InverseNormalCdf, MatchesReferenceValues) {
  const auto [p, z] = GetParam();
  // Acklam without a Newton polish is good to ~1e-3 in the far tails.
  EXPECT_NEAR(noise::inverse_normal_cdf(p), z, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    KnownQuantiles, InverseNormalCdf,
    ::testing::Values(NormalQuantileCase{0.5, 0.0},
                      NormalQuantileCase{0.8413447, 1.0},
                      NormalQuantileCase{0.9772499, 2.0},
                      NormalQuantileCase{0.9986501, 3.0},
                      NormalQuantileCase{0.1586553, -1.0},
                      NormalQuantileCase{0.0227501, -2.0},
                      NormalQuantileCase{0.999999713, 5.0},
                      NormalQuantileCase{1e-9, -5.9978}));

TEST(InverseNormalCdfFn, RoundTripsThroughErfc) {
  // Phi(z) = 0.5 * erfc(-z / sqrt(2)); the inverse must undo it.
  for (double z = -4.0; z <= 4.0; z += 0.25) {
    const double p = 0.5 * std::erfc(-z / std::sqrt(2.0));
    EXPECT_NEAR(noise::inverse_normal_cdf(p), z, 1e-3) << "z=" << z;
  }
}

// ---- DurationDist properties over a parameter sweep ----

struct DistCase {
  std::int64_t median_us;
  double sigma;
  std::int64_t max_us;
};

class DurationDistProperty : public ::testing::TestWithParam<DistCase> {
 protected:
  noise::DurationDist dist() const {
    const auto [median_us, sigma, max_us] = GetParam();
    return noise::DurationDist{.median = SimTime::us(median_us),
                               .sigma = sigma,
                               .min = SimTime::zero(),
                               .max = SimTime::us(max_us)};
  }
};

TEST_P(DurationDistProperty, SamplesRespectClamp) {
  const auto d = dist();
  RngStream rng(Seed{11}, 0);
  for (int i = 0; i < 2000; ++i) {
    const SimTime s = d.sample(rng);
    EXPECT_GE(s, d.min);
    EXPECT_LE(s, d.max);
  }
}

TEST_P(DurationDistProperty, QuantileIsMonotone) {
  const auto d = dist();
  SimTime prev = SimTime::zero();
  for (double q = 0.01; q < 1.0; q += 0.01) {
    const SimTime v = d.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST_P(DurationDistProperty, MedianQuantileIsMedian) {
  const auto d = dist();
  const SimTime q50 = d.quantile(0.5);
  const SimTime expect =
      std::clamp(d.median, d.min, d.max);
  EXPECT_NEAR(q50.to_us(), expect.to_us(), expect.to_us() * 0.01 + 0.1);
}

TEST_P(DurationDistProperty, EmpiricalQuantileMatchesInverseCdf) {
  const auto d = dist();
  RngStream rng(Seed{12}, 1);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) samples.push_back(d.sample(rng).to_us());
  std::sort(samples.begin(), samples.end());
  for (double q : {0.25, 0.5, 0.75, 0.9}) {
    const double analytic = d.quantile(q).to_us();
    const double empirical = percentile_sorted(samples, q * 100.0);
    EXPECT_NEAR(empirical, analytic, analytic * 0.08 + 0.5)
        << "q=" << q;
  }
}

TEST_P(DurationDistProperty, MaxOfKStochasticallyDominates) {
  const auto d = dist();
  RngStream rng(Seed{13}, 2);
  // Mean of max-of-64 must exceed mean of single draws; mean of
  // max-of-4096 (inverse-CDF path) must exceed max-of-64 (direct path) —
  // this ties the two implementations together.
  double single = 0;
  double max64 = 0;
  double max4096 = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    single += d.sample(rng).to_us();
    max64 += d.sample_max(64, rng).to_us();
    max4096 += d.sample_max(4096, rng).to_us();
  }
  if (GetParam().sigma > 0.0) {
    EXPECT_GT(max64 / n, single / n);
    EXPECT_GE(max4096 / n, max64 / n * 0.95);
  } else {
    EXPECT_DOUBLE_EQ(max64 / n, single / n);  // constant distribution
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DurationDistProperty,
    ::testing::Values(DistCase{50, 0.0, 200}, DistCase{50, 0.3, 500},
                      DistCase{100, 0.6, 1000}, DistCase{10, 1.0, 10000},
                      DistCase{1000, 0.45, 8000}));

// ---- Simulator determinism over random event programs ----

class SimulatorDeterminism : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimulatorDeterminism, SameSeedSameTrajectory) {
  auto run = [&](std::uint64_t seed) {
    sim::Simulator s;
    RngStream rng(Seed{seed}, 0);
    std::vector<std::int64_t> fired;
    // Random self-extending event program.
    std::function<void(int)> spawn = [&](int depth) {
      fired.push_back(s.now().count_ns());
      if (depth >= 6) return;
      const int children = static_cast<int>(rng.uniform_index(3));
      for (int c = 0; c < children; ++c) {
        s.schedule_after(rng.uniform_time(1_ns, 1_ms),
                         [&, depth] { spawn(depth + 1); });
      }
    };
    for (int i = 0; i < 20; ++i) {
      s.schedule_after(rng.uniform_time(1_ns, 1_ms), [&] { spawn(0); });
    }
    s.run_all(100000);
    return fired;
  };
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  EXPECT_EQ(a, b);
  // Timestamps never go backwards.
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorDeterminism,
                         ::testing::Values(1u, 17u, 523u, 99991u));

// ---- CpuSet algebra over random sets ----

class CpuSetAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  hw::CpuSet random_set(RngStream& rng, std::size_t n) const {
    hw::CpuSet s(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.4)) s.set(static_cast<hw::CoreId>(i));
    }
    return s;
  }
};

TEST_P(CpuSetAlgebra, DeMorganAndPartitionLaws) {
  RngStream rng(Seed{GetParam()}, 3);
  const std::size_t n = 64;
  const hw::CpuSet universe = hw::CpuSet::all(n);
  for (int trial = 0; trial < 50; ++trial) {
    const hw::CpuSet a = random_set(rng, n);
    const hw::CpuSet b = random_set(rng, n);
    // |A| + |B| = |A u B| + |A n B|
    EXPECT_EQ(a.count() + b.count(), (a | b).count() + (a & b).count());
    // A \ B and A n B partition A.
    EXPECT_EQ(a.minus(b).count() + (a & b).count(), a.count());
    EXPECT_FALSE(a.minus(b).intersects(b));
    // Universe decomposition.
    EXPECT_EQ(universe.minus(a).count(), n - a.count());
    EXPECT_TRUE(universe.contains(a));
    // Iteration agrees with count.
    EXPECT_EQ(a.to_vector().size(), a.count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuSetAlgebra,
                         ::testing::Values(2u, 77u, 4242u));

// ---- AnalyticNodeSampler consistency across scopes ----

struct ScopeCase {
  noise::SourceScope scope;
  int app_cores;
};

class SamplerScope : public ::testing::TestWithParam<ScopeCase> {};

TEST_P(SamplerScope, MeanOverheadMatchesClosedForm) {
  const auto [scope, cores] = GetParam();
  noise::AnalyticNoiseProfile p;
  p.sources.push_back(noise::NoiseSourceSpec{
      .name = "s",
      .kind = noise::SourceKind::kHardware,
      .scope = scope,
      .mean_interval = 50_ms,
      .duration = noise::DurationDist{.median = 20_us, .sigma = 0.0,
                                      .min = SimTime::zero(),
                                      .max = 20_us}});
  noise::AnalyticNodeSampler s(p, cores, RngStream(Seed{21}, 5));
  const SimTime q = SimTime::from_ms(6.5);
  double extra_us = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    extra_us += (s.sample_iteration(q) - q).to_us();
  }
  // Per-core & all-cores: every core sees each occurrence; per-node: the
  // per-core rate divides by the core count.
  const double divisor =
      scope == noise::SourceScope::kPerNodeRandomCore ? cores : 1;
  const double expected = (6.5 / 50.0) * 20.0 / divisor;
  EXPECT_NEAR(extra_us / n, expected, expected * 0.12 + 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    Scopes, SamplerScope,
    ::testing::Values(ScopeCase{noise::SourceScope::kPerCore, 48},
                      ScopeCase{noise::SourceScope::kAllCores, 48},
                      ScopeCase{noise::SourceScope::kPerNodeRandomCore, 48},
                      ScopeCase{noise::SourceScope::kPerNodeRandomCore, 4}));

}  // namespace
}  // namespace hpcos
