// QuantileSketch: the relative-error guarantee against the exact batch
// percentile, the zero bucket, weighted adds, and exact merge-order
// invariance (the property the campaign's shard-order merges rely on).
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/sketch.h"
#include "common/stats.h"

namespace hpcos {
namespace {

// |estimate - exact| <= alpha * exact for positive-valued data; a small
// absolute slack covers exact == 0 (pure-zero streams).
void expect_within_alpha(const QuantileSketch& sketch,
                         std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const double exact = percentile_sorted(samples, q * 100.0);
  const double estimate = sketch.quantile(q);
  EXPECT_NEAR(estimate, exact, sketch.relative_error() * exact + 1e-12)
      << "q=" << q;
}

TEST(QuantileSketch, EmptySketchReturnsZero) {
  const QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.bucket_count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(QuantileSketch, SingleValueEveryQuantileIsThatValue) {
  QuantileSketch s;
  s.add(42.5);
  EXPECT_EQ(s.count(), 1u);
  // Clamping to the observed [min, max] makes one-sample sketches exact.
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 42.5) << "q=" << q;
  }
}

TEST(QuantileSketch, ZeroAndNegativeValuesCollapseIntoZeroBucket) {
  QuantileSketch s;
  s.add(0.0);
  s.add(-3.0);
  s.add(QuantileSketch::kMinTrackable);  // at the threshold: still zero
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.bucket_count(), 1u);  // just the zero bucket
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  // Mixed stream: zeros occupy the low ranks, positives the high ones.
  s.add(10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);  // zero-bucket estimate
  EXPECT_DOUBLE_EQ(s.min(), -3.0);         // observed min still reported
  EXPECT_NEAR(s.quantile(1.0), 10.0, 0.01 * 10.0);
}

TEST(QuantileSketch, WeightedAddEqualsRepeatedAdd) {
  QuantileSketch weighted;
  QuantileSketch repeated;
  RngStream rng(Seed{5}, 0);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.lognormal(3.0, 1.0);
    const auto w = static_cast<std::uint64_t>(1 + i % 7);
    weighted.add(v, w);
    for (std::uint64_t k = 0; k < w; ++k) repeated.add(v);
  }
  ASSERT_EQ(weighted.count(), repeated.count());
  EXPECT_EQ(weighted.bucket_count(), repeated.bucket_count());
  for (double q : {0.01, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(weighted.quantile(q), repeated.quantile(q)) << q;
  }
  // Zero-weight adds are no-ops.
  const double before = weighted.quantile(0.5);
  weighted.add(1e9, 0);
  EXPECT_EQ(weighted.quantile(0.5), before);
}

TEST(QuantileSketch, TailQuantilesWithinAlphaOfBatchPercentile) {
  // Lognormal overhead-like data spanning ~4 decades: p50 through p999
  // must sit within the stated relative error of stats::percentile.
  for (double alpha : {0.01, 0.05}) {
    QuantileSketch sketch(alpha);
    std::vector<double> samples;
    RngStream rng(Seed{6}, 1);
    for (int i = 0; i < 20000; ++i) {
      const double v = rng.lognormal(2.0, 1.4);
      samples.push_back(v);
      sketch.add(v);
    }
    for (double q : {0.0, 0.05, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      expect_within_alpha(sketch, samples, q);
    }
  }
}

TEST(QuantileSketch, BoundedBucketsOnWideRange) {
  // ~9 decades of data at alpha = 1%: bucket count stays in the low
  // thousands (log-bucketing), nowhere near the 200k samples.
  QuantileSketch sketch(0.01);
  RngStream rng(Seed{7}, 2);
  for (int i = 0; i < 200000; ++i) {
    sketch.add(std::pow(10.0, rng.uniform(-3.0, 6.0)));
  }
  EXPECT_EQ(sketch.count(), 200000u);
  EXPECT_LT(sketch.bucket_count(), 3000u);
}

TEST(QuantileSketch, MergeIsExactAndOrderInvariant) {
  RngStream rng(Seed{8}, 3);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back(rng.lognormal(4.0, 1.2));

  QuantileSketch whole;
  for (double v : samples) whole.add(v);

  // 8 ragged shards, merged forward and reversed: integer bucket counts
  // make both orders bit-identical to the single-pass sketch.
  std::vector<QuantileSketch> shards(8, QuantileSketch{});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    shards[(i * i + 3) % shards.size()].add(samples[i]);
  }
  QuantileSketch forward;
  for (const auto& s : shards) forward.merge(s);
  QuantileSketch reversed;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    reversed.merge(*it);
  }
  ASSERT_EQ(forward.count(), whole.count());
  ASSERT_EQ(reversed.count(), whole.count());
  EXPECT_EQ(forward.bucket_count(), whole.bucket_count());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(forward.quantile(q), whole.quantile(q)) << q;
    EXPECT_DOUBLE_EQ(reversed.quantile(q), whole.quantile(q)) << q;
  }
}

TEST(QuantileSketch, MergeRejectsMismatchedRelativeError) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.02);
  b.add(1.0);
  EXPECT_THROW(a.merge(b), SimError);
  // Merging an empty same-alpha sketch is a no-op.
  QuantileSketch empty(0.01);
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 5.0);
}

TEST(QuantileSketch, ConstructorRejectsBadAlpha) {
  EXPECT_THROW(QuantileSketch(0.0), SimError);
  EXPECT_THROW(QuantileSketch(1.0), SimError);
  EXPECT_THROW(QuantileSketch(-0.1), SimError);
}

}  // namespace
}  // namespace hpcos
