// Unit tests: hardware models and the Table-1 platform configurations.
#include <gtest/gtest.h>

#include "common/check.h"
#include "hw/cache.h"
#include "hw/cpuset.h"
#include "hw/hwbarrier.h"
#include "hw/memory.h"
#include "hw/platform.h"
#include "hw/tlb.h"
#include "hw/topology.h"

namespace hpcos::hw {
namespace {

using namespace hpcos::literals;

TEST(CpuSet, BasicOps) {
  CpuSet s = CpuSet::of(16, {1, 3, 5});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.test(3));
  EXPECT_FALSE(s.test(2));
  EXPECT_FALSE(s.test(100));  // out of range reads are safe
  EXPECT_EQ(s.first(), 1);
  EXPECT_EQ(s.next(1), 3);
  EXPECT_EQ(s.next(5), kInvalidCore);
  s.set(3, false);
  EXPECT_EQ(s.count(), 2u);
}

TEST(CpuSet, SetOperations) {
  const CpuSet a = CpuSet::range(8, 0, 3);
  const CpuSet b = CpuSet::range(8, 2, 5);
  EXPECT_EQ((a & b).to_vector(), (std::vector<CoreId>{2, 3}));
  EXPECT_EQ((a | b).count(), 6u);
  EXPECT_EQ(a.minus(b).to_vector(), (std::vector<CoreId>{0, 1}));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.minus(b).intersects(b));
  EXPECT_TRUE(CpuSet::all(8).contains(a));
  EXPECT_FALSE(a.contains(b));
}

TEST(CpuSet, ToStringUsesRanges) {
  EXPECT_EQ(CpuSet::range(64, 0, 47).to_string(), "0-47");
  EXPECT_EQ(CpuSet::of(16, {1, 2, 3, 7}).to_string(), "1-3,7");
  EXPECT_EQ(CpuSet(8).to_string(), "");
}

TEST(Topology, SmtSiblingsFollowLinuxNumbering) {
  NodeTopology knl("KNL", 68, 4);
  EXPECT_EQ(knl.logical_cores(), 272);
  // KNL convention: cpu 0, 68, 136, 204 share physical core 0.
  const CpuSet sib = knl.smt_siblings(0);
  EXPECT_TRUE(sib.test(0));
  EXPECT_TRUE(sib.test(68));
  EXPECT_TRUE(sib.test(136));
  EXPECT_TRUE(sib.test(204));
  EXPECT_EQ(sib.count(), 4u);
  EXPECT_EQ(knl.physical_of(204), 0);
  EXPECT_EQ(knl.physical_of(69), 1);
}

TEST(Topology, PartitionMustNotOverlap) {
  NodeTopology t("x", 4, 1);
  EXPECT_THROW(
      t.set_core_partition(CpuSet::range(4, 0, 1), CpuSet::range(4, 1, 3)),
      SimError);
}

TEST(Tlb, ReachAndMissFractions) {
  TlbModel tlb(TlbParams{.l1_entries = 16, .l2_entries = 1024});
  // 1024 entries x 2M pages = 2 GiB reach (the A64FX advantage, Table 1).
  EXPECT_EQ(tlb.reach_bytes(PageSize::k2M), 2ull << 30);
  EXPECT_DOUBLE_EQ(tlb.miss_fraction(1ull << 30, PageSize::k2M), 0.0);
  const double m = tlb.miss_fraction(4ull << 30, PageSize::k2M);
  EXPECT_NEAR(m, 0.5, 1e-9);
  EXPECT_GT(tlb.access_slowdown(4ull << 30, PageSize::k2M), 1.0);
  EXPECT_DOUBLE_EQ(tlb.access_slowdown(1ull << 20, PageSize::k2M), 1.0);
}

TEST(Tlb, KnlHasFarSmallerReachThanA64fx) {
  const auto ofp = make_ofp_platform();
  const auto fugaku = make_fugaku_platform();
  TlbModel knl(ofp.tlb);
  TlbModel a64(fugaku.tlb);
  // 64 entries x 2M = 128 MiB vs 1024 x 2M = 2 GiB.
  EXPECT_EQ(knl.reach_bytes(PageSize::k2M), 128ull << 20);
  EXPECT_EQ(a64.reach_bytes(PageSize::k2M), 2048ull << 20);
  // Same working set: KNL suffers, A64FX does not.
  EXPECT_GT(knl.access_slowdown(1ull << 30, PageSize::k2M), 1.2);
  EXPECT_DOUBLE_EQ(a64.access_slowdown(1ull << 30, PageSize::k2M), 1.0);
}

TEST(Tlb, BroadcastStallMatchesPaperNumber) {
  const auto fugaku = make_fugaku_platform();
  TlbModel a64(fugaku.tlb);
  // §4.2.2: ~200 ns per TLBI on every other core; hundreds to thousands of
  // flushes yield hundreds of microseconds.
  EXPECT_EQ(a64.broadcast_stall(1), SimTime::ns(200));
  EXPECT_EQ(a64.broadcast_stall(2000), SimTime::us(400));
  TlbModel x86(make_ofp_platform().tlb);
  EXPECT_EQ(x86.broadcast_stall(2000), SimTime::zero());  // no TLBI bcast
}

TEST(Cache, SectorPartitioningIsolatesInterference) {
  SectorCache c(CacheParams{.capacity_bytes = 32ull << 20,
                            .num_sectors = 4});
  EXPECT_TRUE(c.supports_partitioning());
  ASSERT_TRUE(c.partition(1));
  EXPECT_EQ(c.application_capacity(), 24ull << 20);
  EXPECT_EQ(c.system_capacity(), 8ull << 20);
  // With partitioning, OS interference bytes do not degrade the app.
  EXPECT_DOUBLE_EQ(c.interference_slowdown(20ull << 20, 16ull << 20), 1.0);
  SectorCache flat(CacheParams{.capacity_bytes = 32ull << 20,
                               .num_sectors = 1});
  EXPECT_FALSE(flat.partition(1));
  EXPECT_GT(flat.interference_slowdown(30ull << 20, 16ull << 20), 1.0);
}

TEST(Cache, MissFractionMonotone) {
  const std::uint64_t cap = 8ull << 20;
  EXPECT_DOUBLE_EQ(SectorCache::miss_fraction(4ull << 20, cap), 0.0);
  const double a = SectorCache::miss_fraction(16ull << 20, cap);
  const double b = SectorCache::miss_fraction(64ull << 20, cap);
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, a);
  EXPECT_LE(b, 1.0);
}

TEST(Memory, StreamTimeFromBandwidth) {
  NodeMemory m;
  m.add_region(MemoryRegion{
      .numa = 0,
      .params = {.kind = MemoryKind::kHbm2,
                 .capacity_bytes = 8_GiB,
                 .bandwidth_bytes_per_sec = 100ull * 1000 * 1000 * 1000}});
  EXPECT_EQ(m.stream_time(MemoryKind::kHbm2, 100ull * 1000 * 1000 * 1000),
            SimTime::sec(1));
  EXPECT_EQ(m.capacity_of(MemoryKind::kHbm2), 8_GiB);
  EXPECT_THROW(m.stream_time(MemoryKind::kDdr4, 1), SimError);
}

TEST(HwBarrier, HardwareBeatsSoftwareTree) {
  HwBarrier with(HwBarrierParams{.available = true,
                                 .hw_latency = SimTime::ns(200),
                                 .sw_per_level = SimTime::ns(120)});
  HwBarrier without(HwBarrierParams{.available = false,
                                    .hw_latency = SimTime::ns(200),
                                    .sw_per_level = SimTime::ns(120)});
  EXPECT_EQ(with.barrier_cost(12), SimTime::ns(200));
  // 12 threads -> 4 levels x 120 ns.
  EXPECT_EQ(without.barrier_cost(12), SimTime::ns(480));
  EXPECT_EQ(with.barrier_cost(1), SimTime::zero());
  EXPECT_GT(without.barrier_cost(48), with.barrier_cost(48));
}

TEST(Platform, Table1Attributes) {
  const auto ofp = make_ofp_platform();
  EXPECT_EQ(ofp.topology.logical_cores(), 272);
  EXPECT_EQ(ofp.num_compute_nodes, 8192);
  EXPECT_EQ(ofp.tlb.l2_entries, 64);
  EXPECT_EQ(ofp.memory.capacity_of(MemoryKind::kDdr4), 96_GiB);
  EXPECT_EQ(ofp.memory.capacity_of(MemoryKind::kMcdram), 16_GiB);
  EXPECT_FALSE(ofp.linux_settings.containerized);
  EXPECT_FALSE(ofp.linux_settings.cgroup_cpu_isolation);
  EXPECT_EQ(ofp.linux_settings.large_pages, LargePageMechanism::kThp);
  EXPECT_EQ(ofp.interconnect, InterconnectKind::kOmniPath);
  EXPECT_EQ(ofp.app_core_count(), 256);
  EXPECT_EQ(ofp.system_core_count(), 16);

  const auto fugaku = make_fugaku_platform();
  EXPECT_EQ(fugaku.topology.logical_cores(), 50);
  EXPECT_EQ(fugaku.num_compute_nodes, 158976);
  EXPECT_EQ(fugaku.tlb.l1_entries, 16);
  EXPECT_EQ(fugaku.tlb.l2_entries, 1024);
  EXPECT_EQ(fugaku.memory.total_capacity(), 32_GiB);
  EXPECT_TRUE(fugaku.linux_settings.containerized);
  EXPECT_TRUE(fugaku.linux_settings.cgroup_cpu_isolation);
  EXPECT_TRUE(fugaku.linux_settings.irq_steered_to_os_cores);
  EXPECT_EQ(fugaku.linux_settings.large_pages,
            LargePageMechanism::kHugeTlbFs);
  EXPECT_EQ(fugaku.app_core_count(), 48);
  EXPECT_EQ(fugaku.system_core_count(), 2);
  EXPECT_EQ(make_fugaku_platform(4).topology.logical_cores(), 52);

  // 4 application NUMA domains of 12 cores each (one per CMG).
  int app_domains = 0;
  for (const auto& d : fugaku.topology.numa_domains()) {
    if (!d.is_system_domain) {
      EXPECT_EQ(d.cores.count(), 12u);
      ++app_domains;
    }
  }
  EXPECT_EQ(app_domains, 4);

  const auto testbed = make_fugaku_testbed_platform();
  EXPECT_EQ(testbed.num_compute_nodes, 16);
  EXPECT_EQ(testbed.topology.logical_cores(), 50);
}

}  // namespace
}  // namespace hpcos::hw
