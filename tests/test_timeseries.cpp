// Streaming time-series layer: TimeSeries ring + 2x coarsening, SeriesSet,
// NodeTimeGrid, RegistrySampler, the OpenMetrics exposition round trip,
// BenchReport series export, the FWQ campaign timeline (ledger
// reconciliation + RNG isolation + bounded memory), and BspEngine's
// per-iteration phase series.
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/bsp.h"
#include "cluster/fwq_campaign.h"
#include "cluster/osenv.h"
#include "common/check.h"
#include "common/sketch.h"
#include "noise/profiles.h"
#include "obs/bench_report.h"
#include "obs/registry.h"
#include "obs/timeseries/openmetrics.h"
#include "obs/timeseries/timeseries.h"
#include "sim/simulator.h"

namespace hpcos {
namespace {

using obs::ts::NodeTimeGrid;
using obs::ts::RegistrySampler;
using obs::ts::SeriesSet;
using obs::ts::TimeSeries;

double rel_diff(double a, double b) {
  const double diff = std::abs(a - b);
  if (diff == 0.0) return 0.0;
  return diff / std::max(std::abs(a), std::abs(b));
}

// ---------------------------------------------------------- TimeSeries

TEST(TimeSeries, RecordsIntoResolutionAlignedBuckets) {
  TimeSeries s(SimTime::us(10), 8);
  s.record(SimTime::us(3), 5.0);
  s.record(SimTime::us(9), 1.0);   // same bucket
  s.record(SimTime::us(10), 7.0);  // next bucket (half-open boundaries)
  EXPECT_EQ(s.bucket_count(), 2u);
  EXPECT_EQ(s.coarsen_count(), 0u);
  EXPECT_DOUBLE_EQ(s.bucket(0).min, 1.0);
  EXPECT_DOUBLE_EQ(s.bucket(0).max, 5.0);
  EXPECT_DOUBLE_EQ(s.bucket(0).sum, 6.0);
  EXPECT_EQ(s.bucket(0).count, 2u);
  EXPECT_DOUBLE_EQ(s.bucket(1).sum, 7.0);
  EXPECT_EQ(s.bucket_start(1), SimTime::us(10));
  EXPECT_EQ(s.window_end(), SimTime::us(80));
  // Weighted sample: weight occurrences of one value.
  s.record_n(SimTime::us(25), 2.0, 4);
  EXPECT_DOUBLE_EQ(s.bucket(2).sum, 8.0);
  EXPECT_EQ(s.bucket(2).count, 4u);
  EXPECT_DOUBLE_EQ(s.bucket(2).mean(), 2.0);
  // Zero-weight records are no-ops.
  s.record_n(SimTime::us(70), 99.0, 0);
  EXPECT_EQ(s.total_count(), 7u);
  EXPECT_DOUBLE_EQ(s.total_sum(), 21.0);
}

TEST(TimeSeries, MemoryStaysBoundedOnTenTimesLongerRun) {
  // Nominal window: 16 x 1 s. Stream 10x past it; the ring must coarsen
  // instead of growing, and totals must be preserved exactly.
  TimeSeries s(SimTime::sec(1), 16);
  double sum = 0.0;
  std::uint64_t count = 0;
  for (int t = 0; t < 160; ++t) {
    s.record(SimTime::sec(t), 1.0 + t);
    sum += 1.0 + t;
    ++count;
    ASSERT_LE(s.bucket_count(), s.capacity()) << "t=" << t;
  }
  EXPECT_GT(s.coarsen_count(), 0u);
  EXPECT_EQ(s.capacity(), 16u);
  EXPECT_DOUBLE_EQ(s.total_sum(), sum);
  EXPECT_EQ(s.total_count(), count);
  // Resolution grew by the coarsening factor and still covers the run.
  EXPECT_EQ(s.resolution(),
            SimTime::sec(1) * (std::int64_t{1} << s.coarsen_count()));
  EXPECT_GE(s.window_end(), SimTime::sec(160));
}

TEST(TimeSeries, CoarsenTwiceEqualsDirectFourTimesCoarserSeries) {
  // Downsampling idempotence: feed the same stream into a fine series
  // coarsened twice and a series recorded at 4x the resolution directly;
  // the buckets must be bitwise identical.
  TimeSeries fine(SimTime::us(5), 32);
  TimeSeries coarse(SimTime::us(20), 32);
  for (int i = 0; i < 40; ++i) {
    const SimTime t = SimTime::us(3 * i);
    // Integer-valued samples: bucket sums stay exact under any addition
    // order, so the comparison below can be bitwise.
    const double v = static_cast<double>((i * 5) % 11) - 4.0;
    fine.record(t, v);
    coarse.record(t, v);
  }
  fine.coarsen();
  fine.coarsen();
  ASSERT_EQ(fine.resolution(), coarse.resolution());
  ASSERT_EQ(fine.bucket_count(), coarse.bucket_count());
  for (std::size_t i = 0; i < fine.bucket_count(); ++i) {
    EXPECT_EQ(fine.bucket(i).count, coarse.bucket(i).count) << i;
    EXPECT_DOUBLE_EQ(fine.bucket(i).min, coarse.bucket(i).min) << i;
    EXPECT_DOUBLE_EQ(fine.bucket(i).max, coarse.bucket(i).max) << i;
    EXPECT_DOUBLE_EQ(fine.bucket(i).sum, coarse.bucket(i).sum) << i;
  }
}

TEST(TimeSeries, MergeAlignsPowerOfTwoRelatedResolutions) {
  // `this` coarser than `other`: other's copy is coarsened to align.
  TimeSeries coarse(SimTime::us(20), 8);
  coarse.record(SimTime::us(0), 4.0);
  TimeSeries fine(SimTime::us(5), 8);
  fine.record(SimTime::us(7), 1.0);
  fine.record(SimTime::us(25), 2.0);
  coarse.merge(fine);
  EXPECT_EQ(coarse.resolution(), SimTime::us(20));
  EXPECT_DOUBLE_EQ(coarse.bucket(0).sum, 5.0);  // 4.0 + 1.0 at t<20us
  EXPECT_DOUBLE_EQ(coarse.bucket(1).sum, 2.0);
  EXPECT_EQ(coarse.total_count(), 3u);

  // `this` finer than `other`: this coarsens itself first.
  TimeSeries fine2(SimTime::us(5), 8);
  fine2.record(SimTime::us(7), 1.0);
  TimeSeries coarse2(SimTime::us(10), 8);
  coarse2.record(SimTime::us(12), 3.0);
  fine2.merge(coarse2);
  EXPECT_EQ(fine2.resolution(), SimTime::us(10));
  EXPECT_DOUBLE_EQ(fine2.bucket(0).sum, 1.0);
  EXPECT_DOUBLE_EQ(fine2.bucket(1).sum, 3.0);

  // Non-power-of-two related resolutions and shape mismatches are errors.
  TimeSeries odd(SimTime::us(3), 8);
  odd.record(SimTime::us(0), 1.0);
  EXPECT_THROW(coarse.merge(odd), SimError);
  TimeSeries small(SimTime::us(20), 4);
  EXPECT_THROW(coarse.merge(small), SimError);
  TimeSeries empty_series;
  EXPECT_THROW(coarse.merge(empty_series), SimError);
  EXPECT_THROW(empty_series.record(SimTime::zero(), 1.0), SimError);
}

TEST(TimeSeries, ShardOrderMergeEqualsSinglePass) {
  std::vector<TimeSeries> shards(4, TimeSeries(SimTime::us(10), 16));
  TimeSeries whole(SimTime::us(10), 16);
  for (int i = 0; i < 500; ++i) {
    const SimTime t = SimTime::us((i * 13) % 900);  // forces coarsening
    const double v = static_cast<double>((i * 31) % 17) - 5.0;
    whole.record(t, v);
    shards[static_cast<std::size_t>(i) % shards.size()].record(t, v);
  }
  TimeSeries merged(SimTime::us(10), 16);
  for (const auto& s : shards) merged.merge(s);
  ASSERT_EQ(merged.resolution(), whole.resolution());
  ASSERT_EQ(merged.bucket_count(), whole.bucket_count());
  for (std::size_t i = 0; i < whole.bucket_count(); ++i) {
    EXPECT_EQ(merged.bucket(i).count, whole.bucket(i).count) << i;
    EXPECT_DOUBLE_EQ(merged.bucket(i).min, whole.bucket(i).min) << i;
    EXPECT_DOUBLE_EQ(merged.bucket(i).max, whole.bucket(i).max) << i;
  }
  EXPECT_DOUBLE_EQ(merged.total_sum(), whole.total_sum());
  EXPECT_EQ(merged.total_count(), whole.total_count());
}

// ----------------------------------------------------------- SeriesSet

TEST(SeriesSet, FindOrCreateReturnsStablePointers) {
  SeriesSet set;
  TimeSeries* a = set.series("b.metric", SimTime::us(10), 8);
  TimeSeries* b = set.series("a.metric", SimTime::us(10), 8);
  EXPECT_EQ(set.series("b.metric", SimTime::us(999), 4), a);  // find wins
  EXPECT_EQ(set.size(), 2u);
  a->record(SimTime::us(1), 1.0);
  EXPECT_EQ(set.find("b.metric"), a);
  EXPECT_EQ(set.find("missing"), nullptr);
  const auto sorted = set.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "a.metric");
  EXPECT_EQ(sorted[0].second, b);
  EXPECT_EQ(sorted[1].first, "b.metric");
}

// --------------------------------------------------------- NodeTimeGrid

TEST(NodeTimeGrid, BinsNodesAndTimeAndMerges) {
  NodeTimeGrid g(100, SimTime::sec(10), 4, 5);
  EXPECT_EQ(g.rows(), 4u);
  EXPECT_EQ(g.cols(), 5u);
  g.add(0, SimTime::zero(), 1.0);          // row 0, col 0
  g.add(99, SimTime::sec(10), 2.0);        // last row, col clamped to 4
  g.add(50, SimTime::sec(5), 3.0);         // row 2, col 2
  EXPECT_DOUBLE_EQ(g.cell(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.cell(3, 4), 2.0);
  EXPECT_DOUBLE_EQ(g.cell(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(g.total(), 6.0);
  EXPECT_DOUBLE_EQ(g.max_cell(), 3.0);
  // row_first_node inverts the forward binning.
  for (std::size_t row = 0; row < g.rows(); ++row) {
    const std::int64_t first = g.row_first_node(row);
    EXPECT_EQ(static_cast<std::size_t>(first * 4 / 100), row);
    if (first > 0) {
      EXPECT_LT(static_cast<std::size_t>((first - 1) * 4 / 100), row);
    }
  }

  NodeTimeGrid h(100, SimTime::sec(10), 4, 5);
  h.add(0, SimTime::zero(), 10.0);
  g.merge(h);
  EXPECT_DOUBLE_EQ(g.cell(0, 0), 11.0);
  NodeTimeGrid wrong(100, SimTime::sec(10), 2, 5);
  wrong.add(0, SimTime::zero(), 1.0);
  EXPECT_THROW(g.merge(wrong), SimError);
  // Merging into/from an empty grid is shape-adopting / a no-op.
  NodeTimeGrid empty_grid;
  empty_grid.merge(g);
  EXPECT_DOUBLE_EQ(empty_grid.cell(0, 0), 11.0);
  g.merge(NodeTimeGrid{});
  EXPECT_DOUBLE_EQ(g.total(), 16.0);
}

TEST(NodeTimeGrid, RowCountClampsToNodeCount) {
  NodeTimeGrid g(3, SimTime::sec(1), 32, 4);
  EXPECT_EQ(g.rows(), 3u);  // never more rows than nodes
  g.add(2, SimTime::from_ms(500), 1.0);
  EXPECT_DOUBLE_EQ(g.cell(2, 2), 1.0);
}

// ------------------------------------------------------ RegistrySampler

TEST(RegistrySampler, PollRecordsSnapshotDeltas) {
  obs::Registry registry;
  obs::Counter* c = registry.counter("linux.interrupt_ns");
  SeriesSet out;
  RegistrySampler sampler(registry, &out, SimTime::from_ms(10),
                          /*capacity=*/16, "node.");
  c->add(100);
  sampler.poll(SimTime::zero());  // baseline snapshot, no sample yet
  EXPECT_EQ(sampler.samples(), 0u);
  c->add(40);
  sampler.poll(SimTime::from_ms(5));  // within the period: no-op
  EXPECT_EQ(sampler.samples(), 0u);
  sampler.poll(SimTime::from_ms(10));
  c->add(7);
  sampler.poll(SimTime::from_ms(20));
  EXPECT_EQ(sampler.samples(), 2u);
  const TimeSeries* s = out.find("node.linux.interrupt_ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total_count(), 2u);
  EXPECT_DOUBLE_EQ(s->bucket(1).sum, 40.0);  // delta, not absolute value
  EXPECT_DOUBLE_EQ(s->bucket(2).sum, 7.0);
}

TEST(RegistrySampler, SchedulePollsPeriodicallyOnTheSimulator) {
  obs::Registry registry;
  obs::Counter* c = registry.counter("ticks");
  sim::Simulator sim;
  // Bump the counter by 3 every 7 ms (off the sampler's 20 ms grid, so
  // no same-timestamp ordering ambiguity between tick and poll events).
  std::function<void()> tick = [&] {
    c->add(3);
    sim.schedule_after(SimTime::from_ms(7), [&] { tick(); });
  };
  sim.schedule_after(SimTime::from_ms(7), [&] { tick(); });
  SeriesSet out;
  RegistrySampler sampler(registry, &out, SimTime::from_ms(20));
  sampler.schedule(sim, SimTime::from_ms(100));
  sim.run_until(SimTime::from_ms(200));
  // Samples at t = 20..100 ms (t = 0 is the baseline); the deltas sum to
  // the 14 ticks (t = 7..98 ms) seen by the last sample.
  EXPECT_EQ(sampler.samples(), 5u);
  const TimeSeries* s = out.find("ticks");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total_count(), 5u);
  EXPECT_DOUBLE_EQ(s->total_sum(), 42.0);
}

// ---------------------------------------------------------- OpenMetrics

TEST(OpenMetrics, ExposesCountersHistogramsAndSeries) {
  obs::Registry registry;
  registry.counter("a.first")->add(41);
  registry.counter("b.second_ns")->add(7);
  registry.histogram("lat_us", 0.1, 1e6, 64)->add(25.0);
  SeriesSet set;
  TimeSeries* s = set.series("fwq.daemon-mix.overhead_us",
                             SimTime::from_ms(625), 96);
  s->record(SimTime::from_ms(100), 12.5);
  s->record(SimTime::from_ms(900), 2.5);

  const std::string text = obs::ts::openmetrics_text(registry, &set);
  EXPECT_NE(text.find("# TYPE hpcos_counter counter\n"), std::string::npos);
  EXPECT_NE(text.find("hpcos_counter_total{name=\"a.first\"} 41\n"),
            std::string::npos);
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);

  const auto samples = obs::ts::parse_openmetrics(text);
  // 2 counters + 4 histogram lines + 3 series stats.
  ASSERT_EQ(samples.size(), 9u);
  EXPECT_EQ(samples[0].metric, "hpcos_counter_total");
  EXPECT_EQ(samples[0].label("name"), "a.first");
  EXPECT_DOUBLE_EQ(samples[0].value, 41.0);
  double series_sum = -1.0;
  double series_count = -1.0;
  double resolution_us = -1.0;
  std::uint64_t histogram_count = 0;
  for (const auto& sample : samples) {
    if (sample.metric == "hpcos_series" &&
        sample.label("name") == "fwq.daemon-mix.overhead_us") {
      if (sample.label("stat") == "sum") series_sum = sample.value;
      if (sample.label("stat") == "count") series_count = sample.value;
      if (sample.label("stat") == "resolution_us") {
        resolution_us = sample.value;
      }
    }
    if (sample.metric == "hpcos_histogram_count" &&
        sample.label("name") == "lat_us") {
      histogram_count = static_cast<std::uint64_t>(sample.value);
    }
  }
  EXPECT_DOUBLE_EQ(series_sum, 15.0);
  EXPECT_DOUBLE_EQ(series_count, 2.0);
  EXPECT_DOUBLE_EQ(resolution_us, 625e3);
  EXPECT_EQ(histogram_count, 1u);
}

TEST(OpenMetrics, EscapedLabelValuesRoundTrip) {
  obs::Registry registry;
  registry.counter("weird\\name\"with\nnewline")->add(3);
  const auto samples =
      obs::ts::parse_openmetrics(obs::ts::openmetrics_text(registry));
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].label("name"), "weird\\name\"with\nnewline");
  EXPECT_DOUBLE_EQ(samples[0].value, 3.0);
}

TEST(OpenMetrics, StrictParserRejectsMalformedInput) {
  EXPECT_THROW(obs::ts::parse_openmetrics("x{name=\"a\"} 1\n"),
               std::runtime_error);  // missing # EOF
  EXPECT_THROW(obs::ts::parse_openmetrics("# EOF\nx 1\n"),
               std::runtime_error);  // content after EOF
  EXPECT_THROW(obs::ts::parse_openmetrics("x{name=a} 1\n# EOF\n"),
               std::runtime_error);  // unquoted label value
  EXPECT_THROW(obs::ts::parse_openmetrics("x{name=\"a} 1\n# EOF\n"),
               std::runtime_error);  // unterminated label value
  EXPECT_THROW(obs::ts::parse_openmetrics("x{name=\"a\"} oops\n# EOF\n"),
               std::runtime_error);  // non-numeric value
  EXPECT_THROW(obs::ts::parse_openmetrics("x{name=\"a\"}1\n# EOF\n"),
               std::runtime_error);  // missing value separator
  // The empty exposition (just the terminator) is valid.
  EXPECT_TRUE(obs::ts::parse_openmetrics("# EOF\n").empty());
}

// Satellite bugfix regression: every counter in the OpenMetrics
// exposition must parse back to exactly the value the BenchReport JSON
// carries under counter.<name> — the two exports must never disagree on
// a counter's name or value.
TEST(ObsRoundTrip, OpenMetricsCountersMatchBenchReportJson) {
  obs::Registry registry;
  registry.counter("linux.interrupt_ns")->add(123456789012345ull);
  registry.counter("lwk.syscalls.local")->add(42);
  registry.counter("ikc.to_host.posted");  // zero-valued counter
  registry.counter("fwq.topk.evictions")->add(7);

  obs::BenchReport report("round_trip", true, 1);
  obs::ts::add_registry_metrics(report, registry, "counter");
  const JsonValue doc = report.to_json();
  EXPECT_EQ(obs::validate_bench_report(doc), "");

  const auto samples =
      obs::ts::parse_openmetrics(obs::ts::openmetrics_text(registry));
  std::size_t counters_checked = 0;
  for (const auto& sample : samples) {
    if (sample.metric != "hpcos_counter_total") continue;
    const std::string json_name = "counter." + sample.label("name");
    double json_value = -1.0;
    bool found = false;
    for (const JsonValue& m : doc.at("metrics").as_array()) {
      if (m.at("name").as_string() == json_name) {
        json_value = m.at("value").as_number();
        found = true;
      }
    }
    ASSERT_TRUE(found) << "no JSON metric for " << json_name;
    EXPECT_EQ(sample.value, json_value) << json_name;
    ++counters_checked;
  }
  EXPECT_EQ(counters_checked, 4u);
}

// ------------------------------------------------- BenchReport series

TEST(BenchReport, SeriesExportValidatesAndDumpsBuckets) {
  obs::BenchReport report("series_unit", true, 3);
  report.add_metric("dummy", "count", 1.0);
  TimeSeries s(SimTime::us(100), 8);
  s.record(SimTime::us(50), 2.0);
  s.record(SimTime::us(450), 6.0);
  report.add_series("bsp.compute_us", "us", s);
  EXPECT_EQ(report.series_count(), 1u);
  const JsonValue doc = report.to_json();
  EXPECT_EQ(obs::validate_bench_report(doc), "");
  const JsonValue* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->as_array().size(), 1u);
  const JsonValue& entry = series->as_array()[0];
  EXPECT_EQ(entry.at("name").as_string(), "bsp.compute_us");
  EXPECT_EQ(entry.at("unit").as_string(), "us");
  EXPECT_DOUBLE_EQ(entry.at("resolution_us").as_number(), 100.0);
  // Empty buckets are elided: two non-empty buckets only.
  const auto& buckets = entry.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].at("t_us").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(buckets[0].at("sum").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(buckets[1].at("t_us").as_number(), 400.0);
  EXPECT_DOUBLE_EQ(buckets[1].at("max").as_number(), 6.0);
}

// -------------------------------------------------- campaign timeline

cluster::FwqCampaignConfig timeline_config() {
  cluster::FwqCampaignConfig config;
  config.nodes = 32;
  config.app_cores = 8;
  config.duration_per_core = SimTime::sec(30);
  config.seed = Seed{21};
  config.timeline = true;
  return config;
}

TEST(CampaignTimeline, SeriesTotalsReconcileWithLedgerSlots) {
  const auto profile = noise::fugaku_linux_profile();
  const auto result = cluster::run_fwq_campaign(profile, timeline_config());
  ASSERT_TRUE(result.timeline.enabled);
  ASSERT_EQ(result.timeline.per_source.size(), result.per_source.size());
  ASSERT_EQ(result.timeline.sketches.size(), result.per_source.size());

  double series_total = 0.0;
  for (std::size_t i = 0; i < result.per_source.size(); ++i) {
    const auto& slot = result.per_source[i];
    const auto& series = result.timeline.per_source[i];
    const auto& sketch = result.timeline.sketches[i];
    // The acceptance invariant: the streamed series adds the exact same
    // overhead * weight products as the attribution ledger.
    EXPECT_LT(rel_diff(series.total_sum(), slot.stolen_us), 1e-9)
        << slot.source;
    series_total += series.total_sum();
    if (slot.stolen_us > 0.0) {
      EXPECT_GT(sketch.count(), 0u) << slot.source;
      EXPECT_GE(sketch.quantile(0.99), 0.0) << slot.source;
    }
    // In-window samples at the derived resolution never overflow the ring.
    EXPECT_EQ(series.coarsen_count(), 0u) << slot.source;
    EXPECT_LE(series.bucket_count(), series.capacity()) << slot.source;
  }
  // The heatmap accumulates the same products, so its total matches too.
  EXPECT_LT(rel_diff(result.timeline.heatmap.total(), series_total), 1e-9);
  EXPECT_GT(result.timeline.heatmap.total(), 0.0);
}

TEST(CampaignTimeline, EnablingTimelineDoesNotShiftCampaignStatistics) {
  // Timeline timestamps draw from a dedicated RNG substream: the
  // committed bench baselines depend on the campaign statistics being
  // bit-identical whether or not the timeline is on.
  const auto profile = noise::fugaku_linux_profile();
  auto config = timeline_config();
  config.timeline = false;
  const auto off = cluster::run_fwq_campaign(profile, config);
  config.timeline = true;
  const auto on = cluster::run_fwq_campaign(profile, config);
  EXPECT_EQ(off.total_iterations, on.total_iterations);
  EXPECT_EQ(off.stats.samples, on.stats.samples);
  EXPECT_EQ(off.stats.t_max, on.stats.t_max);
  EXPECT_DOUBLE_EQ(off.stats.noise_rate, on.stats.noise_rate);
  ASSERT_EQ(off.per_source.size(), on.per_source.size());
  for (std::size_t i = 0; i < off.per_source.size(); ++i) {
    EXPECT_EQ(off.per_source[i].stolen_us, on.per_source[i].stolen_us) << i;
    EXPECT_EQ(off.per_source[i].worst_us, on.per_source[i].worst_us) << i;
  }
  EXPECT_FALSE(off.timeline.enabled);
  EXPECT_TRUE(on.timeline.per_source.size() > 0);
}

TEST(CampaignTimeline, TenTimesLongerRunStaysWithinCapacity) {
  // Same explicit resolution, 10x the duration: the rings must coarsen
  // (not grow) and the reconciliation identity must survive coarsening.
  const auto profile = noise::fugaku_linux_profile();
  auto config = timeline_config();
  config.nodes = 8;
  config.timeline_buckets = 32;
  config.timeline_resolution = SimTime::from_ms(30000.0 / 32.0);
  config.duration_per_core = SimTime::sec(300);
  const auto result = cluster::run_fwq_campaign(profile, config);
  bool coarsened = false;
  for (std::size_t i = 0; i < result.per_source.size(); ++i) {
    const auto& series = result.timeline.per_source[i];
    EXPECT_LE(series.bucket_count(), series.capacity());
    EXPECT_EQ(series.capacity(), 32u);
    if (series.coarsen_count() > 0) coarsened = true;
    EXPECT_LT(rel_diff(series.total_sum(),
                       result.per_source[i].stolen_us), 1e-9);
  }
  EXPECT_TRUE(coarsened);
}

// ------------------------------------------------------ BSP series hook

class FourStep final : public cluster::Workload {
 public:
  std::string name() const override { return "four-step"; }
  int iterations() const override { return 4; }
  cluster::RankWork rank_work(int, const cluster::JobConfig&,
                              const cluster::OsEnvironment&) const override {
    cluster::RankWork w;
    w.compute = SimTime::from_ms(3);
    w.alloc_churn_bytes = 8ull << 20;
    w.touch_bytes = 1ull << 20;
    w.allreduces = 1;
    w.allreduce_bytes = 2048;
    w.barriers = 1;
    w.imbalance_sigma = 0.05;
    return w;
  }
};

TEST(BspSeries, EngineRecordsPerIterationPhaseDurations) {
  const auto env = cluster::make_fugaku_linux_env();
  const cluster::JobConfig job{.nodes = 32, .ranks_per_node = 4,
                               .threads_per_rank = 12};
  FourStep w;
  SeriesSet set;
  cluster::BspEngine engine(env, job, Seed{44});
  engine.set_series(&set, "bsp.", SimTime::from_ms(10), 64);
  const auto result = engine.run(w);
  EXPECT_GT(result.total, SimTime::zero());
  for (const char* name :
       {"bsp.iteration_us", "bsp.compute_us", "bsp.noise_wait_us",
        "bsp.comm_us", "bsp.churn_us", "bsp.imbalance_us",
        "bsp.fault_in_us"}) {
    const TimeSeries* s = set.find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->total_count(), 4u) << name;
  }
  // Iteration durations dominate each component.
  EXPECT_GT(set.find("bsp.iteration_us")->total_sum(),
            set.find("bsp.compute_us")->total_sum());
  // The hook is optional: a second engine without it runs identically.
  cluster::BspEngine plain(env, job, Seed{44});
  const auto plain_result = plain.run(w);
  EXPECT_EQ(plain_result.total, result.total);
}

}  // namespace
}  // namespace hpcos
