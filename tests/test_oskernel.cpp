// Unit tests: address spaces and the core kernel execution machinery
// (exercised through the concrete McKernel/LinuxKernel, which is how the
// machinery is always used).
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "oskernel/address_space.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;
using test::MultiKernelNode;
using test::ScriptBody;
using test::spawn_script;

// ---- AddressSpace ----

TEST(AddressSpace, DemandMappingPopulatesOnTouch) {
  os::AddressSpace as;
  const auto addr = as.map(10 * 64 * 1024, hw::PageSize::k64K,
                           os::PagingPolicy::kDemand);
  EXPECT_EQ(as.resident_bytes(), 0u);
  EXPECT_EQ(as.mapped_bytes(), 10u * 64 * 1024);
  EXPECT_EQ(as.touch(addr, 64 * 1024), 1u);        // one page
  EXPECT_EQ(as.touch(addr, 64 * 1024), 0u);        // already resident
  EXPECT_EQ(as.touch(addr, 5 * 64 * 1024), 4u);    // four more
  EXPECT_EQ(as.resident_bytes(), 5u * 64 * 1024);
}

TEST(AddressSpace, PrePopulateFaultsUpFront) {
  os::AddressSpace as;
  const auto addr = as.map(4 << 20, hw::PageSize::k2M,
                           os::PagingPolicy::kPrePopulate);
  EXPECT_EQ(as.resident_bytes(), 4u << 20);
  EXPECT_EQ(as.touch(addr, 4 << 20), 0u);
}

TEST(AddressSpace, UnmapReportsFlushesForResidentPagesOnly) {
  os::AddressSpace as;
  const auto addr =
      as.map(8 << 20, hw::PageSize::k2M, os::PagingPolicy::kDemand);
  as.touch(addr, 2 << 20);  // one 2M page resident
  const auto r = as.unmap(addr, 8 << 20);
  EXPECT_EQ(r.pages_released, 4u);
  EXPECT_EQ(r.tlb_flushes, 1u);
  EXPECT_EQ(as.area_count(), 0u);
}

TEST(AddressSpace, PartialUnmapShrinksArea) {
  os::AddressSpace as;
  const auto addr = as.map(4 * 64 * 1024, hw::PageSize::k64K,
                           os::PagingPolicy::kPrePopulate);
  const auto r = as.unmap(addr, 2 * 64 * 1024);
  EXPECT_EQ(r.pages_released, 2u);
  EXPECT_EQ(r.tlb_flushes, 2u);
  EXPECT_EQ(as.area_count(), 1u);
  EXPECT_EQ(as.mapped_bytes(), 2u * 64 * 1024);
  // The remainder is addressable.
  EXPECT_EQ(as.touch(addr + 2 * 64 * 1024, 64 * 1024), 0u);  // resident
}

TEST(AddressSpace, MisuseThrows) {
  os::AddressSpace as;
  const auto addr =
      as.map(64 * 1024, hw::PageSize::k64K, os::PagingPolicy::kDemand);
  EXPECT_THROW(as.unmap(addr + 1, 64), SimError);
  EXPECT_THROW(as.touch(addr - 4096, 64), SimError);
  EXPECT_THROW(as.unmap(addr, 1 << 30), SimError);
}

TEST(AddressSpace, MappingsAlignedToPageSize) {
  os::AddressSpace as;
  const auto a1 =
      as.map(1000, hw::PageSize::k64K, os::PagingPolicy::kDemand);
  const auto a2 =
      as.map(1000, hw::PageSize::k2M, os::PagingPolicy::kDemand);
  EXPECT_EQ(a1 % (64 * 1024), 0u);
  EXPECT_EQ(a2 % (2 << 20), 0u);
  EXPECT_NE(a1, a2);
}

// ---- execution machinery (on the quiet multi-kernel node's LWK) ----

TEST(KernelExec, ComputeTakesExactlyItsWork) {
  MultiKernelNode node;
  SimTime done;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (ctx.now().is_zero()) {
      ctx.compute(5_ms);
      return true;
    }
    done = ctx.now();
    return false;
  });
  node.sim.run_until(1_s);
  EXPECT_EQ(done, 5_ms);
}

TEST(KernelExec, SleepWakesOnTime) {
  MultiKernelNode node;
  std::vector<SimTime> marks;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    marks.push_back(ctx.now());
    if (marks.size() == 1) {
      ctx.sleep_for(3_ms);
      return true;
    }
    return false;
  });
  node.sim.run_until(1_s);
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_EQ(marks[1] - marks[0], 3_ms);
}

TEST(KernelExec, CooperativeRoundRobinOnOneCore) {
  MultiKernelNode node;
  const auto pin = test::one_core(node.topo, 2);
  std::vector<int> order;
  for (int id = 0; id < 2; ++id) {
    int remaining = 3;
    spawn_script(
        *node.lwk,
        [&, id, remaining](os::ThreadContext& ctx) mutable {
          if (remaining-- == 0) return false;
          order.push_back(id);
          ctx.compute(1_ms);
          return true;
        },
        os::SpawnAttrs{.name = "rr", .affinity = pin});
  }
  node.sim.run_until(1_s);
  // Co-operative: the first thread runs its 1 ms bursts back-to-back and
  // only a completed burst lets the other in; with compute->step->compute
  // each burst ends with a re-request, so the LWK interleaves at burst
  // granularity after the first thread's step returns... The essential
  // property: both make progress and each ran exactly 3 bursts.
  EXPECT_EQ(order.size(), 6u);
  EXPECT_EQ(std::count(order.begin(), order.end(), 0), 3);
  EXPECT_EQ(std::count(order.begin(), order.end(), 1), 3);
}

TEST(KernelExec, InterruptExtendsRunningBurst) {
  MultiKernelNode node;
  SimTime done;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (ctx.now().is_zero()) {
      ctx.compute(10_ms);
      return true;
    }
    done = ctx.now();
    return false;
  });
  node.sim.run_until(1_ms);
  node.lwk->interrupt_core(2, 500_us, sim::TraceCategory::kIrq, "test-irq");
  node.sim.run_until(1_s);
  EXPECT_EQ(done, 10_ms + 500_us);
  EXPECT_EQ(node.lwk->accounting(2).interrupts, 1u);
  EXPECT_EQ(node.lwk->accounting(2).kernel, 500_us);
}

TEST(KernelExec, NestedInterruptsAccumulate) {
  MultiKernelNode node;
  SimTime done;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (ctx.now().is_zero()) {
      ctx.compute(10_ms);
      return true;
    }
    done = ctx.now();
    return false;
  });
  node.sim.run_until(1_ms);
  node.lwk->interrupt_core(2, 400_us, sim::TraceCategory::kIrq, "a");
  node.sim.run_until(SimTime::from_ms(1.2));  // still inside irq
  node.lwk->interrupt_core(2, 300_us, sim::TraceCategory::kIrq, "b");
  node.sim.run_until(1_s);
  EXPECT_EQ(done, 10_ms + 700_us);
}

TEST(KernelExec, StallInflatesWallTimeWithoutKernelTime) {
  MultiKernelNode node;
  SimTime done;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (ctx.now().is_zero()) {
      ctx.compute(10_ms);
      return true;
    }
    done = ctx.now();
    return false;
  });
  node.sim.run_until(2_ms);
  node.lwk->stall_core(2, 200_us, sim::TraceCategory::kUser, "tlbi-victim");
  node.sim.run_until(1_s);
  EXPECT_EQ(done, 10_ms + 200_us);
  EXPECT_EQ(node.lwk->accounting(2).stall, 200_us);
  EXPECT_EQ(node.lwk->accounting(2).kernel, SimTime::zero());
}

TEST(KernelExec, StallOnIdleCoreIsNoop) {
  MultiKernelNode node;
  node.lwk->stall_core(3, 1_ms, sim::TraceCategory::kUser, "x");
  EXPECT_EQ(node.lwk->accounting(3).stall, SimTime::zero());
}

TEST(KernelExec, StallAllExceptSkipsInitiator) {
  MultiKernelNode node;
  std::vector<SimTime> dones(2);
  for (int i = 0; i < 2; ++i) {
    spawn_script(
        *node.lwk,
        [&, i](os::ThreadContext& ctx) {
          if (ctx.now().is_zero()) {
            ctx.compute(10_ms);
            return true;
          }
          dones[static_cast<std::size_t>(i)] = ctx.now();
          return false;
        },
        os::SpawnAttrs{.affinity = test::one_core(node.topo, 2 + i)});
  }
  node.sim.run_until(1_ms);
  node.lwk->stall_all_cores_except(2, 100_us, sim::TraceCategory::kUser,
                                   "bcast");
  node.sim.run_until(1_s);
  EXPECT_EQ(dones[0], 10_ms);            // initiator unaffected
  EXPECT_EQ(dones[1], 10_ms + 100_us);   // victim stalled
}

TEST(KernelExec, AccountingSplitsUserAndKernel) {
  MultiKernelNode node;
  int phase = 0;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (phase == 0) {
      ++phase;
      ctx.compute(4_ms);
      return true;
    }
    if (phase == 1) {
      ++phase;
      ctx.invoke(os::Syscall::kGetTimeOfDay);
      return true;
    }
    return false;
  });
  node.sim.run_until(1_s);
  const auto& acct = node.lwk->accounting(2);
  EXPECT_EQ(acct.user, 4_ms);
  // gettimeofday: local cost + trap.
  EXPECT_EQ(acct.kernel, node.lwk->config().local_syscall_cost +
                             node.lwk->config().costs.syscall_trap);
}

TEST(KernelExec, ThreadAndProcessLifecycle) {
  MultiKernelNode node;
  const auto tid = spawn_script(*node.lwk, [](os::ThreadContext&) {
    return false;  // exit immediately
  });
  EXPECT_TRUE(node.lwk->thread_alive(tid));
  node.sim.run_until(1_ms);
  EXPECT_FALSE(node.lwk->thread_alive(tid));
  EXPECT_EQ(node.lwk->live_thread_count(), 0u);
  EXPECT_EQ(node.lwk->thread(tid).state, os::ThreadState::kExited);
}

TEST(KernelExec, AffinityRestrictsPlacement) {
  MultiKernelNode node;
  const auto pin = test::one_core(node.topo, 5);
  hw::CoreId ran_on = hw::kInvalidCore;
  spawn_script(
      *node.lwk,
      [&](os::ThreadContext& ctx) {
        ran_on = ctx.core();
        return false;
      },
      os::SpawnAttrs{.affinity = pin});
  node.sim.run_until(1_ms);
  EXPECT_EQ(ran_on, 5);
}

TEST(KernelExec, SpawnWithBadAffinityThrows) {
  MultiKernelNode node;
  // Core 0 is a Linux/system core; the LWK does not own it.
  EXPECT_THROW(
      spawn_script(*node.lwk, [](os::ThreadContext&) { return false; },
                   os::SpawnAttrs{.affinity = test::one_core(node.topo, 0)}),
      SimError);
}

}  // namespace
}  // namespace hpcos
