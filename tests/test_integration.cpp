// End-to-end integration: a miniature bulk-synchronous application running
// on the node DES with real syscalls (mmap/munmap churn), futex-based
// barriers between rank threads, OS noise, and — on the multi-kernel —
// the IHK/proxy delegation path. This is the whole stack in one test.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/job_launcher.h"
#include "cluster/node.h"
#include "kernel_test_util.h"
#include "noise/fwq.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;

// A futex-style barrier across rank threads, coordinated by the test via
// complete_blocked_syscall (the role the MPI runtime's shared memory would
// play).
class MiniBarrier {
 public:
  MiniBarrier(os::NodeKernel& kernel, int parties)
      : kernel_(kernel), parties_(parties) {}

  // Returns true when the caller is the last arriver (must not block).
  bool arrive(os::ThreadId tid) {
    waiting_.push_back(tid);
    if (static_cast<int>(waiting_.size()) < parties_) return false;
    // Release everyone but the last arriver.
    for (std::size_t i = 0; i + 1 < waiting_.size(); ++i) {
      os::SyscallResult r;
      r.ok = true;
      kernel_.complete_blocked_syscall(waiting_[i], r);
    }
    waiting_.clear();
    return true;
  }

 private:
  os::NodeKernel& kernel_;
  int parties_;
  std::vector<os::ThreadId> waiting_;
};

// One rank: per iteration mmap a scratch buffer, compute, munmap, barrier.
class MiniRank final : public os::ThreadBody {
 public:
  MiniRank(MiniBarrier& barrier, int iterations, SimTime* done)
      : barrier_(barrier), iterations_(iterations), done_(done) {}

  void step(os::ThreadContext& ctx) override {
    switch (phase_) {
      case 0:  // map scratch
        phase_ = 1;
        ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = 16ull << 20});
        return;
      case 1:  // compute
        addr_ = static_cast<std::uint64_t>(ctx.last_syscall().value);
        phase_ = 2;
        ctx.compute(2_ms);
        return;
      case 2:  // free scratch
        phase_ = 3;
        ctx.invoke(os::Syscall::kMunmap,
                   os::SyscallArgs{.arg0 = addr_, .arg1 = 16ull << 20});
        return;
      case 3:  // barrier
        if (barrier_.arrive(ctx.tid())) {
          // Last arriver proceeds directly.
          next_iteration(ctx);
          return;
        }
        phase_ = 4;
        ctx.invoke(os::Syscall::kFutex, os::SyscallArgs{.arg0 = 0});
        return;
      case 4:  // released from the barrier
        next_iteration(ctx);
        return;
      default:
        ctx.exit();
    }
  }

 private:
  void next_iteration(os::ThreadContext& ctx) {
    if (++iter_ >= iterations_) {
      *done_ = ctx.now();
      phase_ = 5;
      ctx.exit();
      return;
    }
    phase_ = 1;
    ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = 16ull << 20});
  }

  MiniBarrier& barrier_;
  int iterations_;
  SimTime* done_;
  int phase_ = 0;
  int iter_ = 0;
  std::uint64_t addr_ = 0;
};

SimTime run_mini_app(cluster::SimNode& node, int ranks, int iterations) {
  cluster::JobLauncher launcher(node);
  const auto job = launcher.launch(cluster::LaunchSpec{
      .ranks = ranks, .threads_per_rank = 1,
      .paging = os::PagingPolicy::kDemand});
  MiniBarrier barrier(node.app_kernel(), ranks);
  std::vector<SimTime> done(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    launcher.spawn_rank_thread(
        job, r,
        std::make_unique<MiniRank>(barrier, iterations,
                                   &done[static_cast<std::size_t>(r)]),
        "mini-rank-" + std::to_string(r));
  }
  node.simulator().run_until(SimTime::sec(60));
  SimTime last;
  for (const SimTime d : done) {
    EXPECT_GT(d, SimTime::zero());  // every rank finished
    last = std::max(last, d);
  }
  return last;
}

TEST(Integration, MiniAppCompletesOnBothOsStacks) {
  const auto platform = hw::make_fugaku_testbed_platform();

  auto lcfg = linuxk::make_fugaku_linux_config(platform);
  lcfg.profile = noise::strip_population_tails(lcfg.profile);
  auto linux_node = cluster::SimNode::make_linux_node(
      platform, lcfg, cluster::SimNodeOptions{.seed = Seed{5}});
  const SimTime linux_total = run_mini_app(*linux_node, 4, 20);

  auto mcfg = mck::McKernelConfig::defaults();
  auto mk_node = cluster::SimNode::make_multikernel_node(
      platform, lcfg, std::move(mcfg),
      cluster::SimNodeOptions{.seed = Seed{5}});
  const SimTime mck_total = run_mini_app(*mk_node, 4, 20);

  // Both complete 20 iterations of ~2 ms compute; the LWK's cheaper
  // memory path and missing ticks keep it at or below Linux.
  EXPECT_GT(linux_total, SimTime::ms(40));
  EXPECT_GT(mck_total, SimTime::ms(40));
  EXPECT_LE(mck_total, linux_total);
  // The mini app's calls are all LWK-local (memory + futex).
  EXPECT_EQ(mk_node->lwk()->offloaded_syscalls(), 0u);
  EXPECT_GT(mk_node->lwk()->local_syscalls(), 0u);
}

TEST(Integration, MiniAppChurnKeepsLwkPoolWarm) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto mcfg = mck::McKernelConfig::defaults();
  auto node = cluster::SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform), std::move(mcfg),
      cluster::SimNodeOptions{.seed = Seed{6}});
  cluster::JobLauncher launcher(*node);
  const auto job = launcher.launch(cluster::LaunchSpec{
      .ranks = 1, .threads_per_rank = 1,
      .paging = os::PagingPolicy::kDemand});
  MiniBarrier barrier(node->app_kernel(), 1);
  SimTime done;
  launcher.spawn_rank_thread(
      job, 0, std::make_unique<MiniRank>(barrier, 10, &done), "solo");
  node->simulator().run_until(SimTime::sec(10));
  ASSERT_GT(done, SimTime::zero());
  // Exactly 10 mmap + 10 munmap, all served locally by the LWK; the final
  // exit returned the retained pool to the LWK allocator.
  EXPECT_EQ(node->lwk()->local_syscalls(), 20u);
  EXPECT_EQ(node->lwk()->offloaded_syscalls(), 0u);
  EXPECT_EQ(node->lwk()->pooled_bytes(job.ranks[0].pid), 0u);
}

TEST(Integration, MultiKernelFwqIsDeterministicPerSeed) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto run = [&](std::uint64_t seed) {
    auto mcfg = mck::McKernelConfig::defaults();  // hw-floor noise active
    auto node = cluster::SimNode::make_multikernel_node(
        platform, linuxk::make_fugaku_linux_config(platform),
        std::move(mcfg), cluster::SimNodeOptions{.seed = Seed{seed}});
    noise::FwqConfig fwq;
    fwq.iterations = 2000;
    const auto traces = noise::run_fwq(
        node->app_kernel(), node->topology().application_cores(), fwq);
    std::vector<std::int64_t> flat;
    for (const auto& t : traces) {
      for (const SimTime it : t.iteration_times) {
        flat.push_back(it.count_ns());
      }
    }
    return flat;
  };
  const auto a = run(123);
  const auto b = run(123);
  const auto c = run(456);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace hpcos
