// Append-only JSONL run ledger (obs/runlog): record construction, the
// host/deterministic split, crash-safe appends, and both parser modes.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/confighash.h"
#include "common/json.h"
#include "obs/bench_report.h"
#include "obs/runlog.h"

namespace hpcos {
namespace {

JsonValue test_config() {
  JsonValue config = JsonValue::object();
  config.set("schema", "hpcos-config-test/1");
  config.set("knob", 42);
  return config;
}

obs::BenchReport test_report() {
  obs::BenchReport report("runlog_bench", /*quick=*/true, /*seed=*/7);
  report.add_metric("fwq.noise_rate", "ratio", 0.003);
  report.add_metric(obs::BenchMetric{.name = "fwq.p99_ms",
                                     .unit = "ms",
                                     .value = 6.5,
                                     .percentiles = {{"p50", 6.5},
                                                     {"p99", 6.9}}});
  report.add_metric("host.wall_s", "s", 1.25);
  return report;
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// --------------------------------------------------- record construction

TEST(RunLedger, RecordValidatesAndRoutesHostMetricsIntoHostSection) {
  const auto report = test_report();
  const JsonValue record = obs::make_run_record(
      report, test_config(), "2026-08-08T12:00:00Z");
  EXPECT_EQ(obs::validate_run_record(record), "");
  EXPECT_EQ(record.at("schema").as_string(), obs::kRunLedgerSchema);
  EXPECT_EQ(record.at("target").as_string(), "runlog_bench");
  EXPECT_EQ(record.at("config_hash").as_string(),
            config_hash_hex(test_config()));

  // host.* metrics must not reach the deterministic metrics array.
  for (const JsonValue& m : record.at("metrics").as_array()) {
    EXPECT_NE(m.at("name").as_string().rfind("host.", 0), 0u);
  }
  EXPECT_EQ(record.at("metrics").as_array().size(), 2u);
  const JsonValue& host = record.at("host");
  EXPECT_EQ(host.at("timestamp").as_string(), "2026-08-08T12:00:00Z");
  ASSERT_TRUE(host.contains("metrics"));
  ASSERT_EQ(host.at("metrics").as_array().size(), 1u);
  EXPECT_EQ(host.at("metrics").as_array()[0].at("name").as_string(),
            "host.wall_s");
}

TEST(RunLedger, DeterministicLineIgnoresEverythingUnderHost) {
  const auto report = test_report();
  const JsonValue a = obs::make_run_record(report, test_config(),
                                           "2026-08-08T12:00:00Z");
  const JsonValue b = obs::make_run_record(report, test_config(),
                                           "1999-01-01T00:00:00Z");
  EXPECT_NE(obs::run_record_line(a), obs::run_record_line(b));
  EXPECT_EQ(obs::deterministic_line(a), obs::deterministic_line(b));
  EXPECT_EQ(obs::deterministic_digest_hex(a),
            obs::deterministic_digest_hex(b));
  // The deterministic line is canonical: key order is sorted, so it is
  // parseable and host-free.
  const JsonValue stripped = JsonValue::parse(obs::deterministic_line(a));
  EXPECT_FALSE(stripped.contains("host"));
  EXPECT_TRUE(stripped.contains("config_hash"));
}

// -------------------------------------------------------- parser modes

TEST(RunLedger, StrictParserRejectsUnknownSchemaLenientSkips) {
  const JsonValue record = obs::make_run_record(
      test_report(), test_config(), "2026-08-08T12:00:00Z");
  JsonValue future = record;
  future.set("schema", "hpcos-run-ledger/999");
  const std::string text =
      obs::run_record_line(record) + "\n" + future.dump() + "\n";

  EXPECT_THROW((void)obs::parse_run_ledger(text, /*strict=*/true),
               std::runtime_error);
  try {
    (void)obs::parse_run_ledger(text, /*strict=*/true);
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("unknown schema"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }

  const obs::RunLedger lenient =
      obs::parse_run_ledger(text, /*strict=*/false);
  EXPECT_EQ(lenient.records.size(), 1u);
  EXPECT_EQ(lenient.skipped, 1u);
}

TEST(RunLedger, RunRecordLineRefusesInvalidRecords) {
  JsonValue bad = obs::make_run_record(test_report(), test_config(),
                                       "2026-08-08T12:00:00Z");
  bad.set("config_hash", "not-hex");
  EXPECT_THROW((void)obs::run_record_line(bad), std::runtime_error);
}

// --------------------------------------------------- append + recovery

TEST(RunLedger, AppendAccumulatesAndLenientReaderSkipsTornTail) {
  TempFile file("test_runlog_append.ledger.jsonl");
  const JsonValue record = obs::make_run_record(
      test_report(), test_config(), "2026-08-08T12:00:00Z");
  obs::append_run_record(file.path, record);
  obs::append_run_record(file.path, record);

  obs::RunLedger ledger = obs::read_run_ledger(file.path, /*strict=*/true);
  EXPECT_EQ(ledger.records.size(), 2u);
  EXPECT_EQ(ledger.skipped, 0u);

  // Simulate a crash mid-append: a torn, newline-less final line. The
  // lenient reader must skip-and-count it, never abort; strict must
  // throw.
  {
    std::ofstream out(file.path, std::ios::app);
    out << R"({"schema": "hpcos-run-ledg)";
  }
  ledger = obs::read_run_ledger(file.path, /*strict=*/false);
  EXPECT_EQ(ledger.records.size(), 2u);
  EXPECT_EQ(ledger.skipped, 1u);
  EXPECT_THROW((void)obs::read_run_ledger(file.path, /*strict=*/true),
               std::runtime_error);

  // A later append after the torn line starts cleanly on... the same
  // line (no newline was written), which is exactly the crash model:
  // only that one line is lost, the new record after it survives once a
  // newline separates them. Verify the undamaged prefix still parses.
  const obs::RunLedger prefix =
      obs::read_run_ledger(file.path, /*strict=*/false);
  EXPECT_EQ(prefix.records.size(), 2u);
}

TEST(RunLedger, HeartbeatLineInLedgerIsRejectedWithSpecificError) {
  // The two JSONL streams must not mix: a heartbeat record in a run
  // ledger (e.g. --progress-file pointed at the ledger path) is a hard,
  // line-numbered, specifically-worded strict error; the lenient reader
  // skips-and-counts it like any other damaged line.
  TempFile file("test_runlog_hb_mix.ledger.jsonl");
  auto report = test_report();
  obs::append_run_record(
      file.path, obs::make_run_record(report, test_config(),
                                      "2026-08-08T00:00:00Z"));
  {
    std::ofstream out(file.path, std::ios::app);
    out << R"({"schema":"hpcos-heartbeat/1","target":"x","kind":"tick"})"
        << "\n";
  }
  try {
    (void)obs::read_run_ledger(file.path, /*strict=*/true);
    FAIL() << "strict parser accepted a heartbeat line";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("run ledger line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("hpcos-heartbeat/1"), std::string::npos) << what;
    EXPECT_NE(what.find("*.heartbeat.jsonl"), std::string::npos) << what;
  }
  const obs::RunLedger lenient =
      obs::read_run_ledger(file.path, /*strict=*/false);
  EXPECT_EQ(lenient.records.size(), 1u);
  EXPECT_EQ(lenient.skipped, 1u);
}

TEST(RunLedger, LenientReaderSkipsEveryDamagedLineKindInOneFile) {
  // One file, every damage class at once: two torn (truncated-JSON)
  // lines at different positions plus two interleaved heartbeat lines
  // between valid records. The lenient reader must keep every valid
  // record and count exactly the four damaged lines — per-line recovery,
  // not give-up-at-first-error.
  TempFile file("test_runlog_multidamage.ledger.jsonl");
  const JsonValue record = obs::make_run_record(
      test_report(), test_config(), "2026-08-08T12:00:00Z");
  const std::string good = obs::run_record_line(record);
  const std::string heartbeat =
      R"({"schema":"hpcos-heartbeat/1","target":"x","kind":"tick"})";
  {
    std::ofstream out(file.path);
    out << good << "\n"
        << R"({"schema":"hpcos-run-ledg)" << "\n"   // torn line 2
        << good << "\n"
        << heartbeat << "\n"                        // heartbeat line 4
        << good << "\n"
        << heartbeat << "\n"                        // heartbeat line 6
        << R"({"target":"half","metri)" << "\n"     // torn line 7
        << good << "\n";
  }
  const obs::RunLedger ledger =
      obs::read_run_ledger(file.path, /*strict=*/false);
  EXPECT_EQ(ledger.records.size(), 4u);
  EXPECT_EQ(ledger.skipped, 4u);
  for (const JsonValue& r : ledger.records) {
    EXPECT_EQ(r.at("target").as_string(), "runlog_bench");
  }
}

TEST(RunLedger, StrictParserNamesTheFirstDamagedLineNumber) {
  // Same mixed file shape, strict mode: the error must carry the 1-based
  // line number of the FIRST damaged line so the operator can fix the
  // file by line address, and an error deeper in the file must name that
  // deeper line (valid prefix already consumed).
  const JsonValue record = obs::make_run_record(
      test_report(), test_config(), "2026-08-08T12:00:00Z");
  const std::string good = obs::run_record_line(record);

  const std::string torn_at_3 =
      good + "\n" + good + "\n" + R"({"schema":"hpcos-run-le)" + "\n";
  try {
    (void)obs::parse_run_ledger(torn_at_3, /*strict=*/true);
    FAIL() << "strict parser accepted a torn line";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("run ledger line 3"),
              std::string::npos)
        << e.what();
  }

  // Blank lines are permitted separators and must not shift the count:
  // the damaged line is physically line 4 here.
  const std::string with_blank =
      good + "\n\n" + good + "\n" + R"(not json at all)" + "\n";
  try {
    (void)obs::parse_run_ledger(with_blank, /*strict=*/true);
    FAIL() << "strict parser accepted a non-JSON line";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("run ledger line 4"),
              std::string::npos)
        << e.what();
  }
}

TEST(RunLedger, MissingFileIsEmptyInLenientModeErrorInStrict) {
  EXPECT_THROW(
      (void)obs::read_run_ledger("no_such_ledger.jsonl", /*strict=*/true),
      std::runtime_error);
  const obs::RunLedger ledger =
      obs::read_run_ledger("no_such_ledger.jsonl", /*strict=*/false);
  EXPECT_TRUE(ledger.records.empty());
  EXPECT_EQ(ledger.skipped, 0u);
}

// ------------------------------------------------- harness integration

TEST(RunLedger, MaybeWriteReportAppendsWithInjectedTimestamp) {
  TempFile file("test_runlog_harness.ledger.jsonl");
  obs::BenchOptions opts;
  opts.quick = true;
  opts.sinks.ledger_path = file.path;
  ::setenv("HPCOS_RUN_TIMESTAMP", "2026-08-08T00:00:00Z", 1);
  auto report = test_report();
  obs::maybe_write_report(report, opts);
  auto report2 = test_report();
  obs::maybe_write_report(report2, opts);
  ::unsetenv("HPCOS_RUN_TIMESTAMP");

  const obs::RunLedger ledger =
      obs::read_run_ledger(file.path, /*strict=*/true);
  ASSERT_EQ(ledger.records.size(), 2u);
  const JsonValue& r = ledger.records[0];
  EXPECT_EQ(r.at("target").as_string(), "runlog_bench");
  EXPECT_EQ(r.at("host").at("timestamp").as_string(),
            "2026-08-08T00:00:00Z");
  // No config attached: the bench-identity fallback keys the record.
  EXPECT_EQ(r.at("config").at("schema").as_string(),
            "hpcos-config-bench-identity/1");
  // Two identical runs land in the same group: same hash, same
  // deterministic line.
  EXPECT_EQ(r.at("config_hash").as_string(),
            ledger.records[1].at("config_hash").as_string());
  EXPECT_EQ(obs::deterministic_line(r),
            obs::deterministic_line(ledger.records[1]));
}

}  // namespace
}  // namespace hpcos
