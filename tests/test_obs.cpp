// Observability subsystem: registry snapshots, trace-buffer wraparound,
// Chrome trace_event export, BenchReport schema, and the span-instrumented
// offload path end to end.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "cluster/bsp.h"
#include "cluster/fwq_campaign.h"
#include "cluster/job_launcher.h"
#include "cluster/node.h"
#include "cluster/osenv.h"
#include "noise/profiles.h"
#include "obs/bench_report.h"
#include "obs/live/counters.h"
#include "obs/live/heartbeat.h"
#include "obs/live/live.h"
#include "obs/registry.h"
#include "sim/chrome_trace.h"
#include "sim/trace.h"

namespace hpcos {
namespace {

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, CounterAndHistogramRegistration) {
  obs::Registry reg;
  obs::Counter* c = reg.counter("a.b");
  EXPECT_EQ(reg.counter("a.b"), c);  // find-or-create is stable
  c->add();
  c->add(3);
  EXPECT_EQ(c->value(), 4u);
  EXPECT_EQ(reg.find_counter("a.b")->value(), 4u);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);

  LogHistogram* h = reg.histogram("lat.us", 0.1, 1000.0, 32);
  EXPECT_EQ(reg.histogram("lat.us", 0.5, 2.0, 4), h);  // first layout wins
  h->add(10.0);
  EXPECT_EQ(reg.counter_count(), 1u);
  EXPECT_EQ(reg.histogram_count(), 1u);
}

TEST(ObsRegistry, BumpAndObserveAreNullSafe) {
  obs::bump(nullptr);
  obs::observe(nullptr, 1.0);  // must not crash: the "disabled" hot path
  obs::Registry reg;
  obs::Counter* c = reg.counter("x");
  obs::bump(c, 2);
  EXPECT_EQ(c->value(), 2u);
}

TEST(ObsRegistry, SnapshotDeltaIsolatesWindow) {
  obs::Registry reg;
  obs::Counter* c = reg.counter("events");
  LogHistogram* h = reg.histogram("lat", 1.0, 100.0, 8);
  c->add(5);
  h->add(2.0);
  const auto before = reg.snapshot();
  c->add(7);
  h->add(4.0);
  h->add(8.0);
  const auto after = reg.snapshot();
  const auto delta = obs::Snapshot::delta(after, before);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].name, "events");
  EXPECT_EQ(delta.counters[0].value, 7u);
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].count, 2u);
}

// ------------------------------------------------------ trace wraparound

sim::TraceRecord rec_at(std::int64_t us, sim::TraceCategory cat,
                        const std::string& label) {
  return sim::TraceRecord{.time = SimTime::us(us),
                          .core = 0,
                          .category = cat,
                          .duration = SimTime::us(1),
                          .label = label};
}

TEST(TraceBufferWrap, DroppedCountsEvictedRecords) {
  sim::TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    buf.record(rec_at(i, sim::TraceCategory::kUser, "r"));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total_recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
}

TEST(TraceBufferWrap, SnapshotStaysChronologicalAcrossWrap) {
  sim::TraceBuffer buf(4);
  for (int i = 0; i < 7; ++i) {
    buf.record(rec_at(10 * i, sim::TraceCategory::kUser,
                      std::to_string(i)));
  }
  const auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest retained first: records 3..6.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].label, std::to_string(i + 3));
    if (i > 0) {
      EXPECT_GE(snap[i].time, snap[i - 1].time);
    }
  }
}

TEST(TraceBufferWrap, FilterSeesOnlyRetainedRecords) {
  sim::TraceBuffer buf(6);
  for (int i = 0; i < 12; ++i) {
    buf.record(rec_at(i,
                      i % 2 == 0 ? sim::TraceCategory::kIrq
                                 : sim::TraceCategory::kDaemon,
                      std::to_string(i)));
  }
  // Retained: 6..11, of which 6, 8, 10 are kIrq.
  const auto irqs = buf.filter(sim::TraceCategory::kIrq);
  ASSERT_EQ(irqs.size(), 3u);
  EXPECT_EQ(irqs[0].label, "6");
  EXPECT_EQ(irqs[2].label, "10");
  const auto late = buf.filter(
      [](const sim::TraceRecord& r) { return r.time >= SimTime::us(9); });
  EXPECT_EQ(late.size(), 3u);
}

TEST(TraceBufferWrap, ClearKeepsSpanIdsUnique) {
  sim::TraceBuffer buf(4);
  const auto s1 = buf.new_span();
  buf.record(rec_at(0, sim::TraceCategory::kUser, "a"));
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_NE(buf.new_span(), s1);  // ids never recycle within a buffer
}

// ------------------------------------------------------ chrome trace JSON

std::vector<sim::TraceRecord> span_tree_records() {
  std::vector<sim::TraceRecord> recs;
  sim::TraceRecord root = rec_at(100, sim::TraceCategory::kSyscallOffload,
                                 "offload:stat");
  root.duration = SimTime::us(10);
  root.span = 1;
  recs.push_back(root);
  sim::TraceRecord child = rec_at(102, sim::TraceCategory::kSyscall,
                                  "proxy:execute");
  child.duration = SimTime::us(5);
  child.span = 2;
  child.parent = 1;
  recs.push_back(child);
  sim::TraceRecord marker = rec_at(101, sim::TraceCategory::kIrq, "doorbell");
  marker.duration = SimTime::zero();
  recs.push_back(marker);
  return recs;
}

TEST(ChromeTrace, DocumentHasRequiredKeysAndMonotonicTs) {
  const auto doc = chrome_trace_document(
      span_tree_records(),
      sim::ChromeTraceOptions{.pid = 7, .process_name = "node0"});
  EXPECT_EQ(sim::validate_chrome_trace(doc), "");
  const auto& events = doc.at("traceEvents").as_array();
  // 3 records + 1 process_name metadata event.
  ASSERT_EQ(events.size(), 4u);
  double last_ts = -1.0;
  for (const auto& e : events) {
    ASSERT_TRUE(e.contains("name"));
    ASSERT_TRUE(e.contains("ph"));
    ASSERT_TRUE(e.contains("pid"));
    if (e.at("ph").as_string() == "M") continue;
    ASSERT_TRUE(e.contains("ts"));
    ASSERT_TRUE(e.contains("tid"));
    ASSERT_TRUE(e.contains("cat"));
    EXPECT_GE(e.at("ts").as_number(), last_ts);
    last_ts = e.at("ts").as_number();
  }
}

TEST(ChromeTrace, RoundTripsThroughSerialization) {
  const auto doc = chrome_trace_document(span_tree_records());
  const auto parsed = JsonValue::parse(doc.dump_pretty());
  EXPECT_EQ(sim::validate_chrome_trace(parsed), "");
  // The span/parent linkage must survive the round trip.
  bool found_child = false;
  for (const auto& e : parsed.at("traceEvents").as_array()) {
    const JsonValue* args = e.find("args");
    if (args != nullptr && args->contains("parent")) {
      EXPECT_EQ(args->at("parent").as_number(), 1.0);
      EXPECT_EQ(args->at("span").as_number(), 2.0);
      found_child = true;
    }
  }
  EXPECT_TRUE(found_child);
}

TEST(ChromeTrace, ValidatorRejectsMalformedDocuments) {
  EXPECT_NE(sim::validate_chrome_trace(JsonValue::parse("{}")), "");
  EXPECT_NE(sim::validate_chrome_trace(
                JsonValue::parse(R"({"traceEvents": 3})")),
            "");
  // Non-monotonic ts.
  const auto bad = JsonValue::parse(R"({"traceEvents": [
    {"name":"a","ph":"X","pid":0,"tid":0,"cat":"user","ts":5.0,"dur":1.0},
    {"name":"b","ph":"X","pid":0,"tid":0,"cat":"user","ts":2.0,"dur":1.0}
  ]})");
  EXPECT_NE(sim::validate_chrome_trace(bad), "");
}

TEST(ChromeTrace, ExportWritesLoadableFile) {
  const std::string path = "test_obs_chrome_trace.json";
  sim::export_chrome_trace(span_tree_records(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_EQ(sim::validate_chrome_trace(JsonValue::parse(text.str())), "");
  std::remove(path.c_str());
}

TEST(ChromeTrace, EmptyRecordSetExportsValidEmptyDocument) {
  const auto doc = chrome_trace_document(
      std::vector<sim::TraceRecord>{},
      sim::ChromeTraceOptions{.pid = 3, .process_name = "node3"});
  EXPECT_EQ(sim::validate_chrome_trace(doc), "");
  // No events -> no metadata either: a named process with zero events
  // would render as an empty track in the viewer.
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST(ChromeTrace, EmptyGroupsContributeNoMetadata) {
  std::vector<sim::ChromeTraceGroup> groups(3);
  groups[0].records = span_tree_records();
  groups[0].options.pid = 1;
  groups[0].options.process_name = "node1";
  groups[1].options.pid = 2;  // zero-span group: must vanish entirely
  groups[1].options.process_name = "node2";
  groups[1].options.thread_names = {{0, "rank 0 @ node 2"}};
  // groups[2] stays default-empty.
  const auto doc = chrome_trace_document(groups);
  EXPECT_EQ(sim::validate_chrome_trace(doc), "");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 4u);  // 3 records + node1's process_name only
  std::size_t metadata = 0;
  for (const auto& e : events) {
    EXPECT_EQ(e.at("pid").as_number(), 1.0);
    if (e.at("ph").as_string() == "M") ++metadata;
  }
  EXPECT_EQ(metadata, 1u);
}

TEST(ChromeTrace, AllEmptyGroupsYieldValidEmptyDocument) {
  std::vector<sim::ChromeTraceGroup> groups(2);
  groups[0].options.process_name = "ghost";
  const auto doc = chrome_trace_document(groups);
  EXPECT_EQ(sim::validate_chrome_trace(doc), "");
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

// --------------------------------------------------------- bench report

TEST(BenchReport, RoundTripValidates) {
  obs::BenchReport report("test_bench", /*quick=*/true, /*seed=*/99);
  report.add_metric("alpha.p50_ms", "ms", 1.5);
  report.add_metric(obs::BenchMetric{.name = "beta.rate",
                                     .unit = "ratio",
                                     .value = 0.25,
                                     .percentiles = {{"p50", 0.2},
                                                     {"p99", 0.9}}});
  const std::string path = "test_obs_bench_report.json";
  report.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const auto doc = JsonValue::parse(text.str());
  EXPECT_EQ(obs::validate_bench_report(doc), "");
  EXPECT_EQ(doc.at("bench").as_string(), "test_bench");
  EXPECT_TRUE(doc.at("quick").as_bool());
  EXPECT_EQ(doc.at("seed").as_number(), 99.0);
  EXPECT_EQ(doc.at("metrics").as_array().size(), 2u);
  std::remove(path.c_str());
}

TEST(BenchReport, ValidatorRejectsNaNAndSchemaViolations) {
  obs::BenchReport nan_report("nan_bench", false);
  nan_report.add_metric("bad", "us", std::nan(""));
  // Direct document: the value is a non-finite number.
  EXPECT_NE(obs::validate_bench_report(nan_report.to_json()), "");
  // Serialization refuses non-finite numbers outright with a clear error
  // (json_format_number) — they can no longer silently become null.
  EXPECT_THROW((void)nan_report.to_json().dump(), std::runtime_error);

  obs::BenchReport empty("empty_bench", false);
  EXPECT_NE(obs::validate_bench_report(empty.to_json()), "");
  EXPECT_NE(obs::validate_bench_report(JsonValue::parse("{}")), "");
}

TEST(BenchReport, ParseBenchOptionsExtractsFlags) {
  const char* argv_in[] = {"bench", "--quick", "--json", "out.json",
                           "--benchmark_filter=x"};
  auto** argv = const_cast<char**>(argv_in);
  const auto opts = obs::parse_bench_options(5, argv);
  EXPECT_TRUE(opts.quick);
  EXPECT_EQ(opts.sinks.json_path, "out.json");
  EXPECT_FALSE(opts.sinks.progress);
  EXPECT_EQ(opts.sinks.watchdog_stall_s, 0.0);
  ASSERT_EQ(opts.remaining.size(), 2u);
  EXPECT_STREQ(opts.remaining[0], "bench");
  EXPECT_STREQ(opts.remaining[1], "--benchmark_filter=x");
}

TEST(BenchReport, ParseBenchOptionsArmsProgressAndWatchdogSinks) {
  // --progress=<ms> plus an explicit stream path: the meter starts at
  // parse time; draining it through maybe_write_report folds the
  // host.progress.* aggregates into the report and emits a valid
  // heartbeat stream (at least the "final" record, even for a run
  // shorter than one interval).
  TempFile stream("test_obs_progress.heartbeat.jsonl");
  const char* argv_in[] = {"bench_progress_test", "--progress=250",
                           "--progress-file", stream.path.c_str(),
                           "--watchdog=45.5"};
  auto** argv = const_cast<char**>(argv_in);
  auto opts = obs::parse_bench_options(5, argv);
  EXPECT_TRUE(opts.sinks.progress);
  EXPECT_EQ(opts.sinks.progress_interval_ms, 250);
  EXPECT_EQ(opts.sinks.heartbeat_path, stream.path);
  EXPECT_EQ(opts.sinks.watchdog_stall_s, 45.5);
  EXPECT_FALSE(opts.sinks.watchdog_abort);
  ASSERT_EQ(opts.remaining.size(), 1u);
  EXPECT_TRUE(obs::live::global_meter_active());
  obs::live::add_events(1234);

  obs::BenchReport report("progress_bench", true);
  report.add_metric("x", "count", 1.0);
  opts.sinks.progress = false;  // stderr quiet; meter still stops/drains
  obs::maybe_write_report(report, opts);
  EXPECT_FALSE(obs::live::global_meter_active());

  auto find = [&](const std::string& name) -> const obs::BenchMetric* {
    for (const auto& m : report.metrics()) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };
  const obs::BenchMetric* events = find("host.progress.events.total");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value, 1234.0);
  EXPECT_NE(find("host.progress.events_per_sec.mean"), nullptr);
  EXPECT_NE(find("host.progress.events_per_sec.max"), nullptr);
  const obs::BenchMetric* stalls = find("host.watchdog.stalls.count");
  ASSERT_NE(stalls, nullptr);
  EXPECT_EQ(stalls->value, 0.0);

  const obs::live::HeartbeatLog log =
      obs::live::read_heartbeat_log(stream.path, /*strict=*/true);
  ASSERT_GE(log.records.size(), 1u);
  const JsonValue& last = log.records.back();
  EXPECT_EQ(last.at("kind").as_string(), "final");
  EXPECT_EQ(last.at("target").as_string(), "bench_progress_test");
  EXPECT_EQ(last.at("events").as_number(), 1234.0);
}

// -------------------------------------- span-instrumented offload path

TEST(OffloadSpans, OneOffloadedSyscallExportsAsParentLinkedTree) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto lcfg = linuxk::make_fugaku_linux_config(platform);
  lcfg.profile = noise::AnalyticNoiseProfile{};
  auto mcfg = mck::McKernelConfig::defaults();
  mcfg.hw_noise = noise::AnalyticNoiseProfile{};
  cluster::SimNodeOptions options;
  options.seed = Seed{5};
  options.observability = true;
  options.trace_capacity = 1024;
  auto node = cluster::SimNode::make_multikernel_node(
      platform, std::move(lcfg), std::move(mcfg), options);

  struct OneStat final : os::ThreadBody {
    bool done = false;
    void step(os::ThreadContext& ctx) override {
      if (done) {
        ctx.exit();
        return;
      }
      done = true;
      ctx.invoke(os::Syscall::kStat, {});
    }
  };
  node->lwk()->spawn(std::make_unique<OneStat>(),
                     os::SpawnAttrs{.name = "one-stat"});
  node->simulator().run_until(SimTime::ms(100));

  // Counters saw exactly one delegation.
  EXPECT_EQ(node->registry().find_counter("offload.requests")->value(), 1u);
  EXPECT_EQ(node->registry().find_counter("offload.replies")->value(), 1u);
  EXPECT_EQ(
      node->registry().find_counter("lwk.syscalls.offloaded")->value(), 1u);

  // The trace holds one root span with >= 2 children (>= 3 spans total),
  // every child linked to the root.
  const auto spanned = node->trace().filter(
      [](const sim::TraceRecord& r) { return r.span != 0; });
  std::uint64_t root_span = 0;
  std::size_t children = 0;
  for (const auto& r : spanned) {
    if (r.parent == 0) {
      EXPECT_EQ(root_span, 0u) << "exactly one root span expected";
      EXPECT_EQ(r.category, sim::TraceCategory::kSyscallOffload);
      EXPECT_EQ(r.label, "offload:stat");
      root_span = r.span;
    }
  }
  ASSERT_NE(root_span, 0u);
  for (const auto& r : spanned) {
    if (r.parent != 0) {
      EXPECT_EQ(r.parent, root_span);
      ++children;
    }
  }
  EXPECT_GE(children, 2u);
  EXPECT_GE(spanned.size(), 3u);

  // The whole tree exports as a valid Chrome trace document whose child
  // events reference the root span id in args.
  const auto doc = chrome_trace_document(spanned);
  EXPECT_EQ(sim::validate_chrome_trace(doc), "");
  std::size_t linked = 0;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    const JsonValue* args = e.find("args");
    if (args != nullptr && args->contains("parent") &&
        args->at("parent").as_number() ==
            static_cast<double>(root_span)) {
      ++linked;
    }
  }
  EXPECT_EQ(linked, children);

  // The latency-split histograms cover the same delegation.
  const auto snap = node->registry().snapshot();
  bool saw_rtt = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "offload.rtt_us") {
      saw_rtt = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_GT(h.max, 0.0);
    }
  }
  EXPECT_TRUE(saw_rtt);
}

TEST(OffloadSpans, DisabledObservabilityRegistersNothing) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto node = cluster::SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      mck::McKernelConfig::defaults(), cluster::SimNodeOptions{.seed = Seed{5}});
  node->simulator().run_until(SimTime::ms(5));
  EXPECT_EQ(node->registry().counter_count(), 0u);
  EXPECT_EQ(node->registry().histogram_count(), 0u);
}

// ----------------------------------------- page-fault / BSP phase spans

// Every non-zero parent id must reference a span id present in the set —
// the tree reconstructs without dangling edges.
void expect_parent_links_resolve(const std::vector<sim::TraceRecord>& recs) {
  std::set<std::uint64_t> ids;
  for (const auto& r : recs) {
    if (r.span != 0) ids.insert(r.span);
  }
  for (const auto& r : recs) {
    if (r.parent != 0) {
      EXPECT_TRUE(ids.count(r.parent)) << "dangling parent on " << r.label;
    }
  }
}

// Prepopulated large-page mmap followed by munmap: bulk fault-in spans on
// the way in, a TLB-shootdown subtree under the unmap root on the way out.
struct MmapUnmap final : os::ThreadBody {
  int stage = 0;
  std::uint64_t addr = 0;
  void step(os::ThreadContext& ctx) override {
    switch (stage++) {
      case 0:
        ctx.invoke(os::Syscall::kMmap,
                   os::SyscallArgs{.arg0 = 32ull << 20, .arg1 = 1});
        return;
      case 1:
        addr = static_cast<std::uint64_t>(ctx.last_syscall().value);
        ctx.invoke(os::Syscall::kMunmap,
                   os::SyscallArgs{.arg0 = addr, .arg1 = 32ull << 20});
        return;
      default:
        ctx.exit();
    }
  }
};

template <typename MakeNode>
std::vector<sim::TraceRecord> fault_span_campaign(MakeNode make_node) {
  const auto platform = hw::make_fugaku_testbed_platform();
  cluster::SimNodeOptions options;
  options.seed = Seed{11};
  options.observability = true;
  options.trace_capacity = 4096;
  auto node = make_node(platform, options);
  cluster::JobLauncher launcher(*node);
  const auto job = launcher.launch(cluster::LaunchSpec{.ranks = 1});
  launcher.spawn_rank_thread(job, 0, std::make_unique<MmapUnmap>(),
                             "mmap-unmap");
  node->simulator().run_until(SimTime::ms(50));
  return node->trace().snapshot();
}

TEST(FaultSpans, LinuxFaultAndShootdownTreesAreParentLinked) {
  const auto recs = fault_span_campaign([](const auto& platform,
                                           const auto& options) {
    return cluster::SimNode::make_linux_node(
        platform, linuxk::make_fugaku_linux_config(platform), options);
  });
  expect_parent_links_resolve(recs);

  // A bulk fault root with its populate child.
  std::uint64_t fault_root = 0;
  for (const auto& r : recs) {
    if (r.parent == 0 && r.span != 0 && r.label.rfind("fault:", 0) == 0) {
      EXPECT_EQ(r.category, sim::TraceCategory::kPageFault);
      EXPECT_GT(r.duration, SimTime::zero());
      fault_root = r.span;
      break;
    }
  }
  ASSERT_NE(fault_root, 0u);
  bool populate_child = false;
  for (const auto& r : recs) {
    if (r.parent == fault_root && r.label == "fault:populate") {
      populate_child = true;
    }
  }
  EXPECT_TRUE(populate_child);

  // The unmap root owns both the page teardown and the TLB shootdown, and
  // the shootdown has its own child breakdown.
  std::uint64_t unmap_root = 0;
  for (const auto& r : recs) {
    if (r.parent == 0 && r.label == "unmap:munmap") unmap_root = r.span;
  }
  ASSERT_NE(unmap_root, 0u);
  std::uint64_t shootdown = 0;
  bool pages_child = false;
  for (const auto& r : recs) {
    if (r.parent != unmap_root) continue;
    if (r.label == "tlb:shootdown") {
      EXPECT_EQ(r.category, sim::TraceCategory::kTlbShootdown);
      shootdown = r.span;
    }
    if (r.label == "unmap:pages") pages_child = true;
  }
  ASSERT_NE(shootdown, 0u);
  EXPECT_TRUE(pages_child);
  std::size_t shootdown_children = 0;
  for (const auto& r : recs) {
    if (r.parent == shootdown) ++shootdown_children;
  }
  EXPECT_GE(shootdown_children, 1u);

  const auto doc = chrome_trace_document(recs);
  EXPECT_EQ(sim::validate_chrome_trace(doc), "");
}

TEST(FaultSpans, McKernelFaultTreesAreParentLinked) {
  const auto recs = fault_span_campaign([](const auto& platform,
                                           const auto& options) {
    return cluster::SimNode::make_multikernel_node(
        platform, linuxk::make_fugaku_linux_config(platform),
        mck::McKernelConfig::defaults(), options);
  });
  expect_parent_links_resolve(recs);
  std::uint64_t fault_root = 0;
  for (const auto& r : recs) {
    if (r.parent == 0 && r.span != 0 && r.label.rfind("fault:", 0) == 0 &&
        r.duration > SimTime::zero()) {
      EXPECT_EQ(r.category, sim::TraceCategory::kPageFault);
      fault_root = r.span;
      break;
    }
  }
  ASSERT_NE(fault_root, 0u);
  bool populate_child = false;
  for (const auto& r : recs) {
    if (r.parent == fault_root && r.label == "fault:populate") {
      populate_child = true;
    }
  }
  EXPECT_TRUE(populate_child);
  const auto doc = chrome_trace_document(recs);
  EXPECT_EQ(sim::validate_chrome_trace(doc), "");
}

TEST(BspSpans, PhaseTreesSumExactlyAndExportWithRankTracks) {
  class TinySolver final : public cluster::Workload {
   public:
    std::string name() const override { return "tiny-solver"; }
    int iterations() const override { return 3; }
    cluster::RankWork rank_work(
        int, const cluster::JobConfig&,
        const cluster::OsEnvironment&) const override {
      cluster::RankWork w;
      w.compute = SimTime::ms(2);
      w.touch_bytes = 4ull << 20;
      w.alloc_churn_bytes = 8ull << 20;
      w.allreduces = 1;
      w.allreduce_bytes = 4096;
      w.halo_neighbors = 6;
      w.halo_bytes = 64ull << 10;
      w.barriers = 1;
      w.thread_barriers = 2;
      w.imbalance_sigma = 0.05;
      return w;
    }
    cluster::InitWork init_work(
        const cluster::JobConfig&,
        const cluster::OsEnvironment&) const override {
      cluster::InitWork init;
      init.serial_setup = SimTime::ms(5);
      init.touch_bytes = 16ull << 20;
      init.rdma_registrations = 2;
      init.rdma_bytes_each = 8ull << 20;
      return init;
    }
  };

  const auto env = cluster::make_fugaku_linux_env();
  const cluster::JobConfig job{.nodes = 16, .ranks_per_node = 4,
                               .threads_per_rank = 12};
  TinySolver w;
  sim::TraceBuffer buf(1 << 14);
  cluster::BspEngine traced_engine(env, job, Seed{3});
  traced_engine.set_trace(&buf, /*track=*/5);
  const auto traced = traced_engine.run(w);

  // Tracing must not perturb the simulated result (same RNG draw order).
  cluster::BspEngine plain_engine(env, job, Seed{3});
  const auto plain = plain_engine.run(w);
  EXPECT_EQ(traced.total, plain.total);
  EXPECT_EQ(traced.init_time, plain.init_time);

  const auto recs = buf.snapshot();
  expect_parent_links_resolve(recs);
  for (const auto& r : recs) EXPECT_EQ(r.core, 5);

  // One init root plus one root per iteration; each root's direct
  // children sum exactly to the root duration (the phases are the full
  // time composition, laid back to back on the virtual timeline).
  std::size_t roots = 0;
  for (const auto& r : recs) {
    if (r.parent != 0) continue;
    ++roots;
    EXPECT_EQ(r.category, sim::TraceCategory::kCollective);
    EXPECT_TRUE(r.label == "bsp:init" || r.label == "bsp:iteration");
    SimTime child_sum;
    for (const auto& c : recs) {
      if (c.parent == r.span) child_sum += c.duration;
    }
    EXPECT_EQ(child_sum, r.duration) << r.label;
    if (r.label == "bsp:iteration") {
      // The allreduce child splits into reduce-scatter + allgather
      // grandchildren that sum exactly to it.
      for (const auto& c : recs) {
        if (c.parent != r.span || c.label != "bsp:allreduce") continue;
        SimTime split_sum;
        std::size_t parts = 0;
        for (const auto& g : recs) {
          if (g.parent == c.span) {
            ++parts;
            split_sum += g.duration;
          }
        }
        EXPECT_EQ(parts, 2u);
        EXPECT_EQ(split_sum, c.duration);
      }
    }
  }
  EXPECT_EQ(roots, 1u + static_cast<std::size_t>(w.iterations()));

  // The rank track exports with its thread_name metadata and validates.
  const auto doc = chrome_trace_document(
      recs, sim::ChromeTraceOptions{
                .pid = 3,
                .process_name = "bsp-cluster",
                .thread_names = {{5, "rank 0 @ node 0"}}});
  EXPECT_EQ(sim::validate_chrome_trace(doc), "");
  bool saw_thread_name = false;
  for (const auto& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name") {
      EXPECT_EQ(e.at("args").at("name").as_string(), "rank 0 @ node 0");
      EXPECT_EQ(e.at("tid").as_number(), 5.0);
      saw_thread_name = true;
    }
  }
  EXPECT_TRUE(saw_thread_name);
}

TEST(TraceBufferWrap, MixedSpanTreesSurviveWraparound) {
  // Four 3-record span trees (root + 2 children) of different categories
  // into an 8-slot ring: the oldest tree and the second tree's root are
  // evicted. The snapshot must stay chronological, the surviving trees
  // fully linked, and orphaned children must keep their parent ids (the
  // exporter ships them as plain events; analysis sees the truncation via
  // dropped()).
  sim::TraceBuffer buf(8);
  const sim::TraceCategory cats[] = {sim::TraceCategory::kPageFault,
                                     sim::TraceCategory::kCollective,
                                     sim::TraceCategory::kSyscallOffload,
                                     sim::TraceCategory::kTlbShootdown};
  std::vector<std::uint64_t> tree_roots;
  for (int k = 0; k < 4; ++k) {
    const std::uint64_t root = buf.new_span();
    tree_roots.push_back(root);
    sim::TraceRecord rec = rec_at(100 * k, cats[k], "root" + std::to_string(k));
    rec.span = root;
    buf.record(rec);
    for (int c = 0; c < 2; ++c) {
      sim::TraceRecord child =
          rec_at(100 * k + c + 1, cats[k],
                 "child" + std::to_string(k) + std::to_string(c));
      child.span = buf.new_span();
      child.parent = root;
      buf.record(child);
    }
  }
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.dropped(), 4u);

  const auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i].time, snap[i - 1].time);
  }
  // Trees 2 and 3 survive intact: root present, both children linked.
  for (int k = 2; k < 4; ++k) {
    std::size_t kids = 0;
    bool root_present = false;
    for (const auto& r : snap) {
      if (r.span == tree_roots[static_cast<std::size_t>(k)]) {
        root_present = true;
      }
      if (r.parent == tree_roots[static_cast<std::size_t>(k)]) ++kids;
    }
    EXPECT_TRUE(root_present);
    EXPECT_EQ(kids, 2u);
  }
  // Tree 1's root was evicted but its children survive as orphans with
  // their original parent id intact.
  std::size_t orphans = 0;
  for (const auto& r : snap) {
    EXPECT_NE(r.span, tree_roots[1]);
    if (r.parent == tree_roots[1]) ++orphans;
  }
  EXPECT_EQ(orphans, 2u);
  // The truncated mix still exports as a valid document.
  EXPECT_EQ(sim::validate_chrome_trace(chrome_trace_document(snap)), "");
}

// ------------------------------------------------- campaign top-K heaps

cluster::FwqCampaignConfig small_campaign() {
  cluster::FwqCampaignConfig cfg;
  cfg.nodes = 96;
  cfg.app_cores = 4;
  cfg.duration_per_core = SimTime::sec(60);
  cfg.nodes_per_shard = 16;
  cfg.max_materialized_hits = 256;
  cfg.seed = Seed{77};
  return cfg;
}

TEST(FwqTopK, BoundedHeapsMatchUnboundedSelection) {
  const auto profile = noise::ofp_linux_profile();
  auto bounded = small_campaign();
  bounded.worst_nodes_to_keep = 8;  // per-shard K derives from this
  const auto b = run_fwq_campaign(profile, bounded);

  auto unbounded = small_campaign();
  unbounded.worst_nodes_to_keep = 8;
  unbounded.worst_heap_capacity = 96;  // every node retained per shard
  const auto u = run_fwq_campaign(profile, unbounded);

  ASSERT_EQ(b.worst_node_max_us.size(), 8u);
  EXPECT_EQ(b.worst_node_max_us, u.worst_node_max_us);
  EXPECT_TRUE(std::is_sorted(b.worst_node_max_us.rbegin(),
                             b.worst_node_max_us.rend()));
}

TEST(FwqTopK, WorstListInvariantAcrossShardGeometry) {
  const auto profile = noise::ofp_linux_profile();
  auto wide = small_campaign();
  wide.worst_nodes_to_keep = 10;
  wide.nodes_per_shard = 96;  // single shard
  auto narrow = small_campaign();
  narrow.worst_nodes_to_keep = 10;
  narrow.nodes_per_shard = 8;  // twelve shards
  const auto a = run_fwq_campaign(profile, wide);
  const auto b = run_fwq_campaign(profile, narrow);
  EXPECT_EQ(a.worst_node_max_us, b.worst_node_max_us);
}

TEST(FwqTopK, RegistryFoldsPushAndEvictionCounts) {
  const auto profile = noise::ofp_linux_profile();
  obs::Registry reg;
  auto cfg = small_campaign();
  cfg.worst_nodes_to_keep = 4;
  cfg.registry = &reg;
  const auto r = run_fwq_campaign(profile, cfg);
  EXPECT_EQ(reg.find_counter("fwq.campaign.nodes")->value(), 96u);
  EXPECT_EQ(reg.find_counter("fwq.campaign.iterations")->value(),
            r.total_iterations);
  // Every node pushes once; with K=4 per 16-node shard there must be
  // evictions.
  EXPECT_EQ(reg.find_counter("fwq.topk.pushes")->value(), 96u);
  EXPECT_EQ(reg.find_counter("fwq.topk.evictions")->value(), 96u - 6u * 4u);
}

TEST(FwqTopK, SmallExplicitCapacityBoundsCandidates) {
  const auto profile = noise::ofp_linux_profile();
  auto cfg = small_campaign();
  cfg.worst_nodes_to_keep = 50;
  cfg.worst_heap_capacity = 2;  // 6 shards x 2 = 12 candidates max
  const auto r = run_fwq_campaign(profile, cfg);
  EXPECT_EQ(r.worst_node_max_us.size(), 12u);
}

}  // namespace
}  // namespace hpcos
