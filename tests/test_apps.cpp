// Unit + integration tests: application models and the headline figure
// shapes. The *Shape tests lock the paper's qualitative results in as
// regression tests: who wins, roughly by how much, and how gaps move with
// scale.
#include <gtest/gtest.h>

#include "common/check.h"

#include "apps/amg.h"
#include "apps/gamera.h"
#include "apps/geofem.h"
#include "apps/lqcd.h"
#include "apps/lulesh.h"
#include "apps/milc.h"
#include "apps/registry.h"
#include "cluster/bsp.h"

namespace hpcos::apps {
namespace {

using cluster::JobConfig;
using cluster::OsEnvironment;

double relative(const std::string& workload, PlatformKind platform,
                const OsEnvironment& lin, const OsEnvironment& mck,
                std::int64_t nodes, int trials = 3) {
  const auto w = make_workload(workload, platform);
  const auto job = job_geometry(workload, platform, nodes);
  return cluster::relative_performance(*w, lin, mck, job, trials, Seed{404})
      .mean_ratio;
}

// ---- registry ----

TEST(Registry, WorkloadsPerPlatform) {
  EXPECT_EQ(workloads_for(PlatformKind::kOfp).size(), 6u);
  // No A64FX builds of the CORAL apps exist (§6.2).
  const auto fugaku = workloads_for(PlatformKind::kFugaku);
  EXPECT_EQ(fugaku.size(), 3u);
  for (const auto& name : fugaku) {
    EXPECT_TRUE(name == "LQCD" || name == "GeoFEM" || name == "GAMERA");
  }
  EXPECT_THROW(make_workload("HPL", PlatformKind::kOfp), SimError);
}

TEST(Registry, JobGeometriesMatchArtifactDescription) {
  // OFP: LQCD 4x32, GeoFEM 16x8, GAMERA 8x8; Fugaku: always 4x12.
  const auto lqcd = job_geometry("LQCD", PlatformKind::kOfp, 100);
  EXPECT_EQ(lqcd.ranks_per_node, 4);
  EXPECT_EQ(lqcd.threads_per_rank, 32);
  const auto geofem = job_geometry("GeoFEM", PlatformKind::kOfp, 100);
  EXPECT_EQ(geofem.ranks_per_node, 16);
  EXPECT_EQ(geofem.threads_per_rank, 8);
  const auto gamera = job_geometry("GAMERA", PlatformKind::kOfp, 100);
  EXPECT_EQ(gamera.ranks_per_node, 8);
  EXPECT_EQ(gamera.threads_per_rank, 8);
  for (const char* name : {"LQCD", "GeoFEM", "GAMERA"}) {
    const auto job = job_geometry(name, PlatformKind::kFugaku, 100);
    EXPECT_EQ(job.ranks_per_node, 4);
    EXPECT_EQ(job.threads_per_rank, 12);
  }
  // CORAL apps use the 256 designated application CPUs.
  const auto amg = job_geometry("AMG2013", PlatformKind::kOfp, 100);
  EXPECT_EQ(amg.ranks_per_node * amg.threads_per_rank, 256);
}

TEST(Registry, LqcdVersionsDifferByPlatform) {
  // The SVE-optimized QWS runs from cache; the x86 build is memory bound.
  const auto ofp = make_workload("LQCD", PlatformKind::kOfp);
  const auto fug = make_workload("LQCD", PlatformKind::kFugaku);
  const auto job_o = job_geometry("LQCD", PlatformKind::kOfp, 4);
  const auto job_f = job_geometry("LQCD", PlatformKind::kFugaku, 4);
  const auto env_o = cluster::make_ofp_linux_env();
  const auto env_f = cluster::make_fugaku_linux_env();
  EXPECT_GT(ofp->rank_work(0, job_o, env_o).mem_bound_fraction,
            fug->rank_work(0, job_f, env_f).mem_bound_fraction);
}

// ---- per-model invariants ----

TEST(Models, RankWorkBasicInvariants) {
  const auto env = cluster::make_fugaku_linux_env();
  const JobConfig job{.nodes = 16, .ranks_per_node = 4,
                      .threads_per_rank = 12};
  for (const char* name : {"LQCD", "GeoFEM", "GAMERA"}) {
    const auto w = make_workload(name, PlatformKind::kFugaku);
    ASSERT_GT(w->iterations(), 0) << name;
    const auto rw = w->rank_work(0, job, env);
    EXPECT_GT(rw.compute, SimTime::zero()) << name;
    EXPECT_GT(rw.working_set_bytes, 0u) << name;
    EXPECT_GE(rw.mem_bound_fraction, 0.0) << name;
    EXPECT_LE(rw.mem_bound_fraction, 1.0) << name;
    // First iteration first-touches the working set; later ones don't.
    EXPECT_GT(rw.touch_bytes, 0u) << name;
    EXPECT_EQ(w->rank_work(1, job, env).touch_bytes, 0u) << name;
  }
}

TEST(Models, LuleshChurnFollowsHeapBehavior) {
  const Lulesh lulesh;
  const JobConfig job{.nodes = 16, .ranks_per_node = 16,
                      .threads_per_rank = 16};
  const auto lin = lulesh.rank_work(1, job, cluster::make_ofp_linux_env());
  const auto mck =
      lulesh.rank_work(1, job, cluster::make_ofp_mckernel_env());
  // Release-to-OS heap churns the full temporary volume; caching
  // allocators only touch arena bookkeeping.
  EXPECT_GT(lin.alloc_churn_bytes, mck.alloc_churn_bytes * 32);
}

TEST(Models, AmgVCycleSumsLevels) {
  AmgParams p;
  p.levels = 1;
  const Amg2013 one_level(p);
  p.levels = 8;
  const Amg2013 eight_levels(p);
  const JobConfig job{.nodes = 4, .ranks_per_node = 16,
                      .threads_per_rank = 16};
  const auto env = cluster::make_ofp_linux_env();
  const auto w1 = one_level.rank_work(0, job, env);
  const auto w8 = eight_levels.rank_work(0, job, env);
  // Geometric level sum: < 2x the fine level work, one allreduce/level.
  EXPECT_GT(w8.compute, w1.compute);
  EXPECT_LT(w8.compute, w1.compute.scaled(2.0));
  EXPECT_EQ(w8.allreduces, 8);
}

TEST(Models, GameraRegistrationsGrowWithRanks) {
  const Gamera g;
  const auto env = cluster::make_fugaku_linux_env();
  const auto small = g.init_work(
      JobConfig{.nodes = 128, .ranks_per_node = 4, .threads_per_rank = 12},
      env);
  const auto large = g.init_work(
      JobConfig{.nodes = 8192, .ranks_per_node = 4, .threads_per_rank = 12},
      env);
  EXPECT_GT(large.rdma_registrations, small.rdma_registrations * 3);
  EXPECT_GT(small.rdma_registrations, 0);
}

// ---- headline shapes (regression-locked paper results) ----

TEST(FigureShape, OfpMcKernelWinsEverywhere) {
  const auto lin = cluster::make_ofp_linux_env();
  const auto mck = cluster::make_ofp_mckernel_env();
  for (const auto& name : workloads_for(PlatformKind::kOfp)) {
    const double r = relative(name, PlatformKind::kOfp, lin, mck, 256, 2);
    EXPECT_GT(r, 1.0) << name;
  }
}

TEST(FigureShape, OfpGainsGrowWithScale) {
  const auto lin = cluster::make_ofp_linux_env();
  const auto mck = cluster::make_ofp_mckernel_env();
  for (const char* name : {"AMG2013", "Milc", "Lulesh"}) {
    const double small = relative(name, PlatformKind::kOfp, lin, mck, 64, 2);
    const double large =
        relative(name, PlatformKind::kOfp, lin, mck, 8192, 2);
    EXPECT_GT(large, small) << name;
  }
}

TEST(FigureShape, LuleshIsTheBiggestOfpWinner) {
  const auto lin = cluster::make_ofp_linux_env();
  const auto mck = cluster::make_ofp_mckernel_env();
  const double lulesh =
      relative("Lulesh", PlatformKind::kOfp, lin, mck, 4096, 2);
  const double amg =
      relative("AMG2013", PlatformKind::kOfp, lin, mck, 4096, 2);
  const double milc = relative("Milc", PlatformKind::kOfp, lin, mck, 4096, 2);
  EXPECT_GT(lulesh, amg);
  EXPECT_GT(lulesh, milc);
  EXPECT_GT(lulesh, 1.5);  // "almost 2X" territory
}

TEST(FigureShape, FugakuLqcdNearIdentical) {
  const double r = relative("LQCD", PlatformKind::kFugaku,
                            cluster::make_fugaku_linux_env(),
                            cluster::make_fugaku_mckernel_env(), 2048, 2);
  EXPECT_NEAR(r, 1.0, 0.03);
}

TEST(FigureShape, FugakuGeoFemSmallConstantGain) {
  const auto lin = cluster::make_fugaku_linux_env();
  const auto mck = cluster::make_fugaku_mckernel_env();
  const double small = relative("GeoFEM", PlatformKind::kFugaku, lin, mck,
                                128, 2);
  const double large = relative("GeoFEM", PlatformKind::kFugaku, lin, mck,
                                8192, 2);
  EXPECT_NEAR(small, 1.03, 0.02);
  EXPECT_NEAR(large, 1.03, 0.02);
}

TEST(FigureShape, FugakuGameraGainGrowsTo29Percent) {
  const auto lin = cluster::make_fugaku_linux_env();
  const auto mck = cluster::make_fugaku_mckernel_env();
  const double small =
      relative("GAMERA", PlatformKind::kFugaku, lin, mck, 128, 2);
  const double large =
      relative("GAMERA", PlatformKind::kFugaku, lin, mck, 8192, 2);
  EXPECT_GT(large, small);
  EXPECT_NEAR(large, 1.29, 0.06);
}

TEST(FigureShape, PicoDriverIsTheGameraMechanism) {
  // Disabling the PicoDriver (registration still offloaded) erases most of
  // McKernel's GAMERA advantage — the paper's attribution (§6.4).
  const auto lin = cluster::make_fugaku_linux_env();
  const double with_pico =
      relative("GAMERA", PlatformKind::kFugaku, lin,
               cluster::make_fugaku_mckernel_env(true), 2048, 2);
  const double without_pico =
      relative("GAMERA", PlatformKind::kFugaku, lin,
               cluster::make_fugaku_mckernel_env(false), 2048, 2);
  EXPECT_GT(with_pico, without_pico);
}

TEST(FigureShape, TunedLinuxClosesTheGap) {
  // The paper's core finding: the same workload shows a much smaller LWK
  // advantage on the highly tuned Fugaku Linux than on the moderately
  // tuned OFP Linux.
  const double ofp_gap =
      relative("GeoFEM", PlatformKind::kOfp, cluster::make_ofp_linux_env(),
               cluster::make_ofp_mckernel_env(), 2048, 2) -
      1.0;
  const double fugaku_gap =
      relative("GeoFEM", PlatformKind::kFugaku,
               cluster::make_fugaku_linux_env(),
               cluster::make_fugaku_mckernel_env(), 2048, 2) -
      1.0;
  EXPECT_GT(ofp_gap, fugaku_gap);
}

}  // namespace
}  // namespace hpcos::apps
