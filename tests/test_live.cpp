// obs/live: heartbeat schema, ProgressMeter + stall watchdog, sampled
// span tracer.
//
// The watchdog test injects a real stall (counters frozen while the
// meter runs) and asserts on the diagnostic snapshot's content; the
// sampler tests pin the exactness contract (rate=1 keeps everything) and
// the bounded-memory contract (a 10x-longer synthetic run keeps the same
// reservoir-capped raw side while the sketch side stays exact).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_time.h"
#include "obs/live/counters.h"
#include "obs/live/heartbeat.h"
#include "obs/live/live.h"
#include "obs/live/span_sampler.h"
#include "sim/trace.h"

namespace hpcos::obs::live {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

Heartbeat sample_heartbeat() {
  Heartbeat hb;
  hb.target = "bench_test";
  hb.kind = "tick";
  hb.seq = 3;
  hb.t_ms = 3001.25;
  hb.events = 123456;
  hb.events_per_sec = 41152.5;
  hb.sim_time_us = 3.6e9;
  hb.units_done = 42;
  hb.units_total = 160;
  hb.eta_s = 34.2;
  hb.des_depth = 12;
  hb.des_max_depth = 96;
  hb.sched_chunks = 880;
  hb.sched_steals = 41;
  hb.sched_parks = 7;
  hb.sched_max_depth = 3;
  hb.rss_bytes = 221249536;
  hb.peak_rss_bytes = 234881024;
  hb.stalls = 1;
  return hb;
}

// ---- heartbeat schema ---------------------------------------------------

TEST(Heartbeat, JsonRoundTripValidatesAndPreservesFields) {
  const Heartbeat hb = sample_heartbeat();
  const JsonValue record = heartbeat_to_json(hb);
  EXPECT_EQ(validate_heartbeat_record(record), "");
  EXPECT_EQ(record.at("schema").as_string(), kHeartbeatSchema);
  EXPECT_EQ(record.at("target").as_string(), "bench_test");
  EXPECT_EQ(record.at("kind").as_string(), "tick");
  EXPECT_EQ(record.at("seq").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(record.at("t_ms").as_number(), 3001.25);
  EXPECT_EQ(record.at("events").as_number(), 123456.0);
  EXPECT_EQ(record.at("des").at("depth").as_number(), 12.0);
  EXPECT_EQ(record.at("des").at("max_depth").as_number(), 96.0);
  EXPECT_EQ(record.at("sched").at("steals").as_number(), 41.0);
  EXPECT_EQ(record.at("stalls").as_number(), 1.0);

  // The stream line parses back to the same record.
  const std::string line = heartbeat_line(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const JsonValue reparsed = JsonValue::parse(line);
  EXPECT_EQ(validate_heartbeat_record(reparsed), "");
  EXPECT_EQ(reparsed.at("events").as_number(), 123456.0);
}

TEST(Heartbeat, ValidationRejectsSchemaKindAndFieldViolations) {
  const JsonValue good = heartbeat_to_json(sample_heartbeat());

  JsonValue bad_schema = good;
  bad_schema.set("schema", JsonValue("hpcos-run/1"));
  EXPECT_NE(validate_heartbeat_record(bad_schema), "");

  JsonValue bad_kind = good;
  bad_kind.set("kind", JsonValue("pulse"));
  EXPECT_NE(validate_heartbeat_record(bad_kind), "");

  JsonValue negative_rate = good;
  negative_rate.set("events_per_sec", JsonValue(-1.0));
  EXPECT_NE(validate_heartbeat_record(negative_rate), "");

  JsonValue missing_des = good;
  missing_des.set("des", JsonValue("not an object"));
  EXPECT_NE(validate_heartbeat_record(missing_des), "");

  EXPECT_THROW(heartbeat_line(bad_kind), std::runtime_error);
}

TEST(Heartbeat, AsciiLineNamesTargetProgressAndStalls) {
  const std::string line = heartbeat_ascii(sample_heartbeat());
  EXPECT_NE(line.find("bench_test"), std::string::npos);
  EXPECT_NE(line.find("42/160"), std::string::npos);
  EXPECT_NE(line.find("stalls=1"), std::string::npos);
}

TEST(Heartbeat, StrictParseNamesLineLenientSkipsAndCounts) {
  const std::string good = heartbeat_line(heartbeat_to_json(sample_heartbeat()));
  const std::string text = good + "\n{\"torn\": tru\n" + good + "\n";
  try {
    parse_heartbeat_log(text, /*strict=*/true);
    FAIL() << "strict parse accepted a torn line";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("heartbeat line 2"),
              std::string::npos)
        << e.what();
  }
  const HeartbeatLog log = parse_heartbeat_log(text, /*strict=*/false);
  EXPECT_EQ(log.records.size(), 2u);
  EXPECT_EQ(log.skipped, 1u);
}

TEST(Heartbeat, AggregatesFoldTicksStallsAndRates) {
  std::vector<JsonValue> records;
  Heartbeat hb = sample_heartbeat();
  hb.kind = "tick";
  hb.seq = 0;
  hb.t_ms = 1000.0;
  hb.events = 1000;
  hb.events_per_sec = 1000.0;
  hb.stalls = 0;
  records.push_back(heartbeat_to_json(hb));
  hb.seq = 1;
  hb.t_ms = 2000.0;
  hb.events = 4000;
  hb.events_per_sec = 3000.0;
  hb.stalls = 1;
  records.push_back(heartbeat_to_json(hb));
  hb.kind = "final";
  hb.t_ms = 2500.0;
  hb.events = 5000;
  hb.events_per_sec = 2000.0;
  records.push_back(heartbeat_to_json(hb));

  const HeartbeatAggregates agg = aggregate_heartbeats(records);
  EXPECT_EQ(agg.records, 3u);
  EXPECT_EQ(agg.ticks, 2u);
  EXPECT_EQ(agg.stalls, 1u);
  EXPECT_EQ(agg.events_total, 5000u);
  EXPECT_DOUBLE_EQ(agg.elapsed_s, 2.5);
  EXPECT_DOUBLE_EQ(agg.events_per_sec_mean, 2000.0);
  EXPECT_DOUBLE_EQ(agg.events_per_sec_max, 3000.0);
  EXPECT_EQ(agg.units_done, 42u);
  EXPECT_EQ(agg.units_total, 160u);
}

// ---- ProgressMeter ------------------------------------------------------

TEST(ProgressMeter, StopEmitsFinalHeartbeatAndAggregates) {
  TempFile stream("meter_final.heartbeat.jsonl");
  ProgressConfig cfg;
  cfg.target = "meter_test";
  cfg.interval_ms = 20;
  cfg.jsonl_path = stream.path;
  cfg.stderr_line = false;
  ProgressMeter meter(cfg);
  meter.start();
  EXPECT_TRUE(meter.running());
  EXPECT_THROW(meter.start(), std::runtime_error);

  add_units_total(8);
  add_events(5000);
  add_units_done(3);
  note_sim_time_ns(1'500'000);
  note_des_depth(7);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  const MeterSummary summary = meter.stop();
  EXPECT_FALSE(meter.running());
  ASSERT_TRUE(summary.active);
  EXPECT_GE(summary.agg.records, 1u);
  EXPECT_EQ(summary.agg.events_total, 5000u);
  EXPECT_EQ(summary.agg.units_done, 3u);
  EXPECT_EQ(summary.agg.units_total, 8u);
  EXPECT_EQ(summary.agg.stalls, 0u);
  EXPECT_FALSE(enabled());  // stop() disarms the hub

  const HeartbeatLog log = read_heartbeat_log(stream.path, /*strict=*/true);
  ASSERT_FALSE(log.records.empty());
  const JsonValue& last = log.records.back();
  EXPECT_EQ(last.at("kind").as_string(), "final");
  EXPECT_EQ(last.at("target").as_string(), "meter_test");
  EXPECT_EQ(last.at("events").as_number(), 5000.0);
  EXPECT_EQ(last.at("sim_time_us").as_number(), 1500.0);

  // stop() is idempotent: the second call returns the same summary.
  EXPECT_EQ(meter.stop().agg.events_total, 5000u);
}

TEST(ProgressMeter, WatchdogFiresOnInjectedStallWithDiagnosticSnapshot) {
  TempFile stream("meter_stall.heartbeat.jsonl");
  std::mutex mu;
  std::vector<std::string> snapshots;
  ProgressConfig cfg;
  cfg.target = "stall_test";
  cfg.interval_ms = 400;  // ticks slower than the stall threshold
  cfg.jsonl_path = stream.path;
  cfg.stderr_line = false;
  cfg.stall_after_s = 0.05;
  cfg.stall_sink = [&](const std::string& s) {
    std::lock_guard<std::mutex> lock(mu);
    snapshots.push_back(s);
  };
  ProgressMeter meter(cfg);
  meter.start();
  add_events(100);
  note_sim_time_ns(42'000);
  note_des_depth(5);
  // Freeze the counters: the progress signature stops changing, and the
  // watchdog must fire well within this window.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!snapshots.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const MeterSummary summary = meter.stop();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(snapshots.empty()) << "watchdog never fired";
  const std::string& snap = snapshots.front();
  EXPECT_NE(snap.find("stall watchdog"), std::string::npos) << snap;
  EXPECT_NE(snap.find("no progress for"), std::string::npos) << snap;
  EXPECT_NE(snap.find("des: queue depth"), std::string::npos) << snap;
  EXPECT_NE(snap.find("slot 0"), std::string::npos) << snap;
  EXPECT_NE(snap.find("deque depth"), std::string::npos) << snap;
  EXPECT_NE(snap.find("mem: rss"), std::string::npos) << snap;
  EXPECT_NE(snap.find("=== end stall snapshot ==="), std::string::npos)
      << snap;

  ASSERT_TRUE(summary.active);
  EXPECT_GE(summary.agg.stalls, 1u);
  const HeartbeatLog log = read_heartbeat_log(stream.path, /*strict=*/true);
  bool saw_stall_record = false;
  for (const JsonValue& r : log.records) {
    if (r.at("kind").as_string() == "stall") saw_stall_record = true;
  }
  EXPECT_TRUE(saw_stall_record);
}

TEST(ProgressMeter, GlobalMeterRefusesDoubleStart) {
  ProgressConfig cfg;
  cfg.target = "global_test";
  cfg.interval_ms = 50;
  cfg.stderr_line = false;
  start_global_meter(cfg);
  EXPECT_TRUE(global_meter_active());
  EXPECT_THROW(start_global_meter(cfg), std::runtime_error);
  const MeterSummary summary = stop_global_meter();
  EXPECT_TRUE(summary.active);
  EXPECT_FALSE(global_meter_active());
  EXPECT_FALSE(stop_global_meter().active);  // idempotent
}

// ---- sampled span tracer ------------------------------------------------

// `repeats` span trees per synthetic node: each tree is a root with two
// children (one nested grandchild), so 4 records per tree, all spanned.
std::vector<sim::TraceRecord> synthetic_trace(std::uint64_t seed_offset,
                                              std::size_t repeats) {
  std::vector<sim::TraceRecord> records;
  std::uint64_t next_span = 1;
  for (std::size_t i = 0; i < repeats; ++i) {
    const std::uint64_t root = next_span++;
    const std::uint64_t child_a = next_span++;
    const std::uint64_t child_b = next_span++;
    const std::uint64_t grandchild = next_span++;
    const auto t0 = SimTime::us(static_cast<std::int64_t>(
        1000 * i + 17 * seed_offset));
    const std::int64_t dur = static_cast<std::int64_t>(
        40 + (i * 13 + seed_offset * 7) % 120);
    records.push_back({t0, hw::CoreId{0}, sim::TraceCategory::kSyscallOffload,
                       SimTime::us(dur), "offload.write", root, 0});
    records.push_back({t0 + SimTime::us(1), hw::CoreId{0},
                       sim::TraceCategory::kSyscallOffload,
                       SimTime::us(dur / 4), "ikc.request", child_a, root});
    records.push_back({t0 + SimTime::us(2), hw::CoreId{1},
                       sim::TraceCategory::kSyscall, SimTime::us(dur / 8),
                       "proxy.exec", grandchild, child_a});
    records.push_back({t0 + SimTime::us(5), hw::CoreId{0},
                       sim::TraceCategory::kSyscallOffload,
                       SimTime::us(dur / 4), "ikc.reply", child_b, root});
  }
  return records;
}

TEST(SpanSampler, RateOneKeepsEveryTreeExactly) {
  const auto records = synthetic_trace(0, 25);
  SpanSamplerConfig cfg;
  cfg.seed = 7;
  const NodeSample sample = sample_node(cfg, 0, records);
  EXPECT_EQ(sample.roots_seen, 25u);
  EXPECT_EQ(sample.roots_kept, 25u);
  EXPECT_EQ(sample.records_kept, records.size());
  ASSERT_EQ(sample.records.size(), records.size());
  // One sketch per root label, fed by every root.
  ASSERT_EQ(sample.sketches.size(), 1u);
  EXPECT_EQ(sample.sketches.at("offload.write").count(), 25u);
}

TEST(SpanSampler, TenTimesLongerRunStaysWithinReservoirBound) {
  SpanSamplerConfig cfg;
  cfg.seed = 7;
  cfg.rate = 0.5;
  cfg.max_roots_per_node = 16;

  const NodeSample base = sample_node(cfg, 0, synthetic_trace(0, 40));
  const NodeSample ten_x = sample_node(cfg, 0, synthetic_trace(0, 400));

  // Raw side: hard memory bound, independent of run length.
  EXPECT_LE(base.roots_kept, cfg.max_roots_per_node);
  EXPECT_EQ(ten_x.roots_kept, cfg.max_roots_per_node);
  EXPECT_LE(ten_x.records_kept, cfg.max_roots_per_node * 4);
  // Exact side: the sketch still covers the full population.
  EXPECT_EQ(ten_x.roots_seen, 400u);
  EXPECT_EQ(ten_x.sketches.at("offload.write").count(), 400u);
}

TEST(SpanSampler, PureFunctionOfConfigNodeAndRecords) {
  SpanSamplerConfig cfg;
  cfg.seed = 11;
  cfg.rate = 0.5;
  cfg.max_roots_per_node = 8;
  const auto records = synthetic_trace(3, 64);

  const NodeSample a = sample_node(cfg, 5, records);
  const NodeSample b = sample_node(cfg, 5, records);
  EXPECT_EQ(a.roots_kept, b.roots_kept);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].span, b.records[i].span);
    EXPECT_EQ(a.records[i].time, b.records[i].time);
  }
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.sketches.at("offload.write").quantile(q),
                     b.sketches.at("offload.write").quantile(q));
  }

  // Distinct node indices draw distinct streams: the kept sets differ
  // (deterministically, not statistically — these seeds are fixed).
  const NodeSample other = sample_node(cfg, 6, records);
  std::vector<std::uint64_t> spans_a, spans_other;
  for (const auto& r : a.records) spans_a.push_back(r.span);
  for (const auto& r : other.records) spans_other.push_back(r.span);
  EXPECT_NE(spans_a, spans_other);
}

TEST(SpanSampler, AggregateMergesSketchesAndCountsAcrossNodes) {
  SpanSamplerConfig cfg;
  cfg.seed = 3;
  cfg.rate = 0.25;
  cfg.max_roots_per_node = 4;
  std::vector<NodeSample> samples;
  for (std::uint64_t node = 0; node < 6; ++node) {
    samples.push_back(sample_node(cfg, node, synthetic_trace(node, 50)));
  }
  const SampledTrace whole = aggregate_samples(samples);
  EXPECT_EQ(whole.nodes, 6u);
  EXPECT_EQ(whole.roots_seen, 300u);
  EXPECT_LE(whole.roots_kept, 6u * cfg.max_roots_per_node);
  EXPECT_EQ(whole.sketches.at("offload.write").count(), 300u);
  EXPECT_GT(whole.sketch_bucket_count(), 0u);
  std::uint64_t records_sum = 0;
  for (const NodeSample& s : samples) records_sum += s.records_kept;
  EXPECT_EQ(whole.records_kept, records_sum);
  EXPECT_EQ(whole.records.size(), records_sum);
}

}  // namespace
}  // namespace hpcos::obs::live
