// Unit + integration tests: multi-node DES clusters (shared clock).
#include <gtest/gtest.h>

#include "cluster/des_cluster.h"
#include "kernel_test_util.h"
#include "noise/metrics.h"
#include "noise/profiles.h"

namespace hpcos::cluster {
namespace {

using namespace hpcos::literals;

linuxk::LinuxConfig testbed_config(bool quiet) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto cfg = linuxk::make_fugaku_linux_config(platform);
  cfg.profile = quiet ? noise::AnalyticNoiseProfile{}
                      : noise::strip_population_tails(cfg.profile);
  return cfg;
}

TEST(DesCluster, NodesShareOneClock) {
  const auto platform = hw::make_fugaku_testbed_platform();
  DesCluster cluster(3, platform, testbed_config(true),
                     DesCluster::Options{});
  EXPECT_EQ(cluster.size(), 3);
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(&cluster.node(n).simulator(), &cluster.simulator());
    EXPECT_FALSE(cluster.node(n).is_multikernel());
  }
}

TEST(DesCluster, FwqRunsOnEveryCoreOfEveryNode) {
  const auto platform = hw::make_fugaku_testbed_platform();
  DesCluster cluster(2, platform, testbed_config(true),
                     DesCluster::Options{});
  noise::FwqConfig fwq;
  fwq.work_quantum = 1_ms;
  fwq.iterations = 50;
  const auto traces = cluster.run_fwq_all(fwq);
  ASSERT_EQ(traces.size(), 2u);
  for (const auto& per_node : traces) {
    ASSERT_EQ(per_node.size(), 48u);  // all application cores
    for (const auto& t : per_node) {
      EXPECT_EQ(t.iteration_times.size(), 50u);
      for (const SimTime it : t.iteration_times) EXPECT_GE(it, 1_ms);
    }
  }
}

TEST(DesCluster, NodeNoiseIsIndependentButSeeded) {
  const auto platform = hw::make_fugaku_testbed_platform();
  noise::FwqConfig fwq;
  fwq.iterations = 600;
  auto run = [&](std::uint64_t seed) {
    DesCluster cluster(2, platform, testbed_config(false),
                       DesCluster::Options{.seed = Seed{seed}});
    return cluster.run_fwq_all(fwq);
  };
  const auto a = run(7);
  const auto b = run(7);
  // Reproducible across identically-seeded clusters...
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0][0].iteration_times, b[0][0].iteration_times);
  EXPECT_EQ(a[1][5].iteration_times, b[1][5].iteration_times);
  // ...but the two nodes inside one cluster see different noise.
  const auto s0 = noise::compute_noise_stats(a[0]);
  const auto s1 = noise::compute_noise_stats(a[1]);
  bool identical = a[0][0].iteration_times == a[1][0].iteration_times;
  EXPECT_FALSE(identical);
  EXPECT_GT(s0.samples, 0u);
  EXPECT_GT(s1.samples, 0u);
}

TEST(DesCluster, TlbiBroadcastStaysWithinItsNode) {
  // The inner-sharable domain is one chip: a storm on node 0 must not
  // stall node 1's cores even though they share the simulator.
  const auto platform = hw::make_fugaku_testbed_platform();
  DesCluster cluster(2, platform, testbed_config(true),
                     DesCluster::Options{});
  std::array<SimTime, 2> done{};
  for (int n = 0; n < 2; ++n) {
    test::spawn_script(
        cluster.node(n).app_kernel(),
        [&done, n, first = true](os::ThreadContext& ctx) mutable {
          if (first) {
            first = false;
            ctx.compute(10_ms);
            return true;
          }
          done[static_cast<std::size_t>(n)] = ctx.now();
          return false;
        },
        os::SpawnAttrs{.affinity = test::one_core(
                           cluster.node(n).topology(), 5)});
  }
  cluster.simulator().run_until(1_ms);
  // 1000-flush broadcast storm initiated inside node 0's Linux.
  auto& linux0 = cluster.node(0).linux();
  const os::Pid pid = linux0.create_process(os::ProcessAttrs{});
  auto cfg_broadcast = linux0.config().tlb_flush;
  (void)cfg_broadcast;
  linux0.tlb_shootdown(linux0.process(pid), /*initiator=*/0, 1000);
  cluster.simulator().run_until(1_s);
  // Patched mode + single-core process: local flush only; force the
  // comparison through the stall bus instead.
  cluster.node(0).linux().stall_all_cores_except(
      -1, SimTime::zero(), sim::TraceCategory::kUser, "noop");
  EXPECT_EQ(done[1], 10_ms);  // node 1 untouched
}

TEST(DesCluster, MultiKernelClusterOffloadsPerNode) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto mcfg = mck::McKernelConfig::defaults();
  mcfg.hw_noise = noise::AnalyticNoiseProfile{};
  DesCluster cluster(2, platform, testbed_config(true), mcfg,
                     DesCluster::Options{});
  for (int n = 0; n < 2; ++n) {
    ASSERT_TRUE(cluster.node(n).is_multikernel());
    test::spawn_script(*cluster.node(n).lwk(),
                       [phase = 0](os::ThreadContext& ctx) mutable {
                         if (phase++ == 0) {
                           ctx.invoke(os::Syscall::kOpen);
                           return true;
                         }
                         return false;
                       });
  }
  cluster.simulator().run_until(1_s);
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(cluster.node(n).offloader()->replies(), 1u) << "node " << n;
  }
}

TEST(DesCluster, AggregateNoiseStatsMatchSingleNodeScale) {
  // A 4-node cluster's aggregate FWQ statistics should look like four
  // independent nodes (per-core rates are intensive quantities).
  const auto platform = hw::make_fugaku_testbed_platform();
  noise::FwqConfig fwq;
  fwq.iterations = 1000;
  DesCluster cluster(4, platform, testbed_config(false),
                     DesCluster::Options{.seed = Seed{99}});
  const auto traces = cluster.run_fwq_all(fwq);
  std::vector<noise::FwqTrace> flat;
  for (const auto& per_node : traces) {
    flat.insert(flat.end(), per_node.begin(), per_node.end());
  }
  const auto agg = noise::compute_noise_stats(flat);
  EXPECT_EQ(agg.samples, 4u * 48u * 1000u);
  // Baseline Fugaku-Linux noise: rate in the right decade, max below the
  // sar clamp.
  EXPECT_GT(agg.noise_rate, 5e-7);
  EXPECT_LT(agg.noise_rate, 5e-5);
  EXPECT_LE(agg.max_noise_length, SimTime::from_us(51.0));
}

}  // namespace
}  // namespace hpcos::cluster
