// Unit tests: IHK resource partitioning, OS instance lifecycle, IKC.
#include <gtest/gtest.h>

#include "ihk/ihk.h"
#include "kernel_test_util.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;

class IhkTest : public ::testing::Test {
 protected:
  hw::NodeTopology topo = test::small_topology();
  sim::Simulator sim;
  ihk::IhkManager mgr{sim, topo, topo.all_cores(), topo.system_cores(),
                      8ull << 30};
};

TEST_F(IhkTest, ReservationRules) {
  auto& part = mgr.partition();
  // Protected (system) cores cannot be reserved.
  EXPECT_FALSE(part.reserve_cpus(topo.system_cores()));
  // Application cores can.
  EXPECT_TRUE(part.reserve_cpus(topo.application_cores()));
  // Double reservation fails.
  EXPECT_FALSE(part.reserve_cpus(test::one_core(topo, 3)));
  EXPECT_EQ(part.reserved_cpus().count(), 6u);
  EXPECT_EQ(part.remaining_host_cpus(), topo.system_cores());
}

TEST_F(IhkTest, MemoryReservationBounds) {
  auto& part = mgr.partition();
  EXPECT_FALSE(part.reserve_memory(9ull << 30));  // more than the host has
  EXPECT_TRUE(part.reserve_memory(6ull << 30));
  EXPECT_EQ(part.remaining_host_memory(), 2ull << 30);
  EXPECT_FALSE(part.reserve_memory(3ull << 30));
  part.release_memory(6ull << 30);
  EXPECT_EQ(part.reserved_memory(), 0u);
}

TEST_F(IhkTest, OsInstanceLifecycle) {
  auto& part = mgr.partition();
  ASSERT_TRUE(part.reserve_cpus(topo.application_cores()));
  ASSERT_TRUE(part.reserve_memory(4ull << 30));

  // Creating an instance over un-reserved resources fails.
  EXPECT_EQ(mgr.create_os_instance(topo.system_cores(), 1ull << 30), -1);

  const int id =
      mgr.create_os_instance(topo.application_cores(), 4ull << 30);
  ASSERT_GE(id, 0);
  EXPECT_EQ(mgr.instance(id).status, ihk::OsInstanceStatus::kCreated);
  mgr.boot(id);
  EXPECT_EQ(mgr.instance(id).status, ihk::OsInstanceStatus::kBooted);
  // A running instance cannot be destroyed.
  EXPECT_THROW(mgr.destroy(id), SimError);
  mgr.shutdown(id);
  mgr.destroy(id);
  EXPECT_FALSE(mgr.instance_exists(id));
  // Resources returned to the host: can reserve again.
  EXPECT_TRUE(part.reserve_cpus(topo.application_cores()));
}

TEST_F(IhkTest, IkcDeliversAfterLatencyInOrder) {
  ihk::IkcChannel ch(sim, "test", SimTime::us(1));
  std::vector<std::uint64_t> got;
  std::vector<SimTime> when;
  ch.set_receiver([&](const ihk::IkcMessage& m) {
    got.push_back(m.seq);
    when.push_back(sim.now());
  });
  ihk::IkcMessage a;
  ihk::IkcMessage b;
  ch.post(a);
  sim.run_until(SimTime::ns(500));
  ch.post(b);
  sim.run_all();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 1u);
  EXPECT_EQ(got[1], 2u);
  EXPECT_EQ(when[0], SimTime::us(1));
  EXPECT_EQ(when[1], SimTime::ns(1500));
  EXPECT_EQ(ch.messages_posted(), 2u);
  EXPECT_EQ(ch.messages_delivered(), 2u);
}

TEST_F(IhkTest, IkcWithoutReceiverFails) {
  ihk::IkcChannel ch(sim, "bad", SimTime::us(1));
  EXPECT_THROW(ch.post(ihk::IkcMessage{}), SimError);
}

TEST(MultiKernelAssembly, BothKernelsShareTheChip) {
  test::MultiKernelNode node;
  EXPECT_EQ(node.bus.attached_kernels(), 2u);
  EXPECT_EQ(node.linux->owned_cores().count(), 2u);
  EXPECT_EQ(node.lwk->owned_cores().count(), 6u);
  EXPECT_FALSE(node.linux->owned_cores().intersects(node.lwk->owned_cores()));
  EXPECT_EQ(node.ihk_mgr->instance(node.os_id).status,
            ihk::OsInstanceStatus::kBooted);
}

TEST(MultiKernelAssembly, LinuxBroadcastTlbiStallsLwkCores) {
  using namespace hpcos::literals;
  test::MultiKernelNode node(
      {}, [](linuxk::LinuxConfig& c) {
        c.tlb_flush = linuxk::TlbFlushMode::kBroadcast;
      });
  // LWK compute victim.
  SimTime done;
  int phase = 0;
  test::spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.compute(10_ms);
      return true;
    }
    done = ctx.now();
    return false;
  });
  node.sim.run_until(1_ms);
  // A Linux-side process storm of 500 flushes reaches across the kernel
  // boundary: broadcast TLBI covers the whole inner-sharable domain.
  const os::Pid pid = node.linux->create_process(os::ProcessAttrs{});
  node.linux->tlb_shootdown(node.linux->process(pid), /*initiator=*/0, 500);
  node.sim.run_until(1_s);
  EXPECT_EQ(done, 10_ms + 100_us);  // 500 x 200 ns
}

}  // namespace
}  // namespace hpcos
