// Additional coverage: proxy serialization, scheduler stickiness, Linux
// sleep/syscall timing, hugeTLBfs process preference, and assorted edges
// surfaced while building the benches.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "net/fabric.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;
using test::LinuxNode;
using test::MultiKernelNode;
using test::spawn_script;

TEST(ProxySerialization, SameProcessRequestsShareOneProxyFifo) {
  MultiKernelNode node;
  // Two threads of ONE LWK process issue offloaded calls concurrently.
  const os::Pid pid = node.lwk->create_process(os::ProcessAttrs{});
  int completed = 0;
  for (int i = 0; i < 2; ++i) {
    spawn_script(
        *node.lwk,
        [&, phase = 0](os::ThreadContext& ctx) mutable {
          if (phase++ == 0) {
            ctx.invoke(os::Syscall::kStat);
            return true;
          }
          ++completed;
          return false;
        },
        os::SpawnAttrs{.pid = pid,
                       .affinity = test::one_core(node.topo, 2 + i)});
  }
  node.sim.run_until(1_s);
  EXPECT_EQ(completed, 2);
  // One process -> one proxy; its queue serialized both calls.
  EXPECT_EQ(node.offloader->proxy_count(), 1u);
  EXPECT_EQ(node.offloader->replies(), 2u);
}

TEST(ProxySerialization, BacklogDrainsInOrderUnderBurst) {
  MultiKernelNode node;
  const os::Pid pid = node.lwk->create_process(os::ProcessAttrs{});
  std::vector<int> completion_order;
  for (int i = 0; i < 4; ++i) {
    spawn_script(
        *node.lwk,
        [&, i, phase = 0](os::ThreadContext& ctx) mutable {
          if (phase++ == 0) {
            ctx.invoke(os::Syscall::kWrite, os::SyscallArgs{.arg0 = 64});
            return true;
          }
          completion_order.push_back(i);
          return false;
        },
        os::SpawnAttrs{.pid = pid,
                       .affinity = test::one_core(node.topo, 2 + i)});
  }
  node.sim.run_until(1_s);
  // FIFO through one proxy: completions come back in submission order
  // (threads were spawned, and thus dispatched, in index order).
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(LinuxSyscalls, NanosleepWallTimeIncludesRequestedDelay) {
  LinuxNode node;
  SimTime woke;
  int phase = 0;
  spawn_script(*node.kernel, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.invoke(os::Syscall::kNanosleep,
                 os::SyscallArgs{.arg0 = 5'000'000});  // 5 ms
      return true;
    }
    woke = ctx.now();
    return false;
  });
  node.sim.run_until(1_s);
  EXPECT_GE(woke, 5_ms);
  EXPECT_LT(woke, SimTime::from_ms(5.2));
}

TEST(LinuxSyscalls, GettimeofdayIsVdsoCheap) {
  LinuxNode node;
  SimTime done;
  int phase = 0;
  spawn_script(*node.kernel, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.invoke(os::Syscall::kGetTimeOfDay);
      return true;
    }
    done = ctx.now();
    return false;
  });
  node.sim.run_until(1_ms);
  EXPECT_LT(done, 1_us);
}

TEST(LinuxSyscalls, TofuIoctlPricedByPinning) {
  LinuxNode node;
  SimTime small_done, large_done;
  int p1 = 0;
  spawn_script(*node.kernel, [&](os::ThreadContext& ctx) {
    if (p1++ == 0) {
      ctx.invoke(os::Syscall::kIoctl,
                 os::SyscallArgs{.arg0 = 0, .arg1 = 1ull << 20,
                                 .arg2 = os::kTofuRegisterStag});
      return true;
    }
    small_done = ctx.now();
    return false;
  });
  node.sim.run_until(1_s);
  const SimTime t0 = node.sim.now();
  int p2 = 0;
  spawn_script(*node.kernel, [&](os::ThreadContext& ctx) {
    if (p2++ == 0) {
      ctx.invoke(os::Syscall::kIoctl,
                 os::SyscallArgs{.arg0 = 0, .arg1 = 64ull << 20,
                                 .arg2 = os::kTofuRegisterStag});
      return true;
    }
    large_done = ctx.now() - t0;
    return false;
  });
  node.sim.run_until(2_s);
  // 64x the buffer => ~64x the pinning work dominates.
  EXPECT_GT(large_done, small_done * 10);
}

TEST(CfsPlacement, ThreadsStickToTheirPreviousCore) {
  LinuxNode node;
  std::vector<hw::CoreId> cores_seen;
  spawn_script(*node.kernel, [&, n = 0](os::ThreadContext& ctx) mutable {
    cores_seen.push_back(ctx.core());
    if (++n >= 6) return false;
    ctx.sleep_for(3_ms);  // wake -> select_core again each time
    return true;
  });
  node.sim.run_until(1_s);
  ASSERT_EQ(cores_seen.size(), 6u);
  for (std::size_t i = 1; i < cores_seen.size(); ++i) {
    EXPECT_EQ(cores_seen[i], cores_seen[0]);  // wake_affine stickiness
  }
}

TEST(LinuxMm, ProcessPreferenceSelectsHugeTlbFsPages) {
  LinuxNode node([](linuxk::LinuxConfig& c) {
    c.hugetlbfs = linuxk::HugeTlbFsConfig{.enabled = true,
                                          .page_size = hw::PageSize::k2M,
                                          .reserved_pages = 0,
                                          .overcommit = true};
  });
  // Process created with the Fugaku runtime's large-page preference: its
  // plain mmaps (no explicit flag) get hugeTLBfs backing.
  os::ProcessAttrs attrs;
  attrs.preferred_page_size = hw::PageSize::k2M;
  const os::Pid pid = node.kernel->create_process(std::move(attrs));
  int phase = 0;
  spawn_script(
      *node.kernel,
      [&](os::ThreadContext& ctx) {
        if (phase++ == 0) {
          ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = 8ull << 20});
          return true;
        }
        // Stay alive: process exit would return the backing pages.
        ctx.sleep_for(100_ms);
        return true;
      },
      os::SpawnAttrs{.pid = pid});
  node.sim.run_until(50_ms);
  const auto& areas = node.kernel->process(pid).address_space.areas();
  ASSERT_EQ(areas.size(), 1u);
  EXPECT_EQ(areas.begin()->second.page_size, hw::PageSize::k2M);
  EXPECT_EQ(node.kernel->hugetlbfs().surplus_in_use(), 4u);
}

TEST(LinuxSignals, KillWakesBlockedSleeperWithEintr) {
  LinuxNode node;
  os::SyscallResult res;
  int phase = 0;
  const auto tid = spawn_script(*node.kernel, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.invoke(os::Syscall::kFutex, os::SyscallArgs{.arg0 = 0});
      return true;
    }
    res = ctx.last_syscall();
    return false;
  });
  // A second thread delivers the signal through the kill() syscall.
  spawn_script(*node.kernel, [&, p2 = 0](os::ThreadContext& ctx) mutable {
    if (p2++ == 0) {
      ctx.sleep_for(5_ms);
      return true;
    }
    if (p2 == 2) {
      ctx.invoke(os::Syscall::kKill, os::SyscallArgs{.arg0 = tid});
      return true;
    }
    return false;
  });
  node.sim.run_until(1_s);
  EXPECT_FALSE(node.kernel->thread_alive(tid));
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.value, -4);  // EINTR
}

TEST(FabricParams, FactoryMatchesKind) {
  EXPECT_EQ(net::params_for(hw::InterconnectKind::kTofuD).kind,
            hw::InterconnectKind::kTofuD);
  EXPECT_EQ(net::params_for(hw::InterconnectKind::kOmniPath).kind,
            hw::InterconnectKind::kOmniPath);
  // Tofu's barrier-gate-friendly software overhead is lower.
  EXPECT_LT(net::make_tofud_params().sw_overhead,
            net::make_omnipath_params().sw_overhead);
}

TEST(KernelEdge, YieldAmongEqualsRoundRobins) {
  MultiKernelNode node;
  std::vector<int> order;
  for (int id = 0; id < 2; ++id) {
    spawn_script(
        *node.lwk,
        [&, id, phase = 0](os::ThreadContext& ctx) mutable {
          if (phase % 2 == 0) {  // work phase
            if (phase / 2 >= 3) return false;
            order.push_back(id);
            ++phase;
            ctx.compute(1_us);
            return true;
          }
          ++phase;  // co-operative handoff
          ctx.yield();
          return true;
        },
        os::SpawnAttrs{.affinity = test::one_core(node.topo, 2)});
  }
  node.sim.run_until(1_s);
  // Cooperative compute+yield alternates the two threads.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(KernelEdge, WakeOnDeadThreadIsSafe) {
  MultiKernelNode node;
  const auto tid = spawn_script(*node.lwk, [](os::ThreadContext&) {
    return false;
  });
  node.sim.run_until(1_ms);
  ASSERT_FALSE(node.lwk->thread_alive(tid));
  node.lwk->wake(tid);           // no-op
  node.lwk->wake(999999);        // unknown tid: no-op
  node.lwk->send_signal(tid);    // no-op on exited thread
  node.sim.run_until(2_ms);
  SUCCEED();
}

TEST(KernelEdge, InterruptOnIdleCoreDelaysNextDispatch) {
  MultiKernelNode node;
  // Core 3 idle; a 1 ms interrupt arrives, then a thread spawns: it must
  // wait for the IRQ to finish.
  node.lwk->interrupt_core(3, 1_ms, sim::TraceCategory::kIrq, "pre");
  SimTime started;
  spawn_script(
      *node.lwk,
      [&](os::ThreadContext& ctx) {
        started = ctx.now();
        return false;
      },
      os::SpawnAttrs{.affinity = test::one_core(node.topo, 3)});
  node.sim.run_until(1_s);
  EXPECT_GE(started, 1_ms);
}

}  // namespace
}  // namespace hpcos
