// Canonical config serialization + stable config digests (DESIGN §8).
//
// Two halves of the contract:
//  * invariance — member insertion order and pure host-execution knobs
//    (threads, registry sink) never change the hash;
//  * sensitivity — every semantic knob of every config serializer flips
//    the hash when flipped.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/config_json.h"
#include "cluster/fwq_campaign.h"
#include "cluster/osenv.h"
#include "cluster/workload.h"
#include "common/confighash.h"
#include "common/json.h"
#include "noise/profiles.h"
#include "obs/registry.h"

namespace hpcos {
namespace {

// ------------------------------------------------------ canonical form

TEST(CanonicalJson, SortsKeysAtEveryLevelAndDropsWhitespace) {
  JsonValue a = JsonValue::object();
  a.set("zeta", 1);
  JsonValue inner_a = JsonValue::object();
  inner_a.set("b", 2);
  inner_a.set("a", 3);
  a.set("alpha", std::move(inner_a));

  JsonValue b = JsonValue::object();
  JsonValue inner_b = JsonValue::object();
  inner_b.set("a", 3);
  inner_b.set("b", 2);
  b.set("alpha", std::move(inner_b));
  b.set("zeta", 1);

  EXPECT_EQ(canonical_json(a), canonical_json(b));
  EXPECT_EQ(canonical_json(a), R"({"alpha":{"a":3,"b":2},"zeta":1})");
}

TEST(CanonicalJson, NumbersAreShortestRoundTripForm) {
  JsonValue v = JsonValue::object();
  v.set("whole", 3.0);
  v.set("neg_zero", -0.0);
  v.set("tenth", 0.1);
  v.set("big", 9007199254740991.0);  // 2^53 - 1 stays integral
  EXPECT_EQ(canonical_json(v),
            R"({"big":9007199254740991,"neg_zero":0,"tenth":0.1,"whole":3})");

  // Shortest form must parse back to the identical double, including
  // values with no short decimal expansion.
  const double awkward = 1.0 / 3.0;
  JsonValue w = JsonValue::object();
  w.set("x", awkward);
  const std::string text = canonical_json(w);
  EXPECT_EQ(JsonValue::parse(text).at("x").as_number(), awkward);
  // And re-canonicalizing the parsed document is a fixed point.
  EXPECT_EQ(canonical_json(JsonValue::parse(text)), text);
}

TEST(CanonicalJson, RejectsNonFiniteNumbersLoudly) {
  JsonValue v = JsonValue::object();
  v.set("bad", std::nan(""));
  EXPECT_THROW((void)canonical_json(v), std::runtime_error);
  JsonValue inf = JsonValue::object();
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue(HUGE_VAL));
  inf.set("nested", std::move(arr));
  EXPECT_THROW((void)canonical_json(inf), std::runtime_error);
}

// ------------------------------------------------------------ FNV-1a 64

TEST(Fnv1a64, MatchesReferenceVectorsAndChains) {
  EXPECT_EQ(fnv1a64(""), kFnv1a64Offset);
  // Reference vectors from the FNV specification.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
  // Chaining state is equivalent to hashing the concatenation.
  EXPECT_EQ(fnv1a64("bar", fnv1a64("foo")), fnv1a64("foobar"));
  EXPECT_EQ(to_hex64(0xaf63dc4c8601ec8cull), "af63dc4c8601ec8c");
  EXPECT_EQ(to_hex64(0x1ull), "0000000000000001");
}

// ------------------------------------------------- invariance contract

TEST(ConfigHash, HostExecutionKnobsNeverReachTheHash) {
  cluster::FwqCampaignConfig config;
  const std::string base = config_hash_hex(cluster::to_config_json(config));

  config.threads = 1;
  EXPECT_EQ(config_hash_hex(cluster::to_config_json(config)), base);
  config.threads = 8;
  EXPECT_EQ(config_hash_hex(cluster::to_config_json(config)), base);
  obs::Registry registry;
  config.registry = &registry;
  EXPECT_EQ(config_hash_hex(cluster::to_config_json(config)), base);
}

TEST(ConfigHash, InvariantUnderMemberReordering) {
  const JsonValue doc =
      cluster::to_config_json(cluster::FwqCampaignConfig{});
  // Rebuild the document with members inserted in reverse order.
  JsonValue reversed = JsonValue::object();
  const auto& members = doc.members();
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    reversed.set(it->first, it->second);
  }
  EXPECT_NE(doc.dump(), reversed.dump());  // insertion order differs...
  EXPECT_EQ(config_hash_hex(doc), config_hash_hex(reversed));  // ...hash not
}

TEST(ConfigHash, SchemaPrefixKeepsEqualBodiesApart) {
  // Same canonical body under different schema strings must not collide:
  // the prefix is part of the digest.
  JsonValue v = JsonValue::object();
  v.set("x", 1);
  EXPECT_NE(config_hash64(v), fnv1a64(canonical_json(v)));
}

// ------------------------------------------------ sensitivity contract

using FwqMutator = std::function<void(cluster::FwqCampaignConfig&)>;

TEST(ConfigHash, EverySemanticFwqKnobChangesTheHash) {
  const std::string base =
      config_hash_hex(cluster::to_config_json(cluster::FwqCampaignConfig{}));
  const std::vector<std::pair<const char*, FwqMutator>> knobs = {
      {"nodes", [](auto& c) { c.nodes += 1; }},
      {"app_cores", [](auto& c) { c.app_cores += 1; }},
      {"work_quantum", [](auto& c) { c.work_quantum = SimTime::from_ms(7); }},
      {"duration_per_core",
       [](auto& c) { c.duration_per_core = SimTime::sec(60); }},
      {"worst_nodes_to_keep", [](auto& c) { c.worst_nodes_to_keep += 1; }},
      {"floor_samples_per_node",
       [](auto& c) { c.floor_samples_per_node += 1; }},
      {"max_materialized_hits",
       [](auto& c) { c.max_materialized_hits += 1; }},
      {"all_cores_jitter_sigma",
       [](auto& c) { c.all_cores_jitter_sigma = 0.25; }},
      {"nodes_per_shard", [](auto& c) { c.nodes_per_shard *= 2; }},
      {"worst_heap_capacity", [](auto& c) { c.worst_heap_capacity = 128; }},
      {"timeline", [](auto& c) { c.timeline = !c.timeline; }},
      {"timeline_buckets", [](auto& c) { c.timeline_buckets += 1; }},
      {"timeline_resolution",
       [](auto& c) { c.timeline_resolution = SimTime::ms(5); }},
      {"sketch_relative_error",
       [](auto& c) { c.sketch_relative_error = 0.02; }},
      {"heatmap_rows", [](auto& c) { c.heatmap_rows += 1; }},
      {"heatmap_cols", [](auto& c) { c.heatmap_cols += 1; }},
      {"seed", [](auto& c) { c.seed = Seed{c.seed.value + 1}; }},
  };
  for (const auto& [name, mutate] : knobs) {
    cluster::FwqCampaignConfig mutated;
    mutate(mutated);
    EXPECT_NE(config_hash_hex(cluster::to_config_json(mutated)), base)
        << "knob \"" << name << "\" did not change the config hash";
  }
}

TEST(ConfigHash, CountermeasureTogglesAllChangeTheHash) {
  const noise::Countermeasures base_cm;
  const std::string base = config_hash_hex(cluster::to_config_json(base_cm));
  const std::vector<
      std::pair<const char*, std::function<void(noise::Countermeasures&)>>>
      knobs = {
          {"bind_daemons", [](auto& c) { c.bind_daemons = !c.bind_daemons; }},
          {"bind_kworkers",
           [](auto& c) { c.bind_kworkers = !c.bind_kworkers; }},
          {"bind_blkmq", [](auto& c) { c.bind_blkmq = !c.bind_blkmq; }},
          {"stop_pmu_reads",
           [](auto& c) { c.stop_pmu_reads = !c.stop_pmu_reads; }},
          {"suppress_global_tlbi",
           [](auto& c) { c.suppress_global_tlbi = !c.suppress_global_tlbi; }},
      };
  for (const auto& [name, mutate] : knobs) {
    noise::Countermeasures cm;
    mutate(cm);
    EXPECT_NE(config_hash_hex(cluster::to_config_json(cm)), base)
        << "countermeasure \"" << name << "\" did not change the hash";
  }
}

TEST(ConfigHash, JobMemAndProfileKnobsChangeTheHash) {
  cluster::JobConfig job;
  const std::string job_base = config_hash_hex(cluster::to_config_json(job));
  job.nodes += 1;
  EXPECT_NE(config_hash_hex(cluster::to_config_json(job)), job_base);
  job.nodes -= 1;
  job.ranks_per_node += 1;
  EXPECT_NE(config_hash_hex(cluster::to_config_json(job)), job_base);

  cluster::MemEnvModel mem;
  const std::string mem_base = config_hash_hex(cluster::to_config_json(mem));
  mem.large_page_coverage = 0.5;
  EXPECT_NE(config_hash_hex(cluster::to_config_json(mem)), mem_base);

  noise::AnalyticNoiseProfile profile = noise::ofp_linux_profile();
  const std::string prof_base =
      config_hash_hex(cluster::to_config_json(profile));
  ASSERT_FALSE(profile.sources.empty());
  profile.sources[0].mean_interval = profile.sources[0].mean_interval * 2;
  EXPECT_NE(config_hash_hex(cluster::to_config_json(profile)), prof_base);
}

TEST(ConfigHash, EnvironmentsAndBenchPlansSeparateCleanly) {
  const auto linux_env = cluster::make_fugaku_linux_env();
  const auto lwk_env = cluster::make_fugaku_mckernel_env();
  EXPECT_NE(config_hash_hex(cluster::to_config_json(linux_env)),
            config_hash_hex(cluster::to_config_json(lwk_env)));

  // Countermeasure changes surface through the noise-profile source list
  // even though the Countermeasures struct is gone by environment time.
  noise::Countermeasures cm;
  cm.bind_daemons = !cm.bind_daemons;
  EXPECT_NE(
      config_hash_hex(cluster::to_config_json(cluster::make_fugaku_linux_env(
          cm))),
      config_hash_hex(cluster::to_config_json(linux_env)));

  cluster::JobConfig job;
  const std::string plan_a = config_hash_hex(
      cluster::bench_plan_config_json("amg", linux_env, job, Seed{1}));
  EXPECT_NE(plan_a,
            config_hash_hex(cluster::bench_plan_config_json(
                "amg", linux_env, job, Seed{2})));
  EXPECT_NE(plan_a,
            config_hash_hex(cluster::bench_plan_config_json(
                "minife", linux_env, job, Seed{1})));
}

// ------------------------------------------------- knob-by-knob diffing

TEST(ConfigDiff, HashEqualIffEmptyDiff) {
  const JsonValue doc =
      cluster::to_config_json(cluster::FwqCampaignConfig{});
  // Same semantics, different insertion order: hashes collide, so the
  // diff must be empty — one direction of the invariant.
  JsonValue reversed = JsonValue::object();
  const auto& members = doc.members();
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    reversed.set(it->first, it->second);
  }
  ASSERT_EQ(config_hash_hex(doc), config_hash_hex(reversed));
  EXPECT_TRUE(config_diff(doc, reversed).empty());

  // Other direction: any knob mutation that moves the hash must surface
  // at least one delta, and an empty diff must mean equal hashes.
  const std::vector<std::pair<const char*, FwqMutator>> knobs = {
      {"nodes", [](auto& c) { c.nodes += 1; }},
      {"work_quantum", [](auto& c) { c.work_quantum = SimTime::from_ms(7); }},
      {"timeline", [](auto& c) { c.timeline = !c.timeline; }},
      {"seed", [](auto& c) { c.seed = Seed{c.seed.value + 1}; }},
  };
  for (const auto& [name, mutate] : knobs) {
    cluster::FwqCampaignConfig mutated;
    mutate(mutated);
    const JsonValue other = cluster::to_config_json(mutated);
    const auto deltas = config_diff(doc, other);
    EXPECT_EQ(config_hash_hex(doc) == config_hash_hex(other),
              deltas.empty())
        << "hash/diff disagreement for knob \"" << name << "\"";
  }
}

TEST(ConfigDiff, NamesEachChangedFwqKnob) {
  const JsonValue base =
      cluster::to_config_json(cluster::FwqCampaignConfig{});
  const std::vector<std::pair<const char*, FwqMutator>> knobs = {
      {"nodes", [](auto& c) { c.nodes += 1; }},
      {"app_cores", [](auto& c) { c.app_cores += 1; }},
      {"work_quantum_ns",
       [](auto& c) { c.work_quantum = SimTime::from_ms(7); }},
      {"duration_per_core_ns",
       [](auto& c) { c.duration_per_core = SimTime::sec(60); }},
      {"all_cores_jitter_sigma",
       [](auto& c) { c.all_cores_jitter_sigma = 0.25; }},
      {"timeline", [](auto& c) { c.timeline = !c.timeline; }},
      {"seed", [](auto& c) { c.seed = Seed{c.seed.value + 1}; }},
  };
  for (const auto& [path, mutate] : knobs) {
    cluster::FwqCampaignConfig mutated;
    mutate(mutated);
    const auto deltas =
        config_diff(base, cluster::to_config_json(mutated));
    ASSERT_EQ(deltas.size(), 1u)
        << "knob \"" << path << "\" should change exactly one leaf";
    EXPECT_EQ(deltas[0].kind, ConfigDeltaKind::kChanged);
    EXPECT_EQ(deltas[0].path, path);
    EXPECT_NE(deltas[0].base, deltas[0].current);
  }
}

TEST(ConfigDiff, CountermeasureTogglesNameTheirPath) {
  const JsonValue base =
      cluster::to_config_json(noise::Countermeasures{});
  const std::vector<
      std::pair<const char*, std::function<void(noise::Countermeasures&)>>>
      knobs = {
          {"bind_daemons", [](auto& c) { c.bind_daemons = !c.bind_daemons; }},
          {"bind_kworkers",
           [](auto& c) { c.bind_kworkers = !c.bind_kworkers; }},
          {"bind_blkmq", [](auto& c) { c.bind_blkmq = !c.bind_blkmq; }},
          {"stop_pmu_reads",
           [](auto& c) { c.stop_pmu_reads = !c.stop_pmu_reads; }},
          {"suppress_global_tlbi",
           [](auto& c) { c.suppress_global_tlbi = !c.suppress_global_tlbi; }},
      };
  for (const auto& [path, mutate] : knobs) {
    noise::Countermeasures cm;
    mutate(cm);
    const auto deltas = config_diff(base, cluster::to_config_json(cm));
    ASSERT_EQ(deltas.size(), 1u) << "toggle \"" << path << "\"";
    EXPECT_EQ(deltas[0].kind, ConfigDeltaKind::kChanged);
    EXPECT_EQ(deltas[0].path, path);
    // Bools render canonically, so the delta reads true/false verbatim.
    EXPECT_TRUE((deltas[0].base == "true" && deltas[0].current == "false") ||
                (deltas[0].base == "false" && deltas[0].current == "true"))
        << deltas[0].base << " -> " << deltas[0].current;
  }
}

TEST(ConfigDiff, NestedProfilePathsUseArrayIndices) {
  const noise::AnalyticNoiseProfile base_profile =
      noise::ofp_linux_profile();
  const JsonValue base = cluster::to_config_json(base_profile);

  noise::AnalyticNoiseProfile mutated = base_profile;
  ASSERT_FALSE(mutated.sources.empty());
  mutated.sources[0].mean_interval = mutated.sources[0].mean_interval * 2;
  auto deltas = config_diff(base, cluster::to_config_json(mutated));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].path, "sources[0].mean_interval_ns");

  // Two levels of nesting: the duration distribution inside a source.
  mutated = base_profile;
  ASSERT_GE(mutated.sources.size(), 2u);
  mutated.sources[1].duration.sigma += 0.125;
  deltas = config_diff(base, cluster::to_config_json(mutated));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].path, "sources[1].duration.sigma");
}

TEST(ConfigDiff, ReportsAddedRemovedAndKindMismatches) {
  JsonValue base = JsonValue::object();
  base.set("kept", 1);
  base.set("dropped", 2);
  base.set("shape", 3);
  JsonValue arr_a = JsonValue::array();
  arr_a.push_back(JsonValue(1.0));
  arr_a.push_back(JsonValue(2.0));
  base.set("list", std::move(arr_a));

  JsonValue current = JsonValue::object();
  current.set("kept", 1);
  current.set("gained", 4);
  // Kind mismatch (number -> object) must report at "shape", not recurse.
  JsonValue inner = JsonValue::object();
  inner.set("x", 3);
  current.set("shape", std::move(inner));
  JsonValue arr_b = JsonValue::array();
  arr_b.push_back(JsonValue(1.0));
  current.set("list", std::move(arr_b));

  const auto deltas = config_diff(base, current);
  ASSERT_EQ(deltas.size(), 4u);
  // Walk order is canonical (sorted keys), so the sequence is stable.
  EXPECT_EQ(deltas[0].path, "dropped");
  EXPECT_EQ(deltas[0].kind, ConfigDeltaKind::kRemoved);
  EXPECT_EQ(deltas[0].base, "2");
  EXPECT_EQ(deltas[1].path, "gained");
  EXPECT_EQ(deltas[1].kind, ConfigDeltaKind::kAdded);
  EXPECT_EQ(deltas[1].current, "4");
  EXPECT_EQ(deltas[2].path, "list[1]");
  EXPECT_EQ(deltas[2].kind, ConfigDeltaKind::kRemoved);
  EXPECT_EQ(deltas[3].path, "shape");
  EXPECT_EQ(deltas[3].kind, ConfigDeltaKind::kChanged);
  EXPECT_EQ(deltas[3].base, "3");
  EXPECT_EQ(deltas[3].current, R"({"x":3})");
}

}  // namespace
}  // namespace hpcos
