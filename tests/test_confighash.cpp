// Canonical config serialization + stable config digests (DESIGN §8).
//
// Two halves of the contract:
//  * invariance — member insertion order and pure host-execution knobs
//    (threads, registry sink) never change the hash;
//  * sensitivity — every semantic knob of every config serializer flips
//    the hash when flipped.
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/config_json.h"
#include "cluster/fwq_campaign.h"
#include "cluster/osenv.h"
#include "cluster/workload.h"
#include "common/confighash.h"
#include "common/json.h"
#include "noise/profiles.h"
#include "obs/registry.h"

namespace hpcos {
namespace {

// ------------------------------------------------------ canonical form

TEST(CanonicalJson, SortsKeysAtEveryLevelAndDropsWhitespace) {
  JsonValue a = JsonValue::object();
  a.set("zeta", 1);
  JsonValue inner_a = JsonValue::object();
  inner_a.set("b", 2);
  inner_a.set("a", 3);
  a.set("alpha", std::move(inner_a));

  JsonValue b = JsonValue::object();
  JsonValue inner_b = JsonValue::object();
  inner_b.set("a", 3);
  inner_b.set("b", 2);
  b.set("alpha", std::move(inner_b));
  b.set("zeta", 1);

  EXPECT_EQ(canonical_json(a), canonical_json(b));
  EXPECT_EQ(canonical_json(a), R"({"alpha":{"a":3,"b":2},"zeta":1})");
}

TEST(CanonicalJson, NumbersAreShortestRoundTripForm) {
  JsonValue v = JsonValue::object();
  v.set("whole", 3.0);
  v.set("neg_zero", -0.0);
  v.set("tenth", 0.1);
  v.set("big", 9007199254740991.0);  // 2^53 - 1 stays integral
  EXPECT_EQ(canonical_json(v),
            R"({"big":9007199254740991,"neg_zero":0,"tenth":0.1,"whole":3})");

  // Shortest form must parse back to the identical double, including
  // values with no short decimal expansion.
  const double awkward = 1.0 / 3.0;
  JsonValue w = JsonValue::object();
  w.set("x", awkward);
  const std::string text = canonical_json(w);
  EXPECT_EQ(JsonValue::parse(text).at("x").as_number(), awkward);
  // And re-canonicalizing the parsed document is a fixed point.
  EXPECT_EQ(canonical_json(JsonValue::parse(text)), text);
}

TEST(CanonicalJson, RejectsNonFiniteNumbersLoudly) {
  JsonValue v = JsonValue::object();
  v.set("bad", std::nan(""));
  EXPECT_THROW((void)canonical_json(v), std::runtime_error);
  JsonValue inf = JsonValue::object();
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue(HUGE_VAL));
  inf.set("nested", std::move(arr));
  EXPECT_THROW((void)canonical_json(inf), std::runtime_error);
}

// ------------------------------------------------------------ FNV-1a 64

TEST(Fnv1a64, MatchesReferenceVectorsAndChains) {
  EXPECT_EQ(fnv1a64(""), kFnv1a64Offset);
  // Reference vectors from the FNV specification.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
  // Chaining state is equivalent to hashing the concatenation.
  EXPECT_EQ(fnv1a64("bar", fnv1a64("foo")), fnv1a64("foobar"));
  EXPECT_EQ(to_hex64(0xaf63dc4c8601ec8cull), "af63dc4c8601ec8c");
  EXPECT_EQ(to_hex64(0x1ull), "0000000000000001");
}

// ------------------------------------------------- invariance contract

TEST(ConfigHash, HostExecutionKnobsNeverReachTheHash) {
  cluster::FwqCampaignConfig config;
  const std::string base = config_hash_hex(cluster::to_config_json(config));

  config.threads = 1;
  EXPECT_EQ(config_hash_hex(cluster::to_config_json(config)), base);
  config.threads = 8;
  EXPECT_EQ(config_hash_hex(cluster::to_config_json(config)), base);
  obs::Registry registry;
  config.registry = &registry;
  EXPECT_EQ(config_hash_hex(cluster::to_config_json(config)), base);
}

TEST(ConfigHash, InvariantUnderMemberReordering) {
  const JsonValue doc =
      cluster::to_config_json(cluster::FwqCampaignConfig{});
  // Rebuild the document with members inserted in reverse order.
  JsonValue reversed = JsonValue::object();
  const auto& members = doc.members();
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    reversed.set(it->first, it->second);
  }
  EXPECT_NE(doc.dump(), reversed.dump());  // insertion order differs...
  EXPECT_EQ(config_hash_hex(doc), config_hash_hex(reversed));  // ...hash not
}

TEST(ConfigHash, SchemaPrefixKeepsEqualBodiesApart) {
  // Same canonical body under different schema strings must not collide:
  // the prefix is part of the digest.
  JsonValue v = JsonValue::object();
  v.set("x", 1);
  EXPECT_NE(config_hash64(v), fnv1a64(canonical_json(v)));
}

// ------------------------------------------------ sensitivity contract

using FwqMutator = std::function<void(cluster::FwqCampaignConfig&)>;

TEST(ConfigHash, EverySemanticFwqKnobChangesTheHash) {
  const std::string base =
      config_hash_hex(cluster::to_config_json(cluster::FwqCampaignConfig{}));
  const std::vector<std::pair<const char*, FwqMutator>> knobs = {
      {"nodes", [](auto& c) { c.nodes += 1; }},
      {"app_cores", [](auto& c) { c.app_cores += 1; }},
      {"work_quantum", [](auto& c) { c.work_quantum = SimTime::from_ms(7); }},
      {"duration_per_core",
       [](auto& c) { c.duration_per_core = SimTime::sec(60); }},
      {"worst_nodes_to_keep", [](auto& c) { c.worst_nodes_to_keep += 1; }},
      {"floor_samples_per_node",
       [](auto& c) { c.floor_samples_per_node += 1; }},
      {"max_materialized_hits",
       [](auto& c) { c.max_materialized_hits += 1; }},
      {"all_cores_jitter_sigma",
       [](auto& c) { c.all_cores_jitter_sigma = 0.25; }},
      {"nodes_per_shard", [](auto& c) { c.nodes_per_shard *= 2; }},
      {"worst_heap_capacity", [](auto& c) { c.worst_heap_capacity = 128; }},
      {"timeline", [](auto& c) { c.timeline = !c.timeline; }},
      {"timeline_buckets", [](auto& c) { c.timeline_buckets += 1; }},
      {"timeline_resolution",
       [](auto& c) { c.timeline_resolution = SimTime::ms(5); }},
      {"sketch_relative_error",
       [](auto& c) { c.sketch_relative_error = 0.02; }},
      {"heatmap_rows", [](auto& c) { c.heatmap_rows += 1; }},
      {"heatmap_cols", [](auto& c) { c.heatmap_cols += 1; }},
      {"seed", [](auto& c) { c.seed = Seed{c.seed.value + 1}; }},
  };
  for (const auto& [name, mutate] : knobs) {
    cluster::FwqCampaignConfig mutated;
    mutate(mutated);
    EXPECT_NE(config_hash_hex(cluster::to_config_json(mutated)), base)
        << "knob \"" << name << "\" did not change the config hash";
  }
}

TEST(ConfigHash, CountermeasureTogglesAllChangeTheHash) {
  const noise::Countermeasures base_cm;
  const std::string base = config_hash_hex(cluster::to_config_json(base_cm));
  const std::vector<
      std::pair<const char*, std::function<void(noise::Countermeasures&)>>>
      knobs = {
          {"bind_daemons", [](auto& c) { c.bind_daemons = !c.bind_daemons; }},
          {"bind_kworkers",
           [](auto& c) { c.bind_kworkers = !c.bind_kworkers; }},
          {"bind_blkmq", [](auto& c) { c.bind_blkmq = !c.bind_blkmq; }},
          {"stop_pmu_reads",
           [](auto& c) { c.stop_pmu_reads = !c.stop_pmu_reads; }},
          {"suppress_global_tlbi",
           [](auto& c) { c.suppress_global_tlbi = !c.suppress_global_tlbi; }},
      };
  for (const auto& [name, mutate] : knobs) {
    noise::Countermeasures cm;
    mutate(cm);
    EXPECT_NE(config_hash_hex(cluster::to_config_json(cm)), base)
        << "countermeasure \"" << name << "\" did not change the hash";
  }
}

TEST(ConfigHash, JobMemAndProfileKnobsChangeTheHash) {
  cluster::JobConfig job;
  const std::string job_base = config_hash_hex(cluster::to_config_json(job));
  job.nodes += 1;
  EXPECT_NE(config_hash_hex(cluster::to_config_json(job)), job_base);
  job.nodes -= 1;
  job.ranks_per_node += 1;
  EXPECT_NE(config_hash_hex(cluster::to_config_json(job)), job_base);

  cluster::MemEnvModel mem;
  const std::string mem_base = config_hash_hex(cluster::to_config_json(mem));
  mem.large_page_coverage = 0.5;
  EXPECT_NE(config_hash_hex(cluster::to_config_json(mem)), mem_base);

  noise::AnalyticNoiseProfile profile = noise::ofp_linux_profile();
  const std::string prof_base =
      config_hash_hex(cluster::to_config_json(profile));
  ASSERT_FALSE(profile.sources.empty());
  profile.sources[0].mean_interval = profile.sources[0].mean_interval * 2;
  EXPECT_NE(config_hash_hex(cluster::to_config_json(profile)), prof_base);
}

TEST(ConfigHash, EnvironmentsAndBenchPlansSeparateCleanly) {
  const auto linux_env = cluster::make_fugaku_linux_env();
  const auto lwk_env = cluster::make_fugaku_mckernel_env();
  EXPECT_NE(config_hash_hex(cluster::to_config_json(linux_env)),
            config_hash_hex(cluster::to_config_json(lwk_env)));

  // Countermeasure changes surface through the noise-profile source list
  // even though the Countermeasures struct is gone by environment time.
  noise::Countermeasures cm;
  cm.bind_daemons = !cm.bind_daemons;
  EXPECT_NE(
      config_hash_hex(cluster::to_config_json(cluster::make_fugaku_linux_env(
          cm))),
      config_hash_hex(cluster::to_config_json(linux_env)));

  cluster::JobConfig job;
  const std::string plan_a = config_hash_hex(
      cluster::bench_plan_config_json("amg", linux_env, job, Seed{1}));
  EXPECT_NE(plan_a,
            config_hash_hex(cluster::bench_plan_config_json(
                "amg", linux_env, job, Seed{2})));
  EXPECT_NE(plan_a,
            config_hash_hex(cluster::bench_plan_config_json(
                "minife", linux_env, job, Seed{1})));
}

}  // namespace
}  // namespace hpcos
