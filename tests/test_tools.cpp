// Unit + integration tests: the paper's methodology tools — interference
// analysis (§4.2.1), PMU-based attribution (§4.2.2), the FTQ benchmark,
// and the batch job launcher (§4.1 / §5.1).
#include <gtest/gtest.h>

#include <set>

#include "cluster/job_launcher.h"
#include "kernel_test_util.h"
#include "linuxk/interference.h"
#include "noise/attribution.h"
#include "noise/ftq.h"
#include "noise/fwq.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;

// ---- interference analysis ----

TEST(Interference, RanksActivitiesByStolenTime) {
  sim::TraceBuffer trace(256);
  auto rec = [&](sim::TraceCategory cat, hw::CoreId core, SimTime dur,
                 SimTime at) {
    trace.record(sim::TraceRecord{.time = at, .core = core, .category = cat,
                                  .duration = dur, .label = "x"});
  };
  rec(sim::TraceCategory::kKworker, 5, 100_us, 1_ms);
  rec(sim::TraceCategory::kKworker, 6, 300_us, 2_ms);
  rec(sim::TraceCategory::kTimerTick, 5, 2_us, 3_ms);
  rec(sim::TraceCategory::kDaemon, 7, 5_ms, 4_ms);
  // Events on system cores (0, 1) must be excluded.
  rec(sim::TraceCategory::kSyscall, 0, 1_ms, 5_ms);

  const auto topo = test::small_topology();
  const auto report =
      linuxk::analyze_interference(trace, topo.application_cores());

  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.dominant(), "daemon");
  EXPECT_EQ(report.entries[0].total, 5_ms);
  EXPECT_EQ(report.entries[1].activity, "kworker");
  EXPECT_EQ(report.entries[1].events, 2u);
  EXPECT_EQ(report.entries[1].total, 400_us);
  EXPECT_EQ(report.entries[1].worst_single, 300_us);
  EXPECT_EQ(report.entries[1].worst_core, 6);
  EXPECT_EQ(report.total_interference, 5_ms + 400_us + 2_us);
  EXPECT_NE(to_string(report).find("daemon"), std::string::npos);
}

TEST(Interference, FindsTheMisconfiguredSubsystemOnTheDes) {
  // The §4.2.1 workflow end-to-end: run FWQ under a node with blk-mq
  // workers unbound, then ask the trace who is stealing time.
  const auto platform = hw::make_fugaku_testbed_platform();
  noise::Countermeasures cm;
  cm.bind_blkmq = false;
  auto cfg = linuxk::make_fugaku_linux_config(platform, cm);
  cfg.profile = noise::strip_population_tails(cfg.profile);
  // Silence the residual stall sources so blk-mq dominates clearly.
  std::erase_if(cfg.profile.sources, [](const noise::NoiseSourceSpec& s) {
    return s.kind == noise::SourceKind::kHardware ||
           s.kind == noise::SourceKind::kSar;
  });
  auto node = cluster::SimNode::make_linux_node(
      platform, std::move(cfg),
      cluster::SimNodeOptions{.seed = Seed{31}, .trace_capacity = 1 << 18});

  noise::FwqConfig fwq;
  fwq.iterations = 8000;
  noise::run_fwq(node->app_kernel(), node->topology().application_cores(),
                 fwq);
  const auto report = linuxk::analyze_interference(
      node->trace(), node->topology().application_cores());
  EXPECT_EQ(report.dominant(), "blk_mq");
}

// ---- PMU attribution ----

TEST(Attribution, CleanWindowIsNone) {
  os::CoreAccounting before;
  os::CoreAccounting after = before;
  after.user += 10_ms;
  const auto r = noise::attribute_window(before, after);
  EXPECT_EQ(r.cls, noise::InterferenceClass::kNone);
  EXPECT_GT(r.counters.get(hw::PmuEvent::kInstructionsUser), 0u);
  EXPECT_EQ(r.counters.get(hw::PmuEvent::kInstructionsKernel), 0u);
}

TEST(Attribution, KernelTimeMeansOsActivity) {
  os::CoreAccounting before;
  os::CoreAccounting after;
  after.user = 10_ms;
  after.kernel = 200_us;
  after.interrupts = 3;
  const auto r = noise::attribute_window(before, after);
  EXPECT_EQ(r.cls, noise::InterferenceClass::kOsKernelActivity);
  EXPECT_EQ(r.kernel_time, 200_us);
  EXPECT_EQ(r.interrupts, 3u);
  EXPECT_GT(r.counters.get(hw::PmuEvent::kInstructionsKernel), 0u);
}

TEST(Attribution, StallOnlyMeansHardwareContention) {
  os::CoreAccounting before;
  os::CoreAccounting after;
  after.user = 10_ms;
  after.stall = 150_us;
  const auto r = noise::attribute_window(before, after);
  EXPECT_EQ(r.cls, noise::InterferenceClass::kHardwareContention);
  // The §4.2.2 signature: cycles grow, kernel instructions do not.
  EXPECT_EQ(r.counters.get(hw::PmuEvent::kInstructionsKernel), 0u);
  EXPECT_GT(r.counters.get(hw::PmuEvent::kCycles),
            r.counters.get(hw::PmuEvent::kInstructionsUser));
}

TEST(Attribution, ComparableComponentsAreMixed) {
  os::CoreAccounting before;
  os::CoreAccounting after;
  after.kernel = 100_us;
  after.stall = 80_us;
  EXPECT_EQ(noise::attribute_window(before, after).cls,
            noise::InterferenceClass::kMixed);
  // Dominant kernel with trace stall: OS activity.
  after.stall = 2_us;
  EXPECT_EQ(noise::attribute_window(before, after).cls,
            noise::InterferenceClass::kOsKernelActivity);
}

TEST(Attribution, DesRoundTrip_TlbiIsHardware_DaemonIsOs) {
  // Run the real mechanisms and check the classifier recovers them.
  test::MultiKernelNode node;
  SimTime done;
  int phase = 0;
  test::spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.compute(20_ms);
      return true;
    }
    done = ctx.now();
    return false;
  });
  node.sim.run_until(1_ms);
  const auto before = node.lwk->accounting(2);
  // A broadcast TLBI storm from the Linux side stalls the LWK core.
  const os::Pid pid = node.linux->create_process(os::ProcessAttrs{});
  (void)pid;
  node.bus.broadcast_stall(0, 300_us, sim::TraceCategory::kTlbShootdown,
                           "storm");
  node.sim.run_until(10_ms);
  const auto mid = node.lwk->accounting(2);
  EXPECT_EQ(noise::attribute_window(before, mid).cls,
            noise::InterferenceClass::kHardwareContention);
  // An interrupt burst on the same core reads as OS activity.
  node.lwk->interrupt_core(2, 200_us, sim::TraceCategory::kIrq, "irq");
  node.sim.run_until(15_ms);
  const auto after = node.lwk->accounting(2);
  EXPECT_EQ(noise::attribute_window(mid, after).cls,
            noise::InterferenceClass::kOsKernelActivity);
}

// ---- FTQ ----

TEST(Ftq, CleanRunCountsIdealWorkEveryWindow) {
  test::MultiKernelNode node;
  noise::FtqConfig cfg;
  cfg.window = 1_ms;
  cfg.unit_work = 50_us;
  cfg.windows = 40;
  const auto traces =
      noise::run_ftq(*node.lwk, test::one_core(node.topo, 2), cfg);
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].work_counts.size(), 40u);
  const std::uint64_t ideal = traces[0].ideal_count(cfg);
  EXPECT_EQ(ideal, 20u);
  for (const std::uint64_t c : traces[0].work_counts) {
    EXPECT_EQ(c, ideal);
  }
  EXPECT_DOUBLE_EQ(noise::ftq_work_loss(traces), 0.0);
}

TEST(Ftq, InterruptDepressesTheHitWindow) {
  test::MultiKernelNode node;
  noise::FtqConfig cfg;
  cfg.window = 1_ms;
  cfg.unit_work = 50_us;
  cfg.windows = 20;
  // Inject a 500 us interrupt inside the third window.
  node.sim.schedule_at(SimTime::from_us(2300), [&] {
    node.lwk->interrupt_core(2, 500_us, sim::TraceCategory::kIrq, "hit");
  });
  const auto traces =
      noise::run_ftq(*node.lwk, test::one_core(node.topo, 2), cfg);
  ASSERT_EQ(traces[0].work_counts.size(), 20u);
  const std::uint64_t ideal = traces[0].ideal_count(cfg);
  // Exactly ~10 quanta (500 us) of work displaced, visible as depressed
  // counts near window 2/3.
  std::uint64_t lost = 0;
  for (const std::uint64_t c : traces[0].work_counts) {
    lost += ideal - std::min(ideal, c);
  }
  EXPECT_GE(lost, 9u);
  EXPECT_LE(lost, 11u);
  EXPECT_GT(noise::ftq_work_loss(traces), 0.0);
}

// ---- job launcher ----

TEST(JobLauncher, RanksBindOneLevelPerCmg) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto node = cluster::SimNode::make_linux_node(
      platform, linuxk::make_fugaku_linux_config(platform));
  cluster::JobLauncher launcher(*node);
  const auto job = launcher.launch(cluster::LaunchSpec{
      .ranks = 4, .threads_per_rank = 12, .memory_limit_bytes = 28ull << 30});

  ASSERT_EQ(job.ranks.size(), 4u);
  EXPECT_TRUE(job.used_cgroups);
  // One rank per CMG, 12 cores each, all disjoint (§4.1.4).
  std::set<hw::NumaId> numas;
  hw::CpuSet seen(static_cast<std::size_t>(node->topology().logical_cores()));
  for (const auto& r : job.ranks) {
    numas.insert(r.numa);
    EXPECT_EQ(r.cores.count(), 12u);
    EXPECT_FALSE(seen.intersects(r.cores));
    seen = seen | r.cores;
    // Rank processes carry the Fugaku runtime memory policy.
    const auto& proc = node->app_kernel().process(r.pid);
    EXPECT_EQ(proc.attrs.preferred_page_size, hw::PageSize::k2M);
    EXPECT_EQ(proc.attrs.heap, os::HeapBehavior::kCached);
  }
  EXPECT_EQ(numas.size(), 4u);
  // Cgroups exist and the memory cgroup is wired to the rank processes.
  EXPECT_NE(node->linux().cgroups().find_cpuset(
                cluster::LaunchedJob::kAppCpuset),
            nullptr);
  EXPECT_NE(node->linux().cgroups().memory_cgroup_of(job.ranks[0].pid),
            nullptr);
}

TEST(JobLauncher, EightRanksSplitEachCmgInHalf) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto node = cluster::SimNode::make_linux_node(
      platform, linuxk::make_fugaku_linux_config(platform));
  cluster::JobLauncher launcher(*node);
  const auto job =
      launcher.launch(cluster::LaunchSpec{.ranks = 8, .threads_per_rank = 6});
  ASSERT_EQ(job.ranks.size(), 8u);
  for (const auto& r : job.ranks) {
    EXPECT_EQ(r.cores.count(), 6u);
  }
  // Ranks 0 and 4 share CMG 0 with disjoint halves.
  EXPECT_EQ(job.ranks[0].numa, job.ranks[4].numa);
  EXPECT_FALSE(job.ranks[0].cores.intersects(job.ranks[4].cores));
}

TEST(JobLauncher, MultiKernelNodeNeedsNoCgroups) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto node = cluster::SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      mck::McKernelConfig::defaults());
  cluster::JobLauncher launcher(*node);
  const auto job = launcher.launch(cluster::LaunchSpec{.ranks = 4});
  EXPECT_FALSE(job.used_cgroups);  // the LWK replaces the cgroup (§5.1)
  // Ranks live on the LWK.
  for (const auto& r : job.ranks) {
    EXPECT_TRUE(node->lwk()->process_alive(r.pid));
  }
}

TEST(JobLauncher, SpawnedRankThreadRunsInItsSlice) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto node = cluster::SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      mck::McKernelConfig::defaults());
  cluster::JobLauncher launcher(*node);
  const auto job = launcher.launch(cluster::LaunchSpec{.ranks = 4});

  hw::CoreId ran_on = hw::kInvalidCore;
  launcher.spawn_rank_thread(
      job, 2,
      std::make_unique<test::ScriptBody>([&](os::ThreadContext& ctx) {
        ran_on = ctx.core();
        return false;
      }),
      "rank-main");
  node->simulator().run_until(1_ms);
  EXPECT_TRUE(job.ranks[2].cores.test(ran_on));
}

TEST(JobLauncher, TooManyRanksFail) {
  const auto platform = hw::make_fugaku_testbed_platform();
  auto node = cluster::SimNode::make_linux_node(
      platform, linuxk::make_fugaku_linux_config(platform));
  cluster::JobLauncher launcher(*node);
  EXPECT_THROW(launcher.launch(cluster::LaunchSpec{.ranks = 500}), SimError);
}

}  // namespace
}  // namespace hpcos
