// Unit + integration tests: McKernel — local syscall set, delegation via
// the proxy process, PicoDriver, retained-memory pools, signals, and the
// LWK's defining noise-freedom.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "noise/fwq.h"
#include "noise/metrics.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;
using test::MultiKernelNode;
using test::spawn_script;

TEST(McKernelSyscalls, LocalSetMatchesPaper) {
  using S = os::Syscall;
  // §5: memory management, threads, scheduling, signals are local.
  for (S s : {S::kMmap, S::kMunmap, S::kBrk, S::kFutex, S::kClone,
              S::kGetTimeOfDay, S::kSchedYield, S::kNanosleep, S::kSignal,
              S::kKill, S::kExitGroup}) {
    EXPECT_TRUE(mck::McKernel::is_local_syscall(s)) << to_string(s);
  }
  // File I/O and driver calls are delegated to Linux.
  for (S s : {S::kRead, S::kWrite, S::kOpen, S::kClose, S::kStat, S::kIoctl,
              S::kPerfEventOpen}) {
    EXPECT_FALSE(mck::McKernel::is_local_syscall(s)) << to_string(s);
  }
}

TEST(McKernelOffload, ReadIsDelegatedThroughProxy) {
  MultiKernelNode node;
  os::SyscallResult observed;
  int phase = 0;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.invoke(os::Syscall::kRead, os::SyscallArgs{.arg0 = 4096});
      return true;
    }
    observed = ctx.last_syscall();
    return false;
  });
  node.sim.run_until(1_s);
  EXPECT_TRUE(observed.ok);
  EXPECT_EQ(observed.path, os::SyscallResult::Path::kOffloaded);
  EXPECT_EQ(node.lwk->offloaded_syscalls(), 1u);
  EXPECT_EQ(node.offloader->requests(), 1u);
  EXPECT_EQ(node.offloader->replies(), 1u);
  EXPECT_EQ(node.offloader->proxy_count(), 1u);
  // Round trip: marshal + 2x IKC + proxy wake + Linux service. Must be
  // microseconds, not nanoseconds and not milliseconds.
  EXPECT_GT(node.offloader->roundtrip_us().mean(), 1.0);
  EXPECT_LT(node.offloader->roundtrip_us().mean(), 50.0);
}

TEST(McKernelOffload, OffloadCostExceedsLocalCost) {
  MultiKernelNode node;
  SimTime local_done, offload_done;
  int phase1 = 0;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (phase1++ == 0) {
      ctx.invoke(os::Syscall::kGetTimeOfDay);  // local on the LWK
      return true;
    }
    local_done = ctx.now();
    return false;
  });
  node.sim.run_until(1_s);
  int phase2 = 0;
  const SimTime t0 = node.sim.now();
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (phase2++ == 0) {
      ctx.invoke(os::Syscall::kStat);  // offloaded
      return true;
    }
    offload_done = ctx.now() - t0;
    return false;
  });
  node.sim.run_until(2_s);
  EXPECT_GT(offload_done, local_done * 3);
}

TEST(McKernelOffload, ProxyLivesOnSystemCores) {
  MultiKernelNode node;
  int phase = 0;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.invoke(os::Syscall::kOpen);
      return true;
    }
    return false;
  });
  node.sim.run_until(1_s);
  ASSERT_EQ(node.offloader->proxy_count(), 1u);
  // The proxy thread must have consumed kernel time on a system core, and
  // none on any application core.
  SimTime sys_kernel, app_kernel;
  for (hw::CoreId c : node.topo.system_cores().to_vector()) {
    sys_kernel += node.linux->accounting(c).kernel;
  }
  for (hw::CoreId c : node.topo.application_cores().to_vector()) {
    app_kernel += node.linux->accounting(c).kernel;
  }
  EXPECT_GT(sys_kernel, SimTime::zero());
  EXPECT_EQ(app_kernel, SimTime::zero());
}

TEST(McKernelOffload, ConcurrentRequestsAllComplete) {
  MultiKernelNode node;
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    int phase = 0;
    spawn_script(
        *node.lwk,
        [&, phase](os::ThreadContext& ctx) mutable {
          if (phase++ == 0) {
            ctx.invoke(os::Syscall::kWrite, os::SyscallArgs{.arg0 = 128});
            return true;
          }
          ++completed;
          return false;
        },
        os::SpawnAttrs{.affinity = test::one_core(node.topo, 2 + i)});
  }
  node.sim.run_until(1_s);
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(node.offloader->replies(), 4u);
  // Four distinct LWK processes -> four proxies.
  EXPECT_EQ(node.offloader->proxy_count(), 4u);
}

TEST(McKernelPico, RegistrationUsesFastPathWhenEnabled) {
  MultiKernelNode with_pico(
      [](mck::McKernelConfig& c) { c.picodriver.enabled = true; });
  os::SyscallResult res;
  int phase = 0;
  spawn_script(*with_pico.lwk, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.invoke(os::Syscall::kIoctl,
                 os::SyscallArgs{.arg0 = 0, .arg1 = 64ull << 20,
                                 .arg2 = mck::kTofuRegisterStag});
      return true;
    }
    res = ctx.last_syscall();
    return false;
  });
  with_pico.sim.run_until(1_s);
  EXPECT_EQ(res.path, os::SyscallResult::Path::kFastDriver);
  EXPECT_EQ(with_pico.lwk->picodriver().registrations(), 1u);
  EXPECT_EQ(with_pico.lwk->offloaded_syscalls(), 0u);
}

TEST(McKernelPico, RegistrationOffloadsWithoutPicoDriver) {
  MultiKernelNode node;  // picodriver disabled by default
  os::SyscallResult res;
  int phase = 0;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.invoke(os::Syscall::kIoctl,
                 os::SyscallArgs{.arg0 = 0, .arg1 = 64ull << 20,
                                 .arg2 = mck::kTofuRegisterStag});
      return true;
    }
    res = ctx.last_syscall();
    return false;
  });
  node.sim.run_until(1_s);
  EXPECT_EQ(res.path, os::SyscallResult::Path::kOffloaded);
}

TEST(McKernelMemory, FreedMemoryIsRetainedAndReused) {
  MultiKernelNode node;
  const std::uint64_t len = 32ull << 20;
  SimTime first_alloc, second_alloc;
  std::uint64_t addr = 0;
  int phase = 0;
  SimTime mark;
  os::Pid pid = os::kInvalidPid;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    switch (phase++) {
      case 0:
        pid = ctx.pid();
        mark = ctx.now();
        ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = len});
        return true;
      case 1:
        first_alloc = ctx.now() - mark;
        addr = static_cast<std::uint64_t>(ctx.last_syscall().value);
        ctx.invoke(os::Syscall::kMunmap,
                   os::SyscallArgs{.arg0 = addr, .arg1 = len});
        return true;
      case 2:
        mark = ctx.now();
        ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = len});
        return true;
      default:
        second_alloc = ctx.now() - mark;
        return false;
    }
  });
  node.sim.run_until(1_s);
  // After the munmap the bytes sit in the process pool...
  // (they were consumed again by the second mmap, so the pool is empty at
  // the end; the observable effect is the second allocation being served
  // pre-populated, i.e. not slower than the first.)
  EXPECT_LE(second_alloc, first_alloc);
  EXPECT_EQ(node.lwk->pooled_bytes(pid), 0u);
}

TEST(McKernelMemory, PoolAccumulatesAcrossFrees) {
  MultiKernelNode node;
  const std::uint64_t len = 8ull << 20;
  os::Pid pid = os::kInvalidPid;
  int phase = 0;
  std::uint64_t addr = 0;
  spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    switch (phase++) {
      case 0:
        pid = ctx.pid();
        ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = len});
        return true;
      case 1:
        addr = static_cast<std::uint64_t>(ctx.last_syscall().value);
        ctx.invoke(os::Syscall::kMunmap,
                   os::SyscallArgs{.arg0 = addr, .arg1 = len});
        return true;
      case 2:
        // Keep the process alive so the pool can be observed: exit would
        // return the retained memory to the LWK allocator.
        ctx.sleep_for(10_ms);
        return true;
      default:
        return false;
    }
  });
  node.sim.run_until(5_ms);
  EXPECT_EQ(node.lwk->pooled_bytes(pid), len);
  node.sim.run_until(1_s);
  EXPECT_EQ(node.lwk->pooled_bytes(pid), 0u);  // reclaimed at exit
}

TEST(McKernelSignals, SignalWakesBlockedThreadWithEintr) {
  MultiKernelNode node;
  os::SyscallResult res;
  int phase = 0;
  const auto tid = spawn_script(*node.lwk, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      ctx.invoke(os::Syscall::kFutex, os::SyscallArgs{.arg0 = 0});  // park
      return true;
    }
    res = ctx.last_syscall();
    return false;
  });
  node.sim.run_until(10_ms);
  EXPECT_TRUE(node.lwk->thread_alive(tid));
  node.lwk->send_signal(tid);
  node.sim.run_until(20_ms);
  EXPECT_FALSE(node.lwk->thread_alive(tid));
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.value, -4);  // EINTR
}

TEST(McKernelNoise, FwqIsNoiseFreeOnQuietLwk) {
  MultiKernelNode node;
  noise::FwqConfig cfg;
  cfg.work_quantum = SimTime::from_ms(6.5);
  cfg.iterations = 200;
  const auto traces =
      noise::run_fwq(*node.lwk, node.topo.application_cores(), cfg);
  const auto stats = noise::compute_noise_stats(traces);
  // Tick-less, daemon-free: every iteration is exactly the quantum.
  EXPECT_EQ(stats.max_noise_length, SimTime::zero());
  EXPECT_DOUBLE_EQ(stats.noise_rate, 0.0);
  EXPECT_EQ(stats.t_min, SimTime::from_ms(6.5));
}

}  // namespace
}  // namespace hpcos
