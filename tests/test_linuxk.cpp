// Unit + integration tests: the tuned-Linux model — CFS behaviours, timer
// ticks/nohz_full, cgroups, hugeTLBfs + the cgroup charge hook, virtual
// NUMA fragmentation, page-size policy, and the TLB shootdown modes.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "noise/fwq.h"
#include "noise/metrics.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;
using test::LinuxNode;
using test::spawn_script;

// ---- cgroups ----

TEST(Cgroup, MemoryChargeRespectsLimit) {
  linuxk::MemoryCgroup cg("app", 1000);
  EXPECT_TRUE(cg.try_charge(600));
  EXPECT_TRUE(cg.try_charge(400));
  EXPECT_FALSE(cg.try_charge(1));
  EXPECT_EQ(cg.usage_bytes(), 1000u);
  cg.uncharge(500);
  EXPECT_TRUE(cg.try_charge(300));
  EXPECT_EQ(cg.usage_bytes(), 800u);
}

TEST(Cgroup, ZeroLimitMeansUnlimited) {
  linuxk::MemoryCgroup cg("system", 0);
  EXPECT_TRUE(cg.try_charge(1ull << 40));
}

TEST(Cgroup, CpusetAttachNarrowsAffinity) {
  LinuxNode node;
  auto& mgr = node.kernel->cgroups();
  mgr.create_cpuset("system", node.topo.system_cores(), {1});
  const auto tid = spawn_script(*node.kernel, [](os::ThreadContext& ctx) {
    ctx.sleep_for(1_ms);
    return true;
  });
  mgr.attach(*node.kernel, tid, "system");
  EXPECT_TRUE(node.topo.system_cores().contains(
      node.kernel->thread(tid).affinity));
  // After the next wakeups the thread must only run on system cores.
  node.sim.run_until(20_ms);
  EXPECT_TRUE(node.topo.system_cores().test(node.kernel->thread(tid).core));
}

// ---- hugeTLBfs ----

TEST(HugeTlbFs, PoolFirstThenSurplus) {
  linuxk::HugeTlbFsConfig cfg{.enabled = true,
                              .page_size = hw::PageSize::k2M,
                              .reserved_pages = 4,
                              .overcommit = true};
  linuxk::HugeTlbFs fs(cfg);
  auto r = fs.allocate(6, nullptr);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.from_pool, 4u);
  EXPECT_EQ(r.surplus, 2u);
  EXPECT_EQ(fs.pool_free(), 0u);
  EXPECT_EQ(fs.surplus_in_use(), 2u);
  fs.release(r, nullptr);
  EXPECT_EQ(fs.pool_free(), 4u);
  EXPECT_EQ(fs.surplus_in_use(), 0u);
}

TEST(HugeTlbFs, NoOvercommitFailsPastPool) {
  linuxk::HugeTlbFsConfig cfg{.enabled = true,
                              .page_size = hw::PageSize::k2M,
                              .reserved_pages = 2,
                              .overcommit = false};
  linuxk::HugeTlbFs fs(cfg);
  EXPECT_FALSE(fs.allocate(3, nullptr).ok);
  EXPECT_EQ(fs.pool_free(), 2u);  // failed alloc takes nothing
}

TEST(HugeTlbFs, SurplusEscapesCgroupWithoutHook) {
  // The stock-RHEL bug of §4.1.3: surplus pages are not charged.
  linuxk::HugeTlbFsConfig cfg{.enabled = true,
                              .page_size = hw::PageSize::k2M,
                              .reserved_pages = 0,
                              .overcommit = true,
                              .cgroup_charge_hook = false};
  linuxk::HugeTlbFs fs(cfg);
  linuxk::MemoryCgroup cg("app", 4ull << 20);  // limit: two 2M pages
  auto r = fs.allocate(100, &cg);              // far past the limit
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(cg.usage_bytes(), 0u);  // escaped accounting entirely
}

TEST(HugeTlbFs, ChargeHookEnforcesCgroupLimit) {
  linuxk::HugeTlbFsConfig cfg{.enabled = true,
                              .page_size = hw::PageSize::k2M,
                              .reserved_pages = 0,
                              .overcommit = true,
                              .cgroup_charge_hook = true};
  linuxk::HugeTlbFs fs(cfg);
  linuxk::MemoryCgroup cg("app", 4ull << 20);
  EXPECT_FALSE(fs.allocate(100, &cg).ok);  // over limit -> fails
  auto r = fs.allocate(2, &cg);            // exactly the limit -> ok
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(cg.usage_bytes(), 4ull << 20);
  fs.release(r, &cg);
  EXPECT_EQ(cg.usage_bytes(), 0u);
}

TEST(HugeTlbFs, MaxSurplusCap) {
  linuxk::HugeTlbFsConfig cfg{.enabled = true,
                              .page_size = hw::PageSize::k2M,
                              .reserved_pages = 0,
                              .overcommit = true,
                              .max_surplus_pages = 8};
  linuxk::HugeTlbFs fs(cfg);
  EXPECT_TRUE(fs.allocate(8, nullptr).ok);
  EXPECT_FALSE(fs.allocate(1, nullptr).ok);
}

// ---- virtual NUMA ----

TEST(VirtualNuma, SystemChurnDoesNotFragmentAppRegionWhenEnabled) {
  linuxk::VirtualNuma v(true, 8ull << 30, 2ull << 30);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(v.allocate(linuxk::MemRegion::kSystem, 64ull << 20));
    v.free(linuxk::MemRegion::kSystem, 64ull << 20);
  }
  EXPECT_GT(v.fragmentation(linuxk::MemRegion::kSystem), 0.5);
  EXPECT_DOUBLE_EQ(v.fragmentation(linuxk::MemRegion::kApplication), 0.0);
  EXPECT_DOUBLE_EQ(v.app_fault_factor(), 1.0);
}

TEST(VirtualNuma, SharedRegionFragmentsWithoutVNuma) {
  linuxk::VirtualNuma v(false, 8ull << 30, 2ull << 30);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(v.allocate(linuxk::MemRegion::kSystem, 64ull << 20));
    v.free(linuxk::MemRegion::kSystem, 64ull << 20);
  }
  EXPECT_GT(v.fragmentation(linuxk::MemRegion::kApplication), 0.2);
  EXPECT_GT(v.app_fault_factor(), 1.2);
}

TEST(VirtualNuma, CapacityEnforced) {
  linuxk::VirtualNuma v(true, 1ull << 30, 1ull << 30);
  EXPECT_TRUE(v.allocate(linuxk::MemRegion::kApplication, 1ull << 30));
  EXPECT_FALSE(v.allocate(linuxk::MemRegion::kApplication, 1));
  v.free(linuxk::MemRegion::kApplication, 1ull << 30);
  EXPECT_EQ(v.used_bytes(linuxk::MemRegion::kApplication), 0u);
}

// ---- CFS + ticks ----

TEST(LinuxSched, DaemonWakeupPreemptsAndDelaysFwq) {
  LinuxNode node;
  // FWQ-like thread pinned to app core 2.
  SimTime done;
  int phase = 0;
  spawn_script(
      *node.kernel,
      [&](os::ThreadContext& ctx) {
        if (phase++ == 0) {
          ctx.compute(20_ms);
          return true;
        }
        done = ctx.now();
        return false;
      },
      os::SpawnAttrs{.name = "fwq", .affinity = test::one_core(node.topo, 2)});
  // Daemon pinned to the same core: sleeps 5 ms, then needs 2 ms of CPU.
  int dphase = 0;
  spawn_script(
      *node.kernel,
      [&](os::ThreadContext& ctx) {
        if (dphase++ == 0) {
          ctx.sleep_for(5_ms);
          return true;
        }
        if (dphase == 2) {
          ctx.compute(2_ms);
          return true;
        }
        return false;
      },
      os::SpawnAttrs{.name = "daemon", .affinity = test::one_core(node.topo, 2)});
  node.sim.run_until(1_s);
  // The daemon woke at 5 ms with sleeper credit, preempted the running
  // thread and burned its 2 ms; the 20 ms of work finishes >= 22 ms.
  EXPECT_GE(done, 22_ms);
  EXPECT_LT(done, 25_ms);  // and not much later (switches + ticks only)
}

TEST(LinuxSched, NohzFullResidualTickIsSmall) {
  LinuxNode node;
  noise::FwqConfig cfg;
  cfg.work_quantum = SimTime::from_ms(6.5);
  cfg.iterations = 400;  // ~2.6 s: several residual ticks at 1 Hz
  const auto traces = noise::run_fwq(
      *node.kernel, test::one_core(node.topo, 3), cfg);
  const auto stats = noise::compute_noise_stats(traces);
  // Residual tick only: max noise equals (a few) 700 ns residual ticks.
  EXPECT_GT(stats.max_noise_length, SimTime::zero());
  EXPECT_LE(stats.max_noise_length, 3_us);
  EXPECT_LT(stats.noise_rate, 1e-5);
}

TEST(LinuxSched, TickingCoreSeesPeriodicTicks) {
  // Disable nohz_full: the application core ticks at 100 Hz while busy.
  LinuxNode node([](linuxk::LinuxConfig& c) {
    c.nohz_full_cores =
        hw::CpuSet(static_cast<std::size_t>(c.nohz_full_cores.capacity()));
  });
  noise::FwqConfig cfg;
  cfg.work_quantum = SimTime::from_ms(6.5);
  cfg.iterations = 100;
  const auto traces = noise::run_fwq(
      *node.kernel, test::one_core(node.topo, 3), cfg);
  const auto stats = noise::compute_noise_stats(traces);
  // Every ~10 ms a 2 us tick lands: about 1-2 per iteration.
  EXPECT_GE(stats.max_noise_length, 2_us);
  EXPECT_GT(stats.noise_rate, 1e-4);
}

TEST(LinuxSched, TimesliceSharingOnOneCore) {
  LinuxNode node;
  // Two CPU hogs pinned to one core must both make progress (tick-driven
  // resched despite nohz_full, because two tasks are runnable).
  std::vector<SimTime> done(2);
  for (int i = 0; i < 2; ++i) {
    spawn_script(
        *node.kernel,
        [&, i, phase = 0](os::ThreadContext& ctx) mutable {
          if (phase++ == 0) {
            ctx.compute(50_ms);
            return true;
          }
          done[static_cast<std::size_t>(i)] = ctx.now();
          return false;
        },
        os::SpawnAttrs{.affinity = test::one_core(node.topo, 4)});
  }
  node.sim.run_until(2_s);
  EXPECT_GT(done[0], 50_ms);   // did not run uninterrupted
  EXPECT_GT(done[1], 90_ms);   // second finishes after ~both ran
  EXPECT_LT(done[1], 120_ms);
}

// ---- memory syscalls & page sizes ----

TEST(LinuxMm, ThpPromotesLargeRegions) {
  LinuxNode node([](linuxk::LinuxConfig& c) {
    c.thp_enabled = true;
    c.hugetlbfs.enabled = false;
    c.base_page_size = hw::PageSize::k4K;
  });
  os::Pid pid = os::kInvalidPid;
  int phase = 0;
  spawn_script(*node.kernel, [&](os::ThreadContext& ctx) {
    switch (phase++) {
      case 0:
        pid = ctx.pid();
        ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = 8ull << 20});
        return true;
      case 1:
        ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = 64ull << 10});
        return true;
      default:
        return false;
    }
  });
  node.sim.run_until(1_s);
  const auto& areas = node.kernel->process(pid).address_space.areas();
  ASSERT_EQ(areas.size(), 2u);
  auto it = areas.begin();
  EXPECT_EQ(it->second.page_size, hw::PageSize::k2M);   // THP
  ++it;
  EXPECT_EQ(it->second.page_size, hw::PageSize::k4K);   // too small
}

TEST(LinuxMm, HugeTlbFsBackingChargedAndReleased) {
  LinuxNode node([](linuxk::LinuxConfig& c) {
    c.hugetlbfs = linuxk::HugeTlbFsConfig{.enabled = true,
                                          .page_size = hw::PageSize::k2M,
                                          .reserved_pages = 0,
                                          .overcommit = true,
                                          .cgroup_charge_hook = true};
  });
  auto& mgr = node.kernel->cgroups();
  mgr.create_memory("app", 1ull << 30);
  os::Pid pid = os::kInvalidPid;
  std::uint64_t addr = 0;
  int phase = 0;
  std::uint64_t usage_after_map = 0;
  spawn_script(*node.kernel, [&](os::ThreadContext& ctx) {
    switch (phase++) {
      case 0:
        pid = ctx.pid();
        node.kernel->cgroups().assign_memory_cgroup(pid, "app");
        ctx.invoke(os::Syscall::kMmap,
                   os::SyscallArgs{.arg0 = 16ull << 20, .arg1 = 1});
        return true;
      case 1:
        addr = static_cast<std::uint64_t>(ctx.last_syscall().value);
        usage_after_map =
            node.kernel->cgroups().find_memory("app")->usage_bytes();
        ctx.invoke(os::Syscall::kMunmap,
                   os::SyscallArgs{.arg0 = addr, .arg1 = 16ull << 20});
        return true;
      default:
        return false;
    }
  });
  node.sim.run_until(1_s);
  EXPECT_EQ(usage_after_map, 16ull << 20);  // surplus pages charged
  EXPECT_EQ(node.kernel->cgroups().find_memory("app")->usage_bytes(), 0u);
  EXPECT_EQ(node.kernel->hugetlbfs().surplus_in_use(), 0u);
}

TEST(LinuxMm, TouchMemoryChargesFaults) {
  LinuxNode node;
  os::Pid pid = os::kInvalidPid;
  std::uint64_t addr = 0;
  int phase = 0;
  spawn_script(*node.kernel, [&](os::ThreadContext& ctx) {
    if (phase++ == 0) {
      pid = ctx.pid();
      ctx.invoke(os::Syscall::kMmap,
                 os::SyscallArgs{.arg0 = 10ull * 64 * 1024});
      return true;
    }
    addr = static_cast<std::uint64_t>(ctx.last_syscall().value);
    return false;
  });
  node.sim.run_until(1_s);
  const SimTime cost = node.kernel->touch_memory(pid, addr, 10ull * 64 * 1024);
  EXPECT_EQ(cost, node.kernel->costs().page_fault_base * 10);
  EXPECT_EQ(node.kernel->touch_memory(pid, addr, 64), SimTime::zero());
  EXPECT_EQ(node.kernel->total_page_faults(), 10u);
}

// ---- TLB shootdown modes ----

// A long-running compute victim used to observe cross-core stalls.
struct VictimHandle {
  SimTime done;
};

std::shared_ptr<VictimHandle> spawn_victim(os::NodeKernel& k,
                                           const hw::NodeTopology& topo,
                                           hw::CoreId core, SimTime work) {
  auto h = std::make_shared<VictimHandle>();
  int phase = 0;
  test::spawn_script(
      k,
      [h, phase, work](os::ThreadContext& ctx) mutable {
        if (phase++ == 0) {
          ctx.compute(work);
          return true;
        }
        h->done = ctx.now();
        return false;
      },
      os::SpawnAttrs{.affinity = test::one_core(topo, core)});
  return h;
}

TEST(TlbShootdown, BroadcastStallsAllOtherCores) {
  LinuxNode node([](linuxk::LinuxConfig& c) {
    c.tlb_flush = linuxk::TlbFlushMode::kBroadcast;
  });
  auto victim = spawn_victim(*node.kernel, node.topo, 5, 10_ms);
  node.sim.run_until(1_ms);
  // 1000 flushes x 200 ns = 200 us of stall on every other core.
  auto& proc = node.kernel->process(node.kernel->thread(1).pid);
  node.kernel->tlb_shootdown(proc, /*initiator=*/2, /*flushes=*/1000);
  node.sim.run_until(1_s);
  EXPECT_EQ(victim->done, 10_ms + 200_us);
}

TEST(TlbShootdown, PatchedModeFlushesLocallyForSingleCoreProcess) {
  LinuxNode node;  // kBroadcastPatched in the quiet config
  auto victim = spawn_victim(*node.kernel, node.topo, 5, 10_ms);
  node.sim.run_until(1_ms);
  auto& proc = node.kernel->process(node.kernel->thread(1).pid);
  ASSERT_TRUE(proc.single_core());
  node.kernel->tlb_shootdown(proc, 2, 1000);
  node.sim.run_until(1_s);
  EXPECT_EQ(victim->done, 10_ms);  // no cross-core effect
}

TEST(TlbShootdown, IpiModeInterruptsProcessSiblingsOnly) {
  LinuxNode node([](linuxk::LinuxConfig& c) {
    c.tlb_flush = linuxk::TlbFlushMode::kIpi;
    c.tlb.has_broadcast_tlbi = false;
    c.tlb.ipi_shootdown_per_core = SimTime::us(3);
  });
  // Two threads of ONE process on cores 4 and 5; a bystander on core 6.
  const os::Pid pid = node.kernel->create_process(os::ProcessAttrs{});
  auto sibling = std::make_shared<VictimHandle>();
  int ph1 = 0;
  spawn_script(
      *node.kernel,
      [sibling, ph1](os::ThreadContext& ctx) mutable {
        if (ph1++ == 0) {
          ctx.compute(10_ms);
          return true;
        }
        sibling->done = ctx.now();
        return false;
      },
      os::SpawnAttrs{.pid = pid, .affinity = test::one_core(node.topo, 5)});
  int ph2 = 0;
  spawn_script(
      *node.kernel,
      [ph2](os::ThreadContext& ctx) mutable {
        if (ph2++ == 0) {
          ctx.compute(50_ms);
          return true;
        }
        return false;
      },
      os::SpawnAttrs{.pid = pid, .affinity = test::one_core(node.topo, 4)});
  auto bystander = spawn_victim(*node.kernel, node.topo, 6, 10_ms);
  node.sim.run_until(1_ms);
  node.kernel->tlb_shootdown(node.kernel->process(pid), /*initiator=*/4, 100);
  node.sim.run_until(1_s);
  EXPECT_EQ(sibling->done, 10_ms + 3_us);  // IPI'd
  EXPECT_EQ(bystander->done, 10_ms);       // different mm: untouched
}

TEST(TlbShootdown, ProcessExitTriggersTeardownStorm) {
  LinuxNode node([](linuxk::LinuxConfig& c) {
    c.tlb_flush = linuxk::TlbFlushMode::kBroadcast;
  });
  auto victim = spawn_victim(*node.kernel, node.topo, 5, 30_ms);
  // A process that maps+touches memory then exits, on another core.
  int phase = 0;
  spawn_script(
      *node.kernel,
      [&, phase](os::ThreadContext& ctx) mutable {
        if (phase++ == 0) {
          // 64 MiB of 64K pages -> 1024 resident pages at exit.
          ctx.invoke(os::Syscall::kMmap,
                     os::SyscallArgs{.arg0 = 64ull << 20});
          return true;
        }
        if (phase == 2) {
          node.kernel->touch_memory(
              ctx.pid(),
              static_cast<std::uint64_t>(ctx.last_syscall().value),
              64ull << 20);
          ctx.compute(1_ms);
          return true;
        }
        return false;
      },
      os::SpawnAttrs{.affinity = test::one_core(node.topo, 3)});
  node.sim.run_until(1_s);
  // Teardown broadcast: 1024 flushes x 200 ns ~= 205 us landed on the
  // victim core.
  EXPECT_GE(victim->done, 30_ms + 200_us);
  EXPECT_GT(node.kernel->total_tlb_shootdowns(), 0u);
}

}  // namespace
}  // namespace hpcos
