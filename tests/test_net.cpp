// Unit tests: interconnect fabric, collectives, RDMA registration model.
#include <gtest/gtest.h>

#include "net/collectives.h"
#include "net/fabric.h"
#include "net/rdma.h"

namespace hpcos::net {
namespace {

using namespace hpcos::literals;

TEST(Fabric, HopCountsGrowWithSystemSize) {
  const Fabric tofu(make_tofud_params());
  EXPECT_EQ(tofu.average_hops(1), 0);
  EXPECT_GE(tofu.average_hops(64), 1);
  EXPECT_GT(tofu.average_hops(158976), tofu.average_hops(64));

  const Fabric opa(make_omnipath_params());
  EXPECT_EQ(opa.average_hops(16), 1);   // within one edge switch
  EXPECT_EQ(opa.average_hops(8192), 3); // through the core
}

TEST(Fabric, P2pLatencyAndBandwidthTerms) {
  const Fabric f(make_tofud_params());
  const SimTime small = f.p2p(8, 1024);
  const SimTime large = f.p2p(1 << 20, 1024);
  EXPECT_GT(small, SimTime::zero());
  EXPECT_GT(large, small);
  // 1 MiB at 6.8 GB/s ~= 154 us dominates the latency terms.
  EXPECT_NEAR(large.to_us(), 154.0, 20.0);
}

TEST(Fabric, HaloExchangeScalesWithNeighbors) {
  const Fabric f(make_tofud_params());
  const SimTime h6 = f.halo_exchange(64 << 10, 6);
  const SimTime h26 = f.halo_exchange(64 << 10, 26);
  EXPECT_GT(h26, h6);
  EXPECT_EQ(f.halo_exchange(1024, 0), SimTime::zero());
}

TEST(Collectives, BarrierIsLogarithmic) {
  const Collectives c{Fabric(make_omnipath_params())};
  EXPECT_EQ(c.barrier(1), SimTime::zero());
  const SimTime b2 = c.barrier(2);
  const SimTime b1024 = c.barrier(1024);
  const SimTime b2048 = c.barrier(2048);
  EXPECT_GT(b2, SimTime::zero());
  // log2(1024) = 10 rounds vs 1 round.
  EXPECT_EQ(b1024, b2 * 10);
  EXPECT_EQ(b2048, b2 * 11);
}

TEST(Collectives, TofuBarrierGatesBeatSoftware) {
  const Collectives tofu{Fabric(make_tofud_params())};
  const Collectives opa{Fabric(make_omnipath_params())};
  EXPECT_LT(tofu.barrier(4096), opa.barrier(4096));
}

TEST(Collectives, AllreduceLatencyAndBandwidth) {
  const Collectives c{Fabric(make_tofud_params())};
  const SimTime tiny = c.allreduce(32768, 8);
  const SimTime big = c.allreduce(32768, 16 << 20);
  EXPECT_GT(tiny, c.barrier(32768));  // 2x the rounds
  EXPECT_GT(big, tiny);
  EXPECT_EQ(c.allreduce(1, 1 << 20), SimTime::zero());
}

TEST(Collectives, AllreducePhasesSumExactlyToAllreduce) {
  const Collectives c{Fabric(make_tofud_params())};
  for (const std::int64_t ranks : {2, 100, 32768, 158976}) {
    for (const std::uint64_t bytes : {8ull, 4096ull, 16ull << 20}) {
      const auto p = c.allreduce_phases(ranks, bytes);
      // Exact by construction: allgather absorbs the integer-ns rounding.
      EXPECT_EQ(p.reduce_scatter + p.allgather, c.allreduce(ranks, bytes));
      EXPECT_GT(p.reduce_scatter, SimTime::zero());
      EXPECT_GT(p.allgather, SimTime::zero());
    }
  }
  const auto degenerate = c.allreduce_phases(1, 1 << 20);
  EXPECT_EQ(degenerate.reduce_scatter, SimTime::zero());
  EXPECT_EQ(degenerate.allgather, SimTime::zero());
}

TEST(Collectives, AllgatherLinearInRanks) {
  const Collectives c{Fabric(make_tofud_params())};
  const SimTime g8 = c.allgather(8, 4096);
  const SimTime g64 = c.allgather(64, 4096);
  EXPECT_NEAR(g64.ratio(g8), 9.0, 0.01);  // (64-1)/(8-1)
}

TEST(Rdma, MedianCostOrderingAcrossPaths) {
  const RdmaRegistrationModel m;
  const std::uint64_t bytes = 128ull << 20;
  const SimTime linux_cost =
      m.median_cost(RegistrationPath::kLinuxNative, bytes);
  const SimTime offloaded =
      m.median_cost(RegistrationPath::kMcKernelOffloaded, bytes);
  const SimTime pico =
      m.median_cost(RegistrationPath::kMcKernelPicoDriver, bytes);
  // Offloading adds a round trip on top of the Linux work; the PicoDriver
  // pins 2M pages instead of 64K pages: ~32x fewer operations.
  EXPECT_GT(offloaded, linux_cost);
  EXPECT_LT(pico, linux_cost);
  EXPECT_GT(linux_cost.ratio(pico), 10.0);
}

TEST(Rdma, SampleRespectsTailCap) {
  const RdmaRegistrationModel m;
  RngStream rng(Seed{1}, 0);
  const std::uint64_t bytes = 4ull << 20;
  const SimTime med = m.median_cost(RegistrationPath::kLinuxNative, bytes);
  for (int i = 0; i < 2000; ++i) {
    const SimTime s =
        m.sample_cost(RegistrationPath::kLinuxNative, bytes, rng);
    EXPECT_LE(s, med.scaled(m.params().tail_max_factor));
    EXPECT_GT(s, SimTime::zero());
  }
}

TEST(Rdma, WorstOfManyExceedsMedianOnHeavyTailPath) {
  const RdmaRegistrationModel m;
  RngStream rng(Seed{2}, 0);
  const std::uint64_t bytes = 64ull << 20;
  const SimTime med = m.median_cost(RegistrationPath::kLinuxNative, bytes);
  const SimTime worst =
      m.sample_worst_of(RegistrationPath::kLinuxNative, bytes, 100000, rng);
  EXPECT_GT(worst, med.scaled(5.0));  // sigma 0.6, z(1e5) ~ 4.3

  // The PicoDriver path is nearly deterministic: even the worst of 100k
  // stays close to the median.
  const SimTime p_med =
      m.median_cost(RegistrationPath::kMcKernelPicoDriver, bytes);
  const SimTime p_worst = m.sample_worst_of(
      RegistrationPath::kMcKernelPicoDriver, bytes, 100000, rng);
  EXPECT_LT(p_worst, p_med.scaled(1.5));
}

TEST(Rdma, ZeroRegistrationsCostNothing) {
  const RdmaRegistrationModel m;
  RngStream rng(Seed{3}, 0);
  EXPECT_EQ(m.sample_worst_of(RegistrationPath::kLinuxNative, 1 << 20, 0,
                              rng),
            SimTime::zero());
}

}  // namespace
}  // namespace hpcos::net
