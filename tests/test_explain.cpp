// Regression root-cause explainer (obs/explain): snapshot construction,
// group selection, the four diff layers, cause ranking, the attribution
// reconciliation invariant, and — the contract the tooling stands on —
// agreement between trend's flagged metric and the explainer's top-ranked
// metric over the same ledger.
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/confighash.h"
#include "common/json.h"
#include "common/sketch.h"
#include "obs/bench_diff.h"
#include "obs/bench_report.h"
#include "obs/explain/explain.h"
#include "obs/runlog.h"
#include "obs/trend.h"
#include "sim/trace.h"

namespace hpcos {
namespace {

namespace ex = obs::explain;

JsonValue fixture_config(double noise_rate = 0.003) {
  JsonValue c = JsonValue::object();
  c.set("schema", "hpcos-config-test/1");
  c.set("workload", "fwq");
  c.set("noise_rate", noise_rate);
  return c;
}

// The in-memory twin of bench/fixtures/explain_regressed.jsonl: healthy
// runs hold per-source steals (100, 150, 50) summing to the 300 total;
// the regressed run doubles kworker (and only kworker), so the injected
// cause is unambiguous and Σ(per-source deltas) == Δtotal exactly.
JsonValue fixture_record(int i, bool regressed) {
  obs::BenchReport r("noise_fixture", /*quick=*/true, /*seed=*/2026);
  const double kworker = regressed ? 200.0 : 100.0;
  r.add_metric("fwq.total_us", "us", regressed ? 10450.0 : 10000.0);
  r.add_metric("attrib.total_stolen_us", "us", kworker + 150.0 + 50.0);
  r.add_metric("attrib.src.kworker.stolen_us", "us", kworker);
  r.add_metric("attrib.src.fib-manager.stolen_us", "us", 150.0);
  r.add_metric("attrib.src.blk-mq.stolen_us", "us", 50.0);
  r.add_metric(obs::BenchMetric{
      .name = "span.bsp:compute.self_us",
      .unit = "us",
      .value = regressed ? 5600.0 : 5000.0,
      .percentiles = {{"p50", regressed ? 2.1 : 2.0},
                      {"p99", regressed ? 6.5 : 4.0}}});
  r.add_metric("host.wall_s", "s", 1.0 + 0.1 * i);
  return obs::make_run_record(r, fixture_config(),
                              "2026-08-08T00:00:0" + std::to_string(i) +
                                  "Z");
}

std::vector<JsonValue> fixture_group() {
  std::vector<JsonValue> records;
  for (int i = 0; i < 4; ++i) records.push_back(fixture_record(i, false));
  records.push_back(fixture_record(4, true));
  return records;
}

// ---------------------------------------------------------- snapshots

TEST(ExplainSnapshot, FlattensPercentilesAndHostMetrics) {
  const ex::RunSnapshot snap =
      ex::snapshot_from_record(fixture_record(0, false));
  EXPECT_EQ(snap.target, "noise_fixture");
  EXPECT_EQ(snap.config_hash, config_hash_hex(fixture_config()));
  auto value_of = [&](const std::string& name) -> double {
    for (const auto& m : snap.metrics) {
      if (m.name == name) return m.value;
    }
    ADD_FAILURE() << "metric not found: " << name;
    return NAN;
  };
  EXPECT_EQ(value_of("span.bsp:compute.self_us"), 5000.0);
  EXPECT_EQ(value_of("span.bsp:compute.self_us.p50"), 2.0);
  EXPECT_EQ(value_of("span.bsp:compute.self_us.p99"), 4.0);
  // host.* metrics flatten into the same namespace (quarantine is the
  // metric layer's job, not the snapshot's).
  EXPECT_EQ(value_of("host.wall_s"), 1.0);
}

TEST(ExplainSnapshot, GroupSelectionErrorsAreSpecific) {
  std::vector<JsonValue> records = fixture_group();
  // A second config group for the same target: selection without a
  // prefix must refuse and list both hashes.
  obs::BenchReport other("noise_fixture", true, 2026);
  other.add_metric("fwq.total_us", "us", 1.0);
  records.push_back(obs::make_run_record(other, fixture_config(0.004),
                                         "2026-08-08T00:00:09Z"));

  std::vector<JsonValue> group;
  const std::string ambiguous =
      ex::select_group(records, "noise_fixture", "", &group);
  EXPECT_NE(ambiguous.find("2 config groups"), std::string::npos);
  EXPECT_NE(ambiguous.find(config_hash_hex(fixture_config())),
            std::string::npos);

  // A hash prefix disambiguates; 8 characters is enough.
  const std::string prefix =
      config_hash_hex(fixture_config()).substr(0, 8);
  EXPECT_EQ(ex::select_group(records, "noise_fixture", prefix, &group),
            "");
  EXPECT_EQ(group.size(), 5u);

  EXPECT_NE(ex::select_group(records, "no_such_target", "", &group), "");
}

TEST(ExplainSnapshot, MedianOfPriorMatchesTrendBaseline) {
  const auto group = fixture_group();
  const ex::RunSnapshot base = ex::median_of_prior(group);
  // trend's regression baseline for the same group must be the same
  // number — the two tools must judge the identical pair.
  const auto groups = obs::trend::group_records(group);
  ASSERT_EQ(groups.size(), 1u);
  for (const auto& m : groups[0].metrics) {
    std::vector<double> prior(m.values.begin(), m.values.end() - 1);
    for (const auto& fm : base.metrics) {
      if (fm.name == m.name) {
        EXPECT_EQ(fm.value, obs::trend::median(prior)) << m.name;
      }
    }
  }
  EXPECT_THROW((void)ex::median_of_prior({group[0]}), std::runtime_error);
}

// ------------------------------------------------------------- layers

TEST(ExplainLayers, RanksInjectedCauseFirstAndQuarantinesHost) {
  const auto group = fixture_group();
  const ex::ExplainReport report = ex::explain_runs(
      ex::median_of_prior(group), ex::snapshot_newest(group),
      obs::DiffPolicy{});

  // Config layer: same hash, so no config causes and an empty diff.
  EXPECT_TRUE(report.config_known);
  EXPECT_TRUE(report.hash_equal);
  EXPECT_TRUE(report.config_diff.empty());

  // Metric layer: the kworker jump (rel 1.0) outranks everything.
  ASSERT_FALSE(report.metrics.ranked.empty());
  EXPECT_EQ(report.metrics.ranked.front().name,
            "attrib.src.kworker.stolen_us");
  // host.* never reaches ranked/causes; it lands in the advisory list.
  for (const auto& d : report.metrics.ranked) {
    EXPECT_NE(d.name.rfind("host.", 0), 0u) << d.name;
  }
  ASSERT_EQ(report.metrics.host_advisory.size(), 1u);
  EXPECT_EQ(report.metrics.host_advisory[0].name, "host.wall_s");

  // Cause list: the attribution layer names the injected source first.
  ASSERT_FALSE(report.causes.empty());
  EXPECT_EQ(report.causes.front().layer, ex::CauseLayer::kAttrib);
  EXPECT_EQ(report.causes.front().name, "kworker");
  for (const auto& c : report.causes) {
    EXPECT_NE(c.metric.rfind("host.", 0), 0u) << c.metric;
  }

  // Span layer: the bsp:compute self-time and p99 movement is captured.
  ASSERT_EQ(report.spans.rows.size(), 1u);
  EXPECT_EQ(report.spans.rows[0].label, "bsp:compute");
  EXPECT_TRUE(report.spans.rows[0].has_quantiles);
  EXPECT_EQ(report.spans.rows[0].p99_base, 4.0);
  EXPECT_EQ(report.spans.rows[0].p99_current, 6.5);
}

TEST(ExplainLayers, AttributionReconcilesToTolerance) {
  const auto group = fixture_group();
  const ex::ExplainReport report = ex::explain_runs(
      ex::median_of_prior(group), ex::snapshot_newest(group),
      obs::DiffPolicy{});
  ASSERT_TRUE(report.attrib.present);
  EXPECT_EQ(report.attrib.total_delta_us, 100.0);
  EXPECT_EQ(report.attrib.source_delta_sum_us, 100.0);
  EXPECT_LT(report.attrib.reconciliation_error, ex::kReconcileTol);
  EXPECT_TRUE(report.attrib.reconciled);
  // Ranked per-source rows: the mover first, with the whole share.
  ASSERT_EQ(report.attrib.rows.size(), 3u);
  EXPECT_EQ(report.attrib.rows[0].source, "kworker");
  EXPECT_EQ(report.attrib.rows[0].share, 1.0);
}

TEST(ExplainLayers, DivergentAttributionIsFlaggedNotHidden) {
  // Break the invariant on purpose: the total moves by 100 but the only
  // per-source delta is 60. The layer must report DIVERGED, because a
  // gap means a source escaped attribution — exactly what an operator
  // needs to see.
  ex::RunSnapshot base;
  base.target = "t";
  base.metrics = {{"attrib.total_stolen_us", "us", 300.0},
                  {"attrib.src.kworker.stolen_us", "us", 300.0}};
  ex::RunSnapshot current = base;
  current.metrics = {{"attrib.total_stolen_us", "us", 400.0},
                     {"attrib.src.kworker.stolen_us", "us", 360.0}};
  const ex::ExplainReport report =
      ex::explain_runs(base, current, obs::DiffPolicy{});
  ASSERT_TRUE(report.attrib.present);
  EXPECT_FALSE(report.attrib.reconciled);
  EXPECT_NEAR(report.attrib.reconciliation_error, 0.4, 1e-12);
}

TEST(ExplainLayers, ConfigKnobChangeOutranksEveryMeasuredDelta) {
  const auto group = fixture_group();
  ex::RunSnapshot base = ex::median_of_prior(group);
  ex::RunSnapshot current = ex::snapshot_newest(group);
  // Same measured regression, but the current run also changed a knob:
  // the knob is definitionally the top cause, however large the metric
  // movement.
  current.config = fixture_config(0.0042);
  current.config_hash = config_hash_hex(current.config);
  const ex::ExplainReport report =
      ex::explain_runs(std::move(base), std::move(current),
                       obs::DiffPolicy{});
  EXPECT_FALSE(report.hash_equal);
  ASSERT_EQ(report.config_diff.size(), 1u);
  EXPECT_EQ(report.config_diff[0].path, "noise_rate");
  ASSERT_FALSE(report.causes.empty());
  EXPECT_EQ(report.causes.front().layer, ex::CauseLayer::kConfig);
  EXPECT_EQ(report.causes.front().name, "noise_rate");
  EXPECT_TRUE(std::isinf(report.causes.front().score));
}

// ------------------------------------------------- the tooling contract

TEST(ExplainContract, TopMetricMatchesTrendFlaggedMetric) {
  const auto group = fixture_group();
  obs::DiffPolicy policy;  // default 5% rel — both tools use the same one
  const auto regressions =
      obs::trend::find_regressions(obs::trend::group_records(group),
                                   policy);
  ASSERT_FALSE(regressions.empty());

  const ex::ExplainReport report = ex::explain_runs(
      ex::median_of_prior(group), ex::snapshot_newest(group), policy);
  ASSERT_NE(report.top_metric(), nullptr);
  // The contract explain_gate stands on: trend's worst flagged metric IS
  // the explainer's top-ranked metric, because both rank the identical
  // deltas by the identical rule.
  EXPECT_EQ(report.top_metric()->name, regressions.front().metric);
  EXPECT_EQ(report.top_metric()->base, regressions.front().baseline);
  EXPECT_EQ(report.top_metric()->current, regressions.front().current);
  // And the full flagged set agrees, in order.
  std::vector<std::string> flagged;
  for (const auto& d : report.metrics.ranked) {
    if (d.out_of_tolerance) flagged.push_back(d.name);
  }
  ASSERT_EQ(flagged.size(), regressions.size());
  for (std::size_t i = 0; i < flagged.size(); ++i) {
    EXPECT_EQ(flagged[i], regressions[i].metric) << "rank " << i;
  }
}

TEST(ExplainContract, PrintedHeadlineIsStableAndGreppable) {
  const auto group = fixture_group();
  const ex::ExplainReport report = ex::explain_runs(
      ex::median_of_prior(group), ex::snapshot_newest(group),
      obs::DiffPolicy{});
  std::ostringstream full;
  ex::print_explain(full, report);
  EXPECT_NE(full.str().find("explain: top cause: attrib source "
                            "\"kworker\""),
            std::string::npos);
  EXPECT_NE(full.str().find(
                "explain: top metric: attrib.src.kworker.stolen_us"),
            std::string::npos);
  EXPECT_NE(full.str().find("RECONCILED"), std::string::npos);
  std::ostringstream summary;
  ex::print_explain_summary(summary, report);
  EXPECT_NE(summary.str().find("explain: top cause: attrib source "
                               "\"kworker\""),
            std::string::npos);
}

TEST(ExplainContract, ReportMetricsAreSchemaValid) {
  const auto group = fixture_group();
  const ex::ExplainReport report = ex::explain_runs(
      ex::median_of_prior(group), ex::snapshot_newest(group),
      obs::DiffPolicy{});
  obs::BenchReport bench("explain", /*quick=*/true);
  ex::add_explain_metrics(bench, report);
  EXPECT_EQ(obs::validate_bench_report(bench.to_json()), "");
  double layer = -2.0;
  for (const auto& m : bench.metrics()) {
    if (m.name == "explain.top_cause.layer") layer = m.value;
  }
  EXPECT_EQ(layer, 1.0);  // 1 == attrib
}

// ----------------------------------------------------------- producers

TEST(ExplainProducers, SpanLabelMetricsSumSelfTimeWithoutDoubleCount) {
  // A root span (40 us) with one child (15 us): self times are 25 and
  // 15, so per-label totals must NOT add up to 55 + 15.
  std::vector<sim::TraceRecord> records;
  sim::TraceRecord root;
  root.time = SimTime::us(0);
  root.duration = SimTime::us(40);
  root.label = "bsp:compute";
  root.span = 1;
  records.push_back(root);
  sim::TraceRecord child;
  child.time = SimTime::us(5);
  child.duration = SimTime::us(15);
  child.label = "fault:minor";
  child.span = 2;
  child.parent = 1;
  records.push_back(child);
  sim::TraceRecord second_root = root;
  second_root.time = SimTime::us(100);
  second_root.span = 3;
  second_root.duration = SimTime::us(10);
  records.push_back(second_root);

  std::map<std::string, QuantileSketch> sketches;
  sketches["bsp:compute"].add(25.0);
  sketches["bsp:compute"].add(10.0);

  obs::BenchReport report("spans", /*quick=*/true);
  ex::add_span_label_metrics(report, records, &sketches);
  double compute = NAN;
  double fault = NAN;
  bool compute_has_pct = false;
  for (const auto& m : report.metrics()) {
    if (m.name == "span.bsp:compute.self_us") {
      compute = m.value;
      compute_has_pct = m.percentiles.count("p50") == 1 &&
                        m.percentiles.count("p99") == 1;
    }
    if (m.name == "span.fault:minor.self_us") fault = m.value;
  }
  EXPECT_EQ(compute, 35.0);  // (40 - 15) + 10, child not double counted
  EXPECT_EQ(fault, 15.0);
  EXPECT_TRUE(compute_has_pct);
}

}  // namespace
}  // namespace hpcos
