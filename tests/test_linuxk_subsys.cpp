// Unit + integration tests: the §4.2 kernel subsystems as real models —
// IRQ routing, blk-mq hardware contexts, and kworker workqueues.
#include <gtest/gtest.h>

#include "kernel_test_util.h"
#include "linuxk/blkmq.h"
#include "linuxk/irq.h"
#include "linuxk/workqueue.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;
using test::LinuxNode;
using test::spawn_script;

// ---- IRQ routing ----

TEST(IrqRouter, BalancedByDefaultRoundRobinsOverTheChip) {
  LinuxNode node;
  linuxk::IrqRouter router(*node.kernel);
  router.register_irq(42, "mlx5_comp0", 5_us);
  for (int i = 0; i < 16; ++i) router.fire(42);
  node.sim.run_until(10_ms);
  // 8 cores, 16 interrupts round-robin: two per core, app cores included.
  for (hw::CoreId c = 0; c < 8; ++c) {
    EXPECT_EQ(router.delivered_to(c), 2u) << "core " << c;
  }
  EXPECT_EQ(router.vector(42).fired, 16u);
}

TEST(IrqRouter, SteeringConfinesHandlersToAssistantCores) {
  LinuxNode node;
  linuxk::IrqRouter router(*node.kernel);
  router.register_irq(42, "mlx5_comp0");
  router.register_irq(43, "nvme0q1");
  // The Fugaku countermeasure: every vector to the assistant cores.
  router.steer_all(node.topo.system_cores());
  for (int i = 0; i < 10; ++i) {
    router.fire(42);
    router.fire(43);
  }
  node.sim.run_until(10_ms);
  std::uint64_t on_app = 0;
  for (hw::CoreId c : node.topo.application_cores().to_vector()) {
    on_app += router.delivered_to(c);
  }
  EXPECT_EQ(on_app, 0u);
  EXPECT_EQ(router.delivered_to(0) + router.delivered_to(1), 20u);
}

TEST(IrqRouter, AffinityWriteValidation) {
  LinuxNode node;
  linuxk::IrqRouter router(*node.kernel);
  router.register_irq(7, "dev");
  // An empty/foreign mask is rejected like a bad smp_affinity write.
  EXPECT_FALSE(router.set_affinity(
      7, hw::CpuSet(static_cast<std::size_t>(node.topo.logical_cores()))));
  EXPECT_TRUE(router.set_affinity(7, test::one_core(node.topo, 3)));
  router.fire(7);
  router.fire(7);
  node.sim.run_until(1_ms);
  EXPECT_EQ(router.delivered_to(3), 2u);
}

TEST(IrqRouter, HandlersDelayTheRunningThread) {
  LinuxNode node;
  linuxk::IrqRouter router(*node.kernel);
  router.register_irq(9, "slow-dev", 50_us);
  ASSERT_TRUE(router.set_affinity(9, test::one_core(node.topo, 4)));
  SimTime done;
  int phase = 0;
  spawn_script(
      *node.kernel,
      [&](os::ThreadContext& ctx) {
        if (phase++ == 0) {
          ctx.compute(10_ms);
          return true;
        }
        done = ctx.now();
        return false;
      },
      os::SpawnAttrs{.affinity = test::one_core(node.topo, 4)});
  node.sim.run_until(1_ms);
  router.fire(9);
  node.sim.run_until(1_s);
  EXPECT_EQ(done, 10_ms + 50_us);
}

// ---- blk-mq ----

TEST(BlkMq, DefaultMappingStripesCoresOverContexts) {
  LinuxNode node;
  linuxk::BlkMq blk(*node.kernel, /*num_hw_queues=*/4);
  EXPECT_EQ(blk.contexts().size(), 4u);
  // Every owned core belongs to exactly one context's cpumask.
  std::size_t covered = 0;
  for (const auto& ctx : blk.contexts()) covered += ctx.cpumask.count();
  EXPECT_EQ(covered, 8u);
  // A core's completions run inside its own context mask by default.
  const auto& ctx = blk.context_for(5);
  EXPECT_TRUE(ctx.cpumask.test(5));
}

TEST(BlkMq, CompletionLandsOnApplicationCoreWithoutTheCountermeasure) {
  LinuxNode node;
  linuxk::BlkMq blk(*node.kernel, 4);
  SimTime done;
  int phase = 0;
  spawn_script(
      *node.kernel,
      [&](os::ThreadContext& ctx) {
        if (phase++ == 0) {
          ctx.compute(10_ms);
          return true;
        }
        done = ctx.now();
        return false;
      },
      os::SpawnAttrs{.affinity = test::one_core(node.topo, 6)});
  node.sim.run_until(1_ms);
  // I/O submitted from core 6: completion must run within core 6's ctx.
  // Fire enough completions to wrap the round robin onto core 6 itself.
  const auto mask_cores = blk.context_for(6).cpumask.to_vector();
  for (std::size_t i = 0; i < mask_cores.size(); ++i) {
    blk.complete_io(6, 80_us);
  }
  node.sim.run_until(1_s);
  EXPECT_EQ(blk.completions_on(6), 1u);
  EXPECT_EQ(done, 10_ms + 80_us);  // the app thread paid for it
}

TEST(BlkMq, BindingContextsStopsApplicationCoreCompletions) {
  LinuxNode node;
  linuxk::BlkMq blk(*node.kernel, 4);
  blk.bind_all_contexts(node.topo.system_cores());
  for (int i = 0; i < 32; ++i) {
    blk.complete_io(/*submitting_core=*/6, 80_us);
  }
  node.sim.run_until(1_s);
  for (hw::CoreId c : node.topo.application_cores().to_vector()) {
    EXPECT_EQ(blk.completions_on(c), 0u) << "core " << c;
  }
  EXPECT_EQ(blk.completions_on(0) + blk.completions_on(1), 32u);
}

// ---- workqueues ----

TEST(Workqueue, BoundWorkerRunsOnItsCpu) {
  LinuxNode node;
  linuxk::WorkqueuePool wq(*node.kernel, 1);
  wq.queue_work_on(5, linuxk::WorkItem{.duration = 100_us, .label = "w"});
  wq.queue_work_on(5, linuxk::WorkItem{.duration = 100_us, .label = "w"});
  node.sim.run_until(100_ms);
  EXPECT_EQ(wq.executed(), 2u);
  EXPECT_EQ(wq.bound_worker_count(), 1u);
  // Kernel-thread time lands in the core's kernel accounting.
  EXPECT_GE(node.kernel->accounting(5).kernel, 200_us);
}

TEST(Workqueue, UnboundWorkersFollowTheirCpumask) {
  LinuxNode node;
  linuxk::WorkqueuePool wq(*node.kernel, 2);
  // The countermeasure: unbound kworkers to the assistant cores.
  wq.set_unbound_cpumask(node.topo.system_cores());
  for (int i = 0; i < 10; ++i) {
    wq.queue_unbound(linuxk::WorkItem{.duration = 200_us, .label = "u"});
  }
  node.sim.run_until(1_s);
  EXPECT_EQ(wq.executed(), 10u);
  SimTime app_kernel;
  for (hw::CoreId c : node.topo.application_cores().to_vector()) {
    app_kernel += node.kernel->accounting(c).kernel;
  }
  EXPECT_EQ(app_kernel, SimTime::zero());
  EXPECT_GE(node.kernel->accounting(0).kernel +
                node.kernel->accounting(1).kernel,
            2_ms);
}

TEST(Workqueue, UnboundWorkCanLandOnAppCoresByDefault) {
  // Without the countermeasure, the unbound mask covers the whole chip:
  // an FWQ-busy application core can be preempted by kworker activity.
  LinuxNode node;
  linuxk::WorkqueuePool wq(*node.kernel, 4);
  SimTime done;
  int phase = 0;
  for (hw::CoreId c : node.topo.application_cores().to_vector()) {
    spawn_script(
        *node.kernel,
        [&, first = true](os::ThreadContext& ctx) mutable {
          if (first) {
            first = false;
            ctx.compute(20_ms);
            return true;
          }
          done = std::max(done, ctx.now());
          return false;
        },
        os::SpawnAttrs{.affinity = test::one_core(node.topo, c)});
  }
  (void)phase;
  node.sim.run_until(1_ms);
  for (int i = 0; i < 8; ++i) {
    wq.queue_unbound(linuxk::WorkItem{.duration = 300_us, .label = "u"});
  }
  node.sim.run_until(1_s);
  EXPECT_EQ(wq.executed(), 8u);
  // With all app cores busy and only 2 idle system cores, at least some
  // kworker time competed with application threads.
  SimTime total_app_kernel;
  for (hw::CoreId c : node.topo.application_cores().to_vector()) {
    total_app_kernel += node.kernel->accounting(c).kernel;
  }
  // (Scheduling may favor the idle system cores; assert the mechanism by
  // checking the mask covers app cores rather than a racy placement.)
  EXPECT_TRUE(wq.unbound_cpumask().intersects(
      node.topo.application_cores()));
}

TEST(Workqueue, KworkerTimeIsTracedAsKworkerActivity) {
  LinuxNode node;  // trace enabled by the fixture
  linuxk::WorkqueuePool wq(*node.kernel, 1);
  wq.queue_work_on(4, linuxk::WorkItem{.duration = 150_us, .label = "x"});
  node.sim.run_until(100_ms);
  EXPECT_GE(
      node.trace.total_duration(sim::TraceCategory::kKworker, 4),
      150_us);
}

}  // namespace
}  // namespace hpcos
