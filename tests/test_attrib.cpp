// Attribution engine: span self-time math, folded-stack round trip, the
// campaign attribution ledger (reconciliation + analytic expectations),
// and the BSP straggler / critical-path report.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/bsp.h"
#include "cluster/fwq_campaign.h"
#include "cluster/machine_noise.h"
#include "cluster/osenv.h"
#include "noise/profiles.h"
#include "obs/attrib/critical_path.h"
#include "obs/attrib/ledger.h"
#include "obs/attrib/report.h"
#include "obs/bench_report.h"
#include "sim/folded_stack.h"
#include "sim/span_tree.h"

namespace hpcos {
namespace {

sim::TraceRecord span_rec(std::int64_t us, std::int64_t dur_us,
                          const std::string& label, std::uint64_t span,
                          std::uint64_t parent, hw::CoreId core = 0,
                          sim::TraceCategory cat = sim::TraceCategory::kUser) {
  return sim::TraceRecord{.time = SimTime::us(us),
                          .core = core,
                          .category = cat,
                          .duration = SimTime::us(dur_us),
                          .label = label,
                          .span = span,
                          .parent = parent};
}

// ------------------------------------------------------ span self time

TEST(SpanSelfTime, NestedTreeSubtractsDirectChildrenOnly) {
  // root(100) -> a(30) -> a1(10), root -> b(20). Self times: root 50
  // (grandchild a1 must not be subtracted twice), a 20, a1 10, b 20.
  const std::vector<sim::TraceRecord> recs = {
      span_rec(0, 100, "root", 1, 0),
      span_rec(0, 30, "a", 2, 1),
      span_rec(5, 10, "a1", 3, 2),
      span_rec(40, 20, "b", 4, 1),
  };
  const sim::SpanForest forest(recs);
  ASSERT_EQ(forest.roots().size(), 1u);
  EXPECT_EQ(forest.self_time(0), SimTime::us(50));
  EXPECT_EQ(forest.self_time(1), SimTime::us(20));
  EXPECT_EQ(forest.self_time(2), SimTime::us(10));
  EXPECT_EQ(forest.self_time(3), SimTime::us(20));
  EXPECT_EQ(forest.total_self_time(), SimTime::us(100));
}

TEST(SpanSelfTime, ZeroLengthChildrenLeaveSelfTimeIntact) {
  const std::vector<sim::TraceRecord> recs = {
      span_rec(0, 40, "root", 1, 0),
      span_rec(10, 0, "marker", 2, 1),
      span_rec(20, 0, "marker", 3, 1),
  };
  const sim::SpanForest forest(recs);
  EXPECT_EQ(forest.self_time(0), SimTime::us(40));
  EXPECT_EQ(forest.total_self_time(), SimTime::us(40));
}

TEST(SpanSelfTime, ChildrenExactlyFillingRootZeroSelfTime) {
  const std::vector<sim::TraceRecord> recs = {
      span_rec(0, 50, "root", 1, 0),
      span_rec(0, 20, "a", 2, 1),
      span_rec(20, 30, "b", 3, 1),
  };
  const sim::SpanForest forest(recs);
  EXPECT_EQ(forest.self_time(0), SimTime::zero());
  // Sum of self times still covers the whole tree once.
  EXPECT_EQ(forest.total_self_time(), SimTime::us(50));
}

TEST(SpanSelfTime, OverfullParentClampsAtZeroNotNegative) {
  // Child longer than parent (recording artifact): self clamps at zero.
  const std::vector<sim::TraceRecord> recs = {
      span_rec(0, 10, "root", 1, 0),
      span_rec(0, 15, "long-child", 2, 1),
  };
  const sim::SpanForest forest(recs);
  EXPECT_EQ(forest.self_time(0), SimTime::zero());
  EXPECT_EQ(forest.self_time(1), SimTime::us(15));
}

TEST(SpanSelfTime, OutOfOrderEmissionAndOrphansStillLink) {
  // Children recorded before their parent, plus an orphan whose parent id
  // was evicted: the orphan is promoted to a root.
  const std::vector<sim::TraceRecord> recs = {
      span_rec(5, 10, "child", 2, 1),
      span_rec(0, 30, "root", 1, 0),
      span_rec(50, 8, "orphan", 7, 99),  // span 99 never recorded
  };
  const sim::SpanForest forest(recs);
  ASSERT_EQ(forest.roots().size(), 2u);
  // Roots are time-ordered: root(at 0) then orphan(at 50).
  EXPECT_EQ(forest.records()[forest.roots()[0]].label, "root");
  EXPECT_EQ(forest.records()[forest.roots()[1]].label, "orphan");
  EXPECT_EQ(forest.self_time(1), SimTime::us(20));  // 30 - 10
  EXPECT_EQ(forest.self_time(2), SimTime::us(8));
}

TEST(SpanSelfTime, RootsByTrackGroupsAndOrdersIterations) {
  std::vector<sim::TraceRecord> recs;
  // Track 3 gets two "it" roots out of time order; track 5 gets one.
  recs.push_back(span_rec(100, 10, "it", 2, 0, 3));
  recs.push_back(span_rec(0, 10, "it", 1, 0, 3));
  recs.push_back(span_rec(50, 10, "it", 4, 0, 5));
  recs.push_back(span_rec(60, 10, "other", 5, 0, 3));
  const sim::SpanForest forest(recs);
  const auto tracks = forest.roots_by_track("it");
  ASSERT_EQ(tracks.size(), 2u);
  ASSERT_EQ(tracks.at(3).size(), 2u);
  EXPECT_EQ(forest.records()[tracks.at(3)[0]].time, SimTime::zero());
  EXPECT_EQ(forest.records()[tracks.at(3)[1]].time, SimTime::us(100));
  ASSERT_EQ(tracks.at(5).size(), 1u);
}

// ------------------------------------------------------- folded stacks

TEST(FoldedStack, RoundTripsThroughValidator) {
  const std::vector<sim::TraceRecord> recs = {
      span_rec(0, 100, "root", 1, 0),
      span_rec(0, 30, "a", 2, 1),
      span_rec(5, 10, "a1", 3, 2),
      span_rec(40, 20, "b", 4, 1),
      // Second tree with the same shape aggregates into the same paths.
      span_rec(200, 100, "root", 5, 0),
      span_rec(200, 30, "a", 6, 5),
  };
  const std::string text = sim::folded_stack(recs);
  EXPECT_EQ(sim::validate_folded_stack(text), "");
  const auto entries = sim::parse_folded_stack(text);
  ASSERT_EQ(entries.size(), 4u);  // root, root;a, root;a;a1, root;b
  // Lexicographically sorted, ns self-time values, aggregated across trees.
  EXPECT_EQ(entries[0].first, "root");
  EXPECT_EQ(entries[0].second, 50'000 + 70'000);
  EXPECT_EQ(entries[1].first, "root;a");
  EXPECT_EQ(entries[1].second, 20'000 + 30'000);
  EXPECT_EQ(entries[2].first, "root;a;a1");
  EXPECT_EQ(entries[2].second, 10'000);
  EXPECT_EQ(entries[3].first, "root;b");
  EXPECT_EQ(entries[3].second, 20'000);
  // Folding the parse result's source again is a fixed point.
  EXPECT_EQ(sim::folded_stack(recs), text);
}

TEST(FoldedStack, OmitsZeroSelfFramesAndSanitizesLabels) {
  const std::vector<sim::TraceRecord> recs = {
      span_rec(0, 50, "root;tricky", 1, 0),  // ';' must not split frames
      span_rec(0, 50, "all", 2, 1),          // fills root: root self == 0
  };
  const std::string text = sim::folded_stack(recs);
  EXPECT_EQ(sim::validate_folded_stack(text), "");
  const auto entries = sim::parse_folded_stack(text);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "root:tricky;all");
  EXPECT_EQ(entries[0].second, 50'000);
}

TEST(FoldedStack, EmptyAndInvalidTexts) {
  EXPECT_EQ(sim::folded_stack(std::vector<sim::TraceRecord>{}), "");
  EXPECT_EQ(sim::validate_folded_stack(""), "");
  EXPECT_NE(sim::validate_folded_stack("onlystack\n"), "");
  EXPECT_NE(sim::validate_folded_stack("a 0\n"), "");
  EXPECT_NE(sim::validate_folded_stack("a 1\na 2\n"), "");   // duplicate
  EXPECT_NE(sim::validate_folded_stack("b 1\na 2\n"), "");   // unsorted
  EXPECT_NE(sim::validate_folded_stack("a;;b 3\n"), "");     // empty frame
}

// ------------------------------------------------- attribution ledger

TEST(AttribLedger, ReconcilesWithCampaignStatsBelow1e9) {
  const auto profile = noise::fugaku_linux_profile();
  cluster::FwqCampaignConfig config;
  config.nodes = 48;
  config.app_cores = 16;
  config.duration_per_core = SimTime::sec(60);
  config.seed = Seed{11};
  const auto result = cluster::run_fwq_campaign(profile, config);
  ASSERT_EQ(result.per_source.size(), profile.sources.size() + 1);
  EXPECT_EQ(result.per_source.back().source, "jitter-floor");

  const auto ledger =
      obs::attrib::build_ledger(result, profile, config);
  EXPECT_GT(ledger.total_stolen_us, 0.0);
  // The acceptance invariant: the per-source sums reproduce the Eq. 2
  // noise-rate total to floating-point reassociation error.
  EXPECT_LT(ledger.reconciliation_error, 1e-9);

  double sum = 0.0;
  for (const auto& row : ledger.rows) sum += row.stolen_us;
  EXPECT_NEAR(sum, ledger.total_stolen_us,
              1e-9 * std::abs(ledger.total_stolen_us));
  // Rows are sorted by descending theft.
  for (std::size_t i = 1; i < ledger.rows.size(); ++i) {
    EXPECT_GE(ledger.rows[i - 1].stolen_us, ledger.rows[i].stolen_us);
  }
}

TEST(AttribLedger, ReconcilesWithAllCoresJitterPath) {
  // Countermeasures off reintroduces kAllCores sources (PMU reads, TLBI)
  // and the per-core jitter path; the identity must survive both.
  const auto profile =
      noise::fugaku_linux_profile(noise::Countermeasures{
          .bind_daemons = false, .stop_pmu_reads = false,
          .suppress_global_tlbi = false});
  cluster::FwqCampaignConfig config;
  config.nodes = 24;
  config.app_cores = 12;
  config.duration_per_core = SimTime::sec(30);
  config.all_cores_jitter_sigma = 0.3;
  config.seed = Seed{12};
  const auto result = cluster::run_fwq_campaign(profile, config);
  const auto ledger =
      obs::attrib::build_ledger(result, profile, config);
  EXPECT_LT(ledger.reconciliation_error, 1e-9);
}

TEST(AttribLedger, PerSourceTotalsIndependentOfHostThreads) {
  const auto profile = noise::fugaku_linux_profile();
  cluster::FwqCampaignConfig config;
  config.nodes = 40;
  config.app_cores = 8;
  config.duration_per_core = SimTime::sec(30);
  config.nodes_per_shard = 8;
  config.seed = Seed{13};
  config.threads = 1;
  const auto serial = cluster::run_fwq_campaign(profile, config);
  config.threads = 4;
  const auto parallel = cluster::run_fwq_campaign(profile, config);
  ASSERT_EQ(serial.per_source.size(), parallel.per_source.size());
  for (std::size_t i = 0; i < serial.per_source.size(); ++i) {
    EXPECT_EQ(serial.per_source[i].source, parallel.per_source[i].source);
    EXPECT_EQ(serial.per_source[i].stolen_us,
              parallel.per_source[i].stolen_us);  // byte-identical
    EXPECT_EQ(serial.per_source[i].hit_iterations,
              parallel.per_source[i].hit_iterations);
    EXPECT_EQ(serial.per_source[i].worst_us, parallel.per_source[i].worst_us);
  }
}

TEST(AttribLedger, MeasurementTracksAnalyticExpectation) {
  // One ungated metronome source with constant duration: measured theft
  // must sit within Poisson counting noise of the analytic expectation.
  noise::AnalyticNoiseProfile profile;
  profile.name = "synthetic-metronome";
  profile.sources.push_back(noise::NoiseSourceSpec{
      .name = "metronome",
      .kind = noise::SourceKind::kDaemon,
      .scope = noise::SourceScope::kPerNodeRandomCore,
      .mean_interval = SimTime::from_ms(10),
      .duration = {.median = SimTime::from_us(50)}});
  cluster::FwqCampaignConfig config;
  config.nodes = 16;
  config.app_cores = 4;
  config.duration_per_core = SimTime::sec(60);
  config.seed = Seed{14};
  const auto result = cluster::run_fwq_campaign(profile, config);
  const auto ledger =
      obs::attrib::build_ledger(result, profile, config);
  const auto& row = ledger.rows.front();
  EXPECT_EQ(row.source, "metronome");
  // E[stolen] = 16 nodes * (60 s / 10 ms) * 50 us = 4.8e6 us; ~96k hits
  // so counting noise is well under 5%.
  EXPECT_NEAR(row.expected_us, 4.8e6, 1.0);
  EXPECT_LT(std::abs(row.divergence), 0.05);
  EXPECT_FALSE(row.flagged);
}

TEST(AttribLedger, TraceLedgerAggregatesSelfTimePerSourceAndCore) {
  const std::vector<sim::TraceRecord> recs = {
      span_rec(0, 100, "fault:major", 1, 0, 2,
               sim::TraceCategory::kPageFault),
      span_rec(10, 40, "tlb:flush", 2, 1, 2,
               sim::TraceCategory::kTlbShootdown),
      span_rec(200, 30, "fault:major", 3, 0, 4,
               sim::TraceCategory::kPageFault),
      // Plain (span == 0) events are not part of the span ledger.
      sim::TraceRecord{.time = SimTime::us(1), .core = 2,
                       .duration = SimTime::us(999), .label = "noise"},
  };
  const auto rows = obs::attrib::trace_ledger(recs);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].source, "fault:major");
  EXPECT_EQ(rows[0].core, 2);
  EXPECT_DOUBLE_EQ(rows[0].self_time_us, 60.0);  // 100 - 40 child
  EXPECT_EQ(rows[1].source, "tlb:flush");
  EXPECT_DOUBLE_EQ(rows[1].self_time_us, 40.0);
  EXPECT_EQ(rows[2].source, "fault:major");
  EXPECT_EQ(rows[2].core, 4);
  EXPECT_DOUBLE_EQ(rows[2].self_time_us, 30.0);
}

// ------------------------------------------- straggler / critical path

class NoisyStep final : public cluster::Workload {
 public:
  std::string name() const override { return "noisy-step"; }
  int iterations() const override { return 8; }
  cluster::RankWork rank_work(int, const cluster::JobConfig&,
                              const cluster::OsEnvironment&) const override {
    cluster::RankWork w;
    w.compute = SimTime::from_ms(5);
    w.allreduces = 1;
    w.allreduce_bytes = 1024;
    w.barriers = 1;
    return w;
  }
  cluster::InitWork init_work(const cluster::JobConfig&,
                              const cluster::OsEnvironment&) const override {
    cluster::InitWork init;
    init.serial_setup = SimTime::from_ms(1);
    return init;
  }
};

cluster::OsEnvironment single_loud_source_env(const std::string& source) {
  auto env = cluster::make_fugaku_linux_env();
  noise::AnalyticNoiseProfile profile;
  profile.name = "single-loud-source";
  profile.sources.push_back(noise::NoiseSourceSpec{
      .name = source,
      .kind = noise::SourceKind::kDaemon,
      .scope = noise::SourceScope::kPerNodeRandomCore,
      .mean_interval = SimTime::from_ms(5),
      .duration = {.median = SimTime::from_us(300)}});
  env.profile = profile;
  return env;
}

TEST(StragglerReport, NamesInjectedDominantSource) {
  // Single loud source: every iteration's noise wait must be tagged with
  // it, and the report's overall dominant source must name it.
  const auto env = single_loud_source_env("loud-daemon");
  const cluster::JobConfig job{.nodes = 64, .ranks_per_node = 4,
                               .threads_per_rank = 12};
  NoisyStep w;
  sim::TraceBuffer buf(1 << 14);
  for (int track = 0; track < 3; ++track) {
    cluster::BspEngine engine(env, job,
                              Seed{20 + static_cast<std::uint64_t>(track)});
    engine.set_trace(&buf, static_cast<hw::CoreId>(track));
    engine.run(w);
  }
  const auto report =
      obs::attrib::build_straggler_report(buf.snapshot());
  EXPECT_EQ(report.tracks, 3u);
  EXPECT_EQ(report.iterations.size(), 8u);
  EXPECT_EQ(report.dominant_source, "loud-daemon");
  for (const auto& it : report.iterations) {
    EXPECT_GT(it.duration_us, 0.0);
    EXPECT_GE(it.duration_us, it.min_us);
    if (it.noise_wait_us > 0.0) {
      EXPECT_EQ(it.dominant_source, "loud-daemon");
      EXPECT_EQ(it.dominant_category, sim::TraceCategory::kDaemon);
      EXPECT_GT(it.dominant_us, 0.0);
      EXPECT_LE(it.dominant_us, it.noise_wait_us + 1e-9);
    }
    // The compute window is recorded for the overlay.
    EXPECT_GT(it.compute_end, it.compute_begin);
  }
  ASSERT_EQ(report.by_source.size(), 1u);
  EXPECT_EQ(report.by_source[0].source, "loud-daemon");
  EXPECT_GT(report.by_source[0].iterations, 0u);
}

TEST(StragglerReport, AnchorShiftsPhaseSpansOntoWallClock) {
  const auto env = single_loud_source_env("loud-daemon");
  const cluster::JobConfig job{.nodes = 16, .ranks_per_node = 4,
                               .threads_per_rank = 12};
  NoisyStep w;
  sim::TraceBuffer zero_buf(1 << 12);
  sim::TraceBuffer anchored_buf(1 << 12);
  const SimTime anchor = SimTime::from_ms(123);
  cluster::BspEngine a(env, job, Seed{33});
  a.set_trace(&zero_buf, 0);
  const auto ra = a.run(w);
  cluster::BspEngine b(env, job, Seed{33});
  b.set_trace(&anchored_buf, 0, anchor);
  const auto rb = b.run(w);
  EXPECT_EQ(ra.total, rb.total);  // anchoring is presentation-only
  const auto za = zero_buf.snapshot();
  const auto zb = anchored_buf.snapshot();
  ASSERT_EQ(za.size(), zb.size());
  for (std::size_t i = 0; i < za.size(); ++i) {
    EXPECT_EQ(za[i].time + anchor, zb[i].time) << za[i].label;
    EXPECT_EQ(za[i].duration, zb[i].duration);
    EXPECT_EQ(za[i].label, zb[i].label);
  }
}

TEST(StragglerReport, OverlayFindsNodeEventsInComputeWindow) {
  // Hand-built two-track trace: track 0 is the straggler with a compute
  // window of [0, 60) us; node events inside the window must be overlaid
  // longest first, events outside must not.
  sim::TraceBuffer buf(32);
  const auto it0 = buf.new_span();
  buf.record(span_rec(0, 100, "bsp:iteration", it0, 0, 0,
                      sim::TraceCategory::kCollective));
  buf.record(span_rec(0, 60, "bsp:compute", buf.new_span(), it0, 0));
  const auto wait = buf.new_span();
  buf.record(span_rec(60, 40, "bsp:noise-wait", wait, it0, 0,
                      sim::TraceCategory::kScheduler));
  buf.record(span_rec(60, 35, "noise:loud-daemon", buf.new_span(), wait, 0,
                      sim::TraceCategory::kDaemon));
  const auto it1 = buf.new_span();
  buf.record(span_rec(0, 80, "bsp:iteration", it1, 0, 1,
                      sim::TraceCategory::kCollective));

  auto report = obs::attrib::build_straggler_report(buf.snapshot());
  ASSERT_EQ(report.iterations.size(), 1u);
  EXPECT_EQ(report.iterations[0].track, 0);
  EXPECT_DOUBLE_EQ(report.iterations[0].excess_us, 20.0);
  EXPECT_EQ(report.iterations[0].dominant_source, "loud-daemon");

  std::vector<sim::TraceRecord> node_records;
  node_records.push_back(
      sim::TraceRecord{.time = SimTime::us(10), .core = 7,
                       .category = sim::TraceCategory::kKworker,
                       .duration = SimTime::us(5),
                       .label = "kworker/u:3"});
  node_records.push_back(  // zero-duration marker inside the window
      sim::TraceRecord{.time = SimTime::us(30), .core = 7,
                       .category = sim::TraceCategory::kTimerTick,
                       .label = "tick"});
  node_records.push_back(  // outside the compute window
      sim::TraceRecord{.time = SimTime::us(200), .core = 7,
                       .category = sim::TraceCategory::kDaemon,
                       .duration = SimTime::us(50),
                       .label = "late-daemon"});
  node_records.push_back(  // straddles the window end: intersects
      sim::TraceRecord{.time = SimTime::us(55), .core = 7,
                       .category = sim::TraceCategory::kBlkMq,
                       .duration = SimTime::us(20),
                       .label = "blk-mq"});
  obs::attrib::overlay_noise_events(report, node_records);
  const auto& overlay = report.iterations[0].overlay;
  ASSERT_EQ(overlay.size(), 3u);
  EXPECT_EQ(overlay[0].label, "blk-mq");  // longest first
  EXPECT_EQ(overlay[1].label, "kworker/u:3");
  EXPECT_EQ(overlay[2].label, "tick");

  obs::attrib::overlay_noise_events(report, node_records, /*max_events=*/1);
  ASSERT_EQ(report.iterations[0].overlay.size(), 1u);
  EXPECT_EQ(report.iterations[0].overlay[0].label, "blk-mq");
}

TEST(StragglerReport, CoreAwareOverlayStopsCrossRankMisattribution) {
  // Two rank tracks sharing one node: track 0 owns cores {0..3}, track 1
  // owns cores {4..7}. Track 0 is the straggler; a per-core event on one
  // of track 1's cores falls inside track 0's compute window, so the
  // time-only match misattributes it to track 0. The core-aware match
  // must keep it out while still overlaying track 0's own cores and
  // machine-wide (kInvalidCore) events.
  sim::TraceBuffer buf(16);
  const auto it0 = buf.new_span();
  buf.record(span_rec(0, 100, "bsp:iteration", it0, 0, 0,
                      sim::TraceCategory::kCollective));
  buf.record(span_rec(0, 60, "bsp:compute", buf.new_span(), it0, 0));
  const auto it1 = buf.new_span();
  buf.record(span_rec(0, 80, "bsp:iteration", it1, 0, 1,
                      sim::TraceCategory::kCollective));
  buf.record(span_rec(0, 50, "bsp:compute", buf.new_span(), it1, 1));
  auto report = obs::attrib::build_straggler_report(buf.snapshot());
  ASSERT_EQ(report.iterations.size(), 1u);
  ASSERT_EQ(report.iterations[0].track, 0);

  std::vector<sim::TraceRecord> node_records;
  node_records.push_back(  // on track 1's core, inside both windows
      sim::TraceRecord{.time = SimTime::us(10), .core = 5,
                       .category = sim::TraceCategory::kDaemon,
                       .duration = SimTime::us(30),
                       .label = "other-ranks-daemon"});
  node_records.push_back(  // on track 0's own core
      sim::TraceRecord{.time = SimTime::us(20), .core = 2,
                       .category = sim::TraceCategory::kKworker,
                       .duration = SimTime::us(8),
                       .label = "own-kworker"});
  node_records.push_back(  // machine-wide event: hits every rank
      sim::TraceRecord{.time = SimTime::us(30), .core = hw::kInvalidCore,
                       .category = sim::TraceCategory::kTlbShootdown,
                       .duration = SimTime::us(5),
                       .label = "tlbi-broadcast"});

  // Time-only matching attributes all three to the straggler.
  obs::attrib::overlay_noise_events(report, node_records);
  ASSERT_EQ(report.iterations[0].overlay.size(), 3u);
  EXPECT_EQ(report.iterations[0].overlay[0].label, "other-ranks-daemon");

  // Core-aware matching drops the other rank's per-core event.
  obs::attrib::TrackCoreMap track_cores;
  hw::CpuSet cores0(8);
  hw::CpuSet cores1(8);
  for (hw::CoreId c = 0; c < 4; ++c) cores0.set(c);
  for (hw::CoreId c = 4; c < 8; ++c) cores1.set(c);
  track_cores.emplace(0, cores0);
  track_cores.emplace(1, cores1);
  obs::attrib::overlay_noise_events(report, node_records, /*max_events=*/8,
                                    &track_cores);
  ASSERT_EQ(report.iterations[0].overlay.size(), 2u);
  EXPECT_EQ(report.iterations[0].overlay[0].label, "own-kworker");
  EXPECT_EQ(report.iterations[0].overlay[1].label, "tlbi-broadcast");

  // A track without a map entry keeps the time-only match.
  obs::attrib::TrackCoreMap only_other;
  only_other.emplace(1, cores1);
  obs::attrib::overlay_noise_events(report, node_records, /*max_events=*/8,
                                    &only_other);
  EXPECT_EQ(report.iterations[0].overlay.size(), 3u);
}

TEST(AttributedSampler, MatchesPlainSamplerDrawForDraw) {
  const auto profile = noise::fugaku_linux_profile(
      noise::Countermeasures{.bind_daemons = false});
  RngStream rng_a(Seed{77}, 1);
  RngStream rng_b(Seed{77}, 1);
  cluster::MachineNoiseSampler plain(profile, 64, 48, rng_a);
  cluster::MachineNoiseSampler attributed(profile, 64, 48, rng_b);
  for (int i = 0; i < 200; ++i) {
    const SimTime window = SimTime::from_ms(2 + i % 7);
    const SimTime d = plain.sample_global_delay(window);
    const auto s = attributed.sample_global_delay_attributed(window);
    ASSERT_EQ(d, s.delay) << "draw " << i;
    EXPECT_LE(s.worst_event, s.delay);
    if (s.delay > SimTime::zero()) {
      EXPECT_FALSE(s.source.empty());
    } else {
      EXPECT_TRUE(s.source.empty());
    }
  }
}

TEST(AttribReport, MetricsValidateAsBenchReport) {
  const auto profile = noise::fugaku_linux_profile();
  cluster::FwqCampaignConfig config;
  config.nodes = 8;
  config.app_cores = 4;
  config.duration_per_core = SimTime::sec(10);
  config.seed = Seed{15};
  const auto result = cluster::run_fwq_campaign(profile, config);
  const auto ledger =
      obs::attrib::build_ledger(result, profile, config);

  const auto env = single_loud_source_env("loud-daemon");
  NoisyStep w;
  sim::TraceBuffer buf(1 << 12);
  cluster::BspEngine engine(env,
                            cluster::JobConfig{.nodes = 16,
                                               .ranks_per_node = 4,
                                               .threads_per_rank = 12},
                            Seed{16});
  engine.set_trace(&buf, 0);
  engine.run(w);
  const auto straggler =
      obs::attrib::build_straggler_report(buf.snapshot());

  obs::BenchReport report("attrib_unit", true, 15);
  obs::attrib::add_ledger_metrics(report, ledger);
  obs::attrib::add_straggler_metrics(report, straggler);
  EXPECT_GT(report.metric_count(), 6u);
  EXPECT_EQ(obs::validate_bench_report(report.to_json()), "");
}

}  // namespace
}  // namespace hpcos
