// Unit tests: FWQ machinery, the paper's noise metrics (Eq. 1 / Eq. 2),
// duration distributions, analytic samplers, the canonical profiles, and
// DES-vs-analytic consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "kernel_test_util.h"
#include "noise/analytic.h"
#include "noise/background.h"
#include "noise/fwq.h"
#include "noise/metrics.h"
#include "noise/profiles.h"

namespace hpcos::noise {
namespace {

using namespace hpcos::literals;

TEST(Metrics, NoiseStatsBasics) {
  const std::vector<SimTime> ts{SimTime::from_ms(6.5), SimTime::from_ms(6.5),
                                SimTime::from_ms(7.0), SimTime::from_ms(6.6)};
  const NoiseStats s = compute_noise_stats(ts);
  EXPECT_EQ(s.t_min, SimTime::from_ms(6.5));
  EXPECT_EQ(s.t_max, SimTime::from_ms(7.0));
  EXPECT_EQ(s.max_noise_length, 500_us);
  // Eq. 2: mean of (Ti - Tmin)/Tmin = (0 + 0 + 0.5/6.5 + 0.1/6.5)/4.
  EXPECT_NEAR(s.noise_rate, (0.5 / 6.5 + 0.1 / 6.5) / 4.0, 1e-9);
  EXPECT_EQ(s.samples, 4u);
}

TEST(Metrics, ZeroLengthIterationsYieldZeroRate) {
  // A zero-work FWQ quantum produces a legitimate all-zero trace; Eq. 2
  // normalizes by T_min, so the rate is undefined there and must come
  // back as zero instead of aborting the process.
  const std::vector<SimTime> zeros(8, SimTime::zero());
  const NoiseStats s = compute_noise_stats(zeros);
  EXPECT_EQ(s.t_min, SimTime::zero());
  EXPECT_EQ(s.t_max, SimTime::zero());
  EXPECT_EQ(s.max_noise_length, SimTime::zero());
  EXPECT_DOUBLE_EQ(s.noise_rate, 0.0);
  EXPECT_EQ(s.samples, 8u);
  // T_min == 0 with nonzero spread: still finite, rate reported as zero.
  const std::vector<SimTime> mixed{SimTime::zero(), 1_ms};
  const NoiseStats m = compute_noise_stats(mixed);
  EXPECT_EQ(m.max_noise_length, 1_ms);
  EXPECT_DOUBLE_EQ(m.noise_rate, 0.0);
  EXPECT_EQ(m.samples, 2u);
}

TEST(Metrics, NoiseLengthSeries) {
  const std::vector<SimTime> ts{7_ms, 6_ms, 8_ms};
  const auto ls = noise_lengths(ts);
  ASSERT_EQ(ls.size(), 3u);
  EXPECT_EQ(ls[0], 1_ms);
  EXPECT_EQ(ls[1], SimTime::zero());
  EXPECT_EQ(ls[2], 2_ms);
}

TEST(Metrics, Eq1ReproducesPaperExample) {
  // §2: N = 100,000 threads, S = 250 us, one noise group with L = 1 ms and
  // I = 500 s slows the application by ~20%.
  const NoiseGroup g{.length = 1_ms, .interval = 500_s};
  const double delay =
      bsp_noise_delay(std::span(&g, 1), SimTime::us(250), 100'000);
  EXPECT_NEAR(delay, 0.20, 0.05);
}

TEST(Metrics, HitProbabilitySaturatesAtFugakuScale) {
  // §6.3: with N = 7,630,848 even a once-per-600 s noise hits some thread
  // within a sync interval with probability ~1.
  const double p = hit_probability(SimTime::us(250), 600_s, 7'630'848);
  EXPECT_GT(p, 0.95);
}

TEST(Metrics, HitProbabilityMonotoneInThreads) {
  double prev = 0.0;
  for (std::uint64_t n : {10u, 100u, 1000u, 10000u}) {
    const double p = hit_probability(1_ms, 10_s, n);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(hit_probability(10_s, 1_s, 3), 1.0);  // S >= I
}

TEST(DurationDist, ConstantWhenSigmaZero) {
  DurationDist d{.median = 50_us, .sigma = 0.0, .min = SimTime::zero(),
                 .max = 1_ms};
  RngStream rng(Seed{1}, 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 50_us);
  EXPECT_EQ(d.mean(), 50_us);
}

TEST(DurationDist, RespectsClampAndMedian) {
  DurationDist d{.median = 50_us, .sigma = 0.7, .min = 10_us, .max = 200_us};
  RngStream rng(Seed{2}, 0);
  int below_median = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const SimTime v = d.sample(rng);
    EXPECT_GE(v, 10_us);
    EXPECT_LE(v, 200_us);
    if (v < 50_us) ++below_median;
  }
  // Median preserved within sampling error (clamping distorts slightly).
  EXPECT_NEAR(double(below_median) / n, 0.5, 0.06);
}

TEST(AnalyticSampler, QuietProfileReturnsExactQuantum) {
  AnalyticNoiseProfile p;
  AnalyticNodeSampler s(p, 48, RngStream(Seed{3}, 0));
  EXPECT_EQ(s.sample_iteration(SimTime::from_ms(6.5)), SimTime::from_ms(6.5));
  EXPECT_EQ(s.sample_rank_delay(1_ms, 48), SimTime::zero());
}

TEST(AnalyticSampler, PerCoreSourceMeanMatchesAnalyticRate) {
  AnalyticNoiseProfile p;
  p.sources.push_back(NoiseSourceSpec{
      .name = "s",
      .kind = SourceKind::kHardware,
      .scope = SourceScope::kPerCore,
      .mean_interval = 100_ms,
      .duration = DurationDist{.median = 50_us, .sigma = 0.0,
                               .min = SimTime::zero(), .max = 1_ms}});
  AnalyticNodeSampler s(p, 48, RngStream(Seed{4}, 0));
  const SimTime q = SimTime::from_ms(6.5);
  double total_extra_us = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    total_extra_us += (s.sample_iteration(q) - q).to_us();
  }
  // Expected extra per iteration: (6.5ms/100ms) * 50us = 3.25 us.
  EXPECT_NEAR(total_extra_us / n, 3.25, 0.3);
}

TEST(AnalyticSampler, PerNodeScopeDividesRateAcrossCores) {
  AnalyticNoiseProfile p;
  p.sources.push_back(NoiseSourceSpec{
      .name = "daemon",
      .kind = SourceKind::kDaemon,
      .scope = SourceScope::kPerNodeRandomCore,
      .mean_interval = 100_ms,
      .duration = DurationDist{.median = 50_us, .sigma = 0.0,
                               .min = SimTime::zero(), .max = 1_ms}});
  AnalyticNodeSampler s(p, 10, RngStream(Seed{5}, 0));
  const SimTime q = SimTime::from_ms(6.5);
  double total_extra_us = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    total_extra_us += (s.sample_iteration(q) - q).to_us();
  }
  // Per-core rate is 1/10th of the node rate: 0.325 us per iteration.
  EXPECT_NEAR(total_extra_us / n, 0.325, 0.08);
}

TEST(AnalyticSampler, NodeFractionGatesStragglers) {
  AnalyticNoiseProfile p;
  p.sources.push_back(NoiseSourceSpec{
      .name = "straggler",
      .kind = SourceKind::kDaemon,
      .scope = SourceScope::kPerNodeRandomCore,
      .mean_interval = 1_s,
      .duration = DurationDist{.median = 1_ms, .sigma = 0.0,
                               .min = SimTime::zero(), .max = 10_ms},
      .node_fraction = 0.25});
  int with = 0;
  const int nodes = 2000;
  for (int i = 0; i < nodes; ++i) {
    AnalyticNodeSampler s(p, 8, RngStream(Seed{6}, std::uint64_t(i)));
    if (!s.active_sources().empty()) ++with;
  }
  EXPECT_NEAR(double(with) / nodes, 0.25, 0.04);
}

TEST(AnalyticSampler, RankDelayGrowsWithThreadCount) {
  AnalyticNoiseProfile p = fugaku_linux_profile(Countermeasures{
      .bind_daemons = false});  // noisy profile
  double small = 0;
  double large = 0;
  AnalyticNodeSampler s1(p, 48, RngStream(Seed{7}, 1));
  AnalyticNodeSampler s2(p, 48, RngStream(Seed{7}, 2));
  for (int i = 0; i < 5000; ++i) {
    small += s1.sample_rank_delay(10_ms, 1).to_us();
    large += s2.sample_rank_delay(10_ms, 48).to_us();
  }
  EXPECT_GT(large, small * 4);
}

TEST(Profiles, BaselineQuieterThanAnyDisabledCountermeasure) {
  const auto base = fugaku_linux_profile(Countermeasures{});
  const auto no_daemons =
      fugaku_linux_profile(Countermeasures{.bind_daemons = false});
  EXPECT_LT(base.sources.size(), no_daemons.sources.size());

  // Estimate noise rates analytically: the daemon-unbound config must be
  // orders of magnitude noisier (Table 2: 3.79e-6 vs 9.94e-4).
  auto rate = [](const AnalyticNoiseProfile& p) {
    AnalyticNodeSampler s(p, 48, RngStream(Seed{8}, 0));
    const SimTime q = SimTime::from_ms(6.5);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += (s.sample_iteration(q) - q).ratio(q);
    }
    return sum / n;
  };
  const double r_base = rate(base);
  const double r_daemons = rate(no_daemons);
  EXPECT_LT(r_base, 3e-5);
  EXPECT_GT(r_daemons, 1e-4);
  EXPECT_GT(r_daemons, r_base * 20);
}

TEST(Profiles, McKernelProfilesQuieterThanLinux) {
  auto max_dur = [](const AnalyticNoiseProfile& p) {
    SimTime m = SimTime::zero();
    for (const auto& s : p.sources) m = std::max(m, s.duration.max);
    return m;
  };
  EXPECT_LT(max_dur(fugaku_mckernel_profile()),
            max_dur(fugaku_linux_profile()));
  EXPECT_LT(max_dur(ofp_mckernel_profile()), max_dur(ofp_linux_profile()));
  // OFP Linux is the jitteriest environment of the study (Fig. 4a).
  EXPECT_GT(max_dur(ofp_linux_profile()), 10_ms);
}

// ---- FWQ machinery on the DES ----

TEST(Fwq, RecordsConfiguredIterations) {
  test::MultiKernelNode node;
  FwqConfig cfg;
  cfg.work_quantum = 1_ms;
  cfg.iterations = 50;
  const auto traces =
      noise::run_fwq(*node.lwk, test::one_core(node.topo, 2), cfg);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].core, 2);
  EXPECT_EQ(traces[0].iteration_times.size(), 50u);
  for (const SimTime t : traces[0].iteration_times) EXPECT_EQ(t, 1_ms);
}

TEST(Fwq, DesAndAnalyticAgreeOnPerCoreSource) {
  // One deterministic per-core stall source; run the node DES and the
  // analytic sampler with the same parameters and compare noise rates.
  AnalyticNoiseProfile p;
  p.sources.push_back(NoiseSourceSpec{
      .name = "hw",
      .kind = SourceKind::kHardware,
      .scope = SourceScope::kPerCore,
      .mean_interval = 20_ms,
      .duration = DurationDist{.median = 30_us, .sigma = 0.0,
                               .min = SimTime::zero(), .max = 30_us}});

  test::LinuxNode node([&](linuxk::LinuxConfig& c) { c.profile = p; });
  FwqConfig cfg;
  cfg.work_quantum = SimTime::from_ms(6.5);
  cfg.iterations = 600;
  const auto traces =
      noise::run_fwq(*node.kernel, node.topo.application_cores(), cfg);
  const auto des = compute_noise_stats(traces);

  AnalyticNodeSampler sampler(p, 6, RngStream(Seed{9}, 0));
  std::vector<SimTime> synth;
  synth.reserve(3600);
  for (int i = 0; i < 3600; ++i) {
    synth.push_back(sampler.sample_iteration(cfg.work_quantum));
  }
  const auto ana = compute_noise_stats(synth);

  // Same order of magnitude (both are stochastic; the DES adds residual
  // ticks worth < 1e-6).
  EXPECT_NEAR(des.noise_rate, ana.noise_rate, ana.noise_rate * 0.5 + 1e-6);
  EXPECT_NEAR(des.max_noise_length.to_us(), ana.max_noise_length.to_us(),
              35.0);
}

}  // namespace
}  // namespace hpcos::noise
