// Host-side self-profiler (obs/prof) and its reporting glue.
//
// What must hold (DESIGN "Host-side self-profiling"):
//   * scope accounting closes: per-name self times subtract nested time,
//     sum(self) == sum of root durations, exactly;
//   * merged scope *counts* are a pure function of the simulated work —
//     bit-identical across host thread counts (times are host-dependent
//     and never asserted);
//   * the folded-stack view is valid flamegraph input and round-trips
//     through sim::parse_folded_stack;
//   * a disabled profiler records nothing;
//   * the DES queue telemetry / handler attribution, the scheduler
//     health counters, the memory counters, and the OpenMetrics round
//     trip of the profiler's deterministic face all behave.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "cluster/fwq_campaign.h"
#include "common/parallel.h"
#include "common/sim_time.h"
#include "noise/profiles.h"
#include "obs/prof/mem.h"
#include "obs/prof/prof.h"
#include "obs/prof_report.h"
#include "obs/registry.h"
#include "obs/timeseries/openmetrics.h"
#include "sim/folded_stack.h"
#include "sim/simulator.h"
#include "tools/cli_util.h"

namespace hpcos {
namespace {

namespace prof = obs::prof;

// Every test starts and ends with a quiesced, disabled, empty profiler so
// tests compose in any order within the shared test binary.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::set_enabled(false);
    prof::reset();
  }
  void TearDown() override {
    prof::set_enabled(false);
    prof::reset();
  }
};

std::map<std::string, std::uint64_t> scope_counts(const prof::Profile& p) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& s : p.scopes) counts[s.name] = s.count;
  return counts;
}

TEST_F(ProfTest, ScopeAccountingCloses) {
  prof::set_enabled(true);
  {
    PROF_SCOPE("t.root");
    { PROF_SCOPE("t.child"); }
    { PROF_SCOPE("t.child"); }
    {
      PROF_SCOPE("t.child");
      PROF_SCOPE("t.leaf");
    }
  }
  prof::set_enabled(false);
  const prof::Profile p = prof::collect();

  EXPECT_EQ(p.events, 5u);
  EXPECT_EQ(p.dropped, 0u);
  ASSERT_EQ(p.scopes.size(), 3u);

  const prof::ScopeStat* root = p.find("t.root");
  const prof::ScopeStat* child = p.find("t.child");
  const prof::ScopeStat* leaf = p.find("t.leaf");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(root->count, 1u);
  EXPECT_EQ(child->count, 3u);
  EXPECT_EQ(leaf->count, 1u);

  // Self subtracts nested time at every level; everything nests under the
  // one root instance, so the books must balance exactly.
  EXPECT_EQ(root->self_ns, root->total_ns - child->total_ns);
  EXPECT_EQ(child->self_ns, child->total_ns - leaf->total_ns);
  EXPECT_EQ(leaf->self_ns, leaf->total_ns);
  EXPECT_EQ(p.root_total_ns, root->total_ns);
  EXPECT_EQ(p.sum_self_ns(), p.root_total_ns);
}

TEST_F(ProfTest, DisabledProfilerRecordsNothing) {
  ASSERT_FALSE(prof::enabled());
  {
    PROF_SCOPE("t.invisible");
    { PROF_SCOPE("t.invisible.child"); }
  }
  const prof::Profile p = prof::collect();
  EXPECT_EQ(p.events, 0u);
  EXPECT_TRUE(p.scopes.empty());
  EXPECT_TRUE(p.folded.empty());
  EXPECT_EQ(p.root_total_ns, 0);
}

TEST_F(ProfTest, FoldedStackValidatesAndRoundTrips) {
  prof::set_enabled(true);
  {
    PROF_SCOPE("t.a");
    { PROF_SCOPE("t.b"); }
  }
  { PROF_SCOPE("t.a"); }
  prof::set_enabled(false);
  const prof::Profile p = prof::collect();

  const std::string folded = p.folded_text();
  EXPECT_EQ(sim::validate_folded_stack(folded), "");

  const auto parsed = sim::parse_folded_stack(folded);
  ASSERT_EQ(parsed.size(), p.folded.size());
  std::int64_t parsed_total = 0;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].first, p.folded[i].first);
    EXPECT_EQ(parsed[i].second, p.folded[i].second);
    parsed_total += parsed[i].second;
  }
  // Folded values are self times, so they sum to the same total the
  // ranked table accounts for (zero-self paths are omitted, not lost).
  EXPECT_EQ(parsed_total, p.sum_self_ns());

  bool found_nested = false;
  for (const auto& [path, value] : parsed) {
    if (path == "t.a;t.b") {
      found_nested = true;
      EXPECT_GE(value, 0);
    }
  }
  EXPECT_TRUE(found_nested);
}

TEST_F(ProfTest, CampaignScopeCountsIdenticalAcrossThreadCounts) {
  // The determinism contract, pointed at the profiler: the campaign's
  // scope fire counts (one fwq.shard per shard, one fwq.merge) must be
  // bit-identical whatever the host thread count. Times are not compared.
  const auto profile = noise::fugaku_linux_profile();
  auto run = [&](std::size_t threads) {
    prof::reset();
    prof::set_enabled(true);
    cluster::FwqCampaignConfig cfg;
    cfg.nodes = 48;
    cfg.app_cores = 8;
    cfg.duration_per_core = SimTime::sec(60);
    cfg.nodes_per_shard = 8;
    cfg.threads = threads;
    cfg.seed = Seed{0xBEEF};
    cluster::run_fwq_campaign(profile, cfg);
    prof::set_enabled(false);
    return scope_counts(prof::collect());
  };
  const auto serial = run(1);
  ASSERT_NE(serial.find("fwq.shard"), serial.end());
  EXPECT_EQ(serial.at("fwq.shard"), 6u);  // ceil(48 / 8)
  EXPECT_EQ(serial.at("fwq.merge"), 1u);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST_F(ProfTest, SimulatorQueueTelemetryAndHandlerAttribution) {
  prof::set_enabled(true);
  sim::Simulator s;

  std::size_t probe_max_depth = 0;
  std::size_t probe_calls = 0;
  s.set_depth_probe([&](SimTime, std::size_t depth) {
    ++probe_calls;
    probe_max_depth = std::max(probe_max_depth, depth);
  });

  s.schedule_after(SimTime::us(1), [] {}, "test.a");
  s.schedule_after(SimTime::us(2), [] {}, "test.a");
  const auto doomed = s.schedule_after(SimTime::us(3), [] {}, "test.b");
  EXPECT_TRUE(s.cancel(doomed));
  s.run_until(SimTime::us(10));
  prof::set_enabled(false);

  const sim::QueueTelemetry& qt = s.queue_telemetry();
  EXPECT_EQ(qt.pushes, 3u);
  EXPECT_EQ(qt.pops, 2u);
  EXPECT_EQ(qt.cancels, 1u);
  EXPECT_EQ(qt.skipped, 1u);  // the cancelled heap entry, discarded on pop
  EXPECT_EQ(qt.max_depth, 3u);
  EXPECT_GE(probe_calls, 3u);  // after each push and each executed event
  EXPECT_EQ(probe_max_depth, 3u);

  const auto handlers = s.handler_stats();
  ASSERT_EQ(handlers.size(), 1u);  // test.b never fired
  EXPECT_EQ(handlers[0].tag, "test.a");
  EXPECT_EQ(handlers[0].fired, 2u);
  EXPECT_GE(handlers[0].host_ns, 0);

  // The same firings appear as des.fire.<tag> profiler scopes.
  const auto counts = scope_counts(prof::collect());
  ASSERT_NE(counts.find("des.fire.test.a"), counts.end());
  EXPECT_EQ(counts.at("des.fire.test.a"), 2u);
  EXPECT_EQ(counts.count("des.fire.test.b"), 0u);
}

TEST_F(ProfTest, SchedulerHealthCountersAndTimeline) {
  auto sum_pushes = [] {
    std::uint64_t n = 0;
    for (const auto& h : parallel_worker_health()) n += h.pushes;
    return n;
  };
  auto sum_chunks = [] {
    std::uint64_t n = 0;
    for (const auto& h : parallel_worker_health()) n += h.chunks;
    return n;
  };

  const std::uint64_t pushes_before = sum_pushes();
  const std::uint64_t chunks_before = sum_chunks();
  set_scheduler_timeline(true);
  std::atomic<std::uint64_t> acc{0};
  parallel_for(64, [&](std::size_t i) {
    acc.fetch_add(i, std::memory_order_relaxed);
  }, 4);
  const auto depths = scheduler_depth_samples();
  set_scheduler_timeline(false);

  EXPECT_EQ(acc.load(), 64u * 63u / 2u);
  // Health counters are cumulative across the process; the run must have
  // pushed at least one chunk and executed them all.
  EXPECT_GT(sum_pushes(), pushes_before);
  EXPECT_GE(sum_chunks() - chunks_before, sum_pushes() - pushes_before);
  // One depth-sample batch per parallel_for (one sample per slot).
  EXPECT_GE(depths.size(), 1u);
  // Disabling clears the rings.
  EXPECT_TRUE(scheduler_depth_samples().empty());
  EXPECT_TRUE(scheduler_park_events().empty());
}

TEST_F(ProfTest, MemoryCountersAndHostSample) {
  prof::MemoryCounter* c = prof::memory_counter("test.prof.mem");
  ASSERT_NE(c, nullptr);
  // Find-or-create returns the same stable pointer.
  EXPECT_EQ(prof::memory_counter("test.prof.mem"), c);
  const std::uint64_t bytes_before = c->bytes();
  const std::uint64_t events_before = c->events();
  c->add(123);
  c->add(77);
  EXPECT_EQ(c->bytes() - bytes_before, 200u);
  EXPECT_EQ(c->events() - events_before, 2u);

  bool found = false;
  for (const auto& view : prof::memory_counters()) {
    if (view.name == "test.prof.mem") {
      found = true;
      EXPECT_EQ(view.bytes, c->bytes());
      EXPECT_EQ(view.events, c->events());
    }
  }
  EXPECT_TRUE(found);

  const prof::HostMemory mem = prof::sample_host_memory();
  ASSERT_TRUE(mem.valid);  // procfs is always there on the CI hosts
  EXPECT_GT(mem.rss_bytes, 0u);
  EXPECT_GE(mem.peak_rss_bytes, mem.rss_bytes);
  EXPECT_GE(mem.vm_bytes, mem.rss_bytes);
}

TEST_F(ProfTest, ProfileCountsRoundTripThroughOpenMetrics) {
  prof::set_enabled(true);
  {
    PROF_SCOPE("t.om.root");
    { PROF_SCOPE("t.om.child"); }
    { PROF_SCOPE("t.om.child"); }
  }
  prof::set_enabled(false);
  const prof::Profile p = prof::collect();

  obs::Registry registry;
  obs::fold_profile_registry(registry, p);
  ASSERT_NE(registry.find_counter("prof.t.om.child.count"), nullptr);
  EXPECT_EQ(registry.find_counter("prof.t.om.child.count")->value(), 2u);
  EXPECT_EQ(registry.find_counter("prof.events")->value(), p.events);

  // Exposition -> strict parse -> exact counter recovery (counts are
  // integers, so the round trip is lossless).
  const std::string text = obs::ts::openmetrics_text(registry);
  const auto samples = obs::ts::parse_openmetrics(text);
  std::map<std::string, double> parsed;
  for (const auto& s : samples) {
    if (s.metric == "hpcos_counter_total") parsed[s.label("name")] = s.value;
  }
  const obs::Snapshot snap = registry.snapshot();
  ASSERT_FALSE(snap.counters.empty());
  for (const auto& entry : snap.counters) {
    ASSERT_NE(parsed.find(entry.name), parsed.end()) << entry.name;
    EXPECT_EQ(parsed.at(entry.name), static_cast<double>(entry.value))
        << entry.name;
  }
}

TEST(CliArgs, ParsesFlagsAndValues) {
  char a0[] = "tool";
  char a1[] = "--folded";
  char a2[] = "out.folded";
  char a3[] = "--verbose";
  std::vector<char*> remaining{a0, a1, a2, a3};

  std::string folded;
  bool verbose = false;
  tools::CliArgs cli("usage: tool [--folded <path>] [--verbose]");
  cli.add_value("--folded", &folded).add_flag("--verbose", &verbose);
  EXPECT_TRUE(cli.parse(remaining));
  EXPECT_EQ(folded, "out.folded");
  EXPECT_TRUE(verbose);
}

TEST(CliArgs, RejectsUnknownArgument) {
  char a0[] = "tool";
  char a1[] = "--nope";
  std::vector<char*> remaining{a0, a1};
  tools::CliArgs cli("usage: tool");
  EXPECT_FALSE(cli.parse(remaining));
}

TEST(CliArgs, RejectsValueFlagWithoutValue) {
  char a0[] = "tool";
  char a1[] = "--folded";
  std::vector<char*> remaining{a0, a1};
  std::string folded;
  tools::CliArgs cli("usage: tool [--folded <path>]");
  cli.add_value("--folded", &folded);
  EXPECT_FALSE(cli.parse(remaining));
  EXPECT_TRUE(folded.empty());
}

}  // namespace
}  // namespace hpcos
