// Shared fixtures: small, quiet node assemblies for kernel unit tests.
//
// Tests use a reduced topology (2 system + 6 application cores, A64FX-like
// flags) and *empty noise profiles* so timing assertions are exact; the
// noise-profile machinery is tested separately with explicit sources.
#pragma once

#include <functional>
#include <memory>

#include "hw/platform.h"
#include "ihk/ihk.h"
#include "linuxk/linux_kernel.h"
#include "mckernel/mckernel.h"
#include "mckernel/offload.h"
#include "oskernel/stall_bus.h"
#include "sim/simulator.h"

namespace hpcos::test {

inline hw::NodeTopology small_topology() {
  hw::NodeTopology t("test-node", /*physical_cores=*/8, /*smt_ways=*/1);
  const auto n = static_cast<std::size_t>(t.logical_cores());
  t.add_numa_domain(hw::NumaDomain{
      .id = 0, .cores = hw::CpuSet::range(n, 2, 7),
      .memory_bytes = 8ull << 30});
  t.add_numa_domain(hw::NumaDomain{
      .id = 1, .cores = hw::CpuSet::range(n, 0, 1),
      .memory_bytes = 2ull << 30, .is_system_domain = true});
  t.set_core_partition(hw::CpuSet::range(n, 0, 1), hw::CpuSet::range(n, 2, 7));
  return t;
}

// Quiet Linux config: no noise sources, nohz_full application cores,
// broadcast-patched TLBI (Fugaku-like defaults without background noise).
inline linuxk::LinuxConfig quiet_linux_config(const hw::NodeTopology& topo) {
  linuxk::LinuxConfig c;
  c.nohz_full_cores = topo.application_cores();
  c.system_cores = topo.system_cores();
  c.base_page_size = hw::PageSize::k64K;
  c.tlb_flush = linuxk::TlbFlushMode::kBroadcastPatched;
  c.tlb = hw::TlbParams{.l1_entries = 16,
                        .l2_entries = 1024,
                        .has_broadcast_tlbi = true,
                        .broadcast_stall_per_flush = SimTime::ns(200)};
  return c;
}

// A Linux-only node owning every core.
struct LinuxNode {
  hw::NodeTopology topo = small_topology();
  sim::Simulator sim;
  sim::TraceBuffer trace{8192};
  std::unique_ptr<linuxk::LinuxKernel> kernel;

  explicit LinuxNode(std::function<void(linuxk::LinuxConfig&)> tweak = {}) {
    linuxk::LinuxConfig cfg = quiet_linux_config(topo);
    if (tweak) tweak(cfg);
    kernel = std::make_unique<linuxk::LinuxKernel>(
        sim, topo, topo.all_cores(), std::move(cfg), Seed{1234}, &trace);
    kernel->boot();
  }
};

// A multi-kernel node: Linux on the system cores, McKernel (via IHK) on
// the application cores, offload path wired.
struct MultiKernelNode {
  hw::NodeTopology topo = small_topology();
  sim::Simulator sim;
  sim::TraceBuffer trace{8192};
  os::ChipStallBus bus;
  std::unique_ptr<linuxk::LinuxKernel> linux;
  std::unique_ptr<ihk::IhkManager> ihk_mgr;
  int os_id = -1;
  std::unique_ptr<mck::McKernel> lwk;
  std::unique_ptr<mck::SyscallOffloader> offloader;

  explicit MultiKernelNode(
      std::function<void(mck::McKernelConfig&)> tweak_lwk = {},
      std::function<void(linuxk::LinuxConfig&)> tweak_linux = {}) {
    linuxk::LinuxConfig lcfg = quiet_linux_config(topo);
    if (tweak_linux) tweak_linux(lcfg);
    linux = std::make_unique<linuxk::LinuxKernel>(
        sim, topo, topo.system_cores(), std::move(lcfg), Seed{77}, &trace,
        &bus);
    linux->boot();

    ihk_mgr = std::make_unique<ihk::IhkManager>(
        sim, topo, /*host_cores=*/topo.all_cores(),
        /*protected_cores=*/topo.system_cores(),
        /*host_memory=*/8ull << 30);
    HPCOS_CHECK(ihk_mgr->partition().reserve_cpus(topo.application_cores()));
    HPCOS_CHECK(ihk_mgr->partition().reserve_memory(6ull << 30));
    os_id = ihk_mgr->create_os_instance(topo.application_cores(),
                                        6ull << 30);
    HPCOS_CHECK(os_id >= 0);

    mck::McKernelConfig mcfg = mck::McKernelConfig::defaults();
    mcfg.hw_noise = noise::AnalyticNoiseProfile{};  // quiet for tests
    if (tweak_lwk) tweak_lwk(mcfg);
    lwk = std::make_unique<mck::McKernel>(sim, topo,
                                          topo.application_cores(),
                                          std::move(mcfg), Seed{88}, &trace,
                                          &bus);
    lwk->boot();
    ihk_mgr->boot(os_id);

    auto& inst = ihk_mgr->instance(os_id);
    offloader = std::make_unique<mck::SyscallOffloader>(
        *lwk, *linux, *inst.to_host, *inst.to_lwk, topo.system_cores());
  }
};

// Thread body driven by a lambda: return false to exit.
class ScriptBody final : public os::ThreadBody {
 public:
  using Step = std::function<bool(os::ThreadContext&)>;
  explicit ScriptBody(Step step) : step_(std::move(step)) {}
  void step(os::ThreadContext& ctx) override {
    if (!step_(ctx)) ctx.exit();
  }

 private:
  Step step_;
};

inline os::ThreadId spawn_script(os::NodeKernel& k, ScriptBody::Step step,
                                 os::SpawnAttrs attrs = {}) {
  return k.spawn(std::make_unique<ScriptBody>(std::move(step)),
                 std::move(attrs));
}

inline hw::CpuSet one_core(const hw::NodeTopology& topo, hw::CoreId id) {
  return hw::CpuSet::of(static_cast<std::size_t>(topo.logical_cores()), {id});
}

}  // namespace hpcos::test
