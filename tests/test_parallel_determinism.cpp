// Determinism property tests for the host-parallel cluster paths.
//
// DESIGN §6 promises that results are independent of host thread
// scheduling: per-entity counter-based RNG streams plus index-addressed
// result slots merged in rank order. These tests pin that down: the
// campaign engine and the BSP relative-performance driver must produce
// byte-identical results for threads ∈ {1, 4, default_parallelism()} and
// across repeated runs at the same seed.
//
// This file is also compiled into the hpcos_parallel_tests executable
// (ctest label "parallel"), which the ThreadSanitizer job runs:
//   cmake -B build-tsan -DHPCOS_SANITIZE=thread && ctest -L parallel
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cluster/bsp.h"
#include "cluster/config_json.h"
#include "cluster/fwq_campaign.h"
#include "cluster/osenv.h"
#include "common/histogram.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/sketch.h"
#include "common/stats.h"
#include "noise/profiles.h"
#include "obs/bench_report.h"
#include "obs/live/span_sampler.h"
#include "obs/prof/prof.h"
#include "obs/runlog.h"
#include "sim/trace.h"

namespace hpcos::cluster {
namespace {

using namespace hpcos::literals;

void expect_identical(const FwqCampaignResult& a, const FwqCampaignResult& b) {
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.stats.t_min, b.stats.t_min);
  EXPECT_EQ(a.stats.t_max, b.stats.t_max);
  EXPECT_EQ(a.stats.max_noise_length, b.stats.max_noise_length);
  EXPECT_EQ(a.stats.samples, b.stats.samples);
  // Bitwise double comparison on purpose: the merge order is fixed by
  // shard boundaries, not by the host thread count.
  EXPECT_DOUBLE_EQ(a.stats.noise_rate, b.stats.noise_rate);
  ASSERT_EQ(a.worst_node_max_us.size(), b.worst_node_max_us.size());
  EXPECT_EQ(a.worst_node_max_us, b.worst_node_max_us);
  ASSERT_EQ(a.cdf.num_bins(), b.cdf.num_bins());
  EXPECT_EQ(a.cdf.total_count(), b.cdf.total_count());
  EXPECT_DOUBLE_EQ(a.cdf.observed_min(), b.cdf.observed_min());
  EXPECT_DOUBLE_EQ(a.cdf.observed_max(), b.cdf.observed_max());
  for (std::size_t i = 0; i < a.cdf.num_bins(); ++i) {
    ASSERT_EQ(a.cdf.bin_count(i), b.cdf.bin_count(i)) << "bin " << i;
  }
}

FwqCampaignConfig campaign_config(std::size_t threads) {
  FwqCampaignConfig cfg;
  cfg.nodes = 300;  // not a multiple of nodes_per_shard: ragged last shard
  cfg.app_cores = 16;
  cfg.duration_per_core = 120_s;
  cfg.worst_nodes_to_keep = 50;
  cfg.threads = threads;
  cfg.seed = Seed{0xDE7E};
  return cfg;
}

TEST(ParallelDeterminism, FwqCampaignIdenticalAcrossThreadCounts) {
  // The OFP Linux profile exercises every source scope, gated straggler
  // sources, and the jitter floor.
  const auto profile = noise::ofp_linux_profile();
  const auto serial = run_fwq_campaign(profile, campaign_config(1));
  const auto four = run_fwq_campaign(profile, campaign_config(4));
  const auto dflt =
      run_fwq_campaign(profile, campaign_config(default_parallelism()));
  expect_identical(serial, four);
  expect_identical(serial, dflt);
}

TEST(ParallelDeterminism, FwqCampaignIdenticalAcrossRuns) {
  const auto profile = noise::fugaku_linux_profile();
  const auto a = run_fwq_campaign(profile, campaign_config(4));
  const auto b = run_fwq_campaign(profile, campaign_config(4));
  expect_identical(a, b);
}

TEST(ParallelDeterminism, JitteredAllCoresCampaignIdenticalAcrossThreads) {
  // The per-core jitter knob adds extra lognormal draws inside kAllCores
  // hits; the draws come from the per-node stream, so the result must stay
  // independent of the host thread count — and sigma = 0 must reproduce
  // the historical identical-stall model exactly.
  // Fugaku's Linux profile carries the kAllCores sources (sar-monitor,
  // tcs-pmu-read, tlbi-broadcast) that the knob applies to.
  const auto profile = noise::fugaku_linux_profile();
  auto jittered = [](std::size_t threads) {
    auto cfg = campaign_config(threads);
    cfg.all_cores_jitter_sigma = 0.4;
    return cfg;
  };
  const auto serial = run_fwq_campaign(profile, jittered(1));
  const auto four = run_fwq_campaign(profile, jittered(4));
  const auto dflt =
      run_fwq_campaign(profile, jittered(default_parallelism()));
  expect_identical(serial, four);
  expect_identical(serial, dflt);

  // The knob is not a no-op: the jittered campaign diverges from the
  // sigma = 0 model...
  const auto baseline = run_fwq_campaign(profile, campaign_config(1));
  EXPECT_NE(serial.stats.noise_rate, baseline.stats.noise_rate);
  // ...and sigma = 0 (the default) is bit-identical to the baseline.
  auto zero = campaign_config(1);
  zero.all_cores_jitter_sigma = 0.0;
  expect_identical(run_fwq_campaign(profile, zero), baseline);
}

TEST(ParallelDeterminism, RunLedgerDeterministicLineIdenticalAcrossThreads) {
  // The run ledger's determinism contract (obs/runlog): everything outside
  // the "host" member is bit-identical across host thread counts. Build a
  // full record — config hash, metric snapshot, deterministic line — from
  // the same campaign run at 1/2/8 threads with deliberately different
  // host-side inputs (timestamp, host.* metrics) and require byte
  // equality of the deterministic half.
  const auto profile = noise::ofp_linux_profile();
  auto record_at = [&](std::size_t threads, double fake_wall_s,
                       const std::string& timestamp) {
    auto cfg = campaign_config(threads);
    const auto result = run_fwq_campaign(profile, cfg);
    obs::BenchReport report("fwq_determinism", /*quick=*/true,
                            cfg.seed.value);
    report.add_metric("fwq.noise_rate", "ratio", result.stats.noise_rate);
    report.add_metric("fwq.t_max_ms", "ms", result.stats.t_max.to_ms());
    report.add_metric("fwq.p99_us", "us", result.cdf.quantile(0.99));
    report.add_metric("host.wall_s", "s", fake_wall_s);  // host-dependent
    report.set_config(to_config_json(cfg));
    return obs::make_run_record(report, report.config(), timestamp);
  };
  const JsonValue serial = record_at(1, 0.5, "2026-08-08T00:00:00Z");
  const JsonValue two = record_at(2, 1.5, "2026-08-08T01:00:00Z");
  const JsonValue eight = record_at(8, 2.5, "2026-08-08T02:00:00Z");

  // config_hash: `threads` is a host-execution knob and never reaches it.
  EXPECT_EQ(serial.at("config_hash").as_string(),
            two.at("config_hash").as_string());
  EXPECT_EQ(serial.at("config_hash").as_string(),
            eight.at("config_hash").as_string());
  // Deterministic line: byte-identical despite different host sections.
  const std::string line = obs::deterministic_line(serial);
  EXPECT_EQ(line, obs::deterministic_line(two));
  EXPECT_EQ(line, obs::deterministic_line(eight));
  EXPECT_EQ(obs::deterministic_digest_hex(serial),
            obs::deterministic_digest_hex(eight));
  // The full lines DO differ (host sections disagree) — the split is
  // doing real work.
  EXPECT_NE(obs::run_record_line(serial), obs::run_record_line(eight));
}

TEST(ParallelDeterminism, TimelineIdenticalAcrossThreadCounts) {
  // The streaming timeline (per-source series, quantile sketches, node x
  // time heatmap) accumulates shard-locally and merges in shard order:
  // every bucket, sketch quantile, and heatmap cell must be bit-identical
  // for threads in {1, 2, 8}.
  const auto profile = noise::fugaku_linux_profile();
  auto with_timeline = [](std::size_t threads) {
    auto cfg = campaign_config(threads);
    cfg.timeline = true;
    return cfg;
  };
  const auto serial = run_fwq_campaign(profile, with_timeline(1));
  const auto two = run_fwq_campaign(profile, with_timeline(2));
  const auto eight = run_fwq_campaign(profile, with_timeline(8));
  expect_identical(serial, two);
  expect_identical(serial, eight);

  auto expect_timeline_identical = [](const FwqCampaignResult& a,
                                      const FwqCampaignResult& b) {
    ASSERT_TRUE(a.timeline.enabled);
    ASSERT_TRUE(b.timeline.enabled);
    ASSERT_EQ(a.timeline.per_source.size(), b.timeline.per_source.size());
    for (std::size_t i = 0; i < a.timeline.per_source.size(); ++i) {
      const auto& sa = a.timeline.per_source[i];
      const auto& sb = b.timeline.per_source[i];
      ASSERT_EQ(sa.resolution(), sb.resolution()) << "slot " << i;
      ASSERT_EQ(sa.bucket_count(), sb.bucket_count()) << "slot " << i;
      for (std::size_t j = 0; j < sa.bucket_count(); ++j) {
        // EXPECT_EQ on doubles on purpose: bitwise identity.
        ASSERT_EQ(sa.bucket(j).count, sb.bucket(j).count) << i << "/" << j;
        ASSERT_EQ(sa.bucket(j).sum, sb.bucket(j).sum) << i << "/" << j;
        ASSERT_EQ(sa.bucket(j).min, sb.bucket(j).min) << i << "/" << j;
        ASSERT_EQ(sa.bucket(j).max, sb.bucket(j).max) << i << "/" << j;
      }
      const auto& ka = a.timeline.sketches[i];
      const auto& kb = b.timeline.sketches[i];
      ASSERT_EQ(ka.count(), kb.count()) << "slot " << i;
      ASSERT_EQ(ka.bucket_count(), kb.bucket_count()) << "slot " << i;
      for (double q : {0.5, 0.99, 0.999}) {
        ASSERT_EQ(ka.quantile(q), kb.quantile(q)) << "slot " << i;
      }
    }
    const auto& ga = a.timeline.heatmap;
    const auto& gb = b.timeline.heatmap;
    ASSERT_EQ(ga.rows(), gb.rows());
    ASSERT_EQ(ga.cols(), gb.cols());
    for (std::size_t r = 0; r < ga.rows(); ++r) {
      for (std::size_t c = 0; c < ga.cols(); ++c) {
        ASSERT_EQ(ga.cell(r, c), gb.cell(r, c)) << r << "/" << c;
      }
    }
  };
  expect_timeline_identical(serial, two);
  expect_timeline_identical(serial, eight);
}

TEST(ParallelDeterminism, RelativePerformanceIdenticalAcrossThreadCounts) {
  class TinyWorkload final : public Workload {
   public:
    std::string name() const override { return "tiny"; }
    int iterations() const override { return 6; }
    RankWork rank_work(int, const JobConfig&,
                       const OsEnvironment&) const override {
      RankWork w;
      w.compute = SimTime::ms(5);
      w.allreduces = 1;
      w.allreduce_bytes = 4096;
      return w;
    }
  };
  const auto lin = make_ofp_linux_env();
  const auto mck = make_ofp_mckernel_env();
  const JobConfig job{.nodes = 128, .ranks_per_node = 16,
                      .threads_per_rank = 16};
  TinyWorkload w;
  const auto serial =
      relative_performance(w, lin, mck, job, /*trials=*/8, Seed{31}, 1);
  const auto four =
      relative_performance(w, lin, mck, job, /*trials=*/8, Seed{31}, 4);
  const auto dflt = relative_performance(w, lin, mck, job, /*trials=*/8,
                                         Seed{31}, default_parallelism());
  EXPECT_DOUBLE_EQ(serial.mean_ratio, four.mean_ratio);
  EXPECT_DOUBLE_EQ(serial.stddev_ratio, four.stddev_ratio);
  EXPECT_DOUBLE_EQ(serial.mean_ratio, dflt.mean_ratio);
  EXPECT_DOUBLE_EQ(serial.stddev_ratio, dflt.stddev_ratio);
}

TEST(ParallelDeterminism, NestedCampaignMergesIdenticalAcrossThreadCounts) {
  // A campaign whose per-shard fn itself calls parallel_for (the shape
  // run_plan + relative_performance now execute via the work-stealing
  // scheduler): inner results land in index-addressed slots, shard
  // accumulators fold them in item order, and shards merge in shard
  // order — so Histogram, OnlineStats, and QuantileSketch must all be
  // bit-identical across host thread counts.
  struct Merged {
    LogHistogram hist{1000.0, 1e6, 1024};
    OnlineStats stats;
    QuantileSketch sketch{0.01};
  };
  auto run = [](std::size_t threads) {
    const std::size_t shards = 7;
    const std::size_t per_shard = 141;  // not a chunk multiple: ragged
    std::vector<Merged> accs(shards);
    parallel_for(
        shards,
        [&](std::size_t sh) {
          std::vector<double> vals(per_shard);
          parallel_for(
              per_shard,
              [&](std::size_t i) {
                RngStream rng(Seed{0xABCD}, sh * 1000 + i);
                vals[i] = rng.lognormal(8.0, 1.3);
              },
              threads);
          for (double v : vals) {
            accs[sh].hist.add(v);
            accs[sh].stats.add(v);
            accs[sh].sketch.add(v);
          }
        },
        threads);
    Merged m;
    for (const auto& acc : accs) {
      m.hist.merge(acc.hist);
      m.stats.merge(acc.stats);
      m.sketch.merge(acc.sketch);
    }
    return m;
  };
  const Merged serial = run(1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const Merged par = run(threads);
    ASSERT_EQ(par.hist.total_count(), serial.hist.total_count());
    EXPECT_DOUBLE_EQ(par.hist.observed_min(), serial.hist.observed_min());
    EXPECT_DOUBLE_EQ(par.hist.observed_max(), serial.hist.observed_max());
    for (std::size_t i = 0; i < serial.hist.num_bins(); ++i) {
      ASSERT_EQ(par.hist.bin_count(i), serial.hist.bin_count(i))
          << "threads " << threads << " bin " << i;
    }
    EXPECT_EQ(par.stats.count(), serial.stats.count());
    // EXPECT_EQ on doubles on purpose: bitwise identity.
    EXPECT_EQ(par.stats.mean(), serial.stats.mean());
    EXPECT_EQ(par.stats.stddev(), serial.stats.stddev());
    EXPECT_EQ(par.stats.min(), serial.stats.min());
    EXPECT_EQ(par.stats.max(), serial.stats.max());
    EXPECT_EQ(par.sketch.count(), serial.sketch.count());
    EXPECT_EQ(par.sketch.bucket_count(), serial.sketch.bucket_count());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(par.sketch.quantile(q), serial.sketch.quantile(q))
          << "threads " << threads << " q " << q;
    }
  }
}

TEST(ParallelDeterminism, NestedRelativePerformanceIdenticalAcrossThreads) {
  // run_plan's composition: an outer parallel_for over figure points
  // whose fn calls relative_performance, whose trials loop is itself a
  // parallel_for. Previously the inner loop fell back to serial inside a
  // worker; now both levels run on the scheduler, and every row must
  // stay bit-identical for any (outer, inner) host thread combination.
  class TinyWorkload final : public Workload {
   public:
    std::string name() const override { return "tiny-nested"; }
    int iterations() const override { return 4; }
    RankWork rank_work(int, const JobConfig&,
                       const OsEnvironment&) const override {
      RankWork w;
      w.compute = SimTime::ms(5);
      w.allreduces = 1;
      w.allreduce_bytes = 4096;
      return w;
    }
  };
  const auto lin = make_ofp_linux_env();
  const auto mck = make_ofp_mckernel_env();
  auto run = [&](std::size_t outer_threads, std::size_t inner_threads) {
    std::vector<RelativeResult> rows(4);
    TinyWorkload w;
    parallel_for(
        rows.size(),
        [&](std::size_t p) {
          const JobConfig job{.nodes = 32 << p, .ranks_per_node = 16,
                              .threads_per_rank = 16};
          rows[p] = relative_performance(w, lin, mck, job, /*trials=*/5,
                                         Seed{0xF1E + p}, inner_threads);
        },
        outer_threads);
    return rows;
  };
  const auto serial = run(1, 1);
  const std::vector<std::pair<std::size_t, std::size_t>> combos{
      {2, 2}, {8, 2}, {2, 8}};
  for (const auto& [outer, inner] : combos) {
    const auto par = run(outer, inner);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t p = 0; p < serial.size(); ++p) {
      EXPECT_DOUBLE_EQ(par[p].mean_ratio, serial[p].mean_ratio)
          << outer << "x" << inner << " row " << p;
      EXPECT_DOUBLE_EQ(par[p].stddev_ratio, serial[p].stddev_ratio)
          << outer << "x" << inner << " row " << p;
    }
  }
}

TEST(ParallelDeterminism, ProfilerCountsIdenticalUnderNestedParallelFor) {
  // The profiler's per-thread ring buffers written from inside a nested
  // parallel_for — concurrent single-writer appends plus the release/
  // acquire size handshake collect() reads. This is the surface the
  // ThreadSanitizer job must watch (ctest -L parallel under
  // -DHPCOS_SANITIZE=thread), and the count half of the determinism
  // contract: merged scope counts are bit-identical for any host thread
  // count; times are host-dependent and not compared.
  auto run = [](std::size_t threads) {
    obs::prof::reset();
    obs::prof::set_enabled(true);
    parallel_for(
        12,
        [&](std::size_t) {
          PROF_SCOPE("det.outer");
          parallel_for(
              8,
              [&](std::size_t j) {
                PROF_SCOPE("det.inner");
                volatile double sink = 0.0;
                for (std::size_t k = 0; k < 50 + j; ++k) sink += double(k);
              },
              threads);
        },
        threads);
    obs::prof::set_enabled(false);
    std::map<std::string, std::uint64_t> counts;
    for (const auto& s : obs::prof::collect().scopes) {
      counts[s.name] = s.count;
    }
    return counts;
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.at("det.outer"), 12u);
  ASSERT_EQ(serial.at("det.inner"), 96u);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
  obs::prof::reset();
}

TEST(ParallelDeterminism, HistogramShardMergeEqualsSinglePass) {
  // Shard-and-merge (what the campaign does per node shard) must be
  // indistinguishable from one serial pass.
  RngStream rng(Seed{77}, 0);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.lognormal(8.0, 1.5));
  }
  LogHistogram whole(1000.0, 1e6, 2048);
  for (double v : values) whole.add(v);

  LogHistogram merged(1000.0, 1e6, 2048);
  const std::size_t shard_size = 311;  // ragged shards on purpose
  for (std::size_t begin = 0; begin < values.size(); begin += shard_size) {
    LogHistogram shard(1000.0, 1e6, 2048);
    const std::size_t end = std::min(begin + shard_size, values.size());
    for (std::size_t i = begin; i < end; ++i) shard.add(values[i]);
    merged.merge(shard);
  }

  EXPECT_EQ(merged.total_count(), whole.total_count());
  EXPECT_DOUBLE_EQ(merged.observed_min(), whole.observed_min());
  EXPECT_DOUBLE_EQ(merged.observed_max(), whole.observed_max());
  for (std::size_t i = 0; i < whole.num_bins(); ++i) {
    ASSERT_EQ(merged.bin_count(i), whole.bin_count(i)) << "bin " << i;
  }
}

// Synthetic per-node span trees (4 records each: root, two children, one
// grandchild) for the sampled-tracer determinism witness below.
std::vector<sim::TraceRecord> sampler_trace(std::uint64_t node,
                                            std::size_t trees) {
  std::vector<sim::TraceRecord> records;
  std::uint64_t next_span = 1;
  for (std::size_t i = 0; i < trees; ++i) {
    const std::uint64_t root = next_span++;
    const std::uint64_t child_a = next_span++;
    const std::uint64_t child_b = next_span++;
    const std::uint64_t leaf = next_span++;
    const auto t0 =
        SimTime::us(static_cast<std::int64_t>(500 * i + 13 * node));
    const std::int64_t dur =
        static_cast<std::int64_t>(30 + (i * 11 + node * 5) % 90);
    records.push_back({t0, hw::CoreId{0}, sim::TraceCategory::kSyscallOffload,
                       SimTime::us(dur), "offload.write", root, 0});
    records.push_back({t0 + SimTime::us(1), hw::CoreId{0},
                       sim::TraceCategory::kSyscallOffload,
                       SimTime::us(dur / 3), "ikc.request", child_a, root});
    records.push_back({t0 + SimTime::us(2), hw::CoreId{1},
                       sim::TraceCategory::kSyscall, SimTime::us(dur / 6),
                       "proxy.exec", leaf, child_a});
    records.push_back({t0 + SimTime::us(4), hw::CoreId{0},
                       sim::TraceCategory::kSyscallOffload,
                       SimTime::us(dur / 3), "ikc.reply", child_b, root});
  }
  return records;
}

TEST(ParallelDeterminism, SampledSpanTraceIdenticalAcrossThreadCounts) {
  // The sampler's contract (obs/live/span_sampler.h): sample_node is a
  // pure function of (config, node, records) and aggregation happens in
  // node-index order, so the whole sampled trace — kept span sequence,
  // counts, and every sketch quantile — must be bit-identical no matter
  // how many host threads ran the per-node sampling.
  namespace live = obs::live;
  constexpr std::size_t kNodes = 48;
  live::SpanSamplerConfig cfg;
  cfg.seed = 0xBEEF;
  cfg.rate = 0.5;
  cfg.max_roots_per_node = 12;

  const auto sample_all = [&](std::size_t threads) {
    std::vector<live::NodeSample> slots(kNodes);
    parallel_for(
        kNodes,
        [&](std::size_t node) {
          slots[node] = live::sample_node(
              cfg, node, sampler_trace(node, 40 + node % 7));
        },
        threads);
    return live::aggregate_samples(slots);
  };

  const live::SampledTrace serial = sample_all(1);
  const live::SampledTrace two = sample_all(2);
  const live::SampledTrace eight = sample_all(8);

  const auto expect_identical = [&](const live::SampledTrace& a,
                                    const live::SampledTrace& b) {
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.roots_seen, b.roots_seen);
    EXPECT_EQ(a.roots_kept, b.roots_kept);
    EXPECT_EQ(a.records_kept, b.records_kept);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      ASSERT_EQ(a.records[i].span, b.records[i].span) << "record " << i;
      ASSERT_EQ(a.records[i].time, b.records[i].time) << "record " << i;
      ASSERT_EQ(a.records[i].label, b.records[i].label) << "record " << i;
    }
    ASSERT_EQ(a.sketches.size(), b.sketches.size());
    for (const auto& [label, sketch] : a.sketches) {
      const auto it = b.sketches.find(label);
      ASSERT_NE(it, b.sketches.end()) << label;
      EXPECT_EQ(sketch.count(), it->second.count()) << label;
      EXPECT_EQ(sketch.bucket_count(), it->second.bucket_count()) << label;
      for (double q : {0.5, 0.9, 0.99, 0.999}) {
        // Bitwise: merge is exactly associative and node-ordered.
        EXPECT_DOUBLE_EQ(sketch.quantile(q), it->second.quantile(q))
            << label << " q=" << q;
      }
    }
  };
  expect_identical(serial, two);
  expect_identical(serial, eight);

  // Sanity on the fixture itself: sampling actually thinned something
  // and the sketch side still covers the full population.
  EXPECT_GT(serial.roots_seen, serial.roots_kept);
  EXPECT_EQ(serial.sketches.at("offload.write").count(), serial.roots_seen);
}

}  // namespace
}  // namespace hpcos::cluster
