// Unit tests: discrete-event simulator and trace buffer.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/trace.h"

namespace hpcos::sim {
namespace {

using namespace hpcos::literals;

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3_us, [&] { order.push_back(3); });
  s.schedule_at(1_us, [&] { order.push_back(1); });
  s.schedule_at(2_us, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3_us);
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulator, SameTimestampFifoBySchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(1_us, [&] { order.push_back(1); });
  s.schedule_at(1_us, [&] { order.push_back(2); });
  s.schedule_at(1_us, [&] { order.push_back(3); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(1_us, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double cancel reports false
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, ScheduleFromWithinEvent) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.schedule_after(1_us, chain);
  };
  s.schedule_at(SimTime::zero(), chain);
  s.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 4_us);
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_at(2_us, [&] { ++fired; });
  s.schedule_at(10_us, [&] { ++fired; });
  const std::size_t n = s.run_until(5_us);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 5_us);
  EXPECT_TRUE(s.has_pending());
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator s;
  s.schedule_at(5_us, [] {});
  s.run_all();
  EXPECT_THROW(s.schedule_at(1_us, [] {}), SimError);
}

TEST(Simulator, RunAllGuardStopsRunaway) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule_after(1_ns, forever); };
  s.schedule_at(SimTime::zero(), forever);
  const std::size_t n = s.run_all(100);
  EXPECT_EQ(n, 100u);
  EXPECT_TRUE(s.has_pending());
}

TEST(TraceBuffer, DisabledBufferCountsButStoresNothing) {
  TraceBuffer t(0);
  t.record(TraceRecord{.time = 1_us, .core = 0,
                       .category = TraceCategory::kIrq,
                       .duration = 1_us, .label = "x"});
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 1u);
}

TEST(TraceBuffer, RingKeepsNewestAndOrders) {
  TraceBuffer t(3);
  for (int i = 0; i < 5; ++i) {
    t.record(TraceRecord{.time = SimTime::us(i), .core = 0,
                         .category = TraceCategory::kUser,
                         .duration = SimTime::zero(),
                         .label = std::to_string(i)});
  }
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].label, "2");
  EXPECT_EQ(snap[2].label, "4");
  EXPECT_EQ(t.dropped(), 2u);
}

TEST(TraceBuffer, FilterAndDurationAccounting) {
  TraceBuffer t(16);
  t.record(TraceRecord{.time = 1_us, .core = 2,
                       .category = TraceCategory::kKworker,
                       .duration = 5_us, .label = "kw"});
  t.record(TraceRecord{.time = 2_us, .core = 3,
                       .category = TraceCategory::kKworker,
                       .duration = 7_us, .label = "kw"});
  t.record(TraceRecord{.time = 3_us, .core = 2,
                       .category = TraceCategory::kDaemon,
                       .duration = 1_us, .label = "d"});
  EXPECT_EQ(t.filter(TraceCategory::kKworker).size(), 2u);
  EXPECT_EQ(t.total_duration(TraceCategory::kKworker), 12_us);
  EXPECT_EQ(t.total_duration(TraceCategory::kKworker, 2), 5_us);
}

}  // namespace
}  // namespace hpcos::sim
