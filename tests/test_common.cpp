// Unit tests: common utilities (SimTime, RNG, stats, histograms, tables,
// parallel_for).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>

#include "common/histogram.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "common/table.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::us(1).count_ns(), 1000);
  EXPECT_EQ(SimTime::ms(1).count_ns(), 1'000'000);
  EXPECT_EQ(SimTime::sec(1).count_ns(), 1'000'000'000);
  EXPECT_EQ(SimTime::from_ms(6.5).count_ns(), 6'500'000);
  EXPECT_EQ(SimTime::from_us(0.5).count_ns(), 500);
  EXPECT_EQ(1_ms, SimTime::us(1000));
}

TEST(SimTime, Arithmetic) {
  const SimTime a = 5_us;
  const SimTime b = 3_us;
  EXPECT_EQ((a + b).count_ns(), 8000);
  EXPECT_EQ((a - b).count_ns(), 2000);
  EXPECT_EQ((a * 3).count_ns(), 15000);
  EXPECT_EQ((a / 5).count_ns(), 1000);
  EXPECT_DOUBLE_EQ(a.ratio(b), 5.0 / 3.0);
  EXPECT_EQ(a.scaled(0.5).count_ns(), 2500);
  EXPECT_LT(b, a);
  EXPECT_TRUE((a - a).is_zero());
  EXPECT_TRUE((b - a).is_negative());
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::ns(12).to_string(), "12ns");
  EXPECT_EQ(SimTime::us(3).to_string(), "3us");
  EXPECT_EQ(SimTime::from_ms(6.5).to_string(), "6.5ms");
  EXPECT_EQ(SimTime::sec(2).to_string(), "2s");
}

TEST(Rng, DeterministicAcrossInstances) {
  RngStream a(Seed{42}, 7);
  RngStream b(Seed{42}, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DistinctStreamsDiffer) {
  RngStream a(Seed{42}, 0);
  RngStream b(Seed{42}, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIndependentOfDrawCount) {
  RngStream parent1(Seed{9}, 3);
  RngStream parent2(Seed{9}, 3);
  (void)parent2.next_u64();  // parent2 has drawn; parent1 has not
  RngStream c1 = parent1.split(5);
  RngStream c2 = parent2.split(5);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, UniformInRange) {
  RngStream r(Seed{1}, 0);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  RngStream r(Seed{2}, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(r.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, ExponentialMeanConverges) {
  RngStream r(Seed{3}, 0);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, NormalMoments) {
  RngStream r(Seed{4}, 0);
  OnlineStats st;
  for (int i = 0; i < 20000; ++i) st.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, PoissonSmallAndLargeMeans) {
  RngStream r(Seed{5}, 0);
  double sum_small = 0;
  double sum_large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum_small += double(r.poisson(0.5));
  for (int i = 0; i < n; ++i) sum_large += double(r.poisson(200.0));
  EXPECT_NEAR(sum_small / n, 0.5, 0.05);
  EXPECT_NEAR(sum_large / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  RngStream r(Seed{6}, 0);
  EXPECT_EQ(r.poisson(0.0), 0u);
  EXPECT_EQ(r.poisson(-1.0), 0u);
}

TEST(OnlineStats, WelfordMatchesDirect) {
  OnlineStats st;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  for (double x : xs) st.add(x);
  EXPECT_EQ(st.count(), xs.size());
  EXPECT_DOUBLE_EQ(st.mean(), 4.0);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 7.0);
  // Sample variance of 1..7 = 28/6.
  EXPECT_NEAR(st.variance(), 28.0 / 6.0, 1e-12);
}

TEST(OnlineStats, MergeEqualsSinglePass) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i < 20 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Summarize, Fields) {
  std::vector<double> xs(100);
  std::iota(xs.begin(), xs.end(), 1.0);
  const SampleSummary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_GT(s.p999, s.p99);
}

TEST(LogHistogram, CountsAndQuantiles) {
  LogHistogram h(1.0, 1000.0, 30);
  for (int i = 1; i <= 100; ++i) h.add(double(i));
  EXPECT_EQ(h.total_count(), 100u);
  EXPECT_DOUBLE_EQ(h.observed_max(), 100.0);
  // Median should land near 50 (within a bin width).
  EXPECT_NEAR(h.quantile(0.5), 50.0, 15.0);
  EXPECT_LE(h.quantile(1.0), 100.0 + 1e-9);
}

TEST(LogHistogram, ClampsOutOfRange) {
  LogHistogram h(10.0, 100.0, 4);
  h.add(1.0);     // below range -> first bin
  h.add(1e6);     // above range -> last bin
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a(1.0, 100.0, 8);
  LogHistogram b(1.0, 100.0, 8);
  a.add(2.0);
  b.add(50.0);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 2u);
  EXPECT_DOUBLE_EQ(a.observed_max(), 50.0);
  LogHistogram incompatible(1.0, 100.0, 9);
  EXPECT_THROW(a.merge(incompatible), std::invalid_argument);
}

TEST(EmpiricalCdf, FractionsAndQuantiles) {
  EmpiricalCdf c;
  for (int i = 1; i <= 10; ++i) c.add(double(i));
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 10.0);
  const auto pts = c.cdf_points(10);
  EXPECT_EQ(pts.size(), 10u);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::fmt(1.5)});
  t.add_row({"b", TextTable::fmt_sci(0.0000045)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("4.50E-06"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_THROW(t.add_row({"a", "b", "c"}), std::invalid_argument);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; }, 4);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(
          100, [](std::size_t i) { if (i == 37) throw std::runtime_error("x"); },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, FailsFastAfterException) {
  // Once one invocation throws, the shared stop flag must halt dispatch:
  // workers finish the chunk they hold but claim no new ones, so only a
  // small fraction of the range is ever visited.
  const std::size_t count = 100000;
  std::atomic<std::size_t> invoked{0};
  std::atomic<bool> thrown{false};
  EXPECT_THROW(
      parallel_for(
          count,
          [&](std::size_t) {
            if (!thrown.exchange(true)) throw std::runtime_error("boom");
            invoked.fetch_add(1);
          },
          4),
      std::runtime_error);
  // 4 workers x one in-flight chunk (count / 32) plus slack is far below
  // the full range; the old spawn-join implementation drained all of it.
  EXPECT_LT(invoked.load(), count / 2);
}

TEST(ParallelFor, PoolSurvivesRepeatedDispatch) {
  // The persistent worker pool must stay healthy across many calls
  // (campaign drivers issue one dispatch per shard sweep).
  for (int round = 0; round < 50; ++round) {
    std::vector<int> hits(257, 0);
    parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; }, 4);
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ParallelFor, NestedCallsFallBackToSerial) {
  std::atomic<int> total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        parallel_for(16, [&](std::size_t) { total.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(total.load(), 8 * 16);
}

}  // namespace
}  // namespace hpcos
