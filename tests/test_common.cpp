// Unit tests: common utilities (SimTime, RNG, stats, histograms, tables,
// parallel_for).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

#include "common/histogram.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "common/table.h"

namespace hpcos {
namespace {

using namespace hpcos::literals;

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::us(1).count_ns(), 1000);
  EXPECT_EQ(SimTime::ms(1).count_ns(), 1'000'000);
  EXPECT_EQ(SimTime::sec(1).count_ns(), 1'000'000'000);
  EXPECT_EQ(SimTime::from_ms(6.5).count_ns(), 6'500'000);
  EXPECT_EQ(SimTime::from_us(0.5).count_ns(), 500);
  EXPECT_EQ(1_ms, SimTime::us(1000));
}

TEST(SimTime, Arithmetic) {
  const SimTime a = 5_us;
  const SimTime b = 3_us;
  EXPECT_EQ((a + b).count_ns(), 8000);
  EXPECT_EQ((a - b).count_ns(), 2000);
  EXPECT_EQ((a * 3).count_ns(), 15000);
  EXPECT_EQ((a / 5).count_ns(), 1000);
  EXPECT_DOUBLE_EQ(a.ratio(b), 5.0 / 3.0);
  EXPECT_EQ(a.scaled(0.5).count_ns(), 2500);
  EXPECT_LT(b, a);
  EXPECT_TRUE((a - a).is_zero());
  EXPECT_TRUE((b - a).is_negative());
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::ns(12).to_string(), "12ns");
  EXPECT_EQ(SimTime::us(3).to_string(), "3us");
  EXPECT_EQ(SimTime::from_ms(6.5).to_string(), "6.5ms");
  EXPECT_EQ(SimTime::sec(2).to_string(), "2s");
}

TEST(Rng, DeterministicAcrossInstances) {
  RngStream a(Seed{42}, 7);
  RngStream b(Seed{42}, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DistinctStreamsDiffer) {
  RngStream a(Seed{42}, 0);
  RngStream b(Seed{42}, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIndependentOfDrawCount) {
  RngStream parent1(Seed{9}, 3);
  RngStream parent2(Seed{9}, 3);
  (void)parent2.next_u64();  // parent2 has drawn; parent1 has not
  RngStream c1 = parent1.split(5);
  RngStream c2 = parent2.split(5);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, UniformInRange) {
  RngStream r(Seed{1}, 0);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  RngStream r(Seed{2}, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(r.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, ExponentialMeanConverges) {
  RngStream r(Seed{3}, 0);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, NormalMoments) {
  RngStream r(Seed{4}, 0);
  OnlineStats st;
  for (int i = 0; i < 20000; ++i) st.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, PoissonSmallAndLargeMeans) {
  RngStream r(Seed{5}, 0);
  double sum_small = 0;
  double sum_large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum_small += double(r.poisson(0.5));
  for (int i = 0; i < n; ++i) sum_large += double(r.poisson(200.0));
  EXPECT_NEAR(sum_small / n, 0.5, 0.05);
  EXPECT_NEAR(sum_large / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  RngStream r(Seed{6}, 0);
  EXPECT_EQ(r.poisson(0.0), 0u);
  EXPECT_EQ(r.poisson(-1.0), 0u);
}

TEST(OnlineStats, WelfordMatchesDirect) {
  OnlineStats st;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  for (double x : xs) st.add(x);
  EXPECT_EQ(st.count(), xs.size());
  EXPECT_DOUBLE_EQ(st.mean(), 4.0);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 7.0);
  // Sample variance of 1..7 = 28/6.
  EXPECT_NEAR(st.variance(), 28.0 / 6.0, 1e-12);
}

TEST(OnlineStats, MergeEqualsSinglePass) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i < 20 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Summarize, Fields) {
  std::vector<double> xs(100);
  std::iota(xs.begin(), xs.end(), 1.0);
  const SampleSummary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_GT(s.p999, s.p99);
}

TEST(LogHistogram, CountsAndQuantiles) {
  LogHistogram h(1.0, 1000.0, 30);
  for (int i = 1; i <= 100; ++i) h.add(double(i));
  EXPECT_EQ(h.total_count(), 100u);
  EXPECT_DOUBLE_EQ(h.observed_max(), 100.0);
  // Median should land near 50 (within a bin width).
  EXPECT_NEAR(h.quantile(0.5), 50.0, 15.0);
  EXPECT_LE(h.quantile(1.0), 100.0 + 1e-9);
}

TEST(LogHistogram, ClampsOutOfRange) {
  LogHistogram h(10.0, 100.0, 4);
  h.add(1.0);     // below range -> first bin
  h.add(1e6);     // above range -> last bin
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a(1.0, 100.0, 8);
  LogHistogram b(1.0, 100.0, 8);
  a.add(2.0);
  b.add(50.0);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 2u);
  EXPECT_DOUBLE_EQ(a.observed_max(), 50.0);
  LogHistogram incompatible(1.0, 100.0, 9);
  EXPECT_THROW(a.merge(incompatible), std::invalid_argument);
}

TEST(EmpiricalCdf, FractionsAndQuantiles) {
  EmpiricalCdf c;
  for (int i = 1; i <= 10; ++i) c.add(double(i));
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 10.0);
  const auto pts = c.cdf_points(10);
  EXPECT_EQ(pts.size(), 10u);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::fmt(1.5)});
  t.add_row({"b", TextTable::fmt_sci(0.0000045)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("4.50E-06"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_THROW(t.add_row({"a", "b", "c"}), std::invalid_argument);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; }, 4);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(
          100, [](std::size_t i) { if (i == 37) throw std::runtime_error("x"); },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, FailsFastAfterException) {
  // Once one invocation throws, the shared stop flag must halt dispatch:
  // workers finish the chunk they hold but claim no new ones, so only a
  // small fraction of the range is ever visited.
  const std::size_t count = 100000;
  std::atomic<std::size_t> invoked{0};
  std::atomic<bool> thrown{false};
  EXPECT_THROW(
      parallel_for(
          count,
          [&](std::size_t) {
            if (!thrown.exchange(true)) throw std::runtime_error("boom");
            invoked.fetch_add(1);
          },
          4),
      std::runtime_error);
  // 4 workers x one in-flight chunk (count / 32) plus slack is far below
  // the full range; the old spawn-join implementation drained all of it.
  EXPECT_LT(invoked.load(), count / 2);
}

TEST(ParallelFor, PoolSurvivesRepeatedDispatch) {
  // The persistent worker pool must stay healthy across many calls
  // (campaign drivers issue one dispatch per shard sweep).
  for (int round = 0; round < 50; ++round) {
    std::vector<int> hits(257, 0);
    parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; }, 4);
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ParallelFor, NestedCallsCoverEveryIndexOnce) {
  // Nested calls now enqueue into the scheduler instead of degrading to
  // serial; coverage must stay exactly-once at both levels.
  std::vector<std::atomic<int>> hits(8 * 16);
  parallel_for(
      8,
      [&](std::size_t outer) {
        parallel_for(
            16,
            [&](std::size_t inner) { hits[outer * 16 + inner].fetch_add(1); },
            4);
      },
      4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedWorkIsDistributedAcrossThreads) {
  // The scheduler's point: an inner parallel_for issued from inside a
  // running worker must have its chunks stolen by idle participants, not
  // run serially on the nested caller. One outer task is trivial so its
  // thread becomes a thief; the other runs a slow inner loop whose
  // chunks the thief picks up.
  const auto before = parallel_stats();
  std::mutex m;
  std::set<std::thread::id> inner_threads;
  parallel_for(
      2,
      [&](std::size_t outer) {
        if (outer == 0) return;
        parallel_for(
            32,
            [&](std::size_t) {
              {
                std::lock_guard<std::mutex> lock(m);
                inner_threads.insert(std::this_thread::get_id());
              }
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
            },
            2);
      },
      2);
  const auto after = parallel_stats();
  EXPECT_GE(after.nested_groups - before.nested_groups, 1u);
  EXPECT_GE(after.steals - before.steals, 1u);
  EXPECT_GE(inner_threads.size(), 2u);
}

TEST(ParallelFor, WakesOnlyNeededWorkers) {
  // Dispatch must wake at most threads - 1 sleeping workers per call —
  // never the whole pool (parallel.wakeups.count is the proof). Serial
  // calls must wake nobody.
  parallel_for(64, [](std::size_t) {}, 2);  // warm the pool
  const auto before = parallel_stats();
  const std::uint64_t rounds = 100;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    parallel_for(256, [](std::size_t) {}, 2);
  }
  const auto after = parallel_stats();
  EXPECT_LE(after.wakeups - before.wakeups, rounds);

  const auto serial_before = parallel_stats();
  for (int r = 0; r < 10; ++r) {
    parallel_for(100, [](std::size_t) {}, 1);
  }
  EXPECT_EQ(parallel_stats().wakeups, serial_before.wakeups);
}

TEST(ParallelFor, OversubscribedRequestIsHonoredUpToCapacity) {
  // threads far beyond the pool must clamp to parallel_capacity() —
  // explicitly, with exactly-once coverage and without assuming helpers
  // that don't exist (the old pool's max_helpers bug).
  ASSERT_GE(parallel_capacity(), 2u);
  std::vector<std::atomic<int>> hits(5000);
  const auto before = parallel_stats();
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
               1000);
  const auto after = parallel_stats();
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  // One dispatch can wake at most the pool, not the requested 999.
  EXPECT_LE(after.wakeups - before.wakeups, parallel_capacity() - 1);
}

TEST(ParallelFor, NestedExceptionPropagatesThroughOuterGroup) {
  // An inner-group exception rethrows at the inner call site (inside the
  // outer fn), is caught by the outer chunk, and surfaces from the outer
  // parallel_for — the documented contract, now across real nesting.
  EXPECT_THROW(
      parallel_for(
          4,
          [&](std::size_t) {
            parallel_for(
                64,
                [&](std::size_t i) {
                  if (i == 7) throw std::runtime_error("inner");
                },
                2);
          },
          2),
      std::runtime_error);
}

TEST(DefaultParallelism, IsAtLeastOne) {
  EXPECT_GE(default_parallelism(), 1u);
}

#ifdef __linux__
TEST(DefaultParallelism, FollowsAffinityMask) {
  // hardware_concurrency() over-reports under taskset/cgroup cpusets
  // (the ROADMAP's 1-CPU CI container); default_parallelism() must
  // follow the affinity mask instead.
  cpu_set_t saved;
  CPU_ZERO(&saved);
  ASSERT_EQ(sched_getaffinity(0, sizeof(saved), &saved), 0);
  EXPECT_EQ(default_parallelism(),
            static_cast<std::size_t>(CPU_COUNT(&saved)));

  int first = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &saved)) {
      first = c;
      break;
    }
  }
  ASSERT_GE(first, 0);
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(first, &one);
  ASSERT_EQ(sched_setaffinity(0, sizeof(one), &one), 0);
  EXPECT_EQ(default_parallelism(), 1u);
  ASSERT_EQ(sched_setaffinity(0, sizeof(saved), &saved), 0);
  EXPECT_EQ(default_parallelism(),
            static_cast<std::size_t>(CPU_COUNT(&saved)));
}
#endif

}  // namespace
}  // namespace hpcos
