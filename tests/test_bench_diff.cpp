// bench_diff library: glob matching, tolerance-policy parsing, and report
// diffing — the logic behind the ctest bench_gate jobs.
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/bench_diff.h"
#include "obs/bench_report.h"

namespace hpcos::obs {
namespace {

JsonValue report_with(
    const std::vector<std::pair<std::string, double>>& metrics,
    const std::string& bench = "gate_bench") {
  BenchReport r(bench, /*quick=*/true, /*seed=*/42);
  for (const auto& [name, value] : metrics) r.add_metric(name, "us", value);
  return r.to_json();
}

// ----------------------------------------------------------------- glob

TEST(GlobMatch, LiteralAndWildcardPatterns) {
  EXPECT_TRUE(glob_match("a.b", "a.b"));
  EXPECT_FALSE(glob_match("a.b", "a.c"));
  EXPECT_TRUE(glob_match("*", "anything.at.all"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));

  EXPECT_TRUE(glob_match("shard_sweep.*.wall_s", "shard_sweep.64.wall_s"));
  EXPECT_FALSE(glob_match("shard_sweep.*.wall_s",
                          "shard_sweep.64.noise_rate"));
  EXPECT_TRUE(glob_match("*.p99_ms", "ofp_linux.p99_ms"));
  EXPECT_TRUE(glob_match("a*c*e", "abcde"));
  EXPECT_FALSE(glob_match("a*c*e", "abde"));

  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
}

// --------------------------------------------------------------- policy

TEST(TolerancePolicy, RulesRefineTheDefault) {
  const auto doc = JsonValue::parse(R"({
    "schema": "hpcos-bench-tolerances/1",
    "default": {"rel": 0.02, "abs": 1e-6},
    "metrics": [
      {"pattern": "parallel.speedup", "ignore": true},
      {"pattern": "*.p99_ms", "rel": 0.10}
    ]
  })");
  const DiffPolicy policy = parse_tolerance_policy(doc);
  EXPECT_TRUE(policy.lookup("parallel.speedup").ignore);
  // The rule only sets rel; abs is inherited from the file's default.
  EXPECT_DOUBLE_EQ(policy.lookup("x.p99_ms").rel, 0.10);
  EXPECT_DOUBLE_EQ(policy.lookup("x.p99_ms").abs, 1e-6);
  EXPECT_FALSE(policy.lookup("x.p99_ms").ignore);
  // Unmatched metrics fall back to the default.
  EXPECT_DOUBLE_EQ(policy.lookup("other.metric").rel, 0.02);
}

TEST(TolerancePolicy, FirstMatchingRuleWins) {
  const auto doc = JsonValue::parse(R"({
    "schema": "hpcos-bench-tolerances/1",
    "metrics": [
      {"pattern": "a.*", "rel": 0.5},
      {"pattern": "a.b", "rel": 0.9}
    ]
  })");
  const DiffPolicy policy = parse_tolerance_policy(doc);
  EXPECT_DOUBLE_EQ(policy.lookup("a.b").rel, 0.5);
}

TEST(TolerancePolicy, RejectsWrongSchemaAndNegativeTolerances) {
  EXPECT_THROW(
      parse_tolerance_policy(JsonValue::parse(R"({"schema": "nope/1"})")),
      std::runtime_error);
  EXPECT_THROW(parse_tolerance_policy(JsonValue::parse(R"({
        "schema": "hpcos-bench-tolerances/1",
        "default": {"rel": -0.1}
      })")),
               std::runtime_error);
}

// A typoed key in a tolerance file would silently disable the rule it was
// meant to configure — the parser must reject unknown keys outright, with
// the likeliest typos reported first.

std::string policy_error(const char* json) {
  try {
    parse_tolerance_policy(JsonValue::parse(json));
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(TolerancePolicy, UnknownKeysAreHardErrorsWithSuggestions) {
  const std::string err = policy_error(R"({
    "schema": "hpcos-bench-tolerances/1",
    "metrics": [
      {"patern": "a.*", "rel": 0.5}
    ]
  })");
  ASSERT_NE(err, "");
  EXPECT_NE(err.find("unknown key"), std::string::npos);
  EXPECT_NE(err.find("metrics[0].patern"), std::string::npos);
  EXPECT_NE(err.find("did you mean \"pattern\"?"), std::string::npos);

  const std::string def_err = policy_error(R"({
    "schema": "hpcos-bench-tolerances/1",
    "default": {"ingore": true}
  })");
  EXPECT_NE(def_err.find("default.ingore"), std::string::npos);
  EXPECT_NE(def_err.find("did you mean \"ignore\"?"), std::string::npos);

  // A key nothing like any allowed key gets no (misleading) suggestion.
  const std::string far_err = policy_error(R"({
    "schema": "hpcos-bench-tolerances/1",
    "widgets": []
  })");
  EXPECT_NE(far_err.find("widgets"), std::string::npos);
  EXPECT_EQ(far_err.find("did you mean"), std::string::npos);
}

TEST(TolerancePolicy, UnknownKeysRankedByEditDistance) {
  // "rell" (distance 1 to "rel") must be reported before "bogus_key"
  // (distance > 3), regardless of document order.
  const std::string err = policy_error(R"({
    "schema": "hpcos-bench-tolerances/1",
    "metrics": [
      {"pattern": "a.*", "bogus_key": 1},
      {"pattern": "b.*", "rell": 0.5}
    ]
  })");
  ASSERT_NE(err, "");
  const auto near_pos = err.find("metrics[1].rell");
  const auto far_pos = err.find("metrics[0].bogus_key");
  ASSERT_NE(near_pos, std::string::npos);
  ASSERT_NE(far_pos, std::string::npos);
  EXPECT_LT(near_pos, far_pos);
}

TEST(TolerancePolicy, TypoedPatternReportsAsUnknownKeyNotMissingKey) {
  // Key validation runs before rule parsing, so the error explains the
  // typo instead of complaining that "pattern" is missing.
  const std::string err = policy_error(R"({
    "schema": "hpcos-bench-tolerances/1",
    "metrics": [{"patern": "a.*"}]
  })");
  EXPECT_NE(err.find("metrics[0].patern"), std::string::npos);
  EXPECT_EQ(err.find("missing"), std::string::npos);
}

TEST(TolerancePolicy, CommittedGateToleranceFileShapeStillParses) {
  // The shape of bench/baselines/tolerances.json must stay valid under
  // the strict-key check.
  const DiffPolicy policy = parse_tolerance_policy(JsonValue::parse(R"({
    "schema": "hpcos-bench-tolerances/1",
    "default": {"rel": 0.02, "abs": 1e-9},
    "metrics": [
      {"pattern": "parallel.speedup", "ignore": true},
      {"pattern": "registry.overhead_ratio", "ignore": true},
      {"pattern": "shard_sweep.*.wall_s", "ignore": true},
      {"pattern": "host.*", "ignore": true}
    ]
  })"));
  EXPECT_TRUE(policy.lookup("host.wall_s").ignore);
  EXPECT_FALSE(policy.lookup("attrib.total_stolen_us").ignore);
}

// ----------------------------------------------------------------- diff

TEST(BenchDiff, PassesWithinTolerance) {
  const auto baseline = report_with({{"alpha", 100.0}, {"beta", 1.0}});
  const auto current = report_with({{"alpha", 104.0}, {"beta", 1.0}});
  const auto result = diff_reports(current, baseline, DiffPolicy{});
  EXPECT_TRUE(result.ok());  // 4% < default 5%
  EXPECT_EQ(result.deltas.size(), 2u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(BenchDiff, ViolationsRankedWorstFirst) {
  const auto baseline = report_with({{"alpha", 100.0}, {"beta", 10.0}});
  const auto current = report_with({{"alpha", 110.0}, {"beta", 20.0}});
  const auto result = diff_reports(current, baseline, DiffPolicy{});
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.violations.size(), 2u);
  EXPECT_EQ(result.violations[0].metric, "beta");  // 100% > 10%
  EXPECT_EQ(result.violations[1].metric, "alpha");
  EXPECT_DOUBLE_EQ(result.violations[0].rel_delta, 1.0);
}

TEST(BenchDiff, IgnoreRuleSkipsHostDependentMetrics) {
  const auto baseline = report_with({{"wall_s", 1.0}, {"alpha", 5.0}});
  const auto current = report_with({{"wall_s", 50.0}, {"alpha", 5.0}});
  DiffPolicy policy;
  policy.rules.push_back({"wall*", MetricTolerance{.ignore = true}});
  const auto result = diff_reports(current, baseline, policy);
  EXPECT_TRUE(result.ok());
  // Ignored metrics are excluded from the compared set entirely.
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_EQ(result.deltas[0].metric, "alpha");
}

TEST(BenchDiff, MissingMetricFailsNewMetricNotes) {
  const auto baseline = report_with({{"alpha", 1.0}, {"gone", 2.0}});
  const auto current = report_with({{"alpha", 1.0}, {"fresh", 3.0}});
  const auto result = diff_reports(current, baseline, DiffPolicy{});
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.missing_in_current.size(), 1u);
  EXPECT_EQ(result.missing_in_current[0], "gone");
  ASSERT_EQ(result.new_in_current.size(), 1u);
  EXPECT_EQ(result.new_in_current[0], "fresh");
}

TEST(BenchDiff, PercentilesCompareAsFlattenedMetrics) {
  auto make = [](double p99) {
    BenchReport r("gate_bench", true, 42);
    r.add_metric(BenchMetric{.name = "lat",
                             .unit = "us",
                             .value = 5.0,
                             .percentiles = {{"p50", 1.0}, {"p99", p99}}});
    return r.to_json();
  };
  const auto result =
      diff_reports(make(/*p99=*/20.0), make(/*p99=*/10.0), DiffPolicy{});
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].metric, "lat.p99");
}

TEST(BenchDiff, InjectedRegressionTripsTheGateTolerances) {
  // The exact policy the committed bench_gate uses: 2% rel default with
  // wall-clock ignores. A 5% regression on a deterministic metric fails;
  // an arbitrarily large wall-clock change does not.
  const auto policy = parse_tolerance_policy(JsonValue::parse(R"({
    "schema": "hpcos-bench-tolerances/1",
    "default": {"rel": 0.02, "abs": 1e-9},
    "metrics": [
      {"pattern": "parallel.speedup", "ignore": true},
      {"pattern": "shard_sweep.*.wall_s", "ignore": true}
    ]
  })"));
  const auto baseline = report_with({{"ofp_linux.p99_ms", 6.5},
                                     {"parallel.speedup", 3.0},
                                     {"shard_sweep.64.wall_s", 0.01}});
  const auto regressed = report_with({{"ofp_linux.p99_ms", 6.5 * 1.05},
                                      {"parallel.speedup", 30.0},
                                      {"shard_sweep.64.wall_s", 10.0}});
  const auto result = diff_reports(regressed, baseline, policy);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].metric, "ofp_linux.p99_ms");

  const auto clean = diff_reports(baseline, baseline, policy);
  EXPECT_TRUE(clean.ok());
}

TEST(BenchDiff, RejectsInvalidOrMismatchedReports) {
  const auto a = report_with({{"alpha", 1.0}}, "bench_a");
  const auto b = report_with({{"alpha", 1.0}}, "bench_b");
  EXPECT_THROW(diff_reports(a, b, DiffPolicy{}), std::runtime_error);
  EXPECT_THROW(diff_reports(JsonValue::parse("{}"), a, DiffPolicy{}),
               std::runtime_error);
}

}  // namespace
}  // namespace hpcos::obs
