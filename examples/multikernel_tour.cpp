// Multi-kernel tour: the IHK/McKernel lifecycle, step by step.
//
// Walks the §5 machinery explicitly instead of using the SimNode helper:
//   1. boot Linux on the assistant cores,
//   2. reserve application cores + memory through IHK (no reboot),
//   3. create and boot an LWK (McKernel) instance over them,
//   4. wire the IKC channels and the proxy-process offload path,
//   5. run a program that mixes local and delegated syscalls,
//   6. tear everything down and release the resources to the host.
#include <iostream>

#include "hw/platform.h"
#include "ihk/ihk.h"
#include "linuxk/linux_kernel.h"
#include "mckernel/mckernel.h"
#include "mckernel/offload.h"
#include "noise/profiles.h"
#include "oskernel/stall_bus.h"
#include "sim/simulator.h"

using namespace hpcos;

namespace {

// A small "application": computes, reads a file (delegated), maps and
// frees memory (local), and exits.
class MixedApp final : public os::ThreadBody {
 public:
  void step(os::ThreadContext& ctx) override {
    switch (phase_++) {
      case 0:
        std::cout << "  [app] computing 2 ms on core " << ctx.core() << "\n";
        ctx.compute(SimTime::ms(2));
        return;
      case 1:
        std::cout << "  [app] open() -> delegated to Linux via IKC proxy\n";
        ctx.invoke(os::Syscall::kOpen);
        return;
      case 2:
        std::cout << "  [app] open served via "
                  << (ctx.last_syscall().path ==
                              os::SyscallResult::Path::kOffloaded
                          ? "OFFLOAD"
                          : "local")
                  << " path; now mmap(64 MiB) -> LWK-local\n";
        ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = 64ull << 20});
        return;
      case 3:
        addr_ = static_cast<std::uint64_t>(ctx.last_syscall().value);
        std::cout << "  [app] mapped at 0x" << std::hex << addr_ << std::dec
                  << " ("
                  << (ctx.last_syscall().path ==
                              os::SyscallResult::Path::kLocal
                          ? "LOCAL"
                          : "offloaded")
                  << "); munmap\n";
        ctx.invoke(os::Syscall::kMunmap,
                   os::SyscallArgs{.arg0 = addr_, .arg1 = 64ull << 20});
        return;
      default:
        std::cout << "  [app] done at t=" << ctx.now().to_string() << "\n";
        ctx.exit();
    }
  }

 private:
  int phase_ = 0;
  std::uint64_t addr_ = 0;
};

}  // namespace

int main() {
  const auto platform = hw::make_fugaku_testbed_platform();
  const auto& topo = platform.topology;
  sim::Simulator sim;
  os::ChipStallBus bus;

  std::cout << "1. Booting Linux on the assistant cores ("
            << topo.system_cores().to_string() << ")\n";
  auto lcfg = linuxk::make_fugaku_linux_config(platform);
  lcfg.profile = noise::strip_population_tails(lcfg.profile);
  linuxk::LinuxKernel linux(sim, topo, topo.system_cores(), std::move(lcfg),
                            Seed{1}, nullptr, &bus);
  linux.boot();

  std::cout << "2. IHK: reserving application cores ("
            << topo.application_cores().to_string() << ") and 24 GiB\n";
  ihk::IhkManager ihk_mgr(sim, topo, topo.all_cores(), topo.system_cores(),
                          32ull << 30);
  HPCOS_CHECK(ihk_mgr.partition().reserve_cpus(topo.application_cores()));
  HPCOS_CHECK(ihk_mgr.partition().reserve_memory(24ull << 30));
  std::cout << "   host keeps cpus "
            << ihk_mgr.partition().remaining_host_cpus().to_string()
            << " and "
            << ihk_mgr.partition().remaining_host_memory() / (1ull << 30)
            << " GiB\n";

  std::cout << "3. Creating + booting the LWK instance\n";
  const int os_id = ihk_mgr.create_os_instance(topo.application_cores(),
                                               24ull << 30);
  HPCOS_CHECK(os_id >= 0);
  auto mcfg = mck::McKernelConfig::defaults();
  mcfg.picodriver.enabled = true;
  mck::McKernel lwk(sim, topo, topo.application_cores(), std::move(mcfg),
                    Seed{2}, nullptr, &bus);
  lwk.boot();
  ihk_mgr.boot(os_id);
  std::cout << "   instance " << os_id << " status: "
            << to_string(ihk_mgr.instance(os_id).status) << "\n";

  std::cout << "4. Wiring IKC + proxy-process delegation\n";
  auto& inst = ihk_mgr.instance(os_id);
  mck::SyscallOffloader offloader(lwk, linux, *inst.to_host, *inst.to_lwk,
                                  topo.system_cores());

  std::cout << "5. Running the mixed-syscall application on the LWK\n";
  lwk.spawn(std::make_unique<MixedApp>(), os::SpawnAttrs{.name = "app"});
  sim.run_until(SimTime::sec(1));
  std::cout << "   offload round trips: " << offloader.replies()
            << ", mean latency "
            << offloader.roundtrip_us().mean() << " us; proxies spawned: "
            << offloader.proxy_count() << "\n";

  std::cout << "6. Shutdown: LWK stops, resources return to the host\n";
  ihk_mgr.shutdown(os_id);
  ihk_mgr.destroy(os_id);
  std::cout << "   reserved cpus now: "
            << ihk_mgr.partition().reserved_cpus().count()
            << ", reserved memory: "
            << ihk_mgr.partition().reserved_memory() << " bytes\n";
  return 0;
}
