// obs_report — cross-layer observability tour (ROADMAP: observability).
//
// Runs the same short campaign on a Linux node and a multi-kernel node
// with the counter registry and the trace buffer enabled, then prints
// what the instrumentation saw:
//   * a ranked counter comparison (Linux vs multi-kernel, the Table 2
//     presentation style applied to kernel-internal event counts),
//   * the offload-path latency histograms (enqueue -> proxy wakeup ->
//     execute -> reply, plus round trip),
//   * a span report grouped by label, reconstructed from the trace
//     buffer's span/parent ids,
//   * page-fault / TLB-shootdown span trees from a prepopulated mmap +
//     munmap phase (the demand-paging side of the Figure 5-7 costs),
//   * collective-phase span trees from a BSP run (init + per-iteration
//     compute / barrier / allreduce split on synthetic rank tracks),
// and exports everything as ONE merged Chrome trace_event JSON document —
// per-node pids plus named BSP rank tracks — validated structurally
// before it is written (load it at https://ui.perfetto.dev).
#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <chrono>

#include "cluster/bsp.h"
#include "cluster/job_launcher.h"
#include "cluster/node.h"
#include "cluster/osenv.h"
#include "common/table.h"
#include "noise/fwq.h"
#include "obs/bench_report.h"
#include "obs/registry.h"
#include "obs/timeseries/openmetrics.h"
#include "sim/chrome_trace.h"

namespace {

using namespace hpcos;

// Issues a burst of syscalls: local clock reads interleaved with calls
// McKernel must delegate to the Linux side (stat).
struct SyscallBurst final : os::ThreadBody {
  int remaining = 32;
  void step(os::ThreadContext& ctx) override {
    if (remaining-- <= 0) {
      ctx.exit();
      return;
    }
    ctx.invoke(remaining % 4 == 0 ? os::Syscall::kStat
                                  : os::Syscall::kGetTimeOfDay,
               {});
  }
};

// Memory phase: two prepopulated mmaps (a large-page region and a
// base-page region, i.e. hugeTLB and bulk-"major" fault trees) followed by
// a munmap of the large region (TLB-shootdown tree under the unmap root).
struct MemoryPhase final : os::ThreadBody {
  int stage = 0;
  std::uint64_t large_addr = 0;
  void step(os::ThreadContext& ctx) override {
    switch (stage++) {
      case 0:  // prefer_large bit set -> large pages where available
        ctx.invoke(os::Syscall::kMmap,
                   os::SyscallArgs{.arg0 = 64ull << 20, .arg1 = 1});
        return;
      case 1:
        large_addr = static_cast<std::uint64_t>(ctx.last_syscall().value);
        ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = 4ull << 20});
        return;
      case 2:
        ctx.invoke(os::Syscall::kMunmap,
                   os::SyscallArgs{.arg0 = large_addr,
                                   .arg1 = 64ull << 20});
        return;
      default:
        ctx.exit();
    }
  }
};

// One node's campaign: a syscall burst on the application kernel, a
// launcher-driven memory phase (the runtime's prepopulate + large-page
// policy, so mmap faults in bulk), and a short FWQ run on every
// application core.
void run_campaign(cluster::SimNode& node) {
  node.app_kernel().spawn(std::make_unique<SyscallBurst>(),
                          os::SpawnAttrs{.name = "syscall-burst"});
  node.simulator().run_until(SimTime::ms(50));
  cluster::JobLauncher launcher(node);
  const auto job = launcher.launch(cluster::LaunchSpec{.ranks = 1});
  launcher.spawn_rank_thread(job, 0, std::make_unique<MemoryPhase>(),
                             "memory-phase");
  node.simulator().run_until(SimTime::ms(100));
  noise::FwqConfig fwq;
  fwq.work_quantum = SimTime::from_ms(1);
  fwq.iterations = 200;
  noise::run_fwq(node.app_kernel(), node.topology().application_cores(),
                 fwq);
}

// Small BSP workload exercising every phase the engine traces: fault-in,
// heap churn, imbalance, allreduce (reduce-scatter/allgather split), halo,
// inter-node barrier.
class MiniSolver final : public cluster::Workload {
 public:
  std::string name() const override { return "mini-solver"; }
  int iterations() const override { return 4; }
  cluster::RankWork rank_work(int, const cluster::JobConfig&,
                              const cluster::OsEnvironment&) const override {
    cluster::RankWork w;
    w.compute = SimTime::from_ms(2);
    w.working_set_bytes = 256ull << 20;
    w.alloc_churn_bytes = 8ull << 20;
    w.touch_bytes = 4ull << 20;
    w.allreduces = 2;
    w.allreduce_bytes = 4096;
    w.halo_neighbors = 6;
    w.halo_bytes = 128ull << 10;
    w.barriers = 1;
    w.thread_barriers = 4;
    w.imbalance_sigma = 0.05;
    return w;
  }
  cluster::InitWork init_work(const cluster::JobConfig&,
                              const cluster::OsEnvironment&) const override {
    cluster::InitWork init;
    init.serial_setup = SimTime::from_ms(10);
    init.touch_bytes = 64ull << 20;
    init.rdma_registrations = 4;
    init.rdma_bytes_each = 16ull << 20;
    return init;
  }
};

// Print parent-linked span trees whose root matches `is_root`, indenting
// children under their parent (at most `max_roots` trees).
void print_span_trees(
    const std::vector<sim::TraceRecord>& records, const std::string& title,
    const std::function<bool(const sim::TraceRecord&)>& is_root,
    std::size_t max_roots) {
  std::map<std::uint64_t, std::vector<const sim::TraceRecord*>> children;
  for (const auto& r : records) {
    if (r.parent != 0) children[r.parent].push_back(&r);
  }
  print_banner(std::cout, title);
  std::function<void(const sim::TraceRecord&, int)> print_node =
      [&](const sim::TraceRecord& r, int depth) {
        std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ')
                  << r.label << "  [" << to_string(r.category) << "] "
                  << TextTable::fmt(r.duration.to_us(), 2) << " us @ t="
                  << TextTable::fmt(r.time.to_us(), 1) << " us\n";
        const auto it = children.find(r.span);
        if (it == children.end()) return;
        for (const auto* c : it->second) print_node(*c, depth + 1);
      };
  std::size_t printed = 0;
  std::size_t matched = 0;
  for (const auto& r : records) {
    if (r.span == 0 || r.parent != 0 || !is_root(r)) continue;
    ++matched;
    if (printed >= max_roots) continue;
    ++printed;
    print_node(r, 0);
  }
  if (matched > printed) {
    std::cout << "(" << matched - printed << " more tree(s) elided)\n";
  }
  if (matched == 0) std::cout << "(no matching spans)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto wall_start = std::chrono::steady_clock::now();
  // --json <path> emits the report's headline numbers as a BenchReport
  // (obs_report.* metrics); --quick is accepted for the smoke harness —
  // the tour is already quick, so it only marks the report.
  const auto opts = obs::parse_bench_options(argc, argv);
  const auto platform = hw::make_fugaku_testbed_platform();

  cluster::SimNodeOptions options;
  options.seed = Seed{2021};
  options.observability = true;
  options.trace_capacity = 1 << 16;

  auto linux_node = cluster::SimNode::make_linux_node(
      platform, linuxk::make_fugaku_linux_config(platform), options);
  auto mk_node = cluster::SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      mck::McKernelConfig::defaults(), options);

  run_campaign(*linux_node);
  run_campaign(*mk_node);

  // ---- Ranked counter comparison -------------------------------------
  const auto ls = linux_node->registry().snapshot();
  const auto ms = mk_node->registry().snapshot();
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const auto& c : ls.counters) merged[c.name].first = c.value;
  for (const auto& c : ms.counters) merged[c.name].second = c.value;
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      ranked(merged.begin(), merged.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return std::max(a.second.first, a.second.second) >
                            std::max(b.second.first, b.second.second);
                   });
  print_banner(std::cout,
               "Counter registry: Linux node vs multi-kernel node "
               "(ranked by count)");
  TextTable t({"counter", "Linux node", "multi-kernel node"});
  t.set_align(0, Align::kLeft);
  for (const auto& [name, values] : ranked) {
    auto fmt = [](std::uint64_t v) {
      return v == 0 ? std::string("-")
                    : TextTable::fmt_int(static_cast<long long>(v));
    };
    t.add_row({name, fmt(values.first), fmt(values.second)});
  }
  t.print(std::cout);

  // ---- Offload latency split -----------------------------------------
  print_banner(std::cout,
               "Syscall offload latency split (multi-kernel node)");
  TextTable h({"histogram", "samples", "p50", "p99", "max"});
  h.set_align(0, Align::kLeft);
  for (const auto& e : ms.histograms) {
    h.add_row({e.name, TextTable::fmt_int(static_cast<long long>(e.count)),
               TextTable::fmt(e.p50, 2), TextTable::fmt(e.p99, 2),
               TextTable::fmt(e.max, 2)});
  }
  h.print(std::cout);

  // ---- Span report ----------------------------------------------------
  const auto linux_records = linux_node->trace().snapshot();
  const auto records = mk_node->trace().snapshot();
  struct LabelStats {
    std::uint64_t count = 0;
    double total_us = 0.0;
    std::uint64_t children = 0;
  };
  std::map<std::string, LabelStats> by_label;
  std::uint64_t roots = 0;
  for (const auto& r : records) {
    if (r.span == 0) continue;  // unspanned event records
    auto& s = by_label[r.label];
    ++s.count;
    s.total_us += r.duration.to_us();
    if (r.parent != 0) {
      ++s.children;
    } else {
      ++roots;
    }
  }
  print_banner(std::cout, "Span report (trace buffer, grouped by label)");
  std::cout << "trace records=" << records.size()
            << "  dropped=" << mk_node->trace().dropped()
            << "  root spans=" << roots << "\n";
  std::vector<std::pair<std::string, LabelStats>> spans(by_label.begin(),
                                                        by_label.end());
  std::stable_sort(spans.begin(), spans.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.total_us > b.second.total_us;
                   });
  TextTable st({"span label", "count", "total (us)", "child spans"});
  st.set_align(0, Align::kLeft);
  for (const auto& [label, s] : spans) {
    st.add_row({label, TextTable::fmt_int(static_cast<long long>(s.count)),
                TextTable::fmt(s.total_us, 1),
                TextTable::fmt_int(static_cast<long long>(s.children))});
  }
  st.print(std::cout);

  // ---- Page-fault / TLB-shootdown span trees --------------------------
  const auto memory_root = [](const sim::TraceRecord& r) {
    return r.label.rfind("fault:", 0) == 0 || r.label.rfind("unmap:", 0) == 0;
  };
  print_span_trees(linux_records,
                   "Page-fault & unmap span trees (Linux node)",
                   memory_root, 4);
  print_span_trees(records,
                   "Page-fault span trees (multi-kernel node)",
                   memory_root, 4);

  // ---- Collective / BSP phase span trees ------------------------------
  sim::TraceBuffer bsp_trace(1 << 14);
  MiniSolver solver;
  const cluster::JobConfig bsp_job{.nodes = 64, .ranks_per_node = 4,
                                   .threads_per_rank = 12};
  const auto linux_env = cluster::make_fugaku_linux_env();
  const auto mck_env = cluster::make_fugaku_mckernel_env();
  cluster::BspEngine linux_engine(linux_env, bsp_job, Seed{7});
  linux_engine.set_trace(&bsp_trace, /*track=*/0);
  const auto linux_bsp = linux_engine.run(solver);
  cluster::BspEngine mck_engine(mck_env, bsp_job, Seed{7});
  mck_engine.set_trace(&bsp_trace, /*track=*/1);
  const auto mck_bsp = mck_engine.run(solver);
  const auto bsp_records = bsp_trace.snapshot();
  print_span_trees(
      bsp_records, "BSP collective-phase span trees (rank track 0 = Linux)",
      [](const sim::TraceRecord& r) {
        return r.core == 0 && r.label.rfind("bsp:", 0) == 0;
      },
      2);

  // ---- Merged Chrome trace export -------------------------------------
  std::vector<sim::ChromeTraceGroup> groups;
  groups.push_back(
      {linux_records,
       sim::ChromeTraceOptions{.pid = 0, .process_name = "linux-node"}});
  groups.push_back(
      {records,
       sim::ChromeTraceOptions{.pid = 1,
                               .process_name = "multikernel-node"}});
  groups.push_back(
      {bsp_records,
       sim::ChromeTraceOptions{
           .pid = 2,
           .process_name = "bsp-cluster",
           .thread_names = {{0, "rank 0 (fugaku-linux)"},
                            {1, "rank 0 (fugaku-mckernel)"}}}});
  const JsonValue doc = sim::chrome_trace_document(groups);
  if (const std::string err = sim::validate_chrome_trace(doc); !err.empty()) {
    std::cerr << "merged Chrome trace failed validation: " << err << "\n";
    return 1;
  }
  const std::string path = "obs_report_trace.json";
  std::ofstream out(path);
  out << doc.dump_pretty() << "\n";
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  std::cout << "\nMerged Chrome trace (validated) written to " << path
            << " — open it at\nhttps://ui.perfetto.dev: offloaded syscalls, "
               "page-fault/TLB-shootdown trees\nand named BSP rank tracks "
               "share one timeline across three pids.\n";

  // ---- Machine-readable report (--json) -------------------------------
  obs::BenchReport report("obs_report", opts.quick, options.seed.value);
  report.add_metric("obs_report.linux_trace_records", "count",
                    static_cast<double>(linux_records.size()));
  report.add_metric("obs_report.mk_trace_records", "count",
                    static_cast<double>(records.size()));
  report.add_metric("obs_report.mk_root_spans", "count",
                    static_cast<double>(roots));
  report.add_metric("obs_report.bsp_trace_records", "count",
                    static_cast<double>(bsp_records.size()));
  report.add_metric("obs_report.bsp_linux_total_ms", "ms",
                    linux_bsp.total.to_ms());
  report.add_metric("obs_report.bsp_mck_total_ms", "ms",
                    mck_bsp.total.to_ms());
  // Every registry counter under its raw dotted name; the OpenMetrics
  // exposition preserves the same names in its `name` label, so the two
  // exports stay round-trippable (pinned by the ObsRoundTrip test).
  obs::ts::add_registry_metrics(report, linux_node->registry(),
                                "counter.linux");
  obs::ts::add_registry_metrics(report, mk_node->registry(), "counter.mk");
  report.add_metric(
      "host.wall_s", "s",
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count());
  obs::maybe_write_report(report, opts);
  return 0;
}
