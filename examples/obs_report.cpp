// obs_report — cross-layer observability tour (ROADMAP: observability).
//
// Runs the same short campaign on a Linux node and a multi-kernel node
// with the counter registry and the trace buffer enabled, then prints
// what the instrumentation saw:
//   * a ranked counter comparison (Linux vs multi-kernel, the Table 2
//     presentation style applied to kernel-internal event counts),
//   * the offload-path latency histograms (enqueue -> proxy wakeup ->
//     execute -> reply, plus round trip),
//   * a span report grouped by label, reconstructed from the trace
//     buffer's span/parent ids,
// and exports the multi-kernel node's trace as Chrome trace_event JSON
// (load it at https://ui.perfetto.dev or chrome://tracing).
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "common/table.h"
#include "noise/fwq.h"
#include "obs/registry.h"
#include "sim/chrome_trace.h"

namespace {

using namespace hpcos;

// Issues a burst of syscalls: local clock reads interleaved with calls
// McKernel must delegate to the Linux side (stat).
struct SyscallBurst final : os::ThreadBody {
  int remaining = 32;
  void step(os::ThreadContext& ctx) override {
    if (remaining-- <= 0) {
      ctx.exit();
      return;
    }
    ctx.invoke(remaining % 4 == 0 ? os::Syscall::kStat
                                  : os::Syscall::kGetTimeOfDay,
               {});
  }
};

// One node's campaign: a syscall burst on the application kernel followed
// by a short FWQ run on every application core.
void run_campaign(cluster::SimNode& node) {
  node.app_kernel().spawn(std::make_unique<SyscallBurst>(),
                          os::SpawnAttrs{.name = "syscall-burst"});
  node.simulator().run_until(SimTime::ms(50));
  noise::FwqConfig fwq;
  fwq.work_quantum = SimTime::from_ms(1);
  fwq.iterations = 200;
  noise::run_fwq(node.app_kernel(), node.topology().application_cores(),
                 fwq);
}

}  // namespace

int main() {
  const auto platform = hw::make_fugaku_testbed_platform();

  cluster::SimNodeOptions options;
  options.seed = Seed{2021};
  options.observability = true;
  options.trace_capacity = 1 << 16;

  auto linux_node = cluster::SimNode::make_linux_node(
      platform, linuxk::make_fugaku_linux_config(platform), options);
  auto mk_node = cluster::SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      mck::McKernelConfig::defaults(), options);

  run_campaign(*linux_node);
  run_campaign(*mk_node);

  // ---- Ranked counter comparison -------------------------------------
  const auto ls = linux_node->registry().snapshot();
  const auto ms = mk_node->registry().snapshot();
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const auto& c : ls.counters) merged[c.name].first = c.value;
  for (const auto& c : ms.counters) merged[c.name].second = c.value;
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      ranked(merged.begin(), merged.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return std::max(a.second.first, a.second.second) >
                            std::max(b.second.first, b.second.second);
                   });
  print_banner(std::cout,
               "Counter registry: Linux node vs multi-kernel node "
               "(ranked by count)");
  TextTable t({"counter", "Linux node", "multi-kernel node"});
  t.set_align(0, Align::kLeft);
  for (const auto& [name, values] : ranked) {
    auto fmt = [](std::uint64_t v) {
      return v == 0 ? std::string("-")
                    : TextTable::fmt_int(static_cast<long long>(v));
    };
    t.add_row({name, fmt(values.first), fmt(values.second)});
  }
  t.print(std::cout);

  // ---- Offload latency split -----------------------------------------
  print_banner(std::cout,
               "Syscall offload latency split (multi-kernel node)");
  TextTable h({"histogram", "samples", "p50", "p99", "max"});
  h.set_align(0, Align::kLeft);
  for (const auto& e : ms.histograms) {
    h.add_row({e.name, TextTable::fmt_int(static_cast<long long>(e.count)),
               TextTable::fmt(e.p50, 2), TextTable::fmt(e.p99, 2),
               TextTable::fmt(e.max, 2)});
  }
  h.print(std::cout);

  // ---- Span report ----------------------------------------------------
  const auto records = mk_node->trace().snapshot();
  struct LabelStats {
    std::uint64_t count = 0;
    double total_us = 0.0;
    std::uint64_t children = 0;
  };
  std::map<std::string, LabelStats> by_label;
  std::uint64_t roots = 0;
  for (const auto& r : records) {
    if (r.span == 0) continue;  // unspanned event records
    auto& s = by_label[r.label];
    ++s.count;
    s.total_us += r.duration.to_us();
    if (r.parent != 0) {
      ++s.children;
    } else {
      ++roots;
    }
  }
  print_banner(std::cout, "Span report (trace buffer, grouped by label)");
  std::cout << "trace records=" << records.size()
            << "  dropped=" << mk_node->trace().dropped()
            << "  root spans=" << roots << "\n";
  std::vector<std::pair<std::string, LabelStats>> spans(by_label.begin(),
                                                        by_label.end());
  std::stable_sort(spans.begin(), spans.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.total_us > b.second.total_us;
                   });
  TextTable st({"span label", "count", "total (us)", "child spans"});
  st.set_align(0, Align::kLeft);
  for (const auto& [label, s] : spans) {
    st.add_row({label, TextTable::fmt_int(static_cast<long long>(s.count)),
                TextTable::fmt(s.total_us, 1),
                TextTable::fmt_int(static_cast<long long>(s.children))});
  }
  st.print(std::cout);

  // ---- Chrome trace export --------------------------------------------
  const std::string path = "obs_report_trace.json";
  sim::export_chrome_trace(
      mk_node->trace(), path,
      sim::ChromeTraceOptions{.pid = 1,
                              .process_name = "multikernel-node"});
  std::cout << "\nChrome trace written to " << path
            << " — open it at https://ui.perfetto.dev (or chrome://tracing)"
               "\nto see each offloaded syscall as a parent span over "
               "marshal/IKC/proxy\nchild spans.\n";
  return 0;
}
