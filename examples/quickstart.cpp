// Quickstart: boot a simulated Fugaku node twice — once as plain tuned
// Linux, once as an IHK/McKernel multi-kernel — run the FWQ noise
// benchmark on the application cores of each, and compare.
//
//   $ ./examples/quickstart
//
// This is the smallest end-to-end tour of the public API: platform
// configs (hw::), node assembly (cluster::SimNode), the FWQ workload
// (noise::), and the paper's noise metrics.
#include <iostream>

#include "cluster/node.h"
#include "common/table.h"
#include "noise/fwq.h"
#include "noise/metrics.h"
#include "noise/profiles.h"

using namespace hpcos;

namespace {

noise::NoiseStats measure_node(cluster::SimNode& node) {
  noise::FwqConfig fwq;
  fwq.work_quantum = SimTime::from_ms(6.5);  // the paper's quantum
  fwq.iterations = 5000;                     // ~32 s per core
  const auto traces = noise::run_fwq(
      node.app_kernel(), node.topology().application_cores(), fwq);
  return noise::compute_noise_stats(traces);
}

}  // namespace

int main() {
  const auto platform = hw::make_fugaku_testbed_platform();

  // --- configuration 1: the highly tuned Fugaku Linux (all §4
  //     countermeasures on) running applications itself ---
  auto linux_node = cluster::SimNode::make_linux_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      cluster::SimNodeOptions{.seed = Seed{2021}});
  const auto linux_stats = measure_node(*linux_node);

  // --- configuration 2: the multi-kernel — Linux keeps the assistant
  //     cores, IHK reserves the 48 application cores, McKernel boots on
  //     them, and syscall delegation is wired through IKC proxies ---
  auto mk_node = cluster::SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      mck::McKernelConfig::defaults(),
      cluster::SimNodeOptions{.seed = Seed{2021}});
  const auto mck_stats = measure_node(*mk_node);

  print_banner(std::cout, "FWQ on one A64FX node: Linux vs IHK/McKernel");
  TextTable t({"environment", "min iteration", "max noise length",
               "noise rate (Eq. 2)"});
  t.add_row({"Fugaku Linux (tuned)", linux_stats.t_min.to_string(),
             linux_stats.max_noise_length.to_string(),
             TextTable::fmt_sci(linux_stats.noise_rate, 2)});
  t.add_row({"IHK/McKernel", mck_stats.t_min.to_string(),
             mck_stats.max_noise_length.to_string(),
             TextTable::fmt_sci(mck_stats.noise_rate, 2)});
  t.print(std::cout);

  std::cout << "\nThe LWK runs no ticks, daemons, or kernel threads on its "
               "cores;\neven a highly tuned Linux keeps a small residual "
               "(sar, residual ticks,\nshared-hardware contention). "
               "Multi-kernel stats: "
            << mk_node->lwk()->local_syscalls() << " local syscalls, "
            << mk_node->lwk()->offloaded_syscalls() << " offloaded.\n";
  return 0;
}
