// Application scaling: run one workload across node counts on both OS
// environments of a platform and print absolute + relative results.
//
//   $ ./examples/app_scaling [workload] [platform]
//     workload: AMG2013 | Milc | Lulesh | LQCD | GeoFEM | GAMERA
//     platform: ofp | fugaku
//
// Defaults to GAMERA on Fugaku — the paper's most OS-sensitive case.
#include <iostream>
#include <string>

#include "apps/registry.h"
#include "cluster/bsp.h"
#include "common/table.h"

using namespace hpcos;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "GAMERA";
  const std::string platform_name = argc > 2 ? argv[2] : "fugaku";
  const bool fugaku = platform_name != "ofp";
  const auto platform_kind =
      fugaku ? apps::PlatformKind::kFugaku : apps::PlatformKind::kOfp;

  const cluster::OsEnvironment linux_env =
      fugaku ? cluster::make_fugaku_linux_env()
             : cluster::make_ofp_linux_env();
  const cluster::OsEnvironment mck_env =
      fugaku ? cluster::make_fugaku_mckernel_env()
             : cluster::make_ofp_mckernel_env();

  const auto w = apps::make_workload(workload, platform_kind);

  print_banner(std::cout, workload + " scaling on " + linux_env.platform.name);
  TextTable t({"nodes", "ranks", "Linux total (s)", "McKernel total (s)",
               "McKernel relative", "Linux init (s)", "McKernel init (s)"});
  for (const std::int64_t nodes : {32ll, 128ll, 512ll, 2048ll, 8192ll}) {
    const auto job = apps::job_geometry(workload, platform_kind, nodes);
    cluster::BspEngine linux_engine(linux_env, job, Seed{5});
    cluster::BspEngine mck_engine(mck_env, job, Seed{5});
    const auto lr = linux_engine.run(*w);
    const auto mr = mck_engine.run(*w);
    t.add_row({TextTable::fmt_int(nodes),
               TextTable::fmt_int(job.total_ranks()),
               TextTable::fmt(lr.total.to_sec(), 3),
               TextTable::fmt(mr.total.to_sec(), 3),
               TextTable::fmt(lr.total.ratio(mr.total), 3),
               TextTable::fmt(lr.init_time.to_sec(), 3),
               TextTable::fmt(mr.init_time.to_sec(), 3)});
  }
  t.print(std::cout);
  std::cout << "\n(relative > 1.0 means McKernel is faster; for GAMERA the "
               "init column\nshows the RDMA-registration gap the PicoDriver "
               "closes, §5.1/§6.4)\n";
  return 0;
}
