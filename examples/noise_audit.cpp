// Noise audit: the paper's §4.2 methodology as a tool.
//
// Runs FWQ on a Fugaku-like Linux node with a *deliberately mistuned*
// configuration (daemons unbound, PMU collection on, TLBI broadcasts
// enabled), then uses the ftrace-style trace buffer and the per-core
// accounting to attribute the observed noise to its sources — the same
// workflow the authors used to find the blk-mq cpumask problem and the
// TCS PMU reads (§4.2.1) and to separate kernel-time noise from pure
// hardware interference (§4.2.2).
#include <iostream>

#include "cluster/node.h"
#include "common/table.h"
#include "linuxk/interference.h"
#include "noise/attribution.h"
#include "noise/fwq.h"
#include "noise/metrics.h"
#include "noise/profiles.h"

using namespace hpcos;

int main() {
  const auto platform = hw::make_fugaku_testbed_platform();
  // Mistuned: three countermeasures off.
  noise::Countermeasures cm;
  cm.bind_daemons = false;
  cm.stop_pmu_reads = false;
  cm.suppress_global_tlbi = false;
  auto cfg = linuxk::make_fugaku_linux_config(platform, cm);
  cfg.profile = noise::strip_population_tails(cfg.profile);

  auto node = cluster::SimNode::make_linux_node(
      platform, std::move(cfg),
      cluster::SimNodeOptions{.seed = Seed{99},
                              .trace_capacity = 1 << 20});

  noise::FwqConfig fwq;
  fwq.work_quantum = SimTime::from_ms(6.5);
  fwq.iterations = 10'000;
  const auto traces = noise::run_fwq(
      node->app_kernel(), node->topology().application_cores(), fwq);
  const auto stats = noise::compute_noise_stats(traces);

  print_banner(std::cout, "FWQ result on the mistuned node");
  std::cout << "max noise length: " << stats.max_noise_length.to_string()
            << ", noise rate: " << TextTable::fmt_sci(stats.noise_rate, 2)
            << "\n";

  // ---- step 1: ftrace-style interference report (§4.2.1) ----
  const auto app_cores = node->topology().application_cores();
  const auto report = linuxk::analyze_interference(node->trace(), app_cores);
  print_banner(std::cout,
               "Interference report (ftrace methodology, §4.2.1)");
  std::cout << to_string(report);
  std::cout << "dominant interferer: " << report.dominant()
            << "  (total stolen: " << report.total_interference.to_string()
            << " across " << report.total_events << " events)\n";

  // ---- step 2: per-core PMU attribution (§4.2.2) ----
  print_banner(std::cout,
               "Per-core attribution: OS activity vs hardware contention");
  TextTable acct_table(
      {"core", "class", "kernel time", "stall time", "interrupts"});
  const os::CoreAccounting fresh{};
  for (hw::CoreId c : app_cores.to_vector()) {
    const auto r = noise::attribute_window(fresh, node->linux().accounting(c));
    if (r.cls == noise::InterferenceClass::kNone) continue;
    acct_table.add_row({TextTable::fmt_int(c), to_string(r.cls),
                        r.kernel_time.to_string(), r.stall_time.to_string(),
                        TextTable::fmt_int(
                            static_cast<long long>(r.interrupts))});
  }
  acct_table.print(std::cout);

  std::cout << "\nReading: daemon bursts and PMU IPIs show up as kernel "
               "time; the TLBI\nbroadcast shows up as stall time only — "
               "exactly how §4.2.2 distinguishes\nthe two classes of "
               "interference with performance counters.\n";
  return 0;
}
