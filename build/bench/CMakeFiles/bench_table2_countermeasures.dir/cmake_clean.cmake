file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_countermeasures.dir/bench_table2_countermeasures.cpp.o"
  "CMakeFiles/bench_table2_countermeasures.dir/bench_table2_countermeasures.cpp.o.d"
  "bench_table2_countermeasures"
  "bench_table2_countermeasures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_countermeasures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
