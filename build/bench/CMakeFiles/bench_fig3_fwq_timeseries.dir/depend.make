# Empty dependencies file for bench_fig3_fwq_timeseries.
# This may be replaced when dependencies are built.
