file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_coral_ofp.dir/bench_fig5_coral_ofp.cpp.o"
  "CMakeFiles/bench_fig5_coral_ofp.dir/bench_fig5_coral_ofp.cpp.o.d"
  "bench_fig5_coral_ofp"
  "bench_fig5_coral_ofp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_coral_ofp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
