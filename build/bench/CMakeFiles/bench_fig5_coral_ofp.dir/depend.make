# Empty dependencies file for bench_fig5_coral_ofp.
# This may be replaced when dependencies are built.
