file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tlbi.dir/bench_ablation_tlbi.cpp.o"
  "CMakeFiles/bench_ablation_tlbi.dir/bench_ablation_tlbi.cpp.o.d"
  "bench_ablation_tlbi"
  "bench_ablation_tlbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tlbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
