# Empty compiler generated dependencies file for bench_ablation_tlbi.
# This may be replaced when dependencies are built.
