file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_apps_fugaku.dir/bench_fig7_apps_fugaku.cpp.o"
  "CMakeFiles/bench_fig7_apps_fugaku.dir/bench_fig7_apps_fugaku.cpp.o.d"
  "bench_fig7_apps_fugaku"
  "bench_fig7_apps_fugaku.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_apps_fugaku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
