# Empty compiler generated dependencies file for bench_fig7_apps_fugaku.
# This may be replaced when dependencies are built.
