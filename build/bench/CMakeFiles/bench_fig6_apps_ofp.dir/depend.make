# Empty dependencies file for bench_fig6_apps_ofp.
# This may be replaced when dependencies are built.
