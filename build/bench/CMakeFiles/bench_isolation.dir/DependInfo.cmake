
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_isolation.cpp" "bench/CMakeFiles/bench_isolation.dir/bench_isolation.cpp.o" "gcc" "bench/CMakeFiles/bench_isolation.dir/bench_isolation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/hpcos_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hpcos_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxk/CMakeFiles/hpcos_linuxk.dir/DependInfo.cmake"
  "/root/repo/build/src/mckernel/CMakeFiles/hpcos_mckernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ihk/CMakeFiles/hpcos_ihk.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hpcos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/hpcos_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/hpcos_oskernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
