# Empty compiler generated dependencies file for multikernel_tour.
# This may be replaced when dependencies are built.
