file(REMOVE_RECURSE
  "CMakeFiles/multikernel_tour.dir/multikernel_tour.cpp.o"
  "CMakeFiles/multikernel_tour.dir/multikernel_tour.cpp.o.d"
  "multikernel_tour"
  "multikernel_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multikernel_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
