file(REMOVE_RECURSE
  "CMakeFiles/noise_audit.dir/noise_audit.cpp.o"
  "CMakeFiles/noise_audit.dir/noise_audit.cpp.o.d"
  "noise_audit"
  "noise_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
