# Empty compiler generated dependencies file for noise_audit.
# This may be replaced when dependencies are built.
