# Empty dependencies file for app_scaling.
# This may be replaced when dependencies are built.
