file(REMOVE_RECURSE
  "CMakeFiles/app_scaling.dir/app_scaling.cpp.o"
  "CMakeFiles/app_scaling.dir/app_scaling.cpp.o.d"
  "app_scaling"
  "app_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
