
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_des_cluster.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_des_cluster.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_des_cluster.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_ihk.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_ihk.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_ihk.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_linuxk.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_linuxk.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_linuxk.cpp.o.d"
  "/root/repo/tests/test_linuxk_subsys.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_linuxk_subsys.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_linuxk_subsys.cpp.o.d"
  "/root/repo/tests/test_mckernel.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_mckernel.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_mckernel.cpp.o.d"
  "/root/repo/tests/test_more_coverage.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_more_coverage.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_more_coverage.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_noise.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_noise.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_noise.cpp.o.d"
  "/root/repo/tests/test_oskernel.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_oskernel.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_oskernel.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_tools.cpp" "tests/CMakeFiles/hpcos_tests.dir/test_tools.cpp.o" "gcc" "tests/CMakeFiles/hpcos_tests.dir/test_tools.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpcos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/hpcos_oskernel.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/hpcos_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxk/CMakeFiles/hpcos_linuxk.dir/DependInfo.cmake"
  "/root/repo/build/src/ihk/CMakeFiles/hpcos_ihk.dir/DependInfo.cmake"
  "/root/repo/build/src/mckernel/CMakeFiles/hpcos_mckernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hpcos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hpcos_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hpcos_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
