# Empty dependencies file for hpcos_tests.
# This may be replaced when dependencies are built.
