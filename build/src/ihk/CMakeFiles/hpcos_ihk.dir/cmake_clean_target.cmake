file(REMOVE_RECURSE
  "libhpcos_ihk.a"
)
