file(REMOVE_RECURSE
  "CMakeFiles/hpcos_ihk.dir/ihk.cpp.o"
  "CMakeFiles/hpcos_ihk.dir/ihk.cpp.o.d"
  "CMakeFiles/hpcos_ihk.dir/ikc.cpp.o"
  "CMakeFiles/hpcos_ihk.dir/ikc.cpp.o.d"
  "CMakeFiles/hpcos_ihk.dir/resource.cpp.o"
  "CMakeFiles/hpcos_ihk.dir/resource.cpp.o.d"
  "libhpcos_ihk.a"
  "libhpcos_ihk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_ihk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
