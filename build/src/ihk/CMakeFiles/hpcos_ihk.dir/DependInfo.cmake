
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ihk/ihk.cpp" "src/ihk/CMakeFiles/hpcos_ihk.dir/ihk.cpp.o" "gcc" "src/ihk/CMakeFiles/hpcos_ihk.dir/ihk.cpp.o.d"
  "/root/repo/src/ihk/ikc.cpp" "src/ihk/CMakeFiles/hpcos_ihk.dir/ikc.cpp.o" "gcc" "src/ihk/CMakeFiles/hpcos_ihk.dir/ikc.cpp.o.d"
  "/root/repo/src/ihk/resource.cpp" "src/ihk/CMakeFiles/hpcos_ihk.dir/resource.cpp.o" "gcc" "src/ihk/CMakeFiles/hpcos_ihk.dir/resource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpcos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/hpcos_oskernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
