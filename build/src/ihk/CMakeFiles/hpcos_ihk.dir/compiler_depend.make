# Empty compiler generated dependencies file for hpcos_ihk.
# This may be replaced when dependencies are built.
