# Empty compiler generated dependencies file for hpcos_cluster.
# This may be replaced when dependencies are built.
