
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/bsp.cpp" "src/cluster/CMakeFiles/hpcos_cluster.dir/bsp.cpp.o" "gcc" "src/cluster/CMakeFiles/hpcos_cluster.dir/bsp.cpp.o.d"
  "/root/repo/src/cluster/des_cluster.cpp" "src/cluster/CMakeFiles/hpcos_cluster.dir/des_cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/hpcos_cluster.dir/des_cluster.cpp.o.d"
  "/root/repo/src/cluster/fwq_campaign.cpp" "src/cluster/CMakeFiles/hpcos_cluster.dir/fwq_campaign.cpp.o" "gcc" "src/cluster/CMakeFiles/hpcos_cluster.dir/fwq_campaign.cpp.o.d"
  "/root/repo/src/cluster/job_launcher.cpp" "src/cluster/CMakeFiles/hpcos_cluster.dir/job_launcher.cpp.o" "gcc" "src/cluster/CMakeFiles/hpcos_cluster.dir/job_launcher.cpp.o.d"
  "/root/repo/src/cluster/machine_noise.cpp" "src/cluster/CMakeFiles/hpcos_cluster.dir/machine_noise.cpp.o" "gcc" "src/cluster/CMakeFiles/hpcos_cluster.dir/machine_noise.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/hpcos_cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/hpcos_cluster.dir/node.cpp.o.d"
  "/root/repo/src/cluster/osenv.cpp" "src/cluster/CMakeFiles/hpcos_cluster.dir/osenv.cpp.o" "gcc" "src/cluster/CMakeFiles/hpcos_cluster.dir/osenv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpcos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/hpcos_oskernel.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/hpcos_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxk/CMakeFiles/hpcos_linuxk.dir/DependInfo.cmake"
  "/root/repo/build/src/ihk/CMakeFiles/hpcos_ihk.dir/DependInfo.cmake"
  "/root/repo/build/src/mckernel/CMakeFiles/hpcos_mckernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hpcos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
