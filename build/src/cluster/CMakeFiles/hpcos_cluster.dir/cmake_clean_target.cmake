file(REMOVE_RECURSE
  "libhpcos_cluster.a"
)
