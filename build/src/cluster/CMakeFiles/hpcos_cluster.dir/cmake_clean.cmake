file(REMOVE_RECURSE
  "CMakeFiles/hpcos_cluster.dir/bsp.cpp.o"
  "CMakeFiles/hpcos_cluster.dir/bsp.cpp.o.d"
  "CMakeFiles/hpcos_cluster.dir/des_cluster.cpp.o"
  "CMakeFiles/hpcos_cluster.dir/des_cluster.cpp.o.d"
  "CMakeFiles/hpcos_cluster.dir/fwq_campaign.cpp.o"
  "CMakeFiles/hpcos_cluster.dir/fwq_campaign.cpp.o.d"
  "CMakeFiles/hpcos_cluster.dir/job_launcher.cpp.o"
  "CMakeFiles/hpcos_cluster.dir/job_launcher.cpp.o.d"
  "CMakeFiles/hpcos_cluster.dir/machine_noise.cpp.o"
  "CMakeFiles/hpcos_cluster.dir/machine_noise.cpp.o.d"
  "CMakeFiles/hpcos_cluster.dir/node.cpp.o"
  "CMakeFiles/hpcos_cluster.dir/node.cpp.o.d"
  "CMakeFiles/hpcos_cluster.dir/osenv.cpp.o"
  "CMakeFiles/hpcos_cluster.dir/osenv.cpp.o.d"
  "libhpcos_cluster.a"
  "libhpcos_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
