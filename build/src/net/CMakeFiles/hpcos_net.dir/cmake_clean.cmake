file(REMOVE_RECURSE
  "CMakeFiles/hpcos_net.dir/collectives.cpp.o"
  "CMakeFiles/hpcos_net.dir/collectives.cpp.o.d"
  "CMakeFiles/hpcos_net.dir/fabric.cpp.o"
  "CMakeFiles/hpcos_net.dir/fabric.cpp.o.d"
  "CMakeFiles/hpcos_net.dir/rdma.cpp.o"
  "CMakeFiles/hpcos_net.dir/rdma.cpp.o.d"
  "libhpcos_net.a"
  "libhpcos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
