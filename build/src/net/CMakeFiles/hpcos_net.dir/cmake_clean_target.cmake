file(REMOVE_RECURSE
  "libhpcos_net.a"
)
