# Empty compiler generated dependencies file for hpcos_net.
# This may be replaced when dependencies are built.
