# Empty compiler generated dependencies file for hpcos_hw.
# This may be replaced when dependencies are built.
