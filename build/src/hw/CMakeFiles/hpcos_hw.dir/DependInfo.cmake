
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cache.cpp" "src/hw/CMakeFiles/hpcos_hw.dir/cache.cpp.o" "gcc" "src/hw/CMakeFiles/hpcos_hw.dir/cache.cpp.o.d"
  "/root/repo/src/hw/cpuset.cpp" "src/hw/CMakeFiles/hpcos_hw.dir/cpuset.cpp.o" "gcc" "src/hw/CMakeFiles/hpcos_hw.dir/cpuset.cpp.o.d"
  "/root/repo/src/hw/hwbarrier.cpp" "src/hw/CMakeFiles/hpcos_hw.dir/hwbarrier.cpp.o" "gcc" "src/hw/CMakeFiles/hpcos_hw.dir/hwbarrier.cpp.o.d"
  "/root/repo/src/hw/memory.cpp" "src/hw/CMakeFiles/hpcos_hw.dir/memory.cpp.o" "gcc" "src/hw/CMakeFiles/hpcos_hw.dir/memory.cpp.o.d"
  "/root/repo/src/hw/platform.cpp" "src/hw/CMakeFiles/hpcos_hw.dir/platform.cpp.o" "gcc" "src/hw/CMakeFiles/hpcos_hw.dir/platform.cpp.o.d"
  "/root/repo/src/hw/pmu.cpp" "src/hw/CMakeFiles/hpcos_hw.dir/pmu.cpp.o" "gcc" "src/hw/CMakeFiles/hpcos_hw.dir/pmu.cpp.o.d"
  "/root/repo/src/hw/tlb.cpp" "src/hw/CMakeFiles/hpcos_hw.dir/tlb.cpp.o" "gcc" "src/hw/CMakeFiles/hpcos_hw.dir/tlb.cpp.o.d"
  "/root/repo/src/hw/topology.cpp" "src/hw/CMakeFiles/hpcos_hw.dir/topology.cpp.o" "gcc" "src/hw/CMakeFiles/hpcos_hw.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpcos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
