file(REMOVE_RECURSE
  "CMakeFiles/hpcos_hw.dir/cache.cpp.o"
  "CMakeFiles/hpcos_hw.dir/cache.cpp.o.d"
  "CMakeFiles/hpcos_hw.dir/cpuset.cpp.o"
  "CMakeFiles/hpcos_hw.dir/cpuset.cpp.o.d"
  "CMakeFiles/hpcos_hw.dir/hwbarrier.cpp.o"
  "CMakeFiles/hpcos_hw.dir/hwbarrier.cpp.o.d"
  "CMakeFiles/hpcos_hw.dir/memory.cpp.o"
  "CMakeFiles/hpcos_hw.dir/memory.cpp.o.d"
  "CMakeFiles/hpcos_hw.dir/platform.cpp.o"
  "CMakeFiles/hpcos_hw.dir/platform.cpp.o.d"
  "CMakeFiles/hpcos_hw.dir/pmu.cpp.o"
  "CMakeFiles/hpcos_hw.dir/pmu.cpp.o.d"
  "CMakeFiles/hpcos_hw.dir/tlb.cpp.o"
  "CMakeFiles/hpcos_hw.dir/tlb.cpp.o.d"
  "CMakeFiles/hpcos_hw.dir/topology.cpp.o"
  "CMakeFiles/hpcos_hw.dir/topology.cpp.o.d"
  "libhpcos_hw.a"
  "libhpcos_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
