file(REMOVE_RECURSE
  "libhpcos_hw.a"
)
