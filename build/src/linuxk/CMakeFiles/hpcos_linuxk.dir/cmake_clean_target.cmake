file(REMOVE_RECURSE
  "libhpcos_linuxk.a"
)
