# Empty compiler generated dependencies file for hpcos_linuxk.
# This may be replaced when dependencies are built.
