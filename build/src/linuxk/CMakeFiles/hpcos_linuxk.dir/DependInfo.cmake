
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linuxk/blkmq.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/blkmq.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/blkmq.cpp.o.d"
  "/root/repo/src/linuxk/cfs_scheduler.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/cfs_scheduler.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/cfs_scheduler.cpp.o.d"
  "/root/repo/src/linuxk/cgroup.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/cgroup.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/cgroup.cpp.o.d"
  "/root/repo/src/linuxk/config.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/config.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/config.cpp.o.d"
  "/root/repo/src/linuxk/hugetlbfs.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/hugetlbfs.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/hugetlbfs.cpp.o.d"
  "/root/repo/src/linuxk/interference.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/interference.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/interference.cpp.o.d"
  "/root/repo/src/linuxk/irq.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/irq.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/irq.cpp.o.d"
  "/root/repo/src/linuxk/linux_kernel.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/linux_kernel.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/linux_kernel.cpp.o.d"
  "/root/repo/src/linuxk/vnuma.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/vnuma.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/vnuma.cpp.o.d"
  "/root/repo/src/linuxk/workqueue.cpp" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/workqueue.cpp.o" "gcc" "src/linuxk/CMakeFiles/hpcos_linuxk.dir/workqueue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpcos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/hpcos_oskernel.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/hpcos_noise.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
