file(REMOVE_RECURSE
  "CMakeFiles/hpcos_linuxk.dir/blkmq.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/blkmq.cpp.o.d"
  "CMakeFiles/hpcos_linuxk.dir/cfs_scheduler.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/cfs_scheduler.cpp.o.d"
  "CMakeFiles/hpcos_linuxk.dir/cgroup.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/cgroup.cpp.o.d"
  "CMakeFiles/hpcos_linuxk.dir/config.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/config.cpp.o.d"
  "CMakeFiles/hpcos_linuxk.dir/hugetlbfs.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/hugetlbfs.cpp.o.d"
  "CMakeFiles/hpcos_linuxk.dir/interference.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/interference.cpp.o.d"
  "CMakeFiles/hpcos_linuxk.dir/irq.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/irq.cpp.o.d"
  "CMakeFiles/hpcos_linuxk.dir/linux_kernel.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/linux_kernel.cpp.o.d"
  "CMakeFiles/hpcos_linuxk.dir/vnuma.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/vnuma.cpp.o.d"
  "CMakeFiles/hpcos_linuxk.dir/workqueue.cpp.o"
  "CMakeFiles/hpcos_linuxk.dir/workqueue.cpp.o.d"
  "libhpcos_linuxk.a"
  "libhpcos_linuxk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_linuxk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
