
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oskernel/address_space.cpp" "src/oskernel/CMakeFiles/hpcos_oskernel.dir/address_space.cpp.o" "gcc" "src/oskernel/CMakeFiles/hpcos_oskernel.dir/address_space.cpp.o.d"
  "/root/repo/src/oskernel/kernel.cpp" "src/oskernel/CMakeFiles/hpcos_oskernel.dir/kernel.cpp.o" "gcc" "src/oskernel/CMakeFiles/hpcos_oskernel.dir/kernel.cpp.o.d"
  "/root/repo/src/oskernel/stall_bus.cpp" "src/oskernel/CMakeFiles/hpcos_oskernel.dir/stall_bus.cpp.o" "gcc" "src/oskernel/CMakeFiles/hpcos_oskernel.dir/stall_bus.cpp.o.d"
  "/root/repo/src/oskernel/syscall.cpp" "src/oskernel/CMakeFiles/hpcos_oskernel.dir/syscall.cpp.o" "gcc" "src/oskernel/CMakeFiles/hpcos_oskernel.dir/syscall.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpcos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
