file(REMOVE_RECURSE
  "libhpcos_oskernel.a"
)
