# Empty compiler generated dependencies file for hpcos_oskernel.
# This may be replaced when dependencies are built.
