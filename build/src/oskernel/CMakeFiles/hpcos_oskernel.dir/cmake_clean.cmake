file(REMOVE_RECURSE
  "CMakeFiles/hpcos_oskernel.dir/address_space.cpp.o"
  "CMakeFiles/hpcos_oskernel.dir/address_space.cpp.o.d"
  "CMakeFiles/hpcos_oskernel.dir/kernel.cpp.o"
  "CMakeFiles/hpcos_oskernel.dir/kernel.cpp.o.d"
  "CMakeFiles/hpcos_oskernel.dir/stall_bus.cpp.o"
  "CMakeFiles/hpcos_oskernel.dir/stall_bus.cpp.o.d"
  "CMakeFiles/hpcos_oskernel.dir/syscall.cpp.o"
  "CMakeFiles/hpcos_oskernel.dir/syscall.cpp.o.d"
  "libhpcos_oskernel.a"
  "libhpcos_oskernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_oskernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
