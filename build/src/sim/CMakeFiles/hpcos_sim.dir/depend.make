# Empty dependencies file for hpcos_sim.
# This may be replaced when dependencies are built.
