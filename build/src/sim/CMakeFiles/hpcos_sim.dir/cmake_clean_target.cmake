file(REMOVE_RECURSE
  "libhpcos_sim.a"
)
