file(REMOVE_RECURSE
  "CMakeFiles/hpcos_sim.dir/simulator.cpp.o"
  "CMakeFiles/hpcos_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hpcos_sim.dir/trace.cpp.o"
  "CMakeFiles/hpcos_sim.dir/trace.cpp.o.d"
  "libhpcos_sim.a"
  "libhpcos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
