file(REMOVE_RECURSE
  "CMakeFiles/hpcos_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/hpcos_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/hpcos_common.dir/histogram.cpp.o"
  "CMakeFiles/hpcos_common.dir/histogram.cpp.o.d"
  "CMakeFiles/hpcos_common.dir/parallel.cpp.o"
  "CMakeFiles/hpcos_common.dir/parallel.cpp.o.d"
  "CMakeFiles/hpcos_common.dir/rng.cpp.o"
  "CMakeFiles/hpcos_common.dir/rng.cpp.o.d"
  "CMakeFiles/hpcos_common.dir/sim_time.cpp.o"
  "CMakeFiles/hpcos_common.dir/sim_time.cpp.o.d"
  "CMakeFiles/hpcos_common.dir/stats.cpp.o"
  "CMakeFiles/hpcos_common.dir/stats.cpp.o.d"
  "CMakeFiles/hpcos_common.dir/table.cpp.o"
  "CMakeFiles/hpcos_common.dir/table.cpp.o.d"
  "libhpcos_common.a"
  "libhpcos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
