# Empty dependencies file for hpcos_common.
# This may be replaced when dependencies are built.
