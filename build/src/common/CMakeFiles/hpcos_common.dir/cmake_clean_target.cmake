file(REMOVE_RECURSE
  "libhpcos_common.a"
)
