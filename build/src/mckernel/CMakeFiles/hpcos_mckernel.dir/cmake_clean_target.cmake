file(REMOVE_RECURSE
  "libhpcos_mckernel.a"
)
