# Empty compiler generated dependencies file for hpcos_mckernel.
# This may be replaced when dependencies are built.
