file(REMOVE_RECURSE
  "CMakeFiles/hpcos_mckernel.dir/lwk_scheduler.cpp.o"
  "CMakeFiles/hpcos_mckernel.dir/lwk_scheduler.cpp.o.d"
  "CMakeFiles/hpcos_mckernel.dir/mckernel.cpp.o"
  "CMakeFiles/hpcos_mckernel.dir/mckernel.cpp.o.d"
  "CMakeFiles/hpcos_mckernel.dir/offload.cpp.o"
  "CMakeFiles/hpcos_mckernel.dir/offload.cpp.o.d"
  "CMakeFiles/hpcos_mckernel.dir/picodriver.cpp.o"
  "CMakeFiles/hpcos_mckernel.dir/picodriver.cpp.o.d"
  "libhpcos_mckernel.a"
  "libhpcos_mckernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_mckernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
