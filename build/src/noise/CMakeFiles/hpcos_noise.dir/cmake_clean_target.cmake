file(REMOVE_RECURSE
  "libhpcos_noise.a"
)
