
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noise/analytic.cpp" "src/noise/CMakeFiles/hpcos_noise.dir/analytic.cpp.o" "gcc" "src/noise/CMakeFiles/hpcos_noise.dir/analytic.cpp.o.d"
  "/root/repo/src/noise/attribution.cpp" "src/noise/CMakeFiles/hpcos_noise.dir/attribution.cpp.o" "gcc" "src/noise/CMakeFiles/hpcos_noise.dir/attribution.cpp.o.d"
  "/root/repo/src/noise/background.cpp" "src/noise/CMakeFiles/hpcos_noise.dir/background.cpp.o" "gcc" "src/noise/CMakeFiles/hpcos_noise.dir/background.cpp.o.d"
  "/root/repo/src/noise/ftq.cpp" "src/noise/CMakeFiles/hpcos_noise.dir/ftq.cpp.o" "gcc" "src/noise/CMakeFiles/hpcos_noise.dir/ftq.cpp.o.d"
  "/root/repo/src/noise/fwq.cpp" "src/noise/CMakeFiles/hpcos_noise.dir/fwq.cpp.o" "gcc" "src/noise/CMakeFiles/hpcos_noise.dir/fwq.cpp.o.d"
  "/root/repo/src/noise/metrics.cpp" "src/noise/CMakeFiles/hpcos_noise.dir/metrics.cpp.o" "gcc" "src/noise/CMakeFiles/hpcos_noise.dir/metrics.cpp.o.d"
  "/root/repo/src/noise/profiles.cpp" "src/noise/CMakeFiles/hpcos_noise.dir/profiles.cpp.o" "gcc" "src/noise/CMakeFiles/hpcos_noise.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpcos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcos_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oskernel/CMakeFiles/hpcos_oskernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
