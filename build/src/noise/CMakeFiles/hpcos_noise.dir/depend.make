# Empty dependencies file for hpcos_noise.
# This may be replaced when dependencies are built.
