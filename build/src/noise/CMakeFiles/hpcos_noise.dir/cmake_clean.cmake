file(REMOVE_RECURSE
  "CMakeFiles/hpcos_noise.dir/analytic.cpp.o"
  "CMakeFiles/hpcos_noise.dir/analytic.cpp.o.d"
  "CMakeFiles/hpcos_noise.dir/attribution.cpp.o"
  "CMakeFiles/hpcos_noise.dir/attribution.cpp.o.d"
  "CMakeFiles/hpcos_noise.dir/background.cpp.o"
  "CMakeFiles/hpcos_noise.dir/background.cpp.o.d"
  "CMakeFiles/hpcos_noise.dir/ftq.cpp.o"
  "CMakeFiles/hpcos_noise.dir/ftq.cpp.o.d"
  "CMakeFiles/hpcos_noise.dir/fwq.cpp.o"
  "CMakeFiles/hpcos_noise.dir/fwq.cpp.o.d"
  "CMakeFiles/hpcos_noise.dir/metrics.cpp.o"
  "CMakeFiles/hpcos_noise.dir/metrics.cpp.o.d"
  "CMakeFiles/hpcos_noise.dir/profiles.cpp.o"
  "CMakeFiles/hpcos_noise.dir/profiles.cpp.o.d"
  "libhpcos_noise.a"
  "libhpcos_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
