file(REMOVE_RECURSE
  "libhpcos_apps.a"
)
