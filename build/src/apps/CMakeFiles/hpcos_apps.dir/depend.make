# Empty dependencies file for hpcos_apps.
# This may be replaced when dependencies are built.
