file(REMOVE_RECURSE
  "CMakeFiles/hpcos_apps.dir/amg.cpp.o"
  "CMakeFiles/hpcos_apps.dir/amg.cpp.o.d"
  "CMakeFiles/hpcos_apps.dir/gamera.cpp.o"
  "CMakeFiles/hpcos_apps.dir/gamera.cpp.o.d"
  "CMakeFiles/hpcos_apps.dir/geofem.cpp.o"
  "CMakeFiles/hpcos_apps.dir/geofem.cpp.o.d"
  "CMakeFiles/hpcos_apps.dir/lqcd.cpp.o"
  "CMakeFiles/hpcos_apps.dir/lqcd.cpp.o.d"
  "CMakeFiles/hpcos_apps.dir/lulesh.cpp.o"
  "CMakeFiles/hpcos_apps.dir/lulesh.cpp.o.d"
  "CMakeFiles/hpcos_apps.dir/milc.cpp.o"
  "CMakeFiles/hpcos_apps.dir/milc.cpp.o.d"
  "CMakeFiles/hpcos_apps.dir/registry.cpp.o"
  "CMakeFiles/hpcos_apps.dir/registry.cpp.o.d"
  "libhpcos_apps.a"
  "libhpcos_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcos_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
