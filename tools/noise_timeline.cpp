// noise_timeline — the paper's timeline views, streamed, not replayed.
//
// Figure 3 shows per-countermeasure noise over a run on one node; Figure 4
// profiles OS noise across the full machine. This tool drives the
// streaming telemetry layer (obs/timeseries + common/sketch) end to end:
//
//  1. runs a seeded machine-scale FWQ campaign with the timeline enabled
//     and reconciles every per-source series total against the
//     attribution ledger (Eq. 2 stats) — the totals must agree to <1e-9
//     relative error or the tool exits non-zero,
//  2. renders the Fig. 3 analogue: per-source overhead over virtual time
//     as an ASCII plot, with tail quantiles from the mergeable sketches,
//  3. renders the Fig. 4 analogue: a node x time overhead heatmap
//     downsampled to a fixed grid at ingest,
//  4. boots a DES multi-kernel node and turns periodic Registry snapshot
//     deltas into linux.*/lwk.* counter-rate series (both kernels'
//     interrupt_ns counters — the per-kernel noise-rate timeline),
//  5. exports everything: OpenMetrics exposition (--openmetrics <path>),
//     BenchReport JSON with per-source metrics and full series dumps
//     (--json <path>; the timeline_smoke/timeline_gate ctest jobs consume
//     this).
//
// Flags: --quick (smaller campaign), --json <path>, --openmetrics <path>.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/config_json.h"
#include "cluster/fwq_campaign.h"
#include "cluster/node.h"
#include "common/ascii_plot.h"
#include "common/table.h"
#include "hw/platform.h"
#include "linuxk/config.h"
#include "mckernel/mckernel.h"
#include "noise/fwq.h"
#include "noise/profiles.h"
#include "obs/attrib/ledger.h"
#include "obs/bench_report.h"
#include "obs/timeseries/openmetrics.h"
#include "obs/timeseries/timeseries.h"

#include "cli_util.h"

namespace {

using namespace hpcos;

double relative_difference(double a, double b) {
  const double diff = std::abs(a - b);
  if (diff == 0.0) return 0.0;
  return diff / std::max(std::abs(a), std::abs(b));
}

// Fig. 4 glyph ramp, quietest to loudest.
constexpr const char* kHeatRamp = " .:-=+*#%@";

void print_heatmap(std::ostream& os, const obs::ts::NodeTimeGrid& grid) {
  const double max_cell = grid.max_cell();
  os << "  node bins (rows, first node id) x time bins (cols, "
     << grid.duration().to_sec() / static_cast<double>(grid.cols())
     << " s each); cell = overhead us, max " << TextTable::fmt(max_cell, 1)
     << " us\n";
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    os << "  " << TextTable::fmt_int(grid.row_first_node(r));
    os << " |";
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      const double v = grid.cell(r, c);
      std::size_t level = 0;
      if (max_cell > 0.0 && v > 0.0) {
        level = static_cast<std::size_t>(v / max_cell * 9.0);
        level = std::min<std::size_t>(level + 1, 9);
      }
      os << kHeatRamp[level];
    }
    os << "|\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto wall_start = std::chrono::steady_clock::now();
  auto opts = obs::parse_bench_options(argc, argv);
  std::string openmetrics_path;
  tools::CliArgs cli(
      "usage: noise_timeline [--quick] [--json <path>] [--ledger <path>]"
      " [--openmetrics <path>] [--progress[=ms]] [--watchdog[=s]]");
  cli.add_value("--openmetrics", &openmetrics_path);
  if (!cli.parse(opts.remaining)) return 2;

  const Seed seed{2025};
  obs::BenchReport report("noise_timeline", opts.quick, seed.value);

  // ---- 1. campaign with the streaming timeline on ----------------------
  const auto profile = noise::fugaku_linux_profile();
  cluster::FwqCampaignConfig config;
  config.nodes = opts.quick ? 96 : 1024;
  config.app_cores = 48;
  config.work_quantum = SimTime::from_ms(6.5);
  config.duration_per_core = opts.quick ? SimTime::sec(60) : SimTime::sec(600);
  config.seed = seed;
  config.timeline = true;
  // Ledger identity: the campaign config itself (semantic knobs only —
  // host thread count never reaches the hash).
  report.set_config(cluster::to_config_json(config));
  const auto campaign = cluster::run_fwq_campaign(profile, config);
  const auto ledger = obs::attrib::build_ledger(campaign, profile, config);
  const auto& timeline = campaign.timeline;

  // Reconciliation: each series' total must reproduce the ledger slot it
  // mirrors (same overhead terms, different association — shard-order
  // merge on both sides keeps the difference at fp-reassociation level).
  print_banner(std::cout,
               "Timeline reconciliation: " + profile.name + " campaign (" +
                   std::to_string(config.nodes) + " nodes x " +
                   std::to_string(config.app_cores) + " cores)");
  TextTable recon({"source", "ledger stolen (us)", "series sum (us)",
                   "rel err", "sketch p99 (us)", "buckets"});
  for (std::size_t c = 1; c < 5; ++c) recon.set_align(c, Align::kRight);
  double max_rel_err = 0.0;
  for (std::size_t i = 0; i < campaign.per_source.size(); ++i) {
    const auto& src = campaign.per_source[i];
    const double series_sum = timeline.per_source[i].total_sum();
    const double rel = relative_difference(src.stolen_us, series_sum);
    max_rel_err = std::max(max_rel_err, rel);
    recon.add_row({src.source, TextTable::fmt(src.stolen_us, 1),
                   TextTable::fmt(series_sum, 1), TextTable::fmt_sci(rel, 2),
                   TextTable::fmt(timeline.sketches[i].quantile(0.99), 1),
                   TextTable::fmt_int(static_cast<long long>(
                       timeline.per_source[i].bucket_count()))});
  }
  recon.print(std::cout);
  std::cout << "  max per-source relative error " << max_rel_err
            << " (bound 1e-9), ledger Eq. 2 reconciliation error "
            << ledger.reconciliation_error << "\n";
  if (max_rel_err >= 1e-9) {
    std::cerr << "noise_timeline: FAIL — series totals diverge from the "
                 "attribution ledger (max rel err "
              << max_rel_err << " >= 1e-9)\n";
    return 1;
  }

  // ---- 2. Fig. 3 analogue: per-source overhead over virtual time -------
  print_banner(std::cout,
               "Per-source noise timeline (overhead us per bucket, " +
                   std::to_string(timeline.per_source.front().resolution()
                                      .to_sec()) +
                   " s buckets)");
  // Top sources by stolen time, jitter floor excluded (it would flatten
  // the scale; its magnitude is in the table above).
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i + 1 < campaign.per_source.size(); ++i) {
    order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return campaign.per_source[a].stolen_us > campaign.per_source[b].stolen_us;
  });
  const char glyphs[] = {'*', '+', 'o', 'x', '#'};
  std::vector<PlotSeries> plot;
  for (std::size_t k = 0; k < order.size() && k < 4; ++k) {
    const std::size_t i = order[k];
    if (campaign.per_source[i].stolen_us <= 0.0) continue;
    const auto& series = timeline.per_source[i];
    PlotSeries ps;
    ps.label = campaign.per_source[i].source;
    ps.glyph = glyphs[k % sizeof(glyphs)];
    for (std::size_t b = 0; b < series.bucket_count(); ++b) {
      const double mid = series.bucket_start(b).to_sec() +
                         series.resolution().to_sec() / 2.0;
      ps.points.emplace_back(mid, series.bucket(b).sum);
    }
    plot.push_back(std::move(ps));
  }
  PlotOptions plot_opts;
  plot_opts.width = 72;
  plot_opts.height = 16;
  plot_opts.x_label = "virtual time (s)";
  plot_opts.y_label = "overhead (us/bucket)";
  ascii_plot(std::cout, plot, plot_opts);

  // ---- 3. Fig. 4 analogue: node x time heatmap -------------------------
  print_banner(std::cout, "Full-machine noise heatmap (Fig. 4 analogue)");
  print_heatmap(std::cout, timeline.heatmap);

  // ---- 4. DES node: registry deltas as per-kernel series ---------------
  // A multi-kernel node registers both kernels' counters (linux.* and
  // lwk.*) into one registry; the sampler turns periodic snapshot deltas
  // into counter-rate series — the per-kernel interrupt_ns timeline.
  const auto platform = hw::make_fugaku_testbed_platform();
  cluster::SimNodeOptions node_options;
  node_options.seed = seed;
  node_options.observability = true;
  auto node = cluster::SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      mck::McKernelConfig::defaults(), node_options);
  obs::ts::SeriesSet des_series;
  const SimTime sample_period = SimTime::ms(5);
  const SimTime des_until = SimTime::ms(60);
  obs::ts::RegistrySampler sampler(node->registry(), &des_series,
                                   sample_period, /*capacity=*/64,
                                   /*prefix=*/"node.");
  sampler.schedule(node->simulator(), des_until);
  noise::FwqConfig fwq;
  fwq.work_quantum = SimTime::from_ms(1);
  fwq.iterations = opts.quick ? 40 : 50;
  noise::run_fwq(node->app_kernel(), node->topology().application_cores(),
                 fwq);
  node->simulator().run_until(des_until);

  print_banner(std::cout,
               "DES node counter-rate series (" +
                   std::to_string(sampler.samples()) + " samples, " +
                   std::to_string(sample_period.to_ms()) + " ms period)");
  TextTable des_table({"series", "samples", "total delta", "max delta"});
  for (std::size_t c = 1; c < 4; ++c) des_table.set_align(c, Align::kRight);
  for (const auto& [name, s] : des_series.sorted()) {
    if (s->total_count() == 0) continue;
    double max_delta = 0.0;
    for (std::size_t b = 0; b < s->bucket_count(); ++b) {
      if (!s->bucket(b).empty()) {
        max_delta = std::max(max_delta, s->bucket(b).max);
      }
    }
    des_table.add_row({name,
                       TextTable::fmt_int(static_cast<long long>(
                           s->total_count())),
                       TextTable::fmt(s->total_sum(), 0),
                       TextTable::fmt(max_delta, 0)});
  }
  des_table.print(std::cout);

  // ---- 5. exports ------------------------------------------------------
  // One SeriesSet for the exposition: campaign per-source series under
  // fwq.*, DES counter-rate series under node.*.
  obs::ts::SeriesSet all_series;
  for (std::size_t i = 0; i < campaign.per_source.size(); ++i) {
    const auto& src = timeline.per_source[i];
    all_series
        .series("fwq." + campaign.per_source[i].source + ".overhead_us",
                src.resolution(), src.capacity())
        ->merge(src);
  }
  for (const auto& [name, s] : des_series.sorted()) {
    all_series.series(name, s->resolution(), s->capacity())->merge(*s);
  }
  if (!openmetrics_path.empty()) {
    std::ofstream out(openmetrics_path);
    if (!out) {
      std::cerr << "cannot open " << openmetrics_path << "\n";
      return 1;
    }
    out << obs::ts::openmetrics_text(node->registry(), &all_series);
    std::cout << "\nOpenMetrics exposition written to " << openmetrics_path
              << "\n";
  }

  report.add_metric("campaign.noise_rate", "ratio",
                    campaign.stats.noise_rate);
  report.add_metric("timeline.reconcile_ok", "bool",
                    max_rel_err < 1e-9 ? 1.0 : 0.0);
  for (std::size_t i = 0; i < campaign.per_source.size(); ++i) {
    const std::string base = "series." + campaign.per_source[i].source;
    report.add_metric(base + ".sum_us", "us",
                      timeline.per_source[i].total_sum());
    report.add_metric(base + ".p99_us", "us",
                      timeline.sketches[i].quantile(0.99));
  }
  report.add_metric("heatmap.total_us", "us", timeline.heatmap.total());
  report.add_metric("heatmap.max_cell_us", "us",
                    timeline.heatmap.max_cell());
  report.add_metric("des.sampler.samples", "count",
                    static_cast<double>(sampler.samples()));
  // Every DES registry counter, exactly (integers): the JSON half of the
  // OpenMetrics name round trip.
  obs::ts::add_registry_metrics(report, node->registry(), "counter");
  report.add_metric(
      "host.wall_s", "s",
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count());
  // Full series dumps ride along under the (ungated) "series" key.
  for (std::size_t i = 0; i < campaign.per_source.size(); ++i) {
    report.add_series("fwq." + campaign.per_source[i].source + ".overhead_us",
                      "us", timeline.per_source[i]);
  }
  if (const auto* s = des_series.find("node.linux.interrupt_ns")) {
    report.add_series("node.linux.interrupt_ns", "ns", *s);
  }
  if (const auto* s = des_series.find("node.lwk.interrupt_ns")) {
    report.add_series("node.lwk.interrupt_ns", "ns", *s);
  }
  obs::maybe_write_report(report, opts);
  return 0;
}
