// Shared argument parsing for the developer/CI tools.
//
// Every tool front-end starts with obs::parse_bench_options (--quick,
// --json, --profile) and then interprets the leftover arguments. The
// leftover loop used to be copy-pasted per tool; this header makes it
// declarative: register the tool's flags, parse opts.remaining, and get
// the exact error behavior the tools always had (unknown argument →
// message + usage line on stderr, caller exits 2).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace hpcos::tools {

class CliArgs {
 public:
  explicit CliArgs(std::string usage) : usage_(std::move(usage)) {}

  // --flag <value>: stores the value into *out when present.
  CliArgs& add_value(std::string flag, std::string* out) {
    values_.push_back({std::move(flag), out});
    return *this;
  }

  // --flag: sets *out = true when present.
  CliArgs& add_flag(std::string flag, bool* out) {
    flags_.push_back({std::move(flag), out});
    return *this;
  }

  // Parse the argv remainder parse_bench_options produced (argv[0] at
  // index 0 is skipped). Returns false after printing the error and the
  // usage line when an argument is unknown or a value is missing.
  bool parse(const std::vector<char*>& remaining) const {
    for (std::size_t i = 1; i < remaining.size(); ++i) {
      const std::string arg = remaining[i];
      if (take(arg, remaining, i)) continue;
      std::cerr << "unknown argument: " << arg << "\n" << usage_ << "\n";
      return false;
    }
    return true;
  }

 private:
  struct ValueOpt {
    std::string flag;
    std::string* out;
  };
  struct BoolOpt {
    std::string flag;
    bool* out;
  };

  bool take(const std::string& arg, const std::vector<char*>& remaining,
            std::size_t& i) const {
    for (const BoolOpt& b : flags_) {
      if (arg == b.flag) {
        *b.out = true;
        return true;
      }
    }
    for (const ValueOpt& v : values_) {
      if (arg == v.flag && i + 1 < remaining.size()) {
        *v.out = remaining[++i];
        return true;
      }
    }
    return false;
  }

  std::string usage_;
  std::vector<ValueOpt> values_;
  std::vector<BoolOpt> flags_;
};

}  // namespace hpcos::tools
