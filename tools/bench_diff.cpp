// bench_diff: compare a BenchReport against a committed baseline.
//
//   bench_diff <current.json> <baseline.json>
//              [--tolerances <policy.json>] [--update-baselines]
//              [--json <path>]
//
// Exit codes:
//   0  every metric within tolerance (or baseline updated)
//   1  at least one out-of-tolerance metric or a metric missing from the
//      current report — a ranked violation table is printed
//   2  usage / I/O / schema errors
//
// --json writes the gate result as a BenchReport document (gate.ok,
// violation counts, one gate.violation.<metric>.rel entry per failure) so
// CI and the explain tooling consume outcomes without scraping the table.
// The file is written for pass AND fail verdicts; the exit code is
// unchanged.
//
// The ctest bench_gate jobs run this against bench/baselines/<bench>.json
// downstream of each bench_smoke run; --update-baselines rewrites the
// baseline from the current report instead of comparing (commit the result
// to accept a perf change).
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.h"
#include "obs/bench_diff.h"
#include "obs/bench_report.h"

namespace {

using hpcos::JsonValue;
using hpcos::TextTable;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <current.json> <baseline.json>"
               " [--tolerances <policy.json>] [--update-baselines]"
               " [--json <path>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path;
  std::string baseline_path;
  std::string tolerances_path;
  std::string json_path;
  bool update_baselines = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerances") {
      if (++i >= argc) return usage(argv[0]);
      tolerances_path = argv[i];
    } else if (arg == "--json") {
      if (++i >= argc) return usage(argv[0]);
      json_path = argv[i];
    } else if (arg == "--update-baselines") {
      update_baselines = true;
    } else if (current_path.empty()) {
      current_path = arg;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (current_path.empty() || baseline_path.empty()) return usage(argv[0]);

  try {
    const JsonValue current = hpcos::obs::load_json_file(current_path);
    if (const std::string err = hpcos::obs::validate_bench_report(current);
        !err.empty()) {
      std::cerr << "bench_diff: current report invalid: " << err << "\n";
      return 2;
    }

    if (update_baselines) {
      std::ofstream out(baseline_path);
      if (!out) {
        std::cerr << "bench_diff: cannot write baseline: " << baseline_path
                  << "\n";
        return 2;
      }
      out << current.dump_pretty() << "\n";
      if (!out) {
        std::cerr << "bench_diff: write failed: " << baseline_path << "\n";
        return 2;
      }
      std::cout << "bench_diff: baseline updated: " << baseline_path << "\n";
      return 0;
    }

    hpcos::obs::DiffPolicy policy;
    if (!tolerances_path.empty()) {
      policy = hpcos::obs::load_tolerance_policy(tolerances_path);
    }
    const JsonValue baseline = hpcos::obs::load_json_file(baseline_path);
    const hpcos::obs::DiffResult result =
        hpcos::obs::diff_reports(current, baseline, policy);

    if (!json_path.empty()) {
      hpcos::obs::diff_result_report(result,
                                     current.at("bench").as_string(),
                                     current.at("quick").as_bool())
          .write(json_path);
    }

    for (const std::string& name : result.new_in_current) {
      std::cout << "note: new metric not in baseline: " << name
                << " (run --update-baselines to track it)\n";
    }
    if (result.ok()) {
      std::cout << "bench_diff: " << result.deltas.size()
                << " metric(s) within tolerance vs " << baseline_path
                << "\n";
      return 0;
    }

    for (const std::string& name : result.missing_in_current) {
      std::cout << "FAIL: metric missing from current report: " << name
                << "\n";
    }
    if (!result.violations.empty()) {
      TextTable table({"metric", "baseline", "current", "delta", "rel",
                       "allowed rel", "allowed abs"});
      for (std::size_t c = 1; c < table.num_columns(); ++c) {
        table.set_align(c, hpcos::Align::kRight);
      }
      for (const auto& v : result.violations) {
        table.add_row({v.metric, TextTable::fmt_sci(v.baseline, 4),
                       TextTable::fmt_sci(v.current, 4),
                       TextTable::fmt_sci(v.current - v.baseline, 2),
                       TextTable::fmt_percent(v.rel_delta),
                       TextTable::fmt_percent(v.tolerance.rel),
                       TextTable::fmt_sci(v.tolerance.abs, 1)});
      }
      std::cout << "bench_diff: " << result.violations.size()
                << " metric(s) out of tolerance (worst first):\n";
      table.print(std::cout);
    }
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
