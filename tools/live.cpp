// live — inspect an hpcos-heartbeat/1 stream (obs/live) after (or while)
// a --progress run writes it.
//
//   live --heartbeats <stream.heartbeat.jsonl> [--strict] [--fail-on-stall]
//        [--json <path>] [--quick]
//
// Reads the stream leniently by default (damaged lines — e.g. a line
// torn by the very hang the watchdog diagnosed — are skipped and
// counted, never fatal; --strict hard-fails with the line number),
// renders the tick history as a table, and prints the whole-stream
// aggregates: total events, mean/max events_per_sec, units, peak RSS,
// stall episodes.
//
// Exports: --json emits a BenchReport over the stream (record/tick/stall
// counts, event totals and rates — all deterministic for a frozen
// fixture, which is what the live_smoke + live_gate CI jobs pin).
//
// Exit codes: 0 clean, 1 stalls found under --fail-on-stall, 2 usage/
// I-O/parse errors.
#include <iostream>
#include <string>

#include "common/table.h"
#include "obs/bench_report.h"
#include "obs/live/heartbeat.h"

#include "cli_util.h"

namespace {

using namespace hpcos;

}  // namespace

int main(int argc, char** argv) {
  auto opts = obs::parse_bench_options(argc, argv);
  std::string heartbeats_path;
  bool strict = false;
  bool fail_on_stall = false;
  tools::CliArgs cli(
      "usage: live --heartbeats <stream.heartbeat.jsonl> [--strict]"
      " [--fail-on-stall] [--json <path>] [--quick]");
  cli.add_value("--heartbeats", &heartbeats_path);
  cli.add_flag("--strict", &strict);
  cli.add_flag("--fail-on-stall", &fail_on_stall);
  if (!cli.parse(opts.remaining)) return 2;
  if (heartbeats_path.empty()) {
    std::cerr << "live: --heartbeats <stream.heartbeat.jsonl> is required\n";
    return 2;
  }

  try {
    const obs::live::HeartbeatLog log =
        obs::live::read_heartbeat_log(heartbeats_path, strict);
    if (log.records.empty()) {
      std::cerr << "live: no heartbeat records in " << heartbeats_path
                << "\n";
      return 2;
    }
    if (log.skipped > 0) {
      std::cout << "live: skipped " << log.skipped
                << " damaged line(s) in " << heartbeats_path << "\n";
    }

    print_banner(std::cout, "heartbeat stream: " + heartbeats_path);
    TextTable t({"kind", "seq", "t_s", "events", "ev/s", "sim_s", "units",
                 "des depth", "rss MiB", "stalls"});
    for (const JsonValue& r : log.records) {
      const double units_total = r.at("units_total").as_number();
      t.add_row(
          {r.at("kind").as_string(),
           TextTable::fmt_int(
               static_cast<std::int64_t>(r.at("seq").as_number())),
           TextTable::fmt(r.at("t_ms").as_number() / 1e3, 2),
           TextTable::fmt_int(
               static_cast<std::int64_t>(r.at("events").as_number())),
           TextTable::fmt(r.at("events_per_sec").as_number(), 1),
           TextTable::fmt(r.at("sim_time_us").as_number() / 1e6, 3),
           units_total > 0
               ? TextTable::fmt_int(static_cast<std::int64_t>(
                     r.at("units_done").as_number())) +
                     "/" +
                     TextTable::fmt_int(
                         static_cast<std::int64_t>(units_total))
               : "-",
           TextTable::fmt_int(static_cast<std::int64_t>(
               r.at("des").at("depth").as_number())),
           TextTable::fmt(r.at("rss_bytes").as_number() / (1024.0 * 1024.0),
                          1),
           TextTable::fmt_int(
               static_cast<std::int64_t>(r.at("stalls").as_number()))});
    }
    t.print(std::cout);

    const obs::live::HeartbeatAggregates agg =
        obs::live::aggregate_heartbeats(log.records);
    std::cout << "\n" << agg.records << " records (" << agg.ticks
              << " ticks), " << agg.events_total << " events in "
              << agg.elapsed_s << " s: mean " << agg.events_per_sec_mean
              << " ev/s, max " << agg.events_per_sec_max << " ev/s, units "
              << agg.units_done << "/" << agg.units_total << ", peak rss "
              << static_cast<double>(agg.peak_rss_bytes) / (1024.0 * 1024.0)
              << " MiB, stalls " << agg.stalls << "\n";

    obs::BenchReport report("live_heartbeats", opts.quick);
    report.add_metric("heartbeat.records.count", "count",
                      static_cast<double>(agg.records));
    report.add_metric("heartbeat.ticks.count", "count",
                      static_cast<double>(agg.ticks));
    report.add_metric("heartbeat.stalls.count", "count",
                      static_cast<double>(agg.stalls));
    report.add_metric("heartbeat.skipped_lines.count", "count",
                      static_cast<double>(log.skipped));
    report.add_metric("heartbeat.events.total", "count",
                      static_cast<double>(agg.events_total));
    report.add_metric("heartbeat.events_per_sec.mean", "rate",
                      agg.events_per_sec_mean);
    report.add_metric("heartbeat.events_per_sec.max", "rate",
                      agg.events_per_sec_max);
    report.add_metric("heartbeat.units.done", "count",
                      static_cast<double>(agg.units_done));
    obs::maybe_write_report(report, opts);

    if (fail_on_stall && agg.stalls > 0) {
      std::cout << "live: FAIL — " << agg.stalls
                << " stall episode(s) in the stream\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "live: " << e.what() << "\n";
    return 2;
  }
}
