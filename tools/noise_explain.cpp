// noise_explain — who stole the time, and who stalled the barrier.
//
// The offline attribution engine (src/obs/attrib) driven end to end:
//
//  1. runs a seeded machine-scale FWQ campaign on the production Fugaku
//     Linux profile and prints the per-source attribution ledger — time
//     stolen per source, its share, the analytic Table 2 expectation, and
//     a divergence flag — plus the Eq. 2 reconciliation line (the
//     per-source sums must reproduce the campaign's noise_rate),
//  2. runs a short DES node campaign with tracing on, then runs BSP rank
//     timelines *anchored at the node's FWQ start time* so the bsp:*
//     phase spans and the node's kernel noise events share one wall
//     clock; prints the straggler / critical-path report with the node
//     events overlaid on each straggler's compute window,
//  3. prints the trace-side ledger (self time per source x core) for the
//     node trace.
//
// Flags: --quick (smaller campaign), --json <path> (BenchReport; the
// attrib_smoke/attrib_gate ctest jobs consume this), --folded <path>
// (folded-stack export of the anchored BSP trace for flamegraph tools).
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/bsp.h"
#include "cluster/fwq_campaign.h"
#include "cluster/job_launcher.h"
#include "cluster/node.h"
#include "cluster/osenv.h"
#include "common/table.h"
#include "hw/platform.h"
#include "linuxk/config.h"
#include "noise/fwq.h"
#include "noise/profiles.h"
#include "obs/attrib/critical_path.h"
#include "obs/attrib/ledger.h"
#include "obs/attrib/report.h"
#include "obs/bench_report.h"
#include "sim/folded_stack.h"

#include "cli_util.h"

namespace {

using namespace hpcos;

// The BSP workload the straggler walk uses: compute-heavy with churn and
// imbalance so the barrier has something to wait for.
class StencilStep final : public cluster::Workload {
 public:
  std::string name() const override { return "stencil-step"; }
  int iterations() const override { return 6; }
  cluster::RankWork rank_work(int, const cluster::JobConfig&,
                              const cluster::OsEnvironment&) const override {
    cluster::RankWork w;
    w.compute = SimTime::from_ms(4);
    w.working_set_bytes = 128ull << 20;
    w.alloc_churn_bytes = 8ull << 20;
    w.touch_bytes = 2ull << 20;
    w.allreduces = 1;
    w.allreduce_bytes = 4096;
    w.halo_neighbors = 6;
    w.halo_bytes = 64ull << 10;
    w.barriers = 1;
    w.imbalance_sigma = 0.04;
    return w;
  }
  cluster::InitWork init_work(const cluster::JobConfig&,
                              const cluster::OsEnvironment&) const override {
    cluster::InitWork init;
    init.serial_setup = SimTime::from_ms(2);
    init.touch_bytes = 16ull << 20;
    return init;
  }
};

// Memory phase on the DES node: a prepopulated large-page mmap, a
// base-page mmap, and a munmap of the large region. Generates the
// page-fault and TLB-shootdown span trees the trace-side ledger
// attributes (plain FWQ noise events are unspanned).
struct MemoryPhase final : os::ThreadBody {
  int stage = 0;
  std::uint64_t large_addr = 0;
  void step(os::ThreadContext& ctx) override {
    switch (stage++) {
      case 0:  // prefer_large bit -> large pages where the policy allows
        ctx.invoke(os::Syscall::kMmap,
                   os::SyscallArgs{.arg0 = 32ull << 20, .arg1 = 1});
        return;
      case 1:
        large_addr = static_cast<std::uint64_t>(ctx.last_syscall().value);
        ctx.invoke(os::Syscall::kMmap, os::SyscallArgs{.arg0 = 2ull << 20});
        return;
      case 2:
        ctx.invoke(os::Syscall::kMunmap,
                   os::SyscallArgs{.arg0 = large_addr,
                                   .arg1 = 32ull << 20});
        return;
      default:
        ctx.exit();
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto wall_start = std::chrono::steady_clock::now();
  auto opts = obs::parse_bench_options(argc, argv);
  std::string folded_path;
  tools::CliArgs cli(
      "usage: noise_explain [--quick] [--json <path>] [--ledger <path>]"
      " [--folded <path>] [--progress[=ms]] [--watchdog[=s]]");
  cli.add_value("--folded", &folded_path);
  if (!cli.parse(opts.remaining)) return 2;

  const Seed seed{2024};
  obs::BenchReport report("noise_explain", opts.quick, seed.value);

  // ---- 1. campaign ledger ---------------------------------------------
  const auto profile = noise::fugaku_linux_profile();
  cluster::FwqCampaignConfig config;
  config.nodes = opts.quick ? 96 : 1536;
  config.app_cores = 48;
  config.work_quantum = SimTime::from_ms(6.5);
  config.duration_per_core = opts.quick ? SimTime::sec(60) : SimTime::sec(600);
  config.seed = seed;
  const auto campaign = cluster::run_fwq_campaign(profile, config);
  const auto ledger = obs::attrib::build_ledger(campaign, profile, config);

  print_banner(std::cout,
               "Attribution ledger: " + profile.name + " FWQ campaign (" +
                   std::to_string(config.nodes) + " nodes x " +
                   std::to_string(config.app_cores) + " cores)");
  obs::attrib::print_ledger(std::cout, ledger);
  std::cout << "  campaign noise rate " << campaign.stats.noise_rate
            << " (Eq. 2), max noise length "
            << campaign.stats.max_noise_length.to_us() << " us\n";

  // ---- 2. anchored BSP straggler walk ---------------------------------
  // A DES Linux node provides the wall-clock noise events; the BSP rank
  // timelines are anchored at the node's FWQ start so both live on one
  // clock and the overlay is meaningful. The node runs with three §4
  // countermeasures off (the Table 2 "before" configuration) — the
  // production setup is quiet enough that a short trace has nothing to
  // attribute, which is the paper's point but a dull demo.
  const auto platform = hw::make_fugaku_testbed_platform();
  noise::Countermeasures cm;
  cm.bind_daemons = false;
  cm.stop_pmu_reads = false;
  cm.suppress_global_tlbi = false;
  auto node_config = linuxk::make_fugaku_linux_config(platform, cm);
  node_config.profile = noise::strip_population_tails(node_config.profile);
  cluster::SimNodeOptions node_options;
  node_options.seed = seed;
  node_options.observability = true;
  node_options.trace_capacity = 1 << 16;
  auto node = cluster::SimNode::make_linux_node(platform,
                                                std::move(node_config),
                                                node_options);
  // Launcher-driven memory phase first (fault/unmap span trees for the
  // trace ledger), then FWQ; anchoring at now() instead of zero is what
  // places the BSP timelines after it on the node's wall clock.
  cluster::JobLauncher launcher(*node);
  const auto mem_job = launcher.launch(cluster::LaunchSpec{.ranks = 1});
  launcher.spawn_rank_thread(mem_job, 0, std::make_unique<MemoryPhase>(),
                             "memory-phase");
  node->simulator().run_until(SimTime::ms(50));
  const SimTime fwq_start = node->simulator().now();
  noise::FwqConfig fwq;
  fwq.work_quantum = SimTime::from_ms(1);
  fwq.iterations = opts.quick ? 100 : 400;
  noise::run_fwq(node->app_kernel(), node->topology().application_cores(),
                 fwq);
  const auto node_records = node->trace().snapshot();

  const auto env = cluster::make_fugaku_linux_env();
  const cluster::JobConfig job{.nodes = 64, .ranks_per_node = 4,
                               .threads_per_rank = 12};
  sim::TraceBuffer bsp_trace(1 << 14);
  StencilStep solver;
  const int tracks = 4;
  for (int track = 0; track < tracks; ++track) {
    cluster::BspEngine engine(
        env, job, Seed{seed.value + static_cast<std::uint64_t>(track)});
    engine.set_trace(&bsp_trace, static_cast<hw::CoreId>(track), fwq_start);
    engine.run(solver);
  }
  const auto bsp_records = bsp_trace.snapshot();
  auto straggler = obs::attrib::build_straggler_report(bsp_records);
  // Core-aware overlay: the 4 sampled rank tracks share the one DES node,
  // so partition its application cores round-robin across the tracks and
  // let per-core noise events land only on the rank that owns the core.
  const auto app_cores = node->topology().application_cores().to_vector();
  const auto num_cores =
      static_cast<std::size_t>(node->topology().logical_cores());
  obs::attrib::TrackCoreMap track_cores;
  for (int track = 0; track < tracks; ++track) {
    track_cores.emplace(static_cast<hw::CoreId>(track),
                        hw::CpuSet(num_cores));
  }
  for (std::size_t i = 0; i < app_cores.size(); ++i) {
    track_cores[static_cast<hw::CoreId>(i % tracks)].set(app_cores[i]);
  }
  obs::attrib::overlay_noise_events(straggler, node_records,
                                    /*max_events=*/3, &track_cores);

  print_banner(std::cout,
               "Straggler / critical path: " + std::to_string(tracks) +
                   " sampled rank timelines anchored at node t=" +
                   std::to_string(fwq_start.to_us()) + " us");
  obs::attrib::print_straggler_report(std::cout, straggler);

  // ---- 3. trace-side ledger -------------------------------------------
  print_banner(std::cout,
               "Trace ledger: self time per source x core (DES node)");
  obs::attrib::print_trace_ledger(std::cout,
                                  obs::attrib::trace_ledger(node_records));

  if (!folded_path.empty()) {
    sim::export_folded_stack(bsp_records, folded_path);
    std::cout << "\nFolded stacks (flamegraph/speedscope) written to "
              << folded_path << "\n";
  }

  // ---- BenchReport -----------------------------------------------------
  obs::attrib::add_ledger_metrics(report, ledger);
  obs::attrib::add_straggler_metrics(report, straggler);
  report.add_metric("campaign.noise_rate", "ratio",
                    campaign.stats.noise_rate);
  report.add_metric("campaign.iterations", "count",
                    static_cast<double>(campaign.total_iterations));
  report.add_metric("node.trace_records", "count",
                    static_cast<double>(node_records.size()));
  report.add_metric(
      "host.wall_s", "s",
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count());
  obs::maybe_write_report(report, opts);
  return 0;
}
