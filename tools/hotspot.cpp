// hotspot — where does the *simulator's own* host time go?
//
// The ROADMAP's full-Fugaku item ("profile and rework the DES hot loop")
// needs a measurement harness before any calendar-queue or arena/SoA
// rework can be evidence-driven. This tool is that harness. Four
// sections:
//
//   1. Accounting run (serial, profiler on, one root scope): a DES
//      multi-kernel node under an FWQ workload plus a threads=1 FWQ
//      campaign. Everything executes on this thread under
//      "hotspot.run", so the merged profile must satisfy
//      sum(self) == root total ~= wall clock — the check that validates
//      the entire self/total accounting chain. Prints the ranked
//      hotspot table, the DES queue telemetry (push/pop/cancel,
//      depth-over-virtual-time), the per-handler host-time attribution,
//      and exports the folded-stack flamegraph (--folded).
//   2. Scheduler health: the same campaign across the work-stealing
//      pool with the park/depth timeline enabled; prints per-worker
//      deque depth, steal success rates, and park time.
//   3. Memory: per-subsystem allocation counters and process RSS.
//   4. Sampled span tracing (obs/live): the accounting node's span trace
//      through the deterministic sampler, both lossless (rate=1 must
//      keep every tree — an exactness check on the sampler itself) and
//      thinned (rate + reservoir cap, the full-scale memory story), with
//      per-label duration quantiles from the exact sketch side.
//
// Exit status is non-zero when any accounting check fails, so the
// hotspot_smoke ctest job guards the profiler's arithmetic, not just
// its plumbing. Determinism: every scope/handler *count* and every
// simulated-time metric is a pure function of (config, seed) and is
// regression-gated; host times ride under the ignored host.* prefix.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/fwq_campaign.h"
#include "cluster/node.h"
#include "common/parallel.h"
#include "common/table.h"
#include "hw/platform.h"
#include "linuxk/config.h"
#include "mckernel/mckernel.h"
#include "noise/fwq.h"
#include "noise/profiles.h"
#include "obs/bench_report.h"
#include "obs/explain/explain.h"
#include "obs/live/span_sampler.h"
#include "obs/prof/mem.h"
#include "obs/prof/prof.h"
#include "obs/prof_report.h"
#include "obs/timeseries/timeseries.h"
#include "oskernel/thread.h"
#include "sim/folded_stack.h"

#include "cli_util.h"

namespace {

using namespace hpcos;

// §4's span workload: each thread issues `count` offloaded syscalls, so
// the node's trace carries parent-linked span trees (LWK -> IKC -> proxy
// -> IKC -> LWK) for the sampler to walk.
struct OffloadBurst final : os::ThreadBody {
  explicit OffloadBurst(int count) : remaining(count) {}
  int remaining;
  void step(os::ThreadContext& ctx) override {
    if (remaining == 0) {
      ctx.exit();
      return;
    }
    --remaining;
    ctx.invoke(os::Syscall::kStat, {});
  }
};

cluster::FwqCampaignConfig campaign_config(bool quick, std::size_t threads) {
  cluster::FwqCampaignConfig config;
  config.nodes = quick ? 96 : 768;
  config.app_cores = 48;
  config.work_quantum = SimTime::from_ms(6.5);
  config.duration_per_core = quick ? SimTime::sec(60) : SimTime::sec(600);
  // Finer shards than the default so the scheduler-health section has
  // deques worth watching. Shard boundaries fix the summation order, so
  // both runs (serial and parallel) must use the same value — that is
  // exactly what makes their results bit-comparable.
  config.nodes_per_shard = 8;
  config.seed = Seed{2026};
  config.threads = threads;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = obs::parse_bench_options(argc, argv);
  std::string folded_path;
  tools::CliArgs cli(
      "usage: hotspot [--quick] [--json <path>] [--ledger <path>]"
      " [--folded <path>] [--progress[=ms]] [--watchdog[=s]]");
  cli.add_value("--folded", &folded_path);
  if (!cli.parse(opts.remaining)) return 2;

  const bool q = opts.quick;
  obs::BenchReport report("hotspot", q, 2026);
  bool ok = true;

  // ---- 1. accounting run (serial, one root scope) ----------------------
  obs::prof::set_thread_buffer_capacity(std::size_t{1} << 20);
  obs::prof::set_enabled(true);
  obs::prof::reset();

  const auto platform = hw::make_fugaku_testbed_platform();
  cluster::SimNodeOptions node_options;
  node_options.seed = Seed{2026};
  node_options.observability = true;
  // Span ring for §4 (sampled span tracing); sized so the quick DES
  // window fits without wraparound and the lossless check stays exact.
  node_options.trace_capacity = 1 << 15;
  auto node = cluster::SimNode::make_multikernel_node(
      platform, linuxk::make_fugaku_linux_config(platform),
      mck::McKernelConfig::defaults(), node_options);

  // Queue-depth-over-virtual-time series via the simulator's depth probe.
  obs::ts::TimeSeries depth_series(SimTime::ms(1), /*capacity=*/256);
  node->simulator().set_depth_probe(
      [&depth_series](SimTime t, std::size_t depth) {
        depth_series.record(t, static_cast<double>(depth));
      });

  cluster::FwqCampaignResult serial_campaign;
  const SimTime des_until = q ? SimTime::ms(60) : SimTime::ms(250);
  const std::int64_t wall_start = obs::prof::now_ns();
  {
    PROF_SCOPE("hotspot.run");
    {
      PROF_SCOPE("hotspot.des");
      noise::FwqConfig fwq;
      fwq.work_quantum = SimTime::from_ms(1);
      fwq.iterations = q ? 40 : 200;
      noise::run_fwq(node->app_kernel(),
                     node->topology().application_cores(), fwq);
      for (int t = 0; t < 4; ++t) {
        node->lwk()->spawn(std::make_unique<OffloadBurst>(q ? 12 : 50),
                           os::SpawnAttrs{.name = "offload-burst"});
      }
      node->simulator().run_until(des_until);
    }
    {
      PROF_SCOPE("hotspot.campaign");
      serial_campaign = cluster::run_fwq_campaign(
          noise::fugaku_linux_profile(), campaign_config(q, /*threads=*/1));
    }
  }
  const std::int64_t wall_ns = obs::prof::now_ns() - wall_start;
  obs::prof::set_enabled(false);
  const obs::prof::Profile profile = obs::prof::collect();

  print_banner(std::cout, "Host-side hotspots (serial accounting run)");
  obs::print_profile(std::cout, profile, /*top=*/25);

  // The whole section ran on this thread under one root scope, so the
  // profiler's arithmetic must close: sum(self) == root total exactly,
  // and the root total must account for (nearly all of) the wall clock.
  const std::int64_t sum_self = profile.sum_self_ns();
  const bool self_closes = sum_self == profile.root_total_ns;
  const double wall_covered =
      wall_ns > 0 ? static_cast<double>(profile.root_total_ns) /
                        static_cast<double>(wall_ns)
                  : 0.0;
  const bool wall_accounted = wall_covered > 0.75 && wall_covered < 1.05;
  std::cout << "accounting: sum(self) = "
            << TextTable::fmt(static_cast<double>(sum_self) / 1e6, 3)
            << " ms, root total = "
            << TextTable::fmt(
                   static_cast<double>(profile.root_total_ns) / 1e6, 3)
            << " ms (" << (self_closes ? "exact" : "MISMATCH (BUG)")
            << "), wall = "
            << TextTable::fmt(static_cast<double>(wall_ns) / 1e6, 3)
            << " ms (" << TextTable::fmt_percent(wall_covered, 1)
            << " accounted" << (wall_accounted ? ")" : " — OUT OF RANGE)")
            << "\n";
  ok = ok && self_closes && wall_accounted && profile.dropped == 0;

  // Folded-stack flamegraph export.
  const std::string folded = profile.folded_text();
  const std::string folded_err = sim::validate_folded_stack(folded);
  if (!folded_err.empty()) {
    std::cout << "folded-stack INVALID: " << folded_err << "\n";
    ok = false;
  }
  if (!folded_path.empty()) {
    std::ofstream out(folded_path);
    if (!out) {
      std::cerr << "cannot open " << folded_path << "\n";
      return 1;
    }
    out << folded;
    std::cout << "folded flamegraph (" << profile.folded.size()
              << " stacks) written to " << folded_path << "\n";
  }

  // DES core telemetry: the event-queue hot path in numbers.
  const sim::QueueTelemetry& qt = node->simulator().queue_telemetry();
  print_banner(std::cout, "DES event queue (multi-kernel node, " +
                              TextTable::fmt(des_until.to_ms(), 0) + " ms)");
  TextTable queue_table({"pushes", "pops", "cancels", "skipped", "max depth",
                         "mean depth"});
  for (std::size_t c = 0; c < 6; ++c) queue_table.set_align(c, Align::kRight);
  const double mean_depth =
      depth_series.total_count() > 0
          ? depth_series.total_sum() /
                static_cast<double>(depth_series.total_count())
          : 0.0;
  queue_table.add_row(
      {TextTable::fmt_int(static_cast<long long>(qt.pushes)),
       TextTable::fmt_int(static_cast<long long>(qt.pops)),
       TextTable::fmt_int(static_cast<long long>(qt.cancels)),
       TextTable::fmt_int(static_cast<long long>(qt.skipped)),
       TextTable::fmt_int(static_cast<long long>(qt.max_depth)),
       TextTable::fmt(mean_depth, 1)});
  queue_table.print(std::cout);

  const auto handlers = node->simulator().handler_stats();
  print_banner(std::cout, "DES handler attribution (host time per tag)");
  TextTable handler_table({"tag", "fired", "host ms", "ns/event"});
  for (std::size_t c = 1; c < 4; ++c) handler_table.set_align(c, Align::kRight);
  for (const auto& h : handlers) {
    handler_table.add_row(
        {h.tag, TextTable::fmt_int(static_cast<long long>(h.fired)),
         TextTable::fmt(static_cast<double>(h.host_ns) / 1e6, 3),
         TextTable::fmt(h.fired > 0 ? static_cast<double>(h.host_ns) /
                                          static_cast<double>(h.fired)
                                    : 0.0,
                        0)});
  }
  handler_table.print(std::cout);

  // ---- 2. scheduler health (parallel campaign) --------------------------
  obs::prof::reset();
  set_scheduler_timeline(true);
  // Ask for at least two participants so the run crosses the scheduler
  // even on single-core CI hosts (requests clamp to parallel_capacity();
  // results are thread-count-independent by the determinism contract).
  const auto parallel_campaign = cluster::run_fwq_campaign(
      noise::fugaku_linux_profile(),
      campaign_config(q, std::max<std::size_t>(2, parallel_capacity())));
  const auto health = parallel_worker_health();
  const auto parks = scheduler_park_events();
  const auto depths = scheduler_depth_samples();
  set_scheduler_timeline(false);

  const bool campaign_identical =
      serial_campaign.stats.noise_rate == parallel_campaign.stats.noise_rate &&
      serial_campaign.total_iterations == parallel_campaign.total_iterations;
  ok = ok && campaign_identical;

  print_banner(std::cout,
               "Work-stealing scheduler health (campaign across " +
                   std::to_string(parallel_capacity()) + " slots)");
  TextTable sched({"slot", "chunks", "pushes", "steals", "attempts",
                   "hit rate", "parks", "park ms", "avg depth", "max depth"});
  for (std::size_t c = 1; c < 10; ++c) sched.set_align(c, Align::kRight);
  for (std::size_t i = 0; i < health.size(); ++i) {
    const WorkerHealth& h = health[i];
    sched.add_row(
        {i == 0 ? "caller" : "w" + std::to_string(i),
         TextTable::fmt_int(static_cast<long long>(h.chunks)),
         TextTable::fmt_int(static_cast<long long>(h.pushes)),
         TextTable::fmt_int(static_cast<long long>(h.steals)),
         TextTable::fmt_int(static_cast<long long>(h.steal_attempts)),
         h.steal_attempts > 0
             ? TextTable::fmt_percent(static_cast<double>(h.steals) /
                                          static_cast<double>(
                                              h.steal_attempts),
                                      1)
             : "-",
         TextTable::fmt_int(static_cast<long long>(h.parks)),
         TextTable::fmt(static_cast<double>(h.park_ns) / 1e6, 1),
         h.depth_samples > 0
             ? TextTable::fmt(static_cast<double>(h.depth_sum) /
                                  static_cast<double>(h.depth_samples),
                              2)
             : "-",
         TextTable::fmt_int(static_cast<long long>(h.max_depth))});
  }
  sched.print(std::cout);
  std::cout << "timeline: " << parks.size() << " park intervals, "
            << depths.size() << " depth samples;  parallel results "
            << (campaign_identical ? "match serial (bit-identical)"
                                   : "DIFFER FROM SERIAL (BUG)")
            << "\n";

  // ---- 3. memory --------------------------------------------------------
  print_banner(std::cout, "Host memory (per-subsystem counters + RSS)");
  TextTable mem_table({"counter", "bytes", "events"});
  mem_table.set_align(1, Align::kRight);
  mem_table.set_align(2, Align::kRight);
  for (const auto& c : obs::prof::memory_counters()) {
    mem_table.add_row({c.name,
                       TextTable::fmt_int(static_cast<long long>(c.bytes)),
                       TextTable::fmt_int(static_cast<long long>(c.events))});
  }
  mem_table.print(std::cout);
  const obs::prof::HostMemory host_mem = obs::prof::sample_host_memory();
  if (host_mem.valid) {
    std::cout << "rss " << host_mem.rss_bytes / (1024 * 1024)
              << " MiB, peak rss " << host_mem.peak_rss_bytes / (1024 * 1024)
              << " MiB, vm " << host_mem.vm_bytes / (1024 * 1024) << " MiB\n";
  }

  // ---- 4. sampled span tracing ------------------------------------------
  // The accounting node's span trace through both sides of the sampler:
  // lossless (rate=1, no cap) must keep every tree bit-for-bit — the
  // in-tool twin of the quick-scale exactness test — while the thinned
  // config shows what a full-machine run would retain per node. The
  // sketches cover every root either way, so the quantile columns are
  // exact regardless of how hard the raw side thins.
  const std::vector<sim::TraceRecord> trace_records = node->trace().snapshot();
  std::size_t spanned_records = 0;
  for (const sim::TraceRecord& r : trace_records) {
    if (r.span != 0) ++spanned_records;
  }
  obs::live::SpanSamplerConfig lossless_cfg;
  lossless_cfg.seed = 2026;
  const obs::live::NodeSample lossless =
      obs::live::sample_node(lossless_cfg, /*node_index=*/0, trace_records);
  obs::live::SpanSamplerConfig thinned_cfg = lossless_cfg;
  thinned_cfg.rate = 0.25;
  thinned_cfg.max_roots_per_node = 32;
  const obs::live::NodeSample thinned =
      obs::live::sample_node(thinned_cfg, /*node_index=*/0, trace_records);

  // Every spanned record belongs to exactly one tree (orphans are
  // promoted to roots), so rate=1 with no cap must retain all of them.
  const bool sampler_lossless =
      lossless.roots_kept == lossless.roots_seen &&
      lossless.records_kept == spanned_records;
  const bool reservoir_bounded =
      thinned.roots_kept <= thinned_cfg.max_roots_per_node;
  ok = ok && sampler_lossless && reservoir_bounded;

  print_banner(std::cout, "Sampled span tracing (obs/live, node span trace)");
  std::size_t sketch_buckets = 0;
  TextTable span_table(
      {"root label", "roots", "p50 us", "p99 us", "max us", "buckets"});
  for (std::size_t c = 1; c < 6; ++c) span_table.set_align(c, Align::kRight);
  for (const auto& [label, sketch] : lossless.sketches) {
    sketch_buckets += sketch.bucket_count();
    span_table.add_row(
        {label, TextTable::fmt_int(static_cast<long long>(sketch.count())),
         TextTable::fmt(sketch.quantile(0.50), 2),
         TextTable::fmt(sketch.quantile(0.99), 2),
         TextTable::fmt(sketch.max(), 2),
         TextTable::fmt_int(static_cast<long long>(sketch.bucket_count()))});
  }
  span_table.print(std::cout);
  std::cout << "trace: " << trace_records.size() << " records ("
            << spanned_records << " spanned, " << lossless.roots_seen
            << " roots); lossless pass kept " << lossless.records_kept
            << (sampler_lossless ? " (exact)" : " (LOSSY — BUG)")
            << "; thinned (rate=" << TextTable::fmt(thinned_cfg.rate, 2)
            << ", cap=" << thinned_cfg.max_roots_per_node << ") kept "
            << thinned.roots_kept << " roots / " << thinned.records_kept
            << " records"
            << (reservoir_bounded ? "" : " (CAP EXCEEDED — BUG)") << "\n";

  // ---- report -----------------------------------------------------------
  // Deterministic (gated): every scope/handler count, the DES queue
  // counters, and the campaign's simulated results. Host times and
  // scheduler health go under ignored prefixes (host.*, parallel.*.count).
  report.add_metric("prof.accounting_ok", "bool",
                    self_closes && wall_accounted ? 1.0 : 0.0);
  report.add_metric("prof.folded_valid", "bool",
                    folded_err.empty() ? 1.0 : 0.0);
  report.add_metric("prof.dropped", "count",
                    static_cast<double>(profile.dropped));
  report.add_metric("campaign.bit_identical", "bool",
                    campaign_identical ? 1.0 : 0.0);
  report.add_metric("campaign.noise_rate", "ratio",
                    serial_campaign.stats.noise_rate);
  report.add_metric("campaign.iterations", "count",
                    static_cast<double>(serial_campaign.total_iterations));
  report.add_metric("des.queue.pushes", "count",
                    static_cast<double>(qt.pushes));
  report.add_metric("des.queue.pops", "count", static_cast<double>(qt.pops));
  report.add_metric("des.queue.cancels", "count",
                    static_cast<double>(qt.cancels));
  report.add_metric("des.queue.skipped", "count",
                    static_cast<double>(qt.skipped));
  report.add_metric("des.queue.max_depth", "count",
                    static_cast<double>(qt.max_depth));
  report.add_metric("des.queue.mean_depth", "count", mean_depth);
  for (const auto& h : handlers) {
    report.add_metric("des.fire." + h.tag + ".count", "count",
                      static_cast<double>(h.fired));
    report.add_metric("host.des.fire." + h.tag + ".us", "us",
                      static_cast<double>(h.host_ns) / 1e3);
  }
  report.add_metric("live.trace.records.count", "count",
                    static_cast<double>(trace_records.size()));
  report.add_metric("live.sample.roots_seen.count", "count",
                    static_cast<double>(lossless.roots_seen));
  report.add_metric("live.sample.lossless", "bool",
                    sampler_lossless ? 1.0 : 0.0);
  report.add_metric("live.sample.thinned.roots.count", "count",
                    static_cast<double>(thinned.roots_kept));
  report.add_metric("live.sample.thinned.records.count", "count",
                    static_cast<double>(thinned.records_kept));
  report.add_metric("live.sketch.labels.count", "count",
                    static_cast<double>(lossless.sketches.size()));
  report.add_metric("live.sketch.buckets.count", "count",
                    static_cast<double>(sketch_buckets));
  // Per-label span self-time aggregates (span.<label>.self_us with
  // p50/p99 from the lossless sketches) — the explainer's span layer
  // reads these, making hotspot runs pair-wise explainable.
  obs::explain::add_span_label_metrics(report, trace_records,
                                       &lossless.sketches);
  add_profile_metrics(report, profile);
  add_memory_metrics(report);
  std::uint64_t total_steals = 0;
  std::uint64_t total_attempts = 0;
  std::uint64_t total_parks = 0;
  std::uint64_t total_park_ns = 0;
  for (const WorkerHealth& h : health) {
    total_steals += h.steals;
    total_attempts += h.steal_attempts;
    total_parks += h.parks;
    total_park_ns += h.park_ns;
  }
  report.add_metric("parallel.steals.count", "count",
                    static_cast<double>(total_steals));
  report.add_metric("parallel.steal_attempts.count", "count",
                    static_cast<double>(total_attempts));
  report.add_metric("parallel.parks.count", "count",
                    static_cast<double>(total_parks));
  report.add_metric("host.parallel.park_ms", "ms",
                    static_cast<double>(total_park_ns) / 1e6);
  report.add_metric("host.wall_ms", "ms", static_cast<double>(wall_ns) / 1e6);
  report.add_series("des.queue.depth", "events", depth_series);
  obs::maybe_write_report(report, opts);

  if (!ok) {
    std::cerr << "hotspot: accounting checks FAILED\n";
    return 1;
  }
  return 0;
}
