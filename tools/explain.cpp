// explain — hierarchical root-cause diff of two runs (obs/explain).
//
//   explain --base <report.json> --current <report.json>
//           [--tolerances <policy.json>] [--json <path>] [--quick]
//   explain --ledger <runs.jsonl> --target <name> [--config <prefix>]
//           [--tolerances <policy.json>] [--json <path>] [--quick]
//   explain --ledger <cur.jsonl> --base-ledger <base.jsonl>
//           --target <name> [--config <prefix>] [--base-config <prefix>]
//           [--base-target <name>] ...
//
// Three ways to pick the pair:
//   * --base/--current       two BenchReport JSON documents.
//   * --ledger + --target    the target's newest ledger record vs the
//                            median of its prior history — the exact
//                            baseline tools/trend judges, so the
//                            explanation lines up with the trend flag.
//   * + --base-ledger        newest record of the base ledger's group vs
//                            newest of the current ledger's group (e.g.
//                            two CI branches, two machines).
//
// The report walks four layers — canonical config knob diff, ranked
// metric deltas under the gate's tolerance policy, per-source attribution
// deltas (reconciled against the total), and span self-time/quantile
// shifts — and folds them into one ranked cause list; the headline prints
// as a stable "explain: top cause: ..." line CI can grep.
//
// Exit codes: 0 explanation produced (even for a regressed pair — gating
// is bench_diff/trend's job), 2 usage or I/O errors.
#include <iostream>
#include <string>
#include <vector>

#include "obs/bench_diff.h"
#include "obs/bench_report.h"
#include "obs/explain/explain.h"
#include "obs/runlog.h"

#include "cli_util.h"

namespace {

using namespace hpcos;
namespace ex = obs::explain;

// Lenient ledger read (trend's policy: torn lines are skipped and
// counted, never fatal) + group selection, with tool-prefixed errors.
bool load_group(const std::string& ledger_path, const std::string& target,
                const std::string& hash_prefix,
                std::vector<JsonValue>* group) {
  const obs::RunLedger ledger =
      obs::read_run_ledger(ledger_path, /*strict=*/false);
  if (ledger.skipped > 0) {
    std::cout << "explain: skipped " << ledger.skipped
              << " damaged ledger line(s) in " << ledger_path << "\n";
  }
  if (const std::string err =
          ex::select_group(ledger.records, target, hash_prefix, group);
      !err.empty()) {
    std::cerr << "explain: " << ledger_path << ": " << err << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = obs::parse_bench_options(argc, argv);
  std::string base_path;
  std::string current_path;
  std::string base_ledger_path;
  std::string target;
  std::string base_target;
  std::string hash_prefix;
  std::string base_hash_prefix;
  std::string tolerances_path;
  tools::CliArgs cli(
      "usage: explain --base <report.json> --current <report.json>\n"
      "       explain --ledger <runs.jsonl> --target <name>"
      " [--config <prefix>]\n"
      "       explain --ledger <cur.jsonl> --base-ledger <base.jsonl>"
      " --target <name>\n"
      "       [--base-target <name>] [--base-config <prefix>]"
      " [--tolerances <policy.json>] [--json <path>] [--quick]");
  cli.add_value("--base", &base_path);
  cli.add_value("--current", &current_path);
  cli.add_value("--base-ledger", &base_ledger_path);
  cli.add_value("--target", &target);
  cli.add_value("--base-target", &base_target);
  cli.add_value("--config", &hash_prefix);
  cli.add_value("--base-config", &base_hash_prefix);
  cli.add_value("--tolerances", &tolerances_path);
  if (!cli.parse(opts.remaining)) return 2;

  // As in trend, --ledger names this tool's *input*; never append the
  // explainer's own report record back into the ledger under study.
  const std::string ledger_path = opts.sinks.ledger_path;
  opts.sinks.ledger_path.clear();

  const bool report_mode = !base_path.empty() || !current_path.empty();
  const bool ledger_mode = !ledger_path.empty();
  if (report_mode == ledger_mode) {
    std::cerr << "explain: pick one mode — either --base/--current report"
                 " files or --ledger (see --help usage)\n";
    return 2;
  }

  try {
    ex::RunSnapshot base;
    ex::RunSnapshot current;
    if (report_mode) {
      if (base_path.empty() || current_path.empty()) {
        std::cerr << "explain: report mode needs both --base and"
                     " --current\n";
        return 2;
      }
      base = ex::snapshot_from_report(obs::load_json_file(base_path),
                                      base_path);
      current = ex::snapshot_from_report(obs::load_json_file(current_path),
                                         current_path);
    } else {
      if (target.empty()) {
        std::cerr << "explain: ledger mode needs --target <name>\n";
        return 2;
      }
      std::vector<JsonValue> group;
      if (!load_group(ledger_path, target, hash_prefix, &group)) return 2;
      if (!base_ledger_path.empty()) {
        // Two-ledger mode: newest of each group.
        std::vector<JsonValue> base_group;
        if (!load_group(base_ledger_path,
                        base_target.empty() ? target : base_target,
                        base_hash_prefix.empty() ? hash_prefix
                                                 : base_hash_prefix,
                        &base_group)) {
          return 2;
        }
        base = ex::snapshot_newest(base_group);
        base.label += " (" + base_ledger_path + ")";
        current = ex::snapshot_newest(group);
        current.label += " (" + ledger_path + ")";
      } else {
        // Trend-aligned mode: newest vs median of prior history.
        base = ex::median_of_prior(group);
        current = ex::snapshot_newest(group);
      }
    }

    obs::DiffPolicy policy;
    if (!tolerances_path.empty()) {
      policy = obs::load_tolerance_policy(tolerances_path);
    }

    const ex::ExplainReport result =
        ex::explain_runs(std::move(base), std::move(current), policy);
    ex::print_explain(std::cout, result);

    obs::BenchReport report("explain", opts.quick);
    ex::add_explain_metrics(report, result);
    obs::maybe_write_report(report, opts);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "explain: " << e.what() << "\n";
    return 2;
  }
}
