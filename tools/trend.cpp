// trend — cross-run trend tables, regression flags, and drift detection
// over a run ledger (obs/runlog).
//
//   trend --ledger <runs.jsonl> [--target <name>] [--tolerances <policy>]
//         [--openmetrics <path>] [--json <path>] [--quick]
//
// Reads the ledger leniently (damaged lines are skipped and counted,
// never fatal — a crash mid-append must not wedge the trend view), groups
// records by (target, config hash), and renders per-metric history tables
// with ASCII sparklines. Two kinds of flags:
//
//   REGRESSION  newest run vs the median of its prior history, judged by
//               the same tolerance policy file the bench_gate uses
//               (--tolerances; default policy otherwise). Any regression
//               makes the tool exit 1 with the offending metrics named —
//               this is what the trend_gate CI wiring relies on.
//   DRIFT       robust median/MAD changepoint over the whole history:
//               slow creep that no single run trips.
//
// Exports: --json emits a BenchReport (ledger/group/flag counts plus
// per-group last/median metrics; the trend_smoke + trend_gate jobs
// consume it), --openmetrics emits the hpcos_trend exposition.
//
// Exit codes: 0 clean, 1 regressions found, 2 usage/I-O errors.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/bench_diff.h"
#include "obs/bench_report.h"
#include "obs/explain/explain.h"
#include "obs/runlog.h"
#include "obs/trend.h"

#include "cli_util.h"

namespace {

using namespace hpcos;

std::string short_hash(const std::string& hash) {
  return hash.substr(0, 8);
}

std::string fmt_value(double v) {
  return TextTable::fmt_sci(v, 4);
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = obs::parse_bench_options(argc, argv);
  std::string tolerances_path;
  std::string openmetrics_path;
  std::string target_filter;
  tools::CliArgs cli(
      "usage: trend --ledger <runs.jsonl> [--target <name>]"
      " [--tolerances <policy.json>] [--openmetrics <path>]"
      " [--json <path>] [--quick]");
  cli.add_value("--tolerances", &tolerances_path);
  cli.add_value("--openmetrics", &openmetrics_path);
  cli.add_value("--target", &target_filter);
  if (!cli.parse(opts.remaining)) return 2;
  if (opts.sinks.ledger_path.empty()) {
    std::cerr << "trend: --ledger <runs.jsonl> is required\n";
    return 2;
  }
  // The ledger is this tool's *input*; never append trend's own report
  // record back into it (that would grow the file under CI's feet).
  const std::string ledger_path = opts.sinks.ledger_path;
  opts.sinks.ledger_path.clear();

  try {
    const obs::RunLedger ledger =
        obs::read_run_ledger(ledger_path, /*strict=*/false);
    if (ledger.skipped > 0) {
      std::cout << "trend: skipped " << ledger.skipped
                << " damaged ledger line(s) in " << ledger_path << "\n";
    }
    std::vector<JsonValue> records;
    for (const JsonValue& r : ledger.records) {
      if (target_filter.empty() ||
          r.at("target").as_string() == target_filter) {
        records.push_back(r);
      }
    }
    if (records.empty()) {
      std::cerr << "trend: no usable records in " << ledger_path
                << (target_filter.empty()
                        ? std::string{}
                        : " for target " + target_filter)
                << "\n";
      return 2;
    }

    obs::DiffPolicy policy;
    if (!tolerances_path.empty()) {
      policy = obs::load_tolerance_policy(tolerances_path);
    }

    const auto groups = obs::trend::group_records(records);
    const auto regressions = obs::trend::find_regressions(groups, policy);
    const auto drifts = obs::trend::find_drift(groups);

    print_banner(std::cout, "Run ledger: " + ledger_path);
    TextTable overview({"target", "config", "runs", "metrics"});
    overview.set_align(2, Align::kRight);
    overview.set_align(3, Align::kRight);
    for (const auto& g : groups) {
      overview.add_row({g.target, short_hash(g.config_hash),
                        TextTable::fmt_int(static_cast<long long>(g.runs)),
                        TextTable::fmt_int(
                            static_cast<long long>(g.metrics.size()))});
    }
    overview.print(std::cout);

    for (const auto& g : groups) {
      print_banner(std::cout, g.target + " @ " + short_hash(g.config_hash) +
                                  " (" + std::to_string(g.runs) + " runs)");
      TextTable table({"metric", "n", "first", "median", "last", "trend"});
      for (std::size_t c = 1; c < 5; ++c) table.set_align(c, Align::kRight);
      for (const auto& m : g.metrics) {
        if (m.values.empty()) continue;
        table.add_row(
            {m.name,
             TextTable::fmt_int(static_cast<long long>(m.values.size())),
             fmt_value(m.values.front()),
             fmt_value(obs::trend::median(m.values)),
             fmt_value(m.values.back()),
             obs::trend::sparkline(m.values)});
      }
      table.print(std::cout);
    }

    if (!drifts.empty()) {
      print_banner(std::cout, "Drift (median/MAD changepoints)");
      TextTable table({"target", "config", "metric", "split", "before",
                       "after", "score"});
      for (std::size_t c = 3; c < 7; ++c) table.set_align(c, Align::kRight);
      for (const auto& d : drifts) {
        table.add_row({d.target, short_hash(d.config_hash), d.metric,
                       TextTable::fmt_int(static_cast<long long>(d.split)),
                       fmt_value(d.before_median), fmt_value(d.after_median),
                       TextTable::fmt(d.score, 1)});
      }
      table.print(std::cout);
    }

    if (!openmetrics_path.empty()) {
      std::ofstream out(openmetrics_path);
      if (!out) {
        std::cerr << "trend: cannot open " << openmetrics_path << "\n";
        return 2;
      }
      out << obs::trend::trend_openmetrics_text(groups);
      std::cout << "trend: OpenMetrics exposition written to "
                << openmetrics_path << "\n";
    }

    obs::BenchReport report("trend", opts.quick);
    report.add_metric("ledger.records.count", "count",
                      static_cast<double>(records.size()));
    report.add_metric("ledger.skipped_lines.count", "count",
                      static_cast<double>(ledger.skipped));
    report.add_metric("ledger.groups.count", "count",
                      static_cast<double>(groups.size()));
    report.add_metric("flags.regressions.count", "count",
                      static_cast<double>(regressions.size()));
    report.add_metric("flags.drifts.count", "count",
                      static_cast<double>(drifts.size()));
    for (const auto& g : groups) {
      const std::string base =
          "group." + g.target + "." + short_hash(g.config_hash);
      report.add_metric(base + ".runs", "count",
                        static_cast<double>(g.runs));
      for (const auto& m : g.metrics) {
        if (m.values.empty()) continue;
        report.add_metric(base + "." + m.name + ".last", m.unit,
                          m.values.back());
        report.add_metric(base + "." + m.name + ".median", m.unit,
                          obs::trend::median(m.values));
      }
    }
    obs::maybe_write_report(report, opts);

    if (!regressions.empty()) {
      print_banner(std::cout, "REGRESSIONS (worst first)");
      TextTable table({"target", "config", "metric", "baseline", "current",
                       "rel", "allowed rel", "allowed abs"});
      for (std::size_t c = 3; c < 8; ++c) table.set_align(c, Align::kRight);
      for (const auto& r : regressions) {
        table.add_row({r.target, short_hash(r.config_hash), r.metric,
                       fmt_value(r.baseline), fmt_value(r.current),
                       TextTable::fmt_percent(r.rel_delta),
                       TextTable::fmt_percent(r.tolerance.rel),
                       TextTable::fmt_sci(r.tolerance.abs, 1)});
      }
      table.print(std::cout);
      // Auto-explain the worst flagged group on the same screen: rebuild
      // the exact pair find_regressions judged (newest vs median of
      // prior) and run the hierarchical differ over it. Best-effort — a
      // diagnosis failure must not change the gate's verdict.
      try {
        const auto& worst = regressions.front();
        std::vector<JsonValue> group;
        for (const JsonValue& r : records) {
          if (r.at("target").as_string() == worst.target &&
              r.at("config_hash").as_string() == worst.config_hash) {
            group.push_back(r);
          }
        }
        if (group.size() >= 2) {
          print_banner(std::cout, "Why (worst group, newest vs median)");
          const auto explanation = obs::explain::explain_runs(
              obs::explain::median_of_prior(group),
              obs::explain::snapshot_newest(group), policy);
          obs::explain::print_explain_summary(std::cout, explanation);
          std::cout << "trend: full drill-down: explain --ledger "
                    << ledger_path << " --target " << worst.target
                    << " --config " << short_hash(worst.config_hash)
                    << (tolerances_path.empty()
                            ? std::string{}
                            : " --tolerances " + tolerances_path)
                    << "\n";
        }
      } catch (const std::exception& e) {
        std::cout << "trend: explanation unavailable: " << e.what()
                  << "\n";
      }
      std::cerr << "trend: FAIL — " << regressions.size()
                << " metric(s) regressed vs ledger history:";
      for (const auto& r : regressions) {
        std::cerr << " " << r.target << "/" << r.metric;
      }
      std::cerr << "\n";
      return 1;
    }
    std::cout << "trend: " << groups.size() << " group(s), no regressions"
              << (drifts.empty()
                      ? std::string{}
                      : " (" + std::to_string(drifts.size()) +
                            " drift flag(s) above)")
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "trend: " << e.what() << "\n";
    return 2;
  }
}
