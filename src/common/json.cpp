#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hpcos {

JsonParseError::JsonParseError(const std::string& what, std::size_t off)
    : std::runtime_error(what + " at offset " + std::to_string(off)),
      offset(off) {}

namespace {

void type_error(const char* want) {
  throw std::runtime_error(std::string("JSON value is not a ") + want);
}

}  // namespace

std::string json_format_number(double d) {
  if (!std::isfinite(d)) {
    throw std::runtime_error(
        "JSON cannot represent a non-finite number (NaN/Inf); drop or "
        "replace the value before serializing");
  }
  if (d == 0.0) return "0";  // normalizes -0.0, which JSON cannot preserve
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::abs(d) < 9.007199254740992e15) {  // 2^53: exact integer range
    return std::to_string(static_cast<std::int64_t>(d));
  }
  // Shortest representation that survives the round trip: try increasing
  // precision and return the first rendering that parses back bit-equal.
  // (%.17g always round-trips but prints 0.1 as 0.10000000000000001; the
  // canonical form must be the minimal one so re-serialized documents and
  // config hashes are byte-stable.)
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    const int n = std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    double back = 0.0;
    const auto [ptr, ec] = std::from_chars(buf, buf + n, back);
    if (ec == std::errc{} && ptr == buf + n && back == d) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) type_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) type_error("number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) type_error("string");
  return str_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) type_error("array");
  return arr_;
}

JsonArray& JsonValue::as_array() {
  if (kind_ != Kind::kArray) type_error("array");
  return arr_;
}

const std::vector<JsonMember>& JsonValue::members() const {
  if (kind_ != Kind::kObject) type_error("object");
  return obj_;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ != Kind::kObject) type_error("object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) type_error("object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JSON object has no key \"" + key + "\"");
  }
  return *v;
}

void JsonValue::push_back(JsonValue value) {
  if (kind_ != Kind::kArray) type_error("array");
  arr_.push_back(std::move(value));
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  std::string pad;
  std::string close_pad;
  if (indent > 0) {
    pad.assign(1, '\n');
    pad.append(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    close_pad.assign(1, '\n');
    close_pad.append(static_cast<std::size_t>(indent * depth), ' ');
  }
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      out += json_format_number(num_);
      return;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        out += pad;
        arr_[i].write(out, indent, depth + 1);
      }
      out += close_pad;
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        out += pad;
        out += '"';
        out += json_escape(obj_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        obj_[i].second.write(out, indent, depth + 1);
      }
      out += close_pad;
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string JsonValue::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  out += '\n';
  return out;
}

// ---- parser ----

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw JsonParseError("trailing characters after JSON document", pos_);
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are rejected — the
          // emitters never produce them).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate pairs unsupported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a JSON value");
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace hpcos
