// Mergeable log-bucketed quantile sketch (DDSketch-style).
//
// The timeline layer (obs/timeseries) needs tail quantiles — p99/p999 of
// per-source noise overheads, per kernel configuration, over arbitrarily
// long runs — without retaining raw samples and without giving up the
// repo's bit-identical-across-thread-counts discipline. The sketch
// buckets positive values geometrically: bucket i covers
// (gamma^(i-1), gamma^i] with gamma = (1 + alpha) / (1 - alpha), and a
// quantile query returns the bucket's log-space midpoint estimate
// 2 * gamma^i / (gamma + 1), which is within relative error alpha of the
// exact batch percentile (stats::percentile) — the bound the tests pin.
//
// Bucket counts are integers, so merge() is exactly associative and
// commutative; campaign shards still merge in shard order (the same
// discipline as Histogram/OnlineStats) and the result is identical for
// any host thread count.
#pragma once

#include <cstdint>
#include <map>
#include <limits>

namespace hpcos {

class QuantileSketch {
 public:
  // `relative_error` (alpha) must be in (0, 1); the default 1% keeps
  // ~920 buckets per decade-spanning distribution tail.
  explicit QuantileSketch(double relative_error = 0.01);

  // Values <= kMinTrackable (including zero and negatives — overheads
  // are clamped at zero upstream) collapse into a dedicated zero bucket.
  static constexpr double kMinTrackable = 1e-9;

  void add(double value, std::uint64_t weight = 1);
  // Other must share this sketch's relative error (checked).
  void merge(const QuantileSketch& other);

  // q in [0, 1]; 0 when empty. Clamped to the observed [min, max], which
  // only tightens the relative-error guarantee.
  double quantile(double q) const;

  std::uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  double relative_error() const { return relative_error_; }
  double min() const { return total_ ? min_ : 0.0; }
  double max() const { return total_ ? max_ : 0.0; }
  // Distinct non-empty buckets — the sketch's memory footprint.
  std::size_t bucket_count() const {
    return buckets_.size() + (zero_count_ > 0 ? 1 : 0);
  }

 private:
  std::int32_t bucket_index(double value) const;
  double bucket_value(std::int32_t index) const;
  // Bucket estimate of the zero-based k-th order statistic.
  double value_at_rank(std::uint64_t k) const;

  double relative_error_;
  double gamma_;
  double log_gamma_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t total_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  // Ordered map: quantile queries walk buckets in value order, and
  // enumeration order never depends on insertion order.
  std::map<std::int32_t, std::uint64_t> buckets_;
};

}  // namespace hpcos
