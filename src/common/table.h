// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures and
// prints it in a fixed-width layout so results can be eyeballed against the
// paper and diffed across runs.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hpcos {

enum class Align { kLeft, kRight };

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Append a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  // Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_sci(double v, int precision = 2);
  static std::string fmt_int(long long v);
  static std::string fmt_percent(double fraction, int precision = 1);

  void set_align(std::size_t column, Align a);

  // Render with a header rule and column padding.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

// Section banner used by the bench binaries ("=== Table 2: ... ===").
void print_banner(std::ostream& os, const std::string& title);

}  // namespace hpcos
