#include "common/sketch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpcos {

QuantileSketch::QuantileSketch(double relative_error)
    : relative_error_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      log_gamma_(std::log(gamma_)) {
  HPCOS_CHECK_MSG(relative_error > 0.0 && relative_error < 1.0,
                  "sketch relative error must be in (0, 1)");
}

std::int32_t QuantileSketch::bucket_index(double value) const {
  // ceil(log_gamma(value)): bucket i covers (gamma^(i-1), gamma^i].
  return static_cast<std::int32_t>(std::ceil(std::log(value) / log_gamma_));
}

double QuantileSketch::bucket_value(std::int32_t index) const {
  // Estimate minimizing worst-case relative error over the bucket.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::add(double value, std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (value <= kMinTrackable) {
    zero_count_ += weight;
    return;
  }
  buckets_[bucket_index(value)] += weight;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  HPCOS_CHECK_MSG(relative_error_ == other.relative_error_,
                  "merging sketches with different relative errors");
  if (other.total_ == 0) return;
  total_ += other.total_;
  zero_count_ += other.zero_count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (const auto& [index, count] : other.buckets_) {
    buckets_[index] += count;
  }
}

double QuantileSketch::value_at_rank(std::uint64_t k) const {
  if (k < zero_count_) return 0.0;
  std::uint64_t cum = zero_count_;
  for (const auto& [index, count] : buckets_) {
    cum += count;
    if (k < cum) return bucket_value(index);
  }
  return max_;
}

double QuantileSketch::quantile(double q) const {
  HPCOS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (total_ == 0) return 0.0;
  // percentile_sorted's rank convention: linear interpolation between the
  // closest ranks. Each rank's bucket estimate is within relative error
  // alpha of the exact order statistic, and interpolation of pointwise
  // alpha-bounded positive values stays alpha-bounded, so the guarantee
  // carries over to the batch percentile.
  const double rank = q * static_cast<double>(total_ - 1);
  const auto lo = static_cast<std::uint64_t>(rank);
  const std::uint64_t hi = std::min(lo + 1, total_ - 1);
  const double frac = rank - static_cast<double>(lo);
  const double v_lo = value_at_rank(lo);
  const double v_hi = value_at_rank(hi);
  const double estimate = v_lo + frac * (v_hi - v_lo);
  return std::clamp(estimate, min_, max_);
}

}  // namespace hpcos
