#include "common/rng.h"

#include <cmath>

namespace hpcos {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

RngStream::RngStream(Seed seed, std::uint64_t stream)
    : seed_(seed), stream_(stream) {
  // Mix seed and stream through splitmix64 so that nearby (seed, stream)
  // pairs yield uncorrelated xoshiro states.
  std::uint64_t x = seed.value ^ (stream * 0xD1B54A32D192ED03ull + 1);
  for (auto& s : state_) s = splitmix64(x);
  // xoshiro must not be seeded with the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

RngStream RngStream::split(std::uint64_t child_index) const {
  // Children are derived from the parent's identity, not its current state,
  // so splitting is insensitive to how many numbers the parent has drawn.
  return RngStream(Seed{seed_.value ^ (stream_ * 0xA24BAED4963EE407ull)},
                   child_index + 0x9FB21C651E98DF25ull);
}

std::uint64_t RngStream::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double RngStream::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t RngStream::uniform_index(std::uint64_t n) {
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool RngStream::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double RngStream::exponential(double mean) {
  // Inverse CDF; 1 - uniform() is in (0, 1] so the log argument is safe.
  return -mean * std::log1p(-uniform());
}

double RngStream::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double RngStream::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::uint64_t RngStream::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the large
  // arrival counts used by the cluster-scale noise sampler.
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

SimTime RngStream::exponential_time(SimTime mean) {
  return SimTime::ns(static_cast<std::int64_t>(
      exponential(static_cast<double>(mean.count_ns()))));
}

SimTime RngStream::uniform_time(SimTime lo, SimTime hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>((hi - lo).count_ns());
  return lo + SimTime::ns(static_cast<std::int64_t>(uniform_index(span)));
}

SimTime RngStream::normal_time(SimTime mean, SimTime stddev, SimTime floor) {
  const double v = normal(static_cast<double>(mean.count_ns()),
                          static_cast<double>(stddev.count_ns()));
  const auto t = SimTime::ns(static_cast<std::int64_t>(v));
  return t < floor ? floor : t;
}

}  // namespace hpcos
