#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hpcos {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), align_(headers_.size(), Align::kRight) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
  align_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("TextTable: row has more cells than columns");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*E", precision, v);
  return buf;
}

std::string TextTable::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TextTable::set_align(std::size_t column, Align a) {
  align_.at(column) = a;
}

const std::string& TextTable::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = widths[c] - row[c].size();
      os << (c == 0 ? "| " : " ");
      if (align_[c] == Align::kRight) os << std::string(pad, ' ');
      os << row[c];
      if (align_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace hpcos
