#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcos {

LogHistogram::LogHistogram(double min_value, double max_value,
                           std::size_t num_bins)
    : log_min_(std::log(min_value)),
      log_max_(std::log(max_value)),
      counts_(num_bins, 0) {
  if (!(min_value > 0.0) || !(max_value > min_value) || num_bins == 0) {
    throw std::invalid_argument("LogHistogram: bad range or bin count");
  }
}

std::size_t LogHistogram::bin_index(double value) const {
  if (value <= 0.0) return 0;
  const double lv = std::log(value);
  if (lv <= log_min_) return 0;
  if (lv >= log_max_) return counts_.size() - 1;
  const double frac = (lv - log_min_) / (log_max_ - log_min_);
  const auto idx =
      static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  return std::min(idx, counts_.size() - 1);
}

void LogHistogram::add_n(double value, std::uint64_t n) {
  if (n == 0) return;
  if (total_ == 0) {
    observed_min_ = value;
    observed_max_ = value;
  } else {
    observed_min_ = std::min(observed_min_, value);
    observed_max_ = std::max(observed_max_, value);
  }
  counts_[bin_index(value)] += n;
  total_ += n;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.counts_.size() != counts_.size() || other.log_min_ != log_min_ ||
      other.log_max_ != log_max_) {
    throw std::invalid_argument("LogHistogram::merge: incompatible layout");
  }
  if (other.total_ == 0) return;
  if (total_ == 0) {
    observed_min_ = other.observed_min_;
    observed_max_ = other.observed_max_;
  } else {
    observed_min_ = std::min(observed_min_, other.observed_min_);
    observed_max_ = std::max(observed_max_, other.observed_max_);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LogHistogram::bin_lower(std::size_t i) const {
  const double frac =
      static_cast<double>(i) / static_cast<double>(counts_.size());
  return std::exp(log_min_ + frac * (log_max_ - log_min_));
}

double LogHistogram::bin_upper(std::size_t i) const { return bin_lower(i + 1); }

double LogHistogram::bin_center(std::size_t i) const {
  return std::sqrt(bin_lower(i) * bin_upper(i));
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      return std::min(bin_upper(i), observed_max_);
    }
  }
  return observed_max_;
}

std::vector<std::pair<double, double>> LogHistogram::cdf_points() const {
  std::vector<std::pair<double, double>> out;
  if (total_ == 0) return out;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    cum += counts_[i];
    out.emplace_back(bin_upper(i),
                     static_cast<double>(cum) / static_cast<double>(total_));
  }
  return out;
}

void EmpiricalCdf::add_all(std::span<const double> vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  sorted_ = false;
}

void EmpiricalCdf::merge(const EmpiricalCdf& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return percentile_from_sorted(q);
}

double EmpiricalCdf::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double EmpiricalCdf::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

std::vector<std::pair<double, double>> EmpiricalCdf::cdf_points(
    std::size_t num) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || num == 0) return out;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  if (lo == hi) {
    out.emplace_back(lo, 1.0);
    return out;
  }
  out.reserve(num);
  for (std::size_t i = 0; i < num; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(num - 1);
    out.emplace_back(x, fraction_at_or_below(x));
  }
  return out;
}

std::span<const double> EmpiricalCdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

double EmpiricalCdf::percentile_from_sorted(double q) const {
  const double clamped = std::clamp(q, 0.0, 1.0);
  const double rank =
      clamped * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

}  // namespace hpcos
