// Minimal JSON document model: build, serialize, parse.
//
// The observability layer emits two machine-readable formats — Chrome
// trace_event files and BenchReport results — and the bench_smoke job and
// the tests must re-parse and validate what was written. Rather than bake
// in an external dependency for that round trip, this is a small
// self-contained JSON value type: enough for objects/arrays/strings/
// numbers/bools/null, strict parsing with position-annotated errors, and
// deterministic serialization (object keys keep insertion order).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hpcos {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
// Insertion-ordered object: serialization is deterministic and mirrors the
// order fields were added (schemas stay diffable).
using JsonMember = std::pair<std::string, JsonValue>;

struct JsonParseError : std::runtime_error {
  JsonParseError(const std::string& what, std::size_t offset);
  std::size_t offset = 0;
};

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(std::nullptr_t) : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  JsonValue(std::int64_t i)
      : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t u)
      : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  JsonValue(int i) : kind_(Kind::kNumber), num_(i) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(JsonArray a) : kind_(Kind::kArray), arr_(std::move(a)) {}

  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue array() { return JsonValue(JsonArray{}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const std::vector<JsonMember>& members() const;

  // Object field access. set() replaces an existing key in place.
  JsonValue& set(const std::string& key, JsonValue value);
  const JsonValue* find(const std::string& key) const;  // null if absent
  const JsonValue& at(const std::string& key) const;    // throws if absent
  bool contains(const std::string& key) const { return find(key) != nullptr; }

  void push_back(JsonValue value);

  // Compact serialization (no insignificant whitespace) and a pretty
  // 2-space-indented form for files meant to be read by humans.
  std::string dump() const;
  std::string dump_pretty() const;

  // Strict parse of a complete document; trailing garbage is an error.
  static JsonValue parse(const std::string& text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  std::vector<JsonMember> obj_;
};

// Escape a string for embedding in a JSON document (without quotes).
std::string json_escape(const std::string& s);

// Canonical number rendering used by dump()/dump_pretty() and the
// config-hash canonicalizer (common/confighash.h): integers within 2^53
// print without a fraction, -0 normalizes to "0", everything else uses the
// *shortest* decimal form that parses back to the identical double (so a
// serialize -> parse -> serialize round trip is byte-stable). Throws
// std::runtime_error on NaN/Inf — JSON has no representation for them, and
// a loud error beats silently emitting a lossy placeholder.
std::string json_format_number(double d);

}  // namespace hpcos
