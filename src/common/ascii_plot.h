// Terminal plotting for the figure benches.
//
// Renders multiple (x, y) series as an ASCII grid — enough to *see* a
// CDF's shape (Figure 4) or a time series in a terminal or CI log.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpcos {

struct PlotSeries {
  std::string label;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;
};

struct PlotOptions {
  int width = 72;    // plot columns (excluding axis labels)
  int height = 20;   // plot rows
  bool log_x = false;
  std::string x_label;
  std::string y_label;
};

// Render all series on shared axes (ranges derived from the data).
void ascii_plot(std::ostream& os, const std::vector<PlotSeries>& series,
                const PlotOptions& options);

}  // namespace hpcos
