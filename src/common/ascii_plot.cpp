#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "common/check.h"

namespace hpcos {
namespace {

double transform_x(double x, bool log_x) {
  return log_x ? std::log10(std::max(x, 1e-300)) : x;
}

}  // namespace

void ascii_plot(std::ostream& os, const std::vector<PlotSeries>& series,
                const PlotOptions& options) {
  HPCOS_CHECK(options.width >= 8 && options.height >= 4);

  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -min_x;
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -min_y;
  bool any = false;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const double tx = transform_x(x, options.log_x);
      min_x = std::min(min_x, tx);
      max_x = std::max(max_x, tx);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
      any = true;
    }
  }
  if (!any) {
    os << "(no data)\n";
    return;
  }
  if (max_x == min_x) max_x = min_x + 1.0;
  if (max_y == min_y) max_y = min_y + 1.0;

  const auto w = static_cast<std::size_t>(options.width);
  const auto h = static_cast<std::size_t>(options.height);
  std::vector<std::string> grid(h, std::string(w, ' '));
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const double fx =
          (transform_x(x, options.log_x) - min_x) / (max_x - min_x);
      const double fy = (y - min_y) / (max_y - min_y);
      const auto col = std::min(
          w - 1, static_cast<std::size_t>(fx * static_cast<double>(w - 1) +
                                          0.5));
      const auto row = std::min(
          h - 1, static_cast<std::size_t>(fy * static_cast<double>(h - 1) +
                                          0.5));
      grid[h - 1 - row][col] = s.glyph;
    }
  }

  char buf[64];
  for (std::size_t r = 0; r < h; ++r) {
    const double y =
        max_y - (max_y - min_y) * static_cast<double>(r) /
                    static_cast<double>(h - 1);
    std::snprintf(buf, sizeof(buf), "%8.3g |", y);
    os << buf << grid[r] << "\n";
  }
  os << std::string(10, ' ') << std::string(w, '-') << "\n";
  const double left = options.log_x ? std::pow(10.0, min_x) : min_x;
  const double right = options.log_x ? std::pow(10.0, max_x) : max_x;
  std::snprintf(buf, sizeof(buf), "%-10.4g", left);
  os << std::string(10, ' ') << buf;
  const std::string xl =
      options.x_label + (options.log_x ? " (log scale)" : "");
  const int pad = static_cast<int>(w) - 10 - 10 -
                  static_cast<int>(xl.size()) / 2;
  os << std::string(static_cast<std::size_t>(std::max(1, pad)), ' ') << xl;
  std::snprintf(buf, sizeof(buf), "%10.4g", right);
  const int rpad = static_cast<int>(w) - 10 - static_cast<int>(xl.size()) -
                   std::max(1, pad);
  os << std::string(static_cast<std::size_t>(std::max(1, rpad)), ' ') << buf
     << "\n";
  for (const auto& s : series) {
    os << "  " << s.glyph << " = " << s.label << "\n";
  }
}

}  // namespace hpcos
