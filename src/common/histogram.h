// Latency histogram and empirical CDF containers.
//
// The evaluation plots (Figure 4 in particular) are cumulative distribution
// functions of FWQ iteration lengths aggregated over tens of thousands of
// cores. LogHistogram keeps memory bounded while preserving the tail
// resolution those plots need; EmpiricalCdf keeps exact samples for the
// smaller data sets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hpcos {

// Histogram with logarithmically spaced bins between [min_value, max_value].
// Values outside the range are clamped into the first/last bin, so the total
// count is always the number of add() calls.
class LogHistogram {
 public:
  LogHistogram(double min_value, double max_value, std::size_t num_bins);

  void add(double value) { add_n(value, 1); }
  void add_n(double value, std::uint64_t n);
  void merge(const LogHistogram& other);

  std::uint64_t total_count() const { return total_; }
  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  // Geometric midpoint of bin i.
  double bin_center(std::size_t i) const;
  double bin_lower(std::size_t i) const;
  double bin_upper(std::size_t i) const;

  // Value below which fraction q of the samples fall (q in [0,1]); uses the
  // bin upper edge, so it is an upper bound on the true quantile.
  double quantile(double q) const;
  double observed_max() const { return observed_max_; }
  double observed_min() const { return observed_min_; }

  // (value, cumulative_fraction) pairs for plotting; one point per
  // non-empty bin.
  std::vector<std::pair<double, double>> cdf_points() const;

 private:
  std::size_t bin_index(double value) const;

  double log_min_;
  double log_max_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double observed_min_ = 0.0;
  double observed_max_ = 0.0;
};

// Exact empirical CDF over retained samples.
class EmpiricalCdf {
 public:
  void add(double v) { samples_.push_back(v); }
  void add_all(std::span<const double> vs);
  void merge(const EmpiricalCdf& other);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Fraction of samples <= x.
  double fraction_at_or_below(double x) const;
  // q in [0, 1].
  double quantile(double q) const;
  double min() const;
  double max() const;

  // Evenly spaced plot points (num points along the sample range).
  std::vector<std::pair<double, double>> cdf_points(std::size_t num) const;

  std::span<const double> sorted_samples() const;

 private:
  void ensure_sorted() const;
  double percentile_from_sorted(double q) const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace hpcos
