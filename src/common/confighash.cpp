#include "common/confighash.h"

#include <algorithm>
#include <cstdio>

namespace hpcos {

namespace {

void write_canonical(const JsonValue& value, std::string& out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += json_format_number(value.as_number());
      return;
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(value.as_string());
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : value.as_array()) {
        if (!first) out += ',';
        first = false;
        write_canonical(v, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      // Keys sort bytewise; JsonValue::set already deduplicates, so the
      // sorted view is a permutation of the members, never a merge.
      std::vector<const JsonMember*> members;
      members.reserve(value.members().size());
      for (const JsonMember& m : value.members()) members.push_back(&m);
      std::sort(members.begin(), members.end(),
                [](const JsonMember* a, const JsonMember* b) {
                  return a->first < b->first;
                });
      out += '{';
      bool first = true;
      for (const JsonMember* m : members) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(m->first);
        out += "\":";
        write_canonical(m->second, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string canonical_json(const JsonValue& value) {
  std::string out;
  write_canonical(value, out);
  return out;
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t state) {
  for (const char c : bytes) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnv1a64Prime;
  }
  return state;
}

std::string to_hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t config_hash64(const JsonValue& config) {
  std::uint64_t state = fnv1a64(kConfigHashSchema);
  state = fnv1a64("\n", state);
  return fnv1a64(canonical_json(config), state);
}

std::string config_hash_hex(const JsonValue& config) {
  return to_hex64(config_hash64(config));
}

namespace {

void diff_walk(const JsonValue& base, const JsonValue& current,
               const std::string& path, std::vector<ConfigDelta>& out) {
  if (base.is_object() && current.is_object()) {
    // Union of keys in bytewise-sorted order — the same visit order the
    // canonical serializer uses, so diff order matches canonical bytes.
    std::vector<std::string> keys;
    for (const JsonMember& m : base.members()) keys.push_back(m.first);
    for (const JsonMember& m : current.members()) keys.push_back(m.first);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (const std::string& key : keys) {
      const std::string child = path.empty() ? key : path + "." + key;
      const JsonValue* b = base.find(key);
      const JsonValue* c = current.find(key);
      if (b != nullptr && c != nullptr) {
        diff_walk(*b, *c, child, out);
      } else if (c != nullptr) {
        out.push_back({ConfigDeltaKind::kAdded, child, "",
                       canonical_json(*c)});
      } else {
        out.push_back({ConfigDeltaKind::kRemoved, child,
                       canonical_json(*b), ""});
      }
    }
    return;
  }
  if (base.is_array() && current.is_array()) {
    const JsonArray& b = base.as_array();
    const JsonArray& c = current.as_array();
    const std::size_t common = std::min(b.size(), c.size());
    for (std::size_t i = 0; i < common; ++i) {
      diff_walk(b[i], c[i], path + "[" + std::to_string(i) + "]", out);
    }
    for (std::size_t i = common; i < c.size(); ++i) {
      out.push_back({ConfigDeltaKind::kAdded,
                     path + "[" + std::to_string(i) + "]", "",
                     canonical_json(c[i])});
    }
    for (std::size_t i = common; i < b.size(); ++i) {
      out.push_back({ConfigDeltaKind::kRemoved,
                     path + "[" + std::to_string(i) + "]",
                     canonical_json(b[i]), ""});
    }
    return;
  }
  // Leaf (or container-kind mismatch): canonical bytes decide. Matching
  // bytes at matching kinds is the only way to produce no entry, which is
  // what ties the empty diff to hash equality.
  const std::string b = canonical_json(base);
  const std::string c = canonical_json(current);
  if (b != c) {
    out.push_back({ConfigDeltaKind::kChanged, path, b, c});
  }
}

}  // namespace

std::vector<ConfigDelta> config_diff(const JsonValue& base,
                                     const JsonValue& current) {
  std::vector<ConfigDelta> out;
  diff_walk(base, current, "", out);
  return out;
}

}  // namespace hpcos
