#include "common/confighash.h"

#include <algorithm>
#include <cstdio>

namespace hpcos {

namespace {

void write_canonical(const JsonValue& value, std::string& out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += json_format_number(value.as_number());
      return;
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(value.as_string());
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : value.as_array()) {
        if (!first) out += ',';
        first = false;
        write_canonical(v, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      // Keys sort bytewise; JsonValue::set already deduplicates, so the
      // sorted view is a permutation of the members, never a merge.
      std::vector<const JsonMember*> members;
      members.reserve(value.members().size());
      for (const JsonMember& m : value.members()) members.push_back(&m);
      std::sort(members.begin(), members.end(),
                [](const JsonMember* a, const JsonMember* b) {
                  return a->first < b->first;
                });
      out += '{';
      bool first = true;
      for (const JsonMember* m : members) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(m->first);
        out += "\":";
        write_canonical(m->second, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string canonical_json(const JsonValue& value) {
  std::string out;
  write_canonical(value, out);
  return out;
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t state) {
  for (const char c : bytes) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnv1a64Prime;
  }
  return state;
}

std::string to_hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t config_hash64(const JsonValue& config) {
  std::uint64_t state = fnv1a64(kConfigHashSchema);
  state = fnv1a64("\n", state);
  return fnv1a64(canonical_json(config), state);
}

std::string config_hash_hex(const JsonValue& config) {
  return to_hex64(config_hash64(config));
}

}  // namespace hpcos
