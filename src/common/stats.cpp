#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace hpcos {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> samples, double p) {
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

SampleSummary summarize(std::span<const double> samples) {
  SampleSummary s;
  if (samples.empty()) return s;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  OnlineStats os;
  for (double v : sorted) os.add(v);
  s.count = os.count();
  s.mean = os.mean();
  s.stddev = os.stddev();
  s.min = sorted.front();
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p99 = percentile_sorted(sorted, 99.0);
  s.p999 = percentile_sorted(sorted, 99.9);
  s.max = sorted.back();
  return s;
}

double coefficient_of_variation(std::span<const double> samples) {
  OnlineStats os;
  for (double v : samples) os.add(v);
  if (os.count() < 2 || os.mean() == 0.0) return 0.0;
  return os.stddev() / os.mean();
}

}  // namespace hpcos
