#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stop_token>
#include <thread>
#include <vector>

namespace hpcos {
namespace {

// One in-flight parallel_for. Workers pull dynamically-sized chunks via
// `next`; the stop flag is checked before every chunk claim so one
// worker's exception halts the remaining dispatch instead of silently
// draining the whole range.
struct Task {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t chunk = 1;
  // Pool workers allowed to join in (the calling thread always works).
  std::size_t max_helpers = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> joiners{0};
  std::atomic<bool> stop{false};
  std::mutex error_mutex;
  std::exception_ptr error;
};

// Lazily-initialized persistent worker pool. Dispatch is a generation
// counter under a mutex: run() publishes a task and bumps the generation,
// every worker wakes, works (or skips, past max_helpers), and acks; run()
// returns once all workers acked the generation, so the Task (a stack
// object) never outlives its use.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  // True while the current thread is executing chunks of a task — on pool
  // workers AND on the calling thread (which always participates). Nested
  // parallel_for falls back to serial instead of re-entering the pool.
  static bool in_parallel_region() { return in_parallel_region_; }

  void run(std::size_t count, const std::function<void(std::size_t)>& fn,
           std::size_t threads) {
    // Serialize top-level calls: the pool runs one task at a time.
    std::lock_guard<std::mutex> session(session_mutex_);
    ensure_started();

    Task task;
    task.count = count;
    task.fn = &fn;
    task.max_helpers = threads - 1;
    // Dynamic chunking: grab modest chunks so stragglers (nodes with busy
    // noise traces) don't serialize the run.
    task.chunk = std::max<std::size_t>(1, count / (threads * 8));

    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_ = &task;
      acked_ = 0;
      ++generation_;
    }
    wake_cv_.notify_all();

    execute(task);  // the calling thread is always a worker

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return acked_ == workers_.size(); });
    task_ = nullptr;
    lock.unlock();

    if (task.error) std::rethrow_exception(task.error);
  }

 private:
  void ensure_started() {
    if (!workers_.empty()) return;
    const std::size_t n = default_parallelism();
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back(
          [this](std::stop_token st) { worker_loop(st); });
    }
  }

  void worker_loop(std::stop_token st) {
    std::uint64_t seen = 0;
    for (;;) {
      Task* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, st, [&] { return generation_ != seen; });
        if (st.stop_requested()) return;
        seen = generation_;
        task = task_;
      }
      if (task->joiners.fetch_add(1, std::memory_order_relaxed) <
          task->max_helpers) {
        execute(*task);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++acked_;
      }
      done_cv_.notify_one();
    }
  }

  static void execute(Task& task) {
    struct RegionGuard {
      bool prev = in_parallel_region_;
      RegionGuard() { in_parallel_region_ = true; }
      ~RegionGuard() { in_parallel_region_ = prev; }
    } guard;
    for (;;) {
      if (task.stop.load(std::memory_order_relaxed)) return;
      const std::size_t begin =
          task.next.fetch_add(task.chunk, std::memory_order_relaxed);
      if (begin >= task.count) return;
      const std::size_t end = std::min(begin + task.chunk, task.count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*task.fn)(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(task.error_mutex);
            if (!task.error) task.error = std::current_exception();
          }
          task.stop.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  }

  std::mutex session_mutex_;
  std::mutex mutex_;
  std::condition_variable_any wake_cv_;  // _any: waitable with stop_token
  std::condition_variable done_cv_;
  std::vector<std::jthread> workers_;  // request_stop + join on destruction
  Task* task_ = nullptr;               // guarded by mutex_
  std::uint64_t generation_ = 0;       // guarded by mutex_
  std::size_t acked_ = 0;              // guarded by mutex_

  static thread_local bool in_parallel_region_;
};

thread_local bool WorkerPool::in_parallel_region_ = false;

}  // namespace

std::size_t default_parallelism() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_parallelism();
  threads = std::min(threads, count);

  if (threads <= 1 || WorkerPool::in_parallel_region()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  WorkerPool::instance().run(count, fn, threads);
}

}  // namespace hpcos
