#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <stop_token>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "obs/prof/mem.h"

namespace hpcos {
namespace {

std::int64_t host_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TaskGroup;

// One contiguous index range of one task group. Chunks live in their
// group's pre-sized vector (stable addresses), so deques store plain
// pointers and claiming a chunk never allocates.
struct Chunk {
  TaskGroup* group = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
};

// One parallel_for call: its chunk storage, completion count, and error
// state. `parent` is the group whose chunk was executing when this group
// was submitted (nullptr at top level); cancellation checks walk the
// parent chain so a failing ancestor also drains its descendants'
// remaining chunks. Lifetime: a group is a stack object in run(), which
// returns only after every chunk is claimed and finished, and a parent
// group cannot complete while the chunk that spawned a child is still
// executing — so parent pointers never dangle.
struct TaskGroup {
  const std::function<void(std::size_t)>* fn = nullptr;
  TaskGroup* parent = nullptr;
  std::vector<Chunk> chunks;
  std::atomic<bool> stop{false};
  // Completion state is fully mutex-guarded on purpose: the group is a
  // stack object in run(), so the waiter may only observe "remaining ==
  // 0" under the same lock inside which the last finisher decremented
  // and notified — otherwise the waiter could destroy the group while
  // that finisher is still touching the condition variable.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = 0;     // guarded by done_mutex
  std::exception_ptr error;      // guarded by done_mutex

  bool cancelled() const {
    for (const TaskGroup* g = this; g != nullptr; g = g->parent) {
      if (g->stop.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }
};

// Chase-Lev work-stealing deque (Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models", PPoPP'13) in the fence-free
// seq_cst formulation: the owner pushes/pops at the bottom without locks,
// thieves CAS the top. Slots are atomic pointers, and the owner's
// release-store of `bottom_` paired with thieves' acquire-loads carries
// the happens-before edge for the chunk payload, so the algorithm is
// both C++-correct and ThreadSanitizer-clean without standalone fences.
// Grown buffers are retired, not freed, until the deque dies: a thief
// racing a grow may still read the old buffer's slot for an index the
// grow copied, which stays valid.
class ChunkDeque {
 public:
  ChunkDeque() { buf_.store(new_buffer(kInitialCap), std::memory_order_relaxed); }

  // Owner only.
  void push(Chunk* c) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* a = buf_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->cap)) a = grow(a, t, b);
    a->put(b, c);
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only. nullptr when empty (or when a thief won the last item).
  Chunk* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* a = buf_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    Chunk* c = nullptr;
    if (t <= b) {
      c = a->get(b);
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          c = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return c;
  }

  // Any thread. nullptr when empty or when the CAS lost a race (callers
  // treat both as "try another victim").
  Chunk* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* a = buf_.load(std::memory_order_acquire);
    Chunk* c = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return c;
  }

  // Any thread; approximate by design (two relaxed loads racing pops and
  // steals). Good enough for backlog telemetry, never for control flow.
  std::size_t approx_depth() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  static constexpr std::size_t kInitialCap = 256;  // power of two

  struct Buffer {
    explicit Buffer(std::size_t n)
        : cap(n), mask(n - 1),
          slots(std::make_unique<std::atomic<Chunk*>[]>(n)) {}
    const std::size_t cap;
    const std::size_t mask;
    std::unique_ptr<std::atomic<Chunk*>[]> slots;

    Chunk* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, Chunk* c) {
      slots[static_cast<std::size_t>(i) & mask].store(
          c, std::memory_order_relaxed);
    }
  };

  Buffer* new_buffer(std::size_t n) {
    buffers_.push_back(std::make_unique<Buffer>(n));
    obs::prof::memory_counter("parallel.deque")
        ->add(sizeof(Buffer) + n * sizeof(std::atomic<Chunk*>));
    return buffers_.back().get();
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    Buffer* bigger = new_buffer(old->cap * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buf_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buf_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  // owner-only; retired kept
};

constexpr std::ptrdiff_t kNoSlot = -1;

// Lazily-initialized work-stealing scheduler. Deque slot 0 belongs to
// whichever external thread holds the session mutex (top-level calls
// serialize, as before); slots 1..n belong to the persistent workers.
// Dispatch wakes only as many sleeping workers as the task group can
// use — never the whole pool — and idle workers park on a condition
// variable guarded by a publish epoch so no published chunk can be
// missed without a wakeup token being minted for it.
class Scheduler {
 public:
  static Scheduler& instance() {
    static Scheduler s;
    return s;
  }

  std::size_t capacity() const { return nworkers_ + 1; }

  static bool in_region() { return tl_executing_ != nullptr; }

  ParallelStats stats() const {
    ParallelStats s;
    s.wakeups = wakeups_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.steal_attempts = steal_attempts_.load(std::memory_order_relaxed);
    s.groups = groups_.load(std::memory_order_relaxed);
    s.nested_groups = nested_groups_.load(std::memory_order_relaxed);
    s.chunks_executed = chunks_executed_.load(std::memory_order_relaxed);
    return s;
  }

  std::vector<WorkerHealth> worker_health() const {
    std::vector<WorkerHealth> out(nworkers_ + 1);
    for (std::size_t i = 0; i <= nworkers_; ++i) {
      const SlotHealth& h = health_[i];
      out[i].chunks = h.chunks.load(std::memory_order_relaxed);
      out[i].pushes = h.pushes.load(std::memory_order_relaxed);
      out[i].steals = h.steals.load(std::memory_order_relaxed);
      out[i].steal_attempts =
          h.steal_attempts.load(std::memory_order_relaxed);
      out[i].parks = h.parks.load(std::memory_order_relaxed);
      out[i].park_ns = h.park_ns.load(std::memory_order_relaxed);
      out[i].depth_sum = h.depth_sum.load(std::memory_order_relaxed);
      out[i].depth_samples =
          h.depth_samples.load(std::memory_order_relaxed);
      out[i].max_depth = h.max_depth.load(std::memory_order_relaxed);
    }
    return out;
  }

  std::vector<std::size_t> deque_depths() const {
    // Live backlog snapshot for the stall watchdog: approx_depth is two
    // relaxed loads per slot (telemetry, never control flow), so this is
    // safe to call from a watchdog thread while the slots run.
    std::vector<std::size_t> out(nworkers_ + 1);
    for (std::size_t i = 0; i <= nworkers_; ++i) {
      out[i] = deques_[i].approx_depth();
    }
    return out;
  }

  void set_timeline(bool enabled) {
    std::lock_guard<std::mutex> lock(timeline_mutex_);
    park_events_.clear();
    depth_samples_.clear();
    timeline_enabled_.store(enabled, std::memory_order_release);
  }

  std::vector<ParkEvent> park_events() const {
    std::lock_guard<std::mutex> lock(timeline_mutex_);
    return park_events_;
  }

  std::vector<DepthSample> depth_samples() const {
    std::lock_guard<std::mutex> lock(timeline_mutex_);
    return depth_samples_;
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& fn,
           std::size_t participants) {
    const bool nested = tl_slot_ != kNoSlot;
    std::unique_lock<std::mutex> session;
    if (!nested) {
      session = std::unique_lock<std::mutex>(session_mutex_);
      tl_slot_ = 0;
    }

    TaskGroup group;
    group.fn = &fn;
    group.parent = tl_executing_;
    // Dynamic chunking: modest chunks so stragglers (nodes with busy
    // noise traces) don't serialize the run. Boundaries are a pure
    // function of (count, participants); results never depend on them.
    const std::size_t chunk =
        std::max<std::size_t>(1, count / (participants * 8));
    const std::size_t nchunks = (count + chunk - 1) / chunk;
    group.chunks.resize(nchunks);
    for (std::size_t i = 0; i < nchunks; ++i) {
      group.chunks[i].group = &group;
      group.chunks[i].begin = i * chunk;
      group.chunks[i].end = std::min(count, (i + 1) * chunk);
    }
    group.remaining = nchunks;  // published by the deque pushes below

    groups_.fetch_add(1, std::memory_order_relaxed);
    if (nested) nested_groups_.fetch_add(1, std::memory_order_relaxed);

    // Publish: reverse push so the owner pops index-ascending chunks
    // (locality) while thieves steal from the high end.
    ChunkDeque& dq = deques_[static_cast<std::size_t>(tl_slot_)];
    for (std::size_t i = nchunks; i-- > 0;) dq.push(&group.chunks[i]);
    health_[static_cast<std::size_t>(tl_slot_)].pushes.fetch_add(
        nchunks, std::memory_order_relaxed);
    sample_depths();
    wake_workers(participants - 1);

    help(group);

    if (!nested) tl_slot_ = kNoSlot;
    if (group.error) std::rethrow_exception(group.error);
  }

 private:
  Scheduler() {
    std::size_t n = default_parallelism();
    if (const char* env = std::getenv("HPCOS_PARALLEL_WORKERS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1 && v <= 256) {
        n = static_cast<std::size_t>(v);
      }
    }
    nworkers_ = n;
    deques_ = std::make_unique<ChunkDeque[]>(nworkers_ + 1);
    health_ = std::make_unique<SlotHealth[]>(nworkers_ + 1);
    workers_.reserve(nworkers_);
    for (std::size_t i = 0; i < nworkers_; ++i) {
      workers_.emplace_back(
          [this, i](std::stop_token st) { worker_loop(i + 1, st); });
    }
  }

  void worker_loop(std::size_t slot, std::stop_token st) {
    tl_slot_ = static_cast<std::ptrdiff_t>(slot);
    tl_rng_ = 0x9E3779B97F4A7C15ull * (slot + 1) | 1;
    while (!st.stop_requested()) {
      // The epoch is sampled before probing: if a publish lands after the
      // probe missed it, the epoch comparison under the sleep mutex
      // detects it and re-probes instead of sleeping through it.
      const std::uint64_t seen =
          publish_epoch_.load(std::memory_order_acquire);
      Chunk* c = deques_[slot].pop();
      if (c == nullptr) c = try_steal();
      if (c != nullptr) {
        execute(*c);
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      if (publish_epoch_.load(std::memory_order_relaxed) != seen) continue;
      ++sleepers_;
      const std::int64_t park_start = host_now_ns();
      sleep_cv_.wait(lock, st, [&] { return wake_tokens_ > 0; });
      const std::int64_t park_end = host_now_ns();
      if (wake_tokens_ > 0) --wake_tokens_;
      --sleepers_;
      lock.unlock();
      SlotHealth& h = health_[slot];
      h.parks.fetch_add(1, std::memory_order_relaxed);
      h.park_ns.fetch_add(static_cast<std::uint64_t>(park_end - park_start),
                          std::memory_order_relaxed);
      if (timeline_enabled_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> tlock(timeline_mutex_);
        if (park_events_.size() < kTimelineCap) {
          park_events_.push_back(ParkEvent{slot, park_start, park_end});
        }
      }
    }
  }

  // Wake at most `want` sleeping workers; already-awake workers find new
  // chunks by stealing. Minting tokens under the sleep mutex (after the
  // chunks are pushed) pairs with the epoch re-check in worker_loop, so
  // a worker can neither miss the work nor be woken without need.
  void wake_workers(std::size_t want) {
    std::size_t granted = 0;
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      publish_epoch_.fetch_add(1, std::memory_order_release);
      const std::size_t asleep =
          sleepers_ > wake_tokens_ ? sleepers_ - wake_tokens_ : 0;
      granted = std::min(want, asleep);
      wake_tokens_ += granted;
    }
    wakeups_.fetch_add(granted, std::memory_order_relaxed);
    for (std::size_t i = 0; i < granted; ++i) sleep_cv_.notify_one();
  }

  // Run chunks until `group` completes. Local chunks first, then steals
  // (which may execute sibling or descendant groups' chunks — helping is
  // always safe because a chunk never blocks on anything but its own
  // descendants). Blocking is safe only once nothing is runnable
  // anywhere: this group's chunks are then all in flight on other
  // threads, which by induction make progress, and the last finisher
  // notifies done_cv.
  void help(TaskGroup& group) {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(group.done_mutex);
        if (group.remaining == 0) return;
      }
      Chunk* c = deques_[static_cast<std::size_t>(tl_slot_)].pop();
      if (c == nullptr) c = try_steal();
      if (c != nullptr) {
        execute(*c);
        continue;
      }
      std::unique_lock<std::mutex> lock(group.done_mutex);
      group.done_cv.wait(lock, [&] { return group.remaining == 0; });
      return;
    }
  }

  Chunk* try_steal() {
    const std::size_t n = nworkers_ + 1;
    const std::size_t me = static_cast<std::size_t>(tl_slot_);
    if (tl_rng_ == 0) {
      tl_rng_ = 0x9E3779B97F4A7C15ull * (me + 2) | 1;
    }
    std::uint64_t attempts = 0;
    Chunk* c = nullptr;
    // Randomized victims first (contention spread), then one
    // deterministic sweep so "no chunk anywhere" is a reliable verdict
    // before a caller decides to block or sleep.
    for (std::size_t round = 0; round < 2 * n && c == nullptr; ++round) {
      tl_rng_ ^= tl_rng_ << 13;
      tl_rng_ ^= tl_rng_ >> 7;
      tl_rng_ ^= tl_rng_ << 17;
      const std::size_t victim = static_cast<std::size_t>(tl_rng_ % n);
      if (victim == me) continue;
      ++attempts;
      c = deques_[victim].steal();
    }
    for (std::size_t victim = 0; victim < n && c == nullptr; ++victim) {
      if (victim == me) continue;
      ++attempts;
      c = deques_[victim].steal();
    }
    steal_attempts_.fetch_add(attempts, std::memory_order_relaxed);
    if (c != nullptr) steals_.fetch_add(1, std::memory_order_relaxed);
    SlotHealth& h = health_[me];
    h.steal_attempts.fetch_add(attempts, std::memory_order_relaxed);
    if (c != nullptr) h.steals.fetch_add(1, std::memory_order_relaxed);
    return c;
  }

  // Publish-time backlog probe: one relaxed depth read per deque. The
  // counters are always on; timeline appends happen only when enabled
  // and take the (cold) timeline mutex once per dispatch.
  void sample_depths() {
    const bool timeline = timeline_enabled_.load(std::memory_order_acquire);
    const std::int64_t t = timeline ? host_now_ns() : 0;
    std::vector<DepthSample> batch;
    if (timeline) batch.reserve(nworkers_ + 1);
    for (std::size_t i = 0; i <= nworkers_; ++i) {
      const std::uint64_t d = deques_[i].approx_depth();
      SlotHealth& h = health_[i];
      h.depth_sum.fetch_add(d, std::memory_order_relaxed);
      h.depth_samples.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t prev = h.max_depth.load(std::memory_order_relaxed);
      while (prev < d && !h.max_depth.compare_exchange_weak(
                             prev, d, std::memory_order_relaxed)) {
      }
      if (timeline) {
        batch.push_back(DepthSample{i, t, static_cast<std::size_t>(d)});
      }
    }
    if (timeline) {
      std::lock_guard<std::mutex> lock(timeline_mutex_);
      for (const DepthSample& s : batch) {
        if (depth_samples_.size() >= kTimelineCap) break;
        depth_samples_.push_back(s);
      }
    }
  }

  void execute(Chunk& c) {
    TaskGroup* g = c.group;
    // A cancelling ancestor drains descendants too: claimed chunks are
    // discarded (never started), preserving chunk-granularity fail-fast.
    if (!g->cancelled()) {
      TaskGroup* const prev = tl_executing_;
      tl_executing_ = g;
      chunks_executed_.fetch_add(1, std::memory_order_relaxed);
      health_[static_cast<std::size_t>(tl_slot_)].chunks.fetch_add(
          1, std::memory_order_relaxed);
      for (std::size_t i = c.begin; i < c.end; ++i) {
        try {
          (*g->fn)(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(g->done_mutex);
            if (!g->error) g->error = std::current_exception();
          }
          g->stop.store(true, std::memory_order_relaxed);
          break;
        }
      }
      tl_executing_ = prev;
    }
    // Decrement AND notify inside the critical section: the waiter can
    // then only see completion after this finisher is done with the
    // group's synchronization objects (see TaskGroup).
    std::lock_guard<std::mutex> lock(g->done_mutex);
    if (--g->remaining == 0) g->done_cv.notify_all();
  }

  // Per-slot health counters. Each counter has a single writer (the
  // slot's own thread) except max_depth/depth_sum/depth_samples, which
  // any publisher may bump; cache-line alignment keeps the common
  // single-writer case free of false sharing.
  struct alignas(64) SlotHealth {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> pushes{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> park_ns{0};
    std::atomic<std::uint64_t> depth_sum{0};
    std::atomic<std::uint64_t> depth_samples{0};
    std::atomic<std::uint64_t> max_depth{0};
  };

  static constexpr std::size_t kTimelineCap = 65536;

  // Top-level session (external callers serialize; workers never take it).
  std::mutex session_mutex_;

  // Sleep/wake machinery.
  std::mutex sleep_mutex_;
  std::condition_variable_any sleep_cv_;  // _any: waitable with stop_token
  std::size_t sleepers_ = 0;              // guarded by sleep_mutex_
  std::size_t wake_tokens_ = 0;           // guarded by sleep_mutex_
  std::atomic<std::uint64_t> publish_epoch_{0};

  std::size_t nworkers_ = 0;
  std::unique_ptr<ChunkDeque[]> deques_;  // [0] = external caller slot
  std::unique_ptr<SlotHealth[]> health_;  // parallel to deques_
  std::vector<std::jthread> workers_;     // request_stop + join on destruction

  // Timeline rings (diagnosis only; bounded, cold-path mutex).
  std::atomic<bool> timeline_enabled_{false};
  mutable std::mutex timeline_mutex_;
  std::vector<ParkEvent> park_events_;        // guarded by timeline_mutex_
  std::vector<DepthSample> depth_samples_;    // guarded by timeline_mutex_

  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> groups_{0};
  std::atomic<std::uint64_t> nested_groups_{0};
  std::atomic<std::uint64_t> chunks_executed_{0};

  static thread_local std::ptrdiff_t tl_slot_;
  static thread_local TaskGroup* tl_executing_;
  static thread_local std::uint64_t tl_rng_;
};

thread_local std::ptrdiff_t Scheduler::tl_slot_ = kNoSlot;
thread_local TaskGroup* Scheduler::tl_executing_ = nullptr;
thread_local std::uint64_t Scheduler::tl_rng_ = 0;

}  // namespace

std::size_t default_parallelism() {
#ifdef __linux__
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int n = CPU_COUNT(&mask);
    if (n > 0) return static_cast<std::size_t>(n);
  }
#endif
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

std::size_t parallel_capacity() { return Scheduler::instance().capacity(); }

bool in_parallel_region() { return Scheduler::in_region(); }

ParallelStats parallel_stats() { return Scheduler::instance().stats(); }

std::vector<WorkerHealth> parallel_worker_health() {
  return Scheduler::instance().worker_health();
}

std::vector<std::size_t> parallel_deque_depths() {
  return Scheduler::instance().deque_depths();
}

void set_scheduler_timeline(bool enabled) {
  Scheduler::instance().set_timeline(enabled);
}

std::vector<ParkEvent> scheduler_park_events() {
  return Scheduler::instance().park_events();
}

std::vector<DepthSample> scheduler_depth_samples() {
  return Scheduler::instance().depth_samples();
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_parallelism();
  threads = std::min(threads, count);
  if (threads > 1) {
    threads = std::min(threads, Scheduler::instance().capacity());
  }
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  Scheduler::instance().run(count, fn, threads);
}

}  // namespace hpcos
