#include "common/parallel.h"

#include <algorithm>
#include <atomic>

namespace hpcos {

std::size_t default_parallelism() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_parallelism();
  threads = std::min(threads, count);

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    // Dynamic chunking: grab modest chunks so stragglers (nodes with busy
    // noise traces) don't serialize the run.
    const std::size_t chunk = std::max<std::size_t>(1, count / (threads * 8));
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hpcos
