// Streaming and batch statistics used by the noise metrics, the FWQ
// harness, and the benchmark tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hpcos {

// Numerically stable single-pass mean/variance (Welford) plus min/max.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch percentile over an explicit sample set. Sorts a copy; use
// percentile_sorted when the data is already ordered.
double percentile(std::span<const double> samples, double p);
// p in [0, 100]; linear interpolation between closest ranks.
double percentile_sorted(std::span<const double> sorted, double p);

// Summary of a sample set, convenient for table rows.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

SampleSummary summarize(std::span<const double> samples);

// Relative standard deviation of per-run results; used for error bars in
// the application figures.
double coefficient_of_variation(std::span<const double> samples);

}  // namespace hpcos
