// Canonical config serialization and stable 64-bit config digests.
//
// Cross-run observability (the run ledger, obs/runlog) and the planned
// campaign-as-a-service memoization both need one property: two configs
// that mean the same thing must map to the same key, and any semantically
// meaningful knob change must change the key. This module supplies the
// contract (DESIGN §8):
//
//   * canonical_json() — a normal form for JsonValue documents: object
//     keys sorted bytewise at every level, no insignificant whitespace,
//     numbers in shortest round-trip form with -0 normalized to 0
//     (json_format_number), NaN/Inf rejected with an error. Member
//     insertion order therefore never affects the output bytes.
//   * config_hash64() / config_hash_hex() — FNV-1a 64-bit digest over
//     "hpcos-confighash/1\n" + canonical_json(config). The schema prefix
//     versions the canonicalization itself: if the normal form ever has
//     to change, the prefix changes with it and old hashes cannot
//     collide with new ones silently.
//
// What goes *into* the hashed document is the caller's half of the
// contract: serialize every knob that can change a simulated result
// (seeds, shard boundaries, durations, model parameters) and exclude
// pure host-execution knobs (host thread counts, observability sinks) —
// results are bit-identical across those by the determinism contract
// (DESIGN §6), so they must not fragment the key space. The config
// serializers in cluster/config_json.h follow this rule and are the
// tested reference.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace hpcos {

inline constexpr const char* kConfigHashSchema = "hpcos-confighash/1";

// Canonical normal form of `value` (see above). Throws std::runtime_error
// on non-finite numbers anywhere in the document.
std::string canonical_json(const JsonValue& value);

// FNV-1a 64-bit over `bytes`, optionally chained from a prior state.
inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ull;
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t state = kFnv1a64Offset);

// 16-character lowercase hex of a 64-bit digest.
std::string to_hex64(std::uint64_t value);

// Digest of kConfigHashSchema + '\n' + canonical_json(config).
std::uint64_t config_hash64(const JsonValue& config);
std::string config_hash_hex(const JsonValue& config);

// ------------------------------------------------------------------------
// Knob-by-knob diff over the canonical normal form.
//
// The hash answers "same experiment or not?"; the diff answers *which*
// knob made two configs different experiments. The walk follows the same
// normal form the hash digests — object keys visited in bytewise-sorted
// order, leaves compared by canonical bytes — so the two are consistent
// by construction: config_hash64(a) == config_hash64(b) if and only if
// config_diff(a, b) is empty (the tested invariant).

enum class ConfigDeltaKind : std::uint8_t {
  kChanged,  // leaf present on both sides with different canonical bytes
  kAdded,    // path present only in `current`
  kRemoved,  // path present only in `base`
};

struct ConfigDelta {
  ConfigDeltaKind kind = ConfigDeltaKind::kChanged;
  // Dotted path from the document root; array elements as "sources[2]".
  std::string path;
  std::string base;     // canonical rendering; "" for kAdded
  std::string current;  // canonical rendering; "" for kRemoved
};

// Walk both documents and report every differing leaf, in canonical
// (sorted-key, index-order) walk order. A kind mismatch (object vs
// number, say) or an array-length mismatch reports at the narrowest
// common path rather than descending further.
std::vector<ConfigDelta> config_diff(const JsonValue& base,
                                     const JsonValue& current);

}  // namespace hpcos
