// Host-side parallelism for the cluster engine.
//
// Node simulations are embarrassingly parallel and deterministic by
// construction (each node owns its RNG streams and event queue), so a static
// chunked parallel_for is all we need: results land in caller-provided,
// index-addressed storage with no cross-thread shared mutable state.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcos {

// Number of worker threads to use by default: hardware concurrency, at
// least 1.
std::size_t default_parallelism();

// Invoke fn(i) for every i in [0, count) across up to `threads` workers.
// Exceptions from workers are captured and the first one is rethrown on the
// calling thread after all workers join.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace hpcos
