// Host-side parallelism for the cluster engine.
//
// Node simulations are embarrassingly parallel and deterministic by
// construction (each node owns its RNG streams and event queue), so a
// chunked parallel_for is all we need: results land in caller-provided,
// index-addressed storage with no cross-thread shared mutable state, and
// callers merge per-slot results in rank order. Execution runs on a
// lazily initialized work-stealing scheduler: each participant owns a
// chunk deque (lock-free local pop from the bottom, randomized-victim
// steal from the top), and every parallel_for forms a task group whose
// chunks any participant may execute. Scheduling order is therefore
// nondeterministic, but each index runs exactly once and results are
// index-addressed, so outputs — and every shard-ordered merge built on
// them — are bit-identical across host thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace hpcos {

// Number of worker threads to use by default. On Linux this is the CPU
// affinity-mask population (sched_getaffinity), which respects taskset /
// cpuset / container quotas where std::thread::hardware_concurrency()
// over-reports; elsewhere it falls back to hardware_concurrency(). At
// least 1.
std::size_t default_parallelism();

// Maximum number of threads a single parallel_for can occupy: the
// scheduler's worker count plus the calling thread. The pool is sized
// once at first use from default_parallelism() (override:
// HPCOS_PARALLEL_WORKERS=<n> in the environment, clamped to [1, 256]);
// requests with threads > parallel_capacity() are honored up to this
// capacity rather than silently assuming helpers that don't exist.
std::size_t parallel_capacity();

// True while the current thread is executing chunks of a parallel_for —
// on scheduler workers and on the calling thread (which always
// participates).
bool in_parallel_region();

// Cumulative scheduler event counts since process start (monotonic,
// cheap relaxed atomics). Exposed so tests and the bench_sched
// microbenchmark can fold deltas into an obs::Registry under the
// parallel.* counter names given below.
struct ParallelStats {
  std::uint64_t wakeups = 0;         // parallel.wakeups.count
  std::uint64_t steals = 0;          // parallel.steals.count
  std::uint64_t steal_attempts = 0;  // parallel.steal_attempts.count
  std::uint64_t groups = 0;          // parallel.groups.count
  std::uint64_t nested_groups = 0;   // parallel.nested_groups.count
  std::uint64_t chunks_executed = 0; // parallel.chunks.count
};
ParallelStats parallel_stats();

// Per-slot scheduler health since process start. Slot 0 is the external
// caller slot (whichever thread holds the top-level session); slots
// 1..n are the persistent workers. Counters are single-writer relaxed
// atomics read with relaxed loads, so the vector is a near-consistent
// snapshot, not a barrier. Deque depths are sampled once per
// parallel_for at publish time (after the owner pushed its chunks), so
// depth_sum / depth_samples is "average backlog seen at dispatch" and
// max_depth the worst backlog any dispatch observed.
struct WorkerHealth {
  std::uint64_t chunks = 0;          // chunks this slot executed
  std::uint64_t pushes = 0;          // chunks this slot published
  std::uint64_t steals = 0;          // successful steals by this slot
  std::uint64_t steal_attempts = 0;  // steal probes by this slot
  std::uint64_t parks = 0;           // times this slot slept on the cv
  std::uint64_t park_ns = 0;         // total host time spent parked
  std::uint64_t depth_sum = 0;       // sum of sampled deque depths
  std::uint64_t depth_samples = 0;   // number of depth samples taken
  std::uint64_t max_depth = 0;       // max sampled deque depth
};
std::vector<WorkerHealth> parallel_worker_health();

// Instantaneous per-slot deque depths (index 0 = caller slot). Two
// relaxed loads per slot — a near-consistent snapshot for live
// diagnostics (the stall watchdog's "where is the backlog" view), never
// for control flow.
std::vector<std::size_t> parallel_deque_depths();

// Optional scheduler timeline capture (off by default). When enabled,
// park intervals and publish-time deque-depth samples are appended to
// bounded global rings (host steady-clock timestamps, ns). Recording
// stops silently once a ring is full; enabling clears both rings.
// Timeline data is host-scheduling-dependent and therefore for
// diagnosis only — never fold it into deterministic outputs.
struct ParkEvent {
  std::size_t worker = 0;  // slot index (1..n; slot 0 never parks)
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};
struct DepthSample {
  std::size_t worker = 0;  // slot index whose deque was probed
  std::int64_t t_ns = 0;
  std::size_t depth = 0;
};
void set_scheduler_timeline(bool enabled);
std::vector<ParkEvent> scheduler_park_events();
std::vector<DepthSample> scheduler_depth_samples();

// Invoke fn(i) for every i in [0, count) across up to `threads` workers
// (0 = default_parallelism(), 1 = inline serial execution; values above
// parallel_capacity() are clamped to it).
//
// Nesting: a call made from inside a running parallel_for (any depth)
// enqueues its chunks into the scheduler as a child task group instead
// of degrading to serial. The nested caller works on its own chunks and
// idle participants steal the rest, so inner loops genuinely
// parallelize; the nested call returns once its group completes.
// Top-level calls from distinct user threads still serialize against
// each other.
//
// Cancellation: once any invocation throws, a per-group stop flag halts
// the remaining dispatch at chunk granularity — participants finish the
// chunk they hold but claim no new ones — and the first exception is
// rethrown on the thread that issued that parallel_for after the group
// quiesces. Cancellation propagates downward: chunks of nested (child)
// groups under a cancelling ancestor are discarded at the same chunk
// granularity, and such a nested call may then return normally without
// having visited every index (its own group saw no exception; the
// ancestor's rethrow reports the failure). Do not rely on full coverage
// when fn can throw anywhere in the enclosing nest.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace hpcos
