// Host-side parallelism for the cluster engine.
//
// Node simulations are embarrassingly parallel and deterministic by
// construction (each node owns its RNG streams and event queue), so a
// chunked parallel_for is all we need: results land in caller-provided,
// index-addressed storage with no cross-thread shared mutable state, and
// callers merge per-slot results in rank order. Workers live in a lazily
// initialized persistent pool (std::jthread, condition-variable dispatch)
// so campaign drivers that issue many parallel_for calls don't pay a
// spawn/join per call.
#pragma once

#include <cstddef>
#include <functional>

namespace hpcos {

// Number of worker threads to use by default: hardware concurrency, at
// least 1.
std::size_t default_parallelism();

// Invoke fn(i) for every i in [0, count) across up to `threads` workers
// (0 = default_parallelism(), 1 = inline serial execution).
//
// Cancellation: once any invocation throws, a shared stop flag halts the
// remaining dispatch at chunk granularity — workers finish the chunk they
// hold but claim no new indices — and the first exception is rethrown on
// the calling thread after all workers quiesce. Indices past the failing
// chunk are therefore generally NOT visited; do not rely on full coverage
// when fn can throw.
//
// Nested calls (fn itself calling parallel_for) execute inline serially on
// the worker that reached them; concurrent top-level calls from distinct
// user threads serialize against each other.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace hpcos
