// Runtime validation helpers.
//
// Per the project's error-handling policy: programming errors and violated
// invariants throw hpcos::SimError (the substrate is a research tool, not a
// long-running service, so fail-fast with a message beats error codes).
#pragma once

#include <stdexcept>
#include <string>

namespace hpcos {

class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw SimError(std::string("HPCOS_CHECK failed: ") + expr + " at " + file +
                 ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace hpcos

// Always-on invariant check (cheap conditions only on hot paths).
#define HPCOS_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::hpcos::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                  \
  } while (false)

#define HPCOS_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::hpcos::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (false)
