// Strongly-typed simulated time.
//
// The whole substrate runs on a single discrete clock measured in integer
// nanoseconds. Using a dedicated type (rather than raw int64_t or
// std::chrono::nanoseconds) keeps instants and durations from silently mixing
// with unrelated integers, while remaining trivially copyable and cheap.
//
// SimTime is used both for instants (time since simulation start) and for
// durations; the simulation epoch is always zero so the distinction carries
// no information here and a single type keeps the arithmetic simple.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>

namespace hpcos {

class SimTime {
 public:
  constexpr SimTime() = default;

  // Named constructors; the argument is in the named unit.
  static constexpr SimTime ns(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime us(std::int64_t v) { return SimTime{v * 1'000}; }
  static constexpr SimTime ms(std::int64_t v) { return SimTime{v * 1'000'000}; }
  static constexpr SimTime sec(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  // Fractional-unit constructors (round to nearest nanosecond).
  static constexpr SimTime from_us(double v) {
    return SimTime{round_i64(v * 1e3)};
  }
  static constexpr SimTime from_ms(double v) {
    return SimTime{round_i64(v * 1e6)};
  }
  static constexpr SimTime from_sec(double v) {
    return SimTime{round_i64(v * 1e9)};
  }

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime{ns_ / k}; }
  // Scale by a real factor, rounding to the nearest nanosecond.
  constexpr SimTime scaled(double f) const {
    return SimTime{round_i64(static_cast<double>(ns_) * f)};
  }
  // Ratio of two durations (dimensionless).
  constexpr double ratio(SimTime denom) const {
    return static_cast<double>(ns_) / static_cast<double>(denom.ns_);
  }

  // Human-readable rendering with an auto-selected unit, e.g. "6.5ms".
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t v) : ns_(v) {}
  static constexpr std::int64_t round_i64(double v) {
    return static_cast<std::int64_t>(v >= 0 ? v + 0.5 : v - 0.5);
  }

  std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::ns(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::us(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::ms(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::sec(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace hpcos
