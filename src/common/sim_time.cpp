#include "common/sim_time.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace hpcos {

std::string SimTime::to_string() const {
  const double abs_ns = std::abs(static_cast<double>(ns_));
  char buf[64];
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gus", static_cast<double>(ns_) / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.4gms", static_cast<double>(ns_) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4gs", static_cast<double>(ns_) / 1e9);
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.to_string();
}

}  // namespace hpcos
