// Deterministic, splittable random number generation.
//
// Reproducibility is a hard requirement for the substrate: every experiment
// must produce identical results for identical seeds regardless of how the
// host schedules worker threads. We therefore avoid std::mt19937 shared
// streams and instead give every simulated entity (node, noise source,
// workload rank, ...) its own counter-derived stream:
//
//   RngStream rng(Seed{experiment_seed}, /*stream=*/node_id * K + source_id);
//
// The generator is xoshiro256** (public domain, Blackman & Vigna) seeded via
// splitmix64, which is the recommended seeding procedure for the xoshiro
// family and guarantees well-mixed distinct streams even for adjacent
// (seed, stream) pairs.
#pragma once

#include <array>
#include <cstdint>

#include "common/sim_time.h"

namespace hpcos {

// A root seed for an experiment. Wrapping it in a struct makes call sites
// explicit about which integer is the seed and which is the stream index.
struct Seed {
  std::uint64_t value = 0x9E3779B97F4A7C15ull;
};

class RngStream {
 public:
  RngStream() : RngStream(Seed{}, 0) {}
  RngStream(Seed seed, std::uint64_t stream);

  // Derive a child stream deterministically; used to hand sub-streams to
  // sub-entities without coordinating a global stream counter.
  RngStream split(std::uint64_t child_index) const;

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  bool bernoulli(double p);
  // Exponential with the given mean (not rate).
  double exponential(double mean);
  // Standard normal via Box-Muller (cached pair).
  double normal(double mean, double stddev);
  // Lognormal parameterized by the mean/stddev of the *underlying* normal.
  double lognormal(double mu, double sigma);
  // Poisson with the given mean; exact (Knuth) for small means, normal
  // approximation above 64 to stay O(1).
  std::uint64_t poisson(double mean);

  // Duration helpers used throughout the noise models.
  SimTime exponential_time(SimTime mean);
  SimTime uniform_time(SimTime lo, SimTime hi);
  // Normal-distributed duration clamped at a floor (durations can't go
  // negative).
  SimTime normal_time(SimTime mean, SimTime stddev,
                      SimTime floor = SimTime::zero());

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  Seed seed_{};
  std::uint64_t stream_ = 0;
};

}  // namespace hpcos
