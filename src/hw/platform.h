// Platform descriptions for the two machines of the study (Table 1).
//
// A PlatformConfig bundles everything the substrate needs to instantiate a
// node of Oakforest-PACS (Intel Xeon Phi 7250 "Knights Landing") or Fugaku
// (Fujitsu A64FX), plus the system-level attributes (node count, fabric)
// used by the cluster engine. The numbers come straight from the paper's
// Table 1 and §3/§4; microarchitectural costs that the paper does not state
// are set to representative published values and are trivially overridable.
#pragma once

#include <cstdint>
#include <string>

#include "hw/cache.h"
#include "hw/hwbarrier.h"
#include "hw/memory.h"
#include "hw/pmu.h"
#include "hw/tlb.h"
#include "hw/topology.h"

namespace hpcos::hw {

enum class InterconnectKind { kOmniPath, kTofuD };
std::string to_string(InterconnectKind k);

enum class LargePageMechanism { kThp, kHugeTlbFs };
std::string to_string(LargePageMechanism m);

// The Linux runtime settings row of Table 1, consumed by linuxk when
// configuring a node's kernel.
struct LinuxRuntimeSettings {
  std::string distribution;
  std::string kernel_version;
  bool containerized = false;       // Docker on Fugaku; none on OFP
  bool nohz_full_app_cores = true;  // both platforms
  bool cgroup_cpu_isolation = false;  // Fugaku only
  bool irq_steered_to_os_cores = false;  // Fugaku only; OFP balances IRQs
  LargePageMechanism large_pages = LargePageMechanism::kThp;
};

struct PlatformConfig {
  // NodeTopology has no default constructor, so a PlatformConfig is always
  // built around an explicit topology.
  explicit PlatformConfig(NodeTopology t) : topology(std::move(t)) {}

  std::string name;
  std::string cpu_model;
  std::string isa;

  NodeTopology topology;
  TlbParams tlb;
  CacheParams cache;
  NodeMemory memory;
  HwBarrierParams hw_barrier;
  PmuParams pmu;

  // Per-core scalar throughput used to convert "work amounts" into time;
  // the relative OS comparison never depends on its absolute value.
  double core_gflops = 1.0;

  LinuxRuntimeSettings linux_settings;

  // System level.
  std::int64_t num_compute_nodes = 0;
  double peak_pflops = 0.0;
  InterconnectKind interconnect = InterconnectKind::kOmniPath;

  // Convenience accessors for the app/system split.
  int app_core_count() const {
    return static_cast<int>(topology.application_cores().count());
  }
  int system_core_count() const {
    return static_cast<int>(topology.system_cores().count());
  }
};

// Oakforest-PACS: 8,192 KNL nodes, CentOS 7.3, moderately tuned
// (nohz_full only; no cgroup isolation, balanced IRQs, THP).
PlatformConfig make_ofp_platform();

// Fugaku: 158,976 A64FX nodes, RHEL 8.3, highly tuned (all §4
// countermeasures available). `assistant_cores` is 2 on the common 50-core
// parts and 4 on 52-core parts.
PlatformConfig make_fugaku_platform(int assistant_cores = 2);

// The in-house 16-node A64FX testbed used for Table 2 / Figure 3: identical
// node hardware and software to Fugaku, smaller system scale.
PlatformConfig make_fugaku_testbed_platform();

}  // namespace hpcos::hw
