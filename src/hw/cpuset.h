// CPU mask, modeled after the Linux kernel's cpumask_t.
//
// Used wherever the real systems use affinity masks: cgroup cpusets, IRQ
// smp_affinity, kworker binding, blk_mq_hw_ctx.cpumask, and IHK's core
// reservation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/ids.h"

namespace hpcos::hw {

class CpuSet {
 public:
  CpuSet() = default;
  explicit CpuSet(std::size_t num_cores);

  // Construct from an explicit list of core ids ("taskset -c 2,3,7" style).
  static CpuSet of(std::size_t num_cores, std::initializer_list<CoreId> ids);
  // All cores set.
  static CpuSet all(std::size_t num_cores);
  // Contiguous range [first, last] inclusive, like "0-47".
  static CpuSet range(std::size_t num_cores, CoreId first, CoreId last);

  std::size_t capacity() const { return bits_.size(); }
  bool test(CoreId id) const;
  void set(CoreId id, bool value = true);
  void clear();

  std::size_t count() const;
  bool empty() const { return count() == 0; }
  bool any() const { return !empty(); }

  // First set core, or kInvalidCore when empty.
  CoreId first() const;
  // Next set core strictly after `id`, or kInvalidCore.
  CoreId next(CoreId id) const;
  std::vector<CoreId> to_vector() const;

  CpuSet operator&(const CpuSet& o) const;
  CpuSet operator|(const CpuSet& o) const;
  // Cores in *this but not in o.
  CpuSet minus(const CpuSet& o) const;
  bool intersects(const CpuSet& o) const;
  bool contains(const CpuSet& o) const;
  bool operator==(const CpuSet& o) const = default;

  // "0-47" / "48,49" style rendering, mirroring /sys cpulist files.
  std::string to_string() const;

 private:
  std::vector<bool> bits_;
};

}  // namespace hpcos::hw
