// Last-level cache with A64FX-style sector partitioning.
//
// Fugaku partitions L2 cache blocks into a system sector and an application
// sector ("sector cache", §4.2) so that OS activity on the assistant cores
// cannot evict application working sets. The model exposes the effective
// capacity seen by each partition and a simple capacity-miss estimate used
// by the workload cost models.
#pragma once

#include <cstdint>

#include "common/sim_time.h"

namespace hpcos::hw {

struct CacheParams {
  std::uint64_t capacity_bytes = 0;
  int num_sectors = 1;        // A64FX supports sector partitioning; 1 = none
  SimTime hit_latency = SimTime::ns(10);
  SimTime miss_latency = SimTime::ns(90);
};

class SectorCache {
 public:
  explicit SectorCache(CacheParams params);

  const CacheParams& params() const { return params_; }
  bool supports_partitioning() const { return params_.num_sectors > 1; }

  // Assign `system_sectors` of the total to the OS partition. No-op (and
  // returns false) when the hardware lacks sector support.
  bool partition(int system_sectors);
  bool partitioned() const { return system_sectors_ > 0; }

  std::uint64_t application_capacity() const;
  std::uint64_t system_capacity() const;

  // Capacity miss fraction of a working set against a capacity, following
  // the standard power-law ("square root") rule of thumb for scientific
  // codes: misses ~ sqrt(1 - capacity/ws) for ws > capacity.
  static double miss_fraction(std::uint64_t working_set_bytes,
                              std::uint64_t capacity_bytes);

  // Slowdown multiplier (>=1) for a memory phase whose working set contends
  // with `interference_bytes` of foreign (OS) data. With partitioning the
  // interference term vanishes.
  double interference_slowdown(std::uint64_t app_working_set,
                               std::uint64_t interference_bytes) const;

 private:
  CacheParams params_;
  int system_sectors_ = 0;
};

}  // namespace hpcos::hw
