#include "hw/cpuset.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace hpcos::hw {

CpuSet::CpuSet(std::size_t num_cores) : bits_(num_cores, false) {}

CpuSet CpuSet::of(std::size_t num_cores, std::initializer_list<CoreId> ids) {
  CpuSet s(num_cores);
  for (CoreId id : ids) s.set(id);
  return s;
}

CpuSet CpuSet::all(std::size_t num_cores) {
  CpuSet s(num_cores);
  std::fill(s.bits_.begin(), s.bits_.end(), true);
  return s;
}

CpuSet CpuSet::range(std::size_t num_cores, CoreId first, CoreId last) {
  CpuSet s(num_cores);
  HPCOS_CHECK(first >= 0 && last >= first);
  for (CoreId id = first; id <= last; ++id) s.set(id);
  return s;
}

bool CpuSet::test(CoreId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= bits_.size()) return false;
  return bits_[static_cast<std::size_t>(id)];
}

void CpuSet::set(CoreId id, bool value) {
  HPCOS_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < bits_.size(),
                  "CpuSet::set out of range");
  bits_[static_cast<std::size_t>(id)] = value;
}

void CpuSet::clear() { std::fill(bits_.begin(), bits_.end(), false); }

std::size_t CpuSet::count() const {
  return static_cast<std::size_t>(
      std::count(bits_.begin(), bits_.end(), true));
}

CoreId CpuSet::first() const { return next(-1); }

CoreId CpuSet::next(CoreId id) const {
  for (std::size_t i = static_cast<std::size_t>(id + 1); i < bits_.size();
       ++i) {
    if (bits_[i]) return static_cast<CoreId>(i);
  }
  return kInvalidCore;
}

std::vector<CoreId> CpuSet::to_vector() const {
  std::vector<CoreId> out;
  for (CoreId id = first(); id != kInvalidCore; id = next(id)) {
    out.push_back(id);
  }
  return out;
}

CpuSet CpuSet::operator&(const CpuSet& o) const {
  CpuSet r(std::max(bits_.size(), o.bits_.size()));
  for (std::size_t i = 0; i < r.bits_.size(); ++i) {
    r.bits_[i] = (i < bits_.size() && bits_[i]) &&
                 (i < o.bits_.size() && o.bits_[i]);
  }
  return r;
}

CpuSet CpuSet::operator|(const CpuSet& o) const {
  CpuSet r(std::max(bits_.size(), o.bits_.size()));
  for (std::size_t i = 0; i < r.bits_.size(); ++i) {
    r.bits_[i] = (i < bits_.size() && bits_[i]) ||
                 (i < o.bits_.size() && o.bits_[i]);
  }
  return r;
}

CpuSet CpuSet::minus(const CpuSet& o) const {
  CpuSet r = *this;
  for (std::size_t i = 0; i < r.bits_.size(); ++i) {
    if (i < o.bits_.size() && o.bits_[i]) r.bits_[i] = false;
  }
  return r;
}

bool CpuSet::intersects(const CpuSet& o) const {
  const std::size_t n = std::min(bits_.size(), o.bits_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (bits_[i] && o.bits_[i]) return true;
  }
  return false;
}

bool CpuSet::contains(const CpuSet& o) const {
  for (std::size_t i = 0; i < o.bits_.size(); ++i) {
    if (o.bits_[i] && !(i < bits_.size() && bits_[i])) return false;
  }
  return true;
}

std::string CpuSet::to_string() const {
  std::ostringstream oss;
  bool first_range = true;
  CoreId id = first();
  while (id != kInvalidCore) {
    CoreId end = id;
    while (next(end) == end + 1) ++end;
    if (!first_range) oss << ",";
    if (end == id) {
      oss << id;
    } else {
      oss << id << "-" << end;
    }
    first_range = false;
    id = next(end);
  }
  return oss.str();
}

}  // namespace hpcos::hw
