#include "hw/tlb.h"

#include <algorithm>

#include "common/check.h"

namespace hpcos::hw {

std::string to_string(PageSize p) {
  switch (p) {
    case PageSize::k4K:
      return "4K";
    case PageSize::k64K:
      return "64K";
    case PageSize::k2M:
      return "2M";
    case PageSize::k512M:
      return "512M";
  }
  return "?";
}

TlbModel::TlbModel(TlbParams params) : params_(params) {
  HPCOS_CHECK(params_.l2_entries > 0);
}

std::uint64_t TlbModel::reach_bytes(PageSize page) const {
  return static_cast<std::uint64_t>(params_.l2_entries) * bytes(page);
}

double TlbModel::miss_fraction(std::uint64_t working_set_bytes,
                               PageSize page) const {
  const std::uint64_t reach = reach_bytes(page);
  if (working_set_bytes <= reach) return 0.0;
  // Under a uniform access stream with LRU, accesses to the covered portion
  // hit and the remainder misses with probability ~1 (capacity misses).
  const double uncovered = static_cast<double>(working_set_bytes - reach) /
                           static_cast<double>(working_set_bytes);
  return std::clamp(uncovered, 0.0, 1.0);
}

double TlbModel::access_slowdown(std::uint64_t working_set_bytes,
                                 PageSize page) const {
  const double miss = miss_fraction(working_set_bytes, page);
  const double hit_ns = static_cast<double>(params_.hit_access.count_ns());
  const double walk_ns = static_cast<double>(params_.walk_cost.count_ns());
  return 1.0 + miss * walk_ns / hit_ns;
}

SimTime TlbModel::broadcast_stall(std::uint64_t flushes) const {
  if (!params_.has_broadcast_tlbi) return SimTime::zero();
  return params_.broadcast_stall_per_flush *
         static_cast<std::int64_t>(flushes);
}

SimTime TlbModel::local_flush(std::uint64_t flushes) const {
  return params_.local_flush_cost * static_cast<std::int64_t>(flushes);
}

}  // namespace hpcos::hw
