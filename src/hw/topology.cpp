#include "hw/topology.h"

#include <numeric>

#include "common/check.h"

namespace hpcos::hw {

NodeTopology::NodeTopology(std::string name, int physical_cores, int smt_ways)
    : name_(std::move(name)),
      physical_cores_(physical_cores),
      smt_ways_(smt_ways),
      system_cores_(static_cast<std::size_t>(physical_cores * smt_ways)),
      application_cores_(
          static_cast<std::size_t>(physical_cores * smt_ways)) {
  HPCOS_CHECK(physical_cores > 0);
  HPCOS_CHECK(smt_ways >= 1);
}

CpuSet NodeTopology::smt_siblings(CoreId logical) const {
  HPCOS_CHECK(logical >= 0 && logical < logical_cores());
  // Logical CPU numbering follows the Linux convention on both platforms:
  // thread t of physical core p is logical id p + t * physical_cores. (KNL
  // exposes its 4 hyperthreads this way: cpu 0, 68, 136, 204 share a core.)
  CpuSet s(static_cast<std::size_t>(logical_cores()));
  const CoreId phys = physical_of(logical);
  for (int t = 0; t < smt_ways_; ++t) {
    s.set(phys + t * physical_cores_);
  }
  return s;
}

CoreId NodeTopology::physical_of(CoreId logical) const {
  HPCOS_CHECK(logical >= 0 && logical < logical_cores());
  return logical % physical_cores_;
}

void NodeTopology::add_numa_domain(NumaDomain domain) {
  HPCOS_CHECK_MSG(domain.cores.capacity() ==
                      static_cast<std::size_t>(logical_cores()),
                  "NUMA domain mask sized for a different topology");
  numa_.push_back(std::move(domain));
}

NumaId NodeTopology::numa_of(CoreId logical) const {
  for (const auto& d : numa_) {
    if (d.cores.test(logical)) return d.id;
  }
  return kInvalidNuma;
}

std::uint64_t NodeTopology::total_memory_bytes() const {
  return std::accumulate(numa_.begin(), numa_.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const NumaDomain& d) {
                           return acc + d.memory_bytes;
                         });
}

void NodeTopology::set_core_partition(CpuSet system_cores,
                                      CpuSet application_cores) {
  HPCOS_CHECK_MSG(!system_cores.intersects(application_cores),
                  "system and application core sets overlap");
  system_cores_ = std::move(system_cores);
  application_cores_ = std::move(application_cores);
}

}  // namespace hpcos::hw
