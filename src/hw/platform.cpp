#include "hw/platform.h"

#include "common/check.h"

namespace hpcos::hw {

std::string to_string(InterconnectKind k) {
  switch (k) {
    case InterconnectKind::kOmniPath:
      return "Intel OmniPath";
    case InterconnectKind::kTofuD:
      return "Fujitsu TofuD";
  }
  return "?";
}

std::string to_string(LargePageMechanism m) {
  switch (m) {
    case LargePageMechanism::kThp:
      return "THP";
    case LargePageMechanism::kHugeTlbFs:
      return "HugeTLBfs";
  }
  return "?";
}

PlatformConfig make_ofp_platform() {
  // 68 physical cores, 4-way SMT -> 272 logical CPUs.
  PlatformConfig p(NodeTopology("KNL", 68, 4));
  p.name = "Oakforest-PACS";
  p.cpu_model = "Intel Xeon Phi 7250 Knights Landing (KNL)";
  p.isa = "x86_64";

  // Quadrant-flat mode: all cores on the DDR4 NUMA domain (node 0), MCDRAM
  // exposed as a CPU-less NUMA domain (node 1).
  const auto logical = static_cast<std::size_t>(p.topology.logical_cores());
  p.topology.add_numa_domain(NumaDomain{
      .id = 0,
      .cores = CpuSet::all(logical),
      .memory_bytes = 96_GiB,
  });
  p.topology.add_numa_domain(NumaDomain{
      .id = 1,
      .cores = CpuSet(logical),
      .memory_bytes = 16_GiB,
  });

  // The designated system CPUs on OFP are the 4 hyperthreads of physical
  // cores 0-3 (the appendix excludes 0-3,68-71,136-139,204-207 from MPI
  // pinning); the remaining 256 logical CPUs are the application set.
  CpuSet system_cpus(logical);
  for (int t = 0; t < 4; ++t) {
    for (int c = 0; c < 4; ++c) system_cpus.set(c + t * 68);
  }
  p.topology.set_core_partition(system_cpus,
                                CpuSet::all(logical).minus(system_cpus));

  p.tlb = TlbParams{
      .l1_entries = 64,
      .l2_entries = 64,
      .walk_cost = SimTime::ns(250),   // KNL's walker is slow
      .hit_access = SimTime::ns(150),  // DDR4-class latency on KNL
      .has_broadcast_tlbi = false,     // x86: IPI shootdown only
      .broadcast_stall_per_flush = SimTime::zero(),
      .ipi_shootdown_per_core = SimTime::us(3),
      .local_flush_cost = SimTime::ns(40),
  };

  p.cache = CacheParams{
      .capacity_bytes = 34_MiB,  // 1 MiB L2 per 2-core tile x 34 tiles
      .num_sectors = 1,          // no partitioning support
      .hit_latency = SimTime::ns(20),
      .miss_latency = SimTime::ns(150),
  };

  p.memory.add_region(MemoryRegion{
      .numa = 0,
      .params = {.kind = MemoryKind::kDdr4,
                 .capacity_bytes = 96_GiB,
                 .bandwidth_bytes_per_sec = 90ull * 1000 * 1000 * 1000,
                 .latency = SimTime::ns(150)}});
  p.memory.add_region(MemoryRegion{
      .numa = 1,
      .params = {.kind = MemoryKind::kMcdram,
                 .capacity_bytes = 16_GiB,
                 .bandwidth_bytes_per_sec = 480ull * 1000 * 1000 * 1000,
                 .latency = SimTime::ns(170)}});

  p.hw_barrier = HwBarrierParams{.available = false,
                                 .hw_latency = SimTime::zero(),
                                 .sw_per_level = SimTime::ns(150)};
  p.pmu = PmuParams{};
  p.core_gflops = 3.0;  // sustained per-core estimate; relative results only

  p.linux_settings = LinuxRuntimeSettings{
      .distribution = "CentOS 7.3",
      .kernel_version = "3.10.0-693.11.6",
      .containerized = false,
      .nohz_full_app_cores = true,
      .cgroup_cpu_isolation = false,
      .irq_steered_to_os_cores = false,
      .large_pages = LargePageMechanism::kThp,
  };

  p.num_compute_nodes = 8192;
  p.peak_pflops = 25.0;
  p.interconnect = InterconnectKind::kOmniPath;
  return p;
}

namespace {

PlatformConfig make_a64fx_node(int assistant_cores) {
  HPCOS_CHECK(assistant_cores == 2 || assistant_cores == 4);
  const int total_cores = 48 + assistant_cores;
  PlatformConfig p(NodeTopology("A64FX", total_cores, /*smt_ways=*/1));
  p.name = "Fugaku";
  p.cpu_model = "Fujitsu A64FX";
  p.isa = "aarch64";
  const auto logical = static_cast<std::size_t>(total_cores);

  // Assistant cores are the low core ids; the 48 application cores are
  // organized as 4 CMGs of 12 cores. Each CMG has an 8 GiB HBM2 slice;
  // virtual NUMA additionally carves a system slice out of the first CMG's
  // memory (modeled as a fifth, system-flagged domain).
  const std::uint64_t cmg_mem = 8_GiB;
  const std::uint64_t system_mem = 2_GiB;
  for (int cmg = 0; cmg < 4; ++cmg) {
    const CoreId first = assistant_cores + cmg * 12;
    NumaDomain d{
        .id = cmg,
        .cores = CpuSet::range(logical, first, first + 11),
        .memory_bytes = cmg == 0 ? cmg_mem - system_mem : cmg_mem,
    };
    p.topology.add_numa_domain(std::move(d));
  }
  p.topology.add_numa_domain(NumaDomain{
      .id = 4,
      .cores = CpuSet::range(logical, 0, assistant_cores - 1),
      .memory_bytes = system_mem,
      .is_system_domain = true,
  });

  p.topology.set_core_partition(
      CpuSet::range(logical, 0, assistant_cores - 1),
      CpuSet::range(logical, assistant_cores, total_cores - 1));

  p.tlb = TlbParams{
      .l1_entries = 16,
      .l2_entries = 1024,
      .walk_cost = SimTime::ns(170),
      .hit_access = SimTime::ns(120),  // HBM2 latency
      .has_broadcast_tlbi = true,
      // §4.2.2: "a delay of about 200 ns is generated by a single TLB flush
      // instruction" on other cores.
      .broadcast_stall_per_flush = SimTime::ns(200),
      .ipi_shootdown_per_core = SimTime::us(2),
      .local_flush_cost = SimTime::ns(25),
  };

  p.cache = CacheParams{
      .capacity_bytes = 32_MiB,  // 8 MiB L2 per CMG x 4
      .num_sectors = 4,          // A64FX sector cache
      .hit_latency = SimTime::ns(12),
      .miss_latency = SimTime::ns(120),
  };

  for (int cmg = 0; cmg < 4; ++cmg) {
    p.memory.add_region(MemoryRegion{
        .numa = cmg,
        .params = {.kind = MemoryKind::kHbm2,
                   .capacity_bytes = cmg_mem,
                   .bandwidth_bytes_per_sec = 256ull * 1000 * 1000 * 1000,
                   .latency = SimTime::ns(120)}});
  }

  p.hw_barrier = HwBarrierParams{.available = true,
                                 .hw_latency = SimTime::ns(200),
                                 .sw_per_level = SimTime::ns(120)};
  p.pmu = PmuParams{};
  p.core_gflops = 20.0;  // sustained SVE-512 per-core estimate

  p.linux_settings = LinuxRuntimeSettings{
      .distribution = "RedHat Enterprise Linux 8.3",
      .kernel_version = "4.18.0-240.8.1.el8_3",
      .containerized = true,
      .nohz_full_app_cores = true,
      .cgroup_cpu_isolation = true,
      .irq_steered_to_os_cores = true,
      .large_pages = LargePageMechanism::kHugeTlbFs,
  };

  p.num_compute_nodes = 158976;
  p.peak_pflops = 488.0;
  p.interconnect = InterconnectKind::kTofuD;
  return p;
}

}  // namespace

PlatformConfig make_fugaku_platform(int assistant_cores) {
  return make_a64fx_node(assistant_cores);
}

PlatformConfig make_fugaku_testbed_platform() {
  PlatformConfig p = make_a64fx_node(/*assistant_cores=*/2);
  p.name = "A64FX-testbed";
  p.num_compute_nodes = 16;
  p.peak_pflops = 488.0 * 16.0 / 158976.0;
  return p;
}

}  // namespace hpcos::hw
