// Node topology: logical cores, SMT grouping, NUMA domains, and the
// system/application core split the paper's platforms use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cpuset.h"
#include "hw/ids.h"

namespace hpcos::hw {

struct NumaDomain {
  NumaId id = kInvalidNuma;
  CpuSet cores;                       // logical CPUs in this domain
  std::uint64_t memory_bytes = 0;     // capacity attached to the domain
  bool is_system_domain = false;      // true for Fugaku virtual NUMA system
                                      // slices (see DESIGN.md §2.5)
};

class NodeTopology {
 public:
  NodeTopology(std::string name, int physical_cores, int smt_ways);

  const std::string& name() const { return name_; }
  int physical_cores() const { return physical_cores_; }
  int smt_ways() const { return smt_ways_; }
  int logical_cores() const { return physical_cores_ * smt_ways_; }

  // Logical CPUs of one physical core (SMT siblings).
  CpuSet smt_siblings(CoreId logical) const;
  CoreId physical_of(CoreId logical) const;

  void add_numa_domain(NumaDomain domain);
  const std::vector<NumaDomain>& numa_domains() const { return numa_; }
  NumaId numa_of(CoreId logical) const;
  std::uint64_t total_memory_bytes() const;

  // The system/application split. On Fugaku: 2-4 assistant cores vs 48
  // application cores. On OFP: 16 logical "designated" system CPUs vs 256
  // encouraged application CPUs (the whole chip remains usable).
  void set_core_partition(CpuSet system_cores, CpuSet application_cores);
  const CpuSet& system_cores() const { return system_cores_; }
  const CpuSet& application_cores() const { return application_cores_; }

  CpuSet all_cores() const {
    return CpuSet::all(static_cast<std::size_t>(logical_cores()));
  }

 private:
  std::string name_;
  int physical_cores_;
  int smt_ways_;
  std::vector<NumaDomain> numa_;
  CpuSet system_cores_;
  CpuSet application_cores_;
};

}  // namespace hpcos::hw
