// Physical memory technologies and per-node memory layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "hw/ids.h"

namespace hpcos::hw {

enum class MemoryKind { kDdr4, kMcdram, kHbm2 };
std::string to_string(MemoryKind k);

struct MemoryParams {
  MemoryKind kind = MemoryKind::kDdr4;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t bandwidth_bytes_per_sec = 0;
  SimTime latency = SimTime::ns(90);
};

// One physically-addressable memory region, attached to a NUMA domain
// (Quadrant-flat KNL exposes MCDRAM and DDR4 as distinct NUMA domains;
// A64FX exposes one HBM2 slice per CMG).
struct MemoryRegion {
  NumaId numa = kInvalidNuma;
  MemoryParams params;
};

class NodeMemory {
 public:
  void add_region(MemoryRegion region);
  const std::vector<MemoryRegion>& regions() const { return regions_; }

  std::uint64_t total_capacity() const;
  std::uint64_t capacity_of(MemoryKind kind) const;
  // Aggregate stream bandwidth across regions of this kind.
  std::uint64_t bandwidth_of(MemoryKind kind) const;

  // Time to stream `bytes` from the given memory kind at full bandwidth.
  SimTime stream_time(MemoryKind kind, std::uint64_t bytes) const;

 private:
  std::vector<MemoryRegion> regions_;
};

inline constexpr std::uint64_t operator""_KiB(unsigned long long v) {
  return v * 1024ull;
}
inline constexpr std::uint64_t operator""_MiB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}
inline constexpr std::uint64_t operator""_GiB(unsigned long long v) {
  return v * 1024ull * 1024ull * 1024ull;
}

}  // namespace hpcos::hw
