// Translation Lookaside Buffer model.
//
// The paper's Table 1 calls out the TLB geometry as the key architectural
// difference between the two platforms (KNL: 64 L2 entries; A64FX: 1,024),
// and §4.2.2 measures the A64FX broadcast-TLBI penalty at ~200 ns per flush
// instruction on *other* cores. This model carries exactly those quantities:
// address-translation slowdown as a function of working set and page size,
// and the cost of the two remote-invalidation mechanisms (ARM64 inner-
// sharable broadcast vs x86-style IPI shootdown).
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace hpcos::hw {

// Page sizes that appear in the study. Values are bytes.
enum class PageSize : std::uint64_t {
  k4K = 4ull * 1024,            // x86 base page
  k64K = 64ull * 1024,          // RHEL aarch64 base page
  k2M = 2ull * 1024 * 1024,     // THP (x86) / contiguous-bit group (aarch64)
  k512M = 512ull * 1024 * 1024  // aarch64 regular huge page at 64K base
};

constexpr std::uint64_t bytes(PageSize p) {
  return static_cast<std::uint64_t>(p);
}
std::string to_string(PageSize p);

struct TlbParams {
  int l1_entries = 0;
  int l2_entries = 0;
  // Average cost of a hardware page-table walk on a last-level TLB miss.
  SimTime walk_cost = SimTime::ns(200);
  // Average DRAM/HBM access latency for a TLB hit; used to turn miss rates
  // into slowdown factors for memory-bound phases.
  SimTime hit_access = SimTime::ns(90);
  // True when the ISA offers a broadcast invalidate (ARM64 TLBI IS); x86
  // must interrupt every core instead.
  bool has_broadcast_tlbi = false;
  // Observed stall suffered by EVERY OTHER core per broadcast TLBI
  // instruction (~200 ns on A64FX per §4.2.2).
  SimTime broadcast_stall_per_flush = SimTime::ns(0);
  // Cost of the IPI-and-local-flush software path, per interrupted core.
  SimTime ipi_shootdown_per_core = SimTime::us(2);
  // Cost of one local (non-broadcast) TLBI executed by the initiator.
  SimTime local_flush_cost = SimTime::ns(20);
};

class TlbModel {
 public:
  explicit TlbModel(TlbParams params);

  const TlbParams& params() const { return params_; }

  // Bytes of address space covered by the last-level TLB at this page size.
  std::uint64_t reach_bytes(PageSize page) const;

  // Fraction of memory accesses that miss the TLB for a working set of the
  // given size with accesses spread uniformly across it. Zero when the
  // reach covers the working set; otherwise proportional to the uncovered
  // fraction (LRU over a uniform stream keeps the hot `reach` resident).
  double miss_fraction(std::uint64_t working_set_bytes, PageSize page) const;

  // Multiplier (>= 1.0) on the time of a memory-bound phase caused by
  // translation overhead.
  double access_slowdown(std::uint64_t working_set_bytes, PageSize page) const;

  // Stall injected into each *other* running core by `flushes` consecutive
  // broadcast TLBI instructions. Zero if the ISA lacks broadcast TLBI.
  SimTime broadcast_stall(std::uint64_t flushes) const;

  // Total initiator-side cost of flushing locally `flushes` times.
  SimTime local_flush(std::uint64_t flushes) const;

  // Per-victim cost of an IPI-based shootdown round (x86 path, or the
  // hypothetical ARM64 software path §4.2.2 dismisses as slower).
  SimTime ipi_shootdown_per_core() const {
    return params_.ipi_shootdown_per_core;
  }

 private:
  TlbParams params_;
};

}  // namespace hpcos::hw
