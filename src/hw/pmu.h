// Performance Monitoring Unit model.
//
// Two roles in the study: (1) the user/kernel instruction+cycle counters the
// paper uses to attribute noise to software vs hardware causes (§4.2.2);
// (2) the TCS job-manager's periodic PMU collection, which read counters on
// ALL cores via IPIs and was itself a noise source until a per-job opt-out
// was added (§4.2.1).
#pragma once

#include <array>
#include <cstdint>

#include "common/sim_time.h"

namespace hpcos::hw {

enum class PmuEvent : int {
  kCycles = 0,
  kInstructionsUser,
  kInstructionsKernel,
  kFlops,
  kMemReads,
  kMemWrites,
  kSleepCycles,
  kCount
};

struct PmuCounters {
  std::array<std::uint64_t, static_cast<int>(PmuEvent::kCount)> values{};

  std::uint64_t get(PmuEvent e) const {
    return values[static_cast<int>(e)];
  }
  void add(PmuEvent e, std::uint64_t delta) {
    values[static_cast<int>(e)] += delta;
  }
  PmuCounters delta_since(const PmuCounters& earlier) const;
};

struct PmuParams {
  // Local counter read (mrs / rdpmc path).
  SimTime local_read_cost = SimTime::ns(100);
  // Cost borne by an interrupted core when its counters are read remotely
  // through an IPI (what TCS's collector imposed on application cores).
  SimTime remote_read_interrupt_cost = SimTime::us(25);
};

}  // namespace hpcos::hw
