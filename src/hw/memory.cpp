#include "hw/memory.h"

#include "common/check.h"

namespace hpcos::hw {

std::string to_string(MemoryKind k) {
  switch (k) {
    case MemoryKind::kDdr4:
      return "DDR4";
    case MemoryKind::kMcdram:
      return "MCDRAM";
    case MemoryKind::kHbm2:
      return "HBM2";
  }
  return "?";
}

void NodeMemory::add_region(MemoryRegion region) {
  HPCOS_CHECK(region.params.capacity_bytes > 0);
  regions_.push_back(region);
}

std::uint64_t NodeMemory::total_capacity() const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) total += r.params.capacity_bytes;
  return total;
}

std::uint64_t NodeMemory::capacity_of(MemoryKind kind) const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) {
    if (r.params.kind == kind) total += r.params.capacity_bytes;
  }
  return total;
}

std::uint64_t NodeMemory::bandwidth_of(MemoryKind kind) const {
  std::uint64_t total = 0;
  for (const auto& r : regions_) {
    if (r.params.kind == kind) total += r.params.bandwidth_bytes_per_sec;
  }
  return total;
}

SimTime NodeMemory::stream_time(MemoryKind kind, std::uint64_t bytes) const {
  const std::uint64_t bw = bandwidth_of(kind);
  HPCOS_CHECK_MSG(bw > 0, "no memory of requested kind");
  const double secs =
      static_cast<double>(bytes) / static_cast<double>(bw);
  return SimTime::from_sec(secs);
}

}  // namespace hpcos::hw
