// A64FX hardware barrier device (§4.1.5).
//
// The A64FX provides an intra-node hardware synchronization unit used by
// Fugaku's OpenMP runtime; platforms without it fall back to a software
// tree barrier over cache lines. The cost model is what the workload
// simulations consume: time for T threads to synchronize once.
#pragma once

#include "common/sim_time.h"

namespace hpcos::hw {

struct HwBarrierParams {
  bool available = false;
  // Latency of one hardware-assisted barrier, independent of thread count
  // within a barrier blade (CMG).
  SimTime hw_latency = SimTime::ns(200);
  // Per-level cost of the software fallback (one cache-line round trip per
  // tree level).
  SimTime sw_per_level = SimTime::ns(120);
};

class HwBarrier {
 public:
  explicit HwBarrier(HwBarrierParams params) : params_(params) {}

  const HwBarrierParams& params() const { return params_; }
  bool available() const { return params_.available; }

  // Cost for `threads` threads to pass one barrier. `use_hardware` is
  // honored only when the device exists (the runtime integration on Fugaku
  // uses it by default; McKernel and Linux both expose it).
  SimTime barrier_cost(int threads, bool use_hardware = true) const;

 private:
  HwBarrierParams params_;
};

}  // namespace hpcos::hw
