// Identifier types shared across the hardware and kernel models.
#pragma once

#include <cstdint>

namespace hpcos::hw {

// Logical CPU index within one node (SMT threads count individually, as the
// OS sees them: 0..271 on a KNL node, 0..49/51 on an A64FX node).
using CoreId = std::int32_t;
inline constexpr CoreId kInvalidCore = -1;

// NUMA domain index within one node.
using NumaId = std::int32_t;
inline constexpr NumaId kInvalidNuma = -1;

// Compute node index within a cluster.
using NodeId = std::int64_t;

}  // namespace hpcos::hw
