#include "hw/cache.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpcos::hw {

SectorCache::SectorCache(CacheParams params) : params_(params) {
  HPCOS_CHECK(params_.capacity_bytes > 0);
  HPCOS_CHECK(params_.num_sectors >= 1);
}

bool SectorCache::partition(int system_sectors) {
  if (!supports_partitioning()) return false;
  HPCOS_CHECK(system_sectors >= 0 && system_sectors < params_.num_sectors);
  system_sectors_ = system_sectors;
  return true;
}

std::uint64_t SectorCache::application_capacity() const {
  const int app_sectors = params_.num_sectors - system_sectors_;
  return params_.capacity_bytes *
         static_cast<std::uint64_t>(app_sectors) /
         static_cast<std::uint64_t>(params_.num_sectors);
}

std::uint64_t SectorCache::system_capacity() const {
  return params_.capacity_bytes - application_capacity();
}

double SectorCache::miss_fraction(std::uint64_t working_set_bytes,
                                  std::uint64_t capacity_bytes) {
  if (capacity_bytes == 0) return 1.0;
  if (working_set_bytes <= capacity_bytes) return 0.0;
  const double ratio = static_cast<double>(capacity_bytes) /
                       static_cast<double>(working_set_bytes);
  return std::sqrt(1.0 - ratio);
}

double SectorCache::interference_slowdown(
    std::uint64_t app_working_set, std::uint64_t interference_bytes) const {
  const std::uint64_t app_cap = application_capacity();
  // With partitioning, OS data lives in its own sectors and cannot displace
  // application lines.
  const std::uint64_t effective_interference =
      partitioned() ? 0 : interference_bytes;
  const double baseline = miss_fraction(app_working_set, app_cap);
  const double contended = miss_fraction(
      app_working_set + effective_interference, app_cap);
  const double extra_miss = std::max(0.0, contended - baseline);
  const double hit_ns = static_cast<double>(params_.hit_latency.count_ns());
  const double miss_ns = static_cast<double>(params_.miss_latency.count_ns());
  return 1.0 + extra_miss * (miss_ns - hit_ns) / miss_ns;
}

}  // namespace hpcos::hw
