#include "hw/pmu.h"

namespace hpcos::hw {

PmuCounters PmuCounters::delta_since(const PmuCounters& earlier) const {
  PmuCounters d;
  for (std::size_t i = 0; i < values.size(); ++i) {
    d.values[i] = values[i] - earlier.values[i];
  }
  return d;
}

}  // namespace hpcos::hw
