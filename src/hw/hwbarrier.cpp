#include "hw/hwbarrier.h"

#include <bit>
#include <cstdint>

namespace hpcos::hw {

SimTime HwBarrier::barrier_cost(int threads, bool use_hardware) const {
  if (threads <= 1) return SimTime::zero();
  if (params_.available && use_hardware) return params_.hw_latency;
  // Software tree barrier: ceil(log2(threads)) levels of line ping-pong.
  const auto levels = static_cast<std::int64_t>(
      std::bit_width(static_cast<std::uint32_t>(threads - 1)));
  return params_.sw_per_level * levels;
}

}  // namespace hpcos::hw
