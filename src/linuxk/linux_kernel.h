// The simulated Linux kernel.
//
// Assembles the full-weight-kernel behaviours the paper tunes and measures:
// CFS scheduling with timer ticks and nohz_full, background activity
// (daemons, kworkers, blk-mq, PMU collection, sar), cgroup-based CPU and
// memory isolation, virtual NUMA nodes, THP / hugeTLBfs large-page backing
// with the surplus-page cgroup charge hook, and the three remote-TLB
// invalidation strategies of §4.2.2.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "noise/background.h"
#include "obs/registry.h"
#include "linuxk/cfs_scheduler.h"
#include "linuxk/cgroup.h"
#include "linuxk/config.h"
#include "linuxk/hugetlbfs.h"
#include "linuxk/vnuma.h"
#include "oskernel/kernel.h"
#include "oskernel/stall_bus.h"

namespace hpcos::linuxk {

class LinuxKernel final : public os::NodeKernel {
 public:
  LinuxKernel(sim::Simulator& simulator, const hw::NodeTopology& topology,
              hw::CpuSet owned_cores, LinuxConfig config, Seed seed,
              sim::TraceBuffer* trace = nullptr,
              os::ChipStallBus* stall_bus = nullptr);

  std::string name() const override { return "linux"; }

  // Start timer ticks and the background-activity generators. Must be
  // called before threads are expected to experience OS noise.
  void boot();
  bool booted() const { return booted_; }

  const LinuxConfig& config() const { return config_; }
  CgroupManager& cgroups() { return cgroups_; }
  HugeTlbFs& hugetlbfs() { return hugetlbfs_; }
  VirtualNuma& vnuma() { return vnuma_; }

  // ---- memory services used by workload models ----

  // Page size policy for a new mapping of `length` by `proc` (§4.1.3):
  // hugeTLBfs page when configured and requested, THP promotion when the
  // region is large enough, else the base page size.
  hw::PageSize select_page_size(const os::Process& proc,
                                std::uint64_t length,
                                bool prefer_large) const;

  // First-touch [addr, addr+length) of pid's address space; returns the
  // kernel time consumed by the resulting page faults (vNUMA fragmentation
  // inflates it). Zero for resident ranges.
  SimTime touch_memory(os::Pid pid, std::uint64_t addr, std::uint64_t length);

  // Remote-TLB invalidation for `flushes` page invalidations by `proc`
  // initiated from `initiator`. Returns the initiator-side cost; victim
  // cores are stalled/interrupted as a side effect per the flush mode.
  // When tracing, records a "tlb:shootdown" span tree (local flush plus
  // victim-stall or IPI children), parented under `parent_span` if nonzero.
  SimTime tlb_shootdown(const os::Process& proc, hw::CoreId initiator,
                        std::uint64_t flushes, std::uint64_t parent_span = 0);

  // POSIX signal delivery (kill): wakes blocked targets with EINTR,
  // interrupts running ones (signal-frame setup on their core).
  void send_signal(os::ThreadId target);

  // Statistics for tests/benches.
  std::uint64_t total_page_faults() const { return page_faults_; }
  std::uint64_t total_tlb_shootdowns() const { return shootdowns_; }

  // Register the Linux side's counters (linux.syscalls, linux.page_faults,
  // linux.tlb.shootdowns, linux.tlb.shootdown_ipis, linux.ticks). nullptr
  // detaches.
  void set_registry(obs::Registry* registry);

 protected:
  os::Scheduler& sched() override { return cfs_; }
  SyscallDisposition handle_syscall(os::Thread& thread,
                                    const os::SyscallRequest& req) override;
  void on_thread_exit(os::Thread& thread) override;
  void on_core_activated(hw::CoreId core) override;
  void on_thread_enqueued(hw::CoreId core) override;

 private:
  struct TickState {
    bool armed = false;
    bool full = false;  // full tick vs 1 Hz residual (nohz_full)
    sim::EventId event;
  };
  void arm_tick(hw::CoreId core);
  void tick_fired(hw::CoreId core);
  // Upgrade a residual-mode tick to full cadence (a second task became
  // runnable on a nohz_full core).
  void ensure_full_tick(hw::CoreId core);

  SyscallDisposition do_mmap(os::Thread& thread, const os::SyscallArgs& args);
  SyscallDisposition do_munmap(os::Thread& thread,
                               const os::SyscallArgs& args);

  // Record a "fault:<kind>" span with populate / vnuma-remote children for
  // a batch of `faults` page faults. Returns the root span id (0 when
  // tracing is off or the batch is empty).
  std::uint64_t record_fault_spans(hw::CoreId core, os::FaultKind kind,
                                   std::uint64_t faults, SimTime base_cost,
                                   SimTime vnuma_extra,
                                   std::uint64_t parent = 0);

  LinuxConfig config_;
  CfsScheduler cfs_;
  CgroupManager cgroups_;
  HugeTlbFs hugetlbfs_;
  VirtualNuma vnuma_;
  hw::TlbModel tlb_model_;
  os::ChipStallBus* stall_bus_;
  std::unique_ptr<noise::BackgroundActivity> background_;
  RngStream rng_;
  std::vector<TickState> ticks_;
  bool booted_ = false;

  // hugeTLBfs backing per mapping, keyed by (pid, start address), so
  // munmap can return pages to the pool and uncharge the cgroup.
  std::map<std::pair<os::Pid, std::uint64_t>, HugeTlbFs::AllocResult>
      hugetlb_backing_;

  std::uint64_t page_faults_ = 0;
  std::uint64_t shootdowns_ = 0;

  obs::Counter* syscall_counter_ = nullptr;
  obs::Counter* fault_counter_ = nullptr;
  obs::Counter* shootdown_counter_ = nullptr;
  obs::Counter* shootdown_ipi_counter_ = nullptr;
  obs::Counter* tick_counter_ = nullptr;
};

}  // namespace hpcos::linuxk
