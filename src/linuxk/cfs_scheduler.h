// CFS-style fair scheduler model.
//
// Captures the behaviours the study depends on rather than the full CFS
// implementation: per-core runqueues ordered by virtual runtime, sleeper
// credit on wakeup (which is what lets a daemon preempt a long-running
// application thread), wake-up preemption, tick-driven rescheduling with a
// granularity, and nohz_full semantics (the tick is only needed on a
// nohz_full core while more than one task is runnable).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "hw/cpuset.h"
#include "oskernel/scheduler.h"

namespace hpcos::linuxk {

struct CfsParams {
  SimTime granularity = SimTime::ms(3);     // wakeup/resched granularity
  SimTime sleeper_credit = SimTime::ms(10); // vruntime credit on wakeup
};

class CfsScheduler final : public os::Scheduler {
 public:
  CfsScheduler(std::size_t num_cores, hw::CpuSet owned_cores,
               hw::CpuSet nohz_full_cores, CfsParams params, RngStream rng);

  hw::CoreId select_core(const os::Thread& thread,
                         const std::vector<std::size_t>& load) override;
  void enqueue(hw::CoreId core, os::Thread& thread) override;
  os::ThreadId pick_next(hw::CoreId core) override;
  void remove(const os::Thread& thread) override;
  std::size_t runnable_count(hw::CoreId core) const override;
  bool preempt_on_wakeup(const os::Thread& woken,
                         const os::Thread& running) const override;
  bool needs_tick(hw::CoreId core, bool core_busy) const override;
  bool should_resched_on_tick(hw::CoreId core,
                              os::Thread& running) override;
  void charge(os::Thread& thread, SimTime elapsed) override;

 private:
  struct Queue {
    std::vector<os::Thread*> threads;  // unordered; min-vruntime scan
    double min_vruntime = 0.0;         // monotonic fair clock
  };
  Queue& queue(hw::CoreId core);
  const Queue& queue(hw::CoreId core) const;

  hw::CpuSet owned_;
  hw::CpuSet nohz_full_;
  CfsParams params_;
  std::vector<Queue> queues_;
  std::unordered_map<os::ThreadId, hw::CoreId> queued_on_;
  RngStream rng_;
};

}  // namespace hpcos::linuxk
