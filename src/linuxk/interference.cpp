#include "linuxk/interference.h"

#include <algorithm>
#include <map>

#include "common/table.h"

namespace hpcos::linuxk {

InterferenceReport analyze_interference(const sim::TraceBuffer& trace,
                                        const hw::CpuSet& app_cores) {
  std::map<std::string, InterferenceEntry> by_activity;
  for (const auto& rec : trace.snapshot()) {
    if (rec.duration.is_zero()) continue;
    if (!app_cores.test(rec.core)) continue;
    auto& e = by_activity[to_string(rec.category)];
    e.activity = to_string(rec.category);
    ++e.events;
    e.total += rec.duration;
    if (rec.duration > e.worst_single) {
      e.worst_single = rec.duration;
      e.worst_core = rec.core;
      e.worst_at = rec.time;
    }
  }

  InterferenceReport report;
  for (auto& [_, e] : by_activity) {
    report.total_interference += e.total;
    report.total_events += e.events;
    report.entries.push_back(std::move(e));
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const InterferenceEntry& a, const InterferenceEntry& b) {
              return a.total > b.total;
            });
  return report;
}

std::string to_string(const InterferenceReport& report) {
  TextTable t({"activity", "events", "total", "worst single", "on core"});
  for (const auto& e : report.entries) {
    t.add_row({e.activity,
               TextTable::fmt_int(static_cast<long long>(e.events)),
               e.total.to_string(), e.worst_single.to_string(),
               TextTable::fmt_int(e.worst_core)});
  }
  return t.to_string();
}

}  // namespace hpcos::linuxk
