#include "linuxk/hugetlbfs.h"

#include <algorithm>

#include "common/check.h"

namespace hpcos::linuxk {

HugeTlbFs::HugeTlbFs(HugeTlbFsConfig config)
    : config_(config), pool_free_(config.reserved_pages) {}

HugeTlbFs::AllocResult HugeTlbFs::allocate(std::uint64_t pages,
                                           MemoryCgroup* memcg) {
  AllocResult r;
  if (!config_.enabled || pages == 0) return r;

  const std::uint64_t from_pool = std::min(pages, pool_free_);
  std::uint64_t surplus = pages - from_pool;

  if (surplus > 0) {
    if (!config_.overcommit) return r;  // pool exhausted, no overcommit
    if (config_.max_surplus_pages != 0 &&
        surplus_in_use_ + surplus > config_.max_surplus_pages) {
      return r;
    }
  }

  // Pool pages were accounted (and charged) at pool-reservation time in
  // the real kernel; the cgroup question is about *surplus* pages. With
  // the hook, they are charged like any other memory; without it, they
  // escape the cgroup entirely (the §4.1.3 bug).
  if (surplus > 0 && config_.cgroup_charge_hook && memcg != nullptr) {
    if (!memcg->try_charge(surplus * page_bytes())) return r;
  }

  pool_free_ -= from_pool;
  surplus_in_use_ += surplus;
  r.ok = true;
  r.from_pool = from_pool;
  r.surplus = surplus;
  return r;
}

void HugeTlbFs::release(const AllocResult& pages, MemoryCgroup* memcg) {
  if (!pages.ok) return;
  pool_free_ += pages.from_pool;
  HPCOS_CHECK(pages.surplus <= surplus_in_use_);
  surplus_in_use_ -= pages.surplus;
  if (pages.surplus > 0 && config_.cgroup_charge_hook && memcg != nullptr) {
    memcg->uncharge(pages.surplus * page_bytes());
  }
}

}  // namespace hpcos::linuxk
