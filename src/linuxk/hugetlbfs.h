// hugeTLBfs large-page pool with overcommit and the cgroup charge hook.
//
// §4.1.3: Fugaku runs hugeTLBfs *without* a boot-time reserved pool,
// allocating surplus large pages from the buddy allocator at runtime
// (overcommit). Stock RHEL does not charge those surplus pages to the
// memory cgroup; Fugaku fixes this by hooking the cgroup implementation
// from a kernel module. Both behaviours are modeled so the difference is
// testable: with the hook off, a process can blow through its cgroup limit
// via surplus pages.
#pragma once

#include <cstdint>

#include "linuxk/cgroup.h"
#include "linuxk/config.h"

namespace hpcos::linuxk {

class HugeTlbFs {
 public:
  explicit HugeTlbFs(HugeTlbFsConfig config);

  const HugeTlbFsConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }
  hw::PageSize page_size() const { return config_.page_size; }

  struct AllocResult {
    bool ok = false;
    std::uint64_t from_pool = 0;
    std::uint64_t surplus = 0;
  };

  // Allocate `pages` large pages for a process charging `memcg` (nullptr
  // when the process has no memory cgroup). Pool pages first, then surplus
  // if overcommit is enabled. With the charge hook, surplus pages must fit
  // the cgroup limit or the allocation fails outright.
  AllocResult allocate(std::uint64_t pages, MemoryCgroup* memcg);

  // Release pages previously obtained (pool pages return to the pool;
  // surplus pages go back to the buddy and are uncharged when hooked).
  void release(const AllocResult& pages, MemoryCgroup* memcg);

  std::uint64_t pool_free() const { return pool_free_; }
  std::uint64_t surplus_in_use() const { return surplus_in_use_; }
  std::uint64_t page_bytes() const { return hw::bytes(config_.page_size); }

 private:
  HugeTlbFsConfig config_;
  std::uint64_t pool_free_;
  std::uint64_t surplus_in_use_ = 0;
};

}  // namespace hpcos::linuxk
