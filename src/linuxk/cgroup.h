// Linux control groups (the subset the study leans on).
//
// Fugaku isolates system from application work with two cgroups (§4.1.1,
// §4.2): a cpuset controller binding members to a core/NUMA partition and
// a memory controller limiting application memory. Docker creates these
// under the hood; the cluster job launcher models that by instantiating a
// CgroupManager per node.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/cpuset.h"
#include "oskernel/types.h"

namespace hpcos::os {
class NodeKernel;
}

namespace hpcos::linuxk {

// cpuset controller: a core mask plus allowed NUMA memory nodes.
struct CpusetCgroup {
  std::string name;
  hw::CpuSet cpus;
  std::vector<hw::NumaId> mems;
};

// memory controller: usage accounting against a limit.
class MemoryCgroup {
 public:
  MemoryCgroup(std::string name, std::uint64_t limit_bytes)
      : name_(std::move(name)), limit_(limit_bytes) {}

  const std::string& name() const { return name_; }
  std::uint64_t limit_bytes() const { return limit_; }
  std::uint64_t usage_bytes() const { return usage_; }

  // Attempt to charge; fails (and leaves usage unchanged) past the limit.
  bool try_charge(std::uint64_t bytes);
  void uncharge(std::uint64_t bytes);

 private:
  std::string name_;
  std::uint64_t limit_;
  std::uint64_t usage_ = 0;
};

// Registry of the node's cgroups and thread membership.
class CgroupManager {
 public:
  // Create (or replace) a cpuset cgroup.
  CpusetCgroup& create_cpuset(std::string name, hw::CpuSet cpus,
                              std::vector<hw::NumaId> mems);
  // Create (or replace) a memory cgroup.
  MemoryCgroup& create_memory(std::string name, std::uint64_t limit_bytes);

  CpusetCgroup* find_cpuset(const std::string& name);
  MemoryCgroup* find_memory(const std::string& name);

  // Attach a thread to a cpuset: its affinity is narrowed to the cgroup's
  // cpus immediately (the mechanism behind "bind daemons to assistant
  // cores").
  void attach(os::NodeKernel& kernel, os::ThreadId tid,
              const std::string& cpuset_name);

  // Record/lookup which memory cgroup a process charges to.
  void assign_memory_cgroup(os::Pid pid, const std::string& name);
  MemoryCgroup* memory_cgroup_of(os::Pid pid);

 private:
  std::map<std::string, CpusetCgroup> cpusets_;
  std::map<std::string, MemoryCgroup> memories_;
  std::map<os::Pid, std::string> process_memcg_;
};

}  // namespace hpcos::linuxk
