#include "linuxk/irq.h"

#include "common/check.h"

namespace hpcos::linuxk {

IrqVector& IrqRouter::register_irq(int irq, std::string device,
                                   SimTime handler_cost) {
  HPCOS_CHECK_MSG(!vectors_.contains(irq), "IRQ already registered");
  IrqVector v;
  v.irq = irq;
  v.device = std::move(device);
  v.smp_affinity = kernel_.owned_cores();
  v.handler_cost = handler_cost;
  auto [it, _] = vectors_.emplace(irq, std::move(v));
  last_core_[irq] = hw::kInvalidCore;
  return it->second;
}

bool IrqRouter::set_affinity(int irq, const hw::CpuSet& mask) {
  auto it = vectors_.find(irq);
  HPCOS_CHECK_MSG(it != vectors_.end(), "unknown IRQ");
  if (!mask.intersects(kernel_.owned_cores())) return false;  // EINVAL
  it->second.smp_affinity = mask & kernel_.owned_cores();
  return true;
}

void IrqRouter::steer_all(const hw::CpuSet& cores) {
  for (auto& [irq, _] : vectors_) {
    const bool ok = set_affinity(irq, cores);
    HPCOS_CHECK_MSG(ok, "steer_all: mask excludes all owned cores");
  }
}

void IrqRouter::fire(int irq) {
  auto it = vectors_.find(irq);
  HPCOS_CHECK_MSG(it != vectors_.end(), "unknown IRQ");
  IrqVector& v = it->second;

  // Round-robin over the affinity mask, continuing from the last target.
  hw::CoreId core = v.smp_affinity.next(last_core_[irq]);
  if (core == hw::kInvalidCore) core = v.smp_affinity.first();
  HPCOS_CHECK_MSG(core != hw::kInvalidCore, "IRQ with empty affinity");
  last_core_[irq] = core;

  ++v.fired;
  ++per_core_[core];
  kernel_.interrupt_core(core, v.handler_cost, sim::TraceCategory::kIrq,
                         v.device);
}

const IrqVector& IrqRouter::vector(int irq) const {
  auto it = vectors_.find(irq);
  HPCOS_CHECK_MSG(it != vectors_.end(), "unknown IRQ");
  return it->second;
}

std::uint64_t IrqRouter::delivered_to(hw::CoreId core) const {
  auto it = per_core_.find(core);
  return it == per_core_.end() ? 0 : it->second;
}

}  // namespace hpcos::linuxk
