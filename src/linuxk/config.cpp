#include "linuxk/config.h"

namespace hpcos::linuxk {

SyscallCostTable::SyscallCostTable() {
  costs_.fill(SimTime::us(1));
  using S = os::Syscall;
  set(S::kRead, SimTime::ns(1500));
  set(S::kWrite, SimTime::ns(1500));
  set(S::kOpen, SimTime::us(3));
  set(S::kClose, SimTime::ns(800));
  set(S::kStat, SimTime::ns(1500));
  set(S::kMmap, SimTime::us(2));
  set(S::kMunmap, SimTime::ns(1500));
  set(S::kBrk, SimTime::ns(600));
  set(S::kFutex, SimTime::ns(900));
  set(S::kClone, SimTime::us(15));
  set(S::kExitGroup, SimTime::us(10));
  set(S::kGetTimeOfDay, SimTime::ns(40));  // vDSO
  set(S::kSchedYield, SimTime::ns(300));
  set(S::kNanosleep, SimTime::ns(1200));
  set(S::kIoctl, SimTime::us(3));
  set(S::kPerfEventOpen, SimTime::us(10));
  set(S::kSignal, SimTime::ns(700));
  set(S::kKill, SimTime::us(2));
}

LinuxConfig make_fugaku_linux_config(const hw::PlatformConfig& platform,
                                     const noise::Countermeasures& cm) {
  LinuxConfig c;
  c.costs = os::KernelCosts{};  // RHEL-class costs
  c.tick_period = SimTime::ms(10);  // 100 Hz
  c.nohz_full_cores = platform.topology.application_cores();
  c.base_page_size = hw::PageSize::k64K;
  c.thp_enabled = false;  // Fugaku uses hugeTLBfs instead (§4.1.3)
  c.hugetlbfs = HugeTlbFsConfig{
      .enabled = true,
      .page_size = hw::PageSize::k2M,
      .reserved_pages = 0,     // no boot pool: overcommit from the buddy
      .overcommit = true,
      .max_surplus_pages = 0,  // unlimited surplus
      .cgroup_charge_hook = true,
  };
  c.tlb_flush = cm.suppress_global_tlbi ? TlbFlushMode::kBroadcastPatched
                                        : TlbFlushMode::kBroadcast;
  c.tlb = platform.tlb;
  c.profile = noise::fugaku_linux_profile(cm);
  c.system_cores = platform.topology.system_cores();
  return c;
}

LinuxConfig make_ofp_linux_config(const hw::PlatformConfig& platform) {
  LinuxConfig c;
  c.costs = os::KernelCosts{};
  // CentOS 7 x86_64: 1000 Hz tick on ticking cores.
  c.tick_period = SimTime::ms(1);
  c.nohz_full_cores = platform.topology.application_cores();
  c.base_page_size = hw::PageSize::k4K;
  c.thp_enabled = true;  // OFP relies on THP (Table 1)
  c.hugetlbfs.enabled = false;
  c.tlb_flush = TlbFlushMode::kIpi;
  c.tlb = platform.tlb;
  // The 3.10-era kernel's slower paths.
  c.costs.context_switch = SimTime::ns(2500);
  c.costs.page_fault_base = SimTime::from_us(1.8);
  c.costs.page_fault_large = SimTime::us(12);
  c.profile = noise::ofp_linux_profile();
  c.system_cores = platform.topology.system_cores();
  return c;
}

}  // namespace hpcos::linuxk
