// Kernel workqueues and kworker threads (§4.2).
//
// Two flavours, as in Linux: per-CPU *bound* kworkers (kworker/N:M) that
// execute work queued on their CPU, and an *unbound* pool (kworker/uX:Y)
// whose placement follows a pool-wide cpumask. The §4.2 countermeasure is
// precisely a write to that mask through sysfs ("kworker tasks are also
// bound to assistant cores by changing the CPU affinity value through
// their sysfs interface"); bound kworkers stay put by design and blk-mq
// completions need their own treatment (see blkmq.h).
//
// kworkers are real simulated threads (kernel_thread = true, so their
// execution is charged as kernel time and traced as kworker activity).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "oskernel/kernel.h"

namespace hpcos::linuxk {

struct WorkItem {
  SimTime duration;
  std::string label;
};

class WorkqueuePool {
 public:
  // `unbound_workers`: number of kworker/u threads to maintain.
  WorkqueuePool(os::NodeKernel& kernel, int unbound_workers = 2);

  // Queue work on a specific CPU's bound kworker (created lazily).
  void queue_work_on(hw::CoreId cpu, WorkItem item);

  // Queue work on the unbound pool.
  void queue_unbound(WorkItem item);

  // The sysfs write: constrain unbound kworkers to `cores`. Existing
  // workers are re-affined immediately.
  void set_unbound_cpumask(const hw::CpuSet& cores);
  const hw::CpuSet& unbound_cpumask() const { return unbound_mask_; }

  std::uint64_t executed() const { return executed_; }
  std::size_t bound_worker_count() const { return bound_.size(); }

 private:
  class KworkerBody;
  struct Worker {
    os::ThreadId tid = os::kInvalidThread;
    KworkerBody* body = nullptr;  // owned by the thread record
  };

  Worker make_worker(const std::string& name, const hw::CpuSet& affinity);
  void dispatch(Worker& worker, WorkItem item);

  os::NodeKernel& kernel_;
  hw::CpuSet unbound_mask_;
  std::map<hw::CoreId, Worker> bound_;
  std::vector<Worker> unbound_;
  std::size_t next_unbound_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hpcos::linuxk
