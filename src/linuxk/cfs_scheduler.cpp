#include "linuxk/cfs_scheduler.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace hpcos::linuxk {
namespace {

double to_vr(SimTime t) { return static_cast<double>(t.count_ns()); }

}  // namespace

CfsScheduler::CfsScheduler(std::size_t num_cores, hw::CpuSet owned_cores,
                           hw::CpuSet nohz_full_cores, CfsParams params,
                           RngStream rng)
    : owned_(std::move(owned_cores)),
      nohz_full_(std::move(nohz_full_cores)),
      params_(params),
      queues_(num_cores),
      rng_(rng) {}

CfsScheduler::Queue& CfsScheduler::queue(hw::CoreId core) {
  HPCOS_CHECK(core >= 0 &&
              static_cast<std::size_t>(core) < queues_.size());
  return queues_[static_cast<std::size_t>(core)];
}

const CfsScheduler::Queue& CfsScheduler::queue(hw::CoreId core) const {
  HPCOS_CHECK(core >= 0 &&
              static_cast<std::size_t>(core) < queues_.size());
  return queues_[static_cast<std::size_t>(core)];
}

hw::CoreId CfsScheduler::select_core(const os::Thread& thread,
                                     const std::vector<std::size_t>& load) {
  // wake_affine: stick to the previous CPU when allowed — this is why
  // unbound daemons keep landing on application cores once they have run
  // there. Fresh threads (no previous core) pick a random allowed core,
  // then load balancing below evens things out over time.
  const hw::CpuSet allowed = thread.affinity & owned_;
  HPCOS_CHECK_MSG(allowed.any(), "no allowed core for thread");

  if (thread.core != hw::kInvalidCore && allowed.test(thread.core)) {
    const std::size_t here = load[static_cast<std::size_t>(thread.core)];
    // Stay unless clearly imbalanced (another allowed core is idle while
    // this one is contended).
    if (here <= 1) return thread.core;
    for (hw::CoreId c = allowed.first(); c != hw::kInvalidCore;
         c = allowed.next(c)) {
      if (load[static_cast<std::size_t>(c)] == 0) return c;
    }
    return thread.core;
  }

  // Initial placement: uniformly random among the least-loaded allowed
  // cores (deterministic under the seed).
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (hw::CoreId c = allowed.first(); c != hw::kInvalidCore;
       c = allowed.next(c)) {
    best = std::min(best, load[static_cast<std::size_t>(c)]);
  }
  std::vector<hw::CoreId> candidates;
  for (hw::CoreId c = allowed.first(); c != hw::kInvalidCore;
       c = allowed.next(c)) {
    if (load[static_cast<std::size_t>(c)] == best) candidates.push_back(c);
  }
  return candidates[rng_.uniform_index(candidates.size())];
}

void CfsScheduler::enqueue(hw::CoreId core, os::Thread& thread) {
  Queue& q = queue(core);
  // Sleeper credit: a woken thread re-enters near the core's fair clock,
  // bounded below so long sleepers cannot monopolize the CPU.
  thread.vruntime = std::max(
      thread.vruntime, q.min_vruntime - to_vr(params_.sleeper_credit));
  q.threads.push_back(&thread);
  queued_on_[thread.tid] = core;
}

os::ThreadId CfsScheduler::pick_next(hw::CoreId core) {
  Queue& q = queue(core);
  if (q.threads.empty()) return os::kInvalidThread;
  auto it = std::min_element(q.threads.begin(), q.threads.end(),
                             [](const os::Thread* a, const os::Thread* b) {
                               return a->vruntime < b->vruntime;
                             });
  os::Thread* t = *it;
  q.threads.erase(it);
  queued_on_.erase(t->tid);
  q.min_vruntime = std::max(q.min_vruntime, t->vruntime);
  return t->tid;
}

void CfsScheduler::remove(const os::Thread& thread) {
  auto it = queued_on_.find(thread.tid);
  if (it == queued_on_.end()) return;
  Queue& q = queue(it->second);
  std::erase_if(q.threads, [&](const os::Thread* t) {
    return t->tid == thread.tid;
  });
  queued_on_.erase(it);
}

std::size_t CfsScheduler::runnable_count(hw::CoreId core) const {
  return queue(core).threads.size();
}

bool CfsScheduler::preempt_on_wakeup(const os::Thread& woken,
                                     const os::Thread& running) const {
  return woken.vruntime + to_vr(params_.granularity) < running.vruntime;
}

bool CfsScheduler::needs_tick(hw::CoreId core, bool core_busy) const {
  if (!core_busy) return false;  // nohz idle
  if (!nohz_full_.test(core)) return true;
  // nohz_full: the tick restarts as soon as a second task is runnable.
  return runnable_count(core) > 0;
}

bool CfsScheduler::should_resched_on_tick(hw::CoreId core,
                                          os::Thread& running) {
  const Queue& q = queue(core);
  if (q.threads.empty()) return false;
  const double waiting_min =
      (*std::min_element(q.threads.begin(), q.threads.end(),
                         [](const os::Thread* a, const os::Thread* b) {
                           return a->vruntime < b->vruntime;
                         }))
          ->vruntime;
  return waiting_min + to_vr(params_.granularity) < running.vruntime;
}

void CfsScheduler::charge(os::Thread& thread, SimTime elapsed) {
  thread.vruntime += to_vr(elapsed);
  if (thread.core != hw::kInvalidCore) {
    Queue& q = queue(thread.core);
    q.min_vruntime = std::max(q.min_vruntime, thread.vruntime);
  }
}

}  // namespace hpcos::linuxk
