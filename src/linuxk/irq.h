// Device IRQ routing (§3.1 / §4.2).
//
// The procfs mechanism: every IRQ vector has an smp_affinity mask deciding
// which cores may service it. OFP balances device IRQs across the whole
// chip (irqbalance default); Fugaku writes /proc/irq/N/smp_affinity to
// steer every vector to the assistant cores. The router picks a core from
// the vector's mask (round-robin, like the APIC's lowest-priority
// arbitration) and injects the handler as a kernel-mode interrupt there.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "oskernel/kernel.h"

namespace hpcos::linuxk {

struct IrqVector {
  int irq = -1;
  std::string device;         // "mlx5_comp3", "nvme0q7", ...
  hw::CpuSet smp_affinity;    // /proc/irq/<n>/smp_affinity
  SimTime handler_cost = SimTime::us(5);
  std::uint64_t fired = 0;
};

class IrqRouter {
 public:
  explicit IrqRouter(os::NodeKernel& kernel) : kernel_(kernel) {}

  // Register a vector; affinity defaults to all owned cores (balanced).
  IrqVector& register_irq(int irq, std::string device,
                          SimTime handler_cost = SimTime::us(5));

  // The /proc/irq/<n>/smp_affinity write. The mask must intersect the
  // kernel's owned cores (EINVAL otherwise, like the real procfs file).
  bool set_affinity(int irq, const hw::CpuSet& mask);

  // Steer EVERY registered vector to `cores` (the §4.2 countermeasure:
  // "Device IRQs are routed to assistant cores").
  void steer_all(const hw::CpuSet& cores);

  // Deliver one interrupt for `irq`: picks the next core from the
  // affinity mask round-robin and injects the handler there.
  void fire(int irq);

  const IrqVector& vector(int irq) const;
  std::size_t vector_count() const { return vectors_.size(); }
  // Total handler invocations that landed on `core`.
  std::uint64_t delivered_to(hw::CoreId core) const;

 private:
  os::NodeKernel& kernel_;
  std::map<int, IrqVector> vectors_;
  std::map<int, hw::CoreId> last_core_;  // per-vector round robin cursor
  std::map<hw::CoreId, std::uint64_t> per_core_;
};

}  // namespace hpcos::linuxk
