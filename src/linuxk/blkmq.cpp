#include "linuxk/blkmq.h"

#include "common/check.h"

namespace hpcos::linuxk {

BlkMq::BlkMq(os::NodeKernel& kernel, int num_hw_queues)
    : kernel_(kernel),
      core_to_ctx_(static_cast<std::size_t>(
                       kernel.topology().logical_cores()),
                   -1),
      per_core_(static_cast<std::size_t>(kernel.topology().logical_cores()),
                0) {
  HPCOS_CHECK(num_hw_queues > 0);
  const auto owned = kernel.owned_cores().to_vector();
  HPCOS_CHECK(!owned.empty());
  const int queues =
      std::min<int>(num_hw_queues, static_cast<int>(owned.size()));
  contexts_.resize(static_cast<std::size_t>(queues));
  rr_last_.assign(static_cast<std::size_t>(queues), hw::kInvalidCore);
  for (int q = 0; q < queues; ++q) {
    contexts_[static_cast<std::size_t>(q)].index = q;
    contexts_[static_cast<std::size_t>(q)].cpumask =
        hw::CpuSet(static_cast<std::size_t>(
            kernel.topology().logical_cores()));
  }
  // Stripe cores over contexts, matching blk-mq's default cpu->queue map.
  for (std::size_t i = 0; i < owned.size(); ++i) {
    const int q = static_cast<int>(i) % queues;
    contexts_[static_cast<std::size_t>(q)].cpumask.set(owned[i]);
    core_to_ctx_[static_cast<std::size_t>(owned[i])] = q;
  }
}

void BlkMq::bind_all_contexts(const hw::CpuSet& cores) {
  const hw::CpuSet target = cores & kernel_.owned_cores();
  HPCOS_CHECK_MSG(target.any(),
                  "blk-mq bind target excludes all owned cores");
  for (auto& ctx : contexts_) {
    ctx.cpumask = target;
  }
}

void BlkMq::complete_io(hw::CoreId submitting_core, SimTime completion_work) {
  HPCOS_CHECK(submitting_core >= 0 &&
              static_cast<std::size_t>(submitting_core) <
                  core_to_ctx_.size());
  const int q = core_to_ctx_[static_cast<std::size_t>(submitting_core)];
  HPCOS_CHECK_MSG(q >= 0, "submitting core has no blk-mq context");
  BlkMqHwCtx& ctx = contexts_[static_cast<std::size_t>(q)];

  hw::CoreId core = ctx.cpumask.next(rr_last_[static_cast<std::size_t>(q)]);
  if (core == hw::kInvalidCore) core = ctx.cpumask.first();
  HPCOS_CHECK(core != hw::kInvalidCore);
  rr_last_[static_cast<std::size_t>(q)] = core;

  ++ctx.completions;
  ++per_core_[static_cast<std::size_t>(core)];
  kernel_.interrupt_core(core, completion_work, sim::TraceCategory::kBlkMq,
                         "blk_mq/hctx" + std::to_string(q));
}

const BlkMqHwCtx& BlkMq::context_for(hw::CoreId core) const {
  HPCOS_CHECK(core >= 0 &&
              static_cast<std::size_t>(core) < core_to_ctx_.size());
  const int q = core_to_ctx_[static_cast<std::size_t>(core)];
  HPCOS_CHECK_MSG(q >= 0, "core has no blk-mq context");
  return contexts_[static_cast<std::size_t>(q)];
}

std::uint64_t BlkMq::completions_on(hw::CoreId core) const {
  if (core < 0 ||
      static_cast<std::size_t>(core) >= per_core_.size()) {
    return 0;
  }
  return per_core_[static_cast<std::size_t>(core)];
}

}  // namespace hpcos::linuxk
