// Interference analysis: the §4.2.1 ftrace methodology as an API.
//
// The paper identified interfering kernel tasks by profiling with ftrace
// ("the analysis revealed that a kernel thread for block I/O processing
// is spawned to application cores..."). This module turns a TraceBuffer
// into the same kind of report: per-activity interference on the
// application cores, ranked by stolen time, with the worst single event —
// exactly what an operator needs to decide which countermeasure to apply.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "hw/cpuset.h"
#include "sim/trace.h"

namespace hpcos::linuxk {

struct InterferenceEntry {
  std::string activity;         // trace category ("kworker", "daemon", ...)
  std::uint64_t events = 0;
  SimTime total;                // aggregate stolen time
  SimTime worst_single;         // longest single event
  hw::CoreId worst_core = hw::kInvalidCore;
  SimTime worst_at;             // timestamp of the worst event
};

struct InterferenceReport {
  // Entries sorted by total stolen time, descending.
  std::vector<InterferenceEntry> entries;
  SimTime total_interference;
  std::uint64_t total_events = 0;

  // The dominant interferer, or empty when the trace is clean.
  std::string dominant() const {
    return entries.empty() ? std::string{} : entries.front().activity;
  }
};

// Aggregate all non-zero-duration trace records that landed on
// `app_cores` into a ranked report. Context switches are attributed like
// any other kernel activity (they are; the paper's daemon noise includes
// them).
InterferenceReport analyze_interference(const sim::TraceBuffer& trace,
                                        const hw::CpuSet& app_cores);

// Render the report as a table (for tools/examples).
std::string to_string(const InterferenceReport& report);

}  // namespace hpcos::linuxk
