// blk-mq: multi-queue block I/O completion processing (§4.2.1).
//
// The paper's ftrace analysis found that block I/O completion work kept
// appearing on application cores even after unbound kworkers were bound
// to the assistant cores, because blk-mq routes completions through its
// own per-hardware-queue CPU mask (struct blk_mq_hw_ctx.cpumask) which
// ordinary kworker binding does not touch. The countermeasure explicitly
// rewrites those masks. This model reproduces that structure: hardware
// contexts own disjoint cpumasks covering the chip; an I/O submitted from
// core C completes on a core of C's context — unless the masks have been
// re-pointed at the assistant cores.
#pragma once

#include <cstdint>
#include <vector>

#include "oskernel/kernel.h"

namespace hpcos::linuxk {

struct BlkMqHwCtx {
  int index = -1;
  hw::CpuSet cpumask;        // struct blk_mq_hw_ctx.cpumask
  std::uint64_t completions = 0;
};

class BlkMq {
 public:
  // Create `num_hw_queues` contexts with cpumasks striped over the
  // kernel's owned cores (the default mapping nr_cpus -> nr_hw_queues).
  BlkMq(os::NodeKernel& kernel, int num_hw_queues);

  // The countermeasure: point every context's cpumask at `cores`
  // (§4.2.1: "we explicitly update the aforementioned CPU mask").
  void bind_all_contexts(const hw::CpuSet& cores);

  // Complete an I/O that was submitted from `submitting_core`: the
  // completion work (interrupt + softirq) runs on a core of the
  // submitting core's context mask.
  void complete_io(hw::CoreId submitting_core,
                   SimTime completion_work = SimTime::us(80));

  const BlkMqHwCtx& context_for(hw::CoreId core) const;
  const std::vector<BlkMqHwCtx>& contexts() const { return contexts_; }
  std::uint64_t completions_on(hw::CoreId core) const;

 private:
  os::NodeKernel& kernel_;
  std::vector<BlkMqHwCtx> contexts_;
  std::vector<int> core_to_ctx_;     // submitting core -> context index
  std::vector<hw::CoreId> rr_last_;  // per-context round robin cursor
  std::vector<std::uint64_t> per_core_;
};

}  // namespace hpcos::linuxk
