// Configuration of the simulated Linux kernel.
#pragma once

#include <array>
#include <cstdint>

#include "common/sim_time.h"
#include "hw/cpuset.h"
#include "hw/platform.h"
#include "hw/tlb.h"
#include "noise/profiles.h"
#include "oskernel/costs.h"
#include "oskernel/syscall.h"

namespace hpcos::linuxk {

// Per-syscall base service times (kernel time beyond the trap overhead).
class SyscallCostTable {
 public:
  SyscallCostTable();

  SimTime get(os::Syscall no) const {
    return costs_[static_cast<std::size_t>(no)];
  }
  void set(os::Syscall no, SimTime cost) {
    costs_[static_cast<std::size_t>(no)] = cost;
  }

 private:
  std::array<SimTime, static_cast<std::size_t>(os::Syscall::kCount)> costs_;
};

// How the kernel invalidates remote TLB entries on address-space changes.
enum class TlbFlushMode : std::uint8_t {
  kIpi,                 // x86: IPI + local flush on every core of the mm
  kBroadcast,           // ARM64 TLBI inner-sharable, stalls the whole chip
  kBroadcastPatched,    // RHEL 8.2 fix: local flush for single-core mms,
                        // broadcast otherwise (§4.2.2)
};

struct HugeTlbFsConfig {
  bool enabled = false;
  hw::PageSize page_size = hw::PageSize::k2M;  // contiguous-bit groups
  std::uint64_t reserved_pages = 0;            // boot-time pool
  bool overcommit = false;                     // surplus from the buddy
  std::uint64_t max_surplus_pages = 0;         // 0 = unlimited
  // The kernel-module hook of §4.1.3 that charges surplus pages to the
  // memory cgroup (stock RHEL lacks this).
  bool cgroup_charge_hook = false;
};

struct LinuxConfig {
  os::KernelCosts costs;
  SyscallCostTable syscalls;

  // Scheduling.
  SimTime tick_period = SimTime::ms(10);     // 100 Hz (RHEL 8 aarch64)
  SimTime residual_tick_period = SimTime::sec(1);
  hw::CpuSet nohz_full_cores;                // ticks suppressed when quiet
  SimTime cfs_sched_granularity = SimTime::ms(3);
  SimTime cfs_sleeper_credit = SimTime::ms(10);

  // Memory management.
  hw::PageSize base_page_size = hw::PageSize::k4K;
  bool thp_enabled = false;                  // transparent 2M promotion
  HugeTlbFsConfig hugetlbfs;
  TlbFlushMode tlb_flush = TlbFlushMode::kIpi;
  hw::TlbParams tlb;

  // Tofu driver registration path: get_user_pages walks base pages.
  SimTime tofu_pin_per_page = SimTime::ns(250);

  // Noise environment (drives the DES background-activity generators).
  noise::AnalyticNoiseProfile profile;
  // Cores where background activity is confined when countermeasures bind
  // it (the assistant cores).
  hw::CpuSet system_cores;
};

// Table-1 faithful configurations. `cm` applies only to Fugaku (OFP's
// environment was not under the authors' control; §6.3).
LinuxConfig make_fugaku_linux_config(
    const hw::PlatformConfig& platform,
    const noise::Countermeasures& cm = {});
LinuxConfig make_ofp_linux_config(const hw::PlatformConfig& platform);

}  // namespace hpcos::linuxk
