#include "linuxk/cgroup.h"

#include "common/check.h"
#include "oskernel/kernel.h"

namespace hpcos::linuxk {

bool MemoryCgroup::try_charge(std::uint64_t bytes) {
  if (limit_ != 0 && usage_ + bytes > limit_) return false;
  usage_ += bytes;
  return true;
}

void MemoryCgroup::uncharge(std::uint64_t bytes) {
  HPCOS_CHECK_MSG(bytes <= usage_, "memcg uncharge below zero");
  usage_ -= bytes;
}

CpusetCgroup& CgroupManager::create_cpuset(std::string name, hw::CpuSet cpus,
                                           std::vector<hw::NumaId> mems) {
  HPCOS_CHECK_MSG(cpus.any(), "cpuset cgroup needs at least one cpu");
  auto [it, _] = cpusets_.insert_or_assign(
      name, CpusetCgroup{name, std::move(cpus), std::move(mems)});
  return it->second;
}

MemoryCgroup& CgroupManager::create_memory(std::string name,
                                           std::uint64_t limit_bytes) {
  auto [it, _] =
      memories_.insert_or_assign(name, MemoryCgroup(name, limit_bytes));
  return it->second;
}

CpusetCgroup* CgroupManager::find_cpuset(const std::string& name) {
  auto it = cpusets_.find(name);
  return it == cpusets_.end() ? nullptr : &it->second;
}

MemoryCgroup* CgroupManager::find_memory(const std::string& name) {
  auto it = memories_.find(name);
  return it == memories_.end() ? nullptr : &it->second;
}

void CgroupManager::attach(os::NodeKernel& kernel, os::ThreadId tid,
                           const std::string& cpuset_name) {
  CpusetCgroup* cg = find_cpuset(cpuset_name);
  HPCOS_CHECK_MSG(cg != nullptr, "attach to unknown cpuset cgroup");
  kernel.set_affinity(tid, cg->cpus);
}

void CgroupManager::assign_memory_cgroup(os::Pid pid,
                                         const std::string& name) {
  HPCOS_CHECK_MSG(find_memory(name) != nullptr, "unknown memory cgroup");
  process_memcg_[pid] = name;
}

MemoryCgroup* CgroupManager::memory_cgroup_of(os::Pid pid) {
  auto it = process_memcg_.find(pid);
  return it == process_memcg_.end() ? nullptr : find_memory(it->second);
}

}  // namespace hpcos::linuxk
