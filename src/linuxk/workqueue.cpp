#include "linuxk/workqueue.h"

#include "common/check.h"

namespace hpcos::linuxk {

// Processes its queue item by item; parks in FUTEX_WAIT when drained.
class WorkqueuePool::KworkerBody final : public os::ThreadBody {
 public:
  explicit KworkerBody(std::uint64_t& executed) : executed_(executed) {}

  void step(os::ThreadContext& ctx) override {
    if (running_item_) {
      running_item_ = false;
      ++executed_;
    }
    if (queue_.empty()) {
      parked_ = true;
      ctx.invoke(os::Syscall::kFutex, os::SyscallArgs{.arg0 = 0});
      return;
    }
    parked_ = false;
    const WorkItem item = std::move(queue_.front());
    queue_.pop_front();
    running_item_ = true;
    ctx.compute(item.duration);
  }

  void enqueue(WorkItem item) { queue_.push_back(std::move(item)); }
  bool parked() const { return parked_; }

 private:
  std::uint64_t& executed_;
  std::deque<WorkItem> queue_;
  bool parked_ = false;
  bool running_item_ = false;
};

WorkqueuePool::WorkqueuePool(os::NodeKernel& kernel, int unbound_workers)
    : kernel_(kernel), unbound_mask_(kernel.owned_cores()) {
  HPCOS_CHECK(unbound_workers >= 1);
  for (int i = 0; i < unbound_workers; ++i) {
    unbound_.push_back(
        make_worker("kworker/u:" + std::to_string(i), unbound_mask_));
  }
}

WorkqueuePool::Worker WorkqueuePool::make_worker(const std::string& name,
                                                 const hw::CpuSet& affinity) {
  auto body = std::make_unique<KworkerBody>(executed_);
  KworkerBody* raw = body.get();
  os::SpawnAttrs attrs;
  attrs.name = name;
  attrs.affinity = affinity;
  attrs.kernel_thread = true;
  const os::ThreadId tid = kernel_.spawn(std::move(body), std::move(attrs));
  return Worker{tid, raw};
}

void WorkqueuePool::dispatch(Worker& worker, WorkItem item) {
  worker.body->enqueue(std::move(item));
  if (worker.body->parked() &&
      kernel_.thread(worker.tid).state == os::ThreadState::kBlocked) {
    os::SyscallResult r;
    r.ok = true;
    kernel_.complete_blocked_syscall(worker.tid, r);
  }
}

void WorkqueuePool::queue_work_on(hw::CoreId cpu, WorkItem item) {
  HPCOS_CHECK_MSG(kernel_.owned_cores().test(cpu),
                  "queue_work_on: un-owned cpu");
  auto it = bound_.find(cpu);
  if (it == bound_.end()) {
    hw::CpuSet pin(static_cast<std::size_t>(
        kernel_.topology().logical_cores()));
    pin.set(cpu);
    auto [ins, _] = bound_.emplace(
        cpu, make_worker("kworker/" + std::to_string(cpu) + ":0", pin));
    it = ins;
  }
  dispatch(it->second, std::move(item));
}

void WorkqueuePool::queue_unbound(WorkItem item) {
  Worker& w = unbound_[next_unbound_ % unbound_.size()];
  ++next_unbound_;
  dispatch(w, std::move(item));
}

void WorkqueuePool::set_unbound_cpumask(const hw::CpuSet& cores) {
  const hw::CpuSet target = cores & kernel_.owned_cores();
  HPCOS_CHECK_MSG(target.any(),
                  "unbound cpumask excludes all owned cores");
  unbound_mask_ = target;
  for (const Worker& w : unbound_) {
    kernel_.set_affinity(w.tid, unbound_mask_);
  }
}

}  // namespace hpcos::linuxk
