#include "linuxk/linux_kernel.h"

#include <algorithm>

namespace hpcos::linuxk {
namespace {

// app / system byte split for the vNUMA model, derived from the topology's
// NUMA description.
std::pair<std::uint64_t, std::uint64_t> memory_split(
    const hw::NodeTopology& topology) {
  std::uint64_t app = 0;
  std::uint64_t sys = 0;
  for (const auto& d : topology.numa_domains()) {
    (d.is_system_domain ? sys : app) += d.memory_bytes;
  }
  if (sys == 0) sys = 1ull << 30;  // conventional layout: nominal slice
  return {app, sys};
}

bool topology_has_system_domain(const hw::NodeTopology& topology) {
  for (const auto& d : topology.numa_domains()) {
    if (d.is_system_domain) return true;
  }
  return false;
}

}  // namespace

LinuxKernel::LinuxKernel(sim::Simulator& simulator,
                         const hw::NodeTopology& topology,
                         hw::CpuSet owned_cores, LinuxConfig config,
                         Seed seed, sim::TraceBuffer* trace,
                         os::ChipStallBus* stall_bus)
    : NodeKernel(simulator, topology, owned_cores, config.costs, trace),
      config_(std::move(config)),
      cfs_(static_cast<std::size_t>(topology.logical_cores()),
           this->owned_cores(), config_.nohz_full_cores,
           CfsParams{config_.cfs_sched_granularity,
                     config_.cfs_sleeper_credit},
           RngStream(seed, /*stream=*/0xCF5)),
      hugetlbfs_(config_.hugetlbfs),
      vnuma_(topology_has_system_domain(topology),
             memory_split(topology).first, memory_split(topology).second),
      tlb_model_(config_.tlb),
      stall_bus_(stall_bus),
      rng_(seed, /*stream=*/0x11A0),
      ticks_(static_cast<std::size_t>(topology.logical_cores())) {
  if (stall_bus_ != nullptr) stall_bus_->attach(*this);
}

void LinuxKernel::boot() {
  HPCOS_CHECK_MSG(!booted_, "LinuxKernel::boot called twice");
  booted_ = true;
  // Background activity lands on the application cores this kernel owns.
  const hw::CpuSet noise_targets =
      owned_cores() & topology().application_cores();
  background_ = std::make_unique<noise::BackgroundActivity>(
      *this, config_.profile, noise_targets,
      owned_cores() & config_.system_cores, stall_bus_, rng_.split(1));
  background_->start();
  // Arm ticks on cores that are already busy; idle cores arm on dispatch.
  for (hw::CoreId core : owned_cores().to_vector()) {
    if (!core_idle(core)) arm_tick(core);
  }
}

// ---- tick driver ----

void LinuxKernel::arm_tick(hw::CoreId core) {
  if (!booted_) return;
  TickState& ts = ticks_[static_cast<std::size_t>(core)];
  if (ts.armed) return;
  ts.armed = true;
  ts.full = cfs_.needs_tick(core, /*core_busy=*/true);
  const SimTime period =
      ts.full ? config_.tick_period : config_.residual_tick_period;
  ts.event = simulator().schedule_after(
      period, [this, core] { tick_fired(core); }, "linux.tick");
}

void LinuxKernel::ensure_full_tick(hw::CoreId core) {
  TickState& ts = ticks_[static_cast<std::size_t>(core)];
  if (!ts.armed || ts.full) return;
  // Cancel the pending residual tick and restart at full cadence.
  simulator().cancel(ts.event);
  ts.full = true;
  ts.event = simulator().schedule_after(
      config_.tick_period, [this, core] { tick_fired(core); }, "linux.tick");
}

void LinuxKernel::tick_fired(hw::CoreId core) {
  TickState& ts = ticks_[static_cast<std::size_t>(core)];
  ts.event = sim::EventId{};
  if (core_idle(core)) {
    // nohz idle: the tick parks until the next dispatch.
    ts.armed = false;
    return;
  }
  const SimTime cost =
      ts.full ? costs().tick_duration : costs().residual_tick_duration;
  obs::bump(tick_counter_);
  interrupt_core(core, cost, sim::TraceCategory::kTimerTick,
                 ts.full ? "tick" : "residual-tick");
  if (ts.full) {
    const os::ThreadId running = running_on(core);
    if (running != os::kInvalidThread &&
        cfs_.should_resched_on_tick(core, thread_ref(running))) {
      request_resched(core);
    }
  }
  ts.full = cfs_.needs_tick(core, /*core_busy=*/true);
  const SimTime period =
      ts.full ? config_.tick_period : config_.residual_tick_period;
  ts.event = simulator().schedule_after(
      period, [this, core] { tick_fired(core); }, "linux.tick");
}

void LinuxKernel::on_core_activated(hw::CoreId core) { arm_tick(core); }

void LinuxKernel::on_thread_enqueued(hw::CoreId core) {
  if (cfs_.runnable_count(core) > 0) ensure_full_tick(core);
}

// ---- syscalls ----

void LinuxKernel::set_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    syscall_counter_ = nullptr;
    fault_counter_ = nullptr;
    shootdown_counter_ = nullptr;
    shootdown_ipi_counter_ = nullptr;
    tick_counter_ = nullptr;
    set_interrupt_ns_counter(nullptr);
    return;
  }
  set_interrupt_ns_counter(registry->counter("linux.interrupt_ns"));
  syscall_counter_ = registry->counter("linux.syscalls");
  fault_counter_ = registry->counter("linux.page_faults");
  shootdown_counter_ = registry->counter("linux.tlb.shootdowns");
  shootdown_ipi_counter_ = registry->counter("linux.tlb.shootdown_ipis");
  tick_counter_ = registry->counter("linux.ticks");
}

os::NodeKernel::SyscallDisposition LinuxKernel::handle_syscall(
    os::Thread& thread, const os::SyscallRequest& req) {
  using S = os::Syscall;
  obs::bump(syscall_counter_);
  switch (req.no) {
    case S::kMmap:
      return do_mmap(thread, req.args);
    case S::kMunmap:
      return do_munmap(thread, req.args);

    case S::kNanosleep: {
      SyscallDisposition d;
      d.kind = SyscallDisposition::Kind::kBlocked;
      const os::ThreadId tid = thread.tid;
      const auto dt = SimTime::ns(static_cast<std::int64_t>(req.args.arg0));
      simulator().schedule_after(
          dt + config_.syscalls.get(S::kNanosleep),
          [this, tid] {
            os::SyscallResult r;
            r.ok = true;
            complete_blocked_syscall(tid, r);
          },
          "linux.sleep.wake");
      return d;
    }

    case S::kFutex: {
      if (req.args.arg0 == 0) {
        // FUTEX_WAIT: parked until an external complete_blocked_syscall.
        SyscallDisposition d;
        d.kind = SyscallDisposition::Kind::kBlocked;
        return d;
      }
      break;  // FUTEX_WAKE etc.: plain inline cost
    }

    case S::kKill:
      send_signal(static_cast<os::ThreadId>(req.args.arg0));
      break;

    case S::kIoctl:
      if (req.args.arg2 == os::kTofuRegisterStag ||
          req.args.arg2 == os::kTofuDeregisterStag) {
        // Tofu driver STAG path: pin (or unpin) the buffer page by page
        // at the base page size (§5.1).
        const std::uint64_t pages =
            (req.args.arg1 + hw::bytes(config_.base_page_size) - 1) /
            hw::bytes(config_.base_page_size);
        SyscallDisposition d;
        d.service_time =
            config_.syscalls.get(S::kIoctl) +
            config_.tofu_pin_per_page.scaled(
                req.args.arg2 == os::kTofuRegisterStag ? 1.0 : 0.3) *
                static_cast<std::int64_t>(pages);
        d.result.ok = true;
        d.result.path = os::SyscallResult::Path::kLocal;
        return d;
      }
      break;

    default:
      break;
  }
  SyscallDisposition d;
  d.service_time = config_.syscalls.get(req.no);
  d.result.ok = true;
  d.result.path = os::SyscallResult::Path::kLocal;
  return d;
}

hw::PageSize LinuxKernel::select_page_size(const os::Process& proc,
                                           std::uint64_t length,
                                           bool prefer_large) const {
  const bool wants_huge =
      prefer_large ||
      proc.attrs.preferred_page_size == config_.hugetlbfs.page_size;
  if (config_.hugetlbfs.enabled && wants_huge) {
    return config_.hugetlbfs.page_size;
  }
  if (config_.thp_enabled && length >= hw::bytes(hw::PageSize::k2M)) {
    return hw::PageSize::k2M;  // THP promotes large anonymous regions
  }
  return config_.base_page_size;
}

os::NodeKernel::SyscallDisposition LinuxKernel::do_mmap(
    os::Thread& thread, const os::SyscallArgs& args) {
  const std::uint64_t length = args.arg0;
  const bool prefer_large = (args.arg1 & 1) != 0;
  os::Process& proc = process(thread.pid);

  hw::PageSize page = select_page_size(proc, length, prefer_large);
  HugeTlbFs::AllocResult backing;
  if (config_.hugetlbfs.enabled && page == config_.hugetlbfs.page_size) {
    const std::uint64_t pages =
        (length + hw::bytes(page) - 1) / hw::bytes(page);
    backing = hugetlbfs_.allocate(pages, cgroups_.memory_cgroup_of(proc.pid));
    if (!backing.ok) page = config_.base_page_size;  // pool/limit exhausted
  }

  const os::PagingPolicy policy = proc.attrs.paging;
  const std::uint64_t addr = proc.address_space.map(length, page, policy);
  if (backing.ok) hugetlb_backing_[{proc.pid, addr}] = backing;
  vnuma_.allocate(MemRegion::kApplication, length);

  SyscallDisposition d;
  d.service_time = config_.syscalls.get(os::Syscall::kMmap);
  if (policy == os::PagingPolicy::kPrePopulate) {
    const auto it = proc.address_space.areas().find(addr);
    const std::uint64_t faults = it->second.populated_pages;
    const SimTime per_fault = page == config_.base_page_size
                                  ? costs().page_fault_base
                                  : costs().page_fault_large;
    const SimTime base_cost = per_fault * static_cast<std::int64_t>(faults);
    const SimTime total_cost =
        per_fault.scaled(vnuma_.app_fault_factor()) *
        static_cast<std::int64_t>(faults);
    d.service_time += total_cost;
    page_faults_ += faults;
    obs::bump(fault_counter_, faults);
    record_fault_spans(thread.core,
                       os::classify_fault(page, config_.base_page_size,
                                          /*bulk_populate=*/true),
                       faults, base_cost, total_cost - base_cost);
  }
  d.result.ok = true;
  d.result.value = static_cast<std::int64_t>(addr);
  return d;
}

os::NodeKernel::SyscallDisposition LinuxKernel::do_munmap(
    os::Thread& thread, const os::SyscallArgs& args) {
  const std::uint64_t addr = args.arg0;
  const std::uint64_t length = args.arg1;
  os::Process& proc = process(thread.pid);

  const auto res = proc.address_space.unmap(addr, length);
  vnuma_.free(MemRegion::kApplication, length);

  // Return hugeTLBfs backing (full-area unmaps only; partial unmaps of
  // hugetlb areas are not used by the workloads).
  if (auto it = hugetlb_backing_.find({proc.pid, addr});
      it != hugetlb_backing_.end()) {
    hugetlbfs_.release(it->second, cgroups_.memory_cgroup_of(proc.pid));
    hugetlb_backing_.erase(it);
  }

  SyscallDisposition d;
  const SimTime pages_cost =
      costs().unmap_per_page * static_cast<std::int64_t>(res.pages_released);
  d.service_time = config_.syscalls.get(os::Syscall::kMunmap) + pages_cost;

  // Root the shootdown subtree under an "unmap:munmap" span so the viewer
  // shows the whole release (page teardown + TLB invalidation) as one tree.
  sim::TraceBuffer* tb = trace();
  const bool tracing = tb != nullptr && tb->enabled();
  const std::uint64_t root = tracing ? tb->new_span() : 0;
  const SimTime start = simulator().now();
  d.service_time += tlb_shootdown(proc, thread.core, res.tlb_flushes, root);
  if (tracing) {
    tb->record(sim::TraceRecord{.time = start,
                                .core = thread.core,
                                .category = sim::TraceCategory::kSyscall,
                                .duration = d.service_time,
                                .label = "unmap:munmap",
                                .span = root,
                                .parent = 0});
    tb->record(sim::TraceRecord{.time = start,
                                .core = thread.core,
                                .category = sim::TraceCategory::kSyscall,
                                .duration = pages_cost,
                                .label = "unmap:pages",
                                .span = tb->new_span(),
                                .parent = root});
  }
  d.result.ok = true;
  return d;
}

SimTime LinuxKernel::touch_memory(os::Pid pid, std::uint64_t addr,
                                  std::uint64_t length) {
  os::Process& proc = process(pid);
  const os::FaultBatch batch = proc.address_space.touch_batch(addr, length);
  if (batch.faults == 0) return SimTime::zero();
  page_faults_ += batch.faults;
  obs::bump(fault_counter_, batch.faults);
  const SimTime per_fault = batch.page_size == config_.base_page_size
                                ? costs().page_fault_base
                                : costs().page_fault_large;
  const SimTime base_cost =
      per_fault * static_cast<std::int64_t>(batch.faults);
  const SimTime total_cost =
      per_fault.scaled(vnuma_.app_fault_factor()) *
      static_cast<std::int64_t>(batch.faults);
  record_fault_spans(hw::kInvalidCore,
                     os::classify_fault(batch.page_size,
                                        config_.base_page_size,
                                        /*bulk_populate=*/false),
                     batch.faults, base_cost, total_cost - base_cost);
  return total_cost;
}

std::uint64_t LinuxKernel::record_fault_spans(hw::CoreId core,
                                              os::FaultKind kind,
                                              std::uint64_t faults,
                                              SimTime base_cost,
                                              SimTime vnuma_extra,
                                              std::uint64_t parent) {
  sim::TraceBuffer* tb = trace();
  if (tb == nullptr || !tb->enabled() || faults == 0) return 0;
  const SimTime start = simulator().now();
  const std::uint64_t root = tb->new_span();
  tb->record(sim::TraceRecord{.time = start,
                              .core = core,
                              .category = sim::TraceCategory::kPageFault,
                              .duration = base_cost + vnuma_extra,
                              .label = "fault:" + os::to_string(kind),
                              .span = root,
                              .parent = parent});
  tb->record(sim::TraceRecord{.time = start,
                              .core = core,
                              .category = sim::TraceCategory::kPageFault,
                              .duration = base_cost,
                              .label = "fault:populate",
                              .span = tb->new_span(),
                              .parent = root});
  if (vnuma_extra > SimTime::zero()) {
    tb->record(sim::TraceRecord{.time = start + base_cost,
                                .core = core,
                                .category = sim::TraceCategory::kPageFault,
                                .duration = vnuma_extra,
                                .label = "fault:vnuma-remote",
                                .span = tb->new_span(),
                                .parent = root});
  }
  return root;
}

SimTime LinuxKernel::tlb_shootdown(const os::Process& proc,
                                   hw::CoreId initiator,
                                   std::uint64_t flushes,
                                   std::uint64_t parent_span) {
  if (flushes == 0) return SimTime::zero();
  ++shootdowns_;
  obs::bump(shootdown_counter_);

  SimTime local_cost = SimTime::zero();
  SimTime victim_stall = SimTime::zero();  // per-victim broadcast penalty
  SimTime ipi_wait = SimTime::zero();      // initiator ack busy-wait
  int ipi_victims = 0;

  switch (config_.tlb_flush) {
    case TlbFlushMode::kBroadcastPatched:
      if (proc.single_core()) {
        // RHEL 8.2 fix: single-core mms flush locally, nothing broadcast.
        local_cost = tlb_model_.local_flush(flushes);
        break;
      }
      [[fallthrough]];
    case TlbFlushMode::kBroadcast: {
      victim_stall = tlb_model_.broadcast_stall(flushes);
      if (stall_bus_ != nullptr) {
        stall_bus_->broadcast_stall(initiator, victim_stall,
                                    sim::TraceCategory::kTlbShootdown,
                                    "tlbi-bcast");
      } else {
        stall_all_cores_except(initiator, victim_stall,
                               sim::TraceCategory::kTlbShootdown,
                               "tlbi-bcast");
      }
      local_cost = tlb_model_.local_flush(flushes);
      break;
    }
    case TlbFlushMode::kIpi: {
      // x86 path: interrupt every core currently running another thread of
      // this mm; the initiator busy-waits for acknowledgements.
      for (os::ThreadId tid : proc.threads) {
        const os::Thread& t = thread(tid);
        if (t.state == os::ThreadState::kRunning && t.core != initiator) {
          interrupt_core(t.core, tlb_model_.ipi_shootdown_per_core(),
                         sim::TraceCategory::kTlbShootdown, "tlbi-ipi");
          obs::bump(shootdown_ipi_counter_);
          ++ipi_victims;
        }
      }
      local_cost = tlb_model_.local_flush(std::min<std::uint64_t>(
          flushes, 64));  // range flush caps at full-TLB invalidate
      if (ipi_victims > 0) ipi_wait = tlb_model_.ipi_shootdown_per_core();
      break;
    }
  }

  const SimTime cost = local_cost + ipi_wait;
  sim::TraceBuffer* tb = trace();
  if (tb != nullptr && tb->enabled()) {
    const SimTime start = simulator().now();
    const std::uint64_t root = tb->new_span();
    auto child = [&](SimTime at, SimTime duration, std::string label) {
      tb->record(sim::TraceRecord{.time = at,
                                  .core = initiator,
                                  .category =
                                      sim::TraceCategory::kTlbShootdown,
                                  .duration = duration,
                                  .label = std::move(label),
                                  .span = tb->new_span(),
                                  .parent = root});
    };
    tb->record(sim::TraceRecord{.time = start,
                                .core = initiator,
                                .category = sim::TraceCategory::kTlbShootdown,
                                .duration = cost,
                                .label = "tlb:shootdown",
                                .span = root,
                                .parent = parent_span});
    child(start, local_cost, "tlb:local-flush");
    if (victim_stall > SimTime::zero()) {
      // The concurrent stall every other core eats while the initiator
      // issues its flush loop (recorded on the initiator track; the victim
      // side shows up as the usual tlbi-bcast stall records).
      child(start, victim_stall, "tlb:victim-stall");
    }
    if (ipi_victims > 0) {
      child(start + local_cost, ipi_wait,
            "tlb:ipi-wait x" + std::to_string(ipi_victims));
    }
  }
  return cost;
}

void LinuxKernel::send_signal(os::ThreadId target) {
  if (!thread_alive(target)) return;
  const os::Thread& t = thread(target);
  if (t.state == os::ThreadState::kBlocked) {
    os::SyscallResult r;
    r.ok = false;
    r.value = -4;  // EINTR
    complete_blocked_syscall(target, r);
    return;
  }
  if (t.state == os::ThreadState::kRunning) {
    interrupt_core(t.core, SimTime::us(1), sim::TraceCategory::kIrq,
                   "signal");
  }
}

void LinuxKernel::on_thread_exit(os::Thread& thread) {
  os::Process& proc = process(thread.pid);
  if (proc.threads.size() != 1) return;  // not the last thread

  // Process teardown: every resident page is unmapped, generating the
  // "process termination" TLB flush storm of §4.2.2.
  std::uint64_t flushes = 0;
  std::uint64_t bytes = 0;
  for (const auto& [addr, area] : proc.address_space.areas()) {
    flushes += area.populated_pages;
    bytes += area.length;
    if (auto it = hugetlb_backing_.find({proc.pid, addr});
        it != hugetlb_backing_.end()) {
      hugetlbfs_.release(it->second, cgroups_.memory_cgroup_of(proc.pid));
      hugetlb_backing_.erase(it);
    }
  }
  if (bytes > 0) vnuma_.free(MemRegion::kApplication, bytes);
  if (flushes > 0) {
    const SimTime teardown =
        costs().unmap_per_page * static_cast<std::int64_t>(flushes) +
        tlb_shootdown(proc, thread.core, flushes);
    interrupt_core(thread.core, teardown, sim::TraceCategory::kSyscall,
                   "exit-teardown");
  }
}

}  // namespace hpcos::linuxk
