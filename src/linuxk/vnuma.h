// Virtual NUMA nodes (§4.1.2).
//
// A64FX firmware splits the physical address space into system and
// application areas exposed as distinct NUMA domains, so allocations by
// non-application processes can never fragment application memory. The
// model tracks allocation churn per region and derives a fragmentation
// factor that scales page-fault service cost: without vNUMA, system churn
// lands in the shared region and application faults slow down over time.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace hpcos::linuxk {

enum class MemRegion : std::uint8_t { kApplication, kSystem };

class VirtualNuma {
 public:
  // `enabled=false` models a conventional layout where both classes of
  // allocation share one region.
  VirtualNuma(bool enabled, std::uint64_t app_bytes,
              std::uint64_t system_bytes);

  bool enabled() const { return enabled_; }

  // Account an allocation/free. Frees add churn: recycled areas are what
  // fragments the physical allocator.
  bool allocate(MemRegion region, std::uint64_t bytes);
  void free(MemRegion region, std::uint64_t bytes);

  std::uint64_t used_bytes(MemRegion region) const;
  std::uint64_t capacity_bytes(MemRegion region) const;

  // Multiplier (>= 1) on application page-fault service time caused by
  // fragmentation of the region application allocations draw from.
  double app_fault_factor() const;

  // Fragmentation score in [0, 1] of the region serving `region` requests.
  double fragmentation(MemRegion region) const;

 private:
  struct Region {
    std::uint64_t capacity = 0;
    std::uint64_t used = 0;
    // Cumulative freed bytes; saturating proxy for buddy fragmentation.
    std::uint64_t churn = 0;
  };
  Region& region_for(MemRegion r);
  const Region& region_for(MemRegion r) const;
  static double frag_score(const Region& r);

  bool enabled_;
  Region app_;
  Region system_;
  Region shared_;  // used when vNUMA is disabled
};

}  // namespace hpcos::linuxk
