#include "linuxk/vnuma.h"

#include <algorithm>
#include <cmath>

namespace hpcos::linuxk {

VirtualNuma::VirtualNuma(bool enabled, std::uint64_t app_bytes,
                         std::uint64_t system_bytes)
    : enabled_(enabled) {
  HPCOS_CHECK(app_bytes > 0 && system_bytes > 0);
  app_.capacity = app_bytes;
  system_.capacity = system_bytes;
  shared_.capacity = app_bytes + system_bytes;
}

VirtualNuma::Region& VirtualNuma::region_for(MemRegion r) {
  if (!enabled_) return shared_;
  return r == MemRegion::kApplication ? app_ : system_;
}

const VirtualNuma::Region& VirtualNuma::region_for(MemRegion r) const {
  if (!enabled_) return shared_;
  return r == MemRegion::kApplication ? app_ : system_;
}

bool VirtualNuma::allocate(MemRegion region, std::uint64_t bytes) {
  Region& r = region_for(region);
  if (r.used + bytes > r.capacity) return false;
  r.used += bytes;
  return true;
}

void VirtualNuma::free(MemRegion region, std::uint64_t bytes) {
  Region& r = region_for(region);
  HPCOS_CHECK_MSG(bytes <= r.used, "vNUMA free below zero");
  r.used -= bytes;
  r.churn += bytes;
}

std::uint64_t VirtualNuma::used_bytes(MemRegion region) const {
  return region_for(region).used;
}

std::uint64_t VirtualNuma::capacity_bytes(MemRegion region) const {
  return region_for(region).capacity;
}

double VirtualNuma::frag_score(const Region& r) {
  if (r.churn == 0) return 0.0;
  // Churn equal to the region capacity ~= fully recycled memory; score
  // saturates at 1 with diminishing returns.
  const double x =
      static_cast<double>(r.churn) / static_cast<double>(r.capacity);
  return 1.0 - std::exp(-x);
}

double VirtualNuma::fragmentation(MemRegion region) const {
  return frag_score(region_for(region));
}

double VirtualNuma::app_fault_factor() const {
  // Fragmented buddy lists force order-0 fallbacks and compaction work;
  // a fully fragmented region roughly doubles fault service time.
  return 1.0 + fragmentation(MemRegion::kApplication);
}

}  // namespace hpcos::linuxk
