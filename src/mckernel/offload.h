// System-call delegation: IKC + proxy processes (§5).
//
// For every process on McKernel there is a proxy process on Linux whose
// job is to provide the execution context for offloaded system calls: the
// LWK thread blocks, an IKC message crosses to Linux, the proxy thread
// wakes and *actually invokes the call on the Linux kernel* (paying Linux's
// trap and service costs, plus any queueing on the busy assistant cores),
// and the result rides an IKC message back. Linux-side state (file
// descriptor tables etc.) thus lives where Linux expects it; McKernel just
// forwards the numbers it gets back — e.g. it has no fd table of its own.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/stats.h"
#include "ihk/ikc.h"
#include "mckernel/mckernel.h"
#include "obs/registry.h"

namespace hpcos::mck {

class SyscallOffloader;

// Linux-side proxy thread: parks in FUTEX_WAIT, drains its request queue
// by invoking the requested syscalls on the host kernel, replies via IKC.
class ProxyBody final : public os::ThreadBody {
 public:
  explicit ProxyBody(SyscallOffloader& offloader) : offloader_(offloader) {}

  void step(os::ThreadContext& ctx) override;

  void enqueue(ihk::IkcMessage message) {
    queue_.push_back(std::move(message));
  }
  bool parked() const { return parked_; }
  std::size_t backlog() const { return queue_.size(); }

 private:
  enum class Phase : std::uint8_t { kStart, kParked, kExecuted };

  SyscallOffloader& offloader_;
  std::deque<ihk::IkcMessage> queue_;
  std::optional<ihk::IkcMessage> current_;
  Phase phase_ = Phase::kStart;
  bool parked_ = false;
};

class SyscallOffloader {
 public:
  // `host` is the Linux kernel instance; proxies are spawned there with
  // `proxy_affinity` (the assistant cores). The channels come from the
  // IHK OS instance.
  SyscallOffloader(McKernel& lwk, os::NodeKernel& host,
                   ihk::IkcChannel& to_host, ihk::IkcChannel& to_lwk,
                   hw::CpuSet proxy_affinity);

  // Called by McKernel for a blocked, delegated syscall.
  void offload(os::ThreadId lwk_tid, os::Pid lwk_pid,
               const os::SyscallRequest& request);

  // Proxy-side: ship a completed request's result back to the LWK.
  void send_reply(ihk::IkcMessage message);

  // Register the offload path's counters and latency-split histograms
  // (offload.requests/.replies, offload.{wakeup,execute,reply,rtt}_us,
  // offload.proxy.backlog) and forward the registry to both IKC channels.
  void set_registry(obs::Registry* registry);

  // Current simulated time (proxy bodies stamp their execution start).
  SimTime now() { return lwk_.simulator().now(); }

  std::uint64_t requests() const { return requests_; }
  std::uint64_t replies() const { return replies_; }
  // Round-trip latency (LWK block -> LWK wake) observed so far, in us.
  const OnlineStats& roundtrip_us() const { return roundtrip_us_; }
  std::size_t proxy_count() const { return proxies_.size(); }

 private:
  struct Proxy {
    os::ThreadId host_tid = os::kInvalidThread;
    ProxyBody* body = nullptr;  // owned by the host thread record
  };
  // One in-flight offload per LWK thread (the thread blocks until the
  // reply): its start time, issuing core, and root span id.
  struct Pending {
    SimTime t0;
    hw::CoreId core = hw::kInvalidCore;
    std::uint64_t span = 0;
  };
  Proxy& ensure_proxy(os::Pid lwk_pid);
  void on_host_delivery(const ihk::IkcMessage& message);
  void on_lwk_delivery(const ihk::IkcMessage& message);
  // Emit the round trip as a parent-linked span tree (root + marshal,
  // both IKC hops, proxy wakeup and execute) into the LWK trace buffer.
  void record_offload_spans(const Pending& pending,
                            const ihk::IkcMessage& message, SimTime reply_at);

  McKernel& lwk_;
  os::NodeKernel& host_;
  ihk::IkcChannel& to_host_;
  ihk::IkcChannel& to_lwk_;
  hw::CpuSet proxy_affinity_;
  std::unordered_map<os::Pid, Proxy> proxies_;
  std::unordered_map<os::ThreadId, Pending> pending_;  // by sender tid
  std::uint64_t requests_ = 0;
  std::uint64_t replies_ = 0;
  OnlineStats roundtrip_us_;

  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* replies_counter_ = nullptr;
  LogHistogram* wakeup_us_h_ = nullptr;
  LogHistogram* execute_us_h_ = nullptr;
  LogHistogram* reply_us_h_ = nullptr;
  LogHistogram* rtt_us_h_ = nullptr;
  LogHistogram* backlog_h_ = nullptr;
};

}  // namespace hpcos::mck
