// McKernel configuration.
#pragma once

#include <cstdint>

#include "common/sim_time.h"
#include "hw/tlb.h"
#include "noise/analytic.h"
#include "oskernel/syscall.h"
#include "oskernel/costs.h"

namespace hpcos::mck {

// Tofu STAG ioctl request codes live in oskernel/syscall.h; aliased here
// for the PicoDriver's users.
using os::kTofuRegisterStag;
using os::kTofuDeregisterStag;

struct PicoDriverParams {
  bool enabled = false;
  // LWK-local fast path: pin + STAG table update without leaving the LWK.
  SimTime base_cost = SimTime::us(1);
  SimTime per_page_cost = SimTime::ns(150);
  hw::PageSize page_size = hw::PageSize::k2M;
};

struct McKernelConfig {
  os::KernelCosts costs;
  // Service times for the locally-implemented calls; everything else is
  // delegated to Linux through the proxy process.
  SimTime local_syscall_cost = SimTime::ns(400);
  SimTime mmap_cost = SimTime::ns(900);
  SimTime munmap_cost = SimTime::ns(600);
  // Large-page-first memory manager: the fault path is simple (pre-zeroed
  // pool, no LRU, no cgroup accounting).
  SimTime page_fault_cost = SimTime::us(2);
  hw::PageSize default_page_size = hw::PageSize::k2M;
  // Marshalling work on the LWK side before posting an offload message.
  SimTime offload_marshal_cost = SimTime::ns(300);

  PicoDriverParams picodriver;

  // Residual (hardware-floor) noise on LWK cores.
  noise::AnalyticNoiseProfile hw_noise;

  static McKernelConfig defaults();
};

}  // namespace hpcos::mck
