#include "mckernel/picodriver.h"

namespace hpcos::mck {

SimTime PicoDriver::register_stag(std::uint64_t bytes) {
  ++registrations_;
  const std::uint64_t page = hw::bytes(params_.page_size);
  const std::uint64_t pages = (bytes + page - 1) / page;
  return params_.base_cost +
         params_.per_page_cost * static_cast<std::int64_t>(pages);
}

SimTime PicoDriver::deregister_stag(std::uint64_t bytes) {
  const std::uint64_t page = hw::bytes(params_.page_size);
  const std::uint64_t pages = (bytes + page - 1) / page;
  // Teardown is cheaper: no pinning, just table invalidation.
  return params_.base_cost.scaled(0.5) +
         params_.per_page_cost.scaled(0.3) *
             static_cast<std::int64_t>(pages);
}

}  // namespace hpcos::mck
