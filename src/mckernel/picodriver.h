// Tofu PicoDriver: split-driver fast path for STAG registration (§5.1).
//
// Tofu memory registration ("STAG" setup) normally goes through ioctl()
// into the Linux Tofu driver; under the multi-kernel that means a syscall
// offload round-trip per registration. The PicoDriver moves the fast path
// into the LWK: the STAG table lives in memory shared with the Linux
// driver, and registration becomes a local operation. The paper credits
// this for McKernel's faster RDMA registration on GAMERA (§6.4).
#pragma once

#include <cstdint>

#include "mckernel/config.h"

namespace hpcos::mck {

class PicoDriver {
 public:
  explicit PicoDriver(PicoDriverParams params) : params_(params) {}

  bool enabled() const { return params_.enabled; }

  // Cost of registering `bytes` of LWK memory for RDMA. Large-page-backed
  // LWK memory keeps the pin loop short: one iteration per 2M page.
  SimTime register_stag(std::uint64_t bytes);
  SimTime deregister_stag(std::uint64_t bytes);

  std::uint64_t registrations() const { return registrations_; }

 private:
  PicoDriverParams params_;
  std::uint64_t registrations_ = 0;
};

}  // namespace hpcos::mck
