// McKernel's scheduler: tick-less, co-operative round-robin (§5).
//
// No timer interrupts, no wake-up preemption, no fairness bookkeeping —
// threads run until they block, yield, or exit. Combined with one-thread-
// per-core placement this is what makes the LWK noise-free by construction.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "hw/cpuset.h"
#include "obs/registry.h"
#include "oskernel/scheduler.h"

namespace hpcos::mck {

class LwkScheduler final : public os::Scheduler {
 public:
  LwkScheduler(std::size_t num_cores, hw::CpuSet owned_cores);

  hw::CoreId select_core(const os::Thread& thread,
                         const std::vector<std::size_t>& load) override;
  void enqueue(hw::CoreId core, os::Thread& thread) override;
  os::ThreadId pick_next(hw::CoreId core) override;
  void remove(const os::Thread& thread) override;
  std::size_t runnable_count(hw::CoreId core) const override;
  bool preempt_on_wakeup(const os::Thread& woken,
                         const os::Thread& running) const override;
  bool needs_tick(hw::CoreId core, bool core_busy) const override;
  bool should_resched_on_tick(hw::CoreId core, os::Thread& running) override;
  void charge(os::Thread& thread, SimTime elapsed) override;

  // Counts successful dispatches (lwk.sched.dispatches); set by McKernel
  // when a registry is wired.
  void set_dispatch_counter(obs::Counter* counter) {
    dispatch_counter_ = counter;
  }

 private:
  obs::Counter* dispatch_counter_ = nullptr;
  hw::CpuSet owned_;
  std::vector<std::deque<os::ThreadId>> queues_;  // FIFO round robin
  std::unordered_map<os::ThreadId, hw::CoreId> queued_on_;
};

}  // namespace hpcos::mck
