#include "mckernel/offload.h"

namespace hpcos::mck {

void ProxyBody::step(os::ThreadContext& ctx) {
  if (phase_ == Phase::kExecuted) {
    // The host kernel just completed the delegated call.
    ihk::IkcMessage reply = std::move(*current_);
    current_.reset();
    reply.result = ctx.last_syscall();
    offloader_.send_reply(std::move(reply));
  }
  if (queue_.empty()) {
    phase_ = Phase::kParked;
    parked_ = true;
    ctx.invoke(os::Syscall::kFutex, os::SyscallArgs{.arg0 = 0});
    return;
  }
  parked_ = false;
  current_ = std::move(queue_.front());
  queue_.pop_front();
  phase_ = Phase::kExecuted;
  current_->proxy_start = offloader_.now();
  ctx.invoke(current_->request.no, current_->request.args);
}

SyscallOffloader::SyscallOffloader(McKernel& lwk, os::NodeKernel& host,
                                   ihk::IkcChannel& to_host,
                                   ihk::IkcChannel& to_lwk,
                                   hw::CpuSet proxy_affinity)
    : lwk_(lwk),
      host_(host),
      to_host_(to_host),
      to_lwk_(to_lwk),
      proxy_affinity_(std::move(proxy_affinity)) {
  to_host_.set_receiver(
      [this](const ihk::IkcMessage& m) { on_host_delivery(m); });
  to_lwk_.set_receiver(
      [this](const ihk::IkcMessage& m) { on_lwk_delivery(m); });
  lwk_.set_offloader(this);
}

void SyscallOffloader::set_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    requests_counter_ = nullptr;
    replies_counter_ = nullptr;
    wakeup_us_h_ = nullptr;
    execute_us_h_ = nullptr;
    reply_us_h_ = nullptr;
    rtt_us_h_ = nullptr;
    backlog_h_ = nullptr;
  } else {
    requests_counter_ = registry->counter("offload.requests");
    replies_counter_ = registry->counter("offload.replies");
    wakeup_us_h_ = registry->histogram("offload.wakeup_us", 0.1, 1e5, 48);
    execute_us_h_ = registry->histogram("offload.execute_us", 0.1, 1e5, 48);
    reply_us_h_ = registry->histogram("offload.reply_us", 0.1, 1e5, 48);
    rtt_us_h_ = registry->histogram("offload.rtt_us", 0.1, 1e5, 48);
    backlog_h_ =
        registry->histogram("offload.proxy.backlog", 1.0, 1024.0, 24);
  }
  to_host_.set_registry(registry);
  to_lwk_.set_registry(registry);
}

void SyscallOffloader::offload(os::ThreadId lwk_tid, os::Pid lwk_pid,
                               const os::SyscallRequest& request) {
  ++requests_;
  obs::bump(requests_counter_);
  Pending pending;
  pending.t0 = lwk_.simulator().now();
  pending.core = lwk_.thread(lwk_tid).core;
  sim::TraceBuffer* tb = lwk_.trace();
  if (tb != nullptr && tb->enabled()) pending.span = tb->new_span();
  pending_[lwk_tid] = pending;

  ihk::IkcMessage m;
  m.sender = lwk_tid;
  m.sender_pid = lwk_pid;
  m.request = request;
  m.span = pending.span;
  m.offload_start = pending.t0;
  // Marshalling on the LWK side happens before the doorbell rings.
  const SimTime marshal = lwk_.config().offload_marshal_cost;
  lwk_.simulator().schedule_after(
      marshal, [this, m = std::move(m)] { to_host_.post(m); },
      "lwk.offload.marshal");
}

void SyscallOffloader::send_reply(ihk::IkcMessage message) {
  message.is_reply = true;
  to_lwk_.post(std::move(message));
}

SyscallOffloader::Proxy& SyscallOffloader::ensure_proxy(os::Pid lwk_pid) {
  auto it = proxies_.find(lwk_pid);
  if (it != proxies_.end()) return it->second;

  // One proxy process per McKernel process, living on the host's system
  // cores (where it cannot disturb application cores).
  auto body = std::make_unique<ProxyBody>(*this);
  ProxyBody* raw = body.get();
  os::SpawnAttrs attrs;
  attrs.name = "mcexec-proxy-" + std::to_string(lwk_pid);
  attrs.affinity = proxy_affinity_;
  const os::ThreadId tid = host_.spawn(std::move(body), std::move(attrs));
  auto [ins, _] = proxies_.emplace(lwk_pid, Proxy{tid, raw});
  return ins->second;
}

void SyscallOffloader::on_host_delivery(const ihk::IkcMessage& message) {
  Proxy& proxy = ensure_proxy(message.sender_pid);
  ihk::IkcMessage stamped = message;
  stamped.host_delivered_at = lwk_.simulator().now();
  proxy.body->enqueue(std::move(stamped));
  obs::observe(backlog_h_, static_cast<double>(proxy.body->backlog()));
  // Ring the proxy's doorbell if it is actually parked in FUTEX_WAIT. (It
  // may be Ready-but-not-dispatched after a previous wake, in which case
  // it will drain the queue on its own.)
  if (proxy.body->parked() &&
      host_.thread(proxy.host_tid).state == os::ThreadState::kBlocked) {
    os::SyscallResult wake;
    wake.ok = true;
    host_.complete_blocked_syscall(proxy.host_tid, wake);
  }
}

void SyscallOffloader::on_lwk_delivery(const ihk::IkcMessage& message) {
  ++replies_;
  obs::bump(replies_counter_);
  os::SyscallResult result = message.result;
  result.path = os::SyscallResult::Path::kOffloaded;
  const SimTime reply_at = lwk_.simulator().now();
  if (auto it = pending_.find(message.sender); it != pending_.end()) {
    const Pending& pending = it->second;
    const SimTime rtt = reply_at - pending.t0;
    roundtrip_us_.add(rtt.to_us());
    // Latency split: enqueue -> proxy starts executing -> reply posted ->
    // reply delivered (the reply rides to_lwk_, so it was posted one
    // channel latency ago).
    const SimTime reply_posted = reply_at - to_lwk_.latency();
    obs::observe(wakeup_us_h_, (message.proxy_start - pending.t0).to_us());
    obs::observe(execute_us_h_,
                 (reply_posted - message.proxy_start).to_us());
    obs::observe(reply_us_h_, (reply_at - reply_posted).to_us());
    obs::observe(rtt_us_h_, rtt.to_us());
    if (pending.span != 0) record_offload_spans(pending, message, reply_at);
    pending_.erase(it);
  }
  lwk_.complete_blocked_syscall(message.sender, result);
}

void SyscallOffloader::record_offload_spans(const Pending& pending,
                                            const ihk::IkcMessage& message,
                                            SimTime reply_at) {
  sim::TraceBuffer* tb = lwk_.trace();
  if (tb == nullptr || !tb->enabled()) return;
  const SimTime marshal = lwk_.config().offload_marshal_cost;
  const SimTime reply_posted = reply_at - to_lwk_.latency();
  auto child = [&](SimTime start, SimTime duration, std::string label) {
    tb->record(sim::TraceRecord{.time = start,
                                .core = pending.core,
                                .category = sim::TraceCategory::kSyscallOffload,
                                .duration = duration,
                                .label = std::move(label),
                                .span = tb->new_span(),
                                .parent = pending.span});
  };
  tb->record(sim::TraceRecord{.time = pending.t0,
                              .core = pending.core,
                              .category = sim::TraceCategory::kSyscallOffload,
                              .duration = reply_at - pending.t0,
                              .label = "offload:" + to_string(message.request.no),
                              .span = pending.span,
                              .parent = 0});
  child(pending.t0, marshal, "offload:marshal");
  child(message.host_delivered_at - to_host_.latency(), to_host_.latency(),
        "ikc:to_host");
  child(message.host_delivered_at,
        message.proxy_start - message.host_delivered_at, "proxy:wakeup");
  child(message.proxy_start, reply_posted - message.proxy_start,
        "proxy:execute");
  child(reply_posted, to_lwk_.latency(), "ikc:to_lwk");
}

}  // namespace hpcos::mck
