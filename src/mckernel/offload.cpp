#include "mckernel/offload.h"

namespace hpcos::mck {

void ProxyBody::step(os::ThreadContext& ctx) {
  if (phase_ == Phase::kExecuted) {
    // The host kernel just completed the delegated call.
    ihk::IkcMessage reply = std::move(*current_);
    current_.reset();
    reply.result = ctx.last_syscall();
    offloader_.send_reply(std::move(reply));
  }
  if (queue_.empty()) {
    phase_ = Phase::kParked;
    parked_ = true;
    ctx.invoke(os::Syscall::kFutex, os::SyscallArgs{.arg0 = 0});
    return;
  }
  parked_ = false;
  current_ = std::move(queue_.front());
  queue_.pop_front();
  phase_ = Phase::kExecuted;
  ctx.invoke(current_->request.no, current_->request.args);
}

SyscallOffloader::SyscallOffloader(McKernel& lwk, os::NodeKernel& host,
                                   ihk::IkcChannel& to_host,
                                   ihk::IkcChannel& to_lwk,
                                   hw::CpuSet proxy_affinity)
    : lwk_(lwk),
      host_(host),
      to_host_(to_host),
      to_lwk_(to_lwk),
      proxy_affinity_(std::move(proxy_affinity)) {
  to_host_.set_receiver(
      [this](const ihk::IkcMessage& m) { on_host_delivery(m); });
  to_lwk_.set_receiver(
      [this](const ihk::IkcMessage& m) { on_lwk_delivery(m); });
  lwk_.set_offloader(this);
}

void SyscallOffloader::offload(os::ThreadId lwk_tid, os::Pid lwk_pid,
                               const os::SyscallRequest& request) {
  ++requests_;
  request_start_[lwk_tid] = lwk_.simulator().now();

  ihk::IkcMessage m;
  m.sender = lwk_tid;
  m.sender_pid = lwk_pid;
  m.request = request;
  // Marshalling on the LWK side happens before the doorbell rings.
  const SimTime marshal = lwk_.config().offload_marshal_cost;
  lwk_.simulator().schedule_after(
      marshal, [this, m = std::move(m)] { to_host_.post(m); });
}

void SyscallOffloader::send_reply(ihk::IkcMessage message) {
  message.is_reply = true;
  to_lwk_.post(std::move(message));
}

SyscallOffloader::Proxy& SyscallOffloader::ensure_proxy(os::Pid lwk_pid) {
  auto it = proxies_.find(lwk_pid);
  if (it != proxies_.end()) return it->second;

  // One proxy process per McKernel process, living on the host's system
  // cores (where it cannot disturb application cores).
  auto body = std::make_unique<ProxyBody>(*this);
  ProxyBody* raw = body.get();
  os::SpawnAttrs attrs;
  attrs.name = "mcexec-proxy-" + std::to_string(lwk_pid);
  attrs.affinity = proxy_affinity_;
  const os::ThreadId tid = host_.spawn(std::move(body), std::move(attrs));
  auto [ins, _] = proxies_.emplace(lwk_pid, Proxy{tid, raw});
  return ins->second;
}

void SyscallOffloader::on_host_delivery(const ihk::IkcMessage& message) {
  Proxy& proxy = ensure_proxy(message.sender_pid);
  proxy.body->enqueue(message);
  // Ring the proxy's doorbell if it is actually parked in FUTEX_WAIT. (It
  // may be Ready-but-not-dispatched after a previous wake, in which case
  // it will drain the queue on its own.)
  if (proxy.body->parked() &&
      host_.thread(proxy.host_tid).state == os::ThreadState::kBlocked) {
    os::SyscallResult wake;
    wake.ok = true;
    host_.complete_blocked_syscall(proxy.host_tid, wake);
  }
}

void SyscallOffloader::on_lwk_delivery(const ihk::IkcMessage& message) {
  ++replies_;
  os::SyscallResult result = message.result;
  result.path = os::SyscallResult::Path::kOffloaded;
  if (auto it = request_start_.find(message.sender);
      it != request_start_.end()) {
    const SimTime rtt = lwk_.simulator().now() - it->second;
    roundtrip_us_.add(rtt.to_us());
    request_start_.erase(it);
  }
  lwk_.complete_blocked_syscall(message.sender, result);
}

}  // namespace hpcos::mck
