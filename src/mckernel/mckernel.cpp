#include "mckernel/mckernel.h"

#include "mckernel/offload.h"

#include "noise/profiles.h"

namespace hpcos::mck {
namespace {

// Fault classification on the LWK: k4K/k64K are first-level ("base") page
// sizes; anything larger takes the large-page path (hugeTLB-equivalent).
os::FaultKind lwk_fault_kind(hw::PageSize page, bool bulk_populate) {
  const bool base =
      page == hw::PageSize::k4K || page == hw::PageSize::k64K;
  return os::classify_fault(page, base ? page : hw::PageSize::k64K,
                            bulk_populate);
}

}  // namespace

McKernelConfig McKernelConfig::defaults() {
  McKernelConfig c;
  // LWK costs: simple code paths, no spectre/meltdown mitigations, no
  // cgroup walk on the fault path.
  c.costs.context_switch = SimTime::ns(600);
  c.costs.syscall_trap = SimTime::ns(80);
  c.costs.tick_duration = SimTime::zero();          // tick-less
  c.costs.residual_tick_duration = SimTime::zero();
  c.costs.page_fault_base = SimTime::ns(600);
  c.costs.page_fault_large = SimTime::us(2);
  c.costs.unmap_per_page = SimTime::ns(40);
  c.hw_noise = noise::fugaku_mckernel_profile();
  return c;
}

McKernel::McKernel(sim::Simulator& simulator,
                   const hw::NodeTopology& topology, hw::CpuSet owned_cores,
                   McKernelConfig config, Seed seed, sim::TraceBuffer* trace,
                   os::ChipStallBus* stall_bus)
    : NodeKernel(simulator, topology, owned_cores, config.costs, trace),
      config_(std::move(config)),
      lwk_sched_(static_cast<std::size_t>(topology.logical_cores()),
                 this->owned_cores()),
      pico_(config_.picodriver),
      rng_(seed, /*stream=*/0x3C0) {
  if (stall_bus != nullptr) stall_bus->attach(*this);
}

void McKernel::boot() {
  HPCOS_CHECK_MSG(!booted_, "McKernel::boot called twice");
  booted_ = true;
  background_ = std::make_unique<noise::BackgroundActivity>(
      *this, config_.hw_noise, owned_cores(),
      hw::CpuSet(static_cast<std::size_t>(topology().logical_cores())),
      /*bus=*/nullptr, rng_.split(7));
  background_->start();
}

void McKernel::set_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    local_counter_ = nullptr;
    offload_counter_ = nullptr;
    stag_counter_ = nullptr;
    fault_counter_ = nullptr;
    lwk_sched_.set_dispatch_counter(nullptr);
    set_interrupt_ns_counter(nullptr);
    return;
  }
  set_interrupt_ns_counter(registry->counter("lwk.interrupt_ns"));
  local_counter_ = registry->counter("lwk.syscalls.local");
  offload_counter_ = registry->counter("lwk.syscalls.offloaded");
  stag_counter_ = registry->counter("lwk.stag.registrations");
  fault_counter_ = registry->counter("lwk.page_faults");
  lwk_sched_.set_dispatch_counter(registry->counter("lwk.sched.dispatches"));
}

bool McKernel::is_local_syscall(os::Syscall no) {
  using S = os::Syscall;
  switch (no) {
    case S::kMmap:
    case S::kMunmap:
    case S::kBrk:
    case S::kFutex:
    case S::kClone:
    case S::kExitGroup:
    case S::kGetTimeOfDay:
    case S::kSchedYield:
    case S::kNanosleep:
    case S::kSignal:
    case S::kKill:
      return true;
    default:
      return false;  // read/write/open/close/stat/ioctl/perf_event_open...
  }
}

os::NodeKernel::SyscallDisposition McKernel::handle_syscall(
    os::Thread& thread, const os::SyscallRequest& req) {
  using S = os::Syscall;

  // PicoDriver intercept: Tofu STAG registration stays LWK-local when the
  // split driver is loaded (otherwise ioctl is offloaded like any other).
  if (req.no == S::kIoctl && pico_.enabled() &&
      (req.args.arg2 == kTofuRegisterStag ||
       req.args.arg2 == kTofuDeregisterStag)) {
    ++local_count_;
    obs::bump(local_counter_);
    if (req.args.arg2 == kTofuRegisterStag) obs::bump(stag_counter_);
    SyscallDisposition d;
    d.service_time = req.args.arg2 == kTofuRegisterStag
                         ? pico_.register_stag(req.args.arg1)
                         : pico_.deregister_stag(req.args.arg1);
    d.result.ok = true;
    d.result.path = os::SyscallResult::Path::kFastDriver;
    return d;
  }

  if (!is_local_syscall(req.no)) {
    ++offload_count_;
    obs::bump(offload_counter_);
    HPCOS_CHECK_MSG(offloader_ != nullptr,
                    "offloaded syscall without a proxy path: " +
                        to_string(req.no));
    SyscallDisposition d;
    d.kind = SyscallDisposition::Kind::kBlocked;
    offloader_->offload(thread.tid, thread.pid, req);
    return d;
  }

  ++local_count_;
  obs::bump(local_counter_);
  switch (req.no) {
    case S::kMmap:
      return do_mmap(thread, req.args);
    case S::kMunmap:
      return do_munmap(thread, req.args);
    case S::kNanosleep: {
      SyscallDisposition d;
      d.kind = SyscallDisposition::Kind::kBlocked;
      const os::ThreadId tid = thread.tid;
      const auto dt = SimTime::ns(static_cast<std::int64_t>(req.args.arg0));
      simulator().schedule_after(
          dt,
          [this, tid] {
            os::SyscallResult r;
            r.ok = true;
            complete_blocked_syscall(tid, r);
          },
          "lwk.sleep.wake");
      return d;
    }
    case S::kFutex:
      if (req.args.arg0 == 0) {
        SyscallDisposition d;
        d.kind = SyscallDisposition::Kind::kBlocked;
        return d;
      }
      break;
    case S::kKill:
      send_signal(static_cast<os::ThreadId>(req.args.arg0));
      break;
    default:
      break;
  }
  SyscallDisposition d;
  d.service_time = config_.local_syscall_cost;
  d.result.ok = true;
  d.result.path = os::SyscallResult::Path::kLocal;
  return d;
}

os::NodeKernel::SyscallDisposition McKernel::do_mmap(
    os::Thread& thread, const os::SyscallArgs& args) {
  const std::uint64_t length = args.arg0;
  os::Process& proc = process(thread.pid);

  SyscallDisposition d;
  d.service_time = config_.mmap_cost;
  d.result.ok = true;
  d.result.path = os::SyscallResult::Path::kLocal;

  // Large-page-first; the process's preference can force the base page.
  const hw::PageSize page =
      proc.attrs.preferred_page_size == hw::PageSize::k4K ||
              proc.attrs.preferred_page_size == hw::PageSize::k64K
          ? proc.attrs.preferred_page_size
          : config_.default_page_size;

  // Retained physical memory: freed ranges stay with the process, so a
  // re-allocation of pooled bytes is mapped pre-populated with no fault
  // cost — exactly the behaviour that sidesteps Linux's heap churn (§6.4,
  // Lulesh).
  auto& pool = process_pool_[proc.pid];
  if (pool >= length) {
    pool -= length;
    const std::uint64_t addr =
        proc.address_space.map(length, page, os::PagingPolicy::kPrePopulate);
    // Zero-cost remap of retained memory: mark it in the trace so the
    // viewer shows why the LWK side has no fault storm here.
    sim::TraceBuffer* tb = trace();
    if (tb != nullptr && tb->enabled()) {
      tb->record(sim::TraceRecord{.time = simulator().now(),
                                  .core = thread.core,
                                  .category = sim::TraceCategory::kPageFault,
                                  .duration = SimTime::zero(),
                                  .label = "fault:pool-reuse",
                                  .span = tb->new_span(),
                                  .parent = 0});
    }
    d.result.value = static_cast<std::int64_t>(addr);
    return d;
  }

  const std::uint64_t addr =
      proc.address_space.map(length, page, proc.attrs.paging);
  if (proc.attrs.paging == os::PagingPolicy::kPrePopulate) {
    const auto it = proc.address_space.areas().find(addr);
    const std::uint64_t faults = it->second.populated_pages;
    const SimTime cost =
        config_.page_fault_cost * static_cast<std::int64_t>(faults);
    d.service_time += cost;
    record_fault_spans(thread.core, lwk_fault_kind(page, /*bulk=*/true),
                       faults, cost);
  }
  d.result.value = static_cast<std::int64_t>(addr);
  return d;
}

os::NodeKernel::SyscallDisposition McKernel::do_munmap(
    os::Thread& thread, const os::SyscallArgs& args) {
  os::Process& proc = process(thread.pid);
  const auto res = proc.address_space.unmap(args.arg0, args.arg1);
  process_pool_[proc.pid] += args.arg1;

  SyscallDisposition d;
  // Threads never migrate on the LWK, so invalidation is a local-flush
  // loop — no broadcast, no IPIs (§5 + §4.2.2 contrast).
  d.service_time =
      config_.munmap_cost +
      costs().unmap_per_page * static_cast<std::int64_t>(res.pages_released);
  d.result.ok = true;
  d.result.path = os::SyscallResult::Path::kLocal;
  return d;
}

SimTime McKernel::touch_memory(os::Pid pid, std::uint64_t addr,
                               std::uint64_t length) {
  os::Process& proc = process(pid);
  const os::FaultBatch batch = proc.address_space.touch_batch(addr, length);
  if (batch.faults == 0) return SimTime::zero();
  obs::bump(fault_counter_, batch.faults);
  const SimTime cost =
      config_.page_fault_cost * static_cast<std::int64_t>(batch.faults);
  record_fault_spans(hw::kInvalidCore,
                     lwk_fault_kind(batch.page_size, /*bulk=*/false),
                     batch.faults, cost);
  return cost;
}

void McKernel::record_fault_spans(hw::CoreId core, os::FaultKind kind,
                                  std::uint64_t faults, SimTime cost) {
  sim::TraceBuffer* tb = trace();
  if (tb == nullptr || !tb->enabled() || faults == 0) return;
  const SimTime start = simulator().now();
  const std::uint64_t root = tb->new_span();
  tb->record(sim::TraceRecord{.time = start,
                              .core = core,
                              .category = sim::TraceCategory::kPageFault,
                              .duration = cost,
                              .label = "fault:" + os::to_string(kind),
                              .span = root,
                              .parent = 0});
  tb->record(sim::TraceRecord{.time = start,
                              .core = core,
                              .category = sim::TraceCategory::kPageFault,
                              .duration = cost,
                              .label = "fault:populate",
                              .span = tb->new_span(),
                              .parent = root});
}

void McKernel::send_signal(os::ThreadId target) {
  if (!thread_alive(target)) return;
  const os::Thread& t = thread(target);
  if (t.state == os::ThreadState::kBlocked) {
    os::SyscallResult r;
    r.ok = false;
    r.value = -4;  // EINTR
    complete_blocked_syscall(target, r);
    return;
  }
  if (t.state == os::ThreadState::kRunning) {
    interrupt_core(t.core, SimTime::ns(500), sim::TraceCategory::kIrq,
                   "signal");
  }
  // Ready threads observe the signal when dispatched; nothing to do.
}

void McKernel::on_thread_exit(os::Thread& thread) {
  os::Process& proc = process(thread.pid);
  if (proc.threads.size() != 1) return;
  // LWK teardown: physical memory goes back to the LWK allocator with a
  // local flush only — no chip-wide storm.
  std::uint64_t pages = 0;
  for (const auto& [_, area] : proc.address_space.areas()) {
    pages += area.populated_pages;
  }
  process_pool_.erase(proc.pid);
  if (pages > 0) {
    interrupt_core(thread.core,
                   costs().unmap_per_page * static_cast<std::int64_t>(pages),
                   sim::TraceCategory::kSyscall, "lwk-exit-teardown");
  }
}

std::uint64_t McKernel::pooled_bytes(os::Pid pid) const {
  auto it = process_pool_.find(pid);
  return it == process_pool_.end() ? 0 : it->second;
}

}  // namespace hpcos::mck
