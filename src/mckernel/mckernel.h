// McKernel: the lightweight co-kernel (§5).
//
// Implements only the performance-sensitive system calls — memory
// management (large-page-first, per-process retained physical memory),
// threads and the co-operative tick-less scheduler, POSIX signaling —
// and delegates everything else to Linux through the proxy process (see
// offload.h). Runs a Linux-compatible ABI: the same ThreadBody workloads
// run unmodified on either kernel.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "mckernel/config.h"
#include "mckernel/lwk_scheduler.h"
#include "mckernel/picodriver.h"
#include "noise/background.h"
#include "oskernel/kernel.h"
#include "oskernel/stall_bus.h"

namespace hpcos::mck {

class SyscallOffloader;

class McKernel final : public os::NodeKernel {
 public:
  McKernel(sim::Simulator& simulator, const hw::NodeTopology& topology,
           hw::CpuSet owned_cores, McKernelConfig config, Seed seed,
           sim::TraceBuffer* trace = nullptr,
           os::ChipStallBus* stall_bus = nullptr);

  std::string name() const override { return "mckernel"; }

  // Start the residual hardware-floor generators. (There is nothing else
  // to start: no ticks, no daemons.)
  void boot();
  bool booted() const { return booted_; }

  // Wire the delegation path; without it, non-local syscalls fail hard.
  void set_offloader(SyscallOffloader* offloader) { offloader_ = offloader; }

  // Register the LWK's counters (lwk.syscalls.local/.offloaded,
  // lwk.stag.registrations, lwk.page_faults, lwk.sched.dispatches).
  // nullptr detaches; hot paths keep exactly one branch either way.
  void set_registry(obs::Registry* registry);

  const McKernelConfig& config() const { return config_; }
  PicoDriver& picodriver() { return pico_; }

  // The LWK's local syscall set (§5: "McKernel implements only a small set
  // of performance sensitive system calls").
  static bool is_local_syscall(os::Syscall no);

  // First-touch fault-in, LWK fault path (cheap, no fragmentation effects).
  SimTime touch_memory(os::Pid pid, std::uint64_t addr, std::uint64_t length);

  // POSIX signal delivery: wakes blocked targets (EINTR), interrupts
  // running ones.
  void send_signal(os::ThreadId target);

  std::uint64_t local_syscalls() const { return local_count_; }
  std::uint64_t offloaded_syscalls() const { return offload_count_; }
  // Bytes of physical memory retained in a process's local pool (freed by
  // the app, kept by the LWK for reuse).
  std::uint64_t pooled_bytes(os::Pid pid) const;

 protected:
  os::Scheduler& sched() override { return lwk_sched_; }
  SyscallDisposition handle_syscall(os::Thread& thread,
                                    const os::SyscallRequest& req) override;
  void on_thread_exit(os::Thread& thread) override;

 private:
  SyscallDisposition do_mmap(os::Thread& thread, const os::SyscallArgs& args);
  SyscallDisposition do_munmap(os::Thread& thread,
                               const os::SyscallArgs& args);

  // Record a "fault:<kind>" span with a populate child for `faults` page
  // faults costing `cost` in total. No-op without an enabled trace.
  void record_fault_spans(hw::CoreId core, os::FaultKind kind,
                          std::uint64_t faults, SimTime cost);

  McKernelConfig config_;
  LwkScheduler lwk_sched_;
  PicoDriver pico_;
  SyscallOffloader* offloader_ = nullptr;
  std::unique_ptr<noise::BackgroundActivity> background_;
  RngStream rng_;
  bool booted_ = false;

  std::unordered_map<os::Pid, std::uint64_t> process_pool_;
  std::uint64_t local_count_ = 0;
  std::uint64_t offload_count_ = 0;

  obs::Counter* local_counter_ = nullptr;
  obs::Counter* offload_counter_ = nullptr;
  obs::Counter* stag_counter_ = nullptr;
  obs::Counter* fault_counter_ = nullptr;
};

}  // namespace hpcos::mck
