#include "mckernel/lwk_scheduler.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace hpcos::mck {

LwkScheduler::LwkScheduler(std::size_t num_cores, hw::CpuSet owned_cores)
    : owned_(std::move(owned_cores)), queues_(num_cores) {}

hw::CoreId LwkScheduler::select_core(const os::Thread& thread,
                                     const std::vector<std::size_t>& load) {
  const hw::CpuSet allowed = thread.affinity & owned_;
  HPCOS_CHECK_MSG(allowed.any(), "no allowed core for LWK thread");
  // Threads stay put once placed (the LWK never migrates); fresh threads
  // fill the least-loaded core, lowest id first — matching mcexec's
  // deterministic one-rank/thread-per-core layout.
  if (thread.core != hw::kInvalidCore && allowed.test(thread.core)) {
    return thread.core;
  }
  hw::CoreId best = hw::kInvalidCore;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (hw::CoreId c = allowed.first(); c != hw::kInvalidCore;
       c = allowed.next(c)) {
    if (load[static_cast<std::size_t>(c)] < best_load) {
      best_load = load[static_cast<std::size_t>(c)];
      best = c;
    }
  }
  return best;
}

void LwkScheduler::enqueue(hw::CoreId core, os::Thread& thread) {
  queues_.at(static_cast<std::size_t>(core)).push_back(thread.tid);
  queued_on_[thread.tid] = core;
}

os::ThreadId LwkScheduler::pick_next(hw::CoreId core) {
  auto& q = queues_.at(static_cast<std::size_t>(core));
  if (q.empty()) return os::kInvalidThread;
  const os::ThreadId tid = q.front();
  q.pop_front();
  queued_on_.erase(tid);
  obs::bump(dispatch_counter_);
  return tid;
}

void LwkScheduler::remove(const os::Thread& thread) {
  auto it = queued_on_.find(thread.tid);
  if (it == queued_on_.end()) return;
  auto& q = queues_.at(static_cast<std::size_t>(it->second));
  std::erase(q, thread.tid);
  queued_on_.erase(it);
}

std::size_t LwkScheduler::runnable_count(hw::CoreId core) const {
  return queues_.at(static_cast<std::size_t>(core)).size();
}

bool LwkScheduler::preempt_on_wakeup(const os::Thread&,
                                     const os::Thread&) const {
  return false;  // strictly co-operative
}

bool LwkScheduler::needs_tick(hw::CoreId, bool) const {
  return false;  // tick-less
}

bool LwkScheduler::should_resched_on_tick(hw::CoreId, os::Thread&) {
  return false;
}

void LwkScheduler::charge(os::Thread&, SimTime) {}

}  // namespace hpcos::mck
