// MILC — SU(3) lattice QCD (MIMD Lattice Computation; CORAL/APEX).
//
// Model: conjugate-gradient sweeps over a 4D lattice. Every CG iteration
// performs a Dslash operator application (8-neighbor halo exchange in 4D)
// and two global dot products (allreduce). The small per-iteration
// synchronization interval is what makes MILC noise-sensitive at scale.
#pragma once

#include "apps/common.h"

namespace hpcos::apps {

struct MilcParams {
  int iterations = 250;        // CG iterations measured
  // 16^4 sites per thread x ~1.2k flops per site per Dslash.
  double flops_per_thread = 7.8e7;
  std::uint64_t working_set_per_thread = 64ull << 20;
  double mem_bound_fraction = 0.8;
  std::uint64_t halo_bytes = 768ull << 10;  // 4D surface, SU(3) spinors
};

class Milc final : public cluster::Workload {
 public:
  explicit Milc(MilcParams params = {}) : params_(params) {}

  std::string name() const override { return "Milc"; }
  int iterations() const override { return params_.iterations; }

  cluster::RankWork rank_work(
      int iteration, const cluster::JobConfig& job,
      const cluster::OsEnvironment& env) const override;

 private:
  MilcParams params_;
};

}  // namespace hpcos::apps
