// Shared helpers for the application models.
//
// Each model is a coarse but mechanistically faithful description of the
// real code: per-iteration compute volume, working set (TLB reach),
// allocation behaviour, and communication pattern. Absolute times are
// derived from the platform's per-core throughput so the same model runs
// plausibly on both machines; the study only interprets *relative*
// (Linux vs McKernel, same platform) results.
#pragma once

#include "cluster/osenv.h"
#include "cluster/workload.h"

namespace hpcos::apps {

// Convert a per-rank flop count into compute time on the environment's
// cores (threads of a rank share the work).
inline SimTime compute_time_for(double flops_per_rank,
                                const cluster::JobConfig& job,
                                const cluster::OsEnvironment& env) {
  const double gflops =
      env.platform.core_gflops * static_cast<double>(job.threads_per_rank);
  return SimTime::from_sec(flops_per_rank / (gflops * 1e9));
}

inline std::uint64_t mib(std::uint64_t v) { return v << 20; }
inline std::uint64_t gib(std::uint64_t v) { return v << 30; }

}  // namespace hpcos::apps
