#include "apps/milc.h"

namespace hpcos::apps {

cluster::RankWork Milc::rank_work(int iteration,
                                  const cluster::JobConfig& job,
                                  const cluster::OsEnvironment& env) const {
  cluster::RankWork w;
  const double flops = params_.flops_per_thread *
                       static_cast<double>(job.threads_per_rank);
  w.compute = compute_time_for(flops, job, env);
  w.working_set_bytes = params_.working_set_per_thread *
                        static_cast<std::uint64_t>(job.threads_per_rank);
  w.mem_bound_fraction = params_.mem_bound_fraction;
  w.allreduces = 2;  // CG dot products
  w.thread_barriers = 8;  // OpenMP joins inside the iteration
  w.allreduce_bytes = 16;
  w.halo_neighbors = 8;  // forward/backward in 4 dimensions
  w.halo_bytes = params_.halo_bytes;
  w.imbalance_sigma = 0.01;
  // Regular 4D lattice arrays are THP-friendly.
  w.large_page_coverage_hint = 0.85;
  if (iteration == 0) w.touch_bytes = w.working_set_bytes;
  return w;
}

}  // namespace hpcos::apps
