// AMG2013 — parallel algebraic multigrid solver (CORAL; Henson & Yang).
//
// Model: one solve iteration is a V-cycle over `levels` grids. The fine
// levels dominate compute; each coarser level halves the local work but
// still costs a latency-bound communication step (halo + small allreduce),
// which is why AMG is famously sensitive to network latency and OS noise
// at scale while its per-iteration compute shrinks.
#pragma once

#include "apps/common.h"

namespace hpcos::apps {

struct AmgParams {
  int iterations = 200;
  int levels = 8;
  // ~60k rows per rank-thread at ~500 flops each on the finest level.
  double fine_level_flops_per_thread = 3.0e7;
  std::uint64_t working_set_per_thread = 48ull << 20;
  double mem_bound_fraction = 0.75;  // sparse MatVec is bandwidth bound
};

class Amg2013 final : public cluster::Workload {
 public:
  explicit Amg2013(AmgParams params = {}) : params_(params) {}

  std::string name() const override { return "AMG2013"; }
  int iterations() const override { return params_.iterations; }

  cluster::RankWork rank_work(
      int iteration, const cluster::JobConfig& job,
      const cluster::OsEnvironment& env) const override;

 private:
  AmgParams params_;
};

}  // namespace hpcos::apps
