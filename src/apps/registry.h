// Application registry: workloads by name, with the per-platform run
// geometries the paper's artifact description specifies.
//
// OFP (appendix): LQCD 4 ranks x 32 threads, GeoFEM 16 x 8, GAMERA 8 x 8;
// the CORAL apps use the 256 designated application CPUs as 16 x 16.
// Fugaku: every application runs 4 ranks x 12 threads (one rank per CMG).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/osenv.h"
#include "cluster/workload.h"

namespace hpcos::apps {

enum class PlatformKind { kOfp, kFugaku };

// Construct a workload by name ("AMG2013", "Milc", "Lulesh", "LQCD",
// "GeoFEM", "GAMERA"), tuned for the given platform (e.g. the LQCD
// aarch64/QWS version is cache-optimized; the x86 version is memory
// bound). Throws SimError for unknown names.
std::unique_ptr<cluster::Workload> make_workload(const std::string& name,
                                                 PlatformKind platform);

// Ranks/threads per node for a workload on a platform (appendix values).
cluster::JobConfig job_geometry(const std::string& name,
                                PlatformKind platform, std::int64_t nodes);

// All workload names with results on a platform (CORAL apps are
// x86-only: no A64FX-optimized versions exist, §6.2).
std::vector<std::string> workloads_for(PlatformKind platform);

}  // namespace hpcos::apps
