#include "apps/gamera.h"

#include <cmath>

namespace hpcos::apps {

cluster::RankWork Gamera::rank_work(int iteration,
                                    const cluster::JobConfig& job,
                                    const cluster::OsEnvironment& env) const {
  cluster::RankWork w;
  const double flops =
      params_.flops_per_thread_per_step /
      static_cast<double>(params_.inner_iterations_per_step) *
      static_cast<double>(job.threads_per_rank);
  w.compute = compute_time_for(flops, job, env);
  w.working_set_bytes = params_.working_set_per_thread *
                        static_cast<std::uint64_t>(job.threads_per_rank);
  w.mem_bound_fraction = params_.mem_bound_fraction;
  // Per inner CG iteration: dot products plus the fine-level halo.
  w.allreduces = 2;
  w.thread_barriers = 8;  // OpenMP joins inside the iteration
  w.allreduce_bytes = 8;
  w.halo_neighbors = 12;  // tetrahedral partition adjacency
  w.halo_bytes = 128ull << 10;
  w.imbalance_sigma = 0.03;  // unstructured city-scale mesh
  if (iteration == 0) w.touch_bytes = w.working_set_bytes;
  return w;
}

cluster::InitWork Gamera::init_work(const cluster::JobConfig& job,
                                    const cluster::OsEnvironment& env) const {
  (void)env;
  cluster::InitWork init;
  init.serial_setup = SimTime::ms(500);  // mesh read + assembly
  init.touch_bytes = params_.working_set_per_thread *
                     static_cast<std::uint64_t>(job.threads_per_rank);
  const double ranks = static_cast<double>(job.total_ranks());
  init.rdma_registrations =
      params_.reg_base +
      static_cast<int>(params_.reg_sqrt_factor * std::sqrt(ranks));
  init.rdma_bytes_each = params_.reg_bytes_each;
  return init;
}

}  // namespace hpcos::apps
