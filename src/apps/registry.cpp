#include "apps/registry.h"

#include "apps/amg.h"
#include "apps/gamera.h"
#include "apps/geofem.h"
#include "apps/lqcd.h"
#include "apps/lulesh.h"
#include "apps/milc.h"
#include "common/check.h"

namespace hpcos::apps {

std::unique_ptr<cluster::Workload> make_workload(const std::string& name,
                                                 PlatformKind platform) {
  if (name == "AMG2013") return std::make_unique<Amg2013>();
  if (name == "Milc") return std::make_unique<Milc>();
  if (name == "Lulesh") return std::make_unique<Lulesh>();
  if (name == "LQCD") {
    LqcdParams p;
    // The QWS/A64FX version keeps its hot loops in cache and registers
    // (deep SVE optimization); the x86 version streams from MCDRAM.
    p.mem_bound_fraction = platform == PlatformKind::kFugaku ? 0.25 : 0.75;
    return std::make_unique<Lqcd>(p);
  }
  if (name == "GeoFEM") return std::make_unique<GeoFem>();
  if (name == "GAMERA") return std::make_unique<Gamera>();
  HPCOS_CHECK_MSG(false, "unknown workload: " + name);
  return nullptr;
}

cluster::JobConfig job_geometry(const std::string& name,
                                PlatformKind platform, std::int64_t nodes) {
  cluster::JobConfig job;
  job.nodes = nodes;
  if (platform == PlatformKind::kFugaku) {
    job.ranks_per_node = 4;  // one rank per CMG
    job.threads_per_rank = 12;
    return job;
  }
  if (name == "LQCD") {
    job.ranks_per_node = 4;
    job.threads_per_rank = 32;
  } else if (name == "GeoFEM") {
    job.ranks_per_node = 16;
    job.threads_per_rank = 8;
  } else if (name == "GAMERA") {
    job.ranks_per_node = 8;
    job.threads_per_rank = 8;
  } else {
    // CORAL apps on the 256 designated application CPUs.
    job.ranks_per_node = 16;
    job.threads_per_rank = 16;
  }
  return job;
}

std::vector<std::string> workloads_for(PlatformKind platform) {
  if (platform == PlatformKind::kOfp) {
    return {"AMG2013", "Milc", "Lulesh", "LQCD", "GeoFEM", "GAMERA"};
  }
  return {"LQCD", "GeoFEM", "GAMERA"};
}

}  // namespace hpcos::apps
