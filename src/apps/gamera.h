// GAMERA — implicit low-order unstructured FEM seismic wave propagation
// (Ichimura et al.; SC'18 Gordon-Bell class).
//
// Multigrid + mixed-precision CG with matrix-free MatVec. The application
// runs only three time "steps" after a setup phase that registers large
// communication buffers for RDMA across all multigrid levels. Coarse
// levels span ever-larger communicators, so the registration count grows
// with the job (modeled ~sqrt(ranks)). On Linux each registration is an
// ioctl with page-by-page pinning and a heavy contention tail; McKernel's
// PicoDriver pins large pages locally. That setup difference, amortized
// over just three steps, is the paper's explanation for the scale-growing
// 29% advantage (Fig. 7c) and why the gain was concentrated in step one.
#pragma once

#include "apps/common.h"

namespace hpcos::apps {

struct GameraParams {
  int steps = 3;
  // Inner adaptive-CG iterations per time step; the model iterates at this
  // granularity because that is the noise-relevant sync interval.
  int inner_iterations_per_step = 200;
  double flops_per_thread_per_step = 2.4e10;
  std::uint64_t working_set_per_thread = 128ull << 20;
  double mem_bound_fraction = 0.6;  // matrix-free kernels reuse caches
  // Registration scaling: count = base + factor * sqrt(total ranks)
  // (coarse multigrid levels span ever-wider communicators).
  int reg_base = 250;
  double reg_sqrt_factor = 12.0;
  std::uint64_t reg_bytes_each = 128ull << 20;
};

class Gamera final : public cluster::Workload {
 public:
  explicit Gamera(GameraParams params = {}) : params_(params) {}

  std::string name() const override { return "GAMERA"; }
  int iterations() const override {
    return params_.steps * params_.inner_iterations_per_step;
  }

  cluster::RankWork rank_work(
      int iteration, const cluster::JobConfig& job,
      const cluster::OsEnvironment& env) const override;

  cluster::InitWork init_work(const cluster::JobConfig& job,
                              const cluster::OsEnvironment& env) const override;

 private:
  GameraParams params_;
};

}  // namespace hpcos::apps
