// GeoFEM — 3D linear elasticity by parallel FEM (Nakajima).
//
// ICCG solver: Conjugate Gradient preconditioned with Incomplete Cholesky
// plus Additive-Schwarz domain decomposition. Heavily memory-bound sparse
// triangular sweeps with long per-iteration phases — which is why OS noise
// amortizes better here than in fine-grained codes, matching the modest,
// roughly scale-constant ~3-6% McKernel gains (Fig. 6b / 7b). The paper
// also reports large run-to-run variation even on McKernel; the model's
// imbalance term carries that.
#pragma once

#include "apps/common.h"

namespace hpcos::apps {

struct GeoFemParams {
  int iterations = 100;
  double flops_per_thread = 3.2e8;  // IC sweeps are long
  std::uint64_t working_set_per_thread = 96ull << 20;
  double mem_bound_fraction = 0.85;
  // Additive-Schwarz work vectors are reallocated per outer iteration.
  std::uint64_t churn_bytes_per_rank = 24ull << 20;
};

class GeoFem final : public cluster::Workload {
 public:
  explicit GeoFem(GeoFemParams params = {}) : params_(params) {}

  std::string name() const override { return "GeoFEM"; }
  int iterations() const override { return params_.iterations; }

  cluster::RankWork rank_work(
      int iteration, const cluster::JobConfig& job,
      const cluster::OsEnvironment& env) const override;

 private:
  GeoFemParams params_;
};

}  // namespace hpcos::apps
