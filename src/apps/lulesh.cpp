#include "apps/lulesh.h"

namespace hpcos::apps {

cluster::RankWork Lulesh::rank_work(int iteration,
                                    const cluster::JobConfig& job,
                                    const cluster::OsEnvironment& env) const {
  cluster::RankWork w;
  const double flops = params_.flops_per_thread *
                       static_cast<double>(job.threads_per_rank);
  w.compute = compute_time_for(flops, job, env);
  w.working_set_bytes = params_.working_set_per_thread *
                        static_cast<std::uint64_t>(job.threads_per_rank);
  w.mem_bound_fraction = params_.mem_bound_fraction;
  // The heap churn only costs when the allocator releases to the OS;
  // cached allocators (Fugaku runtime, McKernel) recycle silently. The
  // engine prices it through env.mem, so we always report the volume.
  w.alloc_churn_bytes =
      env.mem.heap == os::HeapBehavior::kReleaseToOs
          ? params_.churn_bytes_per_rank
          : params_.churn_bytes_per_rank / 64;  // arena bookkeeping only
  w.allreduces = 3;  // dt courant/hydro constraints
  w.thread_barriers = 8;  // OpenMP joins inside the iteration
  w.allreduce_bytes = 8;
  w.halo_neighbors = 26;
  w.halo_bytes = 96ull << 10;
  w.imbalance_sigma = 0.02;  // Lagrangian meshes drift out of balance
  if (iteration == 0) w.touch_bytes = w.working_set_bytes;
  return w;
}

}  // namespace hpcos::apps
