// LQCD — CCS QCD / QWS: O(a)-improved Wilson-Dirac BiCGStab solver.
//
// One of the Fugaku priority applications (both an x86 and a heavily
// SVE-optimized aarch64 version exist; same science problem). Model:
// BiCGStab iterations over a 4D lattice — two operator applications
// (8-neighbor halo) and four global dot products per iteration. The
// Fugaku version is strongly cache/register optimized (low memory-bound
// fraction), which is why the OS page-size machinery barely matters there
// and Linux ~= McKernel (Fig. 7a), while the x86 version on KNL is
// memory-bound and noise-exposed (Fig. 6a).
#pragma once

#include "apps/common.h"

namespace hpcos::apps {

struct LqcdParams {
  int iterations = 250;
  double flops_per_thread = 5.5e7;
  std::uint64_t working_set_per_thread = 40ull << 20;
  // Set per platform by the registry: 0.75 on KNL, 0.25 on A64FX (SVE
  // version keeps the hot loops in cache).
  double mem_bound_fraction = 0.5;
  std::uint64_t halo_bytes = 512ull << 10;
};

class Lqcd final : public cluster::Workload {
 public:
  explicit Lqcd(LqcdParams params = {}) : params_(params) {}

  std::string name() const override { return "LQCD"; }
  int iterations() const override { return params_.iterations; }

  cluster::RankWork rank_work(
      int iteration, const cluster::JobConfig& job,
      const cluster::OsEnvironment& env) const override;

 private:
  LqcdParams params_;
};

}  // namespace hpcos::apps
