#include "apps/geofem.h"

namespace hpcos::apps {

cluster::RankWork GeoFem::rank_work(int iteration,
                                    const cluster::JobConfig& job,
                                    const cluster::OsEnvironment& env) const {
  cluster::RankWork w;
  const double flops = params_.flops_per_thread *
                       static_cast<double>(job.threads_per_rank);
  w.compute = compute_time_for(flops, job, env);
  w.working_set_bytes = params_.working_set_per_thread *
                        static_cast<std::uint64_t>(job.threads_per_rank);
  w.mem_bound_fraction = params_.mem_bound_fraction;
  w.alloc_churn_bytes =
      env.mem.heap == os::HeapBehavior::kReleaseToOs
          ? params_.churn_bytes_per_rank
          : params_.churn_bytes_per_rank / 64;
  w.allreduces = 3;  // CG rho/alpha/convergence
  w.thread_barriers = 8;  // OpenMP joins inside the iteration
  w.allreduce_bytes = 8;
  w.halo_neighbors = 6;
  w.halo_bytes = 384ull << 10;
  // Unstructured mesh partitions: visible run-to-run variation (the large
  // error bars of Fig. 6b).
  w.imbalance_sigma = 0.05;
  // The OFP-optimized GeoFEM hugepage-aligns its matrix storage, so THP
  // coverage is nearly total even on Linux.
  w.large_page_coverage_hint = 0.98;
  if (iteration == 0) w.touch_bytes = w.working_set_bytes;
  return w;
}

}  // namespace hpcos::apps
