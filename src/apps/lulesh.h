// LULESH — Livermore Unstructured Lagrangian Explicit Shock Hydro (CORAL).
//
// Model: explicit hydro timesteps with a dt-reduction (3 allreduces) and a
// 26-neighbor ghost exchange per step. The distinguishing feature for this
// study is the heap behaviour: LULESH allocates and frees large temporary
// arrays every timestep. On Linux, glibc returns those blocks to the OS,
// so every step re-mmaps, re-faults (THP), and shoots down sibling TLBs —
// the "heap management issues in Linux" the paper names as the source of
// McKernel's ~2x win (§6.4, [14]). On McKernel the physical memory stays
// with the process and the churn is two cheap local syscalls.
#pragma once

#include "apps/common.h"

namespace hpcos::apps {

struct LuleshParams {
  int iterations = 150;
  double flops_per_thread = 4.5e7;
  std::uint64_t working_set_per_thread = 56ull << 20;
  double mem_bound_fraction = 0.7;
  // Temporary-array churn per rank per timestep.
  std::uint64_t churn_bytes_per_rank = 320ull << 20;
};

class Lulesh final : public cluster::Workload {
 public:
  explicit Lulesh(LuleshParams params = {}) : params_(params) {}

  std::string name() const override { return "Lulesh"; }
  int iterations() const override { return params_.iterations; }

  cluster::RankWork rank_work(
      int iteration, const cluster::JobConfig& job,
      const cluster::OsEnvironment& env) const override;

 private:
  LuleshParams params_;
};

}  // namespace hpcos::apps
