#include "apps/amg.h"

namespace hpcos::apps {

cluster::RankWork Amg2013::rank_work(int iteration,
                                     const cluster::JobConfig& job,
                                     const cluster::OsEnvironment& env) const {
  cluster::RankWork w;
  // V-cycle: sum over levels of (1/2)^level of the fine-level work (down
  // and up sweeps folded together).
  double level_sum = 0.0;
  for (int l = 0; l < params_.levels; ++l) {
    level_sum += 1.0 / static_cast<double>(1 << l);
  }
  const double flops = params_.fine_level_flops_per_thread *
                       static_cast<double>(job.threads_per_rank) * level_sum;
  w.compute = compute_time_for(flops, job, env);
  w.working_set_bytes = params_.working_set_per_thread *
                        static_cast<std::uint64_t>(job.threads_per_rank);
  w.mem_bound_fraction = params_.mem_bound_fraction;
  // One latency-bound communication step per level: halo on the fine
  // levels, a small allreduce on every level (convergence norms, coarse
  // solves).
  w.allreduces = params_.levels;
  w.thread_barriers = 8;  // OpenMP joins inside the iteration
  w.allreduce_bytes = 8;
  w.halo_neighbors = 6;  // 3D structured-ish stencil on the fine level
  w.halo_bytes = 256ull << 10;
  w.imbalance_sigma = 0.015;
  // Structured-grid fine levels allocate large aligned slabs: THP covers
  // most of them even on the moderately tuned Linux.
  w.large_page_coverage_hint = 0.85;
  // First iteration touches the hierarchy (setup is folded into it).
  if (iteration == 0) w.touch_bytes = w.working_set_bytes;
  return w;
}

}  // namespace hpcos::apps
