// RDMA memory-registration cost model (Tofu STAGs / OmniPath MRs).
//
// §5.1/§6.4: registration cost differs sharply by OS path —
//  * native Linux: ioctl into the driver, page-by-page pinning at the base
//    page size, with a heavy tail from mm locking and allocator state;
//  * McKernel without PicoDriver: the same work *plus* an offload
//    round-trip per call;
//  * McKernel with PicoDriver: LWK-local pin over large pages — short and
//    tight.
// The tail matters: at job start every rank registers its buffers and the
// job proceeds at the pace of the slowest rank, which is the mechanism
// behind GAMERA's scale-growing McKernel advantage (Fig. 7c).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/sim_time.h"
#include "hw/tlb.h"

namespace hpcos::net {

enum class RegistrationPath : std::uint8_t {
  kLinuxNative,         // ioctl into the host driver
  kMcKernelOffloaded,   // ioctl delegated through the proxy process
  kMcKernelPicoDriver,  // LWK-local split-driver fast path
};
std::string to_string(RegistrationPath p);

struct RdmaModelParams {
  SimTime ioctl_base = SimTime::us(3);
  SimTime pin_per_page = SimTime::ns(250);
  hw::PageSize linux_pin_page = hw::PageSize::k64K;
  hw::PageSize lwk_pin_page = hw::PageSize::k2M;
  SimTime offload_roundtrip = SimTime::us(5);
  SimTime pico_base = SimTime::us(1);
  SimTime pico_per_page = SimTime::ns(150);
  // Lognormal sigma of the Linux path (driver lock + mm state dependence);
  // the LWK path is nearly deterministic.
  double linux_tail_sigma = 0.6;
  double lwk_tail_sigma = 0.05;
  // Hard cap on tail draws (e.g. a compaction stall during pinning).
  double tail_max_factor = 30.0;
};

class RdmaRegistrationModel {
 public:
  explicit RdmaRegistrationModel(RdmaModelParams params = {})
      : params_(params) {}

  const RdmaModelParams& params() const { return params_; }

  // Deterministic median cost of registering `bytes` via `path`.
  SimTime median_cost(RegistrationPath path, std::uint64_t bytes) const;

  // One sampled registration (median x lognormal tail factor).
  SimTime sample_cost(RegistrationPath path, std::uint64_t bytes,
                      RngStream& rng) const;

  // Worst of `k` independent registrations (what a barrier after setup
  // observes across ranks).
  SimTime sample_worst_of(RegistrationPath path, std::uint64_t bytes,
                          std::uint64_t k, RngStream& rng) const;

 private:
  double sigma_for(RegistrationPath path) const;

  RdmaModelParams params_;
};

}  // namespace hpcos::net
