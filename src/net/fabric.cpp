#include "net/fabric.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpcos::net {

FabricParams make_tofud_params() {
  return FabricParams{
      .kind = hw::InterconnectKind::kTofuD,
      .sw_overhead = SimTime::ns(700),   // Tofu barrier-gate assisted
      .link_latency = SimTime::ns(120),
      // 6.8 GB/s per TNI direction; apps typically drive several TNIs, but
      // per-message modeling uses one.
      .bandwidth_bytes_per_sec = 6'800'000'000ull,
      .injection_overhead = SimTime::ns(150),
  };
}

FabricParams make_omnipath_params() {
  return FabricParams{
      .kind = hw::InterconnectKind::kOmniPath,
      .sw_overhead = SimTime::ns(1000),
      .link_latency = SimTime::ns(150),
      .bandwidth_bytes_per_sec = 12'300'000'000ull,  // 100 Gb/s
      .injection_overhead = SimTime::ns(300),
  };
}

FabricParams params_for(hw::InterconnectKind kind) {
  return kind == hw::InterconnectKind::kTofuD ? make_tofud_params()
                                              : make_omnipath_params();
}

int Fabric::average_hops(std::int64_t nodes) const {
  HPCOS_CHECK(nodes >= 1);
  if (nodes == 1) return 0;
  if (params_.kind == hw::InterconnectKind::kTofuD) {
    // 6D mesh/torus: average distance grows with the 6th root of the node
    // count (each dimension's expected distance is ~dim/4).
    const double side = std::pow(static_cast<double>(nodes), 1.0 / 6.0);
    return std::max(1, static_cast<int>(std::ceil(1.5 * side)));
  }
  // Two-level fat tree: 1 hop within an edge switch (<= 32 nodes), 3 hops
  // through the core otherwise.
  return nodes <= 32 ? 1 : 3;
}

void Fabric::set_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    messages_counter_ = nullptr;
    busy_ns_counter_ = nullptr;
    return;
  }
  messages_counter_ = registry->counter("fabric.messages");
  busy_ns_counter_ = registry->counter("fabric.busy_ns");
}

void Fabric::account(SimTime busy) const {
  obs::bump(messages_counter_);
  obs::bump(busy_ns_counter_, static_cast<std::uint64_t>(busy.count_ns()));
}

SimTime Fabric::p2p(std::uint64_t bytes, std::int64_t nodes) const {
  const int hops = average_hops(nodes);
  const double bw_sec = static_cast<double>(bytes) /
                        static_cast<double>(params_.bandwidth_bytes_per_sec);
  const SimTime cost = params_.sw_overhead + params_.injection_overhead +
                       params_.link_latency * hops + SimTime::from_sec(bw_sec);
  account(cost);
  return cost;
}

SimTime Fabric::halo_exchange(std::uint64_t bytes_per_neighbor,
                              int neighbors) const {
  if (neighbors <= 0) return SimTime::zero();
  // Neighbor links are distinct; transfers overlap but injection is
  // serialized at the NIC: overhead per message plus one transfer time.
  const double bw_sec =
      static_cast<double>(bytes_per_neighbor) /
      static_cast<double>(params_.bandwidth_bytes_per_sec);
  const SimTime cost =
      (params_.sw_overhead + params_.injection_overhead) * neighbors +
      params_.link_latency * 2 + SimTime::from_sec(bw_sec);
  account(cost);
  return cost;
}

}  // namespace hpcos::net
