#include "net/rdma.h"

#include <algorithm>
#include <cmath>

#include "noise/analytic.h"

namespace hpcos::net {

std::string to_string(RegistrationPath p) {
  switch (p) {
    case RegistrationPath::kLinuxNative:
      return "linux-ioctl";
    case RegistrationPath::kMcKernelOffloaded:
      return "mckernel-offloaded";
    case RegistrationPath::kMcKernelPicoDriver:
      return "mckernel-picodriver";
  }
  return "?";
}

SimTime RdmaRegistrationModel::median_cost(RegistrationPath path,
                                           std::uint64_t bytes) const {
  switch (path) {
    case RegistrationPath::kLinuxNative: {
      const std::uint64_t page = hw::bytes(params_.linux_pin_page);
      const std::uint64_t pages = (bytes + page - 1) / page;
      return params_.ioctl_base +
             params_.pin_per_page * static_cast<std::int64_t>(pages);
    }
    case RegistrationPath::kMcKernelOffloaded:
      return median_cost(RegistrationPath::kLinuxNative, bytes) +
             params_.offload_roundtrip;
    case RegistrationPath::kMcKernelPicoDriver: {
      const std::uint64_t page = hw::bytes(params_.lwk_pin_page);
      const std::uint64_t pages = (bytes + page - 1) / page;
      return params_.pico_base +
             params_.pico_per_page * static_cast<std::int64_t>(pages);
    }
  }
  return SimTime::zero();
}

double RdmaRegistrationModel::sigma_for(RegistrationPath path) const {
  return path == RegistrationPath::kMcKernelPicoDriver
             ? params_.lwk_tail_sigma
             : params_.linux_tail_sigma;
}

SimTime RdmaRegistrationModel::sample_cost(RegistrationPath path,
                                           std::uint64_t bytes,
                                           RngStream& rng) const {
  const SimTime med = median_cost(path, bytes);
  const double factor = std::min(params_.tail_max_factor,
                                 rng.lognormal(0.0, sigma_for(path)));
  return med.scaled(factor);
}

SimTime RdmaRegistrationModel::sample_worst_of(RegistrationPath path,
                                               std::uint64_t bytes,
                                               std::uint64_t k,
                                               RngStream& rng) const {
  if (k == 0) return SimTime::zero();
  const SimTime med = median_cost(path, bytes);
  noise::DurationDist d{.median = med,
                        .sigma = sigma_for(path),
                        .min = SimTime::zero(),
                        .max = med.scaled(params_.tail_max_factor)};
  return d.sample_max(k, rng);
}

}  // namespace hpcos::net
