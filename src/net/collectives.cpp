#include "net/collectives.h"

#include <bit>

#include "common/check.h"

namespace hpcos::net {

int Collectives::log2_ceil(std::int64_t v) {
  HPCOS_CHECK(v >= 1);
  if (v == 1) return 0;
  return static_cast<int>(
      std::bit_width(static_cast<std::uint64_t>(v - 1)));
}

SimTime Collectives::round_cost(std::uint64_t bytes) const {
  const auto& p = fabric_.params();
  const double bw_sec = static_cast<double>(bytes) /
                        static_cast<double>(p.bandwidth_bytes_per_sec);
  return p.sw_overhead + p.link_latency * 2 + SimTime::from_sec(bw_sec);
}

SimTime Collectives::barrier(std::int64_t ranks) const {
  if (ranks <= 1) return SimTime::zero();
  SimTime per_round = round_cost(0);
  if (fabric_.params().kind == hw::InterconnectKind::kTofuD) {
    per_round = per_round.scaled(0.5);  // Tofu barrier gates
  }
  return per_round * log2_ceil(ranks);
}

SimTime Collectives::allreduce(std::int64_t ranks,
                               std::uint64_t bytes) const {
  if (ranks <= 1) return SimTime::zero();
  const int rounds = log2_ceil(ranks);
  // Latency term: 2 log2(P) rounds (reduce-scatter + allgather); bandwidth
  // term: ~2x the payload crosses the wire.
  return round_cost(0) * (2 * rounds) + round_cost(2 * bytes) -
         round_cost(0);
}

Collectives::AllreducePhases Collectives::allreduce_phases(
    std::int64_t ranks, std::uint64_t bytes) const {
  AllreducePhases p;
  if (ranks <= 1) return p;
  const int rounds = log2_ceil(ranks);
  const SimTime bw_term = round_cost(2 * bytes) - round_cost(0);
  p.reduce_scatter = round_cost(0) * rounds + bw_term.scaled(0.5);
  p.allgather = allreduce(ranks, bytes) - p.reduce_scatter;
  return p;
}

SimTime Collectives::allgather(std::int64_t ranks,
                               std::uint64_t bytes_per_rank) const {
  if (ranks <= 1) return SimTime::zero();
  return round_cost(bytes_per_rank) * (ranks - 1);
}

}  // namespace hpcos::net
