// Collective operation cost model (MPI-style).
//
// Logarithmic algorithms over the fabric's point-to-point cost: barrier and
// allreduce are what the bulk-synchronous workloads issue every iteration,
// and their latency term is what amplifies OS noise at scale (§2).
#pragma once

#include "net/fabric.h"

namespace hpcos::net {

class Collectives {
 public:
  explicit Collectives(Fabric fabric) : fabric_(std::move(fabric)) {}

  const Fabric& fabric() const { return fabric_; }

  // Forward observability wiring to the owned fabric.
  void set_registry(obs::Registry* registry) { fabric_.set_registry(registry); }

  // Dissemination barrier: ceil(log2 P) rounds of zero-byte messages.
  // TofuD's hardware-assisted barrier gates cut the per-round software
  // overhead roughly in half.
  SimTime barrier(std::int64_t ranks) const;

  // Rabenseifner-style allreduce: latency term 2*log2(P) rounds plus a
  // bandwidth term ~2*bytes.
  SimTime allreduce(std::int64_t ranks, std::uint64_t bytes) const;

  // The two halves of the Rabenseifner composition, for span tracing:
  // reduce_scatter + allgather == allreduce(ranks, bytes) exactly (the
  // allgather half absorbs any integer-ns rounding).
  struct AllreducePhases {
    SimTime reduce_scatter;
    SimTime allgather;
  };
  AllreducePhases allreduce_phases(std::int64_t ranks,
                                   std::uint64_t bytes) const;

  // Allgather (ring): P-1 steps of bytes each.
  SimTime allgather(std::int64_t ranks, std::uint64_t bytes_per_rank) const;

 private:
  SimTime round_cost(std::uint64_t bytes) const;
  static int log2_ceil(std::int64_t v);

  Fabric fabric_;
};

}  // namespace hpcos::net
