// Interconnect fabric model: TofuD and OmniPath.
//
// A LogGP-flavoured cost model: per-message latency (wire + switch hops +
// software overhead) plus a bandwidth term, with topology-dependent average
// hop counts (TofuD is a 6D mesh/torus; OmniPath on OFP is a two-level fat
// tree). Absolute values are representative published figures; the study's
// comparisons are between OSes on the *same* fabric, so only consistency
// matters.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.h"
#include "hw/platform.h"
#include "obs/registry.h"

namespace hpcos::net {

struct FabricParams {
  hw::InterconnectKind kind = hw::InterconnectKind::kTofuD;
  SimTime sw_overhead = SimTime::ns(800);   // per-message software cost
  SimTime link_latency = SimTime::ns(100);  // per-hop wire+switch latency
  std::uint64_t bandwidth_bytes_per_sec = 0;
  // Extra latency per hop in software-visible routing (rendezvous etc.)
  SimTime injection_overhead = SimTime::ns(200);
};

FabricParams make_tofud_params();
FabricParams make_omnipath_params();
FabricParams params_for(hw::InterconnectKind kind);

class Fabric {
 public:
  explicit Fabric(FabricParams params) : params_(params) {}

  const FabricParams& params() const { return params_; }

  // Average hop count between two random endpoints of a P-node system.
  int average_hops(std::int64_t nodes) const;

  // Point-to-point message time (one direction, no contention).
  SimTime p2p(std::uint64_t bytes, std::int64_t nodes) const;

  // Nearest-neighbor exchange time: the rank sends/receives `bytes` with
  // each of `neighbors` peers (overlapped; cost = max of link serials).
  SimTime halo_exchange(std::uint64_t bytes_per_neighbor,
                        int neighbors) const;

  // Register fabric.messages and fabric.busy_ns (total modeled link-busy
  // time). Counters are bumped from the const cost methods, so they are
  // held mutably; the single-writer rule still applies.
  void set_registry(obs::Registry* registry);

 private:
  void account(SimTime busy) const;

  FabricParams params_;
  obs::Counter* messages_counter_ = nullptr;
  obs::Counter* busy_ns_counter_ = nullptr;
};

}  // namespace hpcos::net
