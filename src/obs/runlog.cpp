#include "obs/runlog.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/confighash.h"
#include "common/parallel.h"
#include "obs/bench_report.h"
#include "obs/prof/prof.h"

namespace hpcos::obs {

namespace {

bool is_host_metric(const std::string& name) {
  return name.rfind("host.", 0) == 0;
}

JsonValue metric_to_json(const BenchMetric& m) {
  JsonValue v = JsonValue::object();
  v.set("name", m.name);
  v.set("unit", m.unit);
  v.set("value", m.value);
  if (!m.percentiles.empty()) {
    JsonValue pct = JsonValue::object();
    for (const auto& [k, val] : m.percentiles) pct.set(k, val);
    v.set("percentiles", std::move(pct));
  }
  return v;
}

// Sum/count over a BenchReport series entry's non-empty buckets.
void series_totals(const JsonValue& series, double* sum,
                   std::uint64_t* count) {
  *sum = 0.0;
  *count = 0;
  if (const JsonValue* buckets = series.find("buckets");
      buckets != nullptr && buckets->is_array()) {
    for (const JsonValue& b : buckets->as_array()) {
      *sum += b.at("sum").as_number();
      *count += static_cast<std::uint64_t>(b.at("count").as_number());
    }
  }
}

bool is_hex16(const std::string& s) {
  if (s.size() != 16) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) || (c >= 'a' && c <= 'f');
  });
}

}  // namespace

JsonValue make_run_record(const BenchReport& report, const JsonValue& config,
                          const std::string& timestamp,
                          const prof::Profile* profile) {
  JsonValue record = JsonValue::object();
  record.set("schema", kRunLedgerSchema);
  record.set("target", report.bench_name());
  record.set("quick", report.quick());
  record.set("seed", report.seed());
  record.set("config_hash", config_hash_hex(config));
  record.set("config", config);

  JsonValue metrics = JsonValue::array();
  JsonValue host_metrics = JsonValue::array();
  for (const BenchMetric& m : report.metrics()) {
    // host.* names the wall-clock measurements by repo convention
    // (ROADMAP standing constraints); they live in the non-deterministic
    // "host" section so the deterministic line stays bit-stable.
    (is_host_metric(m.name) ? host_metrics : metrics)
        .push_back(metric_to_json(m));
  }
  record.set("metrics", std::move(metrics));

  JsonValue series = JsonValue::array();
  for (const JsonValue& s : report.series_json()) {
    JsonValue entry = JsonValue::object();
    entry.set("name", s.at("name").as_string());
    // The digest pins the full bucket payload without storing it: trend
    // can tell "same series bytes" from "changed" at O(1) ledger size.
    entry.set("digest", to_hex64(fnv1a64(canonical_json(s))));
    double sum = 0.0;
    std::uint64_t count = 0;
    series_totals(s, &sum, &count);
    entry.set("sum", sum);
    entry.set("count", count);
    series.push_back(std::move(entry));
  }
  record.set("series", std::move(series));

  JsonValue host = JsonValue::object();
  host.set("timestamp", timestamp);
  host.set("parallelism", static_cast<std::uint64_t>(default_parallelism()));
  if (!host_metrics.as_array().empty()) {
    host.set("metrics", std::move(host_metrics));
  }
  if (profile != nullptr && !profile->scopes.empty()) {
    // Compact summary: top scopes by self time (the collect() ranking),
    // enough to answer "where did this run's host time go" from the
    // ledger alone without the full hotspot report.
    JsonValue top = JsonValue::array();
    const std::size_t n = std::min<std::size_t>(profile->scopes.size(), 8);
    for (std::size_t i = 0; i < n; ++i) {
      const prof::ScopeStat& s = profile->scopes[i];
      JsonValue entry = JsonValue::object();
      entry.set("scope", s.name);
      entry.set("count", s.count);
      entry.set("self_ms", static_cast<double>(s.self_ns) / 1e6);
      entry.set("total_ms", static_cast<double>(s.total_ns) / 1e6);
      top.push_back(std::move(entry));
    }
    host.set("profile", std::move(top));
  }
  record.set("host", std::move(host));
  return record;
}

std::string validate_run_record(const JsonValue& record) {
  if (!record.is_object()) return "record is not a JSON object";
  // A heartbeat line in a run-ledger file is a specific, diagnosable
  // mistake (someone pointed --progress-file and --ledger at the same
  // path), so it gets a specific message instead of the generic
  // missing-key one.
  if (const JsonValue* schema = record.find("schema");
      schema != nullptr && schema->is_string() &&
      schema->as_string() == "hpcos-heartbeat/1") {
    return "heartbeat record (hpcos-heartbeat/1) in run ledger — "
           "heartbeats stream to *.heartbeat.jsonl, not to the ledger";
  }
  for (const char* key :
       {"schema", "target", "quick", "seed", "config_hash", "metrics"}) {
    if (!record.contains(key)) {
      return std::string("missing key \"") + key + "\"";
    }
  }
  if (!record.at("schema").is_string()) return "schema is not a string";
  if (record.at("schema").as_string() != kRunLedgerSchema) {
    // Unknown versions are rejected outright: a reader silently accepting
    // a future schema would misinterpret fields, the exact bug a strict
    // version gate exists to prevent.
    return "unknown schema \"" + record.at("schema").as_string() +
           "\" (want \"" + kRunLedgerSchema + "\")";
  }
  if (!record.at("target").is_string() ||
      record.at("target").as_string().empty()) {
    return "target missing or empty";
  }
  if (!record.at("quick").is_bool()) return "quick is not a bool";
  if (!record.at("seed").is_number()) return "seed is not a number";
  if (!record.at("config_hash").is_string() ||
      !is_hex16(record.at("config_hash").as_string())) {
    return "config_hash is not a 16-digit lowercase hex string";
  }
  if (!record.at("metrics").is_array()) return "metrics is not an array";
  const JsonArray& metrics = record.at("metrics").as_array();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const JsonValue& m = metrics[i];
    const std::string where = "metrics[" + std::to_string(i) + "]";
    if (!m.is_object()) return where + " is not an object";
    for (const char* key : {"name", "unit", "value"}) {
      if (!m.contains(key)) return where + " missing \"" + key + "\"";
    }
    if (!m.at("value").is_number() ||
        !std::isfinite(m.at("value").as_number())) {
      return where + " value is not a finite number";
    }
  }
  if (const JsonValue* series = record.find("series"); series != nullptr) {
    if (!series->is_array()) return "series is not an array";
    const JsonArray& entries = series->as_array();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const JsonValue& s = entries[i];
      const std::string where = "series[" + std::to_string(i) + "]";
      if (!s.is_object()) return where + " is not an object";
      if (!s.contains("name") || !s.at("name").is_string()) {
        return where + " name missing";
      }
      if (!s.contains("digest") || !s.at("digest").is_string() ||
          !is_hex16(s.at("digest").as_string())) {
        return where + " digest missing or not 16-digit hex";
      }
    }
  }
  if (const JsonValue* host = record.find("host");
      host != nullptr && !host->is_object()) {
    return "host is not an object";
  }
  return {};
}

std::string run_record_line(const JsonValue& record) {
  if (const std::string err = validate_run_record(record); !err.empty()) {
    throw std::runtime_error("run record invalid: " + err);
  }
  return record.dump();
}

void append_run_record(const std::string& path, const JsonValue& record) {
  const std::string line = run_record_line(record) + "\n";
  // O_APPEND + a single write: concurrent appenders interleave at line
  // granularity and a crash can only tear the final line, which the
  // lenient reader skips.
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw std::runtime_error("cannot open run ledger " + path + ": " +
                             std::strerror(errno));
  }
  std::size_t done = 0;
  while (done < line.size()) {
    const ssize_t n = ::write(fd, line.data() + done, line.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("write failed for run ledger " + path + ": " +
                               std::strerror(err));
    }
    done += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0) {
    throw std::runtime_error("close failed for run ledger " + path);
  }
}

std::string deterministic_line(const JsonValue& record) {
  JsonValue stripped = JsonValue::object();
  for (const JsonMember& m : record.members()) {
    if (m.first == "host") continue;
    stripped.set(m.first, m.second);
  }
  return canonical_json(stripped);
}

std::string deterministic_digest_hex(const JsonValue& record) {
  return to_hex64(fnv1a64(deterministic_line(record)));
}

RunLedger parse_run_ledger(const std::string& text, bool strict) {
  RunLedger ledger;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string err;
    try {
      JsonValue record = JsonValue::parse(line);
      err = validate_run_record(record);
      if (err.empty()) {
        ledger.records.push_back(std::move(record));
        continue;
      }
    } catch (const std::exception& e) {
      err = e.what();
    }
    if (strict) {
      throw std::runtime_error("run ledger line " + std::to_string(line_no) +
                               ": " + err);
    }
    ++ledger.skipped;
  }
  return ledger;
}

RunLedger read_run_ledger(const std::string& path, bool strict) {
  std::ifstream in(path);
  if (!in) {
    if (strict) {
      throw std::runtime_error("cannot open run ledger: " + path);
    }
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_run_ledger(buf.str(), strict);
}

}  // namespace hpcos::obs
