#include "obs/attrib/report.h"

#include <iomanip>
#include <ostream>

namespace hpcos::obs::attrib {
namespace {

const char* scope_name(noise::SourceScope scope) {
  switch (scope) {
    case noise::SourceScope::kPerCore:
      return "per-core";
    case noise::SourceScope::kPerNodeRandomCore:
      return "per-node";
    case noise::SourceScope::kAllCores:
      return "all-cores";
  }
  return "?";
}

}  // namespace

void print_ledger(std::ostream& os, const AttributionLedger& ledger) {
  os << "  " << std::left << std::setw(16) << "source" << std::right
     << std::setw(10) << "scope" << std::setw(14) << "stolen(us)"
     << std::setw(12) << "share" << std::setw(14) << "expected(us)"
     << std::setw(10) << "diverg" << std::setw(12) << "hits"
     << std::setw(12) << "worst(us)" << '\n';
  for (const auto& row : ledger.rows) {
    os << "  " << std::left << std::setw(16) << row.source << std::right
       << std::setw(10) << scope_name(row.scope) << std::fixed
       << std::setprecision(1) << std::setw(14) << row.stolen_us
       << std::setprecision(4) << std::setw(12) << row.share
       << std::setprecision(1) << std::setw(14) << row.expected_us
       << std::showpos << std::setprecision(2) << std::setw(10)
       << row.divergence << std::noshowpos << std::setw(12)
       << row.hit_iterations << std::setprecision(1) << std::setw(12)
       << row.worst_us << (row.flagged ? "  <-- diverges" : "") << '\n';
  }
  os << "  total stolen " << std::fixed << std::setprecision(1)
     << ledger.total_stolen_us << " us; Eq.2 implies "
     << ledger.stats_overhead_us << " us (rel err " << std::scientific
     << std::setprecision(2) << ledger.reconciliation_error << ")\n"
     << std::defaultfloat;
}

void print_trace_ledger(std::ostream& os,
                        const std::vector<TraceTheftRow>& rows,
                        std::size_t max_rows) {
  os << "  " << std::left << std::setw(24) << "source" << std::setw(16)
     << "category" << std::right << std::setw(6) << "core" << std::setw(14)
     << "self(us)" << std::setw(10) << "spans" << '\n';
  std::size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ == max_rows) {
      os << "  ... " << rows.size() - max_rows << " more rows\n";
      break;
    }
    os << "  " << std::left << std::setw(24) << row.source << std::setw(16)
       << sim::to_string(row.category) << std::right << std::setw(6)
       << row.core << std::fixed << std::setprecision(1) << std::setw(14)
       << row.self_time_us << std::setw(10) << row.spans << '\n';
  }
  os << std::defaultfloat;
}

void print_straggler_report(std::ostream& os, const StragglerReport& report,
                            std::size_t max_iterations) {
  os << "  tracks " << report.tracks << ", iterations "
     << report.iterations.size() << ", dominant source "
     << (report.dominant_source.empty() ? "(none)"
                                        : report.dominant_source)
     << '\n';
  os << "  " << std::right << std::setw(6) << "iter" << std::setw(7)
     << "track" << std::setw(12) << "time(us)" << std::setw(12)
     << "excess(us)" << std::setw(12) << "wait(us)" << "  cause" << '\n';
  std::size_t shown = 0;
  for (const auto& it : report.iterations) {
    if (shown++ == max_iterations) {
      os << "  ... " << report.iterations.size() - max_iterations
         << " more iterations\n";
      break;
    }
    os << "  " << std::setw(6) << it.iteration << std::setw(7) << it.track
       << std::fixed << std::setprecision(1) << std::setw(12)
       << it.duration_us << std::setw(12) << it.excess_us << std::setw(12)
       << it.noise_wait_us << "  "
       << (it.dominant_source.empty() ? "(quiet)" : it.dominant_source)
       << '\n';
    for (const auto& ev : it.overlay) {
      os << "          overlay: " << std::left << std::setw(22) << ev.label
         << std::right << " core " << std::setw(3) << ev.core << "  "
         << std::setw(10) << ev.duration.to_us() << " us @ "
         << ev.time.to_us() << " us\n";
    }
  }
  for (const auto& s : report.by_source) {
    os << "  source " << std::left << std::setw(16) << s.source
       << std::right << " dominated " << std::setw(4) << s.iterations
       << " iterations, " << std::fixed << std::setprecision(1)
       << s.dominant_us << " us of events, " << s.excess_us
       << " us straggler excess\n";
  }
  os << std::defaultfloat;
}

void add_ledger_metrics(BenchReport& report, const AttributionLedger& ledger,
                        const std::string& prefix) {
  report.add_metric(prefix + ".total_stolen_us", "us",
                    ledger.total_stolen_us);
  report.add_metric(prefix + ".stats_overhead_us", "us",
                    ledger.stats_overhead_us);
  report.add_metric(prefix + ".reconciliation_error", "ratio",
                    ledger.reconciliation_error);
  report.add_metric(prefix + ".sources", "count",
                    static_cast<double>(ledger.rows.size()));
  for (const auto& row : ledger.rows) {
    const std::string base = prefix + ".src." + row.source;
    report.add_metric(base + ".stolen_us", "us", row.stolen_us);
    report.add_metric(base + ".share", "ratio", row.share);
    report.add_metric(base + ".hits", "count",
                      static_cast<double>(row.hit_iterations));
  }
}

void add_straggler_metrics(BenchReport& report,
                           const StragglerReport& straggler,
                           const std::string& prefix) {
  report.add_metric(prefix + ".tracks", "count",
                    static_cast<double>(straggler.tracks));
  report.add_metric(prefix + ".iterations", "count",
                    static_cast<double>(straggler.iterations.size()));
  std::uint64_t with_wait = 0;
  double excess_us = 0.0;
  for (const auto& it : straggler.iterations) {
    if (!it.dominant_source.empty()) ++with_wait;
    excess_us += it.excess_us;
  }
  report.add_metric(prefix + ".with_noise_wait", "count",
                    static_cast<double>(with_wait));
  report.add_metric(prefix + ".excess_us", "us", excess_us);
  for (const auto& s : straggler.by_source) {
    const std::string base = prefix + ".src." + s.source;
    report.add_metric(base + ".iterations", "count",
                      static_cast<double>(s.iterations));
    report.add_metric(base + ".dominant_us", "us", s.dominant_us);
  }
}

}  // namespace hpcos::obs::attrib
