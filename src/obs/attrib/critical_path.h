// BSP straggler / critical-path analysis over anchored phase traces.
//
// ROADMAP item: BSP phase spans used to live on a synthetic per-rank
// virtual timeline only; with BspEngine::set_trace's anchor they can be
// placed on a DES node's wall clock, which makes two questions answerable
// from traces alone:
//
//  * per iteration, which rank track was the straggler the barrier waited
//    for, and which machine-noise source stalled it (the `noise:<source>`
//    child the engine tags under bsp:noise-wait)?
//  * what was happening on the straggler's node during its compute
//    window — i.e. overlay the node's DES/FWQ noise events onto the
//    bsp:compute span and list the intersecting kernel activity.
//
// The per-iteration lookup uses sim::SpanForest::roots_by_track: the n-th
// "bsp:iteration" root of each core track is iteration n of that rank.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/cpuset.h"
#include "sim/trace.h"

namespace hpcos::obs::attrib {

// A node-trace event that intersects a straggler's compute window.
struct OverlayEvent {
  SimTime time;
  SimTime duration;
  std::string label;
  sim::TraceCategory category = sim::TraceCategory::kUser;
  hw::CoreId core = hw::kInvalidCore;
};

// One iteration's critical-path verdict.
struct IterationStraggler {
  std::size_t iteration = 0;    // n-th bsp:iteration on every track
  hw::CoreId track = hw::kInvalidCore;  // slowest rank track
  double duration_us = 0.0;     // straggler's iteration time
  double min_us = 0.0;          // fastest track's iteration time
  double excess_us = 0.0;       // duration - min: what the barrier lost
  double noise_wait_us = 0.0;   // straggler's bsp:noise-wait phase
  // Dominant machine-noise source of the straggler's noise wait (the
  // engine's noise:<source> tag); "" when the iteration had no noise wait.
  std::string dominant_source;
  sim::TraceCategory dominant_category = sim::TraceCategory::kUser;
  double dominant_us = 0.0;  // that event's duration
  // The straggler's bsp:compute window on the (anchored) timeline; the
  // range DES noise events are overlaid onto.
  SimTime compute_begin;
  SimTime compute_end;
  // Node-trace events intersecting the compute window, longest first
  // (filled by overlay_noise_events; empty otherwise).
  std::vector<OverlayEvent> overlay;
};

// Aggregate view: how often and how expensively one source stalled the
// critical path.
struct StragglerSourceSummary {
  std::string source;
  std::uint64_t iterations = 0;  // iterations it dominated
  double dominant_us = 0.0;      // summed event durations
  double excess_us = 0.0;        // summed straggler excess it presided over
};

struct StragglerReport {
  std::size_t tracks = 0;  // rank tracks participating
  std::vector<IterationStraggler> iterations;
  // Descending dominant_us, ties by name; sources that never dominated an
  // iteration do not appear.
  std::vector<StragglerSourceSummary> by_source;
  // by_source front's name; "" when no iteration had a tagged noise wait.
  std::string dominant_source;
};

// Build the report from BSP phase trace records (any number of rank
// tracks in one buffer; iterations only compared across tracks that
// reached them).
StragglerReport build_straggler_report(
    const std::vector<sim::TraceRecord>& records);

// Rank track -> node cores that rank owns. When a track has an entry,
// only node events on one of its cores — or machine-wide events recorded
// with hw::kInvalidCore — are overlaid onto that track's compute windows.
using TrackCoreMap = std::map<hw::CoreId, hw::CpuSet>;

// Overlay a DES node trace onto each iteration's compute window: fills
// IterationStraggler::overlay with the node records (plain events and
// spans alike, bsp:* spans excluded) whose [time, time+duration)
// intersects [compute_begin, compute_end), longest first, truncated to
// `max_events` per iteration.
//
// `track_cores` (optional) makes the match core-aware: with several ranks
// on one node, a per-core event is attributed only to the rank whose
// cores it hit, instead of to every rank whose compute window merely
// overlapped it in time. Tracks without an entry keep the time-only match.
void overlay_noise_events(StragglerReport& report,
                          const std::vector<sim::TraceRecord>& node_records,
                          std::size_t max_events = 8,
                          const TrackCoreMap* track_cores = nullptr);

}  // namespace hpcos::obs::attrib
