// Per-source noise attribution ledger (§4.2 / Table 2 workflow).
//
// The paper attributes measured FWQ noise back to individual kernel
// actors (ftrace: fib manager, kworkers, blk-mq, TCS PMU reads) and
// checks each against its expected magnitude before and after a
// countermeasure. This module is that bookkeeping over the simulator's
// two measurement paths:
//
//  * campaign ledger — the per-source overhead sums the machine-scale FWQ
//    campaign accumulates (cluster::SourceAttribution), reconciled against
//    (a) the campaign's own Eq. 2 noise rate (the totals must agree to
//    float reassociation error — an internal consistency invariant) and
//    (b) the analytic expectation of each source's theft from its spec
//    (arrival rate x mean duration x cores per hit), flagging sources
//    whose measured share diverges from expectation (a gated population
//    tail that happened to land, a miscalibrated spec, a bug).
//
//  * trace ledger — self-time by (label, category, core) over span trees
//    from a DES node or BSP trace (sim::SpanForest), the per-core view
//    that tells you *where* on the node a source stole its time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/fwq_campaign.h"
#include "noise/analytic.h"
#include "sim/trace.h"

namespace hpcos::obs::attrib {

// One campaign-ledger row: a source's measured theft vs its expectation.
struct LedgerRow {
  std::string source;
  noise::SourceKind kind = noise::SourceKind::kHardware;
  noise::SourceScope scope = noise::SourceScope::kPerCore;
  double stolen_us = 0.0;            // measured: sum of overhead it caused
  std::uint64_t hit_iterations = 0;  // iterations it lengthened
  double worst_us = 0.0;             // worst single overhead observed
  double share = 0.0;                // stolen / total stolen
  double expected_us = 0.0;          // analytic expectation for the config
  // (stolen - expected) / expected; +-inf-free: 0 when expected is 0 and
  // stolen is 0, +1 when stolen appeared out of nothing.
  double divergence = 0.0;
  bool flagged = false;  // |divergence| beyond the ledger's threshold
};

struct AttributionLedger {
  std::vector<LedgerRow> rows;  // descending stolen_us, ties by name
  double total_stolen_us = 0.0;
  // Overhead total implied by the campaign's Eq. 2 stats:
  // noise_rate * t_min_us * samples. rows' stolen_us sums to this up to
  // floating-point reassociation; reconciliation_error is the relative
  // difference (the invariant the attrib tests pin below 1e-9).
  double stats_overhead_us = 0.0;
  double reconciliation_error = 0.0;
  double flag_threshold = 0.0;
};

// Build the ledger from a finished campaign. `flag_threshold` is the
// relative divergence beyond which a row is flagged (default 0.5: gated
// population-tail sources legitimately wobble; a 50% miss on an ungated
// source means the spec and the sampler disagree).
AttributionLedger build_ledger(const cluster::FwqCampaignResult& result,
                               const noise::AnalyticNoiseProfile& profile,
                               const cluster::FwqCampaignConfig& config,
                               double flag_threshold = 0.5);

// Analytic expectation of one source's total theft over a campaign:
// active_nodes x arrivals x mean duration x iterations lengthened per
// arrival (exposed for tests).
double expected_stolen_us(const noise::NoiseSourceSpec& spec,
                          const cluster::FwqCampaignConfig& config);

// Analytic expectation of the jitter floor's total theft over `unhit`
// floor iterations: quantum * E[max(0, N(mean, sd))] per iteration.
double expected_floor_us(const noise::AnalyticNoiseProfile& profile,
                         const cluster::FwqCampaignConfig& config,
                         std::uint64_t unhit_iterations);

// One trace-ledger row: aggregate self time of spans sharing a label (or
// category name when unlabeled) on one core/track.
struct TraceTheftRow {
  std::string source;  // span label; to_string(category) when empty
  sim::TraceCategory category = sim::TraceCategory::kUser;
  hw::CoreId core = hw::kInvalidCore;
  double self_time_us = 0.0;
  std::uint64_t spans = 0;
};

// Self-time attribution over every span tree in `records`, one row per
// (source, category, core), ordered by descending self time (ties by
// source then core). Self times come from sim::SpanForest, so nested
// spans never double count.
std::vector<TraceTheftRow> trace_ledger(
    const std::vector<sim::TraceRecord>& records);

}  // namespace hpcos::obs::attrib
