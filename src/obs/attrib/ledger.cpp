#include "obs/attrib/ledger.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "common/check.h"
#include "sim/span_tree.h"

namespace hpcos::obs::attrib {
namespace {

// P(X <= x) for X ~ N(0, 1).
double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// E[max(0, X)] for X ~ N(mean, sd): mean*Phi(mean/sd) + sd*phi(mean/sd).
double expected_positive_part(double mean, double sd) {
  if (sd <= 0.0) return std::max(0.0, mean);
  const double z = mean / sd;
  const double phi =
      std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.141592653589793);
  return mean * normal_cdf(z) + sd * phi;
}

}  // namespace

double expected_stolen_us(const noise::NoiseSourceSpec& spec,
                          const cluster::FwqCampaignConfig& config) {
  // Mirrors cluster::simulate_node's occurrence model: arrivals over the
  // campaign per node, and how many core-iterations each arrival
  // lengthens.
  double processes = 1.0;
  double cores_per_hit = 1.0;
  switch (spec.scope) {
    case noise::SourceScope::kPerCore:
      processes = static_cast<double>(config.app_cores);
      break;
    case noise::SourceScope::kPerNodeRandomCore:
      break;
    case noise::SourceScope::kAllCores:
      cores_per_hit = static_cast<double>(config.app_cores);
      break;
  }
  const double arrivals_per_node =
      config.duration_per_core.ratio(spec.mean_interval) * processes;
  double mean_us = spec.duration.mean().to_us();
  // Per-core jitter inside node-wide events multiplies each core's share
  // by lognormal(median 1, sigma); its mean is exp(sigma^2/2).
  if (spec.scope == noise::SourceScope::kAllCores &&
      config.all_cores_jitter_sigma > 0.0 && config.app_cores > 1) {
    const double s = config.all_cores_jitter_sigma;
    mean_us *= std::exp(0.5 * s * s);
  }
  const double active_nodes =
      static_cast<double>(config.nodes) * spec.node_fraction;
  return active_nodes * arrivals_per_node * cores_per_hit * mean_us;
}

double expected_floor_us(const noise::AnalyticNoiseProfile& profile,
                         const cluster::FwqCampaignConfig& config,
                         std::uint64_t unhit_iterations) {
  const double per_iter = config.work_quantum.to_us() *
                          expected_positive_part(profile.base_jitter_mean,
                                                 profile.base_jitter_sd);
  return per_iter * static_cast<double>(unhit_iterations);
}

AttributionLedger build_ledger(const cluster::FwqCampaignResult& result,
                               const noise::AnalyticNoiseProfile& profile,
                               const cluster::FwqCampaignConfig& config,
                               double flag_threshold) {
  HPCOS_CHECK_MSG(
      result.per_source.size() == profile.sources.size() + 1,
      "campaign result and profile disagree on the source table");

  AttributionLedger ledger;
  ledger.flag_threshold = flag_threshold;

  std::uint64_t hit_total = 0;
  for (const auto& a : result.per_source) {
    ledger.total_stolen_us += a.stolen_us;
    if (a.source != "jitter-floor") hit_total += a.hit_iterations;
  }
  const std::uint64_t unhit = result.total_iterations > hit_total
                                  ? result.total_iterations - hit_total
                                  : 0;

  ledger.rows.reserve(result.per_source.size());
  for (std::size_t i = 0; i < result.per_source.size(); ++i) {
    const auto& a = result.per_source[i];
    LedgerRow row;
    row.source = a.source;
    row.kind = a.kind;
    row.scope = a.scope;
    row.stolen_us = a.stolen_us;
    row.hit_iterations = a.hit_iterations;
    row.worst_us = a.worst_us;
    row.share = ledger.total_stolen_us > 0.0
                    ? a.stolen_us / ledger.total_stolen_us
                    : 0.0;
    row.expected_us =
        i + 1 == result.per_source.size()
            ? expected_floor_us(profile, config, unhit)
            : expected_stolen_us(profile.sources[i], config);
    if (row.expected_us > 0.0) {
      row.divergence = (row.stolen_us - row.expected_us) / row.expected_us;
    } else {
      row.divergence = row.stolen_us > 0.0 ? 1.0 : 0.0;
    }
    row.flagged = std::abs(row.divergence) > flag_threshold;
    ledger.rows.push_back(std::move(row));
  }
  std::sort(ledger.rows.begin(), ledger.rows.end(),
            [](const LedgerRow& a, const LedgerRow& b) {
              if (a.stolen_us != b.stolen_us) return a.stolen_us > b.stolen_us;
              return a.source < b.source;
            });

  // Eq. 2 inversion: noise_rate = overhead / (t_min * samples), so the
  // stats imply this overhead total. The per-source sums mirror the same
  // terms in a different association order; reconciliation error is pure
  // floating point and must stay tiny.
  ledger.stats_overhead_us =
      result.stats.noise_rate * result.stats.t_min.to_us() *
      static_cast<double>(result.stats.samples);
  const double denom =
      std::max(std::abs(ledger.stats_overhead_us), 1e-12);
  ledger.reconciliation_error =
      std::abs(ledger.total_stolen_us - ledger.stats_overhead_us) / denom;
  return ledger;
}

std::vector<TraceTheftRow> trace_ledger(
    const std::vector<sim::TraceRecord>& records) {
  const sim::SpanForest forest(records);
  std::map<std::tuple<std::string, sim::TraceCategory, hw::CoreId>,
           TraceTheftRow>
      by_key;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    if (r.span == 0) continue;
    const std::string source =
        r.label.empty() ? sim::to_string(r.category) : r.label;
    auto key = std::make_tuple(source, r.category, r.core);
    TraceTheftRow& row = by_key[key];
    if (row.spans == 0) {
      row.source = source;
      row.category = r.category;
      row.core = r.core;
    }
    row.self_time_us += forest.self_time(i).to_us();
    ++row.spans;
  }
  std::vector<TraceTheftRow> rows;
  rows.reserve(by_key.size());
  for (auto& [key, row] : by_key) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(),
            [](const TraceTheftRow& a, const TraceTheftRow& b) {
              if (a.self_time_us != b.self_time_us) {
                return a.self_time_us > b.self_time_us;
              }
              if (a.source != b.source) return a.source < b.source;
              return a.core < b.core;
            });
  return rows;
}

}  // namespace hpcos::obs::attrib
