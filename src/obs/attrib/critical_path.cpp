#include "obs/attrib/critical_path.h"

#include <algorithm>
#include <map>

#include "sim/span_tree.h"

namespace hpcos::obs::attrib {
namespace {

constexpr const char* kNoisePrefix = "noise:";

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

StragglerReport build_straggler_report(
    const std::vector<sim::TraceRecord>& records) {
  StragglerReport report;
  const sim::SpanForest forest(records);
  const auto tracks = forest.roots_by_track("bsp:iteration");
  report.tracks = tracks.size();
  if (tracks.empty()) return report;

  std::size_t max_iters = 0;
  for (const auto& [core, roots] : tracks) {
    max_iters = std::max(max_iters, roots.size());
  }

  std::map<std::string, StragglerSourceSummary> by_source;
  for (std::size_t n = 0; n < max_iters; ++n) {
    // Straggler = slowest among the tracks that reached iteration n
    // (lowest track id on exact ties, for determinism).
    std::size_t straggler_idx = records.size();
    hw::CoreId straggler_track = hw::kInvalidCore;
    SimTime slowest = SimTime::zero();
    SimTime fastest = SimTime::max();
    for (const auto& [core, roots] : tracks) {
      if (n >= roots.size()) continue;
      const SimTime d = records[roots[n]].duration;
      fastest = std::min(fastest, d);
      if (straggler_idx == records.size() || d > slowest) {
        slowest = d;
        straggler_idx = roots[n];
        straggler_track = core;
      }
    }
    if (straggler_idx == records.size()) continue;

    IterationStraggler it;
    it.iteration = n;
    it.track = straggler_track;
    it.duration_us = slowest.to_us();
    it.min_us = fastest.to_us();
    it.excess_us = (slowest - fastest).to_us();

    // Walk the straggler's phase children for the noise wait (and its
    // noise:<source> tag) and the compute window.
    for (std::size_t c : forest.children(straggler_idx)) {
      const auto& child = records[c];
      if (child.label == "bsp:compute") {
        it.compute_begin = child.time;
        it.compute_end = child.time + child.duration;
      } else if (child.label == "bsp:noise-wait") {
        it.noise_wait_us = child.duration.to_us();
        for (std::size_t g : forest.children(c)) {
          const auto& tag = records[g];
          if (!starts_with(tag.label, kNoisePrefix)) continue;
          it.dominant_source = tag.label.substr(6);
          it.dominant_category = tag.category;
          it.dominant_us = tag.duration.to_us();
        }
      }
    }

    if (!it.dominant_source.empty()) {
      StragglerSourceSummary& s = by_source[it.dominant_source];
      s.source = it.dominant_source;
      ++s.iterations;
      s.dominant_us += it.dominant_us;
      s.excess_us += it.excess_us;
    }
    report.iterations.push_back(std::move(it));
  }

  report.by_source.reserve(by_source.size());
  for (auto& [name, summary] : by_source) {
    report.by_source.push_back(std::move(summary));
  }
  std::sort(report.by_source.begin(), report.by_source.end(),
            [](const StragglerSourceSummary& a,
               const StragglerSourceSummary& b) {
              if (a.dominant_us != b.dominant_us) {
                return a.dominant_us > b.dominant_us;
              }
              return a.source < b.source;
            });
  if (!report.by_source.empty()) {
    report.dominant_source = report.by_source.front().source;
  }
  return report;
}

void overlay_noise_events(StragglerReport& report,
                          const std::vector<sim::TraceRecord>& node_records,
                          std::size_t max_events,
                          const TrackCoreMap* track_cores) {
  for (auto& it : report.iterations) {
    it.overlay.clear();
    if (it.compute_end <= it.compute_begin) continue;
    const hw::CpuSet* owned = nullptr;
    if (track_cores != nullptr) {
      if (const auto found = track_cores->find(it.track);
          found != track_cores->end()) {
        owned = &found->second;
      }
    }
    for (const auto& r : node_records) {
      if (starts_with(r.label, "bsp:")) continue;
      // Core-aware match: per-core events must hit one of the rank's
      // cores; kInvalidCore marks machine-wide events, which hit everyone.
      if (owned != nullptr && r.core != hw::kInvalidCore &&
          !owned->test(r.core)) {
        continue;
      }
      // Half-open intersection; zero-duration markers count when they
      // fall inside the window.
      const SimTime end = r.time + r.duration;
      const bool intersects =
          r.duration.is_zero()
              ? r.time >= it.compute_begin && r.time < it.compute_end
              : r.time < it.compute_end && end > it.compute_begin;
      if (!intersects) continue;
      it.overlay.push_back(OverlayEvent{.time = r.time,
                                        .duration = r.duration,
                                        .label = r.label,
                                        .category = r.category,
                                        .core = r.core});
    }
    std::sort(it.overlay.begin(), it.overlay.end(),
              [](const OverlayEvent& a, const OverlayEvent& b) {
                if (a.duration != b.duration) return a.duration > b.duration;
                if (a.time != b.time) return a.time < b.time;
                return a.label < b.label;
              });
    if (it.overlay.size() > max_events) it.overlay.resize(max_events);
  }
}

}  // namespace hpcos::obs::attrib
