// Human-readable tables and BenchReport plumbing for the attribution
// ledger and straggler report (consumed by tools/noise_explain and
// examples/obs_report).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/attrib/critical_path.h"
#include "obs/attrib/ledger.h"
#include "obs/bench_report.h"

namespace hpcos::obs::attrib {

// Fixed-width tables in the style of the repo's other report printers.
void print_ledger(std::ostream& os, const AttributionLedger& ledger);
void print_trace_ledger(std::ostream& os,
                        const std::vector<TraceTheftRow>& rows,
                        std::size_t max_rows = 16);
void print_straggler_report(std::ostream& os, const StragglerReport& report,
                            std::size_t max_iterations = 8);

// Metric plumbing for --json reports. `prefix` namespaces the metrics
// (e.g. "attrib" -> attrib.total_stolen_us, attrib.reconciliation_error,
// attrib.src.<source>.stolen_us / .share per row; "straggler" ->
// straggler.iterations, straggler.with_noise_wait,
// straggler.src.<source>.iterations / .dominant_us per summary row).
// Metric order follows the (deterministically sorted) rows, so reports
// diff cleanly across runs.
void add_ledger_metrics(BenchReport& report, const AttributionLedger& ledger,
                        const std::string& prefix = "attrib");
void add_straggler_metrics(BenchReport& report,
                           const StragglerReport& straggler,
                           const std::string& prefix = "straggler");

}  // namespace hpcos::obs::attrib
