#include "obs/explain/explain.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/table.h"
#include "obs/bench_report.h"
#include "obs/runlog.h"
#include "obs/trend.h"
#include "sim/span_tree.h"
#include "sim/trace.h"

namespace hpcos::obs::explain {

namespace {

constexpr const char* kAttribTotalMetric = "attrib.total_stolen_us";
constexpr const char* kAttribSrcPrefix = "attrib.src.";
constexpr const char* kSpanPrefix = "span.";
constexpr const char* kStolenSuffix = ".stolen_us";
constexpr const char* kSelfSuffix = ".self_us";

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_host_metric(const std::string& name) {
  return starts_with(name, "host.");
}

// "attrib.src.<source>.stolen_us" -> "<source>" (dots allowed inside).
bool middle_of(const std::string& name, const std::string& prefix,
               const std::string& suffix, std::string* out) {
  if (!starts_with(name, prefix) || !ends_with(name, suffix)) return false;
  const std::size_t len = name.size() - prefix.size() - suffix.size();
  if (len == 0) return false;
  *out = name.substr(prefix.size(), len);
  return true;
}

void flatten_metric_entry(const JsonValue& m, std::vector<FlatMetric>* out) {
  const std::string& name = m.at("name").as_string();
  const std::string& unit = m.at("unit").as_string();
  out->push_back({name, unit, m.at("value").as_number()});
  if (const JsonValue* pct = m.find("percentiles");
      pct != nullptr && pct->is_object()) {
    for (const auto& [key, value] : pct->members()) {
      out->push_back({name + "." + key, unit, value.as_number()});
    }
  }
}

const FlatMetric* find_metric(const RunSnapshot& snap,
                              const std::string& name) {
  for (const FlatMetric& m : snap.metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double rel_of(double base, double abs_delta) {
  return abs_delta / std::max(std::abs(base), DBL_MIN);
}

std::string fmt_signed(double v) {
  std::string s = TextTable::fmt_sci(std::abs(v), 3);
  return (v < 0 ? "-" : "+") + s;
}

std::string fmt_signed_pct(double base, double delta) {
  const double rel = rel_of(base, std::abs(delta));
  return (delta < 0 ? "-" : "+") + TextTable::fmt_percent(rel, 1);
}

MetricTreeNode* find_or_add_child(std::vector<MetricTreeNode>& nodes,
                                  const std::string& path) {
  for (MetricTreeNode& n : nodes) {
    if (n.path == path) return &n;
  }
  nodes.push_back(MetricTreeNode{path, 0, 0, 0, 0, 0, {}});
  return &nodes.back();
}

void fold_into_node(MetricTreeNode& node, const MetricDelta& d) {
  node.abs_sum += d.abs_delta;
  node.max_rel = std::max(node.max_rel, d.rel_delta);
  ++node.leaves;
  if (d.abs_delta > 0.0) ++node.changed;
  if (d.out_of_tolerance) ++node.flagged;
}

void sort_tree(std::vector<MetricTreeNode>& nodes) {
  std::stable_sort(nodes.begin(), nodes.end(),
                   [](const MetricTreeNode& a, const MetricTreeNode& b) {
                     return a.abs_sum > b.abs_sum;
                   });
  for (MetricTreeNode& n : nodes) sort_tree(n.children);
}

// Ranking shared with trend's flag table: out-of-tolerance first, then by
// relative delta, then name for full determinism.
void rank_deltas(std::vector<MetricDelta>& deltas) {
  std::stable_sort(deltas.begin(), deltas.end(),
                   [](const MetricDelta& a, const MetricDelta& b) {
                     if (a.out_of_tolerance != b.out_of_tolerance) {
                       return a.out_of_tolerance;
                     }
                     if (a.rel_delta != b.rel_delta) {
                       return a.rel_delta > b.rel_delta;
                     }
                     return a.name < b.name;
                   });
}

std::string short_hash(const std::string& hash) {
  return hash.size() > 8 ? hash.substr(0, 8) : hash;
}

std::string cause_line(const Cause& c) {
  std::ostringstream os;
  os << to_string(c.layer) << " " << (c.layer == CauseLayer::kConfig
                                          ? "knob "
                                          : std::string("\""))
     << c.name << (c.layer == CauseLayer::kConfig ? "" : "\"") << " — "
     << c.detail;
  return os.str();
}

}  // namespace

const char* to_string(CauseLayer layer) {
  switch (layer) {
    case CauseLayer::kConfig: return "config";
    case CauseLayer::kAttrib: return "attrib source";
    case CauseLayer::kSpan: return "span label";
    case CauseLayer::kMetric: return "metric";
  }
  return "unknown";
}

RunSnapshot snapshot_from_report(const JsonValue& report_doc,
                                 std::string label) {
  if (const std::string err = validate_bench_report(report_doc);
      !err.empty()) {
    throw std::runtime_error("bench report invalid: " + err);
  }
  RunSnapshot snap;
  snap.label = label.empty() ? "bench report" : std::move(label);
  snap.target = report_doc.at("bench").as_string();
  // BenchReport documents carry no config member today; a future "config"
  // member slots straight in.
  if (const JsonValue* config = report_doc.find("config");
      config != nullptr && config->is_object()) {
    snap.config = *config;
    snap.config_hash = config_hash_hex(*config);
  }
  for (const JsonValue& m : report_doc.at("metrics").as_array()) {
    flatten_metric_entry(m, &snap.metrics);
  }
  return snap;
}

RunSnapshot snapshot_from_record(const JsonValue& record, std::string label) {
  if (const std::string err = validate_run_record(record); !err.empty()) {
    throw std::runtime_error("run record invalid: " + err);
  }
  RunSnapshot snap;
  snap.target = record.at("target").as_string();
  snap.config_hash = record.at("config_hash").as_string();
  snap.label = label.empty()
                   ? snap.target + " @ " + short_hash(snap.config_hash)
                   : std::move(label);
  if (const JsonValue* config = record.find("config");
      config != nullptr && config->is_object()) {
    snap.config = *config;
  }
  for (const JsonValue& m : record.at("metrics").as_array()) {
    flatten_metric_entry(m, &snap.metrics);
  }
  if (const JsonValue* host = record.find("host");
      host != nullptr && host->is_object()) {
    if (const JsonValue* metrics = host->find("metrics");
        metrics != nullptr && metrics->is_array()) {
      for (const JsonValue& m : metrics->as_array()) {
        flatten_metric_entry(m, &snap.metrics);
      }
    }
  }
  return snap;
}

std::string select_group(const std::vector<JsonValue>& records,
                         const std::string& target,
                         const std::string& hash_prefix,
                         std::vector<JsonValue>* out) {
  out->clear();
  std::vector<std::string> hashes;  // distinct, first-seen order
  for (const JsonValue& r : records) {
    if (r.at("target").as_string() != target) continue;
    const std::string& hash = r.at("config_hash").as_string();
    if (!hash_prefix.empty() && hash.rfind(hash_prefix, 0) != 0) continue;
    if (std::find(hashes.begin(), hashes.end(), hash) == hashes.end()) {
      hashes.push_back(hash);
    }
    out->push_back(r);
  }
  if (out->empty()) {
    return "no ledger records for target \"" + target + "\"" +
           (hash_prefix.empty() ? std::string{}
                                : " with config prefix " + hash_prefix);
  }
  if (hashes.size() > 1) {
    std::string err = "target \"" + target + "\" has " +
                      std::to_string(hashes.size()) +
                      " config groups; disambiguate with --config <prefix>:";
    for (const std::string& h : hashes) err += " " + h;
    out->clear();
    return err;
  }
  return {};
}

RunSnapshot snapshot_newest(const std::vector<JsonValue>& group) {
  if (group.empty()) {
    throw std::runtime_error("snapshot_newest: empty group");
  }
  return snapshot_from_record(group.back(), "newest run");
}

RunSnapshot median_of_prior(const std::vector<JsonValue>& group) {
  if (group.size() < 2) {
    throw std::runtime_error(
        "median_of_prior: need at least 2 runs in the group (have " +
        std::to_string(group.size()) + ")");
  }
  // Per flattened metric, the median over every run but the newest —
  // byte-for-byte the baseline trend::find_regressions judges against.
  std::vector<FlatMetric> order;  // first-seen order, value unused
  std::vector<std::vector<double>> values;
  for (std::size_t i = 0; i + 1 < group.size(); ++i) {
    RunSnapshot snap = snapshot_from_record(group[i]);
    for (const FlatMetric& m : snap.metrics) {
      std::size_t slot = order.size();
      for (std::size_t j = 0; j < order.size(); ++j) {
        if (order[j].name == m.name) {
          slot = j;
          break;
        }
      }
      if (slot == order.size()) {
        order.push_back(m);
        values.emplace_back();
      }
      values[slot].push_back(m.value);
    }
  }
  RunSnapshot base;
  base.label =
      "median of " + std::to_string(group.size() - 1) + " prior run(s)";
  base.target = group.front().at("target").as_string();
  base.config_hash = group.front().at("config_hash").as_string();
  const JsonValue& prior = group[group.size() - 2];
  if (const JsonValue* config = prior.find("config");
      config != nullptr && config->is_object()) {
    base.config = *config;
  }
  for (std::size_t j = 0; j < order.size(); ++j) {
    base.metrics.push_back(
        {order[j].name, order[j].unit, trend::median(values[j])});
  }
  return base;
}

ExplainReport explain_runs(RunSnapshot base, RunSnapshot current,
                           const DiffPolicy& policy) {
  ExplainReport ex;
  ex.base = std::move(base);
  ex.current = std::move(current);

  // ---- layer 1: config ---------------------------------------------------
  ex.config_known =
      !ex.base.config.is_null() && !ex.current.config.is_null();
  if (ex.config_known) {
    const std::string base_hash = ex.base.config_hash.empty()
                                      ? config_hash_hex(ex.base.config)
                                      : ex.base.config_hash;
    const std::string cur_hash = ex.current.config_hash.empty()
                                     ? config_hash_hex(ex.current.config)
                                     : ex.current.config_hash;
    ex.hash_equal = base_hash == cur_hash;
    ex.config_diff = config_diff(ex.base.config, ex.current.config);
  } else if (!ex.base.config_hash.empty() &&
             !ex.current.config_hash.empty()) {
    ex.hash_equal = ex.base.config_hash == ex.current.config_hash;
  }

  // ---- layer 2: metrics --------------------------------------------------
  for (const FlatMetric& cur : ex.current.metrics) {
    const FlatMetric* prev = find_metric(ex.base, cur.name);
    if (prev == nullptr) {
      ex.metrics.only_in_current.push_back(cur.name);
      continue;
    }
    MetricDelta d;
    d.name = cur.name;
    d.unit = cur.unit;
    d.base = prev->value;
    d.current = cur.value;
    d.abs_delta = std::abs(cur.value - prev->value);
    d.rel_delta = rel_of(prev->value, d.abs_delta);
    if (is_host_metric(cur.name)) {
      // Quarantine: tracked for the advisory table, never judged, never a
      // cause — host wall-clock moves with the machine, not the code.
      ex.metrics.host_advisory.push_back(std::move(d));
      continue;
    }
    d.tolerance = policy.lookup(cur.name);
    if (d.tolerance.ignore) continue;
    d.out_of_tolerance =
        d.abs_delta >
        std::max(d.tolerance.abs, d.tolerance.rel * std::abs(d.base));
    ex.metrics.ranked.push_back(std::move(d));
  }
  for (const FlatMetric& prev : ex.base.metrics) {
    if (find_metric(ex.current, prev.name) == nullptr) {
      ex.metrics.only_in_base.push_back(prev.name);
    }
  }
  // Contribution roll-up along the <subsystem>.<object>[.<detail>] naming
  // rule before ranking reorders the leaves.
  for (const MetricDelta& d : ex.metrics.ranked) {
    const std::size_t dot1 = d.name.find('.');
    const std::string subsystem =
        dot1 == std::string::npos ? d.name : d.name.substr(0, dot1);
    MetricTreeNode* top = find_or_add_child(ex.metrics.tree, subsystem);
    fold_into_node(*top, d);
    if (dot1 != std::string::npos) {
      const std::size_t dot2 = d.name.find('.', dot1 + 1);
      const std::string object =
          dot2 == std::string::npos ? d.name
                                    : d.name.substr(0, dot2);
      fold_into_node(*find_or_add_child(top->children, object), d);
    }
  }
  sort_tree(ex.metrics.tree);
  rank_deltas(ex.metrics.ranked);
  rank_deltas(ex.metrics.host_advisory);

  // ---- layer 3: attribution ---------------------------------------------
  const FlatMetric* base_total = find_metric(ex.base, kAttribTotalMetric);
  const FlatMetric* cur_total = find_metric(ex.current, kAttribTotalMetric);
  ex.attrib.present = base_total != nullptr || cur_total != nullptr;
  if (ex.attrib.present) {
    ex.attrib.base_total_us = base_total != nullptr ? base_total->value : 0;
    ex.attrib.current_total_us = cur_total != nullptr ? cur_total->value : 0;
    ex.attrib.total_delta_us =
        ex.attrib.current_total_us - ex.attrib.base_total_us;
    std::vector<std::string> sources;
    auto collect = [&sources](const RunSnapshot& snap) {
      for (const FlatMetric& m : snap.metrics) {
        std::string source;
        if (middle_of(m.name, kAttribSrcPrefix, kStolenSuffix, &source) &&
            std::find(sources.begin(), sources.end(), source) ==
                sources.end()) {
          sources.push_back(source);
        }
      }
    };
    collect(ex.base);
    collect(ex.current);
    double abs_sum = 0.0;
    for (const std::string& source : sources) {
      const std::string name = kAttribSrcPrefix + source + kStolenSuffix;
      const FlatMetric* b = find_metric(ex.base, name);
      const FlatMetric* c = find_metric(ex.current, name);
      AttribSourceDelta row;
      row.source = source;
      row.base_us = b != nullptr ? b->value : 0.0;
      row.current_us = c != nullptr ? c->value : 0.0;
      row.delta_us = row.current_us - row.base_us;
      row.rel_delta = rel_of(row.base_us, std::abs(row.delta_us));
      ex.attrib.source_delta_sum_us += row.delta_us;
      abs_sum += std::abs(row.delta_us);
      ex.attrib.rows.push_back(std::move(row));
    }
    for (AttribSourceDelta& row : ex.attrib.rows) {
      row.share = abs_sum > 0.0 ? std::abs(row.delta_us) / abs_sum : 0.0;
    }
    std::stable_sort(ex.attrib.rows.begin(), ex.attrib.rows.end(),
                     [](const AttribSourceDelta& a,
                        const AttribSourceDelta& b) {
                       if (std::abs(a.delta_us) != std::abs(b.delta_us)) {
                         return std::abs(a.delta_us) > std::abs(b.delta_us);
                       }
                       return a.source < b.source;
                     });
    const double denom = std::max(std::abs(ex.attrib.source_delta_sum_us),
                                  std::abs(ex.attrib.total_delta_us));
    ex.attrib.reconciliation_error =
        denom > 0.0 ? std::abs(ex.attrib.source_delta_sum_us -
                               ex.attrib.total_delta_us) /
                          denom
                    : 0.0;
    ex.attrib.reconciled = ex.attrib.reconciliation_error < kReconcileTol;
  }

  // ---- layer 4: spans ----------------------------------------------------
  {
    std::vector<std::string> labels;
    auto collect = [&labels](const RunSnapshot& snap) {
      for (const FlatMetric& m : snap.metrics) {
        std::string label;
        if (middle_of(m.name, kSpanPrefix, kSelfSuffix, &label) &&
            // Skip the flattened percentile leaves
            // ("span.<label>.self_us.p50" also ends in neither suffix, so
            // only plain self_us names land here) and any label that
            // still contains ".self_us" from nested flattening.
            std::find(labels.begin(), labels.end(), label) == labels.end()) {
          labels.push_back(label);
        }
      }
    };
    collect(ex.base);
    collect(ex.current);
    ex.spans.present = !labels.empty();
    for (const std::string& label : labels) {
      const std::string name = kSpanPrefix + label + kSelfSuffix;
      const FlatMetric* b = find_metric(ex.base, name);
      const FlatMetric* c = find_metric(ex.current, name);
      SpanLabelDelta row;
      row.label = label;
      row.base_self_us = b != nullptr ? b->value : 0.0;
      row.current_self_us = c != nullptr ? c->value : 0.0;
      row.delta_us = row.current_self_us - row.base_self_us;
      row.rel_delta = rel_of(row.base_self_us, std::abs(row.delta_us));
      const FlatMetric* p50b = find_metric(ex.base, name + ".p50");
      const FlatMetric* p50c = find_metric(ex.current, name + ".p50");
      const FlatMetric* p99b = find_metric(ex.base, name + ".p99");
      const FlatMetric* p99c = find_metric(ex.current, name + ".p99");
      if (p50b != nullptr && p50c != nullptr && p99b != nullptr &&
          p99c != nullptr) {
        row.has_quantiles = true;
        row.p50_base = p50b->value;
        row.p50_current = p50c->value;
        row.p99_base = p99b->value;
        row.p99_current = p99c->value;
      }
      ex.spans.rows.push_back(std::move(row));
    }
    std::stable_sort(ex.spans.rows.begin(), ex.spans.rows.end(),
                     [](const SpanLabelDelta& a, const SpanLabelDelta& b) {
                       if (std::abs(a.delta_us) != std::abs(b.delta_us)) {
                         return std::abs(a.delta_us) > std::abs(b.delta_us);
                       }
                       return a.label < b.label;
                     });
  }

  // ---- ranked causes -----------------------------------------------------
  // Insertion order config -> attrib -> span -> metric; the stable sort on
  // score then keeps that order among ties, so a knob change always leads
  // and a measured layer beats a raw metric at equal movement.
  for (const ConfigDelta& d : ex.config_diff) {
    Cause c;
    c.layer = CauseLayer::kConfig;
    c.name = d.path;
    c.score = HUGE_VAL;
    switch (d.kind) {
      case ConfigDeltaKind::kChanged:
        c.detail = "semantic knob changed " + d.base + " -> " + d.current;
        break;
      case ConfigDeltaKind::kAdded:
        c.detail = "semantic knob added = " + d.current;
        break;
      case ConfigDeltaKind::kRemoved:
        c.detail = "semantic knob removed (was " + d.base + ")";
        break;
    }
    ex.causes.push_back(std::move(c));
  }
  for (const AttribSourceDelta& row : ex.attrib.rows) {
    if (row.delta_us == 0.0) continue;
    Cause c;
    c.layer = CauseLayer::kAttrib;
    c.name = row.source;
    c.metric = kAttribSrcPrefix + row.source + kStolenSuffix;
    c.score = row.rel_delta;
    c.detail = "stole " + fmt_signed(row.delta_us) + " us (" +
               fmt_signed_pct(row.base_us, row.delta_us) +
               " vs baseline, " + TextTable::fmt_percent(row.share, 1) +
               " of attribution movement)";
    ex.causes.push_back(std::move(c));
  }
  for (const SpanLabelDelta& row : ex.spans.rows) {
    if (row.delta_us == 0.0 &&
        (!row.has_quantiles || row.p99_base == row.p99_current)) {
      continue;
    }
    Cause c;
    c.layer = CauseLayer::kSpan;
    c.name = row.label;
    c.metric = kSpanPrefix + row.label + kSelfSuffix;
    c.score = row.rel_delta;
    c.detail = "self time " + fmt_signed(row.delta_us) + " us (" +
               fmt_signed_pct(row.base_self_us, row.delta_us) + ")";
    if (row.has_quantiles && row.p99_base != row.p99_current) {
      c.detail += ", p99 " + TextTable::fmt(row.p99_base, 2) + " -> " +
                  TextTable::fmt(row.p99_current, 2);
    }
    ex.causes.push_back(std::move(c));
  }
  for (const MetricDelta& d : ex.metrics.ranked) {
    if (d.abs_delta == 0.0) continue;
    // attrib.* / span.* movement already surfaces through its own layer;
    // repeating it here would double-count the same cause.
    if (starts_with(d.name, "attrib.") || starts_with(d.name, kSpanPrefix)) {
      continue;
    }
    Cause c;
    c.layer = CauseLayer::kMetric;
    c.name = d.name;
    c.metric = d.name;
    c.score = d.rel_delta;
    c.detail = "moved " + TextTable::fmt_sci(d.base, 3) + " -> " +
               TextTable::fmt_sci(d.current, 3) + " (" +
               fmt_signed_pct(d.base, d.current - d.base) +
               (d.out_of_tolerance ? ", OUT OF TOLERANCE)" : ")");
    ex.causes.push_back(std::move(c));
  }
  std::stable_sort(ex.causes.begin(), ex.causes.end(),
                   [](const Cause& a, const Cause& b) {
                     return a.score > b.score;
                   });
  return ex;
}

void print_explain(std::ostream& os, const ExplainReport& ex,
                   std::size_t top) {
  print_banner(os, "Explain: " + ex.current.target + " — " +
                       ex.current.label + " vs " + ex.base.label);

  // [1/4] config
  print_banner(os, "[1/4] Config (canonical knob diff)");
  if (ex.config_known || !ex.base.config_hash.empty()) {
    if (ex.hash_equal) {
      os << "identical semantic config (hash "
         << short_hash(ex.current.config_hash) << ") — any delta below is "
         << "a code or noise change, not a knob change\n";
    } else if (!ex.config_known) {
      os << "config hashes differ (" << short_hash(ex.base.config_hash)
         << " vs " << short_hash(ex.current.config_hash)
         << ") but a side carries no config document to diff\n";
    } else {
      TextTable table({"kind", "knob", "base", "current"});
      for (const ConfigDelta& d : ex.config_diff) {
        const char* kind = d.kind == ConfigDeltaKind::kChanged ? "changed"
                           : d.kind == ConfigDeltaKind::kAdded ? "added"
                                                               : "removed";
        table.add_row({kind, d.path, d.base, d.current});
      }
      table.print(os);
    }
  } else {
    os << "no config attached on either side — config layer skipped\n";
  }

  // [2/4] metrics
  print_banner(os, "[2/4] Metric deltas (out-of-tolerance first)");
  {
    TextTable table(
        {"metric", "base", "current", "delta", "rel", "allowed", "flag"});
    for (std::size_t c = 1; c < 6; ++c) table.set_align(c, Align::kRight);
    std::size_t shown = 0;
    for (const MetricDelta& d : ex.metrics.ranked) {
      if (shown >= top) break;
      if (d.abs_delta == 0.0 && shown > 0) break;  // ranked: rest unchanged
      table.add_row({d.name, TextTable::fmt_sci(d.base, 4),
                     TextTable::fmt_sci(d.current, 4),
                     fmt_signed(d.current - d.base),
                     TextTable::fmt_percent(d.rel_delta),
                     TextTable::fmt_percent(d.tolerance.rel),
                     d.out_of_tolerance ? "OUT-OF-TOL" : ""});
      ++shown;
    }
    table.print(os);
    os << ex.metrics.ranked.size() << " metric(s) compared";
    if (!ex.metrics.only_in_current.empty()) {
      os << ", " << ex.metrics.only_in_current.size() << " new";
    }
    if (!ex.metrics.only_in_base.empty()) {
      os << ", " << ex.metrics.only_in_base.size() << " dropped";
    }
    os << "\n";
    TextTable tree({"subsystem/object", "leaves", "changed", "flagged",
                    "sum |delta|", "max rel"});
    for (std::size_t c = 1; c < 6; ++c) tree.set_align(c, Align::kRight);
    for (const MetricTreeNode& n : ex.metrics.tree) {
      tree.add_row({n.path,
                    TextTable::fmt_int(static_cast<long long>(n.leaves)),
                    TextTable::fmt_int(static_cast<long long>(n.changed)),
                    TextTable::fmt_int(static_cast<long long>(n.flagged)),
                    TextTable::fmt_sci(n.abs_sum, 3),
                    TextTable::fmt_percent(n.max_rel)});
      for (const MetricTreeNode& child : n.children) {
        tree.add_row({"  " + child.path,
                      TextTable::fmt_int(static_cast<long long>(child.leaves)),
                      TextTable::fmt_int(
                          static_cast<long long>(child.changed)),
                      TextTable::fmt_int(
                          static_cast<long long>(child.flagged)),
                      TextTable::fmt_sci(child.abs_sum, 3),
                      TextTable::fmt_percent(child.max_rel)});
      }
    }
    tree.print(os);
    if (!ex.metrics.host_advisory.empty()) {
      os << "advisory (host.* — tracked, never judged):\n";
      TextTable host({"host metric", "base", "current", "delta"});
      for (std::size_t c = 1; c < 4; ++c) host.set_align(c, Align::kRight);
      std::size_t shown_host = 0;
      for (const MetricDelta& d : ex.metrics.host_advisory) {
        if (shown_host++ >= top) break;
        host.add_row({d.name, TextTable::fmt_sci(d.base, 4),
                      TextTable::fmt_sci(d.current, 4),
                      fmt_signed(d.current - d.base)});
      }
      host.print(os);
    }
  }

  // [3/4] attribution
  print_banner(os, "[3/4] Attribution delta (per noise source)");
  if (!ex.attrib.present) {
    os << "no attribution ledger metrics on either side — layer skipped\n";
  } else {
    TextTable table(
        {"source", "base us", "current us", "delta us", "rel", "share"});
    for (std::size_t c = 1; c < 6; ++c) table.set_align(c, Align::kRight);
    for (const AttribSourceDelta& row : ex.attrib.rows) {
      table.add_row({row.source, TextTable::fmt_sci(row.base_us, 4),
                     TextTable::fmt_sci(row.current_us, 4),
                     fmt_signed(row.delta_us),
                     TextTable::fmt_percent(row.rel_delta),
                     TextTable::fmt_percent(row.share, 1)});
    }
    table.print(os);
    os << "reconciliation: sum(per-source deltas) "
       << fmt_signed(ex.attrib.source_delta_sum_us) << " us vs total delta "
       << fmt_signed(ex.attrib.total_delta_us) << " us, error "
       << TextTable::fmt_sci(ex.attrib.reconciliation_error, 2) << " — "
       << (ex.attrib.reconciled ? "RECONCILED" : "DIVERGED") << "\n";
  }

  // [4/4] spans
  print_banner(os, "[4/4] Span self-time / quantile shifts (per label)");
  if (!ex.spans.present) {
    os << "no span-label metrics on either side — layer skipped\n";
  } else {
    TextTable table({"label", "self base us", "self cur us", "delta us",
                     "p50 shift", "p99 shift"});
    for (std::size_t c = 1; c < 6; ++c) table.set_align(c, Align::kRight);
    for (const SpanLabelDelta& row : ex.spans.rows) {
      table.add_row(
          {row.label, TextTable::fmt_sci(row.base_self_us, 4),
           TextTable::fmt_sci(row.current_self_us, 4),
           fmt_signed(row.delta_us),
           row.has_quantiles ? TextTable::fmt(row.p50_base, 2) + " -> " +
                                   TextTable::fmt(row.p50_current, 2)
                             : "-",
           row.has_quantiles ? TextTable::fmt(row.p99_base, 2) + " -> " +
                                   TextTable::fmt(row.p99_current, 2)
                             : "-"});
    }
    table.print(os);
  }

  // Headline: stable, greppable lines the CI pass-regexes anchor on.
  print_banner(os, "Root cause ranking");
  std::size_t rank = 1;
  for (const Cause& c : ex.causes) {
    if (rank > top) break;
    os << "  " << rank << ". " << cause_line(c) << "\n";
    ++rank;
  }
  if (const Cause* c = ex.top_cause()) {
    os << "explain: top cause: " << to_string(c->layer) << " \"" << c->name
       << "\" — " << c->detail << "\n";
  } else {
    os << "explain: top cause: none — runs are identical under the "
       << "tolerance policy\n";
  }
  if (const MetricDelta* m = ex.top_metric()) {
    os << "explain: top metric: " << m->name << " ("
       << fmt_signed_pct(m->base, m->current - m->base) << ", allowed "
       << TextTable::fmt_percent(m->tolerance.rel) << ")\n";
  }
}

void print_explain_summary(std::ostream& os, const ExplainReport& ex,
                           std::size_t top) {
  os << "explanation: " << ex.current.target << " @ "
     << short_hash(ex.current.config_hash) << " — " << ex.current.label
     << " vs " << ex.base.label << "\n";
  if (ex.causes.empty()) {
    os << "  no cause found: runs identical under the tolerance policy\n";
    return;
  }
  std::size_t rank = 1;
  for (const Cause& c : ex.causes) {
    if (rank > top) break;
    os << "  " << rank << ". " << cause_line(c) << "\n";
    ++rank;
  }
  const Cause& c = ex.causes.front();
  os << "explain: top cause: " << to_string(c.layer) << " \"" << c.name
     << "\" — " << c.detail << "\n";
  if (ex.attrib.present) {
    os << "  attribution "
       << (ex.attrib.reconciled ? "reconciled" : "DIVERGED") << " (error "
       << TextTable::fmt_sci(ex.attrib.reconciliation_error, 2) << ")\n";
  }
}

void add_explain_metrics(BenchReport& report, const ExplainReport& ex) {
  report.add_metric("explain.config.known", "bool",
                    ex.config_known ? 1.0 : 0.0);
  report.add_metric("explain.config.hash_equal", "bool",
                    ex.hash_equal ? 1.0 : 0.0);
  report.add_metric("explain.config.changed.count", "count",
                    static_cast<double>(ex.config_diff.size()));
  report.add_metric("explain.metrics.compared.count", "count",
                    static_cast<double>(ex.metrics.ranked.size()));
  std::size_t changed = 0;
  std::size_t flagged = 0;
  for (const MetricDelta& d : ex.metrics.ranked) {
    if (d.abs_delta > 0.0) ++changed;
    if (d.out_of_tolerance) ++flagged;
  }
  report.add_metric("explain.metrics.changed.count", "count",
                    static_cast<double>(changed));
  report.add_metric("explain.metrics.flagged.count", "count",
                    static_cast<double>(flagged));
  report.add_metric("explain.metrics.new.count", "count",
                    static_cast<double>(ex.metrics.only_in_current.size()));
  report.add_metric("explain.metrics.dropped.count", "count",
                    static_cast<double>(ex.metrics.only_in_base.size()));
  report.add_metric("explain.attrib.present", "bool",
                    ex.attrib.present ? 1.0 : 0.0);
  if (ex.attrib.present) {
    report.add_metric("explain.attrib.total_delta_us", "us",
                      ex.attrib.total_delta_us);
    report.add_metric("explain.attrib.source_delta_sum_us", "us",
                      ex.attrib.source_delta_sum_us);
    report.add_metric("explain.attrib.reconciliation_error", "ratio",
                      ex.attrib.reconciliation_error);
    report.add_metric("explain.attrib.reconciled", "bool",
                      ex.attrib.reconciled ? 1.0 : 0.0);
    for (const AttribSourceDelta& row : ex.attrib.rows) {
      report.add_metric("explain.attrib.src." + row.source + ".delta_us",
                        "us", row.delta_us);
    }
  }
  report.add_metric("explain.span.labels.count", "count",
                    static_cast<double>(ex.spans.rows.size()));
  for (const SpanLabelDelta& row : ex.spans.rows) {
    report.add_metric("explain.span." + row.label + ".delta_us", "us",
                      row.delta_us);
  }
  report.add_metric("explain.causes.count", "count",
                    static_cast<double>(ex.causes.size()));
  // Layer index of the headline (0 config, 1 attrib, 2 span, 3 metric);
  // -1 when the runs are indistinguishable.
  report.add_metric(
      "explain.top_cause.layer", "count",
      ex.causes.empty()
          ? -1.0
          : static_cast<double>(static_cast<int>(ex.causes.front().layer)));
}

void add_span_label_metrics(
    BenchReport& report, const std::vector<sim::TraceRecord>& records,
    const std::map<std::string, QuantileSketch>* label_sketches) {
  const sim::SpanForest forest(records);
  // Summed self time per label over every spanned record — nested spans
  // never double count because self = total - children in the forest.
  std::map<std::string, double> self_us;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const sim::TraceRecord& r = records[i];
    if (r.span == 0 || r.label.empty()) continue;
    self_us[r.label] += forest.self_time(i).to_us();
  }
  for (const auto& [label, total] : self_us) {
    BenchMetric m;
    m.name = std::string(kSpanPrefix) + label + kSelfSuffix;
    m.unit = "us";
    m.value = total;
    if (label_sketches != nullptr) {
      const auto it = label_sketches->find(label);
      if (it != label_sketches->end() && !it->second.empty()) {
        m.percentiles["p50"] = it->second.quantile(0.50);
        m.percentiles["p99"] = it->second.quantile(0.99);
      }
    }
    report.add_metric(std::move(m));
  }
}

}  // namespace hpcos::obs::explain
