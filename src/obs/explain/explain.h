// Regression root-cause explainer: hierarchical diffing of two runs.
//
// The observability stack can *detect* a cross-run regression
// (tools/trend flags it, tools/bench_diff gates it) but until now could
// not *explain* one — the operator had to hand-correlate the run ledger,
// the attribution ledger, span self-times, and config hashes. This module
// is the missing layer: take any pair of runs and reduce "metric X
// regressed 7%" to "knob K changed / noise source S gained N us / span
// label L's tail moved", with the deltas reconciled against the totals.
// It mirrors the paper's own differential method (every figure is "the
// same workload under two system configurations, explained by which
// OS-level source ate the delta").
//
// Four layers, each over data the producers already record:
//
//   1. config     — knob-by-knob diff of the canonical config documents
//                   (common/confighash config_diff). hash equal => empty
//                   diff; a semantic knob change is definitionally the
//                   root cause and outranks everything else.
//   2. metrics    — delta of every flattened metric (percentiles flatten
//                   to "<name>.<pN>" exactly as bench_diff/trend do),
//                   ranked out-of-tolerance-first then by relative delta
//                   under the SAME DiffPolicy the gates use, and rolled
//                   up into a <subsystem>.<object> contribution tree.
//                   host.* metrics are quarantined into an advisory
//                   section — tracked, never judged, never a cause (the
//                   bench_gate/trend policy).
//   3. attribution — per-source overhead deltas over the obs/attrib
//                   ledger metrics (attrib.src.<source>.stolen_us), with
//                   the per-source deltas reconciled against the total
//                   delta to < 1e-9 on deterministic metrics. A noise
//                   regression names its source.
//   4. spans      — self-time deltas per span label
//                   (span.<label>.self_us, SpanForest aggregates) plus
//                   p50/p99 movement from the per-label QuantileSketch
//                   percentiles.
//
// The layers fold into one ranked cause list; causes[0] is the headline.
// tools/explain is the CLI; tools/trend auto-emits the compact form when
// a regression flag fires, so the flag and its explanation arrive on one
// screen. tests/test_explain.cpp pins the ranking, the reconciliation
// invariant, and trend-flag/top-metric agreement.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/confighash.h"
#include "common/json.h"
#include "common/sketch.h"
#include "obs/bench_diff.h"

namespace hpcos::sim {
struct TraceRecord;
}  // namespace hpcos::sim

namespace hpcos::obs {
class BenchReport;
}  // namespace hpcos::obs

namespace hpcos::obs::explain {

// One flattened metric: percentile entries appear as "<name>.<pN>" next
// to the base value, the same flattening bench_diff and trend use, so one
// name space covers all three tools.
struct FlatMetric {
  std::string name;
  std::string unit;
  double value = 0.0;
};

// One side of the diff — a run (or a synthesized baseline) reduced to the
// fields the explainer needs.
struct RunSnapshot {
  std::string label;        // "newest run", "median of 4 prior runs", path
  std::string target;
  std::string config_hash;  // "" when unknown
  JsonValue config;         // null when the run carried no config document
  std::vector<FlatMetric> metrics;  // flattened, host.* included
};

// Build a snapshot from a schema-valid BenchReport document or from a
// run-ledger record (obs/runlog). Both throw std::runtime_error on
// malformed input. Ledger records contribute their host.metrics too (into
// the advisory section downstream).
RunSnapshot snapshot_from_report(const JsonValue& report_doc,
                                 std::string label = {});
RunSnapshot snapshot_from_record(const JsonValue& record,
                                 std::string label = {});

// Group selection over ledger records: keep records matching `target` and
// (when non-empty) a config-hash prefix. Returns "" and fills `out` on
// success; otherwise a one-line error (no match / ambiguous prefix).
std::string select_group(const std::vector<JsonValue>& records,
                         const std::string& target,
                         const std::string& hash_prefix,
                         std::vector<JsonValue>* out);

// The newest record of a group as a snapshot.
RunSnapshot snapshot_newest(const std::vector<JsonValue>& group);
// The median-of-prior baseline tools/trend already judges against: per
// flattened metric, the median over all records but the newest. The
// config document comes from the newest prior record (same hash across
// the group by construction).
RunSnapshot median_of_prior(const std::vector<JsonValue>& group);

// ---------------------------------------------------------------- layers

struct MetricDelta {
  std::string name;
  std::string unit;
  double base = 0.0;
  double current = 0.0;
  double abs_delta = 0.0;
  double rel_delta = 0.0;  // |delta| / max(|base|, DBL_MIN)
  MetricTolerance tolerance;
  bool out_of_tolerance = false;
};

// Roll-up node over the <subsystem>.<object>[.<detail>] naming rule:
// depth 1 groups by subsystem, depth 2 by object. abs_sum mixes units, so
// it ranks contributions rather than measuring one quantity.
struct MetricTreeNode {
  std::string path;
  double abs_sum = 0.0;       // sum of |delta| over leaves below
  double max_rel = 0.0;       // worst relative delta below
  std::size_t leaves = 0;     // metrics compared below
  std::size_t changed = 0;    // leaves with a nonzero delta
  std::size_t flagged = 0;    // leaves out of tolerance
  std::vector<MetricTreeNode> children;
};

struct MetricLayer {
  // Deterministic metrics present on both sides, ignored patterns
  // excluded, ranked out-of-tolerance-first then by relative delta —
  // the identical order trend ranks its flags, so ranked[0] IS the
  // trend-flagged metric when one exists.
  std::vector<MetricDelta> ranked;
  std::vector<MetricTreeNode> tree;  // subsystems sorted by abs_sum desc
  // host.* quarantine: tracked for the report, never judged, never a
  // cause (same policy as bench_gate/trend).
  std::vector<MetricDelta> host_advisory;
  std::vector<std::string> only_in_base;     // dropped metrics
  std::vector<std::string> only_in_current;  // new metrics
};

struct AttribSourceDelta {
  std::string source;
  double base_us = 0.0;
  double current_us = 0.0;
  double delta_us = 0.0;
  double rel_delta = 0.0;  // |delta| / max(|base|, DBL_MIN)
  double share = 0.0;      // |delta| / sum of |per-source deltas|
};

struct AttribLayer {
  bool present = false;  // attrib.total_stolen_us seen on either side
  std::vector<AttribSourceDelta> rows;  // ranked by |delta_us| desc
  double base_total_us = 0.0;
  double current_total_us = 0.0;
  double total_delta_us = 0.0;       // current - base
  double source_delta_sum_us = 0.0;  // signed sum of per-source deltas
  // |source_delta_sum - total_delta| / max(|either|); 0 when both are 0.
  // On deterministic metrics this must close to < 1e-9 (kReconcileTol):
  // per-source sums and the campaign total are two views of one number.
  double reconciliation_error = 0.0;
  bool reconciled = false;
};

inline constexpr double kReconcileTol = 1e-9;

struct SpanLabelDelta {
  std::string label;
  double base_self_us = 0.0;
  double current_self_us = 0.0;
  double delta_us = 0.0;
  double rel_delta = 0.0;
  // Quantile movement from the per-label sketch percentiles, when both
  // sides carried them.
  bool has_quantiles = false;
  double p50_base = 0.0, p50_current = 0.0;
  double p99_base = 0.0, p99_current = 0.0;
};

struct SpanLayer {
  bool present = false;  // any span.<label>.self_us metric seen
  std::vector<SpanLabelDelta> rows;  // ranked by |delta_us| desc
};

// ---------------------------------------------------------------- causes

enum class CauseLayer : std::uint8_t { kConfig, kAttrib, kSpan, kMetric };

const char* to_string(CauseLayer layer);

struct Cause {
  CauseLayer layer = CauseLayer::kMetric;
  std::string name;    // knob path / source name / span label / metric
  std::string metric;  // backing metric name ("" for config causes)
  std::string detail;  // one-line human description
  // Relative movement; config causes carry HUGE_VAL (a semantic knob
  // change outranks any measured delta by definition).
  double score = 0.0;
};

struct ExplainReport {
  RunSnapshot base;
  RunSnapshot current;
  bool config_known = false;  // both sides carried a config document
  bool hash_equal = false;
  std::vector<ConfigDelta> config_diff;
  MetricLayer metrics;
  AttribLayer attrib;
  SpanLayer spans;
  // Ranked worst-first: config knob changes, then attrib/span/metric
  // causes by relative movement. Metric causes skip attrib.* / span.*
  // names (those already surface through their own layers).
  std::vector<Cause> causes;

  const Cause* top_cause() const {
    return causes.empty() ? nullptr : &causes.front();
  }
  // The trend-comparable headline: ranked[0] of the metric layer.
  const MetricDelta* top_metric() const {
    return metrics.ranked.empty() ? nullptr : &metrics.ranked.front();
  }
};

// Diff `current` against `base` under `policy` (the same tolerance file
// the gates use; metrics matching ignore rules are excluded from ranking
// and causes).
ExplainReport explain_runs(RunSnapshot base, RunSnapshot current,
                           const DiffPolicy& policy);

// Full report: one banner per layer, `top` rows per table.
void print_explain(std::ostream& os, const ExplainReport& report,
                   std::size_t top = 8);
// Compact one-screen form for trend's auto-emit: the top cause line plus
// up to `top` runner-up causes.
void print_explain_summary(std::ostream& os, const ExplainReport& report,
                           std::size_t top = 3);
// Machine-readable surface for --json: layer counts, the attribution
// reconciliation, per-source/per-label deltas, and the top cause score.
void add_explain_metrics(BenchReport& report, const ExplainReport& ex);

// ------------------------------------------------------------- producers

// Emit span-label aggregates in the explainer's naming convention:
//   span.<label>.self_us          summed SpanForest self time per label
//   (percentiles p50/p99)         from the per-label sketch when present
// so any target with a span trace becomes explainable. Labels come from
// spanned records only; sketches are keyed by root label (obs/live
// NodeSample::sketches is the usual source).
void add_span_label_metrics(
    BenchReport& report, const std::vector<sim::TraceRecord>& records,
    const std::map<std::string, QuantileSketch>* label_sketches = nullptr);

}  // namespace hpcos::obs::explain
