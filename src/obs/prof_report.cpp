#include "obs/prof_report.h"

#include <algorithm>
#include <ostream>

#include "common/table.h"
#include "obs/prof/mem.h"

namespace hpcos::obs {
namespace {

double to_us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

void add_profile_metrics(BenchReport& report, const prof::Profile& profile) {
  for (const prof::ScopeStat& s : profile.scopes) {
    report.add_metric("prof." + s.name + ".count", "count",
                      static_cast<double>(s.count));
    report.add_metric("host.prof." + s.name + ".self_us", "us",
                      to_us(s.self_ns));
    report.add_metric("host.prof." + s.name + ".total_us", "us",
                      to_us(s.total_ns));
  }
  report.add_metric("host.prof.events", "count",
                    static_cast<double>(profile.events));
  report.add_metric("host.prof.threads", "count",
                    static_cast<double>(profile.threads));
  report.add_metric("host.prof.dropped", "count",
                    static_cast<double>(profile.dropped));
  report.add_metric("host.prof.root_total_us", "us",
                    to_us(profile.root_total_ns));
}

void fold_profile_registry(Registry& registry, const prof::Profile& profile) {
  for (const prof::ScopeStat& s : profile.scopes) {
    registry.counter("prof." + s.name + ".count")->add(s.count);
  }
  registry.counter("prof.events")->add(profile.events);
  registry.counter("prof.dropped")->add(profile.dropped);
}

void add_memory_metrics(BenchReport& report) {
  for (const prof::MemoryCounterView& c : prof::memory_counters()) {
    report.add_metric("host.mem." + c.name + ".bytes", "bytes",
                      static_cast<double>(c.bytes));
    report.add_metric("host.mem." + c.name + ".events", "count",
                      static_cast<double>(c.events));
  }
  const prof::HostMemory mem = prof::sample_host_memory();
  if (mem.valid) {
    report.add_metric("host.mem.rss_bytes", "bytes",
                      static_cast<double>(mem.rss_bytes));
    report.add_metric("host.mem.peak_rss_bytes", "bytes",
                      static_cast<double>(mem.peak_rss_bytes));
    report.add_metric("host.mem.vm_bytes", "bytes",
                      static_cast<double>(mem.vm_bytes));
  }
}

void print_profile(std::ostream& out, const prof::Profile& profile,
                   std::size_t top) {
  TextTable table({"scope", "count", "self ms", "total ms", "self %"});
  for (std::size_t col = 1; col < 5; ++col) table.set_align(col, Align::kRight);
  const double root =
      profile.root_total_ns > 0 ? static_cast<double>(profile.root_total_ns)
                                : 1.0;
  const std::size_t n = std::min(top, profile.scopes.size());
  for (std::size_t i = 0; i < n; ++i) {
    const prof::ScopeStat& s = profile.scopes[i];
    table.add_row({s.name,
                   TextTable::fmt_int(static_cast<long long>(s.count)),
                   TextTable::fmt(static_cast<double>(s.self_ns) / 1e6, 3),
                   TextTable::fmt(static_cast<double>(s.total_ns) / 1e6, 3),
                   TextTable::fmt_percent(
                       static_cast<double>(s.self_ns) / root, 1)});
  }
  table.print(out);
  out << "scopes: " << profile.scopes.size() << "  events: " << profile.events
      << "  threads: " << profile.threads << "  dropped: " << profile.dropped
      << "  root total: "
      << TextTable::fmt(static_cast<double>(profile.root_total_ns) / 1e6, 3)
      << " ms\n";
}

}  // namespace hpcos::obs
