#include "obs/bench_diff.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/bench_report.h"

namespace hpcos::obs {

namespace {

// Flattened view of one report: (metric-or-percentile name, value), in
// emission order. Percentiles become "<name>.<pN>" entries.
std::vector<std::pair<std::string, double>> flatten_metrics(
    const JsonValue& report) {
  std::vector<std::pair<std::string, double>> out;
  for (const JsonValue& m : report.at("metrics").as_array()) {
    const std::string& name = m.at("name").as_string();
    out.emplace_back(name, m.at("value").as_number());
    if (const JsonValue* pct = m.find("percentiles");
        pct != nullptr && pct->is_object()) {
      for (const auto& [key, value] : pct->members()) {
        out.emplace_back(name + "." + key, value.as_number());
      }
    }
  }
  return out;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
    }
  }
  return row[b.size()];
}

// An unrecognized key in a tolerance policy is almost certainly a typo
// ("patern", "ingore") that would silently disable the rule it was meant
// to configure — precisely the failure a regression gate must not have.
// Unknown keys are therefore collected across the whole document and
// reported as a hard error, likeliest typos first.
struct UnknownKey {
  std::string location;  // e.g. "metrics[3].patern"
  std::string suggestion;
  std::size_t distance = 0;
};

void collect_unknown_keys(const JsonValue& obj, const std::string& where,
                          std::initializer_list<const char*> allowed,
                          std::vector<UnknownKey>& out) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (known) continue;
    UnknownKey u;
    u.location = where.empty() ? key : where + "." + key;
    u.distance = std::string::npos;
    for (const char* a : allowed) {
      const std::size_t d = edit_distance(key, a);
      if (d < u.distance) {
        u.distance = d;
        u.suggestion = a;
      }
    }
    out.push_back(std::move(u));
  }
}

MetricTolerance parse_tolerance_fields(const JsonValue& obj,
                                       MetricTolerance base) {
  if (const JsonValue* rel = obj.find("rel")) base.rel = rel->as_number();
  if (const JsonValue* abs = obj.find("abs")) base.abs = abs->as_number();
  if (const JsonValue* ign = obj.find("ignore")) {
    base.ignore = ign->as_bool();
  }
  if (base.rel < 0.0 || base.abs < 0.0) {
    throw std::runtime_error("tolerances: rel/abs must be non-negative");
  }
  return base;
}

}  // namespace

const MetricTolerance& DiffPolicy::lookup(const std::string& metric) const {
  for (const ToleranceRule& rule : rules) {
    if (glob_match(rule.pattern, metric)) return rule.tolerance;
  }
  return fallback;
}

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative '*' glob: on mismatch, retry from the last star with one more
  // character consumed.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

DiffPolicy parse_tolerance_policy(const JsonValue& doc) {
  if (!doc.is_object()) {
    throw std::runtime_error("tolerances: document is not a JSON object");
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kBenchTolerancesSchema) {
    throw std::runtime_error(std::string("tolerances: schema is not \"") +
                             kBenchTolerancesSchema + "\"");
  }
  // Strict key validation before any rule parsing, so a typoed "pattern"
  // reports as an unknown key with a suggestion instead of "missing key".
  std::vector<UnknownKey> unknown;
  collect_unknown_keys(doc, "", {"schema", "default", "metrics"}, unknown);
  if (const JsonValue* def = doc.find("default"); def != nullptr) {
    collect_unknown_keys(*def, "default", {"rel", "abs", "ignore"}, unknown);
  }
  if (const JsonValue* metrics = doc.find("metrics"); metrics != nullptr) {
    const auto& entries = metrics->as_array();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      collect_unknown_keys(entries[i],
                           "metrics[" + std::to_string(i) + "]",
                           {"pattern", "rel", "abs", "ignore"}, unknown);
    }
  }
  if (!unknown.empty()) {
    std::stable_sort(unknown.begin(), unknown.end(),
                     [](const UnknownKey& a, const UnknownKey& b) {
                       return a.distance < b.distance;
                     });
    std::string msg = "tolerances: unknown key(s):";
    for (const UnknownKey& u : unknown) {
      msg += " " + u.location;
      if (u.distance <= 3) {
        msg += " (did you mean \"" + u.suggestion + "\"?)";
      }
      msg += ";";
    }
    throw std::runtime_error(msg);
  }

  DiffPolicy policy;
  if (const JsonValue* def = doc.find("default")) {
    policy.fallback = parse_tolerance_fields(*def, MetricTolerance{});
  }
  if (const JsonValue* metrics = doc.find("metrics")) {
    for (const JsonValue& entry : metrics->as_array()) {
      ToleranceRule rule;
      rule.pattern = entry.at("pattern").as_string();
      // Rules refine the fallback, not the built-in defaults, so a policy
      // file's "default" applies to rules that only set e.g. "ignore".
      rule.tolerance = parse_tolerance_fields(entry, policy.fallback);
      policy.rules.push_back(std::move(rule));
    }
  }
  return policy;
}

JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return JsonValue::parse(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

DiffPolicy load_tolerance_policy(const std::string& path) {
  return parse_tolerance_policy(load_json_file(path));
}

DiffResult diff_reports(const JsonValue& current, const JsonValue& baseline,
                        const DiffPolicy& policy) {
  if (const std::string err = validate_bench_report(current); !err.empty()) {
    throw std::runtime_error("current report invalid: " + err);
  }
  if (const std::string err = validate_bench_report(baseline);
      !err.empty()) {
    throw std::runtime_error("baseline report invalid: " + err);
  }
  if (current.at("bench").as_string() != baseline.at("bench").as_string()) {
    throw std::runtime_error(
        "bench mismatch: current is \"" + current.at("bench").as_string() +
        "\", baseline is \"" + baseline.at("bench").as_string() + "\"");
  }

  const auto cur = flatten_metrics(current);
  const auto base = flatten_metrics(baseline);

  DiffResult r;
  for (const auto& [name, cur_value] : cur) {
    const MetricTolerance& tol = policy.lookup(name);
    if (tol.ignore) continue;
    const auto it =
        std::find_if(base.begin(), base.end(),
                     [&](const auto& b) { return b.first == name; });
    if (it == base.end()) {
      r.new_in_current.push_back(name);
      continue;
    }
    MetricDelta d;
    d.metric = name;
    d.baseline = it->second;
    d.current = cur_value;
    d.abs_delta = std::abs(cur_value - it->second);
    d.rel_delta = d.abs_delta / std::max(std::abs(it->second), DBL_MIN);
    d.tolerance = tol;
    d.violation =
        d.abs_delta > std::max(tol.abs, tol.rel * std::abs(it->second));
    r.deltas.push_back(d);
    if (d.violation) r.violations.push_back(std::move(d));
  }
  for (const auto& [name, _] : base) {
    const MetricTolerance& tol = policy.lookup(name);
    if (tol.ignore) continue;
    const bool present = std::any_of(
        cur.begin(), cur.end(),
        [&](const auto& c) { return c.first == name; });
    if (!present) r.missing_in_current.push_back(name);
  }
  std::stable_sort(r.violations.begin(), r.violations.end(),
                   [](const MetricDelta& a, const MetricDelta& b) {
                     return a.rel_delta > b.rel_delta;
                   });
  return r;
}

BenchReport diff_result_report(const DiffResult& result,
                               const std::string& bench_name, bool quick) {
  BenchReport report("bench_diff", quick);
  report.add_metric("gate.ok", "bool", result.ok() ? 1.0 : 0.0);
  report.add_metric("gate.bench." + bench_name + ".compared", "count",
                    static_cast<double>(result.deltas.size()));
  report.add_metric("gate.compared.count", "count",
                    static_cast<double>(result.deltas.size()));
  report.add_metric("gate.violations.count", "count",
                    static_cast<double>(result.violations.size()));
  report.add_metric("gate.missing.count", "count",
                    static_cast<double>(result.missing_in_current.size()));
  report.add_metric("gate.new.count", "count",
                    static_cast<double>(result.new_in_current.size()));
  report.add_metric("gate.worst.rel_delta", "ratio",
                    result.violations.empty()
                        ? 0.0
                        : result.violations.front().rel_delta);
  for (const MetricDelta& v : result.violations) {
    report.add_metric("gate.violation." + v.metric + ".rel", "ratio",
                      v.rel_delta);
  }
  return report;
}

}  // namespace hpcos::obs
